package polygraph_test

import (
	"fmt"
	"log"

	"polygraph"
)

// ExampleParseUserAgent shows claimed-identity extraction.
func ExampleParseUserAgent() {
	r, err := polygraph.ParseUserAgent(
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r)
	// Output: Chrome 112
}

// ExampleTrain walks the minimal train-and-score loop. (No asserted
// output: training statistics depend on the traffic draw.)
func ExampleTrain() {
	tcfg := polygraph.DefaultTrafficConfig()
	tcfg.Sessions = 10000
	traffic, err := polygraph.GenerateTraffic(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := polygraph.Train(traffic.Samples(), polygraph.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}

	s := traffic.Sessions[0]
	res, err := model.Score(s.Vector, s.Claimed)
	if err != nil {
		log.Fatal(err)
	}
	_ = res.Flagged() // feed into risk-based authentication
}

// ExampleDefaultRiskPolicy shows the risk-based-authentication
// integration: a cross-vendor polygraph hit denies outright.
func ExampleDefaultRiskPolicy() {
	policy := polygraph.DefaultRiskPolicy()
	dec := policy.Evaluate(polygraph.RiskSignals{
		Polygraph: polygraph.Result{Matched: false, RiskFactor: 20},
	})
	fmt.Println(dec.Action)
	// Output: deny
}
