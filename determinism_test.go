package polygraph

// determinism_test.go pins the hard guarantee of internal/parallel: the
// worker-pool layer must never change results, only wall-clock time.
// Training and scoring with Workers:1 (serial) and Workers:8 must yield
// bit-identical models, cluster assignments, and flag counts — chunk
// boundaries and reduction order are functions of the input size alone,
// never of scheduling (see DESIGN.md, "Parallel execution model").

import (
	"testing"

	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/ua"
)

// trainAt trains the default pipeline on a small deterministic traffic
// sample with the given worker-pool size.
func trainAt(t *testing.T, workers int) (*dataset.Dataset, *core.Model, *core.TrainReport) {
	t.Helper()
	dcfg := dataset.DefaultConfig()
	dcfg.Sessions = 9000
	traffic, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	tc.Workers = workers
	model, report, err := core.Train(traffic.Samples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	return traffic, model, report
}

func TestTrainWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains twice; skipped in -short")
	}
	traffic, serial, serialReport := trainAt(t, 1)
	_, wide, wideReport := trainAt(t, 8)

	// The trained models must be bit-identical, not merely close.
	if serial.Accuracy != wide.Accuracy {
		t.Errorf("Accuracy diverged: Workers:1 %v vs Workers:8 %v", serial.Accuracy, wide.Accuracy)
	}
	if serialReport.OutliersFiltered != wideReport.OutliersFiltered {
		t.Errorf("OutliersFiltered diverged: %d vs %d",
			serialReport.OutliersFiltered, wideReport.OutliersFiltered)
	}
	if serial.TrainedRows != wide.TrainedRows {
		t.Errorf("TrainedRows diverged: %d vs %d", serial.TrainedRows, wide.TrainedRows)
	}
	if serial.NoveltyThreshold != wide.NoveltyThreshold {
		t.Errorf("NoveltyThreshold diverged: %v vs %v", serial.NoveltyThreshold, wide.NoveltyThreshold)
	}
	if serial.KMeans.WCSS != wide.KMeans.WCSS {
		t.Errorf("WCSS diverged: %v vs %v", serial.KMeans.WCSS, wide.KMeans.WCSS)
	}
	sr, sc := serial.KMeans.Centroids.Dims()
	wr, wc := wide.KMeans.Centroids.Dims()
	if sr != wr || sc != wc {
		t.Fatalf("centroid shape diverged: %dx%d vs %dx%d", sr, sc, wr, wc)
	}
	for i := 0; i < sr; i++ {
		for j := 0; j < sc; j++ {
			if a, b := serial.KMeans.Centroids.At(i, j), wide.KMeans.Centroids.At(i, j); a != b {
				t.Fatalf("centroid[%d][%d] diverged: %v vs %v", i, j, a, b)
			}
		}
	}

	// Scoring every session must agree row for row — same cluster
	// assignments, same flags — whichever model scores and whatever pool
	// size the batch uses.
	n := len(traffic.Sessions)
	vectors := make([][]float64, n)
	claims := make([]ua.Release, n)
	for i, s := range traffic.Sessions {
		vectors[i] = s.Vector
		claims[i] = s.Claimed
	}
	serialRes, err := serial.ScoreBatchWorkers(vectors, claims, 1)
	if err != nil {
		t.Fatal(err)
	}
	wideRes, err := wide.ScoreBatchWorkers(vectors, claims, 8)
	if err != nil {
		t.Fatal(err)
	}
	serialFlagged, wideFlagged := 0, 0
	for i := range serialRes {
		if serialRes[i] != wideRes[i] {
			t.Fatalf("session %d diverged: Workers:1 %+v vs Workers:8 %+v", i, serialRes[i], wideRes[i])
		}
		if serialRes[i].Flagged() {
			serialFlagged++
		}
		if wideRes[i].Flagged() {
			wideFlagged++
		}
	}
	if serialFlagged != wideFlagged {
		t.Errorf("flagged count diverged: %d vs %d", serialFlagged, wideFlagged)
	}
	if serialFlagged == 0 {
		t.Error("no sessions flagged; invariance check is vacuous")
	}
}
