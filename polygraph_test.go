package polygraph

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd exercises the re-exported surface the README
// advertises: generate traffic, train, score, save/load.
func TestPublicAPIEndToEnd(t *testing.T) {
	tcfg := DefaultTrafficConfig()
	tcfg.Sessions = 15000
	traffic, err := GenerateTraffic(tcfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultTrainConfig()
	model, report, err := Train(traffic.Samples(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if model.Accuracy < 0.98 {
		t.Fatalf("accuracy %v", model.Accuracy)
	}
	if report.InputRows != 15000 {
		t.Fatalf("report rows %d", report.InputRows)
	}

	// Honest session.
	honest := traffic.Sessions[0]
	res, err := model.Score(honest.Vector, honest.Claimed)
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	// Save/load parity.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := loaded.Score(honest.Vector, honest.Claimed)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Fatal("reloaded model disagrees")
	}
}

func TestTable8FeaturesExported(t *testing.T) {
	if len(Table8Features()) != 28 {
		t.Fatal("Table 8 feature set wrong size")
	}
}

func TestParseUserAgentExported(t *testing.T) {
	r, err := ParseUserAgent("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36")
	if err != nil {
		t.Fatal(err)
	}
	if r.Vendor != Chrome || r.Version != 112 {
		t.Fatalf("parsed %v", r)
	}
}
