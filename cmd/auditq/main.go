// Command auditq queries and checks decision audit ledgers written by
// internal/audit (polygraphd -audit-dir, loadgen -audit-dir).
//
// Subcommands:
//
//	auditq verify <dir>                 walk every frame; fail on any
//	                                    checksum/framing damage other
//	                                    than a torn tail on the final
//	                                    segment (a crash artifact)
//	auditq ls [-n N] [-verdict v] [-trace id] [-json] <dir>
//	                                    print matching records
//	auditq replay -model model.json [-explain] <dir>
//	                                    re-score every recorded vector
//	                                    through the model file and fail
//	                                    on any verdict divergence
//
// Replay is the machine-checkable consistency invariant: a verdict is
// only trustworthy if the recorded (vector, user-agent) re-derives it
// bit-for-bit through the recorded model. The model file's hash must
// match the hash stamped on the records; -explain additionally
// re-derives each stored explanation byte-for-byte.
//
// Exit codes: 0 clean, 1 verification/replay failures, 2 usage/read
// error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"polygraph/internal/audit"
	"polygraph/internal/core"
	"polygraph/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "verify":
		return runVerify(args[1:], stdout, stderr)
	case "ls":
		return runLs(args[1:], stdout, stderr)
	case "replay":
		return runReplay(args[1:], stdout, stderr)
	case "version", "-version", "--version":
		fmt.Fprintln(stdout, obs.Version("auditq"))
		return 0
	default:
		fmt.Fprintf(stderr, "auditq: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  auditq verify <ledger-dir>
  auditq ls [-n N] [-verdict flagged|benign] [-trace id] [-json] <ledger-dir>
  auditq replay -model model.json [-explain] [-v] <ledger-dir>`)
}

func ledgerArg(fs *flag.FlagSet, stderr io.Writer) (string, bool) {
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "auditq: exactly one ledger directory required")
		return "", false
	}
	return fs.Arg(0), true
}

func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("auditq verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	prefix := fs.String("prefix", "", "segment name prefix (default decisions)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dir, ok := ledgerArg(fs, stderr)
	if !ok {
		return 2
	}
	stats, err := audit.Scan(dir, *prefix, nil)
	if err != nil {
		fmt.Fprintf(stderr, "auditq: %v\n", err)
		return 2
	}
	if stats.Segments == 0 {
		fmt.Fprintf(stderr, "auditq: %s: no ledger segments found\n", dir)
		return 2
	}
	fmt.Fprintf(stdout, "auditq: %s: %d segment(s), %d record(s)\n", dir, stats.Segments, stats.Records)
	if stats.Acceptable() {
		if !stats.Clean() {
			fmt.Fprintf(stdout, "auditq: torn tail on final segment %s (crash artifact; writer truncates on reopen)\n",
				stats.TornSegments[0])
		}
		fmt.Fprintln(stdout, "auditq: verify OK — zero checksum failures")
		return 0
	}
	for _, seg := range stats.TornSegments {
		fmt.Fprintf(stdout, "auditq: DAMAGED segment %s\n", seg)
	}
	fmt.Fprintf(stderr, "auditq: verify FAILED: %d damaged segment(s)\n", len(stats.TornSegments))
	return 1
}

func runLs(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("auditq ls", flag.ContinueOnError)
	fs.SetOutput(stderr)
	prefix := fs.String("prefix", "", "segment name prefix (default decisions)")
	n := fs.Int("n", 0, "print at most N records (0 = all)")
	verdict := fs.String("verdict", "", "filter: flagged or benign")
	trace := fs.String("trace", "", "filter: exact trace ID")
	asJSON := fs.Bool("json", false, "print full records as JSON lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *verdict {
	case "", "flagged", "benign":
	default:
		fmt.Fprintf(stderr, "auditq: bad -verdict %q (want flagged or benign)\n", *verdict)
		return 2
	}
	dir, ok := ledgerArg(fs, stderr)
	if !ok {
		return 2
	}
	enc := json.NewEncoder(stdout)
	printed := 0
	stats, err := audit.Scan(dir, *prefix, func(rec audit.Record) error {
		if *verdict == "flagged" && !rec.Verdict.Flagged {
			return nil
		}
		if *verdict == "benign" && rec.Verdict.Flagged {
			return nil
		}
		if *trace != "" && rec.TraceID != *trace {
			return nil
		}
		if *n > 0 && printed >= *n {
			return nil
		}
		printed++
		if *asJSON {
			return enc.Encode(&rec)
		}
		_, err := fmt.Fprintf(stdout, "seq=%d trace=%s endpoint=%s flagged=%v cluster=%d risk=%d ua=%q\n",
			rec.Seq, rec.TraceID, rec.Endpoint, rec.Verdict.Flagged, rec.Verdict.Cluster, rec.Verdict.RiskFactor, rec.UserAgent)
		return err
	})
	if err != nil {
		fmt.Fprintf(stderr, "auditq: %v\n", err)
		return 2
	}
	if !stats.Acceptable() {
		fmt.Fprintf(stderr, "auditq: warning: ledger has damaged segments (run auditq verify)\n")
		return 1
	}
	return 0
}

func runReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("auditq replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	prefix := fs.String("prefix", "", "segment name prefix (default decisions)")
	modelPath := fs.String("model", "", "model file the ledger was recorded against (required)")
	explain := fs.Bool("explain", false, "also re-derive and compare stored explanations byte-for-byte")
	verbose := fs.Bool("v", false, "print every mismatch in detail")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *modelPath == "" {
		fmt.Fprintln(stderr, "auditq: replay requires -model")
		return 2
	}
	dir, ok := ledgerArg(fs, stderr)
	if !ok {
		return 2
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintf(stderr, "auditq: %v\n", err)
		return 2
	}
	model, err := core.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "auditq: load model: %v\n", err)
		return 2
	}
	hash, err := model.Hash()
	if err != nil {
		fmt.Fprintf(stderr, "auditq: hash model: %v\n", err)
		return 2
	}

	var replayed, mismatches, hashMismatches int
	stats, err := audit.Scan(dir, *prefix, func(rec audit.Record) error {
		if rec.ModelHash != "" && rec.ModelHash != hash {
			hashMismatches++
			if *verbose {
				fmt.Fprintf(stdout, "seq=%d: recorded under model %s, replaying with %s\n", rec.Seq, rec.ModelHash, hash)
			}
			return nil
		}
		replayed++
		res, err := model.ScoreString(rec.Vector, rec.UserAgent)
		if err != nil {
			mismatches++
			fmt.Fprintf(stdout, "seq=%d trace=%s: replay scoring failed: %v\n", rec.Seq, rec.TraceID, err)
			return nil
		}
		got := core.VerdictOf(res)
		if got != rec.Verdict {
			mismatches++
			fmt.Fprintf(stdout, "seq=%d trace=%s: VERDICT DIVERGED\n  recorded: %+v\n  replayed: %+v\n",
				rec.Seq, rec.TraceID, rec.Verdict, got)
			return nil
		}
		if *explain && rec.Explanation != nil {
			ex, err := model.ExplainResult(rec.Vector, rec.UserAgent, res, len(rec.Explanation.TopFeatures))
			if err != nil {
				mismatches++
				fmt.Fprintf(stdout, "seq=%d: replay explanation failed: %v\n", rec.Seq, err)
				return nil
			}
			want, _ := json.Marshal(rec.Explanation)
			gotJSON, _ := json.Marshal(ex)
			if !bytes.Equal(want, gotJSON) {
				mismatches++
				fmt.Fprintf(stdout, "seq=%d trace=%s: EXPLANATION DIVERGED\n", rec.Seq, rec.TraceID)
				if *verbose {
					fmt.Fprintf(stdout, "  recorded: %s\n  replayed: %s\n", want, gotJSON)
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "auditq: %v\n", err)
		return 2
	}
	if stats.Segments == 0 {
		fmt.Fprintf(stderr, "auditq: %s: no ledger segments found\n", dir)
		return 2
	}
	fmt.Fprintf(stdout, "auditq: replayed %d/%d record(s) against model %s\n", replayed, stats.Records, hash)
	if hashMismatches > 0 {
		fmt.Fprintf(stdout, "auditq: skipped %d record(s) stamped with a different model hash\n", hashMismatches)
	}
	ok2 := true
	if !stats.Acceptable() {
		fmt.Fprintf(stderr, "auditq: replay FAILED: ledger has damaged segments\n")
		ok2 = false
	}
	if mismatches > 0 {
		fmt.Fprintf(stderr, "auditq: replay FAILED: %d verdict(s) did not re-derive\n", mismatches)
		ok2 = false
	}
	if replayed == 0 {
		fmt.Fprintf(stderr, "auditq: replay FAILED: no records matched the model hash\n")
		ok2 = false
	}
	if !ok2 {
		return 1
	}
	fmt.Fprintf(stdout, "auditq: replay OK — 100%% of verdicts re-derived identically\n")
	return 0
}
