package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polygraph/internal/audit"
	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// trainModel builds a small deterministic model; perUA varies the
// training set so two calls with different values yield distinct hashes.
func trainModel(t *testing.T, perUA int) (*core.Model, *fingerprint.Extractor) {
	t.Helper()
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	releases := []ua.Release{
		{Vendor: ua.Chrome, Version: 95}, {Vendor: ua.Chrome, Version: 112},
		{Vendor: ua.Chrome, Version: 114}, {Vendor: ua.Edge, Version: 112},
		{Vendor: ua.Firefox, Version: 95}, {Vendor: ua.Firefox, Version: 110},
	}
	var samples []core.Sample
	for _, r := range releases {
		for i := 0; i < perUA; i++ {
			p := browser.Profile{Release: r, OS: ua.Windows10}
			samples = append(samples, core.Sample{Vector: ext.Extract(p), UA: r})
		}
	}
	cfg := core.DefaultTrainConfig()
	cfg.K = 6
	cfg.Contamination = 0
	cfg.Reference = core.ExtractorReference{Extractor: ext, OS: ua.Windows10}
	m, _, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, ext
}

// buildFixture writes a model file plus a ledger of scored decisions and
// returns (ledgerDir, modelPath, flaggedTraceID).
func buildFixture(t *testing.T) (string, string) {
	t.Helper()
	m, ext := trainModel(t, 30)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	hash, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ledgerDir := filepath.Join(dir, "audit")
	if err := os.MkdirAll(ledgerDir, 0o755); err != nil {
		t.Fatal(err)
	}
	led, err := audit.Open(audit.Config{Dir: ledgerDir})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		actual, claimed ua.Release
	}{
		{ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112}},
		{ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110}},
		{ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Release{Vendor: ua.Firefox, Version: 110}},
		{ua.Release{Vendor: ua.Chrome, Version: 114}, ua.Release{Vendor: ua.Chrome, Version: 95}},
	}
	for i, c := range cases {
		vec := ext.Extract(browser.Profile{Release: c.actual, OS: ua.Windows10})
		userAgent := ua.UserAgent(c.claimed, ua.Windows10)
		res, err := m.ScoreString(vec, userAgent)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := m.ExplainResult(vec, userAgent, res, core.DefaultExplainTopK)
		if err != nil {
			t.Fatal(err)
		}
		rec := audit.Record{
			TraceID:     "000000000000000" + string(rune('1'+i)),
			ModelHash:   hash,
			UserAgent:   userAgent,
			Vector:      vec,
			Verdict:     ex.Verdict,
			Explanation: ex,
		}
		if err := led.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	return ledgerDir, modelPath
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestVerifyCleanLedger(t *testing.T) {
	dir, _ := buildFixture(t)
	code, out, errOut := runCmd(t, "verify", dir)
	if code != 0 {
		t.Fatalf("verify exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "verify OK") || !strings.Contains(out, "4 record(s)") {
		t.Fatalf("verify output: %s", out)
	}
}

func TestVerifyTornTailAccepted(t *testing.T) {
	dir, _ := buildFixture(t)
	segs, err := audit.Segments(dir, "")
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCmd(t, "verify", dir)
	if code != 0 {
		t.Fatalf("torn tail rejected: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "torn tail") {
		t.Fatalf("torn tail not reported: %s", out)
	}
}

func TestVerifyDamagedSealedSegment(t *testing.T) {
	dir, modelPath := buildFixture(t)
	// Force a second segment so corruption lands in a sealed (non-final)
	// one, which is never a legitimate crash artifact.
	led, err := audit.Open(audit.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := led.Append(audit.Record{UserAgent: "x", Verdict: core.Verdict{Flagged: true}}); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := audit.Segments(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected ≥2 segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runCmd(t, "verify", dir)
	if code != 1 {
		t.Fatalf("damaged ledger exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "DAMAGED") {
		t.Fatalf("damage not reported: %s", out)
	}

	// replay must refuse a damaged ledger too.
	code, _, errOut = runCmd(t, "replay", "-model", modelPath, dir)
	if code != 1 || !strings.Contains(errOut, "damaged") {
		t.Fatalf("replay on damaged ledger: exit %d, stderr %s", code, errOut)
	}
}

func TestLsFilters(t *testing.T) {
	dir, _ := buildFixture(t)
	code, out, _ := runCmd(t, "ls", dir)
	if code != 0 {
		t.Fatalf("ls exit %d", code)
	}
	if n := strings.Count(out, "seq="); n != 4 {
		t.Fatalf("ls printed %d records, want 4:\n%s", n, out)
	}

	code, out, _ = runCmd(t, "ls", "-verdict", "flagged", dir)
	if code != 0 {
		t.Fatalf("ls -verdict flagged exit %d", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "flagged=true") {
			t.Fatalf("non-flagged line in flagged filter: %q", line)
		}
	}

	code, out, _ = runCmd(t, "ls", "-n", "1", dir)
	if code != 0 || strings.Count(out, "seq=") != 1 {
		t.Fatalf("ls -n 1: exit %d\n%s", code, out)
	}

	code, out, _ = runCmd(t, "ls", "-trace", "0000000000000002", "-json", dir)
	if code != 0 || strings.Count(out, "\n") != 1 {
		t.Fatalf("ls -trace -json: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, `"trace_id":"0000000000000002"`) {
		t.Fatalf("trace filter output: %s", out)
	}

	if code, _, _ := runCmd(t, "ls", "-verdict", "suspicious", dir); code != 2 {
		t.Fatalf("bad -verdict exit %d, want 2", code)
	}
}

func TestReplayCleanLedger(t *testing.T) {
	dir, modelPath := buildFixture(t)
	code, out, errOut := runCmd(t, "replay", "-model", modelPath, dir)
	if code != 0 {
		t.Fatalf("replay exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "replayed 4/4") || !strings.Contains(out, "100% of verdicts re-derived identically") {
		t.Fatalf("replay output: %s", out)
	}

	code, out, _ = runCmd(t, "replay", "-model", modelPath, "-explain", dir)
	if code != 0 || !strings.Contains(out, "100% of verdicts re-derived identically") {
		t.Fatalf("replay -explain exit %d\n%s", code, out)
	}
}

func TestReplayWrongModel(t *testing.T) {
	dir, _ := buildFixture(t)
	other, _ := trainModel(t, 12)
	otherPath := filepath.Join(t.TempDir(), "other.json")
	f, err := os.Create(otherPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out, errOut := runCmd(t, "replay", "-model", otherPath, dir)
	if code != 1 {
		t.Fatalf("wrong-model replay exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "skipped 4 record(s)") || !strings.Contains(errOut, "no records matched the model hash") {
		t.Fatalf("wrong-model output:\nstdout: %s\nstderr: %s", out, errOut)
	}
}

func TestReplayDetectsTamperedVerdict(t *testing.T) {
	m, ext := trainModel(t, 30)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	hash, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ledgerDir := filepath.Join(dir, "audit")
	led, err := audit.Open(audit.Config{Dir: ledgerDir})
	if err != nil {
		t.Fatal(err)
	}
	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	vec := ext.Extract(browser.Profile{Release: rel, OS: ua.Windows10})
	userAgent := ua.UserAgent(rel, ua.Windows10)
	res, err := m.ScoreString(vec, userAgent)
	if err != nil {
		t.Fatal(err)
	}
	verdict := core.VerdictOf(res)
	verdict.Flagged = !verdict.Flagged // the lie replay must catch
	if err := led.Append(audit.Record{ModelHash: hash, UserAgent: userAgent, Vector: vec, Verdict: verdict}); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runCmd(t, "replay", "-model", modelPath, ledgerDir)
	if code != 1 {
		t.Fatalf("tampered replay exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "VERDICT DIVERGED") || !strings.Contains(errOut, "did not re-derive") {
		t.Fatalf("tamper not reported:\nstdout: %s\nstderr: %s", out, errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("no args accepted")
	}
	if code, _, _ := runCmd(t, "bogus"); code != 2 {
		t.Fatal("unknown subcommand accepted")
	}
	if code, _, _ := runCmd(t, "replay", t.TempDir()); code != 2 {
		t.Fatal("replay without -model accepted")
	}
	if code, _, _ := runCmd(t, "verify"); code != 2 {
		t.Fatal("verify without dir accepted")
	}
	if code, _, _ := runCmd(t, "verify", t.TempDir()); code != 2 {
		t.Fatal("verify on empty dir accepted")
	}
}
