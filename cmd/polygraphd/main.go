// Command polygraphd runs the Browser Polygraph collection and scoring
// service: it serves the fingerprinting script, ingests ≤1 KB payloads,
// and returns real-time risk decisions.
//
// Usage:
//
//	polygraphd -model model.json -addr :8080
//	polygraphd -train -sessions 40000 -addr :8080   # train in-process first
//
// SIGHUP reloads the model and hot-swaps it into the running service —
// the deployment step of the drift detector's retraining loop. When the
// daemon was started with -train, SIGHUP retrains in-process; otherwise
// it rereads -model. The reload runs asynchronously under a context
// bounded by -reload-timeout and is cancelled cleanly on shutdown, so a
// SIGTERM never waits behind a half-finished retrain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/ua"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		modelPath     = flag.String("model", "model.json", "trained model path")
		train         = flag.Bool("train", false, "train a fresh model in-process instead of loading one")
		sessions      = flag.Int("sessions", 40000, "sessions to generate when -train is set")
		journalDir    = flag.String("journal", "", "directory for the durable flagged-decision journal (empty = off)")
		novelty       = flag.Bool("novelty", false, "arm the novelty guard when training with -train")
		rateLimit     = flag.Float64("rate-limit", 0, "per-client-IP requests/second on the ingest endpoints (0 = off)")
		reloadTimeout = flag.Duration("reload-timeout", 5*time.Minute, "deadline for a SIGHUP model reload/retrain")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "polygraphd ", log.LstdFlags)

	// The signal context exists before the first model load so that a
	// SIGINT during a slow in-process training run aborts it promptly
	// instead of waiting out the full train.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	model, report, err := obtainModel(ctx, *train, *modelPath, *sessions, *novelty, logger)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			logger.Fatalf("model: startup interrupted: %v", err)
		}
		logger.Fatalf("model: %v", err)
	}
	logger.Printf("model ready: %d features, %d clusters, training accuracy %.2f%%",
		model.Dim(), model.KMeans.K, 100*model.Accuracy)
	if report != nil {
		for _, st := range report.Stages {
			logger.Printf("train stage %-14s %8.1fms  rows %d -> %d",
				st.Name, float64(st.Duration.Microseconds())/1000, st.RowsIn, st.RowsOut)
		}
	}

	srvCfg := collect.Config{Model: model, Logger: logger, RateLimitPerSec: *rateLimit}
	if *journalDir != "" {
		journal, err := collect.OpenJournal(*journalDir, "decisions", 0)
		if err != nil {
			logger.Fatalf("journal: %v", err)
		}
		defer journal.Close()
		srvCfg.Journal = journal
		logger.Printf("journaling flagged decisions to %s", *journalDir)
	}
	srv, err := collect.NewServer(srvCfg)
	if err != nil {
		logger.Fatalf("server: %v", err)
	}
	if report != nil {
		srv.SetTrainStages(report.Stages)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		// Ingest bodies are ≤1 KB and scoring takes microseconds, so
		// these bounds are generous for legitimate clients while keeping
		// slow-loris connections from pinning goroutines.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  120 * time.Second,
	}

	// Hot model reload on SIGHUP, asynchronously: the serve loop stays
	// responsive (a second SIGHUP during a reload is ignored, and
	// shutdown cancels the in-flight retrain through ctx).
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	type reloadResult struct {
		model  *core.Model
		report *core.TrainReport
		err    error
	}
	reloadCh := make(chan reloadResult, 1)
	reloading := false

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

loop:
	for {
		select {
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Fatalf("serve: %v", err)
			}
			break loop
		case <-hup:
			if reloading {
				logger.Printf("reload: already in progress, ignoring SIGHUP")
				continue
			}
			reloading = true
			go func() {
				rctx, cancel := context.WithTimeout(ctx, *reloadTimeout)
				defer cancel()
				m, rep, err := obtainModel(rctx, *train, *modelPath, *sessions, *novelty, logger)
				reloadCh <- reloadResult{model: m, report: rep, err: err}
			}()
		case res := <-reloadCh:
			reloading = false
			if res.err != nil {
				if errors.Is(res.err, core.ErrCanceled) {
					logger.Printf("reload: canceled: %v (keeping current model)", res.err)
				} else {
					logger.Printf("reload: %v (keeping current model)", res.err)
				}
				continue
			}
			if err := srv.SwapModel(res.model); err != nil {
				logger.Printf("reload: %v", err)
				continue
			}
			if res.report != nil {
				srv.SetTrainStages(res.report.Stages)
			}
			logger.Printf("reloaded model (accuracy %.2f%%)", 100*res.model.Accuracy)
		case <-ctx.Done():
			logger.Printf("shutting down...")
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutdownCtx); err != nil {
				logger.Printf("shutdown: %v", err)
			}
			break loop
		}
	}
	stats := srv.Snapshot()
	logger.Printf("served %d collections (%d flagged, %d rejected), avg score %.1fµs",
		stats.Received, stats.Flagged, stats.Rejected, stats.AvgScoreUs)
}

// obtainModel produces the serving model under ctx: either by loading
// the file at path or, when train is set, by generating traffic and
// training in-process (cancellable mid-stage — see core.TrainContext).
// The report is nil when the model came from a file.
func obtainModel(ctx context.Context, train bool, path string, sessions int, novelty bool, logger *log.Logger) (*core.Model, *core.TrainReport, error) {
	if !train {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("open %s (use -train to train in-process): %w", path, err)
		}
		defer f.Close()
		m, err := core.Load(f)
		return m, nil, err
	}
	logger.Printf("training in-process on %d generated sessions...", sessions)
	cfg := dataset.DefaultConfig()
	cfg.Sessions = sessions
	traffic, err := dataset.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	tc := core.DefaultTrainConfig()
	tc.NoveltyGuard = novelty
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	return core.TrainContext(ctx, traffic.Samples(), tc)
}
