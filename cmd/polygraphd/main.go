// Command polygraphd runs the Browser Polygraph collection and scoring
// service: it serves the fingerprinting script, ingests ≤1 KB payloads,
// and returns real-time risk decisions.
//
// Usage:
//
//	polygraphd -model model.json -addr :8080
//	polygraphd -train -sessions 40000 -addr :8080   # train in-process first
//
// SIGHUP reloads the model and hot-swaps it into the running service —
// the deployment step of the drift detector's retraining loop. When the
// daemon was started with -train, SIGHUP retrains in-process; otherwise
// it rereads -model. The reload runs asynchronously under a context
// bounded by -reload-timeout and is cancelled cleanly on shutdown, so a
// SIGTERM never waits behind a half-finished retrain.
//
// Observability: logs are structured (log/slog; -log-json switches to
// JSON), every ingest request is traced (last/slowest traces at
// /debug/traces on the serving listener), /metrics exports per-endpoint
// latency histograms and live feature-PSI drift gauges (-drift-interval
// drives the background evaluation loop), and -debug-addr opens a
// separate listener with net/http/pprof and expvar for profiling —
// kept off the public serving port on purpose.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polygraph/internal/audit"
	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
	"polygraph/internal/ua"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		modelPath     = flag.String("model", "model.json", "trained model path")
		train         = flag.Bool("train", false, "train a fresh model in-process instead of loading one")
		sessions      = flag.Int("sessions", 40000, "sessions to generate when -train is set")
		journalDir    = flag.String("journal", "", "directory for the durable flagged-decision journal (empty = off)")
		novelty       = flag.Bool("novelty", false, "arm the novelty guard when training with -train")
		rateLimit     = flag.Float64("rate-limit", 0, "per-client-IP requests/second on the ingest endpoints (0 = off)")
		reloadTimeout = flag.Duration("reload-timeout", 5*time.Minute, "deadline for a SIGHUP model reload/retrain")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		debugAddr     = flag.String("debug-addr", "", "separate listener for pprof/expvar (empty = off)")
		slowRequest   = flag.Duration("slow-request", 100*time.Millisecond, "log requests slower than this with their trace")
		traceRing     = flag.Int("trace-ring", 256, "finished request traces retained for /debug/traces")
		traceSeed     = flag.Uint64("trace-seed", 1, "seed for the deterministic trace-ID stream")
		driftInterval = flag.Duration("drift-interval", time.Minute, "period of the live feature-drift PSI evaluation (0 = off)")
		driftRes      = flag.Int("drift-reservoir", 512, "feature vectors sampled from live traffic for drift PSI")
		auditDir      = flag.String("audit-dir", "", "directory for the checksummed decision audit ledger (empty = off)")
		auditSample   = flag.Int("audit-sample", 1, "record every Nth benign decision in the audit ledger (flagged always recorded)")
		auditMaxBytes = flag.Int64("audit-max-bytes", 0, "rotate audit-ledger segments beyond this size (0 = 16 MiB default)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logJSON).With("app", "polygraphd")
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	// The signal context exists before the first model load so that a
	// SIGINT during a slow in-process training run aborts it promptly
	// instead of waiting out the full train.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	model, report, baseline, err := obtainModel(ctx, *train, *modelPath, *sessions, *novelty, logger)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			fatalf("model: startup interrupted: %v", err)
		}
		fatalf("model: %v", err)
	}
	logger.Info("model ready",
		"features", model.Dim(), "clusters", model.KMeans.K,
		"accuracy_pct", fmt.Sprintf("%.2f", 100*model.Accuracy))
	if report != nil {
		for _, st := range report.Stages {
			logger.Info("train stage", "stage", st.Name,
				"ms", fmt.Sprintf("%.1f", float64(st.Duration.Microseconds())/1000),
				"rows_in", st.RowsIn, "rows_out", st.RowsOut)
		}
	}

	// Live drift telemetry: accepted feature vectors flow into a
	// reservoir compared against the training baseline every
	// -drift-interval. Without -train there is no baseline on hand, so
	// the monitor self-baselines from the first reservoir fill.
	var driftMon *obs.DriftMonitor
	if *driftInterval > 0 {
		driftMon, err = obs.NewDriftMonitor(obs.DriftConfig{
			Features:  fingerprint.Names(model.Features),
			Baseline:  baseline,
			Reservoir: *driftRes,
			Seed:      *traceSeed,
			Logger:    logger,
		})
		if err != nil {
			fatalf("drift: %v", err)
		}
		go driftMon.Run(ctx, *driftInterval)
	}

	srvCfg := collect.Config{
		Model:           model,
		Logger:          logger,
		RateLimitPerSec: *rateLimit,
		TraceRingSize:   *traceRing,
		TraceSeed:       *traceSeed,
		SlowRequest:     *slowRequest,
		Drift:           driftMon,
	}
	if *journalDir != "" {
		journal, err := collect.OpenJournal(*journalDir, "decisions", 0)
		if err != nil {
			fatalf("journal: %v", err)
		}
		defer journal.Close()
		srvCfg.Journal = journal
		logger.Info("journaling flagged decisions", "dir", *journalDir)
	}
	var auditLedger *audit.Ledger
	if *auditDir != "" {
		auditLedger, err = audit.Open(audit.Config{
			Dir:          *auditDir,
			MaxBytes:     *auditMaxBytes,
			SampleBenign: *auditSample,
		})
		if err != nil {
			fatalf("audit: %v", err)
		}
		defer auditLedger.Close()
		srvCfg.Audit = auditLedger
		logger.Info("auditing decisions", "dir", *auditDir, "benign_sample", *auditSample)
	}
	srv, err := collect.NewServer(srvCfg)
	if err != nil {
		fatalf("server: %v", err)
	}
	if report != nil {
		srv.SetTrainStages(report.Stages)
		srv.SetModelTrainedAt(time.Now())
	} else if fi, err := os.Stat(*modelPath); err == nil {
		// A loaded model's best staleness proxy is the file's mtime.
		srv.SetModelTrainedAt(fi.ModTime())
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		// Ingest bodies are ≤1 KB and scoring takes microseconds, so
		// these bounds are generous for legitimate clients while keeping
		// slow-loris connections from pinning goroutines.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  120 * time.Second,
	}

	// The profiling listener is separate from the serving one so the
	// pprof surface never faces ingest traffic (and can bind loopback
	// while the service binds a VIP).
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(srv),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}

	// Hot model reload on SIGHUP, asynchronously: the serve loop stays
	// responsive (a second SIGHUP during a reload is ignored, and
	// shutdown cancels the in-flight retrain through ctx).
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	type reloadResult struct {
		model    *core.Model
		report   *core.TrainReport
		baseline [][]float64
		err      error
	}
	reloadCh := make(chan reloadResult, 1)
	reloading := false

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

loop:
	for {
		select {
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatalf("serve: %v", err)
			}
			break loop
		case <-hup:
			// SIGHUP also seals the active audit segment so operators can
			// archive sealed segments on the same signal that reloads the
			// model.
			if auditLedger != nil {
				if err := auditLedger.Rotate(); err != nil {
					logger.Warn("audit rotate failed", "err", err.Error())
				} else {
					logger.Info("audit ledger rotated", "dir", *auditDir)
				}
			}
			if reloading {
				logger.Info("reload already in progress, ignoring SIGHUP")
				continue
			}
			reloading = true
			go func() {
				rctx, cancel := context.WithTimeout(ctx, *reloadTimeout)
				defer cancel()
				m, rep, base, err := obtainModel(rctx, *train, *modelPath, *sessions, *novelty, logger)
				reloadCh <- reloadResult{model: m, report: rep, baseline: base, err: err}
			}()
		case res := <-reloadCh:
			reloading = false
			if res.err != nil {
				if errors.Is(res.err, core.ErrCanceled) {
					logger.Warn("reload canceled, keeping current model", "err", res.err.Error())
				} else {
					logger.Warn("reload failed, keeping current model", "err", res.err.Error())
				}
				continue
			}
			if err := srv.SwapModel(res.model); err != nil {
				logger.Warn("reload swap failed", "err", err.Error())
				continue
			}
			if res.report != nil {
				srv.SetTrainStages(res.report.Stages)
				srv.SetModelTrainedAt(time.Now())
			} else if fi, err := os.Stat(*modelPath); err == nil {
				srv.SetModelTrainedAt(fi.ModTime())
			}
			if driftMon != nil && res.baseline != nil {
				if err := driftMon.SetBaseline(res.baseline, 0); err != nil {
					logger.Warn("reload drift baseline rejected", "err", err.Error())
				}
			}
			logger.Info("reloaded model",
				"accuracy_pct", fmt.Sprintf("%.2f", 100*res.model.Accuracy))
		case <-ctx.Done():
			logger.Info("shutting down")
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutdownCtx); err != nil {
				logger.Warn("shutdown", "err", err.Error())
			}
			if debugSrv != nil {
				debugSrv.Shutdown(shutdownCtx)
			}
			break loop
		}
	}
	stats := srv.Snapshot()
	logger.Info("served",
		"collections", stats.Received, "flagged", stats.Flagged, "rejected", stats.Rejected,
		"avg_score_us", fmt.Sprintf("%.1f", stats.AvgScoreUs))
}

// debugMux assembles the -debug-addr surface: pprof profiles, expvar,
// and (for convenience next to the profiles) the request-trace ring.
// See the README runbook for the capture recipe.
func debugMux(srv *collect.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/traces", srv.Tracer().ServeTraces)
	// Forwarded to the collect server's handlers so the audit surface is
	// reachable from the profiling listener too; the serving listener
	// also exposes them plus a /debug/ index page.
	mux.Handle("/debug/decisions", srv)
	return mux
}

// obtainModel produces the serving model under ctx: either by loading
// the file at path or, when train is set, by generating traffic and
// training in-process (cancellable mid-stage — see core.TrainContext).
// The report and baseline (the training feature vectors, for the drift
// monitor) are nil when the model came from a file.
func obtainModel(ctx context.Context, train bool, path string, sessions int, novelty bool, logger *slog.Logger) (*core.Model, *core.TrainReport, [][]float64, error) {
	if !train {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("open %s (use -train to train in-process): %w", path, err)
		}
		defer f.Close()
		m, err := core.Load(f)
		return m, nil, nil, err
	}
	logger.Info("training in-process", "sessions", sessions)
	cfg := dataset.DefaultConfig()
	cfg.Sessions = sessions
	traffic, err := dataset.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	samples := traffic.Samples()
	tc := core.DefaultTrainConfig()
	tc.NoveltyGuard = novelty
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	m, rep, err := core.TrainContext(ctx, samples, tc)
	if err != nil {
		return nil, nil, nil, err
	}
	baseline := make([][]float64, len(samples))
	for i := range samples {
		baseline[i] = samples[i].Vector
	}
	return m, rep, baseline, nil
}
