// Command polygraphd runs the Browser Polygraph collection and scoring
// service: it serves the fingerprinting script, ingests ≤1 KB payloads,
// and returns real-time risk decisions.
//
// Usage:
//
//	polygraphd -model model.json -addr :8080
//	polygraphd -train -sessions 40000 -addr :8080   # train in-process first
//
// SIGHUP reloads the model file and hot-swaps it into the running
// service — the deployment step of the drift detector's retraining loop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/ua"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		modelPath  = flag.String("model", "model.json", "trained model path")
		train      = flag.Bool("train", false, "train a fresh model in-process instead of loading one")
		sessions   = flag.Int("sessions", 40000, "sessions to generate when -train is set")
		journalDir = flag.String("journal", "", "directory for the durable flagged-decision journal (empty = off)")
		novelty    = flag.Bool("novelty", false, "arm the novelty guard when training with -train")
		rateLimit  = flag.Float64("rate-limit", 0, "per-client-IP requests/second on the ingest endpoints (0 = off)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "polygraphd ", log.LstdFlags)
	model, err := obtainModel(*train, *modelPath, *sessions, *novelty, logger)
	if err != nil {
		logger.Fatalf("model: %v", err)
	}
	logger.Printf("model ready: %d features, %d clusters, training accuracy %.2f%%",
		model.Dim(), model.KMeans.K, 100*model.Accuracy)

	srvCfg := collect.Config{Model: model, Logger: logger, RateLimitPerSec: *rateLimit}
	if *journalDir != "" {
		journal, err := collect.OpenJournal(*journalDir, "decisions", 0)
		if err != nil {
			logger.Fatalf("journal: %v", err)
		}
		defer journal.Close()
		srvCfg.Journal = journal
		logger.Printf("journaling flagged decisions to %s", *journalDir)
	}
	srv, err := collect.NewServer(srvCfg)
	if err != nil {
		logger.Fatalf("server: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM; hot model reload on SIGHUP.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

loop:
	for {
		select {
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Fatalf("serve: %v", err)
			}
			break loop
		case <-hup:
			fresh, err := obtainModel(false, *modelPath, 0, false, logger)
			if err != nil {
				logger.Printf("reload: %v (keeping current model)", err)
				continue
			}
			if err := srv.SwapModel(fresh); err != nil {
				logger.Printf("reload: %v", err)
				continue
			}
			logger.Printf("reloaded model from %s (accuracy %.2f%%)", *modelPath, 100*fresh.Accuracy)
		case <-ctx.Done():
			logger.Printf("shutting down...")
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutdownCtx); err != nil {
				logger.Printf("shutdown: %v", err)
			}
			break loop
		}
	}
	stats := srv.Snapshot()
	logger.Printf("served %d collections (%d flagged, %d rejected), avg score %.1fµs",
		stats.Received, stats.Flagged, stats.Rejected, stats.AvgScoreUs)
}

func obtainModel(train bool, path string, sessions int, novelty bool, logger *log.Logger) (*core.Model, error) {
	if !train {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open %s (use -train to train in-process): %w", path, err)
		}
		defer f.Close()
		return core.Load(f)
	}
	logger.Printf("training in-process on %d generated sessions...", sessions)
	cfg := dataset.DefaultConfig()
	cfg.Sessions = sessions
	traffic, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	tc := core.DefaultTrainConfig()
	tc.NoveltyGuard = novelty
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	model, _, err := core.Train(traffic.Samples(), tc)
	return model, err
}
