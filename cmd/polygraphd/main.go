// Command polygraphd runs the Browser Polygraph collection and scoring
// service: it serves the fingerprinting script, ingests ≤1 KB payloads,
// and returns real-time risk decisions.
//
// Usage:
//
//	polygraphd -model model.json -addr :8080
//	polygraphd -train -sessions 40000 -addr :8080   # train in-process first
//	polygraphd -warm -addr :8080                    # fleet-managed: wait for a push
//
// With -warm the daemon boots without a model and fails closed: every
// endpoint (including /healthz) answers 503 until the fleet control
// plane (cmd/polygraphctl push) deploys a model through POST
// /admin/model and hash-verifies it. A warm replica has no reload
// source, so SIGHUP only rotates the audit segment — redeployment is
// the controller's job.
//
// The replica runtime itself — model load/train, collect server, drift
// telemetry, journal, audit ledger, hot reload — lives in
// internal/serving so a fleet harness can run N replicas in one
// process; this command wires exactly one replica to flags, signals,
// and the optional pprof listener.
//
// SIGHUP reloads the model and hot-swaps it into the running service —
// the deployment step of the drift detector's retraining loop. When the
// daemon was started with -train, SIGHUP retrains in-process; otherwise
// it rereads -model. The reload runs asynchronously under a context
// bounded by -reload-timeout and is cancelled cleanly on shutdown, so a
// SIGTERM never waits behind a half-finished retrain. SIGHUP also seals
// the active audit segment so operators can archive sealed segments on
// the same signal.
//
// Observability: logs are structured (log/slog; -log-json switches to
// JSON), every ingest request is traced (last/slowest traces at
// /debug/traces on the serving listener), /metrics exports per-endpoint
// latency histograms and live feature-PSI drift gauges (-drift-interval
// drives the background evaluation loop), and -debug-addr opens a
// separate listener with net/http/pprof and expvar for profiling —
// kept off the public serving port on purpose. A burn-rate SLO engine
// (on by default; -slo-spec overrides the built-in objectives,
// -slo-interval 0 disables) self-scrapes the replica's counters,
// exports the polygraph_slo_* families, and serves GET /debug/slo.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/obs"
	"polygraph/internal/serving"
	"polygraph/internal/slo"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		modelPath     = flag.String("model", "model.json", "trained model path")
		train         = flag.Bool("train", false, "train a fresh model in-process instead of loading one")
		warm          = flag.Bool("warm", false, "start without a model and wait for a fleet push (everything 503s until /admin/model deploys one)")
		sessions      = flag.Int("sessions", 40000, "sessions to generate when -train is set")
		journalDir    = flag.String("journal", "", "directory for the durable flagged-decision journal (empty = off)")
		novelty       = flag.Bool("novelty", false, "arm the novelty guard when training with -train")
		rateLimit     = flag.Float64("rate-limit", 0, "per-client-IP requests/second on the ingest endpoints (0 = off)")
		reloadTimeout = flag.Duration("reload-timeout", 5*time.Minute, "deadline for a SIGHUP model reload/retrain")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		debugAddr     = flag.String("debug-addr", "", "separate listener for pprof/expvar (empty = off)")
		slowRequest   = flag.Duration("slow-request", 100*time.Millisecond, "log requests slower than this with their trace")
		traceRing     = flag.Int("trace-ring", 256, "finished request traces retained for /debug/traces")
		traceSeed     = flag.Uint64("trace-seed", 1, "seed for the deterministic trace-ID stream")
		driftInterval = flag.Duration("drift-interval", time.Minute, "period of the live feature-drift PSI evaluation (0 = off)")
		driftRes      = flag.Int("drift-reservoir", 512, "feature vectors sampled from live traffic for drift PSI")
		auditDir      = flag.String("audit-dir", "", "directory for the checksummed decision audit ledger (empty = off)")
		auditSample   = flag.Int("audit-sample", 1, "record every Nth benign decision in the audit ledger (flagged always recorded)")
		auditMaxBytes = flag.Int64("audit-max-bytes", 0, "rotate audit-ledger segments beyond this size (0 = 16 MiB default)")
		sloSpecPath   = flag.String("slo-spec", "", "SLO spec JSON for burn-rate alerting (empty = the built-in spec)")
		sloInterval   = flag.Duration("slo-interval", 10*time.Second, "SLO engine tick period (0 disables the engine)")
		version       = flag.Bool("version", false, "print build info (and the model hash when -model loads) and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.Version("polygraphd"))
		// When a model file is on hand, print its hash too — the identity
		// the fleet control plane verifies across replicas.
		if !*train {
			if f, err := os.Open(*modelPath); err == nil {
				if m, err := core.Load(f); err == nil {
					if h, err := m.Hash(); err == nil {
						fmt.Printf("model %s %s\n", *modelPath, h)
					}
				}
				f.Close()
			}
		}
		return
	}

	logger := obs.NewLogger(os.Stderr, *logJSON).With("app", "polygraphd")
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	// The signal context exists before the first model load so that a
	// SIGINT during a slow in-process training run aborts it promptly
	// instead of waiting out the full train.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfgTrain, cfgModelPath := *train, *modelPath
	if *warm {
		if *train {
			fatalf("-warm and -train are mutually exclusive")
		}
		cfgTrain, cfgModelPath = false, ""
	}
	// Burn-rate alerting is on by default with the built-in spec; the
	// engine arms itself on the first model deployment and serves GET
	// /debug/slo plus the polygraph_slo_* families from then on.
	var sloSpec *slo.Spec
	if *sloInterval > 0 {
		sloSpec = slo.DefaultSpec()
		if *sloSpecPath != "" {
			loaded, err := slo.LoadSpec(*sloSpecPath)
			if err != nil {
				fatalf("slo: %v", err)
			}
			sloSpec = loaded
		}
	}
	replica, err := serving.New(ctx, serving.Config{
		Name:            "polygraphd",
		Addr:            *addr,
		Train:           cfgTrain,
		ModelPath:       cfgModelPath,
		Sessions:        *sessions,
		Novelty:         *novelty,
		RateLimitPerSec: *rateLimit,
		ReloadTimeout:   *reloadTimeout,
		JournalDir:      *journalDir,
		AuditDir:        *auditDir,
		AuditSample:     *auditSample,
		AuditMaxBytes:   *auditMaxBytes,
		DriftInterval:   *driftInterval,
		DriftReservoir:  *driftRes,
		TraceRingSize:   *traceRing,
		TraceSeed:       *traceSeed,
		SlowRequest:     *slowRequest,
		SLOSpec:         sloSpec,
		SLOInterval:     *sloInterval,
		Logger:          logger,
	})
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			fatalf("model: startup interrupted: %v", err)
		}
		fatalf("model: %v", err)
	}
	if err := replica.Start(); err != nil {
		fatalf("%v", err)
	}

	// The profiling listener is separate from the serving one so the
	// pprof surface never faces ingest traffic (and can bind loopback
	// while the service binds a VIP).
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(replica.Server()),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

loop:
	for {
		select {
		case err := <-replica.Done():
			if err != nil {
				fatalf("serve: %v", err)
			}
			break loop
		case <-hup:
			if err := replica.RotateAudit(); err != nil {
				logger.Warn("audit rotate failed", "err", err.Error())
			} else if *auditDir != "" {
				logger.Info("audit ledger rotated", "dir", *auditDir)
			}
			replica.TriggerReload()
		case <-ctx.Done():
			logger.Info("shutting down")
			if err := replica.Close(); err != nil {
				logger.Warn("shutdown", "err", err.Error())
			}
			if debugSrv != nil {
				shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				debugSrv.Shutdown(shutdownCtx)
				cancel()
			}
			break loop
		}
	}
	stats := replica.Stats()
	logger.Info("served",
		"collections", stats.Received, "flagged", stats.Flagged, "rejected", stats.Rejected,
		"avg_score_us", fmt.Sprintf("%.1f", stats.AvgScoreUs))
}

// debugMux assembles the -debug-addr surface: pprof profiles, expvar,
// and (for convenience next to the profiles) the request-trace ring.
// See the README runbook for the capture recipe. srv is nil while a
// -warm replica waits for its first model; the trace and decision
// surfaces only exist once it has one.
func debugMux(srv *collect.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if srv != nil {
		mux.HandleFunc("/debug/traces", srv.Tracer().ServeTraces)
		// Forwarded to the collect server's handlers so the audit surface
		// is reachable from the profiling listener too; the serving
		// listener also exposes them plus a /debug/ index page.
		mux.Handle("/debug/decisions", srv)
	}
	return mux
}
