package main

import (
	"log"
	"os"
	"path/filepath"
	"testing"
)

func TestObtainModelTrainsInProcess(t *testing.T) {
	logger := log.New(os.Stderr, "", 0)
	m, err := obtainModel(true, "", 10000, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 28 {
		t.Fatalf("model dim %d", m.Dim())
	}
	if m.Accuracy < 0.97 {
		t.Fatalf("accuracy %.4f", m.Accuracy)
	}
}

func TestObtainModelLoadsFromDisk(t *testing.T) {
	logger := log.New(os.Stderr, "", 0)
	m, err := obtainModel(true, "", 10000, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := obtainModel(false, path, 0, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != m.Dim() || loaded.Accuracy != m.Accuracy {
		t.Fatal("loaded model differs")
	}
}

func TestObtainModelNoveltyGuard(t *testing.T) {
	logger := log.New(os.Stderr, "", 0)
	m, err := obtainModel(true, "", 10000, true, logger)
	if err != nil {
		t.Fatal(err)
	}
	if m.NoveltyThreshold <= 0 {
		t.Fatal("novelty guard not armed")
	}
}

func TestObtainModelMissingFile(t *testing.T) {
	logger := log.New(os.Stderr, "", 0)
	if _, err := obtainModel(false, filepath.Join(t.TempDir(), "no.json"), 0, false, logger); err == nil {
		t.Fatal("missing model accepted")
	}
}
