package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"polygraph/internal/core"
	"polygraph/internal/obs"
)

func TestObtainModelTrainsInProcess(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	m, rep, baseline, err := obtainModel(context.Background(), true, "", 10000, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 28 {
		t.Fatalf("model dim %d", m.Dim())
	}
	if m.Accuracy < 0.97 {
		t.Fatalf("accuracy %.4f", m.Accuracy)
	}
	if rep == nil || len(rep.Stages) == 0 {
		t.Fatal("in-process training returned no stage timings")
	}
	if len(baseline) == 0 || len(baseline[0]) != m.Dim() {
		t.Fatalf("training should return baseline vectors for drift, got %d", len(baseline))
	}
}

func TestObtainModelLoadsFromDisk(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	m, _, _, err := obtainModel(context.Background(), true, "", 10000, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, rep, baseline, err := obtainModel(context.Background(), false, path, 0, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != m.Dim() || loaded.Accuracy != m.Accuracy {
		t.Fatal("loaded model differs")
	}
	if rep != nil {
		t.Fatal("file load should not fabricate a train report")
	}
	if baseline != nil {
		t.Fatal("file load should not fabricate a drift baseline")
	}
}

func TestObtainModelNoveltyGuard(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	m, _, _, err := obtainModel(context.Background(), true, "", 10000, true, logger)
	if err != nil {
		t.Fatal(err)
	}
	if m.NoveltyThreshold <= 0 {
		t.Fatal("novelty guard not armed")
	}
}

func TestObtainModelMissingFile(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	if _, _, _, err := obtainModel(context.Background(), false, filepath.Join(t.TempDir(), "no.json"), 0, false, logger); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestObtainModelCancelledTraining(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := obtainModel(ctx, true, "", 10000, false, logger)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
