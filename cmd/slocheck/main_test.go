package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polygraph/internal/bundle"
)

const healthyExpo = `# HELP polygraph_collections_total c
# TYPE polygraph_collections_total counter
polygraph_collections_total 1000
# HELP polygraph_score_duration_microseconds h
# TYPE polygraph_score_duration_microseconds histogram
polygraph_score_duration_microseconds_bucket{endpoint="/v1/collect",le="1024"} 1000
polygraph_score_duration_microseconds_bucket{endpoint="/v1/collect",le="+Inf"} 1000
polygraph_score_duration_microseconds_sum{endpoint="/v1/collect"} 500000
polygraph_score_duration_microseconds_count{endpoint="/v1/collect"} 1000
`

const breachedExpo = `# HELP polygraph_collections_total c
# TYPE polygraph_collections_total counter
polygraph_collections_total 1000
# HELP polygraph_rejected_total c
# TYPE polygraph_rejected_total counter
polygraph_rejected_total{reason="score"} 100
`

const alertingExpo = healthyExpo + `# HELP polygraph_slo_alert a
# TYPE polygraph_slo_alert gauge
polygraph_slo_alert{objective="collect-latency"} 1
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunHealthyMetricsDump(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{writeFile(t, "m.txt", healthyExpo)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d for healthy dump\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ok run: collect-latency") {
		t.Fatalf("missing per-objective line:\n%s", out.String())
	}
}

func TestRunAvailabilityBreach(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{writeFile(t, "m.txt", breachedExpo)}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d for breached dump, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL run: ingest-availability") {
		t.Fatalf("missing violation line:\n%s", out.String())
	}
}

func TestRunAlertGaugeFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{writeFile(t, "m.txt", alertingExpo)}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d when alert gauge firing, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "burn-rate alert firing") {
		t.Fatalf("missing alert line:\n%s", out.String())
	}
}

func TestRunCustomSpec(t *testing.T) {
	// Default spec passes the healthy dump; a stricter spec with a 512us
	// threshold fails it (all mass sits in the 1024us bucket).
	spec := writeFile(t, "spec.json", `{
  "name": "strict",
  "objectives": [
    {"name": "tight-lat", "kind": "latency", "endpoint": "/v1/collect", "target": 0.5, "threshold_us": 512, "window_s": 60}
  ]
}`)
	expo := writeFile(t, "m.txt", healthyExpo)
	var out, errb bytes.Buffer
	if code := run([]string{"-spec", spec, expo}, &out, &errb); code != 1 {
		t.Fatalf("exit %d under strict spec, want 1\n%s", code, out.String())
	}
	if code := run([]string{"-spec", filepath.Join(t.TempDir(), "nope.json"), expo}, &out, &errb); code != 2 {
		t.Fatal("missing spec file did not exit 2")
	}
}

// TestRunBundle pins the fleet semantics: per-target evaluation, the
// summed fleet view, and the fleet-level alert gauge all gate.
func TestRunBundle(t *testing.T) {
	buildBundle := func(t *testing.T, fn func(b *bundle.Builder)) string {
		t.Helper()
		b := bundle.NewBuilder(time.Unix(1700000000, 0))
		fn(b)
		var buf bytes.Buffer
		if _, err := b.Write(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "bundle.tgz")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Healthy two-replica fleet.
	var out, errb bytes.Buffer
	clean := buildBundle(t, func(b *bundle.Builder) {
		b.Target("r0", "http://r0").Add(bundle.ArtifactMetrics, bundle.KindMetrics, []byte(healthyExpo))
		b.Target("r1", "http://r1").Add(bundle.ArtifactMetrics, bundle.KindMetrics, []byte(healthyExpo))
	})
	if code := run([]string{clean}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for healthy fleet bundle\n%s%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"ok r0:", "ok r1:", "ok fleet:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("bundle output missing %q:\n%s", want, out.String())
		}
	}

	// One breached replica fails both its own view and the fleet sum.
	out.Reset()
	mixed := buildBundle(t, func(b *bundle.Builder) {
		b.Target("r0", "http://r0").Add(bundle.ArtifactMetrics, bundle.KindMetrics, []byte(healthyExpo))
		b.Target("r1", "http://r1").Add(bundle.ArtifactMetrics, bundle.KindMetrics, []byte(breachedExpo))
	})
	if code := run([]string{mixed}, &out, &errb); code != 1 {
		t.Fatalf("exit %d for mixed fleet bundle, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL r1: ingest-availability") ||
		!strings.Contains(out.String(), "FAIL fleet: ingest-availability") {
		t.Fatalf("bundle output missing replica+fleet failures:\n%s", out.String())
	}

	// A fleet-level alert gauge in the balancer exposition gates too.
	out.Reset()
	fleetAlert := buildBundle(t, func(b *bundle.Builder) {
		b.Target("r0", "http://r0").Add(bundle.ArtifactMetrics, bundle.KindMetrics, []byte(healthyExpo))
		b.AddFile(bundle.FleetMetricsFile, bundle.KindMetrics, []byte(`# HELP polygraph_fleet_slo_alert a
# TYPE polygraph_fleet_slo_alert gauge
polygraph_fleet_slo_alert{objective="ingest-availability"} 1
`))
	})
	if code := run([]string{fleetAlert}, &out, &errb); code != 1 {
		t.Fatalf("exit %d for fleet-alert bundle, want 1\n%s", code, out.String())
	}
}

// TestRunDeterministic pins the acceptance requirement: identical input
// yields byte-identical output and identical exit codes across runs.
func TestRunDeterministic(t *testing.T) {
	path := writeFile(t, "m.txt", breachedExpo)
	var first string
	for i := 0; i < 5; i++ {
		var out, errb bytes.Buffer
		if code := run([]string{path}, &out, &errb); code != 1 {
			t.Fatalf("run %d: exit %d", i, code)
		}
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Fatalf("run %d output differs:\n%s\nvs\n%s", i, out.String(), first)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d with no source", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.txt")}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unreadable source", code)
	}
	// Corrupt gzip data is a read error, not a silent pass.
	bad := writeFile(t, "bad.tgz", "\x1f\x8bgarbage")
	if code := run([]string{bad}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for corrupt bundle", code)
	}
}
