// Command slocheck evaluates an SLO spec offline against captured
// telemetry: a Prometheus metrics dump (loadgen -metrics-out, a live
// /metrics page saved to a file, or stdin) or a support bundle. It is
// the CI gate for the error-budget contract — a run whose lifetime
// counters violate any objective, or whose capture caught a burn-rate
// alert gauge firing, exits nonzero.
//
// The evaluation treats the exposition's cumulative counters as one
// window covering the whole run: the overall SLI since process start.
// Burn-rate windows need a live engine (GET /debug/slo); offline, the
// lifetime average plus the captured alert gauges are exactly the
// evidence a dump can support.
//
// Usage:
//
//	slocheck metrics.txt
//	slocheck -spec scripts/slo-smoke.json bundle.tgz
//	loadgen -short -metrics-out - | slocheck -
//
// For a bundle every target's exposition is evaluated independently,
// then the fleet aggregate (counters summed across targets) — a single
// bad replica can hide inside a healthy fleet average, so both views
// gate. Exit codes: 0 every objective met, 1 violations or firing
// alerts, 2 usage/read error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"polygraph/internal/bundle"
	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slocheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "SLO spec JSON (default: the built-in polygraph-default spec)")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, obs.Version("slocheck"))
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "slocheck: exactly one source required (metrics file, bundle .tgz, or - for stdin)")
		return 2
	}

	spec := slo.DefaultSpec()
	if *specPath != "" {
		loaded, err := slo.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(stderr, "slocheck: %v\n", err)
			return 2
		}
		spec = loaded
	}

	src := fs.Arg(0)
	data, err := readSource(src)
	if err != nil {
		fmt.Fprintf(stderr, "slocheck: %v\n", err)
		return 2
	}

	c := &checker{spec: spec, stdout: stdout}
	if isGzip(data) {
		b, err := bundle.Read(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintf(stderr, "slocheck: %s: %v\n", src, err)
			return 2
		}
		c.checkBundle(b)
	} else {
		c.checkExposition("run", obs.ParseExpositionString(string(data)))
	}

	if c.violations > 0 {
		fmt.Fprintf(stderr, "slocheck: %s: %d violation(s) under spec %q\n", src, c.violations, spec.Name)
		return 1
	}
	fmt.Fprintf(stdout, "slocheck: %s: OK (%d objective(s) evaluated under spec %q)\n",
		src, c.evaluated, spec.Name)
	return 0
}

func readSource(src string) ([]byte, error) {
	if src == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(src)
}

// isGzip sniffs the gzip magic so bundles work under any file name.
func isGzip(data []byte) bool {
	return len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

type checker struct {
	spec       *slo.Spec
	stdout     io.Writer
	evaluated  int
	violations int
}

// checkExposition evaluates the spec over one exposition's lifetime
// counters and flags any burn-rate alert gauge the dump caught firing.
func (c *checker) checkExposition(scope string, ex *obs.Exposition) {
	for _, res := range slo.Evaluate(c.spec, ex) {
		c.report(scope, res)
	}
	c.checkAlerts(scope, ex, "polygraph_slo_alert")
}

func (c *checker) checkAlerts(scope string, ex *obs.Exposition, family string) {
	for _, s := range ex.Samples(family) {
		if s.Value >= 1 {
			c.violations++
			fmt.Fprintf(c.stdout, "FAIL %s: burn-rate alert firing for objective %q (%s)\n",
				scope, s.Label("objective"), family)
		}
	}
}

func (c *checker) report(scope string, res slo.Result) {
	if res.Vacuous {
		fmt.Fprintf(c.stdout, "  ok %s: %s vacuous (no traffic)\n", scope, res.Objective)
		return
	}
	c.evaluated++
	if res.Met {
		fmt.Fprintf(c.stdout, "  ok %s: %s sli=%.5f >= target=%.5f (%.0f/%.0f)\n",
			scope, res.Objective, res.SLI, res.Target, res.Good, res.Total)
		return
	}
	c.violations++
	fmt.Fprintf(c.stdout, "FAIL %s: %s sli=%.5f < target=%.5f (%.0f/%.0f)\n",
		scope, res.Objective, res.SLI, res.Target, res.Good, res.Total)
}

// checkBundle evaluates every target exposition in manifest order, then
// the fleet aggregate when the bundle holds more than one target, then
// the fleet-level alert gauges from the balancer exposition.
func (c *checker) checkBundle(b *bundle.Bundle) {
	sum := make([]slo.Counters, len(c.spec.Objectives))
	targets := 0
	for _, t := range b.Manifest.Targets {
		data := b.TargetFile(t.Name, bundle.ArtifactMetrics)
		if data == nil {
			continue
		}
		ex := obs.ParseExpositionString(string(data))
		c.checkExposition(t.Name, ex)
		sum = slo.SumCounters(sum, c.spec.Extract(ex))
		targets++
	}
	if targets > 1 {
		for _, res := range slo.EvaluateCounters(c.spec, sum) {
			c.report("fleet", res)
		}
	}
	if data := b.Files["files/"+bundle.FleetMetricsFile]; data != nil {
		c.checkAlerts("fleet", obs.ParseExpositionString(string(data)), "polygraph_fleet_slo_alert")
	}
}
