// Command polygraph is the operator CLI for the Browser Polygraph
// reproduction: generate traffic, train models, inspect them, score
// sessions, and run drift checks.
//
// Usage:
//
//	polygraph generate -sessions 60000 -o sessions.jsonl      # FinOrg-style data handoff
//	polygraph train    -sessions 60000 -o model.json           # generate + train in one step
//	polygraph train    -data sessions.jsonl -o model.json      # train from a handoff file
//	polygraph info     -model model.json
//	polygraph score    -model model.json -ua "<user-agent>" -values 150,212,...
//	polygraph replay   -model model.json -data sessions.jsonl  # batch re-score a dataset
//	polygraph drift    -model model.json
//	polygraph script   -model model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/drift"
	"polygraph/internal/experiments"
	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
	"polygraph/internal/ua"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "score":
		err = cmdScore(os.Args[2:])
	case "drift":
		err = cmdDrift(os.Args[2:])
	case "script":
		err = cmdScript(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println(obs.Version("polygraph"))
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "polygraph:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: polygraph <command> [flags]

commands:
  generate  export synthetic FinOrg traffic as a JSONL handoff file
  train     train a model (from generated traffic or -data file)
  replay    batch re-score a JSONL dataset against a model
  info      print a trained model's cluster table and metadata
  score     score one fingerprint vector against a claimed user-agent
  drift     run the drift-detection calendar against a trained model
  script    print the client-side collection script for a model`)
}

func loadModel(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	sessions := fs.Int("sessions", 60000, "sessions to generate (paper: 205000)")
	seed := fs.Uint64("seed", 0, "traffic seed")
	out := fs.String("o", "sessions.jsonl", "output JSONL path")
	withTags := fs.Bool("tags", false, "include the evaluation risk tags")
	fs.Parse(args)

	cfg := dataset.DefaultConfig()
	cfg.Sessions = *sessions
	if *seed != 0 {
		cfg.Seed = *seed
	}
	fmt.Printf("generating %d sessions...\n", cfg.Sessions)
	traffic, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := traffic.WriteJSONL(f, *withTags); err != nil {
		return err
	}
	fmt.Printf("%d sessions written to %s (tags: %v)\n", len(traffic.Sessions), *out, *withTags)
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	sessions := fs.Int("sessions", 60000, "sessions to generate (paper: 205000)")
	seed := fs.Uint64("seed", 0, "traffic seed")
	k := fs.Int("k", 11, "cluster count")
	pcaComps := fs.Int("pca", 7, "PCA components")
	dataPath := fs.String("data", "", "train from a JSONL handoff file instead of generating")
	out := fs.String("o", "model.json", "output model path")
	fs.Parse(args)

	tc := core.DefaultTrainConfig()
	tc.K = *k
	tc.PCAComponents = *pcaComps

	var samples []core.Sample
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		samples, _, err = dataset.ReadJSONL(f, len(tc.Features))
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d sessions from %s\n", len(samples), *dataPath)
	} else {
		cfg := dataset.DefaultConfig()
		cfg.Sessions = *sessions
		if *seed != 0 {
			cfg.Seed = *seed
		}
		fmt.Printf("generating %d sessions...\n", cfg.Sessions)
		traffic, err := dataset.Generate(cfg)
		if err != nil {
			return err
		}
		samples = traffic.Samples()
		tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	}
	fmt.Printf("training (%d features, PCA %d, k=%d)...\n", len(tc.Features), tc.PCAComponents, tc.K)
	model, report, err := core.Train(samples, tc)
	if err != nil {
		return err
	}
	fmt.Printf("accuracy %.2f%% | %d rows kept | %d outliers dropped\n",
		100*model.Accuracy, model.TrainedRows, report.OutliersFiltered)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *out)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("model", "model.json", "model path")
	fs.Parse(args)
	m, err := loadModel(*path)
	if err != nil {
		return err
	}
	fmt.Printf("features: %d | clusters: %d | trained rows: %d | accuracy: %.2f%%\n",
		m.Dim(), m.KMeans.K, m.TrainedRows, 100*m.Accuracy)
	experiments.RenderClusterTable(os.Stdout, "cluster table", m.ClusterTable())
	return nil
}

func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	path := fs.String("model", "model.json", "model path")
	uaStr := fs.String("ua", "", "claimed user-agent string")
	values := fs.String("values", "", "comma-separated feature values")
	fs.Parse(args)
	m, err := loadModel(*path)
	if err != nil {
		return err
	}
	if *uaStr == "" || *values == "" {
		return fmt.Errorf("score requires -ua and -values")
	}
	parts := strings.Split(*values, ",")
	if len(parts) != m.Dim() {
		return fmt.Errorf("expected %d values, got %d", m.Dim(), len(parts))
	}
	vec := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("value %d: %w", i, err)
		}
		vec[i] = v
	}
	res, err := m.ScoreString(vec, *uaStr)
	if err != nil {
		return err
	}
	verdict := "matched (browser appears truthful)"
	if res.Flagged() {
		verdict = fmt.Sprintf("FLAGGED with risk factor %d", res.RiskFactor)
	}
	fmt.Printf("cluster %d: %s\n", res.Cluster, verdict)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	path := fs.String("model", "model.json", "model path")
	dataPath := fs.String("data", "", "JSONL dataset to re-score (required)")
	minRisk := fs.Int("min-risk", 0, "print only flagged sessions at or above this risk factor")
	fs.Parse(args)
	if *dataPath == "" {
		return fmt.Errorf("replay requires -data")
	}
	m, err := loadModel(*path)
	if err != nil {
		return err
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, records, err := dataset.ReadJSONL(f, m.Dim())
	if err != nil {
		return err
	}
	flagged, novel := 0, 0
	for i, s := range samples {
		res, err := m.Score(s.Vector, s.UA)
		if err != nil {
			return err
		}
		if !res.Flagged() {
			continue
		}
		flagged++
		if res.Novel {
			novel++
		}
		if res.RiskFactor >= *minRisk {
			fmt.Printf("%s day=%d claimed=%s cluster=%d risk=%d novel=%v\n",
				records[i].SessionID, records[i].Day, s.UA, res.Cluster, res.RiskFactor, res.Novel)
		}
	}
	fmt.Printf("re-scored %d sessions: %d flagged (%d by the novelty guard)\n",
		len(samples), flagged, novel)
	return nil
}

func cmdDrift(args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	path := fs.String("model", "model.json", "model path")
	seed := fs.Uint64("seed", 0, "drift-traffic seed")
	fs.Parse(args)
	m, err := loadModel(*path)
	if err != nil {
		return err
	}
	data, err := experiments.DriftTraffic(*seed)
	if err != nil {
		return err
	}
	det := &drift.Detector{Model: m}
	src := sessionsByRelease{data: data}
	rep, err := det.RunCalendar(drift.Calendar2023(), src)
	if err != nil {
		return err
	}
	experiments.RenderDriftEvaluations(os.Stdout, rep.Evaluations)
	if rep.NeedRetrain() {
		fmt.Printf("retraining required (first signaled on %s)\n", rep.RetrainDate)
	} else {
		fmt.Println("model still current")
	}
	return nil
}

type sessionsByRelease struct{ data *dataset.Dataset }

func (s sessionsByRelease) VectorsFor(r ua.Release, upToDay int) [][]float64 {
	var out [][]float64
	for _, sess := range s.data.Sessions {
		if sess.Claimed == r && sess.Day <= upToDay {
			out = append(out, sess.Vector)
		}
	}
	return out
}

func cmdScript(args []string) error {
	fs := flag.NewFlagSet("script", flag.ExitOnError)
	path := fs.String("model", "", "model path (empty = canonical Table 8 features)")
	endpoint := fs.String("endpoint", "/v1/collect-json", "ingestion endpoint")
	fs.Parse(args)
	feats := fingerprint.Table8()
	if *path != "" {
		m, err := loadModel(*path)
		if err != nil {
			return err
		}
		feats = m.Features
	}
	fmt.Print(collect.CollectionScript(feats, *endpoint))
	return nil
}
