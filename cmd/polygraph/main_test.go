package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI subcommands are exercised end to end through a real temp-file
// model: train writes it, every other command consumes it.

func modelPath(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := cmdTrain([]string{"-sessions", "12000", "-o", path}); err != nil {
		t.Fatalf("train: %v", err)
	}
	return path
}

func TestTrainInfoScoreDriftScript(t *testing.T) {
	path := modelPath(t)
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("model file: %v", err)
	}

	if err := cmdInfo([]string{"-model", path}); err != nil {
		t.Fatalf("info: %v", err)
	}

	// Score with a synthetic vector: load the model to learn the
	// honest values for a release, then feed them through the CLI path.
	m, err := loadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]string, m.Dim())
	for i := range values {
		values[i] = "0"
	}
	if err := cmdScore([]string{
		"-model", path,
		"-ua", "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36",
		"-values", strings.Join(values, ","),
	}); err != nil {
		t.Fatalf("score: %v", err)
	}

	if err := cmdScript([]string{"-model", path}); err != nil {
		t.Fatalf("script: %v", err)
	}
	if err := cmdScript(nil); err != nil {
		t.Fatalf("script default: %v", err)
	}

	if err := cmdDrift([]string{"-model", path}); err != nil {
		t.Fatalf("drift: %v", err)
	}
}

func TestScoreValidation(t *testing.T) {
	path := modelPath(t)
	if err := cmdScore([]string{"-model", path}); err == nil {
		t.Fatal("missing -ua/-values accepted")
	}
	if err := cmdScore([]string{"-model", path, "-ua", "x", "-values", "1,2"}); err == nil {
		t.Fatal("wrong value count accepted")
	}
	if err := cmdScore([]string{"-model", path, "-ua", "x", "-values", strings.Repeat("z,", 27) + "z"}); err == nil {
		t.Fatal("non-numeric values accepted")
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := loadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing model accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := loadModel(bad); err == nil {
		t.Fatal("junk model accepted")
	}
	if err := cmdInfo([]string{"-model", bad}); err == nil {
		t.Fatal("info on junk model succeeded")
	}
	if err := cmdDrift([]string{"-model", bad}); err == nil {
		t.Fatal("drift on junk model succeeded")
	}
	if err := cmdScript([]string{"-model", bad}); err == nil {
		t.Fatal("script on junk model succeeded")
	}
}

func TestGenerateTrainReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "sessions.jsonl")
	model := filepath.Join(dir, "model.json")
	if err := cmdGenerate([]string{"-sessions", "8000", "-o", data, "-tags"}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := cmdTrain([]string{"-data", data, "-o", model}); err != nil {
		t.Fatalf("train from data: %v", err)
	}
	if err := cmdReplay([]string{"-model", model, "-data", data, "-min-risk", "21"}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := cmdReplay([]string{"-model", model}); err == nil {
		t.Fatal("replay without -data accepted")
	}
}
