// Command supportbundle captures and analyzes polygraph support
// bundles — the one-command diagnosis path for a live daemon or a whole
// fleet.
//
// Capture snapshots every target (metrics exposition, trace ring,
// redacted recent audit records, model provenance, expvar, pprof
// profiles) into one deterministic tar.gz whose manifest records what
// was captured and what failed; a dead replica becomes recorded
// collector errors, never a failed capture:
//
//	supportbundle capture -o bundle.tgz -addr http://127.0.0.1:8080
//	supportbundle capture -o bundle.tgz -addr http://host:8080 -debug-addr http://host:6060
//	supportbundle capture -o fleet.tgz -fleet http://r0:8080,http://r1:8080,http://r2:8080
//	supportbundle capture -o bundle.tgz -addr ... -no-redact -pprof-seconds 5 -file 'BENCH_*.json'
//
// Analyze replays the offline rule catalog (internal/bundle) over a
// captured bundle and prints machine-readable pass/warn/fail findings:
//
//	supportbundle analyze bundle.tgz
//	supportbundle analyze -json -p99-budget 250ms -slo-spec scripts/slo-smoke.json bundle.tgz
//
// Exit codes (promlint/auditq style): 0 clean (warnings allowed), 1 at
// least one FAIL finding, 2 usage or read error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polygraph/internal/bundle"
	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "capture":
		return runCapture(args[1:], stdout, stderr)
	case "analyze":
		return runAnalyze(args[1:], stdout, stderr)
	case "-version", "--version":
		fmt.Fprintln(stdout, obs.Version("supportbundle"))
		return 0
	default:
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: supportbundle capture -o bundle.tgz (-addr URL | -fleet URL,URL,...) [flags]")
	fmt.Fprintln(w, "       supportbundle analyze [-json] [-p99-budget D] bundle.tgz")
}

func runCapture(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("supportbundle capture", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "bundle.tgz", "output bundle path")
	addr := fs.String("addr", "", "single target base URL (e.g. http://127.0.0.1:8080)")
	debugAddr := fs.String("debug-addr", "", "separate pprof/expvar listener URL for -addr (polygraphd -debug-addr)")
	fleetList := fs.String("fleet", "", "comma-separated replica base URLs for a fleet-wide capture")
	noRedact := fs.Bool("no-redact", false, "ship audit records verbatim (UA strings and fingerprint vectors included)")
	pprofSeconds := fs.Int("pprof-seconds", 2, "CPU profile duration per target (0 skips the CPU profile)")
	skipPprof := fs.Bool("skip-pprof", false, "skip pprof profiles entirely")
	recent := fs.Int("n", 256, "trace/decision ring depth to capture")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall capture deadline")
	var globs []string
	fs.Func("file", "extra file glob to pack under files/ (repeatable, e.g. 'BENCH_*.json')", func(v string) error {
		globs = append(globs, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 || (*addr == "") == (*fleetList == "") {
		fmt.Fprintln(stderr, "supportbundle: capture needs exactly one of -addr or -fleet")
		return 2
	}

	var targets []bundle.Target
	if *addr != "" {
		targets = append(targets, bundle.Target{
			Name:     "server",
			BaseURL:  strings.TrimSuffix(*addr, "/"),
			DebugURL: strings.TrimSuffix(*debugAddr, "/"),
		})
	} else {
		for i, u := range strings.Split(*fleetList, ",") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			targets = append(targets, bundle.Target{Name: fmt.Sprintf("r%d", i), BaseURL: u})
		}
		if len(targets) == 0 {
			fmt.Fprintln(stderr, "supportbundle: -fleet lists no URLs")
			return 2
		}
	}

	var files []string
	for _, g := range globs {
		matches, err := filepath.Glob(g)
		if err != nil {
			fmt.Fprintf(stderr, "supportbundle: bad -file glob %q: %v\n", g, err)
			return 2
		}
		files = append(files, matches...)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "supportbundle: %v\n", err)
		return 2
	}
	manifest, err := bundle.Capture(ctx, f, bundle.Options{
		Targets:      targets,
		Client:       &http.Client{Timeout: *timeout},
		NoRedact:     *noRedact,
		PprofSeconds: *pprofSeconds,
		SkipPprof:    *skipPprof,
		Recent:       *recent,
		Files:        files,
		Config: map[string]any{
			"addr": *addr, "debug_addr": *debugAddr, "fleet": *fleetList,
			"no_redact": *noRedact, "pprof_seconds": *pprofSeconds, "n": *recent,
		},
		Tool: obs.Version("supportbundle").String(),
	})
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(stderr, "supportbundle: capture: %v\n", err)
		return 2
	}

	nArtifacts, nErrors := 0, len(manifest.Errors)
	for _, t := range manifest.Targets {
		nArtifacts += len(t.Artifacts)
		nErrors += len(t.Errors)
	}
	nArtifacts += len(manifest.Files)
	fmt.Fprintf(stdout, "supportbundle: %s: %d target(s), %d artifact(s), %d collector error(s)\n",
		*out, len(manifest.Targets), nArtifacts, nErrors)
	for _, t := range manifest.Targets {
		for _, ce := range t.Errors {
			fmt.Fprintf(stdout, "  warn %s/%s: %s\n", t.Name, ce.Artifact, ce.Err)
		}
	}
	for _, ce := range manifest.Errors {
		fmt.Fprintf(stdout, "  warn %s: %s\n", ce.Artifact, ce.Err)
	}
	return 0
}

func runAnalyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("supportbundle analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	p99Budget := fs.Duration("p99-budget", 100*time.Millisecond, "per-endpoint p99 latency budget")
	sloSpecPath := fs.String("slo-spec", "", "SLO spec JSON for the slo-violation rule (default: the built-in spec)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "supportbundle: analyze needs exactly one bundle path")
		return 2
	}
	var sloSpec *slo.Spec
	if *sloSpecPath != "" {
		loaded, err := slo.LoadSpec(*sloSpecPath)
		if err != nil {
			fmt.Fprintf(stderr, "supportbundle: %v\n", err)
			return 2
		}
		sloSpec = loaded
	}
	b, err := bundle.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "supportbundle: %v\n", err)
		return 2
	}

	findings := bundle.Analyze(b, bundle.AnalyzeOptions{
		P99BudgetUs: float64(p99Budget.Microseconds()),
		SLOSpec:     sloSpec,
	})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "supportbundle: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}

	var warns, fails int
	for _, f := range findings {
		switch f.Severity {
		case bundle.SeverityWarn:
			warns++
		case bundle.SeverityFail:
			fails++
		}
	}
	fmt.Fprintf(stderr, "supportbundle: %s: %d finding(s), %d warn, %d fail\n",
		fs.Arg(0), len(findings), warns, fails)
	if fails > 0 {
		return 1
	}
	return 0
}
