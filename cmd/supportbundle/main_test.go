package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polygraph/internal/bundle"
	"polygraph/internal/obs"
)

// The CLI contract: exit 0 clean, 1 on a FAIL finding, 2 on usage or
// read errors — pinned end to end through run().

func healthyServer(t *testing.T) string {
	t.Helper()
	var metrics bytes.Buffer
	obs.WriteMetric(&metrics, "polygraph_collections_total", "Scored.", "counter", 10)
	obs.WriteMetric(&metrics, "polygraph_audit_records_total", "Records.", "counter", 10)
	obs.WriteMetric(&metrics, "polygraph_audit_dropped_total", "Dropped.", "counter", 0)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) { w.Write(metrics.Bytes()) })
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("{}")) })
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("[]")) })
	mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("[]")) })
	mux.HandleFunc("/admin/model/info", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"hash":"cafe"}`))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("{}")) })
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"capture"}, // neither -addr nor -fleet
		{"capture", "-addr", "http://x", "-fleet", "http://y"},
		{"analyze"},                                    // no bundle path
		{"analyze", "a.tgz", "b.tgz"},                  // too many
		{"capture", "-fleet", ",,"},                    // empty fleet list
		{"analyze", "/nonexistent/b.tgz"},              // unreadable bundle
		{"capture", "-addr", "http://x", "-file", "["}, // bad glob
	} {
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestRunVersion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-version) = %d", code)
	}
	if !strings.Contains(out.String(), "supportbundle") {
		t.Fatalf("version output %q", out.String())
	}
}

func TestCaptureThenAnalyzeHealthyExitsZero(t *testing.T) {
	url := healthyServer(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.tgz")

	var out, errOut bytes.Buffer
	code := run([]string{"capture", "-o", path, "-addr", url, "-skip-pprof", "-timeout", "30s"},
		&out, &errOut)
	if code != 0 {
		t.Fatalf("capture = %d; stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1 target(s)") {
		t.Fatalf("capture summary %q", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{"analyze", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("analyze healthy = %d; stdout %s stderr %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("analyze output has no PASS findings: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "0 fail") {
		t.Fatalf("analyze summary %q", errOut.String())
	}
}

func TestCaptureRecordsDeadTargetAndStillExitsZero(t *testing.T) {
	// A fleet where one URL is dead: capture exits 0 and prints the
	// collector errors as warnings.
	live := healthyServer(t)
	srv := httptest.NewServer(http.NotFoundHandler())
	deadURL := srv.URL
	srv.Close()

	path := filepath.Join(t.TempDir(), "fleet.tgz")
	var out, errOut bytes.Buffer
	code := run([]string{"capture", "-o", path, "-fleet", live + "," + deadURL,
		"-skip-pprof", "-timeout", "30s"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("fleet capture = %d; stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "2 target(s)") || !strings.Contains(out.String(), "warn r1/") {
		t.Fatalf("capture summary %q", out.String())
	}
	b, err := bundle.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Target("r0") == nil || b.Manifest.Target("r1") == nil {
		t.Fatalf("fleet targets missing: %+v", b.Manifest.Targets)
	}
	if len(b.Manifest.Target("r1").Errors) == 0 {
		t.Fatal("dead fleet target recorded no errors")
	}
}

// writeFaultyBundle seeds a drift-stale-model fault and returns its
// path.
func writeFaultyBundle(t *testing.T) string {
	t.Helper()
	var metrics bytes.Buffer
	obs.WriteMetric(&metrics, "polygraph_drift_alert", "Alert.", "gauge", 1)
	obs.WriteMetric(&metrics, "polygraph_model_trained_timestamp_seconds", "Trained.", "gauge", 1000)
	obs.WriteMetric(&metrics, "polygraph_drift_baseline_timestamp_seconds", "Baseline.", "gauge", 2000)

	b := bundle.NewBuilder(time.Unix(1_700_000_000, 0))
	b.Target("r0", "http://r0").Add(bundle.ArtifactMetrics, bundle.KindMetrics, metrics.Bytes())
	path := filepath.Join(t.TempDir(), "faulty.tgz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeFaultyBundleExitsOne(t *testing.T) {
	path := writeFaultyBundle(t)
	var out, errOut bytes.Buffer
	code := run([]string{"analyze", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("analyze faulty = %d, want 1; stdout %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL drift-stale-model r0") {
		t.Fatalf("findings do not name the rule: %q", out.String())
	}
}

func TestAnalyzeJSONOutput(t *testing.T) {
	path := writeFaultyBundle(t)
	var out, errOut bytes.Buffer
	code := run([]string{"analyze", "-json", path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("analyze -json = %d, want 1", code)
	}
	if !strings.Contains(out.String(), `"rule": "drift-stale-model"`) ||
		!strings.Contains(out.String(), `"severity": "fail"`) {
		t.Fatalf("JSON findings %q", out.String())
	}
}
