// Command reproduce regenerates the paper's tables and figures against
// the synthetic substrates. Each run trains the default model on
// generated FinOrg-like traffic and prints the requested experiment in
// the paper's layout.
//
// Usage:
//
//	reproduce -all                 # every table and figure (slow)
//	reproduce -table 4             # one table (1..14)
//	reproduce -figure 5            # one figure (2,3,4,5)
//	reproduce -sessions 205000     # traffic volume (default 60000)
//	reproduce -seed 7              # dataset seed
//	reproduce -benchjson BENCH.json # timed train+score pass, JSON trajectory snapshot
//	reproduce -workers 1           # pin the worker pool (0 = GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polygraph/internal/benchjson"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/experiments"
	"polygraph/internal/obs"
	"polygraph/internal/ua"
)

func main() {
	var (
		table     = flag.Int("table", 0, "reproduce one table (1..14)")
		figure    = flag.Int("figure", 0, "reproduce one figure (2,3,4,5)")
		all       = flag.Bool("all", false, "reproduce everything, including ablations")
		scorecard = flag.Bool("scorecard", false, "check every headline claim and exit non-zero on failure")
		sessions  = flag.Int("sessions", 60000, "training sessions to generate (paper: 205000)")
		seed      = flag.Uint64("seed", 0, "traffic seed (0 = default)")
		htmlOut   = flag.String("html", "", "write an HTML report (tables + SVG figures) to this path")
		benchOut  = flag.String("benchjson", "", "time a train+score pass and write the BENCH_<date>.json trajectory snapshot to this path (empty honors POLYGRAPH_BENCH_JSON)")
		workers   = flag.Int("workers", 0, "worker-pool size for training and scoring (0 = GOMAXPROCS, 1 = serial)")
		version   = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.Version("reproduce"))
		return
	}

	benchPath := *benchOut
	if benchPath == "" {
		if _, p := benchjson.FromEnv(*sessions); p != "" {
			benchPath = p
		}
	}

	if !*all && !*scorecard && *table == 0 && *figure == 0 && *htmlOut == "" && benchPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if benchPath != "" {
		if err := runBenchJSON(benchPath, *sessions, *seed, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		if !*all && !*scorecard && *table == 0 && *figure == 0 && *htmlOut == "" {
			return
		}
	}

	if *scorecard {
		env, err := experiments.NewEnv(*sessions, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		claims, err := env.Scorecard()
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		if !experiments.RenderScorecard(os.Stdout, claims) {
			os.Exit(1)
		}
		if !*all && *table == 0 && *figure == 0 && *htmlOut == "" {
			return
		}
	}

	if *htmlOut != "" {
		if err := runHTML(*htmlOut, *sessions, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		if !*all && *table == 0 && *figure == 0 {
			return
		}
	}

	if err := run(*all, *table, *figure, *sessions, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

// runBenchJSON times the three hot phases — traffic generation, the full
// training pipeline, and a batched scoring pass over every session — and
// writes the benchmark-trajectory snapshot (see internal/benchjson).
func runBenchJSON(path string, sessions int, seed uint64, workers int) error {
	rep := benchjson.New(sessions)

	dcfg := dataset.DefaultConfig()
	if sessions > 0 {
		dcfg.Sessions = sessions
	}
	if seed != 0 {
		dcfg.Seed = seed
	}
	fmt.Printf("benchjson: generating %d sessions (workers=%d, gomaxprocs=%d)...\n",
		dcfg.Sessions, workers, rep.GoMaxProcs)
	t0 := time.Now()
	traffic, err := dataset.Generate(dcfg)
	if err != nil {
		return err
	}
	genDur := time.Since(t0)
	n := len(traffic.Sessions)
	rep.Add("generate", float64(genDur.Nanoseconds()), map[string]float64{
		"sessions-per-sec": float64(n) / genDur.Seconds(),
	})

	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	tc.Workers = workers
	t0 = time.Now()
	model, report, err := core.Train(traffic.Samples(), tc)
	if err != nil {
		return err
	}
	trainDur := time.Since(t0)
	rep.Add("train", float64(trainDur.Nanoseconds()), map[string]float64{
		"accuracy-%":        100 * model.Accuracy,
		"outliers-filtered": float64(report.OutliersFiltered),
		"sessions-per-sec":  float64(n) / trainDur.Seconds(),
		"workers":           float64(workers),
	})
	rep.AddStages("train-stage", report.Stages)

	vectors := make([][]float64, n)
	claims := make([]ua.Release, n)
	for i, s := range traffic.Sessions {
		vectors[i] = s.Vector
		claims[i] = s.Claimed
	}
	t0 = time.Now()
	results, err := model.ScoreBatchWorkers(vectors, claims, workers)
	if err != nil {
		return err
	}
	scoreDur := time.Since(t0)
	flagged := 0
	for _, r := range results {
		if r.Flagged() {
			flagged++
		}
	}
	rep.Add("score-batch", float64(scoreDur.Nanoseconds()), map[string]float64{
		"sessions-per-sec": float64(n) / scoreDur.Seconds(),
		"flagged-sessions": float64(flagged),
		"workers":          float64(workers),
	})

	// Per-session latency distribution of the single-score path — the
	// cost one /v1/collect request pays on the serving tier — recorded
	// into the same power-of-two histogram internal/collect exports.
	var hist obs.Hist
	scratch := model.NewScratch()
	t0 = time.Now()
	for i := range vectors {
		s0 := time.Now()
		if _, err := model.ScoreWith(scratch, vectors[i], claims[i]); err != nil {
			return err
		}
		hist.Record(time.Since(s0))
	}
	oneDur := time.Since(t0)
	q := hist.Summary()
	rep.Add("score-one", float64(oneDur.Nanoseconds()), map[string]float64{
		"sessions-per-sec": float64(n) / oneDur.Seconds(),
		"p50-us":           float64(q.P50.Microseconds()),
		"p95-us":           float64(q.P95.Microseconds()),
		"p99-us":           float64(q.P99.Microseconds()),
		"max-us":           float64(q.Max.Microseconds()),
	})

	// The explanation path: what each audited decision pays on top of
	// scoring (Model.Explain re-scores, so this is score + decompose —
	// the end-to-end cost of one `auditq replay`-able record).
	var exHist obs.Hist
	t0 = time.Now()
	for i := range vectors {
		s0 := time.Now()
		if _, err := model.Explain(vectors[i], claims[i], 0); err != nil {
			return err
		}
		exHist.Record(time.Since(s0))
	}
	exDur := time.Since(t0)
	eq := exHist.Summary()
	rep.Add("score-explain", float64(exDur.Nanoseconds()), map[string]float64{
		"sessions-per-sec": float64(n) / exDur.Seconds(),
		"p50-us":           float64(eq.P50.Microseconds()),
		"p95-us":           float64(eq.P95.Microseconds()),
		"p99-us":           float64(eq.P99.Microseconds()),
		"max-us":           float64(eq.Max.Microseconds()),
	})

	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("benchjson: generate %v, train %v (accuracy %.2f%%), score %v (%.0f sessions/sec, %d flagged)\n",
		genDur.Round(time.Millisecond), trainDur.Round(time.Millisecond), 100*model.Accuracy,
		scoreDur.Round(time.Millisecond), float64(n)/scoreDur.Seconds(), flagged)
	fmt.Printf("benchjson: snapshot written to %s\n", path)
	return nil
}

func runHTML(path string, sessions int, seed uint64) error {
	fmt.Printf("generating %d sessions and training for the HTML report...\n", sessions)
	env, err := experiments.NewEnv(sessions, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := env.WriteHTMLReport(f, time.Now()); err != nil {
		return err
	}
	fmt.Printf("HTML report written to %s\n", path)
	return nil
}

func run(all bool, table, figure, sessions int, seed uint64) error {
	out := os.Stdout

	// Table 2 needs no trained model.
	if table == 2 && !all {
		experiments.RenderTable2(out, experiments.Table2())
		return nil
	}

	fmt.Fprintf(out, "generating %d sessions and training (28 features, PCA 7, k=11)...\n", sessions)
	env, err := experiments.NewEnv(sessions, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trained: accuracy %.2f%% on %d rows (paper: 99.6%% on 205k)\n",
		100*env.Model.Accuracy, env.Model.TrainedRows)
	experiments.RenderStageTimings(out, env.Report.Stages)

	want := func(n int) bool { return all || table == n }
	wantFig := func(n int) bool { return all || figure == n }

	if want(1) {
		experiments.RenderTable1(out)
	}
	if want(2) {
		experiments.RenderTable2(out, experiments.Table2())
	}
	if want(3) {
		experiments.RenderClusterTable(out, "Table 3: user-agents per cluster (k=11)", env.Table3())
	}
	if want(4) {
		rows, err := env.Table4()
		if err != nil {
			return err
		}
		experiments.RenderTable4(out, rows)
		n, err := env.FlaggedCount()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "flagged sessions: %d of %d (paper: 897 of 205k)\n", n, sessions)
	}
	if want(5) {
		rows, err := env.Table5()
		if err != nil {
			return err
		}
		experiments.RenderTable5(out, rows)
	}
	if want(6) {
		res, err := env.Table6()
		if err != nil {
			return err
		}
		experiments.RenderTable6(out, res)
	}
	if want(7) {
		experiments.RenderTable7(out, env.Table7(8))
	}
	if want(8) {
		experiments.RenderTable8(out)
	}
	if want(9) {
		rows, err := env.Table9()
		if err != nil {
			return err
		}
		experiments.RenderClusterTable(out, "Table 9: user-agents per cluster (k=6)", rows)
	}
	if want(10) {
		rows, err := env.Table10()
		if err != nil {
			return err
		}
		experiments.RenderSweep(out, "Table 10: sensitivity to cluster count", "clusters", rows)
	}
	if want(11) {
		rows, err := env.Table11()
		if err != nil {
			return err
		}
		experiments.RenderSweep(out, "Table 11: sensitivity to PCA components", "components", rows)
	}
	if want(12) {
		rows, err := env.Table12()
		if err != nil {
			return err
		}
		experiments.RenderTable12(out, rows)
	}
	if want(13) {
		rows, err := experiments.AppendixFive(true)
		if err != nil {
			return err
		}
		experiments.RenderTable13(out, "Table 13: clustering comparison (Windows 10/11)", rows)
	}
	if want(14) {
		rows, err := experiments.AppendixFive(false)
		if err != nil {
			return err
		}
		experiments.RenderTable13(out, "Table 14: clustering comparison (macOS)", rows)
	}
	if wantFig(2) {
		experiments.RenderFigure(out, "Figure 2: cumulative variance vs PCA components",
			"components", "cumulative variance", env.Figure2(), 1)
	}
	if wantFig(3) {
		pts, err := env.Figure3(20)
		if err != nil {
			return err
		}
		experiments.RenderFigure(out, "Figure 3: elbow method (WCSS vs clusters)", "k", "WCSS", pts, 1)
	}
	if wantFig(4) {
		pts, err := env.Figure4(20)
		if err != nil {
			return err
		}
		experiments.RenderFigure(out, "Figure 4: relative WCSS vs clusters", "k", "relative drop", pts, 1)
	}
	if wantFig(5) {
		experiments.RenderFigure5(out, env.Figure5())
	}
	if all {
		rows, err := env.Ablations()
		if err != nil {
			return err
		}
		experiments.RenderAblations(out, rows)
		sweep, err := env.DivisorSweep()
		if err != nil {
			return err
		}
		experiments.RenderDivisorSweep(out, sweep)

		rr, err := env.RetrainAfterDrift()
		if err != nil {
			return err
		}
		sr, err := env.StratifiedSampling(2000)
		if err != nil {
			return err
		}
		ur, err := env.UARandomization(20000)
		if err != nil {
			return err
		}
		experiments.RenderExtensions(out, rr, sr, ur)
		ng, err := env.NoveltyGuard()
		if err != nil {
			return err
		}
		experiments.RenderNoveltyGuard(out, ng)
		db, err := env.DBSCANAblation()
		if err != nil {
			return err
		}
		experiments.RenderDBSCAN(out, db)

		sil, err := env.SilhouetteCheck(8, 13)
		if err != nil {
			return err
		}
		psi, err := env.WindowPSI()
		if err != nil {
			return err
		}
		experiments.RenderValidation(out, sil, psi, 5)

		cg, err := experiments.CandidateGeneration(114, 200)
		if err != nil {
			return err
		}
		pp, err := env.PreprocessingAnalysis(0, 3000)
		if err != nil {
			return err
		}
		experiments.RenderCandidateGeneration(out, cg, pp)
	}
	return nil
}
