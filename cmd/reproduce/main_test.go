package main

import "testing"

// Smoke tests: each experiment path renders without error at small scale.
// The correctness of the numbers is asserted by internal/experiments; the
// CLI's job is wiring and rendering.

func TestRunSingleTable(t *testing.T) {
	if err := run(false, 3, 0, 8000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if err := run(false, 0, 5, 8000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2NeedsNoModel(t *testing.T) {
	if err := run(false, 2, 0, 8000, 1); err != nil {
		t.Fatal(err)
	}
}
