// Command promlint checks a Prometheus text-exposition (format 0.0.4)
// for structural problems: samples without HELP/TYPE, invalid metric
// names or TYPE values, histogram series with non-cumulative buckets, a
// missing terminal le="+Inf", or a _count that disagrees with the +Inf
// bucket. It is the CI gate for the serving metrics contract — run it
// over a file dumped by `loadgen -metrics-out`, a live /metrics URL, or
// stdin.
//
// Usage:
//
//	promlint metrics.txt
//	promlint -require polygraph_build_info,polygraph_feature_psi metrics.txt
//	promlint -require-file scripts/required-families-http.txt metrics.txt
//	promlint http://127.0.0.1:8080/metrics
//	loadgen -short | promlint -
//
// Exit codes: 0 clean, 1 lint problems, 2 usage/read error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"polygraph/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	require := fs.String("require", "", "comma-separated metric families that must be present")
	requireFile := fs.String("require-file", "", "file listing required families (one per line, # comments); combines with -require")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, obs.Version("promlint"))
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "promlint: exactly one source required (path, URL, or - for stdin)")
		return 2
	}
	src := fs.Arg(0)
	r, closer, err := open(src)
	if err != nil {
		fmt.Fprintf(stderr, "promlint: %v\n", err)
		return 2
	}
	defer closer()

	var required []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}
	if *requireFile != "" {
		fromFile, err := readRequireFile(*requireFile)
		if err != nil {
			fmt.Fprintf(stderr, "promlint: %v\n", err)
			return 2
		}
		required = append(required, fromFile...)
	}
	problems, err := obs.Lint(r, required...)
	if err != nil {
		fmt.Fprintf(stderr, "promlint: %v\n", err)
		return 2
	}
	if len(problems) == 0 {
		fmt.Fprintf(stdout, "promlint: %s: OK\n", src)
		return 0
	}
	for _, p := range problems {
		fmt.Fprintf(stdout, "%s:%d: %s\n", src, p.Line, p.Msg)
	}
	fmt.Fprintf(stderr, "promlint: %s: %d problem(s)\n", src, len(problems))
	return 1
}

// readRequireFile parses a required-families list: one family per
// line, blank lines and #-comments ignored. The committed lists under
// scripts/ are the single source of truth for CI's metric contracts.
func readRequireFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("require-file %s lists no families", path)
	}
	return names, nil
}

// open resolves the source argument to a reader: "-" is stdin, an
// http(s) URL is fetched, anything else is a file path.
func open(src string) (io.Reader, func(), error) {
	switch {
	case src == "-":
		return os.Stdin, func() {}, nil
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(src)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, nil, fmt.Errorf("%s returned %d", src, resp.StatusCode)
		}
		return resp.Body, func() { resp.Body.Close() }, nil
	default:
		f, err := os.Open(src)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
}
