package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const cleanExpo = `# HELP polygraph_collections_total Fingerprint payloads scored.
# TYPE polygraph_collections_total counter
polygraph_collections_total 42
`

func TestRunCleanFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := os.WriteFile(path, []byte(cleanExpo), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}

func TestRunFlagsProblems(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := os.WriteFile(path, []byte("orphan_sample 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d for exposition with problems, stdout %q", code, out.String())
	}
}

func TestRunRequireMissingFamily(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := os.WriteFile(path, []byte(cleanExpo), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-require", "polygraph_feature_psi", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d when required family missing", code)
	}
}

func TestRunRequireFile(t *testing.T) {
	dir := t.TempDir()
	expo := filepath.Join(dir, "m.txt")
	if err := os.WriteFile(expo, []byte(cleanExpo), 0o644); err != nil {
		t.Fatal(err)
	}
	list := filepath.Join(dir, "families.txt")
	if err := os.WriteFile(list, []byte("# ci contract\npolygraph_collections_total\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-require-file", list, expo}, &out, &errb); code != 0 {
		t.Fatalf("exit %d with satisfied require-file, stderr %q", code, errb.String())
	}

	// A listed family that is absent must fail the lint.
	if err := os.WriteFile(list, []byte("polygraph_collections_total\npolygraph_feature_psi\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-require-file", list, expo}, &out, &errb); code != 1 {
		t.Fatalf("exit %d when require-file family missing", code)
	}

	// Missing or empty list files are usage errors, not silent passes.
	if code := run([]string{"-require-file", filepath.Join(dir, "nope.txt"), expo}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for missing require-file", code)
	}
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-require-file", empty, expo}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for empty require-file", code)
	}
}

func TestRunUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d with no source argument", code)
	}
}
