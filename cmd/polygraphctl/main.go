// Command polygraphctl is the fleet control plane: train once, push the
// model to every replica, and verify the fleet serves one hash.
//
// Subcommands:
//
//	polygraphctl train -out model.json [-sessions N] [-novelty]
//	                                    train in-process and write the
//	                                    model file, printing its hash
//	polygraphctl push -model model.json -replicas url1,url2,...
//	                                    distribute the model: POST it to
//	                                    every replica's admin endpoint,
//	                                    verify each deploys the identical
//	                                    hash, report per-replica results
//	polygraphctl status -replicas url1,url2,...
//	                                    probe each replica's health and
//	                                    deployed model hash; fail unless
//	                                    all live replicas agree
//	polygraphctl version               print build info
//
// The push contract is the paper's deployment story scaled out: the
// model is trained once (Section 5's offline clustering), and serving
// capacity comes from replicas that are only admitted when they prove —
// by hash — that they score with exactly that model. A replica that
// deploys anything else is refused, because two replicas with different
// models silently give different verdicts for the same fingerprint.
//
// Exit codes: 0 success, 1 a replica failed verification (push) or the
// fleet disagrees (status), 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/fleet"
	"polygraph/internal/obs"
	"polygraph/internal/serving"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "train":
		return runTrain(args[1:], stdout, stderr)
	case "push":
		return runPush(args[1:], stdout, stderr)
	case "status":
		return runStatus(args[1:], stdout, stderr)
	case "version", "-version", "--version":
		fmt.Fprintln(stdout, obs.Version("polygraphctl"))
		return 0
	default:
		fmt.Fprintf(stderr, "polygraphctl: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  polygraphctl train -out model.json [-sessions N] [-novelty]
  polygraphctl push -model model.json -replicas url1,url2,...
  polygraphctl status -replicas url1,url2,...
  polygraphctl version`)
}

func runTrain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "model.json", "output model path")
	sessions := fs.Int("sessions", 40000, "training sessions to generate")
	novelty := fs.Bool("novelty", false, "arm the novelty guard")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := obs.NewLogger(stderr, false).With("app", "polygraphctl")
	model, _, _, err := serving.ObtainModel(context.Background(), true, "", *sessions, *novelty, logger)
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: train: %v\n", err)
		return 2
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: %v\n", err)
		return 2
	}
	if err := model.Save(f); err != nil {
		f.Close()
		fmt.Fprintf(stderr, "polygraphctl: save: %v\n", err)
		return 2
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "polygraphctl: close: %v\n", err)
		return 2
	}
	hash, err := model.Hash()
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: hash: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "trained %s sessions=%d accuracy=%.4f hash=%s\n", *out, *sessions, model.Accuracy, hash)
	return 0
}

// replicaMembers parses -replicas into fleet members named r0..rN.
func replicaMembers(list string) ([]fleet.Member, error) {
	var members []fleet.Member
	for i, raw := range strings.Split(list, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		members = append(members, fleet.Member{Name: fmt.Sprintf("r%d", i), BaseURL: strings.TrimRight(u, "/")})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("no replica URLs in %q", list)
	}
	return members, nil
}

func runPush(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "model.json", "model file to distribute")
	replicas := fs.String("replicas", "", "comma-separated replica base URLs")
	timeout := fs.Duration("timeout", 30*time.Second, "per-replica push deadline")
	asJSON := fs.Bool("json", false, "emit per-replica results as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: %v\n", err)
		return 2
	}
	model, err := core.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: load model: %v\n", err)
		return 2
	}
	hash, err := model.Hash()
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: hash: %v\n", err)
		return 2
	}
	members, err := replicaMembers(*replicas)
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: %v\n", err)
		return 2
	}
	logger := obs.NewLogger(stderr, false).With("app", "polygraphctl")
	b, err := fleet.NewBalancer(fleet.Config{Seed: 1, ExpectHash: hash, Logger: logger}, members...)
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: %v\n", err)
		return 2
	}
	ctrl := &fleet.Controller{PushTimeout: *timeout, Logger: logger}
	results, derr := ctrl.Distribute(context.Background(), b, model)
	printResults(stdout, results, *asJSON)
	exit := 0
	for _, r := range results {
		if !r.Admitted {
			exit = 1
		}
	}
	if derr != nil {
		fmt.Fprintf(stderr, "polygraphctl: %v\n", derr)
		return 1
	}
	return exit
}

func runStatus(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	replicas := fs.String("replicas", "", "comma-separated replica base URLs")
	timeout := fs.Duration("timeout", 5*time.Second, "per-replica probe deadline")
	asJSON := fs.Bool("json", false, "emit per-replica status as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	members, err := replicaMembers(*replicas)
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: %v\n", err)
		return 2
	}
	b, err := fleet.NewBalancer(fleet.Config{Seed: 1, ProbeTimeout: *timeout}, members...)
	if err != nil {
		fmt.Fprintf(stderr, "polygraphctl: %v\n", err)
		return 2
	}
	// One probe pass over Pending members: reuse the controller's Verify
	// admission against the first live hash so agreement is checked the
	// same way a fleet harness checks it.
	ctx := context.Background()
	var firstHash string
	type row struct {
		Name    string `json:"name"`
		BaseURL string `json:"base_url"`
		Live    bool   `json:"live"`
		Hash    string `json:"hash,omitempty"`
		// UptimeS and ModelAgeS come from the replica's own exposition:
		// uptime from polygraph_uptime_seconds, model age as
		// (process start + uptime) - model trained timestamp, so both
		// are free of local clock skew.
		UptimeS   float64 `json:"uptime_s,omitempty"`
		ModelAgeS float64 `json:"model_age_s,omitempty"`
		Error     string  `json:"error,omitempty"`
	}
	rows := make([]row, 0, len(members))
	agree := true
	for _, m := range members {
		r := row{Name: m.Name, BaseURL: m.BaseURL}
		info, err := fleet.FetchModelInfo(ctx, b.Client(), m.BaseURL)
		if err != nil {
			r.Error = err.Error()
			agree = false
		} else {
			r.Live = true
			r.Hash = info.Hash
			if firstHash == "" {
				firstHash = info.Hash
			} else if info.Hash != firstHash {
				agree = false
			}
			if text, err := m.FetchMetrics(ctx, b.Client()); err == nil {
				ex := obs.ParseExpositionString(text)
				up, _ := ex.Value("polygraph_uptime_seconds")
				start, _ := ex.Value("polygraph_process_start_timestamp_seconds")
				trained, _ := ex.Value("polygraph_model_trained_timestamp_seconds")
				r.UptimeS = up
				if trained > 0 && start > 0 {
					r.ModelAgeS = start + up - trained
				}
			}
		}
		rows = append(rows, r)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rows)
	} else {
		for _, r := range rows {
			if r.Live {
				fmt.Fprintf(stdout, "%-4s %-28s live  up=%s model-age=%s hash=%s\n",
					r.Name, r.BaseURL, roundSeconds(r.UptimeS), roundSeconds(r.ModelAgeS), r.Hash)
			} else {
				fmt.Fprintf(stdout, "%-4s %-28s DOWN  %s\n", r.Name, r.BaseURL, r.Error)
			}
		}
	}
	if !agree {
		fmt.Fprintln(stderr, "polygraphctl: fleet does not agree on one model hash")
		return 1
	}
	fmt.Fprintf(stdout, "fleet agrees on hash %s (%d replicas)\n", firstHash, len(rows))
	return 0
}

// roundSeconds renders a seconds value as a whole-second duration; a
// replica that did not report the metric shows "-".
func roundSeconds(s float64) string {
	if s <= 0 {
		return "-"
	}
	return (time.Duration(s * float64(time.Second))).Round(time.Second).String()
}

func printResults(w io.Writer, results []fleet.PushResult, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(results)
		return
	}
	for _, r := range results {
		if r.Admitted {
			fmt.Fprintf(w, "%-4s %-28s admitted hash=%s\n", r.Name, r.BaseURL, r.Hash)
		} else {
			fmt.Fprintf(w, "%-4s %-28s REFUSED  %s\n", r.Name, r.BaseURL, r.Error)
		}
	}
}
