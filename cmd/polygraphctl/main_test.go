package main

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"polygraph/internal/serving"
)

func TestTrainPushStatusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")

	var out, errOut bytes.Buffer
	if code := run([]string{"train", "-out", modelPath, "-sessions", "8000"}, &out, &errOut); code != 0 {
		t.Fatalf("train exit %d: %s", code, errOut.String())
	}
	trainLine := out.String()
	if !strings.Contains(trainLine, "hash=") {
		t.Fatalf("train output missing hash: %q", trainLine)
	}
	wantHash := strings.TrimSpace(trainLine[strings.Index(trainLine, "hash=")+len("hash="):])

	// Two warming in-process replicas — no model until the push.
	var urls []string
	for i := 0; i < 2; i++ {
		r, err := serving.New(context.Background(), serving.Config{
			Name: fmt.Sprintf("ctl-%d", i), Addr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		urls = append(urls, r.BaseURL())
	}
	replicas := strings.Join(urls, ",")

	// Status before push: replicas are warming (404 on admin GET) → exit 1.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"status", "-replicas", replicas}, &out, &errOut); code != 1 {
		t.Fatalf("status on warming fleet exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"push", "-model", modelPath, "-replicas", replicas}, &out, &errOut); code != 0 {
		t.Fatalf("push exit %d: %s%s", code, out.String(), errOut.String())
	}
	if got := strings.Count(out.String(), "admitted hash="+wantHash); got != 2 {
		t.Fatalf("want 2 admissions with hash %s, got %d:\n%s", wantHash, got, out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"status", "-replicas", replicas}, &out, &errOut); code != 0 {
		t.Fatalf("status exit %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "fleet agrees on hash "+wantHash) {
		t.Fatalf("status output:\n%s", out.String())
	}
	// The status rows surface runtime self-telemetry parsed from each
	// replica's exposition: uptime and the deployed model's age.
	if !strings.Contains(out.String(), "up=") || !strings.Contains(out.String(), "model-age=") {
		t.Fatalf("status output missing uptime/model-age columns:\n%s", out.String())
	}
}

func TestPushRefusedAgainstDeadReplica(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"train", "-out", modelPath, "-sessions", "8000"}, &out, &errOut); code != 0 {
		t.Fatalf("train exit %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	// Unroutable replica: distribution admits zero and fails.
	if code := run([]string{"push", "-model", modelPath, "-timeout", "2s",
		"-replicas", "http://127.0.0.1:1"}, &out, &errOut); code != 1 {
		t.Fatalf("push to dead replica exit %d, want 1", code)
	}
}

func TestUsageAndVersion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bogus subcommand exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"version"}, &out, &errOut); code != 0 {
		t.Fatal("version failed")
	}
	if !strings.Contains(out.String(), "polygraphctl go") {
		t.Fatalf("version output %q", out.String())
	}
}
