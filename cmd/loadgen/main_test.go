package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polygraph/internal/benchjson"
	"polygraph/internal/bundle"
	"polygraph/internal/loadgen"
	"polygraph/internal/slo"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRunBadFlags(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-definitely-not-a-flag"}, null, null); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code := run([]string{"-scenario", "/nonexistent.json"}, null, null); code != 2 {
		t.Fatalf("missing scenario exit %d, want 2", code)
	}
	// A scenario that fails validation after overrides.
	if code := run([]string{"-short", "-fraud-mix", "3"}, null, null); code != 2 {
		t.Fatalf("invalid mix exit %d, want 2", code)
	}
	// Fleet flag combinations rejected before any training happens.
	if code := run([]string{"-short", "-fleet", "2", "-addr", "http://x"}, null, null); code != 2 {
		t.Fatalf("-fleet with -addr exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-fleet-kill"}, null, null); code != 2 {
		t.Fatalf("-fleet-kill without -fleet exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-fleet", "1", "-fleet-kill"}, null, null); code != 2 {
		t.Fatalf("-fleet-kill with a 1-replica fleet exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-fleet", "2", "-audit-dir", "/tmp/x", "-audit-sample", "8"}, null, null); code != 2 {
		t.Fatalf("fleet with sampled audit exit %d, want 2", code)
	}
	// TCP flag combinations rejected before any training happens.
	if code := run([]string{"-short", "-tcp", "-addr", "http://x"}, null, null); code != 2 {
		t.Fatalf("-tcp with -addr exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-tcp", "-fleet", "2"}, null, null); code != 2 {
		t.Fatalf("-tcp with -fleet exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-tcp", "-invalid-mix", "0.1"}, null, null); code != 2 {
		t.Fatalf("-tcp with -invalid-mix exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-tcp", "-audit-dir", "/tmp/x", "-audit-sample", "3"}, null, null); code != 2 {
		t.Fatalf("-tcp with sampled audit exit %d, want 2", code)
	}
	// SLO flag combinations rejected before any training happens.
	if code := run([]string{"-short", "-fault-slow", "1ms", "-fleet", "2"}, null, null); code != 2 {
		t.Fatalf("-fault-slow with -fleet exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-fault-slow", "1ms", "-tcp"}, null, null); code != 2 {
		t.Fatalf("-fault-slow with -tcp exit %d, want 2", code)
	}
	if code := run([]string{"-short", "-slo-spec", "/nonexistent-spec.json"}, null, null); code != 2 {
		t.Fatalf("missing -slo-spec exit %d, want 2", code)
	}
}

func TestRunVersionFlag(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-version"}, null, null); code != 0 {
		t.Fatalf("-version exit %d, want 0", code)
	}
}

// TestRunFleetKillDrill is the availability acceptance in miniature:
// three replicas, a fixed-count scenario, one replica drained at the
// exact midpoint of the steady phase — and still zero client-visible
// errors, byte-identical ledgers across two runs, and an exact
// client-vs-sum-of-replicas reconciliation.
func TestRunFleetKillDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model in-process")
	}
	dir := t.TempDir()
	sc := &loadgen.Scenario{
		Name: "fleet-drill", Seed: 17, Pool: 96, FraudMix: 0.05, JSONMix: 0.25,
		Phases: []loadgen.Phase{
			{Name: "ramp", Requests: 40, Concurrency: 2, RPS: 400},
			{Name: "steady", Requests: 240, Concurrency: 4},
		},
	}
	scData, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(scPath, scData, 0o644); err != nil {
		t.Fatal(err)
	}
	ledger1 := filepath.Join(dir, "ledger1.json")
	ledger2 := filepath.Join(dir, "ledger2.json")
	bench := filepath.Join(dir, "BENCH_fleet.json")

	null := devNull(t)
	args := []string{
		"-scenario", scPath, "-train-sessions", "6000",
		"-fleet", "3", "-fleet-kill", "-fail-on-errors", "-benchjson", bench,
	}
	if code := run(append(args, "-ledger", ledger1, "-audit-dir", filepath.Join(dir, "aud1")), null, null); code != 0 {
		t.Fatalf("fleet run 1 exit %d", code)
	}
	if code := run(append(args, "-ledger", ledger2, "-audit-dir", filepath.Join(dir, "aud2")), null, null); code != 0 {
		t.Fatalf("fleet run 2 exit %d", code)
	}

	b1, err := os.ReadFile(ledger1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(ledger2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("fleet ledgers differ across runs:\n%s\n---\n%s", b1, b2)
	}
	var led loadgen.Ledger
	if err := json.Unmarshal(b1, &led); err != nil {
		t.Fatal(err)
	}
	if led.Sent != 280 || led.Errors() != 0 {
		t.Fatalf("ledger sent=%d errors=%d, want 280 sent and 0 errors", led.Sent, led.Errors())
	}
	// Fleet audit at sample 1: every scored decision recorded somewhere.
	if led.AuditRecords != led.Sent || led.AuditDropped != 0 {
		t.Fatalf("audit records=%d dropped=%d, want %d/0", led.AuditRecords, led.AuditDropped, led.Sent)
	}

	// The benchjson snapshot carries the serve-fleet family.
	rep, err := benchjson.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var fleetRun int
	for _, e := range rep.Entries {
		if e.Name == "serve-fleet/run" {
			fleetRun++
		}
	}
	if fleetRun != 1 {
		t.Fatalf("benchjson serve-fleet/run entries=%d, want 1", fleetRun)
	}
}

// TestRunTCPEndToEnd is the smoke-tcp CI job in miniature: a fixed-seed
// binary-only scenario driven over the framed TCP listener through
// SubmitBatch pipelining, full-sample audit, a sustained-RPS floor, and
// byte-identical ledgers across two runs.
func TestRunTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model in-process")
	}
	dir := t.TempDir()
	sc := &loadgen.Scenario{
		Name: "tcp-shape", Seed: 29, Pool: 96, FraudMix: 0.05, JSONMix: 0,
		Phases: []loadgen.Phase{
			{Name: "ramp", Requests: 64, Concurrency: 2},
			{Name: "steady", Requests: 192, Concurrency: 4},
		},
	}
	scData, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(scPath, scData, 0o644); err != nil {
		t.Fatal(err)
	}
	ledger1 := filepath.Join(dir, "ledger1.json")
	ledger2 := filepath.Join(dir, "ledger2.json")
	bench := filepath.Join(dir, "BENCH_tcp.json")

	null := devNull(t)
	args := []string{
		"-tcp", "-scenario", scPath, "-train-sessions", "6000",
		"-min-rps", "10", "-fail-on-errors", "-tcp-batch", "16",
	}
	if code := run(append(args, "-ledger", ledger1, "-benchjson", bench,
		"-audit-dir", filepath.Join(dir, "aud1"), "-audit-sample", "1"), null, null); code != 0 {
		t.Fatalf("tcp run 1 exit %d", code)
	}
	if code := run(append(args, "-ledger", ledger2,
		"-audit-dir", filepath.Join(dir, "aud2"), "-audit-sample", "1"), null, null); code != 0 {
		t.Fatalf("tcp run 2 exit %d", code)
	}

	b1, err := os.ReadFile(ledger1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(ledger2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("tcp ledgers differ across runs:\n%s\n---\n%s", b1, b2)
	}
	var led loadgen.Ledger
	if err := json.Unmarshal(b1, &led); err != nil {
		t.Fatal(err)
	}
	if led.Sent != 256 || led.Errors() != 0 {
		t.Fatalf("ledger sent=%d errors=%d, want 256 sent and 0 errors", led.Sent, led.Errors())
	}
	// Full-sample audit over TCP: one record per scored frame.
	if led.AuditRecords != led.Sent || led.AuditDropped != 0 {
		t.Fatalf("audit records=%d dropped=%d, want %d/0", led.AuditRecords, led.AuditDropped, led.Sent)
	}

	// The benchjson snapshot carries the serve-tcp family with
	// slash-normalized endpoint keys ("serve-tcp/ramp/tcp", not
	// "serve-tcp/ramptcp").
	rep, err := benchjson.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var tcpRun, rampTCP int
	for _, e := range rep.Entries {
		if e.Name == "serve-tcp/run" {
			tcpRun++
		}
		if e.Name == "serve-tcp/ramp/tcp" {
			rampTCP++
		}
	}
	if tcpRun != 1 || rampTCP != 1 {
		t.Fatalf("benchjson serve-tcp/run=%d serve-tcp/ramp/tcp=%d, want 1/1", tcpRun, rampTCP)
	}
}

// TestRunEndToEnd drives the full CLI path once: scenario file, an
// in-process trained model, ledger emission, benchjson merge, and the
// gate assertions — the same invocation shape the CI smoke-load job uses.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model in-process")
	}
	dir := t.TempDir()
	sc := &loadgen.Scenario{
		Name: "ci-shape", Seed: 13, Pool: 96, FraudMix: 0.05, JSONMix: 0.25,
		Phases: []loadgen.Phase{
			{Name: "ramp", Requests: 40, Concurrency: 2, RPS: 400},
			{Name: "steady", Requests: 120, Concurrency: 4},
		},
	}
	scData, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(scPath, scData, 0o644); err != nil {
		t.Fatal(err)
	}
	ledger1 := filepath.Join(dir, "ledger1.json")
	ledger2 := filepath.Join(dir, "ledger2.json")
	bench := filepath.Join(dir, "BENCH_test.json")

	null := devNull(t)
	args := []string{
		"-scenario", scPath, "-train-sessions", "6000",
		"-max-p99", "5s", "-fail-on-errors", "-benchjson", bench,
	}
	if code := run(append(args, "-ledger", ledger1), null, null); code != 0 {
		t.Fatalf("run 1 exit %d", code)
	}
	if code := run(append(args, "-ledger", ledger2), null, null); code != 0 {
		t.Fatalf("run 2 exit %d", code)
	}

	// The acceptance criterion: two fixed-seed runs, byte-identical
	// ledgers.
	b1, err := os.ReadFile(ledger1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(ledger2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("ledgers differ:\n%s\n---\n%s", b1, b2)
	}
	var led loadgen.Ledger
	if err := json.Unmarshal(b1, &led); err != nil {
		t.Fatal(err)
	}
	if led.Sent != 160 || led.Errors() != 0 {
		t.Fatalf("ledger sent=%d errors=%d", led.Sent, led.Errors())
	}

	// The benchjson snapshot gained serve/* entries.
	rep, err := benchjson.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var serve, run2 int
	for _, e := range rep.Entries {
		if len(e.Name) >= 6 && e.Name[:6] == "serve/" {
			serve++
		}
		if e.Name == "serve/run" {
			run2++
		}
	}
	if serve == 0 || run2 != 1 {
		t.Fatalf("benchjson serve entries=%d serve/run=%d", serve, run2)
	}
}

// TestRunSLOFaultDrill is the seeded fault acceptance end to end: an
// injected per-request scoring delay breaches a tight latency
// objective, the burn-rate engine trips the fast-burn alert, the
// exported polygraph_slo_alert gauge lands in the -metrics-out dump
// (the evidence slocheck exits nonzero on), and the bundle analyzer's
// SLO rule fails the captured bundle offline.
func TestRunSLOFaultDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model in-process")
	}
	dir := t.TempDir()
	specJSON := `{
  "name": "drill",
  "objectives": [
    {"name": "drill-lat", "kind": "latency", "endpoint": "/v1/collect", "target": 0.95, "threshold_us": 1024, "window_s": 60}
  ]
}`
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := &loadgen.Scenario{
		Name: "drill", Seed: 7, Pool: 64, FraudMix: 0.05, JSONMix: 0,
		Phases: []loadgen.Phase{
			{Name: "steady", Requests: 64, Concurrency: 2},
		},
	}
	scData, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(scPath, scData, 0o644); err != nil {
		t.Fatal(err)
	}
	metricsPath := filepath.Join(dir, "metrics.txt")
	bundlePath := filepath.Join(dir, "bundle.tgz")

	null := devNull(t)
	args := []string{
		"-scenario", scPath, "-train-sessions", "6000",
		"-slo-spec", specPath, "-fault-slow", "2ms",
		"-metrics-out", metricsPath, "-bundle-out", bundlePath,
	}
	if code := run(args, null, null); code != 0 {
		t.Fatalf("drill run exit %d", code)
	}

	// Every scored request sat behind the 2ms delay, far over the
	// 1024us threshold: the alert gauge must be tripped in the dump.
	dump, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), `polygraph_slo_alert{objective="drill-lat"} 1`) {
		t.Fatalf("metrics dump missing tripped alert gauge:\n%s", dump)
	}

	// The same breach is caught offline by the analyzer's SLO rule.
	spec, err := slo.LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Open(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	var sloFails int
	for _, f := range bundle.Analyze(b, bundle.AnalyzeOptions{SLOSpec: spec}) {
		if f.Rule == bundle.RuleSLO && f.Severity == bundle.SeverityFail {
			sloFails++
		}
	}
	if sloFails == 0 {
		t.Fatal("bundle analyzer did not fail the SLO rule on the drilled bundle")
	}

	// Control: the same scenario without the fault stays green under
	// the same spec.
	metrics2 := filepath.Join(dir, "metrics-ok.txt")
	okArgs := []string{
		"-scenario", scPath, "-train-sessions", "6000",
		"-slo-spec", specPath, "-metrics-out", metrics2,
	}
	if code := run(okArgs, null, null); code != 0 {
		t.Fatalf("control run exit %d", code)
	}
	dump2, err := os.ReadFile(metrics2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump2), `polygraph_slo_alert{objective="drill-lat"} 0`) {
		t.Fatalf("control dump should export a quiet alert gauge:\n%s", dump2)
	}
}
