// Command loadgen is the deterministic load/soak harness for the serving
// path. It synthesizes a PCG-seeded mix of honest and fraud-browser
// sessions, drives a collect server through scripted scenario phases
// (ramp / steady / burst), and reports per-endpoint latency quantiles,
// achieved throughput, an error taxonomy, and a client-vs-server
// cross-check of the ingest counters.
//
// Usage:
//
//	loadgen -short                          # built-in smoke scenario, in-process server
//	loadgen -scenario soak.json             # scripted scenario, in-process server
//	loadgen -addr http://127.0.0.1:8080     # drive a live polygraphd
//	loadgen -short -fleet 3                 # 3 in-process replicas behind the balancer
//	loadgen -short -fleet 3 -fleet-kill     # same, draining one replica mid-steady
//	loadgen -tcp -scenario tcp-bench.json   # framed TCP mode through the coalescer
//	loadgen -tcp -min-rps 4000              # same, gating on sustained throughput
//
// With no -addr, loadgen trains a model in-process (fixed dataset seed,
// -train-sessions) and serves it on a loopback listener, so a fixed-seed
// run is fully reproducible: two runs produce an identical request
// stream and an identical ledger (-ledger writes it as JSON for
// byte-compare). CI runs `loadgen -short` twice, diffs the ledgers, and
// gates on -fail-on-errors plus the -max-p99 ceiling.
//
// With -fleet N, the same trained model is distributed hash-verified to
// N warming replicas (internal/serving) and every request routes through
// the health-checked balancer (internal/fleet). The cross-check then
// reconciles the client ledger against the sum of all replicas' counters
// — and -fleet-kill proves the availability story by draining one
// replica at the exact midpoint of the steady phase, which must cost
// zero client-visible errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polygraph/internal/audit"
	"polygraph/internal/benchjson"
	"polygraph/internal/bundle"
	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/fingerprint"
	"polygraph/internal/fleet"
	"polygraph/internal/loadgen"
	"polygraph/internal/obs"
	"polygraph/internal/serving"
	"polygraph/internal/slo"
	"polygraph/internal/ua"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the harness and returns the process exit code (0 ok,
// 1 assertion failure, 2 usage/setup error).
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarioPath  = fs.String("scenario", "", "scenario file (JSON); empty uses a built-in scenario")
		short         = fs.Bool("short", false, "use the built-in short deterministic smoke scenario")
		seed          = fs.Uint64("seed", 1, "scenario seed (drives the whole request stream)")
		addr          = fs.String("addr", "", "base URL of a live server (empty = in-process server)")
		trainSessions = fs.Int("train-sessions", 12000, "training-set size for the in-process model")
		fraudMix      = fs.Float64("fraud-mix", -1, "override the scenario's fraud-browser mix (-1 keeps it)")
		invalidMix    = fs.Float64("invalid-mix", -1, "override the scenario's malformed-payload mix (-1 keeps it)")
		maxP99        = fs.Duration("max-p99", 0, "fail when any endpoint's overall p99 exceeds this (0 = off)")
		failOnErrors  = fs.Bool("fail-on-errors", false, "fail on any non-2xx response or transport error")
		ledgerPath    = fs.String("ledger", "", "write the deterministic run ledger (JSON) to this path")
		benchOut      = fs.String("benchjson", "", "merge serve/* entries into this BENCH_<date>.json (created if absent)")
		noCrossCheck  = fs.Bool("no-crosscheck", false, "skip the /v1/stats and /metrics reconciliation")
		metricsOut    = fs.String("metrics-out", "", "dump the target's /metrics exposition to this path after the run")
		auditDir      = fs.String("audit-dir", "", "enable the decision audit ledger on the in-process server, writing to this directory")
		auditSample   = fs.Int("audit-sample", 1, "record every Nth benign decision in the audit ledger (flagged always recorded)")
		modelOut      = fs.String("model-out", "", "save the in-process model to this file (for auditq replay)")
		fleetN        = fs.Int("fleet", 0, "run N in-process replicas behind the health-checked balancer (0 = single server)")
		fleetKill     = fs.Bool("fleet-kill", false, "drain one replica at the midpoint of the steady phase (requires -fleet)")
		tcpMode       = fs.Bool("tcp", false, "drive the framed TCP listener (frame coalescer) instead of the HTTP endpoints")
		tcpBatch      = fs.Int("tcp-batch", 64, "frames pipelined per SubmitBatch block in -tcp mode")
		minRPS        = fs.Float64("min-rps", 0, "fail when overall achieved requests-per-second falls below this floor (0 = off)")
		bundleOut     = fs.String("bundle-out", "", "capture a support bundle from the target into this tar.gz after the run")
		sloSpecPath   = fs.String("slo-spec", "", "SLO spec JSON attached to the in-process target(s) (empty = the built-in spec)")
		faultSlow     = fs.Duration("fault-slow", 0, "SLO fault drill: delay every score on the in-process server by this much (single HTTP server only)")
		version       = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, obs.Version("loadgen"))
		return 0
	}
	if *fleetN > 0 && *addr != "" {
		fmt.Fprintln(stderr, "loadgen: -fleet runs in-process replicas and cannot combine with -addr")
		return 2
	}
	if *fleetKill && *fleetN < 2 {
		fmt.Fprintln(stderr, "loadgen: -fleet-kill needs -fleet of at least 2 (a 1-replica fleet cannot survive a kill)")
		return 2
	}
	if *fleetN > 0 && *auditDir != "" && *auditSample != 1 {
		// With N>1 replicas, which replica scores a given benign decision
		// depends on routing, so every-Nth sampling is not deterministic
		// across runs; only -audit-sample 1 keeps the audit totals exact.
		fmt.Fprintln(stderr, "loadgen: fleet auditing requires -audit-sample 1 (benign sampling is routing-dependent)")
		return 2
	}
	if *tcpMode && *addr != "" {
		fmt.Fprintln(stderr, "loadgen: -tcp stands up the in-process TCP listener and cannot combine with -addr")
		return 2
	}
	if *tcpMode && *fleetN > 0 {
		fmt.Fprintln(stderr, "loadgen: -tcp does not route through a fleet")
		return 2
	}
	if *faultSlow > 0 && (*addr != "" || *fleetN > 0 || *tcpMode) {
		// The delay seam lives in the HTTP score path of the in-process
		// collect server; the other rigs have no knob to turn.
		fmt.Fprintln(stderr, "loadgen: -fault-slow drills the single in-process HTTP server (no -addr, -fleet, or -tcp)")
		return 2
	}
	if *sloSpecPath != "" && *addr != "" {
		fmt.Fprintln(stderr, "loadgen: -slo-spec attaches to the in-process target; a live -addr server configures its own")
		return 2
	}
	if *tcpMode && *auditDir != "" && *auditSample != 1 {
		// Coalesced batches audit their frames from concurrent connection
		// goroutines, so the every-Nth benign sampling counter is not
		// deterministic across runs; only -audit-sample 1 keeps the audit
		// totals exact.
		fmt.Fprintln(stderr, "loadgen: TCP auditing requires -audit-sample 1 (benign sampling is interleaving-dependent)")
		return 2
	}

	sc, err := buildScenario(*scenarioPath, *short, *seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *fraudMix >= 0 {
		sc.FraudMix = *fraudMix
	}
	if *invalidMix >= 0 {
		sc.InvalidMix = *invalidMix
	}
	if *tcpMode {
		if sc.InvalidMix > 0 {
			fmt.Fprintln(stderr, "loadgen: -tcp drives the binary frame codec only; set -invalid-mix 0 (corrupted bodies have no decoded payload to pipeline)")
			return 2
		}
		// The JSON/binary coin flip still burns one PCG draw per pool
		// entry, so zeroing the mix changes only the encoding — the
		// session stream (and therefore every verdict) is identical to
		// the same scenario driven over HTTP.
		sc.JSONMix = 0
	}
	if err := sc.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	sloSpec := slo.DefaultSpec()
	if *sloSpecPath != "" {
		loaded, err := slo.LoadSpec(*sloSpecPath)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 2
		}
		sloSpec = loaded
	}

	ctx := context.Background()
	baseURL := *addr
	if baseURL != "" && !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	var model *core.Model
	var driftMon *obs.DriftMonitor
	var auditLedger *audit.Ledger
	var sloEng *slo.Engine
	var rig *fleetRig
	tcpAddr := ""
	if *fleetN > 0 {
		rig, err = startInProcessFleet(ctx, sc, *fleetN, *trainSessions, *auditDir, *auditSample, sloSpec, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: in-process fleet: %v\n", err)
			return 2
		}
		defer rig.shutdown()
		model = rig.model
	} else if baseURL == "" {
		srvRig, err := startInProcess(sc, *trainSessions, *auditDir, *auditSample, *tcpMode, sloSpec, *faultSlow, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: in-process server: %v\n", err)
			return 2
		}
		defer srvRig.shutdown()
		model, driftMon, auditLedger = srvRig.model, srvRig.drift, srvRig.audit
		sloEng = srvRig.slo
		baseURL, tcpAddr = srvRig.baseURL, srvRig.tcpAddr
	} else if *auditDir != "" || *modelOut != "" {
		fmt.Fprintln(stderr, "loadgen: -audit-dir and -model-out require the in-process server (no -addr)")
		return 2
	}
	if *modelOut != "" {
		if err := saveModel(model, *modelOut); err != nil {
			fmt.Fprintf(stderr, "loadgen: model-out: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "model: saved to %s\n", *modelOut)
	}

	features, err := targetFeatures(ctx, model, baseURL)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}
	pool, err := loadgen.BuildPool(sc, features)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}

	opts := loadgen.Options{
		Scenario:       sc,
		Pool:           pool,
		BaseURL:        baseURL,
		TCPAddr:        tcpAddr,
		TCPBatch:       *tcpBatch,
		SkipCrossCheck: *noCrossCheck,
		ExpectAudit:    auditLedger != nil,
	}
	if rig != nil {
		opts.Fleet = rig.balancer
		opts.ExpectAudit = *auditDir != ""
		if *fleetKill {
			opts.Hook = &loadgen.PhaseHook{Midpoint: func(phase string) {
				if phase != killPhase {
					return
				}
				victim := rig.replicas[len(rig.replicas)-1]
				fmt.Fprintf(stderr, "loadgen: fleet drill: draining replica %s mid-%s\n", victim.Name(), phase)
				// Out of rotation first, shutdown second: quiescing
				// before Drain is what keeps the client-vs-fleet
				// reconciliation exact (see fleet.Quiesce).
				qctx, qcancel := context.WithTimeout(ctx, 10*time.Second)
				if err := rig.balancer.Quiesce(qctx, victim.Name()); err != nil {
					fmt.Fprintf(stderr, "loadgen: fleet drill: %v\n", err)
				}
				qcancel()
				victim.Drain()
			}}
		}
	}
	report, err := loadgen.Run(ctx, opts)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}
	// Seal the audit ledger before reporting so auditq can verify and
	// replay it the moment the process exits.
	if auditLedger != nil {
		if err := auditLedger.Close(); err != nil {
			fmt.Fprintf(stderr, "loadgen: close audit ledger: %v\n", err)
			return 2
		}
		c := auditLedger.Counters()
		fmt.Fprintf(stdout, "audit: %d decision(s) recorded (%d sampled out, %d bytes) in %s\n",
			c.Records, c.Dropped, c.Bytes, auditLedger.Dir())
	}
	fmt.Fprint(stdout, loadgen.FormatReport(report))
	if rig != nil {
		for _, ms := range rig.balancer.Snapshot() {
			fmt.Fprintf(stdout, "fleet: %-4s %-22s %-8s hash=%s\n", ms.Name, ms.BaseURL, ms.State, short12(ms.ModelHash))
		}
	}

	// Force a drift evaluation over the traffic just sent so the PSI
	// gauges are populated in the -metrics-out dump (the background
	// cadence is too slow for a short run).
	if driftMon != nil {
		if _, err := driftMon.Evaluate(); err != nil {
			fmt.Fprintf(stderr, "loadgen: drift evaluation: %v\n", err)
		}
	}
	// Advance every SLO engine one final deterministic tick over the
	// run's finished counters, so the exported gauges — and any
	// burn-rate alert a fault drill tripped — reflect the whole run in
	// the -metrics-out dump and the support bundle.
	if rig != nil {
		for _, r := range rig.replicas {
			if e := r.SLO(); e != nil {
				if err := e.TickNow(); err != nil {
					fmt.Fprintf(stderr, "loadgen: slo tick %s: %v\n", r.Name(), err)
				}
			}
		}
		if _, err := rig.rollup.Collect(ctx); err != nil {
			fmt.Fprintf(stderr, "loadgen: slo rollup: %v\n", err)
		}
		printSLO(stdout, rig.rollup.Engine().Status())
	} else if sloEng != nil {
		if err := sloEng.TickNow(); err != nil {
			fmt.Fprintf(stderr, "loadgen: slo tick: %v\n", err)
		}
		printSLO(stdout, sloEng.Status())
	}
	if *metricsOut != "" {
		if rig != nil {
			err = rig.dumpMetrics(*metricsOut)
		} else {
			err = dumpMetrics(ctx, baseURL, *metricsOut)
		}
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: metrics-out: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "metrics: exposition written to %s\n", *metricsOut)
	}

	if *ledgerPath != "" {
		if err := writeLedger(*ledgerPath, report); err != nil {
			fmt.Fprintf(stderr, "loadgen: write ledger: %v\n", err)
			return 2
		}
	}
	if *benchOut != "" {
		family := "serve"
		if rig != nil {
			family = "serve-fleet"
		}
		if *tcpMode {
			family = "serve-tcp"
		}
		if err := emitBenchJSON(*benchOut, report, family); err != nil {
			fmt.Fprintf(stderr, "loadgen: benchjson: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchjson: %s/* entries merged into %s\n", family, *benchOut)
	}
	if *bundleOut != "" {
		if err := captureBundle(ctx, rig, baseURL, *bundleOut, *benchOut); err != nil {
			fmt.Fprintf(stderr, "loadgen: bundle-out: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "bundle: support bundle written to %s\n", *bundleOut)
	}

	return assess(report, *maxP99, *minRPS, *failOnErrors, stderr)
}

// assess applies the gate assertions and returns the exit code.
func assess(report *loadgen.Report, maxP99 time.Duration, minRPS float64, failOnErrors bool, stderr *os.File) int {
	code := 0
	if report.BudgetExceeded {
		fmt.Fprintln(stderr, "loadgen: FAIL: run exceeded its wall-clock budget")
		code = 1
	}
	if failOnErrors {
		if n := report.Ledger.Errors(); n != 0 {
			fmt.Fprintf(stderr, "loadgen: FAIL: %d error responses/transport failures (want 0)\n", n)
			code = 1
		}
	}
	if maxP99 > 0 {
		if p99 := report.P99(); p99 > maxP99 {
			fmt.Fprintf(stderr, "loadgen: FAIL: overall p99 %v exceeds ceiling %v\n", p99, maxP99)
			code = 1
		}
	}
	if minRPS > 0 && report.Elapsed > 0 {
		if rps := float64(report.Ledger.Sent) / report.Elapsed.Seconds(); rps < minRPS {
			fmt.Fprintf(stderr, "loadgen: FAIL: sustained %.0f requests/sec, below the -min-rps floor %.0f\n", rps, minRPS)
			code = 1
		}
	}
	if cc := report.CrossCheck; cc != nil && !cc.OK {
		fmt.Fprintln(stderr, "loadgen: FAIL: client ledger does not reconcile with server counters")
		code = 1
	}
	return code
}

func buildScenario(path string, short bool, seed uint64) (*loadgen.Scenario, error) {
	if path != "" {
		sc, err := loadgen.LoadScenario(path)
		if err != nil {
			return nil, err
		}
		if seed != 1 {
			sc.Seed = seed
		}
		return sc, nil
	}
	if short {
		return loadgen.ShortScenario(seed), nil
	}
	return loadgen.DefaultScenario(seed), nil
}

// trainModel builds the deterministic in-process model shared by the
// single-server and fleet paths: fixed dataset seed, the scenario's UA
// version ceiling, and the training vectors returned for drift
// baselining.
func trainModel(sc *loadgen.Scenario, sessions int, stderr *os.File) (*core.Model, [][]float64, error) {
	cfg := dataset.DefaultConfig()
	cfg.Sessions = sessions
	cfg.MaxVersion = sc.MaxVersion
	if cfg.MaxVersion == 0 {
		cfg.MaxVersion = 114
	}
	fmt.Fprintf(stderr, "loadgen: training in-process model on %d sessions...\n", sessions)
	traffic, err := dataset.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	samples := traffic.Samples()
	model, _, err := core.Train(samples, tc)
	if err != nil {
		return nil, nil, err
	}
	baseline := make([][]float64, len(samples))
	for i := range samples {
		baseline[i] = samples[i].Vector
	}
	return model, baseline, nil
}

// serverRig is the single in-process server: the trained model behind a
// loopback HTTP listener, plus — when the run drives TCP mode — the
// framed TCP listener attached to the same server so its counters and
// batch-size histogram ride the shared /metrics exposition.
type serverRig struct {
	model    *core.Model
	drift    *obs.DriftMonitor
	audit    *audit.Ledger
	slo      *slo.Engine
	baseURL  string
	tcpAddr  string
	shutdown func()
}

// startInProcess trains a model deterministically and serves it on a
// loopback listener. The drift monitor is baselined on the training
// vectors so a post-run Evaluate exports real PSI values. With withTCP,
// a frame-coalescing TCP listener shares the model, store, tracer,
// drift monitor, and audit ledger with the HTTP server.
func startInProcess(sc *loadgen.Scenario, sessions int, auditDir string, auditSample int, withTCP bool, sloSpec *slo.Spec, faultSlow time.Duration, stderr *os.File) (*serverRig, error) {
	model, baseline, err := trainModel(sc, sessions, stderr)
	if err != nil {
		return nil, err
	}
	driftMon, err := obs.NewDriftMonitor(obs.DriftConfig{
		Features: fingerprint.Names(model.Features),
		Baseline: baseline,
		Seed:     sc.Seed,
		Logger:   obs.NewLogger(stderr, false),
	})
	if err != nil {
		return nil, err
	}
	var auditLedger *audit.Ledger
	if auditDir != "" {
		auditLedger, err = audit.Open(audit.Config{Dir: auditDir, SampleBenign: auditSample})
		if err != nil {
			return nil, err
		}
	}
	srv, err := collect.NewServer(collect.Config{Model: model, Drift: driftMon, Audit: auditLedger, ScoreDelay: faultSlow})
	if err != nil {
		return nil, err
	}
	// The engine self-scrapes the server's own exposition; loadgen ticks
	// it exactly once after the run so the windows — and the fault
	// drill's alert decision — are a deterministic function of the run's
	// lifetime counters, not of wall-clock timer phase.
	eng, err := slo.NewEngine(slo.Config{
		Spec:      sloSpec,
		IntervalS: 1,
		Scope:     "loadgen server",
		Logger:    obs.NewLogger(stderr, false),
		Source: func() *obs.Exposition {
			return obs.ParseExpositionString(srv.MetricsText())
		},
	})
	if err != nil {
		return nil, err
	}
	srv.SetSLO(eng)
	var tcpSrv *collect.TCPServer
	var tcpLn net.Listener
	tcpAddr := ""
	if withTCP {
		tcpSrv, err = collect.NewTCPServer(collect.Config{
			Model:  model,
			Store:  srv.Store(),
			Tracer: srv.Tracer(),
			Drift:  driftMon,
			Audit:  auditLedger,
		})
		if err != nil {
			return nil, err
		}
		tcpLn, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv.AttachTCP(tcpSrv)
		go tcpSrv.Serve(tcpLn)
		tcpAddr = tcpLn.Addr().String()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if tcpSrv != nil {
			tcpSrv.Close()
		}
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if tcpSrv != nil {
			tcpSrv.Close()
		}
		httpSrv.Shutdown(ctx)
		if auditLedger != nil {
			auditLedger.Close() // idempotent; run() closes earlier on the happy path
		}
	}
	return &serverRig{
		model:    model,
		drift:    driftMon,
		audit:    auditLedger,
		slo:      eng,
		baseURL:  "http://" + ln.Addr().String(),
		tcpAddr:  tcpAddr,
		shutdown: shutdown,
	}, nil
}

// killPhase is the scenario phase whose midpoint hosts the -fleet-kill
// drill. Every built-in scenario names its main fixed-count phase
// "steady", which pins the drain to the same request index every run.
const killPhase = "steady"

// fleetRig is the in-process fleet: N serving replicas, the balancer
// routing between them, and the background health loop.
type fleetRig struct {
	model    *core.Model
	replicas []*serving.Replica
	balancer *fleet.Balancer
	rollup   *fleet.SLORollup
	cancel   context.CancelFunc
}

// startInProcessFleet trains the model once and stands up n warming
// replicas on loopback listeners, then walks the real fleet admission
// path: pin the balancer to the trained model's hash, distribute the
// model through every replica's admin endpoint, and hash-verify each
// deployment before admission. A 200ms health loop keeps ejection and
// re-admission live for the kill drill. With auditDir set, each replica
// writes its own ledger under auditDir/r<i>.
func startInProcessFleet(ctx context.Context, sc *loadgen.Scenario, n, sessions int, auditDir string, auditSample int, sloSpec *slo.Spec, stderr *os.File) (*fleetRig, error) {
	model, _, err := trainModel(sc, sessions, stderr)
	if err != nil {
		return nil, err
	}
	hash, err := model.Hash()
	if err != nil {
		return nil, err
	}
	logger := obs.NewLogger(stderr, false).With("app", "loadgen")

	rig := &fleetRig{model: model}
	ok := false
	defer func() {
		if !ok {
			rig.shutdown()
		}
	}()
	members := make([]fleet.Member, 0, n)
	for i := 0; i < n; i++ {
		cfg := serving.Config{
			Name:        fmt.Sprintf("r%d", i),
			Addr:        "127.0.0.1:0",
			AuditSample: auditSample,
			Logger:      logger,
			// Self-snapshotting replicas: pprof/expvar on the serving
			// mux so -bundle-out can capture profiles in-process.
			Debug: true,
			// Per-replica burn-rate engines; loadgen ticks each one a
			// final time post-run so the 1s background cadence never
			// races the metrics dump.
			SLOSpec:     sloSpec,
			SLOInterval: time.Second,
		}
		if auditDir != "" {
			cfg.AuditDir = filepath.Join(auditDir, cfg.Name)
		}
		r, err := serving.New(ctx, cfg)
		if err != nil {
			return nil, err
		}
		rig.replicas = append(rig.replicas, r)
		if err := r.Start(); err != nil {
			return nil, err
		}
		members = append(members, r.Member())
	}

	b, err := fleet.NewBalancer(fleet.Config{Seed: sc.Seed, ExpectHash: hash, Logger: logger}, members...)
	if err != nil {
		return nil, err
	}
	rig.balancer = b
	// Fleet-level rollup: sum every replica's counters, evaluate once.
	// loadgen drives Collect explicitly after the run (no background
	// loop), keeping the fleet page a function of the run alone.
	rollup, err := fleet.NewSLORollup(b, sloSpec, 1, logger)
	if err != nil {
		return nil, err
	}
	b.AttachSLO(rollup)
	rig.rollup = rollup
	results, err := (&fleet.Controller{Logger: logger}).Distribute(ctx, b, model)
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		if !res.Admitted {
			return nil, fmt.Errorf("replica %s refused: %v", res.Name, res.Error)
		}
		fmt.Fprintf(stderr, "loadgen: fleet: %s %s admitted hash=%s\n", res.Name, res.BaseURL, short12(res.Hash))
	}

	hctx, cancel := context.WithCancel(ctx)
	rig.cancel = cancel
	go b.RunHealth(hctx, 200*time.Millisecond)
	ok = true
	return rig, nil
}

func (rig *fleetRig) shutdown() {
	if rig.cancel != nil {
		rig.cancel()
	}
	for _, r := range rig.replicas {
		r.Close()
	}
}

// dumpMetrics writes replica r0's full exposition with the balancer's
// fleet families appended — one file carrying both the serving contract
// and the fleet contract for promlint.
func (rig *fleetRig) dumpMetrics(path string) error {
	var b strings.Builder
	b.WriteString(rig.replicas[0].MetricsExposition())
	rig.balancer.WriteMetrics(&b)
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// captureBundle snapshots the run's target into a support bundle: the
// whole fleet in-process (every replica — including a drained kill-drill
// victim — plus the balancer's own exposition), or the single server
// over loopback HTTP. The fresh benchjson trajectory rides along when
// the run emitted one. Collector errors (e.g. no pprof on the plain
// collect server) are recorded in the manifest, not fatal.
func captureBundle(ctx context.Context, rig *fleetRig, baseURL, path, benchOut string) error {
	opts := bundle.Options{
		Tool: obs.Version("loadgen").String(),
	}
	if benchOut != "" {
		opts.Files = []string{benchOut}
	}
	if rig != nil {
		for _, r := range rig.replicas {
			opts.Targets = append(opts.Targets, r.BundleTarget())
		}
		opts.FleetMetrics = rig.balancer.WriteMetrics
	} else {
		opts.Targets = []bundle.Target{{Name: "server", BaseURL: baseURL}}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := bundle.Capture(ctx, f, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printSLO summarizes the run's error-budget standing: one quiet line
// when everything is within budget, one loud line per firing objective
// otherwise (the same state slocheck gates on from the metrics dump).
func printSLO(w io.Writer, page slo.Page) {
	if !page.Alerting {
		fmt.Fprintf(w, "slo: %s: %d objective(s) within budget\n", page.Spec, len(page.Objectives))
		return
	}
	for _, o := range page.Objectives {
		if !o.Alerting {
			continue
		}
		fmt.Fprintf(w, "slo: ALERT %s: %s burning error budget (sli=%.5f target=%.5f fast=%v slow=%v)\n",
			page.Spec, o.Name, o.SLI, o.Target, o.FastBurn, o.SlowBurn)
	}
}

// short12 abbreviates a model hash for one-line fleet summaries.
func short12(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "-"
	}
	return h
}

// saveModel serializes the in-process model so `auditq replay` can pair
// it with the ledger the run just produced.
func saveModel(m *core.Model, path string) error {
	if m == nil {
		return fmt.Errorf("no in-process model to save")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpMetrics writes the target's /metrics exposition to path, so CI
// can lint the serving metrics contract (cmd/promlint) after a run.
func dumpMetrics(ctx context.Context, baseURL, path string) error {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

// targetFeatures resolves the feature set the payloads must carry. The
// in-process path has the model; against a live server, the features are
// the standard Table 8 set every polygraphd deployment serves — the
// run's cross-check catches a width mismatch immediately (every request
// rejects).
func targetFeatures(ctx context.Context, model *core.Model, baseURL string) ([]fingerprint.Feature, error) {
	if model != nil {
		return model.Features, nil
	}
	// A live target: confirm it is reachable before hammering it.
	client := &http.Client{Timeout: 5 * time.Second}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("target %s unreachable: %w", baseURL, err)
	}
	resp.Body.Close()
	return fingerprint.Table8(), nil
}

// writeLedger writes the deterministic ledger as indented JSON; CI runs
// the same scenario twice and byte-compares the two files.
func writeLedger(path string, report *loadgen.Report) error {
	data, err := json.MarshalIndent(&report.Ledger, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// emitBenchJSON merges the run's <family>/* entries into the snapshot
// at path, regenerating only that family in place so training entries —
// and the other serving family (serve vs serve-fleet) — survive.
func emitBenchJSON(path string, report *loadgen.Report, family string) error {
	rep, err := benchjson.ReadFile(path)
	if os.IsNotExist(err) {
		rep = benchjson.New(0)
		err = nil
	}
	if err != nil {
		return err
	}
	rep.DropPrefix(family + "/")
	// HTTP endpoint keys carry a leading slash ("/v1/collect"); the TCP
	// label ("tcp") does not — normalize so entry names always read
	// family/phase/endpoint.
	epKey := func(ep string) string {
		if !strings.HasPrefix(ep, "/") {
			return "/" + ep
		}
		return ep
	}
	for _, p := range report.Phases {
		for ep, q := range p.Latency {
			rep.Add(family+"/"+p.Name+epKey(ep), float64(q.Mean.Nanoseconds()), map[string]float64{
				"p50-us":   float64(q.P50.Microseconds()),
				"p95-us":   float64(q.P95.Microseconds()),
				"p99-us":   float64(q.P99.Microseconds()),
				"max-us":   float64(q.Max.Microseconds()),
				"requests": float64(q.Count),
			})
		}
	}
	for ep, q := range report.Overall {
		rep.Add(family+"/overall"+epKey(ep), float64(q.Mean.Nanoseconds()), map[string]float64{
			"p50-us":   float64(q.P50.Microseconds()),
			"p95-us":   float64(q.P95.Microseconds()),
			"p99-us":   float64(q.P99.Microseconds()),
			"max-us":   float64(q.Max.Microseconds()),
			"requests": float64(q.Count),
		})
	}
	metrics := map[string]float64{
		"requests":    float64(report.Ledger.Sent),
		"ok":          float64(report.Ledger.ByStatus["200"]),
		"errors":      float64(report.Ledger.Errors()),
		"flagged":     float64(report.Ledger.Flagged),
		"elapsed-sec": report.Elapsed.Seconds(),
	}
	if report.Elapsed > 0 {
		metrics["requests-per-sec"] = float64(report.Ledger.Sent) / report.Elapsed.Seconds()
	}
	if cc := report.CrossCheck; cc != nil {
		metrics["retries"] = float64(cc.Retries)
	}
	rep.Add(family+"/run", float64(report.Elapsed.Nanoseconds()), metrics)
	return rep.WriteFile(path)
}
