package main

import (
	"os"
	"path/filepath"
	"testing"

	"polygraph/internal/benchjson"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func writeSnapshot(t *testing.T, path string, build func(*benchjson.Report)) {
	t.Helper()
	r := benchjson.New(0)
	build(r)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-definitely-not-a-flag"}, null, null); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code := run([]string{"-check"}, null, null); code != 2 {
		t.Fatalf("-check with no files exit %d, want 2", code)
	}
	if code := run(nil, null, null); code != 2 {
		t.Fatalf("no -into exit %d, want 2", code)
	}
	if code := run([]string{"-version"}, null, null); code != 0 {
		t.Fatalf("-version exit %d, want 0", code)
	}
}

func TestRunCheck(t *testing.T) {
	dir := t.TempDir()
	null := devNull(t)

	snap := filepath.Join(dir, "BENCH_ok.json")
	writeSnapshot(t, snap, func(r *benchjson.Report) { r.Add("serve/run", 0, nil) })

	scenario := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(scenario, []byte(`{
		"name": "sc", "seed": 7, "pool": 16,
		"phases": [{"name": "ramp", "requests": 10, "concurrency": 2}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", snap, scenario}, null, null); code != 0 {
		t.Fatalf("valid snapshot+scenario exit %d, want 0", code)
	}

	// A malformed hand-edit: a snapshot with a duplicate entry name.
	dup := filepath.Join(dir, "BENCH_dup.json")
	if err := os.WriteFile(dup, []byte(`{
		"date": "2026-08-08", "go_version": "go1.22", "num_cpu": 1, "gomaxprocs": 1,
		"entries": [{"name": "serve/run"}, {"name": "serve/run"}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", dup}, null, null); code != 1 {
		t.Fatalf("duplicate-entry snapshot exit %d, want 1", code)
	}

	// A scenario with an invalid phase fails scenario validation.
	badSc := filepath.Join(dir, "bad-sc.json")
	if err := os.WriteFile(badSc, []byte(`{"name": "x", "phases": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", badSc}, null, null); code != 1 {
		t.Fatalf("empty-phases scenario exit %d, want 1", code)
	}

	// Not a JSON object at all.
	notJSON := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(notJSON, []byte("[1,2,3]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", notJSON}, null, null); code != 1 {
		t.Fatalf("non-object file exit %d, want 1", code)
	}

	// One bad file fails the whole batch even when the others are OK.
	if code := run([]string{"-check", snap, dup}, null, null); code != 1 {
		t.Fatalf("mixed batch exit %d, want 1", code)
	}
}

func TestRunMerge(t *testing.T) {
	dir := t.TempDir()
	null := devNull(t)

	base := filepath.Join(dir, "trajectory.json")
	writeSnapshot(t, base, func(r *benchjson.Report) {
		r.Add("train/scale", 5000, nil)
		r.Add("serve/run", 0, map[string]float64{"requests": 100})
	})
	fresh := filepath.Join(dir, "fresh.json")
	writeSnapshot(t, fresh, func(r *benchjson.Report) {
		r.Add("serve/run", 0, map[string]float64{"requests": 250})
		r.Add("serve-tcp/run", 0, map[string]float64{"requests": 9000})
	})

	if code := run([]string{"-into", base, fresh}, null, null); code != 0 {
		t.Fatal("merge failed")
	}
	got, err := benchjson.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]benchjson.Entry{}
	for _, e := range got.Entries {
		byName[e.Name] = e
	}
	if len(got.Entries) != 3 {
		t.Fatalf("merged to %d entries, want 3: %+v", len(got.Entries), got.Entries)
	}
	if byName["serve/run"].Metrics["requests"] != 250 {
		t.Fatalf("same-name entry not replaced: %+v", byName["serve/run"])
	}
	if _, ok := byName["serve-tcp/run"]; !ok {
		t.Fatal("new serve-tcp entry not appended")
	}
	// The merged snapshot still validates — the same guarantee the
	// smoke-tcp job asserts after folding in the day's serve-tcp entries.
	if code := run([]string{"-check", base}, null, null); code != 0 {
		t.Fatal("merged snapshot failed -check")
	}

	// Bootstrapping: a missing -into target adopts the first source.
	boot := filepath.Join(dir, "new.json")
	if code := run([]string{"-into", boot, fresh}, null, null); code != 0 {
		t.Fatal("bootstrap merge failed")
	}
	if code := run([]string{"-check", boot}, null, null); code != 0 {
		t.Fatal("bootstrapped snapshot failed -check")
	}
}
