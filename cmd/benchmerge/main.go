// benchmerge folds freshly captured benchmark entries into an existing
// BENCH_<date>.json trajectory snapshot: same-name entries are replaced,
// everything else is preserved, and the result is written back sorted.
// scripts/benchgate.sh uses it to refresh the scoring families without
// clobbering the training entries of a full bench run.
//
// Usage:
//
//	benchmerge -into BENCH_2026-08-08.json fresh.json [more.json...]
//	benchmerge -check BENCH_*.json scripts/serve-bench.json
//
// When the -into target does not exist yet, the first source becomes the
// base snapshot, so the tool also bootstraps a new trajectory file.
//
// With -check, no file is written: each argument is validated instead.
// Files carrying a "phases" key are loadgen scenarios and must pass
// loadgen.LoadScenario; everything else must parse as a benchjson
// snapshot and pass its structural validation (parseable date, unique
// entry names, finite values). CI runs -check over every committed
// trajectory and scenario file so a malformed hand-edit cannot land.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"polygraph/internal/benchjson"
	"polygraph/internal/loadgen"
	"polygraph/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool and returns the process exit code (0 ok,
// 1 merge/validation failure, 2 usage error).
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchmerge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	into := fs.String("into", "", "trajectory snapshot to update")
	check := fs.Bool("check", false, "validate the argument files instead of merging")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, obs.Version("benchmerge"))
		return 0
	}
	if *check {
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "usage: benchmerge -check <snapshot-or-scenario.json>...")
			return 2
		}
		code := 0
		for _, path := range fs.Args() {
			if err := checkFile(path); err != nil {
				fmt.Fprintf(stderr, "benchmerge: %s: %v\n", path, err)
				code = 1
				continue
			}
			fmt.Fprintf(stdout, "benchmerge: %s: OK\n", path)
		}
		return code
	}
	if *into == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: benchmerge -into <snapshot.json> <fresh.json>...")
		return 2
	}

	base, err := benchjson.ReadFile(*into)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "benchmerge: %v\n", err)
			return 1
		}
		base = nil // bootstrap from the first source below
	}
	for _, src := range fs.Args() {
		fresh, err := benchjson.ReadFile(src)
		if err != nil {
			fmt.Fprintf(stderr, "benchmerge: %v\n", err)
			return 1
		}
		if base == nil {
			base = fresh
			continue
		}
		base.Merge(fresh)
	}
	if err := base.WriteFile(*into); err != nil {
		fmt.Fprintf(stderr, "benchmerge: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchmerge: wrote %s\n", *into)
	return 0
}

// checkFile validates one committed JSON artifact, sniffing its kind by
// shape: a top-level "phases" key marks a loadgen scenario, anything
// else must be a benchjson trajectory snapshot.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var shape map[string]json.RawMessage
	if err := json.Unmarshal(data, &shape); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	if _, isScenario := shape["phases"]; isScenario {
		if _, err := loadgen.LoadScenario(path); err != nil {
			return err
		}
		return nil
	}
	rep, err := benchjson.ReadFile(path)
	if err != nil {
		return err
	}
	return rep.Validate()
}
