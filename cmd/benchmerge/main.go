// benchmerge folds freshly captured benchmark entries into an existing
// BENCH_<date>.json trajectory snapshot: same-name entries are replaced,
// everything else is preserved, and the result is written back sorted.
// scripts/benchgate.sh uses it to refresh the scoring families without
// clobbering the training entries of a full bench run.
//
// Usage:
//
//	benchmerge -into BENCH_2026-08-08.json fresh.json [more.json...]
//
// When the -into target does not exist yet, the first source becomes the
// base snapshot, so the tool also bootstraps a new trajectory file.
package main

import (
	"flag"
	"fmt"
	"os"

	"polygraph/internal/benchjson"
	"polygraph/internal/obs"
)

func main() {
	into := flag.String("into", "", "trajectory snapshot to update (required)")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.Version("benchmerge"))
		return
	}
	if *into == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchmerge -into <snapshot.json> <fresh.json>...")
		os.Exit(2)
	}

	base, err := benchjson.ReadFile(*into)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
			os.Exit(1)
		}
		base = nil // bootstrap from the first source below
	}
	for _, src := range flag.Args() {
		fresh, err := benchjson.ReadFile(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
			os.Exit(1)
		}
		if base == nil {
			base = fresh
			continue
		}
		base.Merge(fresh)
	}
	if err := base.WriteFile(*into); err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchmerge: wrote %s\n", *into)
}
