// Package polygraph is a from-scratch Go implementation of Browser
// Polygraph (Kalantari et al., IMC 2024): web-scale detection of "fraud
// browsers" — anti-detect browsers replaying stolen victim profiles —
// using coarse-grained, privacy-preserving browser fingerprints.
//
// The package re-exports the supported public surface of the internal
// packages so downstream users import one path:
//
//	model, report, err := polygraph.Train(samples, polygraph.DefaultTrainConfig())
//	result, err := model.Score(featureVector, claimedRelease)
//	if result.Flagged() { /* feed result.RiskFactor to risk-based auth */ }
//
// Architecture (paper §5):
//
//	Candidate Fingerprint Generation  → fingerprint.Candidates513 over the browser oracle
//	Real-World Data Collection        → dataset.Generate / collect.Server
//	Data Pre-Processing               → scaling + Isolation Forest inside Train
//	Training                          → PCA(7) + k-means(11) inside Train
//	Fraud Detection                   → Model.Score (Algorithm 1 risk factor)
//	Drift Detection                   → drift.Detector
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package polygraph

import (
	"context"

	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/drift"
	"polygraph/internal/fingerprint"
	"polygraph/internal/pipeline"
	"polygraph/internal/riskauth"
	"polygraph/internal/ua"
)

// Core model types.
type (
	// Model is a trained Browser Polygraph detector.
	Model = core.Model
	// Sample is one training observation (feature vector + claimed UA).
	Sample = core.Sample
	// Result is a scoring outcome with the Algorithm 1 risk factor.
	Result = core.Result
	// TrainConfig tunes the §6.4 training pipeline.
	TrainConfig = core.TrainConfig
	// TrainReport carries training diagnostics (Figure 2 spectrum,
	// outlier counts, per-UA majorities, per-stage timings).
	TrainReport = core.TrainReport
	// StageTiming is one executed training stage: name, wall time, rows
	// in/out (TrainReport.Stages).
	StageTiming = pipeline.Timing
	// StageError attributes a training failure to the pipeline stage
	// that produced it (extract with errors.As).
	StageError = pipeline.StageError
	// Verdict is the replayable subset of a Result, as stamped into
	// audit-ledger records (Model.Explain, cmd/auditq).
	Verdict = core.Verdict
	// Explanation decomposes one verdict: per-feature z-scores, top-k
	// PCA component shares, centroid distances, cluster-table outcome,
	// and the novelty-guard state.
	Explanation = core.Explanation
)

// The error taxonomy. Classify failures from Train/TrainContext and the
// scoring paths with errors.Is.
var (
	// ErrCanceled reports that a context was cancelled or timed out
	// before the operation finished.
	ErrCanceled = core.ErrCanceled
	// ErrBadInput reports invalid caller-supplied samples or config.
	ErrBadInput = core.ErrBadInput
	// ErrNotTrained reports scoring on a model that was never trained.
	ErrNotTrained = core.ErrNotTrained
)

// Identity types.
type (
	// Release is a browser vendor + major version ("Chrome 112").
	Release = ua.Release
	// Vendor is a browser family.
	Vendor = ua.Vendor
)

// Vendor constants.
const (
	Chrome  = ua.Chrome
	Firefox = ua.Firefox
	Edge    = ua.Edge
)

// Feature schema.
type Feature = fingerprint.Feature

// Payload is the ≤1 KB wire format clients post.
type Payload = fingerprint.Payload

// Deployment types.
type (
	// Server is the collection + real-time scoring HTTP service.
	Server = collect.Server
	// ServerConfig configures it.
	ServerConfig = collect.Config
	// Client submits payloads to a Server.
	Client = collect.Client
	// Decision is the service's scoring response.
	Decision = collect.Decision
)

// Drift detection.
type (
	// DriftDetector evaluates new releases against a deployed model.
	DriftDetector = drift.Detector
	// DriftEvaluation is one Table 6 row.
	DriftEvaluation = drift.Evaluation
)

// Risk-based authentication integration (§4: the defense this detector
// feeds).
type (
	// RiskPolicy maps polygraph results + session signals to access
	// decisions.
	RiskPolicy = riskauth.Policy
	// RiskSignals are the per-session decision inputs.
	RiskSignals = riskauth.Signals
	// RiskDecision is the access outcome with its audit trail.
	RiskDecision = riskauth.Decision
)

// Access actions.
const (
	Allow  = riskauth.Allow
	StepUp = riskauth.StepUp
	Deny   = riskauth.Deny
)

// DefaultRiskPolicy returns the reference policy: polygraph findings
// drive the decision; tags tip borderline cases.
func DefaultRiskPolicy() RiskPolicy { return riskauth.DefaultPolicy() }

// Traffic simulation (the FinOrg substitute).
type (
	// TrafficConfig parameterizes the synthetic FinOrg traffic.
	TrafficConfig = dataset.Config
	// Traffic is a generated session collection.
	Traffic = dataset.Dataset
)

// Train fits a Browser Polygraph model (§6.4: scale → outlier filter →
// PCA → k-means → cluster/user-agent table).
func Train(samples []Sample, cfg TrainConfig) (*Model, *TrainReport, error) {
	return core.Train(samples, cfg)
}

// TrainContext is Train under a context: cancellation aborts the
// pipeline within one chunk of work with an error matching
// errors.Is(err, ErrCanceled), and TrainReport.Stages records per-stage
// wall times and row counts.
func TrainContext(ctx context.Context, samples []Sample, cfg TrainConfig) (*Model, *TrainReport, error) {
	return core.TrainContext(ctx, samples, cfg)
}

// DefaultTrainConfig returns the paper's production configuration
// (28 features, 7 PCA components, k = 11).
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// LoadModel reads a model saved with Model.Save.
var LoadModel = core.Load

// Table8Features returns the canonical 28-feature set the production
// model uses (paper Table 8).
func Table8Features() []Feature { return fingerprint.Table8() }

// ParseUserAgent extracts the claimed release from a user-agent string.
var ParseUserAgent = ua.Parse

// GenerateTraffic builds synthetic FinOrg-like traffic (see DESIGN.md for
// the substitution rationale).
var GenerateTraffic = dataset.Generate

// DefaultTrafficConfig reproduces the paper's 205k-session training
// collection.
func DefaultTrafficConfig() TrafficConfig { return dataset.DefaultConfig() }

// NewServer builds the collection/scoring HTTP service.
var NewServer = collect.NewServer

// NewClient builds a client for a collection server.
var NewClient = collect.NewClient

// VerdictOf converts a scoring Result into its replayable ledger form.
var VerdictOf = core.VerdictOf
