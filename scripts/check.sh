#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Runs vet, the tier-1 build+test pass (what CI and the roadmap call
# "tier-1 green"), and the race-detector pass that guards the
# internal/parallel worker-pool layer. Usage:
#
#   scripts/check.sh          # everything
#   scripts/check.sh -short   # pass flags through to both test runs
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./... $*"
go test "$@" ./...

echo "== go test -race ./... $*"
go test -race "$@" ./...

echo "check.sh: all green"
