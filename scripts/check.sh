#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Runs the gofmt gate, the tier-1 build+test pass (what CI and the
# roadmap call "tier-1 green"), vet, and the race-detector pass that
# guards the internal/parallel worker-pool layer and the collect
# hot-swap/stats paths. Usage:
#
#   scripts/check.sh          # everything
#   scripts/check.sh -short   # pass flags through to both test runs
#
# Ordering: gofmt first (cheapest, catches the most common CI failure),
# then build before vet so compile errors surface as compile errors
# rather than vet noise, then the two test passes.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./... $*"
go test "$@" ./...

echo "== go test -race ./... $*"
go test -race "$@" ./...

echo "check.sh: all green"
