#!/bin/sh
# benchgate.sh — the allocation gate for the scoring fast path.
#
# Runs the online-scoring benchmark family with -benchmem and fails when
# a pinned hot path regresses its allocation budget:
#
#   BenchmarkOnlineScore          0 allocs/op  (pooled scratch)
#   BenchmarkOnlineScoreScratch   0 allocs/op  (caller-owned scratch)
#
# The ns/op numbers are machine-dependent and therefore only recorded,
# never gated. With -merge <snapshot.json>, the run is re-executed with
# POLYGRAPH_BENCH_JSON armed and the fresh scoring entries are folded
# into the existing trajectory snapshot (same-name entries replaced,
# everything else preserved — see benchjson.Merge). Usage:
#
#   scripts/benchgate.sh                       # gate only
#   scripts/benchgate.sh -merge BENCH_$(date +%F).json
set -eu
cd "$(dirname "$0")/.."

merge_target=""
if [ "${1:-}" = "-merge" ]; then
    merge_target="${2:?usage: benchgate.sh -merge <snapshot.json>}"
fi

bench='OnlineScore$|OnlineScoreScratch$|OnlineScoreParallel$'
out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== go test -bench '$bench' -benchmem"
go test -run '^$' -bench "$bench" -benchmem -benchtime 0.3s . | tee "$out"

# Gate: every pinned benchmark line must end in "0 allocs/op". awk exits
# nonzero when a pinned line allocates or is missing entirely.
awk '
    /^BenchmarkOnlineScore(Scratch)?(-[0-9]+)? / {
        seen++
        if ($(NF-1) != 0 || $NF != "allocs/op") {
            printf "benchgate: %s allocates (%s %s), want 0 allocs/op\n", $1, $(NF-1), $NF
            bad = 1
        }
    }
    END {
        if (seen < 2) { print "benchgate: pinned benchmarks missing from output"; bad = 1 }
        exit bad
    }
' "$out" || { echo "benchgate: FAIL" >&2; exit 1; }

echo "benchgate: allocation budget holds (0 allocs/op on pinned paths)"

if [ -n "$merge_target" ]; then
    echo "== merging scoring entries into $merge_target"
    fresh=$(mktemp -u).json
    POLYGRAPH_BENCH_JSON="$fresh" go test -run '^$' -bench "$bench" -benchmem -benchtime 0.3s . >/dev/null
    go run ./cmd/benchmerge -into "$merge_target" "$fresh"
    rm -f "$fresh"
fi
