// Privacy: reproduce the §7.4 privacy argument interactively — show what
// actually leaves the browser (the collection script and its ≤1 KB
// payload), then measure anonymity sets and per-feature entropy over a
// traffic sample to demonstrate the fingerprint cannot track users.
//
//	go run ./examples/privacy
package main

import (
	"fmt"
	"log"

	"polygraph"
	"polygraph/internal/collect"
	"polygraph/internal/fingerprint"
	"polygraph/internal/stats"
)

func main() {
	// What leaves the browser: the probe script and its payload.
	feats := polygraph.Table8Features()
	script := collect.CollectionScript(feats, "/v1/collect-json")
	fmt.Printf("collection script: %d bytes for %d probes (integers only, no raw attributes)\n",
		len(script), len(feats))

	tcfg := polygraph.DefaultTrafficConfig()
	tcfg.Sessions = 50000
	traffic, err := polygraph.GenerateTraffic(tcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Wire payload size for a real session.
	s0 := traffic.Sessions[0]
	payload := &polygraph.Payload{
		UserAgent: s0.UAString,
		Values:    fingerprint.VectorToValues(s0.Vector),
	}
	enc, err := payload.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire payload: %d bytes (budget: %d)\n\n", len(enc), fingerprint.MaxPayloadSize)

	// Anonymity sets over the full fingerprints.
	keys := make([]string, len(traffic.Sessions))
	for i, s := range traffic.Sessions {
		keys[i] = fmt.Sprint(s.Vector)
	}
	fmt.Println("anonymity sets (paper Figure 5):")
	for _, b := range stats.AnonymitySets(keys) {
		fmt.Printf("  %-12s %6.2f%% of sessions\n", b.Label, b.Percent)
	}
	fmt.Printf("unique fingerprints: %.3f%% (paper: 0.3%%; fine-grained studies: 33.6%%)\n\n",
		100*stats.UniqueRate(keys))

	// Entropy: the user-agent itself is the most identifying attribute.
	uas := make([]string, len(traffic.Sessions))
	for i, s := range traffic.Sessions {
		uas[i] = s.UAString
	}
	fmt.Printf("user-agent entropy:            %.2f bits (normalized %.3f)\n",
		stats.Entropy(uas), stats.NormalizedEntropy(uas))
	col := make([]int, len(traffic.Sessions))
	worstName, worstNorm, worstH := "", 0.0, 0.0
	for j, f := range feats {
		for i, s := range traffic.Sessions {
			col[i] = int(s.Vector[j])
		}
		if ne := stats.NormalizedEntropy(col); ne > worstNorm {
			worstNorm, worstH, worstName = ne, stats.Entropy(col), f.Name()
		}
	}
	fmt.Printf("most diverse collected feature: %.2f bits (normalized %.3f)\n  %s\n",
		worstH, worstNorm, worstName)
	fmt.Println("\nevery collected feature is less identifying than the user-agent the")
	fmt.Println("browser already sends — the paper's §7.4 conclusion.")
}
