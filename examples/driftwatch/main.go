// Driftwatch: deploy a model trained on the March–July window, then walk
// the late-July–October release calendar checking each new browser
// release for drift, as §6.6/§7.3 describe. The run ends with the
// Firefox 119 Element rework tripping the retraining signal.
//
//	go run ./examples/driftwatch
package main

import (
	"fmt"
	"log"

	"polygraph"
	"polygraph/internal/core"
	"polygraph/internal/drift"
	"polygraph/internal/experiments"
	"polygraph/internal/ua"
)

func main() {
	// Train on the paper's training window.
	tcfg := polygraph.DefaultTrafficConfig()
	tcfg.Sessions = 30000
	traffic, err := polygraph.GenerateTraffic(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := polygraph.DefaultTrainConfig()
	cfg.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	model, _, err := polygraph.Train(traffic.Samples(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed model trained through mid-July (accuracy %.2f%%)\n\n", 100*model.Accuracy)

	// Collect the drift-window traffic and walk the calendar.
	driftData, err := experiments.DriftTraffic(0)
	if err != nil {
		log.Fatal(err)
	}
	det := &polygraph.DriftDetector{Model: model}
	for _, entry := range drift.Calendar2023() {
		fmt.Printf("— evaluation on %s —\n", entry.Label)
		for _, rel := range entry.Releases {
			var vectors [][]float64
			for _, s := range driftData.Sessions {
				if s.Claimed == rel && s.Day <= entry.Day {
					vectors = append(vectors, s.Vector)
				}
			}
			if len(vectors) == 0 {
				fmt.Printf("  %-14s no live sessions yet\n", rel)
				continue
			}
			ev, err := det.Evaluate(rel, vectors)
			if err != nil {
				log.Fatal(err)
			}
			status := "stable"
			if ev.Retrain {
				status = "DRIFT → " + ev.Reason
			}
			fmt.Printf("  %-14s cluster %d at %.2f%% over %d sessions — %s\n",
				rel, ev.Cluster, 100*ev.Accuracy, ev.Sessions, status)
		}
	}
}
