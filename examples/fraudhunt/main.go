// Fraudhunt: sweep the Table 1 fraud-browser catalog against a trained
// detector, reproducing the §7.2 private-website experiment across every
// modeled product and victim population.
//
//	go run ./examples/fraudhunt
package main

import (
	"fmt"
	"log"

	"polygraph"
	"polygraph/internal/core"
	"polygraph/internal/fraud"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

func main() {
	tcfg := polygraph.DefaultTrafficConfig()
	tcfg.Sessions = 30000
	traffic, err := polygraph.GenerateTraffic(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := polygraph.DefaultTrainConfig()
	cfg.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	model, _, err := polygraph.Train(traffic.Samples(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector ready (%.2f%% clustering accuracy)\n\n", 100*model.Accuracy)

	// Victims: popular releases a fraudster would impersonate.
	victims := []ua.Release{
		{Vendor: ua.Chrome, Version: 112}, {Vendor: ua.Chrome, Version: 114},
		{Vendor: ua.Chrome, Version: 105}, {Vendor: ua.Chrome, Version: 95},
		{Vendor: ua.Edge, Version: 113}, {Vendor: ua.Edge, Version: 108},
		{Vendor: ua.Firefox, Version: 110}, {Vendor: ua.Firefox, Version: 102},
		{Vendor: ua.Firefox, Version: 95}, {Vendor: ua.Chrome, Version: 64},
	}

	fmt.Printf("%-22s %-10s %8s %8s %9s\n", "tool", "category", "caught", "missed", "avg risk")
	for _, tool := range fraud.KnownTools() {
		gen := rng.NewString("fraudhunt:" + tool.FullName())
		caught, missed, riskSum := 0, 0, 0
		for _, victim := range victims {
			spoof := tool.Spoof(victim, ua.Windows10, gen)
			vec := traffic.Extractor.Extract(spoof.Profile)
			res, err := model.Score(vec, spoof.Claimed)
			if err != nil {
				log.Fatal(err)
			}
			if res.Flagged() {
				caught++
				riskSum += res.RiskFactor
			} else {
				missed++
			}
		}
		avg := 0.0
		if caught > 0 {
			avg = float64(riskSum) / float64(caught)
		}
		fmt.Printf("%-22s %-10s %8d %8d %9.2f\n",
			tool.FullName(), tool.Category, caught, missed, avg)
	}
	fmt.Println("\nCategories 3 and 4 stay invisible by design: their engines match")
	fmt.Println("their claims, which is the coarse-grained technique's stated limit (§8).")
}
