// Webscale: run the full deployment loop in one process — train, start
// the collection/scoring HTTP service, replay a burst of browser traffic
// through real HTTP clients (honest users, configured users, and fraud
// browsers), and read back the service's latency and flagging counters,
// demonstrating the §3 performance budget (<100 ms, ≤1 KB) end to end.
//
//	go run ./examples/webscale
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"

	"polygraph"
	"polygraph/internal/browser"
	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/fraud"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

func main() {
	tcfg := polygraph.DefaultTrafficConfig()
	tcfg.Sessions = 30000
	traffic, err := polygraph.GenerateTraffic(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := polygraph.DefaultTrainConfig()
	cfg.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	model, _, err := polygraph.Train(traffic.Samples(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := polygraph.NewServer(collect.Config{Model: model})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("scoring service up at %s\n", ts.URL)

	// Show the actual script a page would embed.
	client := polygraph.NewClient(ts.URL)
	script, err := client.FetchScript(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection script: %d bytes of JavaScript, %d probes\n\n",
		len(script), model.Dim())

	// Replay a traffic burst over real HTTP with concurrent clients.
	const workers = 8
	const perWorker = 250
	var wg sync.WaitGroup
	var mu sync.Mutex
	flagged := 0
	tool, _ := fraud.ToolByName("GoLogin-3.3.23")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := rng.New(uint64(1000 + w))
			c := polygraph.NewClient(ts.URL)
			for i := 0; i < perWorker; i++ {
				var claimed ua.Release
				var profile browser.Profile
				switch {
				case gen.Bool(0.02): // fraud browser session
					victim := ua.Release{Vendor: ua.Chrome, Version: 110 + gen.Intn(5)}
					spoof := tool.Spoof(victim, ua.Windows10, gen)
					claimed, profile = spoof.Claimed, spoof.Profile
				default: // honest session
					claimed = ua.Release{Vendor: ua.Chrome, Version: 110 + gen.Intn(5)}
					profile = browser.Profile{Release: claimed, OS: ua.Windows10}
				}
				payload := &polygraph.Payload{
					UserAgent: ua.UserAgent(claimed, ua.Windows10),
					Values:    fingerprint.VectorToValues(traffic.Extractor.Extract(profile)),
				}
				dec, err := c.Submit(context.Background(), payload)
				if err != nil {
					log.Fatal(err)
				}
				if dec.Flagged {
					mu.Lock()
					flagged++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	stats, err := client.FetchStats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d sessions over HTTP: %d flagged\n", stats.Received, flagged)
	fmt.Printf("server-side scoring: avg %.1fµs, max %dµs (budget: 100ms)\n",
		stats.AvgScoreUs, stats.MaxScoreUs)
	fmt.Printf("flagged sessions retained for the fraud team: %d\n", srv.Store().Len())
}
