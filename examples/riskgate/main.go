// Riskgate: the full risk-based-authentication stack the paper deploys
// into (§4) — Browser Polygraph scores each session, the policy engine
// combines that with the session's IP/cookie trust signals, and the gate
// allows, steps up, or denies. Prints the separation between honest and
// fraud traffic.
//
//	go run ./examples/riskgate
package main

import (
	"fmt"
	"log"

	"polygraph"
	"polygraph/internal/core"
	"polygraph/internal/ua"
)

func main() {
	tcfg := polygraph.DefaultTrafficConfig()
	tcfg.Sessions = 30000
	traffic, err := polygraph.GenerateTraffic(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := polygraph.DefaultTrainConfig()
	cfg.NoveltyGuard = true // arm the alien-surface check
	cfg.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	model, _, err := polygraph.Train(traffic.Samples(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	policy := polygraph.DefaultRiskPolicy()
	fmt.Printf("gatekeeping %d sessions (model accuracy %.2f%%)\n\n",
		len(traffic.Sessions), 100*model.Accuracy)

	type bucket struct{ allow, stepUp, deny int }
	var honest, fraud bucket
	var exampleDeny string
	for _, s := range traffic.Sessions {
		res, err := model.Score(s.Vector, s.Claimed)
		if err != nil {
			log.Fatal(err)
		}
		dec := policy.Evaluate(polygraph.RiskSignals{
			Polygraph:       res,
			UntrustedIP:     s.Tags.UntrustedIP,
			UntrustedCookie: s.Tags.UntrustedCookie,
		})
		b := &honest
		if s.Fraud {
			b = &fraud
		}
		switch dec.Action {
		case polygraph.Allow:
			b.allow++
		case polygraph.StepUp:
			b.stepUp++
		case polygraph.Deny:
			b.deny++
			if s.Fraud && exampleDeny == "" {
				exampleDeny = fmt.Sprintf("%s session via %s → %s",
					s.Claimed, s.FraudTool, dec.Explain())
			}
		}
	}
	show := func(name string, b bucket) {
		total := b.allow + b.stepUp + b.deny
		fmt.Printf("%-8s %7d sessions: allow %6.2f%%  step-up %5.2f%%  deny %5.2f%%\n",
			name, total,
			100*float64(b.allow)/float64(total),
			100*float64(b.stepUp)/float64(total),
			100*float64(b.deny)/float64(total))
	}
	show("honest", honest)
	show("fraud", fraud)
	if exampleDeny != "" {
		fmt.Printf("\nexample denial: %s\n", exampleDeny)
	}
}
