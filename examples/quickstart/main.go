// Quickstart: train a Browser Polygraph model on synthetic FinOrg-like
// traffic and score an honest session and a lying one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"polygraph"
)

func main() {
	// 1. Generate traffic. In production this is the collection tier's
	// output; here the simulator stands in for FinOrg (see DESIGN.md).
	tcfg := polygraph.DefaultTrafficConfig()
	tcfg.Sessions = 30000
	traffic, err := polygraph.GenerateTraffic(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d sessions across %d browser releases\n",
		len(traffic.Sessions), traffic.DistinctReleases())

	// 2. Train with the paper's production configuration: 28 features,
	// 7 PCA components, k = 11 clusters.
	model, report, err := polygraph.Train(traffic.Samples(), polygraph.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %.2f%% clustering accuracy, %d outliers filtered\n",
		100*model.Accuracy, report.OutliersFiltered)

	// 3. Score an honest session: fingerprint and claim agree.
	honest := traffic.Sessions[0]
	res, err := model.Score(honest.Vector, honest.Claimed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest %s session: cluster %d, flagged=%v, risk=%d\n",
		honest.Claimed, res.Cluster, res.Flagged(), res.RiskFactor)

	// 4. Score a liar: the same fingerprint claiming a different
	// browser — the category-2 fraud-browser signature.
	lie := polygraph.Release{Vendor: polygraph.Firefox, Version: 110}
	if honest.Claimed.Vendor == polygraph.Firefox {
		lie = polygraph.Release{Vendor: polygraph.Chrome, Version: 112}
	}
	res, err = model.Score(honest.Vector, lie)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same fingerprint claiming %s: flagged=%v, risk=%d (max=20)\n",
		lie, res.Flagged(), res.RiskFactor)
}
