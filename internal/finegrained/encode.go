package finegrained

import (
	"fmt"
	"sort"
	"strings"

	"polygraph/internal/matrix"
)

// Flatten converts a nested fingerprint document into dotted-path leaf
// entries, following Appendix-5: "for nested objects within the JSON, we
// flattened the data by creating separate columns for each key". Arrays
// become indexed paths.
func Flatten(doc map[string]any) map[string]any {
	out := make(map[string]any, len(doc)*4)
	flattenInto("", doc, out)
	return out
}

func flattenInto(prefix string, v any, out map[string]any) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenInto(p, child, out)
		}
	case []string:
		for i, child := range t {
			flattenInto(fmt.Sprintf("%s.%d", prefix, i), child, out)
		}
	case []map[string]any:
		for i, child := range t {
			flattenInto(fmt.Sprintf("%s.%d", prefix, i), child, out)
		}
	case []any:
		for i, child := range t {
			flattenInto(fmt.Sprintf("%s.%d", prefix, i), child, out)
		}
	default:
		out[prefix] = v
	}
}

// EncodeOptions adjusts the Appendix-5 numeric encoding.
type EncodeOptions struct {
	// DropConstant removes columns with a single value across all rows
	// ("columns with unique values across all data points were
	// excluded").
	DropConstant bool
	// DropUAColumns removes columns whose path mentions the user-agent
	// or fields derived from it (applied to ClientJS in the paper,
	// "since some features were directly extracted from the user-agent
	// string").
	DropUAColumns bool
}

// uaDerivedColumn reports columns the paper excludes as UA-derived.
func uaDerivedColumn(path string) bool {
	lower := strings.ToLower(path)
	for _, marker := range []string{"useragent", "browser", "engine", "os", "device", "ismobile"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// Encoded is a numeric design matrix plus its column names.
type Encoded struct {
	Columns []string
	Matrix  *matrix.Dense
}

// Encode converts flattened documents into the numeric matrix of
// Appendix-5: numeric values unchanged, booleans 0/1, strings encoded as
// per-column categorical codes, and missing values −1.
func Encode(rows []map[string]any, opts EncodeOptions) (*Encoded, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("finegrained: no rows to encode")
	}
	// Collect the column universe.
	colSet := map[string]bool{}
	for _, r := range rows {
		for k := range r {
			colSet[k] = true
		}
	}
	columns := make([]string, 0, len(colSet))
	for k := range colSet {
		if opts.DropUAColumns && uaDerivedColumn(k) {
			continue
		}
		columns = append(columns, k)
	}
	sort.Strings(columns)

	// Per-column categorical dictionaries, built in first-seen order
	// over the (deterministic) row sequence.
	dicts := make([]map[string]int, len(columns))
	m := matrix.NewDense(len(rows), len(columns))
	for j, col := range columns {
		dict := map[string]int{}
		dicts[j] = dict
		for i, r := range rows {
			v, present := r[col]
			m.Set(i, j, encodeValue(v, present, dict))
		}
	}

	if !opts.DropConstant {
		return &Encoded{Columns: columns, Matrix: m}, nil
	}

	// Drop constant columns.
	keep := make([]int, 0, len(columns))
	for j := range columns {
		first := m.At(0, j)
		constant := true
		for i := 1; i < len(rows); i++ {
			if m.At(i, j) != first {
				constant = false
				break
			}
		}
		if !constant {
			keep = append(keep, j)
		}
	}
	outCols := make([]string, len(keep))
	out := matrix.NewDense(len(rows), len(keep))
	for nj, j := range keep {
		outCols[nj] = columns[j]
		for i := 0; i < len(rows); i++ {
			out.Set(i, nj, m.At(i, j))
		}
	}
	return &Encoded{Columns: outCols, Matrix: out}, nil
}

func encodeValue(v any, present bool, dict map[string]int) float64 {
	if !present || v == nil {
		return -1
	}
	switch t := v.(type) {
	case bool:
		if t {
			return 1
		}
		return 0
	case int:
		return float64(t)
	case int64:
		return float64(t)
	case float64:
		return t
	case string:
		code, ok := dict[t]
		if !ok {
			code = len(dict)
			dict[t] = code
		}
		return float64(code)
	default:
		// Any other type is stringified then coded.
		s := fmt.Sprintf("%v", t)
		code, ok := dict[s]
		if !ok {
			code = len(dict)
			dict[s] = code
		}
		return float64(code)
	}
}
