package finegrained

import (
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/ua"
)

func profileFor(v int) browser.Profile {
	return browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: v}, OS: ua.Windows10}
}

func TestCollectorsDeterministic(t *testing.T) {
	o := browser.NewOracle()
	for _, c := range []Collector{FingerprintJS{}, ClientJS{}, AmIUnique{}} {
		a := c.Collect(o, profileFor(112))
		b := c.Collect(o, profileFor(112))
		if SizeBytes(a) != SizeBytes(b) {
			t.Fatalf("%s not deterministic", c.Name())
		}
		fa, fb := Flatten(a), Flatten(b)
		if len(fa) != len(fb) {
			t.Fatalf("%s flatten not deterministic", c.Name())
		}
		for k, v := range fa {
			if fb[k] != v {
				t.Fatalf("%s: leaf %s differs", c.Name(), k)
			}
		}
	}
}

func TestStorageSizesMatchTable2Regime(t *testing.T) {
	// Table 2: AmIUnique ~60KB, FingerprintJS ~23KB, ClientJS ~10KB;
	// Browser Polygraph 1KB. The shape requirement: AmIUnique largest,
	// ClientJS smallest of the fine-grained trio, all far above 1KB.
	o := browser.NewOracle()
	ami := SizeBytes(AmIUnique{}.Collect(o, profileFor(112)))
	fpjs := SizeBytes(FingerprintJS{}.Collect(o, profileFor(112)))
	cjs := SizeBytes(ClientJS{}.Collect(o, profileFor(112)))
	if !(ami > fpjs && fpjs > cjs) {
		t.Fatalf("size ordering wrong: ami=%d fpjs=%d cjs=%d", ami, fpjs, cjs)
	}
	if cjs < 2048 {
		t.Fatalf("ClientJS document implausibly small: %d", cjs)
	}
	if ami < 20000 {
		t.Fatalf("AmIUnique document too small: %d", ami)
	}
}

func TestCanvasHashStableWithinRelease(t *testing.T) {
	o := browser.NewOracle()
	a := canvasHash(o, profileFor(112))
	b := canvasHash(o, profileFor(112))
	if a != b {
		t.Fatal("canvas hash unstable")
	}
	c := canvasHash(o, browser.Profile{Release: ua.Release{Vendor: ua.Firefox, Version: 112}, OS: ua.Windows10})
	if a == c {
		t.Fatal("canvas hash identical across engines")
	}
}

func TestFlatten(t *testing.T) {
	doc := map[string]any{
		"a": 1,
		"b": map[string]any{"c": true, "d": map[string]any{"e": "x"}},
		"f": []string{"p", "q"},
		"g": []map[string]any{{"h": 2}},
		"i": []any{3.5},
	}
	flat := Flatten(doc)
	cases := map[string]any{
		"a": 1, "b.c": true, "b.d.e": "x", "f.0": "p", "f.1": "q",
		"g.0.h": 2, "i.0": 3.5,
	}
	for k, want := range cases {
		if flat[k] != want {
			t.Fatalf("flat[%q] = %v, want %v", k, flat[k], want)
		}
	}
	if len(flat) != len(cases) {
		t.Fatalf("flatten produced %d leaves, want %d", len(flat), len(cases))
	}
}

func TestEncodeBasics(t *testing.T) {
	rows := []map[string]any{
		{"n": 1, "b": true, "s": "alpha", "only0": 7},
		{"n": 2.5, "b": false, "s": "beta"},
		{"n": 3, "b": true, "s": "alpha"},
	}
	enc, err := Encode(rows, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, c := enc.Matrix.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("encoded dims %dx%d", r, c)
	}
	col := map[string]int{}
	for j, name := range enc.Columns {
		col[name] = j
	}
	if enc.Matrix.At(0, col["n"]) != 1 || enc.Matrix.At(1, col["n"]) != 2.5 {
		t.Fatal("numeric passthrough wrong")
	}
	if enc.Matrix.At(0, col["b"]) != 1 || enc.Matrix.At(1, col["b"]) != 0 {
		t.Fatal("bool encoding wrong")
	}
	// Categorical: alpha=0 (first seen), beta=1, alpha repeats code 0.
	if enc.Matrix.At(0, col["s"]) != 0 || enc.Matrix.At(1, col["s"]) != 1 || enc.Matrix.At(2, col["s"]) != 0 {
		t.Fatal("categorical encoding wrong")
	}
	// Missing → -1.
	if enc.Matrix.At(1, col["only0"]) != -1 {
		t.Fatal("missing value not -1")
	}
}

func TestEncodeDropConstant(t *testing.T) {
	rows := []map[string]any{
		{"const": 5, "vary": 1},
		{"const": 5, "vary": 2},
	}
	enc, err := Encode(rows, EncodeOptions{DropConstant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Columns) != 1 || enc.Columns[0] != "vary" {
		t.Fatalf("columns = %v", enc.Columns)
	}
}

func TestEncodeDropUAColumns(t *testing.T) {
	rows := []map[string]any{
		{"userAgent": "x", "browserVersion": 112, "canvasPrint": "h1"},
		{"userAgent": "y", "browserVersion": 113, "canvasPrint": "h2"},
	}
	enc, err := Encode(rows, EncodeOptions{DropUAColumns: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Columns) != 1 || enc.Columns[0] != "canvasPrint" {
		t.Fatalf("columns = %v", enc.Columns)
	}
}

func TestEncodeEmpty(t *testing.T) {
	if _, err := Encode(nil, EncodeOptions{}); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestClientJSHasFewNonUAFeatures(t *testing.T) {
	// Appendix-5: after dropping UA-derived and constant columns,
	// ClientJS keeps only a handful of informative features.
	o := browser.NewOracle()
	var rows []map[string]any
	for _, v := range []int{100, 105, 110, 112, 114} {
		for _, vendor := range []ua.Vendor{ua.Chrome, ua.Firefox} {
			rows = append(rows, Flatten(ClientJS{}.Collect(o,
				browser.Profile{Release: ua.Release{Vendor: vendor, Version: v}, OS: ua.Windows10})))
		}
	}
	full, err := Encode(rows, EncodeOptions{DropConstant: true})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := Encode(rows, EncodeOptions{DropConstant: true, DropUAColumns: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced.Columns) >= len(full.Columns) {
		t.Fatal("UA-column drop removed nothing")
	}
	// FingerprintJS keeps far more features than ClientJS.
	var fpjsRows []map[string]any
	for _, v := range []int{100, 105, 110, 112, 114} {
		for _, vendor := range []ua.Vendor{ua.Chrome, ua.Firefox} {
			fpjsRows = append(fpjsRows, Flatten(FingerprintJS{}.Collect(o,
				browser.Profile{Release: ua.Release{Vendor: vendor, Version: v}, OS: ua.Windows10})))
		}
	}
	fpjs, err := Encode(fpjsRows, EncodeOptions{DropConstant: true, DropUAColumns: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fpjs.Columns) <= len(reduced.Columns)*2 {
		t.Fatalf("FingerprintJS features (%d) not ≫ ClientJS features (%d)",
			len(fpjs.Columns), len(reduced.Columns))
	}
}

func BenchmarkCollect(b *testing.B) {
	o := browser.NewOracle()
	p := profileFor(112)
	for _, c := range []Collector{FingerprintJS{}, ClientJS{}, AmIUnique{}} {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = c.Collect(o, p)
			}
		})
	}
}
