// Package finegrained simulates the fine-grained fingerprinting tools the
// paper benchmarks against (§3 Table 2, Appendix-5 Tables 13–14):
// FingerprintJS, ClientJS, and AmIUnique. Each collector walks the same
// browser oracle the coarse-grained pipeline uses, but gathers the large
// nested structures those tools really produce (font lists, WebGL
// parameters, canvas hashes, plugin inventories, ...). The collectors do
// work proportional to what they collect, so benchmarked collection cost
// preserves the paper's ordering, and their serialized sizes land in the
// same regime as Table 2's storage column.
package finegrained

import (
	"encoding/json"
	"fmt"
	"strings"

	"polygraph/internal/browser"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// Collector produces a fine-grained fingerprint document for a profile.
type Collector interface {
	// Name identifies the tool ("FingerprintJS").
	Name() string
	// Collect gathers the tool's fingerprint as a nested document.
	Collect(o *browser.Oracle, p browser.Profile) map[string]any
}

// SizeBytes returns the JSON-serialized size of a collected document —
// the "storage requirement" of Table 2 ("we shifted focus from the size
// of hashed data to the underlying data structure's size").
func SizeBytes(doc map[string]any) int {
	b, err := json.Marshal(doc)
	if err != nil {
		// Documents are built from JSON-clean types; a failure is a
		// programming error.
		panic(fmt.Sprintf("finegrained: marshal: %v", err))
	}
	return len(b)
}

// osFamily collapses the host OS into the token that drives
// environment-derived attributes: Windows 10 and 11 ship near-identical
// font/plugin/screen environments, while the two macOS releases differ
// slightly — which is exactly why the paper's Appendix-5 ClientJS
// clustering is worse on macOS (85.93%) than Windows (93.60%).
func osFamily(os ua.OS) string {
	switch os {
	case ua.Windows10, ua.Windows11:
		return "windows"
	case ua.MacOSSonoma, ua.MacOSSequoia:
		return "mac"
	default:
		return "other"
	}
}

// osVariant distinguishes the macOS releases for the handful of
// attributes that really differ between them (a system font, the menu
// bar geometry). Feature-poor collectors split on these; feature-rich
// ones barely notice — the paper's Appendix-5 asymmetry.
func osVariant(os ua.OS) string {
	switch os {
	case ua.MacOSSonoma:
		return "sonoma"
	case ua.MacOSSequoia:
		return "sequoia"
	default:
		return osFamily(os)
	}
}

// eraName returns the engine-era token of a release; environment values
// that track the rendering stack (canvas, audio) change per era, not per
// version.
func eraName(r ua.Release) string {
	era, ok := browser.EraOf(r)
	if !ok {
		return "unknown"
	}
	return era.Name
}

// fontCatalog is the pool fine-grained tools probe; the detected subset
// depends on the platform and era.
var fontCatalog = buildFontCatalog()

func buildFontCatalog() []string {
	families := []string{
		"Arial", "Helvetica", "Times", "Courier", "Verdana", "Georgia",
		"Palatino", "Garamond", "Bookman", "Tahoma", "Trebuchet",
		"Impact", "Comic Sans", "Lucida", "Consolas", "Cambria",
		"Calibri", "Candara", "Constantia", "Corbel", "Segoe",
		"Franklin", "Gill Sans", "Rockwell", "Baskerville", "Didot",
		"Futura", "Geneva", "Optima", "Monaco",
	}
	variants := []string{"", " Narrow", " Light", " Black", " Condensed", " MS", " Pro", " UI"}
	var out []string
	for _, f := range families {
		for _, v := range variants {
			out = append(out, f+v)
		}
	}
	return out
}

// detectedFonts derives a deterministic font subset for a profile. Fonts
// are an OS-and-vendor property, not a version property.
func detectedFonts(p browser.Profile, extra int) []string {
	gen := rng.NewString(fmt.Sprintf("fonts:%s:%s", p.Release.Vendor, osFamily(p.OS)))
	var out []string
	for _, f := range fontCatalog {
		if gen.Bool(0.55) {
			out = append(out, f)
		}
		if len(out) >= 120+extra {
			break
		}
	}
	// The macOS releases differ in exactly one bundled system font.
	switch p.OS {
	case ua.MacOSSonoma:
		out = append(out, "SF Pro Display")
	case ua.MacOSSequoia:
		out = append(out, "SF Pro Rounded")
	}
	return out
}

// canvasHash models the canvas rendering hash: identical for identical
// engine surfaces, distinct across engines/eras/OSes.
func canvasHash(o *browser.Oracle, p browser.Profile) string {
	seed := fmt.Sprintf("canvas:%s:%s:%s", browser.EngineOf(p.Release),
		eraName(p.Release), osFamily(p.OS))
	g := rng.NewString(seed)
	return fmt.Sprintf("%016x%016x", g.Uint64(), g.Uint64())
}

func audioHash(o *browser.Oracle, p browser.Profile) float64 {
	seed := fmt.Sprintf("audio:%s:%s", browser.EngineOf(p.Release), eraName(p.Release))
	return 124.04 + rng.NewString(seed).Float64()*0.01
}

// webglParams models the renderer parameter dump.
func webglParams(o *browser.Oracle, p browser.Profile, n int) map[string]any {
	out := make(map[string]any, n+2)
	gen := rng.NewString(fmt.Sprintf("webgl:%s:%s", browser.EngineOf(p.Release), osFamily(p.OS)))
	for i := 0; i < n; i++ {
		out[fmt.Sprintf("PARAM_%02d", i)] = gen.IntRange(0, 1<<14)
	}
	out["UNMASKED_VENDOR"] = fmt.Sprintf("GPUVendor-%d", gen.Intn(4))
	out["UNMASKED_RENDERER"] = fmt.Sprintf("Renderer-%d", gen.Intn(16))
	return out
}

// screenInfo models the BrowserStack VM's display: fixed per OS image.
func screenInfo(p browser.Profile) map[string]any {
	gen := rng.NewString("screen:" + osFamily(p.OS))
	widths := []int{1280, 1366, 1440, 1536, 1920, 2560}
	w := widths[gen.Intn(len(widths))]
	return map[string]any{
		"width": w, "height": w * 9 / 16,
		"colorDepth": 24, "pixelRatio": 1 + gen.Intn(2),
	}
}

// FingerprintJS simulates the fingerprintjs open-source collector:
// ~20 components, a few KB of underlying data (Table 2: ~23 KB).
type FingerprintJS struct{}

// Name implements Collector.
func (FingerprintJS) Name() string { return "FingerprintJS" }

// Collect implements Collector.
func (FingerprintJS) Collect(o *browser.Oracle, p browser.Profile) map[string]any {
	gen := rng.NewString(fmt.Sprintf("fpjs:%s:%s", p.Release.Vendor, osFamily(p.OS)))
	doc := map[string]any{
		"userAgent":           ua.UserAgent(p.Release, p.OS),
		"fonts":               detectedFonts(p, 40),
		"canvas":              map[string]any{"winding": true, "geometry": canvasHash(o, p), "text": canvasHash(o, p)[:16]},
		"audio":               audioHash(o, p),
		"webgl":               webglParams(o, p, 48),
		"screen":              screenInfo(p),
		"timezone":            "America/New_York",
		"languages":           []string{"en-US", "en"},
		"deviceMemory":        boolInt(p.HasProperty(o, "Navigator", "deviceMemory")) * 8,
		"hardwareConcurrency": 4 + gen.Intn(3)*4,
		"sessionStorage":      true,
		"localStorage":        true,
		"indexedDB":           true,
		"cpuClass":            nil,
		"platform":            p.OS.String(),
		"plugins":             pluginList(p, gen, 5),
		"touchSupport":        map[string]any{"maxTouchPoints": gen.Intn(2) * 10, "touchEvent": false},
		"vendorFlavors":       []string{},
		"colorGamut":          "srgb",
		"math":                mathFingerprint(p),
	}
	// Pad with DOM-surface probes proportional to the real tool's
	// breadth: one entry per interesting prototype.
	probes := map[string]any{}
	for _, proto := range browser.Appendix3Protos()[:80] {
		probes[proto] = p.PropertyCount(o, proto)
	}
	doc["domProbes"] = probes
	return doc
}

// ClientJS simulates the much smaller clientjs library (Table 2: ~10 KB),
// most of whose output is derived from the user-agent string itself —
// which is why Appendix-5 finds only 7 clustering-relevant features.
type ClientJS struct{}

// Name implements Collector.
func (ClientJS) Name() string { return "ClientJS" }

// Collect implements Collector.
func (ClientJS) Collect(o *browser.Oracle, p browser.Profile) map[string]any {
	gen := rng.NewString(fmt.Sprintf("clientjs:%s:%s", p.Release.Vendor, osFamily(p.OS)))
	uaStr := ua.UserAgent(p.Release, p.OS)
	return map[string]any{
		"userAgent":      uaStr,
		"browser":        p.Release.Vendor.String(),
		"browserVersion": p.Release.Version, // UA-derived (excluded in Appendix-5)
		"engine":         browser.EngineOf(p.Release).String(),
		"os":             p.OS.String(),
		"device":         "desktop",
		"screen":         screenInfo(p),
		// clientjs returns fonts and plugins as single joined strings,
		// which is why Appendix-5 extracts so few usable features from
		// it (7 on Windows, 4 on macOS).
		"plugins":           strings.Join(pluginNames(p, gen, 4), ";"),
		"canvasPrint":       canvasHash(o, p),
		"fonts":             strings.Join(detectedFonts(p, 0), ","),
		"timezone":          "-05:00",
		"language":          "en-US",
		"colorDepth":        24,
		"silverlight":       false,
		"flashVersion":      nil,
		"isMobile":          false,
		"availableHeight":   availableHeight(p.OS),
		"deviceScaleFactor": deviceScaleFactor(p.OS),
	}
}

// AmIUnique simulates the academic extension collector (Table 2: ~60 KB,
// ~1.5 s service time): it dumps everything, including full plugin/font
// inventories and per-interface property lists.
type AmIUnique struct{}

// Name implements Collector.
func (AmIUnique) Name() string { return "AmIUnique" }

// Collect implements Collector.
func (AmIUnique) Collect(o *browser.Oracle, p browser.Profile) map[string]any {
	gen := rng.NewString(fmt.Sprintf("amiunique:%s:%s", p.Release.Vendor, osFamily(p.OS)))
	doc := map[string]any{
		"userAgent": ua.UserAgent(p.Release, p.OS),
		"headers": map[string]any{
			"accept":         "text/html,application/xhtml+xml",
			"acceptEncoding": "gzip, deflate, br",
			"acceptLanguage": "en-US,en;q=0.9",
		},
		"fonts":    detectedFonts(p, 80),
		"canvas":   canvasHash(o, p),
		"webgl":    webglParams(o, p, 80),
		"audio":    audioHash(o, p),
		"screen":   screenInfo(p),
		"plugins":  pluginList(p, gen, 8),
		"timezone": "America/New_York",
	}
	// The extension enumerates the full property lists of many
	// interfaces — the expensive part that drives its ~1.5 s service
	// time and 60 KB payload.
	surfaces := map[string]any{}
	for _, proto := range browser.Appendix3Protos() {
		names := o.PropertyNames(p.Release, proto)
		surfaces[proto] = names
	}
	doc["interfaceSurfaces"] = surfaces
	return doc
}

// availableHeight reflects the OS chrome: the Windows 11 taskbar and the
// macOS menu bars differ by a few pixel rows. This is the kind of
// environment detail a feature-poor collector ends up keying on, which
// is why the paper's Appendix-5 ClientJS clustering trails the others on
// both OS families.
func availableHeight(os ua.OS) int {
	switch os {
	case ua.Windows11:
		return 1032
	case ua.MacOSSonoma:
		return 1055
	case ua.MacOSSequoia:
		return 1054
	default:
		return 1040
	}
}

// deviceScaleFactor is the default display scaling per OS image.
func deviceScaleFactor(os ua.OS) float64 {
	switch os {
	case ua.Windows11:
		return 1.25
	case ua.MacOSSonoma, ua.MacOSSequoia:
		return 2.0
	default:
		return 1.0
	}
}

func pluginNames(p browser.Profile, gen *rng.PCG, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Plugin-%d", gen.Intn(30))
	}
	return out
}

func pluginList(p browser.Profile, gen *rng.PCG, n int) []map[string]any {
	out := make([]map[string]any, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, map[string]any{
			"name":     fmt.Sprintf("Plugin-%d", gen.Intn(30)),
			"filename": fmt.Sprintf("plugin%d.dll", i),
		})
	}
	return out
}

func mathFingerprint(p browser.Profile) map[string]any {
	g := rng.NewString("math:" + browser.EngineOf(p.Release).String())
	return map[string]any{
		"tan":  -1.4214488238747245 + g.Float64()*1e-13,
		"sinh": 1.1752011936438014,
		"exp":  2.718281828459045,
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
