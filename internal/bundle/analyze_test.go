package bundle

import (
	"bytes"
	"strings"
	"testing"

	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

// The analyzer tests seed bundles through the Builder directly: each
// fault the rule catalog promises to catch is reproduced synthetically
// and its named rule must fail, while the healthy bundle passes every
// rule — the contract CI's `supportbundle analyze` step leans on.

// metricsOpts tweaks the synthetic per-target exposition.
type metricsOpts struct {
	collections float64
	records     float64
	dropped     float64
	rejected    float64 // decode-reason rejects
	driftAlert  float64
	trainedTs   float64
	baselineTs  float64
	p99Bucket   int // bucket index carrying the whole latency mass
}

func healthyOpts() metricsOpts {
	return metricsOpts{
		collections: 100, records: 90, dropped: 10,
		trainedTs: 2_000, baselineTs: 1_000, p99Bucket: 10, // 1024us << 100ms
	}
}

func metricsText(o metricsOpts) []byte {
	var b bytes.Buffer
	obs.WriteMetric(&b, "polygraph_collections_total", "Sessions scored.", "counter", o.collections)
	obs.WriteMetric(&b, "polygraph_audit_records_total", "Ledger records.", "counter", o.records)
	obs.WriteMetric(&b, "polygraph_audit_dropped_total", "Ledger drops.", "counter", o.dropped)
	if o.rejected > 0 {
		obs.WriteLabeledFamily(&b, "polygraph_rejected_total", "Rejects.", "counter",
			"reason", []obs.LabeledValue{{Label: "decode", Value: o.rejected}})
	}
	obs.WriteMetric(&b, "polygraph_drift_alert", "Drift alert.", "gauge", o.driftAlert)
	obs.WriteMetric(&b, "polygraph_model_trained_timestamp_seconds", "Train time.", "gauge", o.trainedTs)
	obs.WriteMetric(&b, "polygraph_drift_baseline_timestamp_seconds", "Baseline time.", "gauge", o.baselineTs)
	s := obs.HistogramSeries{Label: "/v1/collect", SumUs: 1000}
	s.Buckets[o.p99Bucket] = uint64(o.collections)
	obs.WriteHistogramFamily(&b, "polygraph_score_duration_microseconds", "Latency.",
		"endpoint", []obs.HistogramSeries{s})
	return b.Bytes()
}

// seedTarget adds one replica with the standard artifact set.
func seedTarget(b *Builder, name, hash string, o metricsOpts) {
	tw := b.Target(name, "http://"+name)
	tw.Add(ArtifactMetrics, KindMetrics, metricsText(o))
	tw.Add(ArtifactModelInfo, KindModelInfo, []byte(`{"hash":"`+hash+`","features":4,"clusters":8}`))
	tw.Add(ArtifactTraces, KindTraces, []byte("[]"))
}

func analyzeBundle(t *testing.T, fn func(b *Builder)) []Finding {
	t.Helper()
	bb, _ := build(t, fn)
	return Analyze(bb, AnalyzeOptions{})
}

func ruleFindings(findings []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func wantSeverity(t *testing.T, findings []Finding, rule, severity string) Finding {
	t.Helper()
	for _, f := range ruleFindings(findings, rule) {
		if f.Severity == severity {
			return f
		}
	}
	t.Fatalf("no %s finding for rule %s; got %v", severity, rule, findings)
	return Finding{}
}

const hashA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
const hashB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"

func TestAnalyzeHealthyBundlePassesEveryRule(t *testing.T) {
	findings := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, healthyOpts())
		seedTarget(b, "r1", hashA, healthyOpts())
	})
	if HasFailure(findings) {
		t.Fatalf("healthy bundle failed: %v", findings)
	}
	// Every rule reports — the output enumerates what was checked.
	for _, rule := range []string{
		RuleChecksum, RuleCollectErrors, RulePromlint, RuleP99Budget,
		RuleDriftStaleModel, RuleFleetHash, RuleAuditAccounting,
		RuleRejectSpike, RuleFleetHealth, RuleSLO,
	} {
		fs := ruleFindings(findings, rule)
		if len(fs) == 0 {
			t.Errorf("rule %s reported nothing", rule)
			continue
		}
		for _, f := range fs {
			if f.Severity != SeverityPass {
				t.Errorf("healthy bundle: %v", f)
			}
		}
	}
}

// Seeded fault 1: drift alert active while the deployed model predates
// the drift baseline.
func TestAnalyzeDriftStaleModelFault(t *testing.T) {
	o := healthyOpts()
	o.driftAlert = 1
	o.trainedTs = 1_000
	o.baselineTs = 2_000
	findings := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, o)
	})
	f := wantSeverity(t, findings, RuleDriftStaleModel, SeverityFail)
	if f.Target != "r0" {
		t.Fatalf("finding target %q, want r0", f.Target)
	}
	if !HasFailure(findings) {
		t.Fatal("HasFailure false despite stale-model fail")
	}

	// An alert over a fresh model is only a warning.
	o.trainedTs = 3_000
	warnOnly := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, o)
	})
	wantSeverity(t, warnOnly, RuleDriftStaleModel, SeverityWarn)
	if HasFailure(warnOnly) {
		t.Fatalf("drift warn escalated to failure: %v", warnOnly)
	}
}

// Seeded fault 2: replicas disagree on the deployed model hash.
func TestAnalyzeFleetHashDisagreementFault(t *testing.T) {
	findings := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, healthyOpts())
		seedTarget(b, "r1", hashB, healthyOpts())
		seedTarget(b, "r2", hashA, healthyOpts())
	})
	f := wantSeverity(t, findings, RuleFleetHash, SeverityFail)
	// The detail names both hashes (shortened) and who serves them.
	for _, want := range []string{hashA[:12], hashB[:12], "r1"} {
		if !bytes.Contains([]byte(f.Detail), []byte(want)) {
			t.Errorf("fleet-hash detail %q missing %q", f.Detail, want)
		}
	}
}

// Seeded fault 3: an endpoint's p99 bucket bound exceeds the budget.
func TestAnalyzeP99OverBudgetFault(t *testing.T) {
	o := healthyOpts()
	o.p99Bucket = 20 // upper bound 2^20us ≈ 1.05s >> 100ms budget
	findings := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, o)
	})
	f := wantSeverity(t, findings, RuleP99Budget, SeverityFail)
	if f.Target != "r0" || !bytes.Contains([]byte(f.Detail), []byte("/v1/collect")) {
		t.Fatalf("p99 finding %+v", f)
	}
	// A custom budget above the bucket bound clears it.
	bb, _ := build(t, func(b *Builder) { seedTarget(b, "r0", hashA, o) })
	relaxed := Analyze(bb, AnalyzeOptions{P99BudgetUs: 2_000_000})
	if len(ruleFindings(relaxed, RuleP99Budget)) != 1 ||
		ruleFindings(relaxed, RuleP99Budget)[0].Severity != SeverityPass {
		t.Fatalf("relaxed budget still fails: %v", ruleFindings(relaxed, RuleP99Budget))
	}
}

func TestAnalyzeAuditAccountingFault(t *testing.T) {
	o := healthyOpts()
	o.records = 80 // 80+10 != 100: ten decisions unaccounted
	findings := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, o)
	})
	wantSeverity(t, findings, RuleAuditAccounting, SeverityFail)

	// No ledger counters at all: nothing to account, rule passes.
	quiet := healthyOpts()
	quiet.records, quiet.dropped = 0, 0
	clean := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, quiet)
	})
	if HasFailure(clean) {
		t.Fatalf("ledger-less target failed accounting: %v", clean)
	}
}

func TestAnalyzeRejectSpike(t *testing.T) {
	o := healthyOpts()
	o.rejected = 40 // 40/(40+100) ≈ 29% > 20% fail threshold
	findings := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, o)
	})
	f := wantSeverity(t, findings, RuleRejectSpike, SeverityFail)
	if !bytes.Contains([]byte(f.Detail), []byte("decode")) {
		t.Fatalf("reject-spike detail %q does not name the top reason", f.Detail)
	}

	o.rejected = 5 // 5/105 ≈ 4.8%: above warn, below fail
	warn := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, o)
	})
	wantSeverity(t, warn, RuleRejectSpike, SeverityWarn)
	if HasFailure(warn) {
		t.Fatalf("reject warn escalated: %v", warn)
	}
}

func TestAnalyzeFleetHealth(t *testing.T) {
	fleetMetrics := func(healthy, ejected float64) []byte {
		var b bytes.Buffer
		obs.WriteLabeledFamily(&b, "polygraph_fleet_replicas", "Replicas by state.", "gauge",
			"state", []obs.LabeledValue{{Label: "healthy", Value: healthy}, {Label: "ejected", Value: ejected}})
		return b.Bytes()
	}
	// One ejected replica with others healthy: warn.
	warn := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, healthyOpts())
		b.AddFile(FleetMetricsFile, KindMetrics, fleetMetrics(2, 1))
	})
	wantSeverity(t, warn, RuleFleetHealth, SeverityWarn)
	if HasFailure(warn) {
		t.Fatalf("single ejection escalated: %v", warn)
	}
	// Nothing healthy left: fail.
	fail := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, healthyOpts())
		b.AddFile(FleetMetricsFile, KindMetrics, fleetMetrics(0, 3))
	})
	wantSeverity(t, fail, RuleFleetHealth, SeverityFail)
}

func TestAnalyzeChecksumAndCollectErrors(t *testing.T) {
	bb, _ := build(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, healthyOpts())
		b.Target("r1", "http://r1").Error(ArtifactMetrics, errTest)
	})
	// Tamper with an artifact after capture.
	bb.Files["targets/r0/"+ArtifactMetrics] = append(bb.Files["targets/r0/"+ArtifactMetrics], "tampered\n"...)
	findings := Analyze(bb, AnalyzeOptions{})
	wantSeverity(t, findings, RuleChecksum, SeverityFail)
	// The dead replica's recorded error surfaces as a warning, and the
	// analysis still runs end to end.
	f := wantSeverity(t, findings, RuleCollectErrors, SeverityWarn)
	if f.Target != "r1" {
		t.Fatalf("collect-error target %q, want r1", f.Target)
	}
}

func TestAnalyzePromlintRule(t *testing.T) {
	findings := analyzeBundle(t, func(b *Builder) {
		// A sample without HELP/TYPE headers trips the linter.
		b.Target("r0", "").Add(ArtifactMetrics, KindMetrics,
			[]byte("polygraph_headerless_total 1\n"))
	})
	wantSeverity(t, findings, RulePromlint, SeverityFail)
}

// Seeded SLO fault A: a run whose lifetime latency distribution sits
// above the default spec's 262144us threshold violates collect-latency.
func TestAnalyzeSLOViolationFault(t *testing.T) {
	o := healthyOpts()
	o.p99Bucket = 20 // 2^20us ≈ 1.05s, far over the threshold
	findings := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, o)
	})
	f := wantSeverity(t, findings, RuleSLO, SeverityFail)
	if f.Target != "r0" || !strings.Contains(f.Detail, "collect-latency") {
		t.Fatalf("slo finding = %+v, want collect-latency violation on r0", f)
	}
	if !HasFailure(findings) {
		t.Fatal("HasFailure false despite SLO violation")
	}
}

// Seeded SLO fault B: a captured burn-rate alert gauge fails the rule
// even when the lifetime counters average out clean.
func TestAnalyzeSLOAlertGaugeFault(t *testing.T) {
	withAlert := append(metricsText(healthyOpts()), []byte(`# HELP polygraph_slo_alert a
# TYPE polygraph_slo_alert gauge
polygraph_slo_alert{objective="collect-latency"} 1
`)...)
	findings := analyzeBundle(t, func(b *Builder) {
		tw := b.Target("r0", "http://r0")
		tw.Add(ArtifactMetrics, KindMetrics, withAlert)
	})
	f := wantSeverity(t, findings, RuleSLO, SeverityFail)
	if !strings.Contains(f.Detail, "alert firing") {
		t.Fatalf("slo finding = %+v, want live-alert failure", f)
	}

	// Same for the fleet-level gauge in the balancer exposition.
	fleet := analyzeBundle(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, healthyOpts())
		b.AddFile(FleetMetricsFile, KindMetrics, []byte(`# HELP polygraph_fleet_slo_alert a
# TYPE polygraph_fleet_slo_alert gauge
polygraph_fleet_slo_alert{objective="ingest-availability"} 1
`))
	})
	f = wantSeverity(t, fleet, RuleSLO, SeverityFail)
	if f.Target != "fleet" {
		t.Fatalf("fleet slo finding target = %q, want fleet", f.Target)
	}
}

// A custom spec passed through AnalyzeOptions overrides the default.
func TestAnalyzeSLOCustomSpec(t *testing.T) {
	spec := &slo.Spec{
		Name: "strict",
		Objectives: []slo.Objective{
			// healthyOpts puts all mass at 1024us; a 512us threshold
			// therefore counts zero good requests.
			{Name: "tight-lat", Kind: slo.KindLatency, Endpoint: "/v1/collect",
				Target: 0.5, ThresholdUs: 512, WindowS: 60},
		},
	}
	bb, _ := build(t, func(b *Builder) {
		seedTarget(b, "r0", hashA, healthyOpts())
	})
	findings := Analyze(bb, AnalyzeOptions{SLOSpec: spec})
	f := wantSeverity(t, findings, RuleSLO, SeverityFail)
	if !strings.Contains(f.Detail, "tight-lat") {
		t.Fatalf("slo finding = %+v, want tight-lat violation", f)
	}
}
