// Package bundle implements the support-bundle format: one
// deterministic tar.gz snapshotting everything an operator needs to
// diagnose a polygraphd or a fleet after the fact — per-replica metrics
// expositions, trace rings, redacted audit records, model provenance,
// pprof profiles — plus the offline analyzers that replay pass/warn/fail
// rules over a captured bundle (cmd/supportbundle).
//
// The package sits below serving/fleet in the dependency order: it
// knows HTTP paths and metric family names but imports neither, so
// serving can expose GET /debug/bundle and fleet can adapt its replica
// list without an import cycle.
package bundle

import (
	"archive/tar"
	"compress/gzip"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path"
	"strings"
	"time"
)

// FormatVersion stamps manifest.json; analyzers refuse bundles from a
// newer format than they understand.
const FormatVersion = 1

// ManifestName is the first entry of every bundle.
const ManifestName = "manifest.json"

// Artifact kinds (Manifest bookkeeping; the analyzers key on names).
const (
	KindMetrics   = "metrics"
	KindTraces    = "traces"
	KindDecisions = "decisions"
	KindModelInfo = "model-info"
	KindStats     = "stats"
	KindHealth    = "health"
	KindExpvar    = "expvar"
	KindPprof     = "pprof"
	KindConfig    = "config"
	KindFile      = "file"
	KindSLO       = "slo"
)

// Artifact describes one captured file.
type Artifact struct {
	// Name is the file name relative to its target directory (or to
	// files/ for run-level artifacts).
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Bytes and SHA256 pin the content so an analyzer can detect a
	// truncated or hand-edited bundle.
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// CollectError records one artifact that could not be captured. Errors
// are data, not failures: a dead replica yields a manifest full of
// these and the capture still succeeds.
type CollectError struct {
	Artifact string `json:"artifact"`
	Err      string `json:"err"`
}

// TargetManifest is one capture target (a replica or daemon).
type TargetManifest struct {
	Name      string         `json:"name"`
	BaseURL   string         `json:"base_url,omitempty"`
	Artifacts []Artifact     `json:"artifacts,omitempty"`
	Errors    []CollectError `json:"errors,omitempty"`
}

// Manifest is the bundle's table of contents, stored as the first tar
// entry.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Tool          string `json:"tool,omitempty"`
	CapturedAtNs  int64  `json:"captured_at_ns"`
	// Redacted reports whether audit records were passed through
	// audit.RedactRecord before packing (the default).
	Redacted bool             `json:"redacted"`
	Targets  []TargetManifest `json:"targets"`
	// Files lists run-level artifacts under files/ (benchjson
	// trajectories, effective config).
	Files  []Artifact     `json:"files,omitempty"`
	Errors []CollectError `json:"errors,omitempty"`
}

// CapturedAt returns the capture time.
func (m *Manifest) CapturedAt() time.Time { return time.Unix(0, m.CapturedAtNs) }

// Target returns the named target's manifest entry, nil when absent.
func (m *Manifest) Target(name string) *TargetManifest {
	for i := range m.Targets {
		if m.Targets[i].Name == name {
			return &m.Targets[i]
		}
	}
	return nil
}

// SanitizeName maps an arbitrary target name (often host:port) onto the
// tar-path-safe alphabet.
func SanitizeName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	out := b.String()
	// All-dot names ("." / "..") would alias or escape the targets/
	// directory on naive extraction.
	if strings.Trim(out, ".") == "" {
		return "target"
	}
	return out
}

// Builder assembles a bundle in memory. Capture drives it against live
// targets; analyzer tests drive it directly to seed synthetic faults.
type Builder struct {
	manifest Manifest
	order    []string
	data     map[string][]byte
}

// NewBuilder starts a bundle captured at the given instant (the only
// wall-clock input; everything else about the tar stream is a pure
// function of the added content, which keeps bundles byte-reproducible
// for tests).
func NewBuilder(capturedAt time.Time) *Builder {
	return &Builder{
		manifest: Manifest{FormatVersion: FormatVersion, CapturedAtNs: capturedAt.UnixNano(), Redacted: true},
		data:     map[string][]byte{},
	}
}

// SetTool records the capturing tool's version string.
func (b *Builder) SetTool(tool string) { b.manifest.Tool = tool }

// SetRedacted records whether audit records were redacted.
func (b *Builder) SetRedacted(v bool) { b.manifest.Redacted = v }

// Target adds (or returns) a capture target.
func (b *Builder) Target(name, baseURL string) *TargetWriter {
	name = SanitizeName(name)
	for i := range b.manifest.Targets {
		if b.manifest.Targets[i].Name == name {
			return &TargetWriter{b: b, idx: i}
		}
	}
	b.manifest.Targets = append(b.manifest.Targets, TargetManifest{Name: name, BaseURL: baseURL})
	return &TargetWriter{b: b, idx: len(b.manifest.Targets) - 1}
}

// AddFile stores a run-level artifact under files/<name>.
func (b *Builder) AddFile(name, kind string, data []byte) {
	name = path.Base(name)
	b.manifest.Files = append(b.manifest.Files, b.add("files/"+name, name, kind, data))
}

// Error records a run-level collection error.
func (b *Builder) Error(artifact string, err error) {
	b.manifest.Errors = append(b.manifest.Errors, CollectError{Artifact: artifact, Err: err.Error()})
}

func (b *Builder) add(tarPath, name, kind string, data []byte) Artifact {
	if _, dup := b.data[tarPath]; !dup {
		b.order = append(b.order, tarPath)
	}
	b.data[tarPath] = data
	sum := sha256.Sum256(data)
	return Artifact{Name: name, Kind: kind, Bytes: int64(len(data)), SHA256: fmt.Sprintf("%x", sum)}
}

// TargetWriter adds artifacts and errors to one target.
type TargetWriter struct {
	b   *Builder
	idx int
}

// Add stores one artifact under targets/<target>/<name>.
func (t *TargetWriter) Add(name, kind string, data []byte) {
	tm := &t.b.manifest.Targets[t.idx]
	tm.Artifacts = append(tm.Artifacts, t.b.add("targets/"+tm.Name+"/"+name, name, kind, data))
}

// Error records a failed artifact on the target; the bundle still
// builds.
func (t *TargetWriter) Error(artifact string, err error) {
	tm := &t.b.manifest.Targets[t.idx]
	tm.Errors = append(tm.Errors, CollectError{Artifact: artifact, Err: err.Error()})
}

// Write writes the finished tar.gz: manifest.json first, then every
// artifact in insertion order. Headers carry only the capture mtime and
// a fixed mode, so the byte stream is deterministic for a given
// capture.
func (b *Builder) Write(w io.Writer) (*Manifest, error) {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	mtime := time.Unix(0, b.manifest.CapturedAtNs).UTC().Truncate(time.Second)
	writeOne := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: mtime,
			Format:  tar.FormatPAX,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	mf, err := json.MarshalIndent(&b.manifest, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeOne(ManifestName, append(mf, '\n')); err != nil {
		return nil, err
	}
	for _, name := range b.order {
		if err := writeOne(name, b.data[name]); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	m := b.manifest
	return &m, nil
}

// Bundle is a read-back support bundle.
type Bundle struct {
	Manifest Manifest
	// Files maps tar paths (targets/<t>/<name>, files/<name>) to
	// content.
	Files map[string][]byte
}

// Read parses a bundle stream.
func Read(r io.Reader) (*Bundle, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("bundle: not a gzip stream: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	b := &Bundle{Files: map[string][]byte{}}
	sawManifest := false
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("bundle: read tar: %w", err)
		}
		data, err := io.ReadAll(io.LimitReader(tr, 256<<20))
		if err != nil {
			return nil, fmt.Errorf("bundle: read %s: %w", hdr.Name, err)
		}
		if hdr.Name == ManifestName {
			if err := json.Unmarshal(data, &b.Manifest); err != nil {
				return nil, fmt.Errorf("bundle: parse manifest: %w", err)
			}
			sawManifest = true
			continue
		}
		b.Files[hdr.Name] = data
	}
	if !sawManifest {
		return nil, fmt.Errorf("bundle: %s missing", ManifestName)
	}
	if b.Manifest.FormatVersion > FormatVersion {
		return nil, fmt.Errorf("bundle: format version %d newer than supported %d",
			b.Manifest.FormatVersion, FormatVersion)
	}
	return b, nil
}

// Open reads a bundle file.
func Open(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// TargetFile returns one target artifact's content, nil when absent.
func (b *Bundle) TargetFile(target, name string) []byte {
	return b.Files["targets/"+SanitizeName(target)+"/"+name]
}
