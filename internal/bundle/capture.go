package bundle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polygraph/internal/audit"
)

// Canonical per-target artifact names; Capture writes them and the
// analyzers read them, so they live next to the format.
const (
	ArtifactMetrics   = "metrics.txt"
	ArtifactStats     = "stats.json"
	ArtifactTraces    = "traces.json"
	ArtifactDecisions = "decisions.json"
	ArtifactModelInfo = "model-info.json"
	ArtifactHealth    = "healthz.txt"
	ArtifactExpvar    = "expvar.json"
	ArtifactPprofCPU  = "pprof-cpu.pb.gz"
	ArtifactPprofHeap = "pprof-heap.pb.gz"
	ArtifactSLO       = "slo.json"
)

// FleetMetricsFile is the run-level balancer exposition (files/...).
const FleetMetricsFile = "fleet-metrics.txt"

// ConfigFile is the run-level effective-configuration artifact.
const ConfigFile = "config.json"

// AdminModelInfoPath is the model-provenance endpoint captured into
// model-info.json (served by internal/serving; mirrored as an alias of
// GET /admin/model).
const AdminModelInfoPath = "/admin/model/info"

// Target is one live capture source.
type Target struct {
	// Name labels the target inside the bundle (sanitized for tar
	// paths).
	Name string
	// BaseURL is the serving root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// DebugURL is the pprof/expvar listener when it differs from
	// BaseURL (polygraphd's -debug-addr); "" uses BaseURL.
	DebugURL string
	// Fetch overrides HTTP entirely: given a request path it returns
	// the response body. In-process rigs (serving.Replica.BundleTarget)
	// use it so a capture needs no listener at all.
	Fetch func(ctx context.Context, path string) ([]byte, error)
}

// Options parameterizes Capture.
type Options struct {
	Targets []Target
	// Client serves HTTP fetches (nil = a 10s-timeout client).
	Client *http.Client
	// NoRedact ships audit records verbatim — UA strings and
	// fingerprint vectors included. Default is redaction via
	// audit.RedactRecord.
	NoRedact bool
	// PprofSeconds is the CPU-profile duration per target; 0 skips the
	// CPU profile (the heap profile is always attempted unless
	// SkipPprof).
	PprofSeconds int
	// SkipPprof skips profiles entirely.
	SkipPprof bool
	// Recent bounds the captured trace and decision rings (0 = 256).
	Recent int
	// FleetMetrics, when set, writes the balancer's own exposition
	// (fleet.Balancer.WriteMetrics) into files/fleet-metrics.txt.
	FleetMetrics func(w io.Writer)
	// Files lists extra run-level files to pack (benchjson
	// trajectories); unreadable ones become manifest errors.
	Files []string
	// Config, when non-nil, is marshaled into files/config.json — the
	// effective flags/configuration of the capturing process.
	Config any
	// Tool stamps the manifest with the capturing tool's version.
	Tool string
	// Now overrides the capture timestamp (tests); zero = time.Now().
	Now time.Time
}

// Capture snapshots every target into a bundle written to w. Individual
// artifact failures are recorded in the manifest and never abort the
// capture — a dead replica is a diagnosis, not an error. The returned
// manifest is the one written into the stream.
func Capture(ctx context.Context, w io.Writer, opts Options) (*Manifest, error) {
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	recent := opts.Recent
	if recent <= 0 {
		recent = 256
	}

	b := NewBuilder(now)
	b.SetTool(opts.Tool)
	b.SetRedacted(!opts.NoRedact)

	for _, t := range opts.Targets {
		captureTarget(ctx, b, client, t, opts, recent)
	}

	if opts.FleetMetrics != nil {
		var buf bytes.Buffer
		opts.FleetMetrics(&buf)
		b.AddFile(FleetMetricsFile, KindMetrics, buf.Bytes())
	}
	if opts.Config != nil {
		data, err := json.MarshalIndent(opts.Config, "", "  ")
		if err != nil {
			b.Error(ConfigFile, err)
		} else {
			b.AddFile(ConfigFile, KindConfig, append(data, '\n'))
		}
	}
	for _, f := range opts.Files {
		data, err := os.ReadFile(f)
		if err != nil {
			b.Error(filepath.Base(f), err)
			continue
		}
		b.AddFile(filepath.Base(f), KindFile, data)
	}

	return b.Write(w)
}

// captureTarget collects one target's artifact set in a fixed order.
func captureTarget(ctx context.Context, b *Builder, client *http.Client, t Target, opts Options, recent int) {
	tw := b.Target(t.Name, t.BaseURL)
	fetch := func(path string) ([]byte, error) {
		if t.Fetch != nil {
			return t.Fetch(ctx, path)
		}
		base := t.BaseURL
		if t.DebugURL != "" && isDebugListenerPath(path) {
			base = t.DebugURL
		}
		if base == "" {
			return nil, fmt.Errorf("no base URL for %s", path)
		}
		return HTTPFetch(ctx, client, strings.TrimSuffix(base, "/")+path)
	}
	grab := func(name, kind, path string) []byte {
		data, err := fetch(path)
		if err != nil {
			tw.Error(name, err)
			return nil
		}
		tw.Add(name, kind, data)
		return data
	}
	// grabOptional packs the artifact when the endpoint answers but stays
	// silent when it does not: /debug/slo is 404 on a replica without an
	// SLO engine, and that configuration choice is not a capture failure.
	grabOptional := func(name, kind, path string) {
		if data, err := fetch(path); err == nil {
			tw.Add(name, kind, data)
		}
	}

	grab(ArtifactHealth, KindHealth, "/healthz")
	grab(ArtifactMetrics, KindMetrics, "/metrics")
	grab(ArtifactStats, KindStats, "/v1/stats")
	grab(ArtifactTraces, KindTraces, fmt.Sprintf("/debug/traces?n=%d", recent))
	captureDecisions(tw, fetch, opts.NoRedact, recent)
	grabOptional(ArtifactSLO, KindSLO, "/debug/slo")
	grab(ArtifactModelInfo, KindModelInfo, AdminModelInfoPath)
	grab(ArtifactExpvar, KindExpvar, "/debug/vars")
	if !opts.SkipPprof {
		grab(ArtifactPprofHeap, KindPprof, "/debug/pprof/heap")
		if opts.PprofSeconds > 0 {
			grab(ArtifactPprofCPU, KindPprof, fmt.Sprintf("/debug/pprof/profile?seconds=%d", opts.PprofSeconds))
		}
	}
}

// captureDecisions fetches the recent-decision ring and redacts it
// before packing. When redaction is on and the payload does not parse
// as audit records, nothing is stored: shipping unparsed records
// verbatim would silently defeat the redaction default.
func captureDecisions(tw *TargetWriter, fetch func(string) ([]byte, error), noRedact bool, recent int) {
	data, err := fetch(fmt.Sprintf("/debug/decisions?n=%d", recent))
	if err != nil {
		tw.Error(ArtifactDecisions, err)
		return
	}
	if noRedact {
		tw.Add(ArtifactDecisions, KindDecisions, data)
		return
	}
	var recs []audit.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		tw.Error(ArtifactDecisions, fmt.Errorf("redact: %w", err))
		return
	}
	out, err := json.Marshal(audit.RedactRecords(recs))
	if err != nil {
		tw.Error(ArtifactDecisions, fmt.Errorf("redact: %w", err))
		return
	}
	tw.Add(ArtifactDecisions, KindDecisions, append(out, '\n'))
}

// isDebugListenerPath reports whether a path belongs on polygraphd's
// separate -debug-addr listener (pprof and expvar).
func isDebugListenerPath(path string) bool {
	return strings.HasPrefix(path, "/debug/pprof/") || strings.HasPrefix(path, "/debug/vars")
}

// HTTPFetch GETs a URL, requiring a 200 and bounding the body — the
// transport every HTTP-backed capture target shares (nil client uses
// http.DefaultClient).
func HTTPFetch(ctx context.Context, client *http.Client, url string) ([]byte, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		if len(msg) > 120 {
			msg = msg[:120]
		}
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, msg)
	}
	return body, nil
}
