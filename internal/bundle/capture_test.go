package bundle

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polygraph/internal/audit"
)

// liveTarget spins up an httptest server that answers the capture
// paths, returning its URL. The decisions payload carries a raw UA and
// vector so redaction is observable.
func liveTarget(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write(metricsText(healthyOpts()))
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"collections":100}`))
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("n") == "" {
			http.Error(w, "missing n", http.StatusBadRequest)
			return
		}
		w.Write([]byte("[]"))
	})
	mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		recs := []audit.Record{{
			SessionID: "s1",
			UserAgent: "SecretAgent/1.0",
			Vector:    []float64{1, 2, 3},
		}}
		json.NewEncoder(w).Encode(recs)
	})
	mux.HandleFunc(AdminModelInfoPath, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"hash":"` + hashA + `"}`))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// deadTargetURL returns a URL nothing listens on.
func deadTargetURL(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	return url
}

func captureToBundle(t *testing.T, opts Options) *Bundle {
	t.Helper()
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if opts.Now.IsZero() {
		opts.Now = captureInstant
	}
	if _, err := Capture(ctx, &buf, opts); err != nil {
		t.Fatalf("Capture: %v", err)
	}
	bb, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return bb
}

func TestCaptureLiveAndDeadTargets(t *testing.T) {
	bb := captureToBundle(t, Options{
		Targets: []Target{
			{Name: "live", BaseURL: liveTarget(t)},
			{Name: "dead", BaseURL: deadTargetURL(t)},
		},
		SkipPprof: true,
		Tool:      "capture-test",
	})

	if bb.Manifest.Tool != "capture-test" || !bb.Manifest.Redacted {
		t.Fatalf("manifest header %+v", bb.Manifest)
	}
	live := bb.Manifest.Target("live")
	if live == nil {
		t.Fatal("live target missing from manifest")
	}
	for _, want := range []string{ArtifactHealth, ArtifactMetrics, ArtifactStats,
		ArtifactTraces, ArtifactDecisions, ArtifactModelInfo, ArtifactExpvar} {
		found := false
		for _, a := range live.Artifacts {
			if a.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("live target missing artifact %s; has %+v", want, live.Artifacts)
		}
	}
	if len(live.Errors) != 0 {
		t.Fatalf("live target recorded errors: %+v", live.Errors)
	}

	// The dead replica becomes recorded errors, not a failed capture.
	dead := bb.Manifest.Target("dead")
	if dead == nil {
		t.Fatal("dead target missing from manifest")
	}
	if len(dead.Artifacts) != 0 {
		t.Fatalf("dead target captured artifacts: %+v", dead.Artifacts)
	}
	if len(dead.Errors) < 7 {
		t.Fatalf("dead target recorded %d errors, want one per artifact: %+v",
			len(dead.Errors), dead.Errors)
	}
}

func TestCaptureRedactsDecisionsByDefault(t *testing.T) {
	url := liveTarget(t)
	bb := captureToBundle(t, Options{
		Targets:   []Target{{Name: "r0", BaseURL: url}},
		SkipPprof: true,
	})
	data := bb.TargetFile("r0", ArtifactDecisions)
	if data == nil {
		t.Fatal("decisions.json not captured")
	}
	if bytes.Contains(data, []byte("SecretAgent")) {
		t.Fatalf("redacted decisions leak the UA: %s", data)
	}
	var recs []audit.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].Redacted || recs[0].Vector != nil ||
		recs[0].VectorDim != 3 || !strings.HasPrefix(recs[0].UserAgent, "sha256:") {
		t.Fatalf("decisions not redacted: %+v", recs)
	}

	// -no-redact ships them verbatim and flips the manifest bit.
	raw := captureToBundle(t, Options{
		Targets:   []Target{{Name: "r0", BaseURL: url}},
		SkipPprof: true,
		NoRedact:  true,
	})
	if raw.Manifest.Redacted {
		t.Fatal("NoRedact capture still claims redaction")
	}
	if !bytes.Contains(raw.TargetFile("r0", ArtifactDecisions), []byte("SecretAgent")) {
		t.Fatal("NoRedact capture lost the raw UA")
	}
}

// Redaction is fail-closed: a decisions payload that does not parse as
// audit records is dropped with a recorded error, never shipped raw.
func TestCaptureRedactionFailClosed(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"not":"a record array","ua":"SecretAgent/9"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	bb := captureToBundle(t, Options{
		Targets:   []Target{{Name: "r0", BaseURL: srv.URL}},
		SkipPprof: true,
	})
	if bb.TargetFile("r0", ArtifactDecisions) != nil {
		t.Fatal("unparseable decisions were shipped despite redaction")
	}
	tm := bb.Manifest.Target("r0")
	found := false
	for _, ce := range tm.Errors {
		if ce.Artifact == ArtifactDecisions && strings.Contains(ce.Err, "redact") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no redact error recorded: %+v", tm.Errors)
	}
}

func TestCaptureFetchOverrideAndRunLevelFiles(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(bench, []byte(`{"rps":9000}`), 0o644); err != nil {
		t.Fatal(err)
	}

	fetched := map[string]bool{}
	target := Target{
		Name: "inproc",
		Fetch: func(ctx context.Context, path string) ([]byte, error) {
			fetched[path] = true
			switch {
			case path == "/metrics":
				return metricsText(healthyOpts()), nil
			case strings.HasPrefix(path, "/debug/decisions"):
				return []byte("[]"), nil
			default:
				return []byte("{}"), nil
			}
		},
	}
	bb := captureToBundle(t, Options{
		Targets:      []Target{target},
		SkipPprof:    true,
		Recent:       7,
		FleetMetrics: func(w io.Writer) { w.Write([]byte("polygraph_fleet_retries_total 0\n")) },
		Files:        []string{bench, filepath.Join(dir, "missing.json")},
		Config:       map[string]any{"fleet": 3},
	})

	if !fetched["/debug/traces?n=7"] || !fetched["/debug/decisions?n=7"] {
		t.Fatalf("Recent not threaded into fetch paths: %v", fetched)
	}
	if !bytes.Contains(bb.Files["files/"+FleetMetricsFile], []byte("polygraph_fleet_retries_total")) {
		t.Fatal("fleet metrics file missing")
	}
	if !bytes.Contains(bb.Files["files/"+ConfigFile], []byte(`"fleet": 3`)) {
		t.Fatalf("config.json content %s", bb.Files["files/"+ConfigFile])
	}
	if !bytes.Contains(bb.Files["files/bench.json"], []byte("9000")) {
		t.Fatal("bench.json not packed")
	}
	// The unreadable extra file is a manifest error, not a capture
	// failure.
	found := false
	for _, ce := range bb.Manifest.Errors {
		if ce.Artifact == "missing.json" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing.json error not recorded: %+v", bb.Manifest.Errors)
	}
}

func TestHTTPFetchRejectsNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, strings.Repeat("x", 500), http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	_, err := HTTPFetch(context.Background(), nil, srv.URL+"/metrics")
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("HTTPFetch on 503 = %v", err)
	}
	// Body excerpt is bounded.
	if len(err.Error()) > 300 {
		t.Fatalf("error message unbounded: %d bytes", len(err.Error()))
	}
}

// A captured healthy target must analyze clean end to end — the
// contract behind CI's healthy-path analyze step.
func TestCaptureThenAnalyzeHealthy(t *testing.T) {
	bb := captureToBundle(t, Options{
		Targets:   []Target{{Name: "r0", BaseURL: liveTarget(t)}},
		SkipPprof: true,
	})
	findings := Analyze(bb, AnalyzeOptions{})
	if HasFailure(findings) {
		t.Fatalf("captured healthy target fails analysis: %v", findings)
	}
}
