package bundle

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
	"time"
)

var captureInstant = time.Unix(1_700_000_000, 123_456_789)

// build writes a bundle through fn and reads it back.
func build(t *testing.T, fn func(b *Builder)) (*Bundle, []byte) {
	t.Helper()
	b := NewBuilder(captureInstant)
	fn(b)
	var buf bytes.Buffer
	if _, err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	bb, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return bb, buf.Bytes()
}

func TestBundleRoundTrip(t *testing.T) {
	bb, _ := build(t, func(b *Builder) {
		b.SetTool("test v1")
		tw := b.Target("r0", "http://127.0.0.1:1")
		tw.Add(ArtifactMetrics, KindMetrics, []byte("polygraph_collections_total 1\n"))
		tw.Add(ArtifactTraces, KindTraces, []byte("[]"))
		tw.Error(ArtifactPprofCPU, errTest)
		b.AddFile("bench.json", KindFile, []byte("{}"))
		b.Error("missing.json", errTest)
	})

	m := bb.Manifest
	if m.FormatVersion != FormatVersion || m.Tool != "test v1" || !m.Redacted {
		t.Fatalf("manifest header %+v", m)
	}
	if !m.CapturedAt().Equal(captureInstant) {
		t.Fatalf("CapturedAt = %v, want %v", m.CapturedAt(), captureInstant)
	}
	tm := m.Target("r0")
	if tm == nil || len(tm.Artifacts) != 2 || len(tm.Errors) != 1 {
		t.Fatalf("target manifest %+v", tm)
	}
	if tm.Artifacts[0].Name != ArtifactMetrics || tm.Artifacts[0].Kind != KindMetrics ||
		tm.Artifacts[0].Bytes != 30 || len(tm.Artifacts[0].SHA256) != 64 {
		t.Fatalf("artifact entry %+v", tm.Artifacts[0])
	}
	if got := string(bb.TargetFile("r0", ArtifactMetrics)); got != "polygraph_collections_total 1\n" {
		t.Fatalf("TargetFile = %q", got)
	}
	if bb.TargetFile("r0", "nope.txt") != nil || bb.TargetFile("r9", ArtifactMetrics) != nil {
		t.Fatal("absent artifacts should return nil")
	}
	if len(m.Files) != 1 || m.Files[0].Name != "bench.json" {
		t.Fatalf("files %+v", m.Files)
	}
	if string(bb.Files["files/bench.json"]) != "{}" {
		t.Fatal("run-level file content lost")
	}
	if len(m.Errors) != 1 || m.Errors[0].Artifact != "missing.json" {
		t.Fatalf("run-level errors %+v", m.Errors)
	}
}

var errTest = errFixed("synthetic failure")

type errFixed string

func (e errFixed) Error() string { return string(e) }

// Two builds of the same content at the same instant must be
// byte-identical — the determinism CI relies on to diff bundles.
func TestBundleDeterministicBytes(t *testing.T) {
	fill := func(b *Builder) {
		b.SetTool("test v1")
		tw := b.Target("r0", "http://x")
		tw.Add(ArtifactMetrics, KindMetrics, []byte("m 1\n"))
		tw.Add(ArtifactStats, KindStats, []byte("{}"))
		b.AddFile("config.json", KindConfig, []byte("{}"))
	}
	_, first := build(t, fill)
	_, second := build(t, fill)
	if !bytes.Equal(first, second) {
		t.Fatal("identical builds differ byte-for-byte")
	}
}

func TestBundleManifestIsFirstEntry(t *testing.T) {
	_, raw := build(t, func(b *Builder) {
		b.Target("r0", "").Add(ArtifactMetrics, KindMetrics, []byte("m 1\n"))
	})
	// The gzip stream must start with the manifest entry so `tar tzf`
	// and streaming readers see the table of contents first.
	names := tarNames(t, raw)
	if len(names) == 0 || names[0] != ManifestName {
		t.Fatalf("tar entries %v; want %s first", names, ManifestName)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"r0":                  "r0",
		"127.0.0.1:8080":      "127.0.0.1-8080",
		"http://host/../etc":  "http---host-..-etc",
		"":                    "target",
		"..":                  "target",
		"ok-name_2.suffix":    "ok-name_2.suffix",
		"weird name\twith ws": "weird-name-with-ws",
	} {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTargetDedup(t *testing.T) {
	bb, _ := build(t, func(b *Builder) {
		b.Target("r0", "http://x").Add(ArtifactMetrics, KindMetrics, []byte("m 1\n"))
		b.Target("r0", "ignored").Add(ArtifactStats, KindStats, []byte("{}"))
	})
	if len(bb.Manifest.Targets) != 1 {
		t.Fatalf("targets %+v, want one deduped entry", bb.Manifest.Targets)
	}
	if n := len(bb.Manifest.Targets[0].Artifacts); n != 2 {
		t.Fatalf("deduped target has %d artifacts, want 2", n)
	}
}

func TestReadRejectsBadBundles(t *testing.T) {
	if _, err := Read(strings.NewReader("not a gzip stream")); err == nil {
		t.Fatal("non-gzip input accepted")
	}
	// A bundle claiming a newer format must be refused, not
	// misinterpreted.
	b := NewBuilder(captureInstant)
	b.manifest.FormatVersion = FormatVersion + 1
	var buf bytes.Buffer
	if _, err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("newer-format bundle accepted: %v", err)
	}
}

// tarNames lists a bundle stream's entry names in order.
func tarNames(t *testing.T, raw []byte) []string {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	var names []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, hdr.Name)
	}
	return names
}
