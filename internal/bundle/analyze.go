package bundle

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

// The offline analyzer: a fixed catalog of rules replayed over a
// captured bundle, each emitting machine-readable pass/warn/fail
// findings. The rules encode the invariants the live system promises —
// the p99 budget, the audit accounting identity, fleet hash agreement,
// the drift/staleness relation from the paper's §7.3 methodology — so
// an operator (or CI) gets a verdict without hand-reading expositions.

// Severities, ordered.
const (
	SeverityPass = "pass"
	SeverityWarn = "warn"
	SeverityFail = "fail"
)

// Rule names (stable identifiers for CI greps and tests).
const (
	RuleChecksum        = "artifact-checksum"
	RuleCollectErrors   = "collector-errors"
	RulePromlint        = "promlint"
	RuleP99Budget       = "p99-over-budget"
	RuleDriftStaleModel = "drift-stale-model"
	RuleFleetHash       = "fleet-hash-disagreement"
	RuleAuditAccounting = "audit-accounting"
	RuleRejectSpike     = "rejected-reason-spike"
	RuleFleetHealth     = "fleet-health"
	RuleSLO             = "slo-violation"
)

// Finding is one analyzer verdict.
type Finding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	// Target names the replica the finding is about ("" for bundle- or
	// fleet-level findings).
	Target string `json:"target,omitempty"`
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	t := f.Target
	if t != "" {
		t = " " + t
	}
	return fmt.Sprintf("%s %s%s: %s", strings.ToUpper(f.Severity), f.Rule, t, f.Detail)
}

// AnalyzeOptions tune rule thresholds; zero values take the defaults.
type AnalyzeOptions struct {
	// P99BudgetUs is the per-endpoint p99 ceiling in microseconds
	// (default 100ms — the paper's interactive-login budget).
	P99BudgetUs float64
	// RejectWarnRatio / RejectFailRatio bound rejected/(scored+rejected)
	// (defaults 0.02 / 0.20).
	RejectWarnRatio float64
	RejectFailRatio float64
	// RetryWarnRatio bounds fleet retries per scored request (default
	// 0.01).
	RetryWarnRatio float64
	// SLOSpec is the objective set the slo-violation rule evaluates over
	// each captured exposition's lifetime counters (nil =
	// slo.DefaultSpec()).
	SLOSpec *slo.Spec
}

func (o *AnalyzeOptions) defaults() {
	if o.P99BudgetUs <= 0 {
		o.P99BudgetUs = 100_000
	}
	if o.RejectWarnRatio <= 0 {
		o.RejectWarnRatio = 0.02
	}
	if o.RejectFailRatio <= 0 {
		o.RejectFailRatio = 0.20
	}
	if o.RetryWarnRatio <= 0 {
		o.RetryWarnRatio = 0.01
	}
}

// HasFailure reports whether any finding failed (the CLI's exit-1
// condition).
func HasFailure(findings []Finding) bool {
	for _, f := range findings {
		if f.Severity == SeverityFail {
			return true
		}
	}
	return false
}

// Analyze replays the full rule catalog over a bundle. Every rule
// contributes at least one finding — a pass with a summary detail when
// nothing is wrong — so the output enumerates what was checked, not
// just what failed.
func Analyze(b *Bundle, opts AnalyzeOptions) []Finding {
	opts.defaults()
	a := &analyzer{b: b, opts: opts, expositions: map[string]*obs.Exposition{}}
	for _, t := range b.Manifest.Targets {
		if data := b.TargetFile(t.Name, ArtifactMetrics); data != nil {
			a.expositions[t.Name] = obs.ParseExpositionString(string(data))
		}
	}
	a.checkChecksums()
	a.checkCollectErrors()
	a.checkPromlint()
	a.checkP99()
	a.checkDriftStaleModel()
	a.checkFleetHash()
	a.checkAuditAccounting()
	a.checkRejectSpike()
	a.checkFleetHealth()
	a.checkSLO()
	return a.findings
}

type analyzer struct {
	b           *Bundle
	opts        AnalyzeOptions
	expositions map[string]*obs.Exposition
	findings    []Finding
}

func (a *analyzer) addf(rule, severity, target, format string, args ...any) {
	a.findings = append(a.findings, Finding{
		Rule: rule, Severity: severity, Target: target, Detail: fmt.Sprintf(format, args...),
	})
}

// pass emits the rule's all-clear finding unless the rule already
// reported something worse.
func (a *analyzer) pass(rule, format string, args ...any) {
	for _, f := range a.findings {
		if f.Rule == rule {
			return
		}
	}
	a.addf(rule, SeverityPass, "", format, args...)
}

// targetNames returns manifest order.
func (a *analyzer) targetNames() []string {
	out := make([]string, len(a.b.Manifest.Targets))
	for i, t := range a.b.Manifest.Targets {
		out[i] = t.Name
	}
	return out
}

// checkChecksums re-hashes every artifact against the manifest.
func (a *analyzer) checkChecksums() {
	n := 0
	check := func(tarPath, target string, art Artifact) {
		n++
		data, ok := a.b.Files[tarPath]
		if !ok {
			a.addf(RuleChecksum, SeverityFail, target, "%s listed in manifest but missing from archive", art.Name)
			return
		}
		sum := sha256.Sum256(data)
		if got := fmt.Sprintf("%x", sum); got != art.SHA256 || int64(len(data)) != art.Bytes {
			a.addf(RuleChecksum, SeverityFail, target, "%s content does not match manifest checksum", art.Name)
		}
	}
	for _, t := range a.b.Manifest.Targets {
		for _, art := range t.Artifacts {
			check("targets/"+t.Name+"/"+art.Name, t.Name, art)
		}
	}
	for _, art := range a.b.Manifest.Files {
		check("files/"+art.Name, "", art)
	}
	a.pass(RuleChecksum, "%d artifacts verified against manifest checksums", n)
}

// checkCollectErrors surfaces capture-time failures (dead replicas,
// missing debug listeners) as warnings — degraded visibility, not
// proven breakage.
func (a *analyzer) checkCollectErrors() {
	n := 0
	for _, t := range a.b.Manifest.Targets {
		for _, ce := range t.Errors {
			n++
			a.addf(RuleCollectErrors, SeverityWarn, t.Name, "%s not captured: %s", ce.Artifact, ce.Err)
		}
	}
	for _, ce := range a.b.Manifest.Errors {
		n++
		a.addf(RuleCollectErrors, SeverityWarn, "", "%s not captured: %s", ce.Artifact, ce.Err)
	}
	a.pass(RuleCollectErrors, "every artifact captured cleanly")
}

// checkPromlint runs the exposition linter over every captured
// /metrics, including the fleet-level one.
func (a *analyzer) checkPromlint() {
	n := 0
	lint := func(target string, data []byte) {
		n++
		problems, err := obs.Lint(strings.NewReader(string(data)))
		if err != nil {
			a.addf(RulePromlint, SeverityFail, target, "lint: %v", err)
			return
		}
		for i, p := range problems {
			if i == 8 {
				a.addf(RulePromlint, SeverityFail, target, "... and %d more problems", len(problems)-i)
				break
			}
			a.addf(RulePromlint, SeverityFail, target, "%s", p.String())
		}
	}
	for _, t := range a.b.Manifest.Targets {
		if data := a.b.TargetFile(t.Name, ArtifactMetrics); data != nil {
			lint(t.Name, data)
		}
	}
	if data := a.b.Files["files/"+FleetMetricsFile]; data != nil {
		lint("fleet", data)
	}
	a.pass(RulePromlint, "%d expositions lint clean", n)
}

// checkP99 derives each endpoint's p99 from the captured histogram
// buckets and compares it against the budget. The bucket layout is the
// obs.Hist power-of-two-microsecond ladder, so the bound of the bucket
// holding the 99th-percentile rank is the tightest claim the exposition
// supports.
func (a *analyzer) checkP99() {
	evaluated := 0
	for _, name := range a.targetNames() {
		ex := a.expositions[name]
		if ex == nil {
			continue
		}
		hist := ex.HistogramBuckets("polygraph_score_duration_microseconds", "endpoint")
		endpoints := make([]string, 0, len(hist))
		for ep := range hist {
			endpoints = append(endpoints, ep)
		}
		sort.Strings(endpoints)
		for _, ep := range endpoints {
			idx, total := obs.QuantileBucket(hist[ep], 0.99)
			if total == 0 {
				continue
			}
			evaluated++
			upper := obs.BucketUpperMicros(idx)
			if upper > a.opts.P99BudgetUs {
				a.addf(RuleP99Budget, SeverityFail, name,
					"endpoint %s p99 bucket bound %.0fus exceeds budget %.0fus (%d samples)",
					ep, upper, a.opts.P99BudgetUs, total)
			}
		}
	}
	a.pass(RuleP99Budget, "%d endpoint histograms within the %.0fus p99 budget", evaluated, a.opts.P99BudgetUs)
}

// checkDriftStaleModel encodes the §7.3 lesson: fingerprint
// distributions rot. An active drift alert alone is a warning; an
// active alert while the deployed model predates the drift baseline
// means the model has not been retrained since the distribution moved —
// that is the failure.
func (a *analyzer) checkDriftStaleModel() {
	for _, name := range a.targetNames() {
		ex := a.expositions[name]
		if ex == nil {
			continue
		}
		alert, err := ex.Value("polygraph_drift_alert")
		if err != nil || alert < 1 {
			continue
		}
		trained, terr := ex.Value("polygraph_model_trained_timestamp_seconds")
		baseline, berr := ex.Value("polygraph_drift_baseline_timestamp_seconds")
		if terr == nil && berr == nil && trained > 0 && baseline > 0 && trained < baseline {
			a.addf(RuleDriftStaleModel, SeverityFail, name,
				"drift alert active and deployed model (trained %.0f) predates the drift baseline (%.0f) — retrain overdue",
				trained, baseline)
			continue
		}
		a.addf(RuleDriftStaleModel, SeverityWarn, name, "drift alert active (PSI above threshold)")
	}
	a.pass(RuleDriftStaleModel, "no active drift alerts")
}

// checkFleetHash demands every replica serve the same model. Hashes
// come from model-info.json, falling back to the build of
// polygraph_model_hash-bearing fleet replica_info series when present.
func (a *analyzer) checkFleetHash() {
	hashes := map[string][]string{} // hash -> targets
	order := []string{}
	record := func(hash, target string) {
		if hash == "" {
			return
		}
		if _, ok := hashes[hash]; !ok {
			order = append(order, hash)
		}
		hashes[hash] = append(hashes[hash], target)
	}
	for _, name := range a.targetNames() {
		if data := a.b.TargetFile(name, ArtifactModelInfo); data != nil {
			var info struct {
				Hash string `json:"hash"`
			}
			if json.Unmarshal(data, &info) == nil {
				record(info.Hash, name)
			}
		}
	}
	if data := a.b.Files["files/"+FleetMetricsFile]; data != nil {
		ex := obs.ParseExpositionString(string(data))
		for _, s := range ex.Samples("polygraph_fleet_replica_info") {
			record(s.Label("model_hash"), "fleet:"+s.Label("replica"))
		}
	}
	if len(order) > 1 {
		parts := make([]string, len(order))
		for i, h := range order {
			short := h
			if len(short) > 12 {
				short = short[:12]
			}
			parts[i] = fmt.Sprintf("%s on %s", short, strings.Join(hashes[h], ","))
		}
		a.addf(RuleFleetHash, SeverityFail, "", "replicas disagree on the deployed model: %s", strings.Join(parts, "; "))
	}
	if len(order) == 0 {
		a.pass(RuleFleetHash, "no model hashes captured")
		return
	}
	a.pass(RuleFleetHash, "all replicas agree on one model hash")
}

// checkAuditAccounting verifies the ledger identity per target: every
// scored request (HTTP collections + TCP frames) is either durably
// recorded or counted as dropped.
func (a *analyzer) checkAuditAccounting() {
	evaluated := 0
	for _, name := range a.targetNames() {
		ex := a.expositions[name]
		if ex == nil {
			continue
		}
		records, rerr := ex.Value("polygraph_audit_records_total")
		dropped, derr := ex.Value("polygraph_audit_dropped_total")
		if rerr != nil || derr != nil || records+dropped == 0 {
			continue // no ledger configured (or empty): nothing to account
		}
		scored, serr := ex.Value("polygraph_collections_total")
		if serr != nil {
			continue
		}
		tcp, terr := ex.Value("polygraph_tcp_scored_total")
		if terr == nil {
			scored += tcp
		}
		evaluated++
		if records+dropped != scored {
			a.addf(RuleAuditAccounting, SeverityFail, name,
				"records(%.0f)+dropped(%.0f) != scored(%.0f): ledger lost or double-counted decisions",
				records, dropped, scored)
		}
	}
	a.pass(RuleAuditAccounting, "%d ledgers satisfy records+dropped==scored", evaluated)
}

// checkRejectSpike flags targets whose reject taxonomy dominates their
// traffic — a client-contract break or an attack, either way a page.
func (a *analyzer) checkRejectSpike() {
	for _, name := range a.targetNames() {
		ex := a.expositions[name]
		if ex == nil {
			continue
		}
		rejected := ex.Sum("polygraph_rejected_total")
		scored, err := ex.Value("polygraph_collections_total")
		if err != nil || rejected == 0 {
			continue
		}
		total := rejected + scored
		if total == 0 {
			continue
		}
		ratio := rejected / total
		if ratio < a.opts.RejectWarnRatio {
			continue
		}
		topReason, topCount := "", 0.0
		for _, s := range ex.Samples("polygraph_rejected_total") {
			if s.Value > topCount {
				topReason, topCount = s.Label("reason"), s.Value
			}
		}
		sev := SeverityWarn
		if ratio >= a.opts.RejectFailRatio {
			sev = SeverityFail
		}
		a.addf(RuleRejectSpike, sev, name,
			"%.1f%% of requests rejected (top reason %q, %.0f)", ratio*100, topReason, topCount)
	}
	a.pass(RuleRejectSpike, "reject ratios below %.0f%% everywhere", a.opts.RejectWarnRatio*100)
}

// checkFleetHealth reads the balancer's own exposition: ejected
// replicas still out of rotation and the transparent-retry rate.
func (a *analyzer) checkFleetHealth() {
	data := a.b.Files["files/"+FleetMetricsFile]
	if data == nil {
		a.pass(RuleFleetHealth, "no fleet exposition captured (single-target bundle)")
		return
	}
	ex := obs.ParseExpositionString(string(data))
	var ejected, healthy float64
	for _, s := range ex.Samples("polygraph_fleet_replicas") {
		switch s.Label("state") {
		case "ejected":
			ejected = s.Value
		case "healthy":
			healthy = s.Value
		}
	}
	if healthy == 0 && ejected > 0 {
		a.addf(RuleFleetHealth, SeverityFail, "", "no healthy replicas; %.0f ejected", ejected)
	} else if ejected > 0 {
		a.addf(RuleFleetHealth, SeverityWarn, "", "%.0f replica(s) ejected from rotation", ejected)
	}
	retries := ex.Sum("polygraph_fleet_retries_total")
	if retries > 0 {
		var scored float64
		for _, name := range a.targetNames() {
			if tex := a.expositions[name]; tex != nil {
				if v, err := tex.Value("polygraph_collections_total"); err == nil {
					scored += v
				}
			}
		}
		if scored > 0 && retries/scored >= a.opts.RetryWarnRatio {
			a.addf(RuleFleetHealth, SeverityWarn, "",
				"retry rate %.2f%% (%.0f retries / %.0f scored) above %.2f%%",
				retries/scored*100, retries, scored, a.opts.RetryWarnRatio*100)
		}
	}
	a.pass(RuleFleetHealth, "fleet healthy: no ejections, retry rate nominal")
}

// checkSLO replays the SLO spec over each captured exposition — the
// lifetime counters evaluated as one window (the run's overall SLI) —
// and additionally fails on any live burn-rate alert gauge the capture
// caught firing (polygraph_slo_alert on targets, polygraph_fleet_slo_alert
// in the fleet exposition). The offline evaluation catches runs that
// breached an objective on aggregate; the gauge check catches a
// transient burn the lifetime average would wash out.
func (a *analyzer) checkSLO() {
	spec := a.opts.SLOSpec
	if spec == nil {
		spec = slo.DefaultSpec()
	}
	evaluated := 0
	for _, name := range a.targetNames() {
		ex := a.expositions[name]
		if ex == nil {
			continue
		}
		for _, res := range slo.Evaluate(spec, ex) {
			if res.Vacuous {
				continue
			}
			evaluated++
			if !res.Met {
				a.addf(RuleSLO, SeverityFail, name,
					"objective %q violated over the run: SLI %.5f < target %.5f (%.0f good / %.0f total)",
					res.Objective, res.SLI, res.Target, res.Good, res.Total)
			}
		}
		for _, s := range ex.Samples("polygraph_slo_alert") {
			if s.Value >= 1 {
				a.addf(RuleSLO, SeverityFail, name,
					"burn-rate alert firing at capture time for objective %q", s.Label("objective"))
			}
		}
	}
	if data := a.b.Files["files/"+FleetMetricsFile]; data != nil {
		ex := obs.ParseExpositionString(string(data))
		for _, s := range ex.Samples("polygraph_fleet_slo_alert") {
			if s.Value >= 1 {
				a.addf(RuleSLO, SeverityFail, "fleet",
					"fleet-level burn-rate alert firing at capture time for objective %q", s.Label("objective"))
			}
		}
	}
	a.pass(RuleSLO, "%d non-vacuous objectives met under spec %q, no burn-rate alerts at capture", evaluated, spec.Name)
}
