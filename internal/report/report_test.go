package report

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
	"time"
)

// parseSVG validates that a chart is well-formed XML.
func parseSVG(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("svg not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func TestLineChartWellFormed(t *testing.T) {
	svg := LineChart("Cumulative variance", "components", "variance", []Series{
		{Name: "cumvar", Points: []Point{{1, 0.9}, {2, 0.95}, {3, 0.99}, {7, 0.996}}},
	}, false)
	parseSVG(t, svg)
	for _, needle := range []string{"polyline", "Cumulative variance", "components"} {
		if !strings.Contains(svg, needle) {
			t.Fatalf("chart missing %q", needle)
		}
	}
}

func TestLineChartLogScale(t *testing.T) {
	svg := LineChart("WCSS", "k", "WCSS", []Series{
		{Points: []Point{{1, 466662}, {5, 25097}, {11, 587}, {20, 47}}},
	}, true)
	parseSVG(t, svg)
	if !strings.Contains(svg, "1e") {
		t.Fatal("log chart has no log-scale tick labels")
	}
	// Zero/negative values are skipped, not crashed on.
	svg = LineChart("x", "x", "y", []Series{{Points: []Point{{1, 0}, {2, 10}}}}, true)
	parseSVG(t, svg)
}

func TestLineChartMultiSeriesLegend(t *testing.T) {
	svg := LineChart("t", "x", "y", []Series{
		{Name: "alpha", Points: []Point{{1, 1}, {2, 2}}},
		{Name: "beta", Points: []Point{{1, 2}, {2, 1}}},
	}, false)
	parseSVG(t, svg)
	if !strings.Contains(svg, "alpha") || !strings.Contains(svg, "beta") {
		t.Fatal("legend missing series names")
	}
}

func TestLineChartDegenerate(t *testing.T) {
	parseSVG(t, LineChart("empty", "x", "y", nil, false))
	parseSVG(t, LineChart("single", "x", "y", []Series{{Points: []Point{{3, 5}}}}, false))
	parseSVG(t, LineChart("flat", "x", "y", []Series{{Points: []Point{{1, 5}, {2, 5}}}}, false))
}

func TestBarChartWellFormed(t *testing.T) {
	svg := BarChart("Anonymity", "bucket", "%", []string{"1", "2-10", ">50"}, []float64{0.01, 0.9, 99.1})
	parseSVG(t, svg)
	if strings.Count(svg, "<rect") < 4 { // background + 3 bars
		t.Fatal("bars missing")
	}
	parseSVG(t, BarChart("empty", "x", "y", nil, nil))
	parseSVG(t, BarChart("zero", "x", "y", []string{"a"}, []float64{0}))
}

func TestEscaping(t *testing.T) {
	svg := LineChart(`<script>&"attack"`, "x", "y", []Series{{Points: []Point{{1, 1}, {2, 2}}}}, false)
	parseSVG(t, svg)
	if strings.Contains(svg, "<script>") {
		t.Fatal("title not escaped")
	}
	var buf bytes.Buffer
	b := New(`Report <with> "quotes" & ampersands`)
	b.AddHeading("H <1>", "prose & more")
	b.AddTable("cap <t>", []string{"a<b"}, [][]string{{"x&y"}})
	b.AddProse("plain <text>")
	if err := b.Render(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banned := range []string{"<with>", "<1>", "a<b", "<text>"} {
		if strings.Contains(out, banned) {
			t.Fatalf("unescaped content %q in document", banned)
		}
	}
}

func TestBuilderDocumentShape(t *testing.T) {
	b := New("Browser Polygraph report")
	b.AddHeading("Table 3", "cluster table")
	b.AddTable("Table 3", []string{"cluster", "user-agents"}, [][]string{
		{"0", "Chrome 110-113"}, {"1", "Firefox 101-114"},
	})
	b.AddFigure("Figure 2", LineChart("f2", "x", "y", []Series{{Points: []Point{{1, 1}, {2, 2}}}}, false))
	var buf bytes.Buffer
	ts := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	if err := b.Render(&buf, ts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{
		"<!DOCTYPE html>", "<h1>Browser Polygraph report</h1>", "<table>",
		"Firefox 101-114", "<figure>", "<svg", "2026-07-06T12:00:00Z",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("document missing %q", needle)
		}
	}
	// Deterministic.
	var again bytes.Buffer
	if err := b.Render(&again, ts); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatal("render not deterministic")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Fatalf("tick count %d", len(ticks))
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not increasing")
		}
	}
	// Degenerate range.
	if got := niceTicks(5, 5, 4); len(got) == 0 {
		t.Fatal("no ticks for degenerate range")
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(5) != "5" {
		t.Fatalf("formatTick(5) = %s", formatTick(5))
	}
	if formatTick(0.25) != "0.25" {
		t.Fatalf("formatTick(0.25) = %s", formatTick(0.25))
	}
}
