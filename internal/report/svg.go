// Package report renders the reproduction's results as a self-contained
// HTML document with inline SVG figures — the shareable artifact form of
// cmd/reproduce's text output. Everything is stdlib: SVG is assembled
// directly, with proper XML escaping, nice-number axes, and no scripts.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample of a chart series.
type Point struct {
	X, Y float64
}

// Series is a named line on a chart.
type Series struct {
	Name   string
	Points []Point
}

// chart geometry shared by the renderers.
const (
	chartW    = 640
	chartH    = 360
	marginL   = 64
	marginR   = 24
	marginTop = 36
	marginBot = 48
)

// palette cycles per series; picked for contrast on white.
var palette = [...]string{"#1f6feb", "#d1242f", "#1a7f37", "#9a6700", "#8250df", "#bf3989"}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceTicks returns ~n human-friendly tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi <= lo {
		hi = lo + 1
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag >= 5:
		step = 10 * mag
	case rawStep/mag >= 2:
		step = 5 * mag
	case rawStep/mag >= 1:
		step = 2 * mag
	default:
		step = mag
	}
	start := math.Floor(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/2; v += step {
		if v >= lo-step/2 {
			ticks = append(ticks, v)
		}
	}
	return ticks
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// LineChart renders series as an SVG line chart. logY plots the y axis
// on a log10 scale (used for the WCSS elbow, which spans four decades).
func LineChart(title, xLabel, yLabel string, series []Series, logY bool) string {
	var lo, hi, xlo, xhi float64
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			y := p.Y
			if logY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if first {
				lo, hi, xlo, xhi = y, y, p.X, p.X
				first = false
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
			xlo = math.Min(xlo, p.X)
			xhi = math.Max(xhi, p.X)
		}
	}
	if first {
		lo, hi, xlo, xhi = 0, 1, 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	if xhi == xlo {
		xhi = xlo + 1
	}

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginTop - marginBot)
	xPix := func(x float64) float64 { return marginL + (x-xlo)/(xhi-xlo)*plotW }
	yPix := func(y float64) float64 {
		if logY {
			y = math.Log10(math.Max(y, 1e-12))
		}
		return float64(marginTop) + (1-(y-lo)/(hi-lo))*plotH
	}

	var b strings.Builder
	chartHeader(&b, title)
	// Axes and grid.
	for _, t := range niceTicks(lo, hi, 6) {
		y := float64(marginTop) + (1-(t-lo)/(hi-lo))*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#d8dee4"/>`,
			marginL, y, chartW-marginR, y)
		label := formatTick(t)
		if logY {
			label = "1e" + formatTick(t)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11" fill="#57606a">%s</text>`,
			marginL-6, y+4, esc(label))
	}
	for _, t := range niceTicks(xlo, xhi, 8) {
		x := xPix(t)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11" fill="#57606a">%s</text>`,
			x, chartH-marginBot+18, esc(formatTick(t)))
	}
	axisFrame(&b, xLabel, yLabel)

	// Series.
	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for _, p := range s.Points {
			if logY && p.Y <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPix(p.X), yPix(p.Y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		for _, p := range s.Points {
			if logY && p.Y <= 0 {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, xPix(p.X), yPix(p.Y), color)
		}
		if len(series) > 1 {
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
				chartW-marginR-150, marginTop+18*si, color)
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#24292f">%s</text>`,
				chartW-marginR-135, marginTop+9+18*si, esc(s.Name))
		}
	}
	b.WriteString("</svg>")
	return b.String()
}

// BarChart renders labeled bars (used for the anonymity-set buckets and
// relative-WCSS figures).
func BarChart(title, xLabel, yLabel string, labels []string, values []float64) string {
	n := len(values)
	var b strings.Builder
	chartHeader(&b, title)
	if n == 0 {
		b.WriteString("</svg>")
		return b.String()
	}
	hi := 0.0
	for _, v := range values {
		hi = math.Max(hi, v)
	}
	if hi == 0 {
		hi = 1
	}
	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginTop - marginBot)
	for _, t := range niceTicks(0, hi, 6) {
		y := float64(marginTop) + (1-t/hi)*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#d8dee4"/>`,
			marginL, y, chartW-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11" fill="#57606a">%s</text>`,
			marginL-6, y+4, esc(formatTick(t)))
	}
	axisFrame(&b, xLabel, yLabel)
	slot := plotW / float64(n)
	barW := slot * 0.65
	for i, v := range values {
		x := float64(marginL) + slot*float64(i) + (slot-barW)/2
		h := v / hi * plotH
		y := float64(marginTop) + plotH - h
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			x, y, barW, h, palette[0])
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11" fill="#57606a">%s</text>`,
			x+barW/2, chartH-marginBot+18, esc(labels[i]))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10" fill="#24292f">%s</text>`,
			x+barW/2, y-4, esc(formatTick(v)))
	}
	b.WriteString("</svg>")
	return b.String()
}

func chartHeader(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, chartW, chartH)
	fmt.Fprintf(b, `<text x="%d" y="20" font-size="14" font-weight="bold" fill="#24292f">%s</text>`,
		marginL, esc(title))
}

func axisFrame(b *strings.Builder, xLabel, yLabel string) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#24292f"/>`,
		marginL, chartH-marginBot, chartW-marginR, chartH-marginBot)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#24292f"/>`,
		marginL, marginTop, marginL, chartH-marginBot)
	fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="middle" font-size="12" fill="#24292f">%s</text>`,
		(marginL+chartW-marginR)/2, chartH-10, esc(xLabel))
	fmt.Fprintf(b, `<text x="14" y="%d" font-size="12" fill="#24292f" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`,
		(marginTop+chartH-marginBot)/2, (marginTop+chartH-marginBot)/2, esc(yLabel))
}
