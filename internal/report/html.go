package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Builder assembles the HTML document section by section.
type Builder struct {
	title    string
	sections []string
}

// New starts a report with the given document title.
func New(title string) *Builder {
	return &Builder{title: title}
}

// AddHeading inserts a section heading with optional prose.
func (b *Builder) AddHeading(heading, prose string) {
	var s strings.Builder
	fmt.Fprintf(&s, "<h2>%s</h2>", esc(heading))
	if prose != "" {
		fmt.Fprintf(&s, "<p>%s</p>", esc(prose))
	}
	b.sections = append(b.sections, s.String())
}

// AddTable inserts an HTML table.
func (b *Builder) AddTable(caption string, headers []string, rows [][]string) {
	var s strings.Builder
	s.WriteString(`<table>`)
	if caption != "" {
		fmt.Fprintf(&s, "<caption>%s</caption>", esc(caption))
	}
	s.WriteString("<thead><tr>")
	for _, h := range headers {
		fmt.Fprintf(&s, "<th>%s</th>", esc(h))
	}
	s.WriteString("</tr></thead><tbody>")
	for _, row := range rows {
		s.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(&s, "<td>%s</td>", esc(cell))
		}
		s.WriteString("</tr>")
	}
	s.WriteString("</tbody></table>")
	b.sections = append(b.sections, s.String())
}

// AddFigure inserts a pre-rendered SVG (from LineChart/BarChart) with a
// caption.
func (b *Builder) AddFigure(caption, svg string) {
	b.sections = append(b.sections,
		fmt.Sprintf(`<figure>%s<figcaption>%s</figcaption></figure>`, svg, esc(caption)))
}

// AddProse inserts a paragraph.
func (b *Builder) AddProse(text string) {
	b.sections = append(b.sections, fmt.Sprintf("<p>%s</p>", esc(text)))
}

// Render writes the complete document. The timestamp parameter keeps the
// output deterministic for tests (zero time omits the line).
func (b *Builder) Render(w io.Writer, generated time.Time) error {
	var s strings.Builder
	s.WriteString("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&s, "<title>%s</title>", esc(b.title))
	s.WriteString(`<style>
body { font-family: -apple-system, "Segoe UI", sans-serif; max-width: 860px; margin: 2rem auto; padding: 0 1rem; color: #24292f; }
h1 { border-bottom: 2px solid #d8dee4; padding-bottom: .4rem; }
h2 { margin-top: 2.2rem; border-bottom: 1px solid #d8dee4; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: 0.92rem; }
caption { caption-side: top; text-align: left; font-weight: 600; padding-bottom: .4rem; }
th, td { border: 1px solid #d8dee4; padding: .35rem .7rem; text-align: left; }
th { background: #f6f8fa; }
figure { margin: 1.2rem 0; }
figcaption { font-size: .85rem; color: #57606a; margin-top: .3rem; }
</style></head><body>`)
	fmt.Fprintf(&s, "<h1>%s</h1>", esc(b.title))
	if !generated.IsZero() {
		fmt.Fprintf(&s, `<p><em>generated %s</em></p>`, esc(generated.UTC().Format(time.RFC3339)))
	}
	for _, sec := range b.sections {
		s.WriteString(sec)
		s.WriteString("\n")
	}
	s.WriteString("</body></html>\n")
	_, err := io.WriteString(w, s.String())
	return err
}
