// Package dbscan implements density-based spatial clustering (Ester et
// al., 1996) as an ablation substrate: the paper chose k-means for its
// "efficiency and straightforward implementation" (§6.4.3); DBSCAN is the
// natural counterfactual because it discovers the cluster count itself
// and isolates noise points natively — the two jobs Browser Polygraph
// delegates to the elbow method and the Isolation Forest.
package dbscan

import (
	"fmt"
	"math"
	"sort"

	"polygraph/internal/matrix"
)

// Noise is the label assigned to points in no cluster.
const Noise = -1

// Config parameterizes a run.
type Config struct {
	// Eps is the neighborhood radius.
	Eps float64
	// MinPts is the minimum neighborhood mass (including the point
	// itself) for a core point.
	MinPts int
	// Weights optionally assigns each row a multiplicity — the standard
	// trick for data dominated by exact duplicates (collapse them and
	// weight the survivors; production fingerprint traffic is ~95%
	// duplicates). Nil means every row weighs 1. Neighborhood mass is
	// the sum of neighbor weights.
	Weights []float64
}

// Result holds the clustering.
type Result struct {
	// Labels assigns each row a cluster id (0..K-1) or Noise.
	Labels []int
	// K is the number of clusters found.
	K int
	// NoiseCount is the number of noise points.
	NoiseCount int
}

// Run clusters the rows of m. The implementation uses a grid index over
// the first two dimensions to prune the neighbor search, falling back to
// linear scans for small inputs; good enough for the ≤ a few hundred
// thousand rows this repository feeds it.
func Run(m *matrix.Dense, cfg Config) (*Result, error) {
	n, d := m.Dims()
	if n == 0 || d == 0 {
		return nil, fmt.Errorf("dbscan: empty input %dx%d", n, d)
	}
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("dbscan: Eps must be positive, have %v", cfg.Eps)
	}
	if cfg.MinPts < 1 {
		return nil, fmt.Errorf("dbscan: MinPts must be ≥ 1, have %d", cfg.MinPts)
	}
	if cfg.Weights != nil && len(cfg.Weights) != n {
		return nil, fmt.Errorf("dbscan: %d weights for %d rows", len(cfg.Weights), n)
	}
	mass := func(neighbors []int) float64 {
		if cfg.Weights == nil {
			return float64(len(neighbors))
		}
		m := 0.0
		for _, j := range neighbors {
			m += cfg.Weights[j]
		}
		return m
	}

	idx := newGridIndex(m, cfg.Eps)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	clusterID := 0
	var seeds []int
	for i := 0; i < n; i++ {
		if labels[i] != -2 {
			continue
		}
		neighbors := idx.rangeQuery(m, i, cfg.Eps)
		if mass(neighbors) < float64(cfg.MinPts) {
			labels[i] = Noise
			continue
		}
		labels[i] = clusterID
		seeds = append(seeds[:0], neighbors...)
		for s := 0; s < len(seeds); s++ {
			j := seeds[s]
			if labels[j] == Noise {
				labels[j] = clusterID // border point
			}
			if labels[j] != -2 {
				continue
			}
			labels[j] = clusterID
			jn := idx.rangeQuery(m, j, cfg.Eps)
			if mass(jn) >= float64(cfg.MinPts) {
				seeds = append(seeds, jn...)
			}
		}
		clusterID++
	}

	res := &Result{Labels: labels, K: clusterID}
	for _, l := range labels {
		if l == Noise {
			res.NoiseCount++
		}
	}
	return res, nil
}

// gridIndex buckets points by their first two coordinates in eps-sized
// cells; a range query inspects the 3×3 cell patch. Distances are still
// exact over all dimensions — the grid only prunes candidates, which is
// valid because |Δdim0| ≤ dist and |Δdim1| ≤ dist.
type gridIndex struct {
	cells map[[2]int][]int
	eps   float64
	dims  int
}

func newGridIndex(m *matrix.Dense, eps float64) *gridIndex {
	n, d := m.Dims()
	g := &gridIndex{cells: make(map[[2]int][]int, n/4+1), eps: eps, dims: d}
	for i := 0; i < n; i++ {
		key := g.cellOf(m.RawRow(i))
		g.cells[key] = append(g.cells[key], i)
	}
	return g
}

func (g *gridIndex) cellOf(row []float64) [2]int {
	var key [2]int
	key[0] = int(math.Floor(row[0] / g.eps))
	if g.dims > 1 {
		key[1] = int(math.Floor(row[1] / g.eps))
	}
	return key
}

func (g *gridIndex) rangeQuery(m *matrix.Dense, i int, eps float64) []int {
	row := m.RawRow(i)
	center := g.cellOf(row)
	eps2 := eps * eps
	var out []int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			key := [2]int{center[0] + dx, center[1] + dy}
			for _, j := range g.cells[key] {
				if sqDist(row, m.RawRow(j)) <= eps2 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// KDistance returns the sorted k-th nearest-neighbor distance of every
// point — the standard diagnostic for choosing Eps (look for the knee).
// O(n²); intended for subsampled inputs.
func KDistance(m *matrix.Dense, k int) ([]float64, error) {
	n, _ := m.Dims()
	if k < 1 || k >= n {
		return nil, fmt.Errorf("dbscan: k=%d out of range [1,%d)", k, n)
	}
	out := make([]float64, n)
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		row := m.RawRow(i)
		for j := 0; j < n; j++ {
			dists[j] = sqDist(row, m.RawRow(j))
		}
		sort.Float64s(dists)
		out[i] = math.Sqrt(dists[k]) // dists[0] is self
	}
	sort.Float64s(out)
	return out, nil
}
