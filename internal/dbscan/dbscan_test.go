package dbscan

import (
	"testing"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

func blobs(centers [][]float64, n int, spread float64, seed uint64) (*matrix.Dense, []int) {
	p := rng.New(seed)
	var rows [][]float64
	var truth []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			row := make([]float64, len(c))
			for j := range row {
				row[j] = c[j] + p.NormFloat64()*spread
			}
			rows = append(rows, row)
			truth = append(truth, ci)
		}
	}
	return matrix.FromRows(rows), truth
}

var centers3 = [][]float64{{0, 0}, {20, 0}, {0, 20}}

func TestRunErrors(t *testing.T) {
	m, _ := blobs(centers3, 10, 0.5, 1)
	if _, err := Run(matrix.NewDense(0, 2), Config{Eps: 1, MinPts: 3}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Run(m, Config{Eps: 0, MinPts: 3}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := Run(m, Config{Eps: 1, MinPts: 0}); err == nil {
		t.Fatal("minpts=0 accepted")
	}
}

func TestDiscoversClusterCount(t *testing.T) {
	m, truth := blobs(centers3, 150, 0.6, 2)
	res, err := Run(m, Config{Eps: 2.0, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("found %d clusters, want 3", res.K)
	}
	// Each true blob maps to exactly one discovered cluster.
	blobTo := map[int]int{}
	for i, lbl := range res.Labels {
		if lbl == Noise {
			continue
		}
		if prev, ok := blobTo[truth[i]]; ok && prev != lbl {
			t.Fatalf("blob %d split across clusters", truth[i])
		}
		blobTo[truth[i]] = lbl
	}
	if res.NoiseCount > 10 {
		t.Fatalf("%d noise points on clean blobs", res.NoiseCount)
	}
}

func TestIsolatesNoise(t *testing.T) {
	m, _ := blobs(centers3, 100, 0.5, 3)
	// Add far-away isolated points.
	n, d := m.Dims()
	rows := make([][]float64, 0, n+3)
	for i := 0; i < n; i++ {
		rows = append(rows, m.Row(i))
	}
	rows = append(rows, []float64{500, 500}, []float64{-400, 300}, []float64{100, -600})
	m2 := matrix.FromRows(rows)
	_ = d
	res, err := Run(m2, Config{Eps: 2.0, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := n; i < n+3; i++ {
		if res.Labels[i] != Noise {
			t.Fatalf("isolated point %d labeled %d", i, res.Labels[i])
		}
	}
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	if res.NoiseCount < 3 {
		t.Fatalf("NoiseCount = %d", res.NoiseCount)
	}
}

func TestEpsTooSmallAllNoise(t *testing.T) {
	m, _ := blobs(centers3, 50, 1.0, 4)
	res, err := Run(m, Config{Eps: 0.001, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 || res.NoiseCount != 150 {
		t.Fatalf("K=%d noise=%d, want all noise", res.K, res.NoiseCount)
	}
}

func TestEpsTooLargeOneCluster(t *testing.T) {
	m, _ := blobs(centers3, 50, 1.0, 5)
	res, err := Run(m, Config{Eps: 1000, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || res.NoiseCount != 0 {
		t.Fatalf("K=%d noise=%d, want one cluster", res.K, res.NoiseCount)
	}
}

func TestDeterministic(t *testing.T) {
	m, _ := blobs(centers3, 80, 0.8, 6)
	a, err := Run(m, Config{Eps: 2, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, Config{Eps: 2, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ between runs")
		}
	}
}

func TestGridMatchesBruteForce(t *testing.T) {
	// The grid index must not change results vs a brute-force
	// neighborhood (validated by comparing labels on a small set with a
	// grid cell size that forces multi-cell queries).
	m, _ := blobs([][]float64{{0, 0}, {5, 5}}, 60, 1.2, 7)
	res, err := Run(m, Config{Eps: 1.5, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: recompute core-point property directly.
	n, _ := m.Dims()
	for i := 0; i < n; i++ {
		count := 0
		for j := 0; j < n; j++ {
			if sqDist(m.RawRow(i), m.RawRow(j)) <= 1.5*1.5 {
				count++
			}
		}
		isCore := count >= 4
		if isCore && res.Labels[i] == Noise {
			t.Fatalf("core point %d labeled noise", i)
		}
	}
}

func TestHighDimensional(t *testing.T) {
	// 7-dim blobs (the PCA space the pipeline clusters in).
	centers := [][]float64{
		{0, 0, 0, 0, 0, 0, 0},
		{10, 10, 10, 10, 10, 10, 10},
	}
	m, _ := blobs(centers, 100, 0.5, 8)
	res, err := Run(m, Config{Eps: 3, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d in 7 dims", res.K)
	}
}

func TestKDistance(t *testing.T) {
	m, _ := blobs(centers3, 50, 0.5, 9)
	kd, err := KDistance(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(kd) != 150 {
		t.Fatalf("len = %d", len(kd))
	}
	for i := 1; i < len(kd); i++ {
		if kd[i] < kd[i-1] {
			t.Fatal("k-distances not sorted")
		}
	}
	if kd[0] <= 0 {
		t.Fatalf("kd[0] = %v", kd[0])
	}
	if _, err := KDistance(m, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KDistance(m, 150); err == nil {
		t.Fatal("k=n accepted")
	}
}

func BenchmarkRun(b *testing.B) {
	m, _ := blobs(centers3, 1000, 0.8, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, Config{Eps: 2, MinPts: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
