// Package loadgen is the deterministic load/soak harness for the serving
// path. It synthesizes a realistic request mix from the repository's own
// substrates — benign browser populations via internal/ua +
// internal/browser + internal/fingerprint, fraud-browser sessions via
// internal/fraud.Tool.Spoof — encodes them with the ≤1 KB wire codec, and
// drives a collect.Server (in-process or live) through scripted scenario
// phases with per-phase concurrency and target-RPS pacing.
//
// Everything the generator does is PCG-seeded: the same Scenario always
// produces a byte-identical request stream, and (against a deterministic
// server) an identical Ledger, which is what lets CI diff two runs and
// gate on the result.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration wraps time.Duration with JSON encoding as a Go duration string
// ("250ms", "3s"), the natural notation for scenario files.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a bare number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("loadgen: duration must be a string or nanoseconds: %s", data)
	}
	*d = Duration(n)
	return nil
}

// Phase is one scripted traffic stage (ramp / steady / burst / ...).
// Exactly one of Requests (deterministic fixed-count mode) or Duration
// (wall-clock soak mode) must be set. Fixed-count phases are what the CI
// reproducibility gate uses: the ledger of a count-bounded run does not
// depend on scheduling or machine speed.
type Phase struct {
	Name string `json:"name"`
	// Requests is the exact number of requests the phase sends (0 when
	// Duration-bounded).
	Requests int `json:"requests,omitempty"`
	// Duration bounds the phase by wall clock instead of request count.
	// Duration-bounded phases trade reproducible ledgers for open-ended
	// soak pressure.
	Duration Duration `json:"duration,omitempty"`
	// Concurrency is the number of in-flight workers (default 1).
	Concurrency int `json:"concurrency,omitempty"`
	// RPS paces the phase at a target request rate across all workers;
	// 0 sends as fast as the workers can.
	RPS float64 `json:"rps,omitempty"`
}

// Scenario is a full scripted run: the traffic mix and the phase script.
type Scenario struct {
	Name string `json:"name"`
	// Seed drives every randomized choice; same seed, same stream.
	Seed uint64 `json:"seed"`
	// Pool is the number of distinct pre-generated sessions; the request
	// stream cycles through the pool in index order.
	Pool int `json:"pool"`
	// MaxVersion caps the modeled release universe (default 114, the
	// paper's training window).
	MaxVersion int `json:"max_version,omitempty"`
	// FraudMix is the fraction of sessions driven by fraud browsers
	// (fraud.Tool.Spoof); the rest are honest populations.
	FraudMix float64 `json:"fraud_mix"`
	// JSONMix is the fraction of requests posted to /v1/collect-json in
	// the sendBeacon JSON frame; the rest use the compact binary codec
	// on /v1/collect.
	JSONMix float64 `json:"json_mix"`
	// InvalidMix is the fraction of deliberately malformed payloads, for
	// exercising the rejection taxonomy (0 in the CI gate, which asserts
	// zero non-2xx).
	InvalidMix float64 `json:"invalid_mix"`
	// Budget bounds the whole run's wall clock (0 = none). A run that
	// exhausts its budget aborts remaining phases and says so in the
	// report.
	Budget Duration `json:"budget,omitempty"`

	Phases []Phase `json:"phases"`
}

// Validate rejects impossible scenarios before any traffic is built.
func (sc *Scenario) Validate() error {
	if sc.Pool <= 0 {
		return fmt.Errorf("loadgen: scenario pool must be positive, got %d", sc.Pool)
	}
	if sc.FraudMix < 0 || sc.FraudMix > 1 {
		return fmt.Errorf("loadgen: fraud_mix %v outside [0,1]", sc.FraudMix)
	}
	if sc.JSONMix < 0 || sc.JSONMix > 1 {
		return fmt.Errorf("loadgen: json_mix %v outside [0,1]", sc.JSONMix)
	}
	if sc.InvalidMix < 0 || sc.InvalidMix > 1 {
		return fmt.Errorf("loadgen: invalid_mix %v outside [0,1]", sc.InvalidMix)
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("loadgen: scenario %q has no phases", sc.Name)
	}
	for i, p := range sc.Phases {
		if p.Name == "" {
			return fmt.Errorf("loadgen: phase %d has no name", i)
		}
		if (p.Requests > 0) == (p.Duration > 0) {
			return fmt.Errorf("loadgen: phase %q must set exactly one of requests or duration", p.Name)
		}
		if p.Requests < 0 {
			return fmt.Errorf("loadgen: phase %q has negative requests", p.Name)
		}
		if p.Concurrency < 0 {
			return fmt.Errorf("loadgen: phase %q has negative concurrency", p.Name)
		}
		if p.RPS < 0 {
			return fmt.Errorf("loadgen: phase %q has negative rps", p.Name)
		}
	}
	return nil
}

// maxVersion applies the default release-universe cap.
func (sc *Scenario) maxVersion() int {
	if sc.MaxVersion == 0 {
		return 114
	}
	return sc.MaxVersion
}

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read scenario: %w", err)
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("loadgen: parse scenario %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// ShortScenario is the deterministic smoke scenario the CI gate runs: a
// few seconds of fixed-count ramp → steady → burst with a 2% fraud mix
// and no invalid traffic (the gate asserts zero non-2xx).
func ShortScenario(seed uint64) *Scenario {
	return &Scenario{
		Name:     "short",
		Seed:     seed,
		Pool:     512,
		FraudMix: 0.02,
		JSONMix:  0.25,
		Budget:   Duration(2 * time.Minute),
		Phases: []Phase{
			{Name: "ramp", Requests: 400, Concurrency: 2, RPS: 400},
			{Name: "steady", Requests: 1600, Concurrency: 4},
			{Name: "burst", Requests: 800, Concurrency: 16},
		},
	}
}

// DefaultScenario is a heavier mixed soak: paced steady state framed by a
// ramp and a burst, sized for a laptop-scale box.
func DefaultScenario(seed uint64) *Scenario {
	return &Scenario{
		Name:     "default",
		Seed:     seed,
		Pool:     4096,
		FraudMix: 0.02,
		JSONMix:  0.25,
		Budget:   Duration(10 * time.Minute),
		Phases: []Phase{
			{Name: "ramp", Requests: 2000, Concurrency: 4, RPS: 1000},
			{Name: "steady", Duration: Duration(30 * time.Second), Concurrency: 8, RPS: 2000},
			{Name: "burst", Requests: 20000, Concurrency: 32},
		},
	}
}
