package loadgen

import "polygraph/internal/obs"

// The power-of-two latency histogram started here and was promoted to
// internal/obs so the serving tier can export the same buckets as
// Prometheus histogram families; loadgen is now a consumer. The aliases
// keep the harness API (and its JSON report shapes) unchanged.

// Hist is a fixed-bucket exponential latency histogram; see obs.Hist.
type Hist = obs.Hist

// Quantiles is the summary the reports carry; see obs.Quantiles.
type Quantiles = obs.Quantiles
