package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestScenarioFileRoundTrip(t *testing.T) {
	sc := &Scenario{
		Name:       "soak",
		Seed:       99,
		Pool:       256,
		MaxVersion: 119,
		FraudMix:   0.05,
		JSONMix:    0.5,
		Budget:     Duration(90 * time.Second),
		Phases: []Phase{
			{Name: "ramp", Requests: 100, Concurrency: 2, RPS: 50},
			{Name: "steady", Duration: Duration(30 * time.Second), Concurrency: 8, RPS: 200},
		},
	}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "soak.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sc.Name || got.Seed != sc.Seed || got.Pool != sc.Pool {
		t.Fatalf("round trip lost headers: %+v", got)
	}
	if len(got.Phases) != 2 || got.Phases[1].Duration != Duration(30*time.Second) {
		t.Fatalf("round trip lost phases: %+v", got.Phases)
	}
	if got.Budget != Duration(90*time.Second) {
		t.Fatalf("budget = %v", time.Duration(got.Budget))
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil || d != Duration(250*time.Millisecond) {
		t.Fatalf("string form: %v %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`1500000000`), &d); err != nil || d != Duration(1500*time.Millisecond) {
		t.Fatalf("numeric form: %v %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`"nonsense"`), &d); err == nil {
		t.Fatal("nonsense duration accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	valid := func() *Scenario {
		return &Scenario{
			Name: "ok", Pool: 8, FraudMix: 0.1, JSONMix: 0.2,
			Phases: []Phase{{Name: "p", Requests: 10, Concurrency: 1}},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		break_ func(*Scenario)
	}{
		{"zero pool", func(s *Scenario) { s.Pool = 0 }},
		{"fraud mix over 1", func(s *Scenario) { s.FraudMix = 1.5 }},
		{"negative json mix", func(s *Scenario) { s.JSONMix = -0.1 }},
		{"invalid mix over 1", func(s *Scenario) { s.InvalidMix = 2 }},
		{"no phases", func(s *Scenario) { s.Phases = nil }},
		{"unnamed phase", func(s *Scenario) { s.Phases[0].Name = "" }},
		{"neither bound", func(s *Scenario) { s.Phases[0].Requests = 0 }},
		{"both bounds", func(s *Scenario) { s.Phases[0].Duration = Duration(time.Second) }},
		{"negative rps", func(s *Scenario) { s.Phases[0].RPS = -1 }},
	}
	for _, tc := range cases {
		sc := valid()
		tc.break_(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBuiltinScenariosValid(t *testing.T) {
	for _, sc := range []*Scenario{ShortScenario(1), DefaultScenario(1)} {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin scenario %q invalid: %v", sc.Name, err)
		}
	}
}
