package loadgen

import (
	"context"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"polygraph/internal/collect"
)

// freshTCPServer stands up an HTTP server with a frame-coalescing TCP
// listener attached (shared store and tracer), mirroring what
// cmd/loadgen -tcp builds in-process.
func freshTCPServer(t testing.TB) (baseURL, tcpAddr string) {
	t.Helper()
	srv, err := collect.NewServer(collect.Config{Model: sharedModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	tcpSrv, err := collect.NewTCPServer(collect.Config{
		Model:  sharedModel(t),
		Store:  srv.Store(),
		Tracer: srv.Tracer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachTCP(tcpSrv)
	go tcpSrv.Serve(ln)
	t.Cleanup(func() { tcpSrv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts.URL, ln.Addr().String()
}

// tcpScenario is smallScenario constrained to what TCP mode can carry:
// binary-only frames, nothing deliberately malformed.
func tcpScenario(seed uint64) *Scenario {
	sc := smallScenario(seed)
	sc.JSONMix = 0
	sc.InvalidMix = 0
	return sc
}

func TestRunTCPDeterministic(t *testing.T) {
	sc := tcpScenario(42)
	pool, err := BuildPool(sc, sharedModel(t).Features)
	if err != nil {
		t.Fatal(err)
	}

	run := func() *Report {
		baseURL, tcpAddr := freshTCPServer(t)
		report, err := Run(context.Background(), Options{
			Scenario: sc,
			Pool:     pool,
			BaseURL:  baseURL,
			TCPAddr:  tcpAddr,
			TCPBatch: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	r1, r2 := run(), run()

	if r1.Ledger.Errors() != 0 {
		t.Fatalf("run had %d errors: %+v", r1.Ledger.Errors(), r1.Ledger)
	}
	if r1.Ledger.Sent != 360 {
		t.Fatalf("sent %d, want 360", r1.Ledger.Sent)
	}
	if !reflect.DeepEqual(r1.Ledger, r2.Ledger) {
		t.Fatalf("ledgers differ across identical runs:\n%+v\n%+v", r1.Ledger, r2.Ledger)
	}
	if cc := r1.CrossCheck; cc == nil || !cc.OK {
		t.Fatalf("cross-check failed: %+v", cc)
	}
	if _, ok := r1.Overall[EndpointTCPLabel]; !ok {
		t.Fatalf("no %q latency series in overall: %+v", EndpointTCPLabel, r1.Overall)
	}
	if r1.Ledger.Flagged == 0 {
		t.Fatal("no flagged decisions decoded from TCP replies")
	}
}

func TestRunTCPRejectsNonBinaryPool(t *testing.T) {
	sc := smallScenario(42) // JSONMix 0.3: some entries carry no payload
	pool, err := BuildPool(sc, sharedModel(t).Features)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Options{
		Scenario:       sc,
		Pool:           pool,
		TCPAddr:        "127.0.0.1:1",
		SkipCrossCheck: true,
	})
	if err == nil {
		t.Fatal("mixed-encoding pool accepted in TCP mode")
	}
}

func TestRunTCPBudgetTruncates(t *testing.T) {
	sc := tcpScenario(42)
	sc.Budget = Duration(time.Nanosecond)
	pool, err := BuildPool(sc, sharedModel(t).Features)
	if err != nil {
		t.Fatal(err)
	}
	_, tcpAddr := freshTCPServer(t)
	report, err := Run(context.Background(), Options{
		Scenario:       sc,
		Pool:           pool,
		TCPAddr:        tcpAddr,
		SkipCrossCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.BudgetExceeded {
		t.Fatal("nanosecond budget did not truncate the run")
	}
}
