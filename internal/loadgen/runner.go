package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/fleet"
	"polygraph/internal/obs"
)

// Options configures one harness run.
type Options struct {
	// Scenario scripts the run; required.
	Scenario *Scenario
	// Pool is the pre-generated request stream; required (build with
	// BuildPool against the deployed model's features).
	Pool *Pool
	// BaseURL is the target server root, e.g. "http://127.0.0.1:8080".
	// Ignored when Fleet is set.
	BaseURL string
	// Fleet, when set, routes every request through the balancer instead
	// of BaseURL: each send picks a healthy replica, reports the outcome
	// (ejecting on transport failure), and transparently retries on
	// another replica when the picked one was down. The cross-check then
	// generalizes to client-vs-sum-of-replicas: per-replica stat and
	// metric deltas are summed before reconciliation and reported
	// individually in CrossCheck.Replicas.
	Fleet *fleet.Balancer
	// Hook injects callbacks at deterministic points of the run — the
	// fleet drill uses Midpoint to kill a replica mid-phase.
	Hook *PhaseHook
	// Client overrides the HTTP client; nil builds one sized for the
	// scenario's peak concurrency.
	Client *http.Client
	// TCPAddr, when set, drives the framed TCP listener instead of the
	// HTTP endpoints: workers claim pool indices in blocks of TCPBatch
	// and pipeline each block through one TCPClient.SubmitBatch, which
	// exercises the server-side frame coalescer. The pool must be all
	// binary (json_mix 0, invalid_mix 0) so every entry carries a
	// decoded Payload. BaseURL stays required for the /metrics
	// cross-check (the HTTP server the listener is attached to) unless
	// SkipCrossCheck is set.
	TCPAddr string
	// TCPBatch is the frames-per-SubmitBatch block size in TCP mode
	// (0 = 64).
	TCPBatch int
	// SkipCrossCheck disables the /v1/stats + /metrics reconciliation
	// (needed when other traffic shares the target).
	SkipCrossCheck bool
	// ExpectAudit extends the cross-check with the audit-ledger
	// invariant: every scored decision is either durably recorded or
	// counted as sampled/dropped, so the polygraph_audit_records_total +
	// polygraph_audit_dropped_total delta must equal the server's ingest
	// delta. Set it only when the harness itself enabled the ledger on
	// the target (a server without one legitimately reports zeros).
	ExpectAudit bool
}

// PhaseHook injects caller code at deterministic points of a run.
type PhaseHook struct {
	// Start fires synchronously as each phase begins.
	Start func(phase string)
	// Midpoint fires exactly once per fixed-count phase, when half of
	// its requests have been drawn from the sequence counter (it never
	// fires for duration-bounded phases). The fleet drill hangs the
	// replica kill here so the failure lands at the same request index
	// every run.
	Midpoint func(phase string)
}

// PhaseLedger is the deterministic per-phase slice of the ledger.
type PhaseLedger struct {
	Name    string `json:"name"`
	Sent    int64  `json:"sent"`
	OK      int64  `json:"ok"`
	Flagged int64  `json:"flagged"`
}

// Ledger is the client-side record of what a run sent and how the server
// answered. Against a deterministic server, a fixed-seed, count-bounded
// scenario reproduces this struct exactly — it deliberately excludes
// anything wall-clock-dependent (latency, throughput), so CI can diff the
// ledgers of two runs byte for byte.
type Ledger struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Sent     int64  `json:"sent"`
	// StreamDigest is the FNV-1a 64 hash of all sent bodies in sequence
	// order (see Pool.StreamDigest).
	StreamDigest string `json:"stream_digest"`
	// ByStatus counts responses by HTTP status code (keys are decimal
	// strings so the JSON form is stable and diffable).
	ByStatus map[string]int64 `json:"by_status"`
	// Flagged counts 2xx decisions the model flagged.
	Flagged int64 `json:"flagged"`
	// Timeouts and ConnErrors taxonomize transport-level failures
	// (normally zero; any non-zero value already fails the CI gate).
	Timeouts   int64 `json:"timeouts"`
	ConnErrors int64 `json:"conn_errors"`
	// AuditRecords and AuditDropped are the server audit-ledger counter
	// deltas over the run, captured only when the harness enabled
	// auditing (Options.ExpectAudit). They are run-level totals, not
	// per-phase: the recorded count is floor(benign/N) + flagged, which
	// is deterministic for a fixed-seed run regardless of request
	// interleaving — per-phase membership would not be.
	AuditRecords int64         `json:"audit_records,omitempty"`
	AuditDropped int64         `json:"audit_dropped,omitempty"`
	Phases       []PhaseLedger `json:"phases"`
}

// Errors counts every response that was not a 2xx plus every transport
// failure — the smoke gate's "zero non-2xx" assertion.
func (l *Ledger) Errors() int64 {
	n := l.Timeouts + l.ConnErrors
	for code, c := range l.ByStatus {
		if !strings.HasPrefix(code, "2") {
			n += c
		}
	}
	return n
}

// PhaseResult is the full (wall-clock-aware) outcome of one phase.
type PhaseResult struct {
	Name        string           `json:"name"`
	Sent        int64            `json:"sent"`
	OK          int64            `json:"ok"`
	Flagged     int64            `json:"flagged"`
	ByStatus    map[string]int64 `json:"by_status,omitempty"`
	Timeouts    int64            `json:"timeouts,omitempty"`
	ConnErrors  int64            `json:"conn_errors,omitempty"`
	Elapsed     time.Duration    `json:"elapsed_ns"`
	AchievedRPS float64          `json:"achieved_rps"`
	// Latency holds per-endpoint histogram summaries.
	Latency map[string]Quantiles `json:"latency"`
	// Truncated marks a phase cut short by the scenario budget.
	Truncated bool `json:"truncated,omitempty"`
}

// ReplicaDelta is one replica's contribution to a fleet run's counters.
type ReplicaDelta struct {
	Name          string `json:"name"`
	ReceivedDelta int64  `json:"received_delta"`
	FlaggedDelta  int64  `json:"flagged_delta"`
	RejectedDelta int64  `json:"rejected_delta"`
}

// CrossCheck reconciles the client-side ledger against the server's own
// /v1/stats counters and the /metrics exposition — the "do the two sides
// of the wire agree" audit. Against a fleet, the server-side deltas are
// the sums over every replica (including killed ones, whose counters
// the harness reads in-process), and Replicas itemizes the split.
type CrossCheck struct {
	OK bool `json:"ok"`
	// Details lists every mismatch in human terms (empty when OK).
	Details []string `json:"details,omitempty"`

	ClientOK            int64 `json:"client_ok"`
	ServerReceivedDelta int64 `json:"server_received_delta"`
	ClientErrors        int64 `json:"client_errors"`
	ServerRejectedDelta int64 `json:"server_rejected_delta"`
	ClientFlagged       int64 `json:"client_flagged"`
	ServerFlaggedDelta  int64 `json:"server_flagged_delta"`
	// Replicas itemizes the per-replica deltas behind the sums above
	// (fleet runs only).
	Replicas []ReplicaDelta `json:"replicas,omitempty"`
	// Retries counts requests transparently re-routed to another replica
	// after a transport failure. Retries live here, not in the Ledger:
	// they depend on failure timing, and the Ledger must stay
	// byte-identical across runs.
	Retries int64 `json:"retries,omitempty"`
	// MetricsReceived is polygraph_collections_total scraped from
	// /metrics after the run, cross-checking the exposition against the
	// JSON stats view.
	MetricsReceived float64 `json:"metrics_received"`
	// AuditRecordsDelta and AuditDroppedDelta are the audit-ledger
	// counter deltas over the run; with Options.ExpectAudit their sum
	// must equal ServerReceivedDelta (every scored decision recorded or
	// sampled out).
	AuditRecordsDelta int64 `json:"audit_records_delta,omitempty"`
	AuditDroppedDelta int64 `json:"audit_dropped_delta,omitempty"`
	// ServerP99Us maps endpoint → the upper bound (µs) of the bucket
	// holding the server-side p99, computed from the delta of the
	// polygraph_score_duration_microseconds exposition over the run.
	ServerP99Us map[string]float64 `json:"server_p99_us,omitempty"`
	// LatencyNotes carries informational latency-reconciliation detail
	// that does not flip OK (e.g. client-side queuing under burst
	// concurrency inflating the client p99 above the server's).
	LatencyNotes []string `json:"latency_notes,omitempty"`
}

// Report is the full outcome of a run.
type Report struct {
	Scenario string        `json:"scenario"`
	Seed     uint64        `json:"seed"`
	Ledger   Ledger        `json:"ledger"`
	Phases   []PhaseResult `json:"phases"`
	// Overall aggregates latency across all phases per endpoint.
	Overall map[string]Quantiles `json:"overall"`
	Elapsed time.Duration        `json:"elapsed_ns"`
	// BudgetExceeded marks a run aborted by the scenario's wall budget.
	BudgetExceeded bool        `json:"budget_exceeded,omitempty"`
	CrossCheck     *CrossCheck `json:"cross_check,omitempty"`
}

// P99 returns the worst per-endpoint p99 across the whole run — the
// number the CI gate compares against its ceiling.
func (r *Report) P99() time.Duration {
	var worst time.Duration
	for _, q := range r.Overall {
		if q.P99 > worst {
			worst = q.P99
		}
	}
	return worst
}

// phaseState accumulates one phase's counters; statuses live behind a
// mutex (cheap next to an HTTP round trip), latency in atomic histograms.
type phaseState struct {
	sent    atomic.Int64
	ok      atomic.Int64
	flagged atomic.Int64
	timeout atomic.Int64
	connErr atomic.Int64

	mu       sync.Mutex
	byStatus map[int]int64

	hists map[string]*Hist // keyed by endpoint path
}

func newPhaseState() *phaseState {
	return &phaseState{
		byStatus: map[int]int64{},
		hists: map[string]*Hist{
			EndpointBinary: new(Hist),
			EndpointJSON:   new(Hist),
		},
	}
}

func (ps *phaseState) countStatus(code int) {
	ps.mu.Lock()
	ps.byStatus[code]++
	ps.mu.Unlock()
}

// Run drives the scenario against the target and assembles the report.
func Run(ctx context.Context, opts Options) (*Report, error) {
	sc := opts.Scenario
	if sc == nil {
		return nil, fmt.Errorf("loadgen: Options.Scenario is required")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opts.Pool == nil || len(opts.Pool.Requests) == 0 {
		return nil, fmt.Errorf("loadgen: Options.Pool is required")
	}
	if opts.TCPAddr != "" {
		return runTCP(ctx, opts)
	}
	if opts.BaseURL == "" && opts.Fleet == nil {
		return nil, fmt.Errorf("loadgen: Options.BaseURL or Options.Fleet is required")
	}
	client := opts.Client
	if client == nil {
		client = newClient(peakConcurrency(sc))
	}

	if sc.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(sc.Budget))
		defer cancel()
	}

	// One stats source per target: the single server, or every fleet
	// replica (whose in-process overrides keep a killed replica's
	// counters readable).
	srcs := buildSources(opts, client)
	pres := make([]sourcePre, len(srcs))
	if !opts.SkipCrossCheck {
		for i, s := range srcs {
			pres[i].stats, pres[i].statsErr = s.stats(ctx)
			// Old servers without the histogram family scrape as an empty
			// map; the latency reconciliation then degrades to a note.
			if text, err := s.exposition(ctx); err == nil {
				pres[i].hist = obs.ParseHistogram(text, scoreHistFamily, "endpoint")
				if opts.ExpectAudit {
					pres[i].audit[0], _ = obs.ParseMetric(text, auditRecordsFamily)
					pres[i].audit[1], _ = obs.ParseMetric(text, auditDroppedFamily)
				}
			}
		}
	}

	report := &Report{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Ledger: Ledger{
			Scenario: sc.Name,
			Seed:     sc.Seed,
			ByStatus: map[string]int64{},
		},
	}
	overall := map[string]*Hist{
		EndpointBinary: new(Hist),
		EndpointJSON:   new(Hist),
	}

	start := time.Now()
	var seq int64 // global sequence index into the cycled pool
	var retries atomic.Int64
	for _, phase := range sc.Phases {
		if ctx.Err() != nil {
			report.BudgetExceeded = true
			break
		}
		if opts.Hook != nil && opts.Hook.Start != nil {
			opts.Hook.Start(phase.Name)
		}
		ps := newPhaseState()
		truncated := runPhase(ctx, phase, opts.Pool, client, &opts, &seq, ps, overall, &retries)

		pr := PhaseResult{
			Name:       phase.Name,
			Sent:       ps.sent.Load(),
			OK:         ps.ok.Load(),
			Flagged:    ps.flagged.Load(),
			Timeouts:   ps.timeout.Load(),
			ConnErrors: ps.connErr.Load(),
			ByStatus:   map[string]int64{},
			Latency:    map[string]Quantiles{},
			Truncated:  truncated,
		}
		elapsed := time.Since(start)
		for code, c := range ps.byStatus {
			key := strconv.Itoa(code)
			pr.ByStatus[key] = c
			report.Ledger.ByStatus[key] += c
		}
		for path, h := range ps.hists {
			if h.Count() > 0 {
				pr.Latency[path] = h.Summary()
			}
		}
		// Phase elapsed is measured inside runPhase via its own clock;
		// recompute here as the delta of the run clock for simplicity.
		pr.Elapsed = elapsed - sumElapsed(report.Phases)
		if pr.Elapsed > 0 {
			pr.AchievedRPS = float64(pr.Sent) / pr.Elapsed.Seconds()
		}
		report.Phases = append(report.Phases, pr)
		report.Ledger.Sent += pr.Sent
		report.Ledger.Flagged += pr.Flagged
		report.Ledger.Timeouts += pr.Timeouts
		report.Ledger.ConnErrors += pr.ConnErrors
		report.Ledger.Phases = append(report.Ledger.Phases, PhaseLedger{
			Name:    phase.Name,
			Sent:    pr.Sent,
			OK:      pr.OK,
			Flagged: pr.Flagged,
		})
		if truncated {
			report.BudgetExceeded = true
		}
	}
	report.Elapsed = time.Since(start)
	report.Ledger.StreamDigest = opts.Pool.StreamDigest(report.Ledger.Sent)
	report.Overall = map[string]Quantiles{}
	for path, h := range overall {
		if h.Count() > 0 {
			report.Overall[path] = h.Summary()
		}
	}

	if !opts.SkipCrossCheck {
		// The cross-check runs on a background-derived context so a budget
		// expiry mid-run doesn't block the audit of what did complete.
		cctx := ctx
		if ctx.Err() != nil {
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
		}
		posts := make([]string, len(srcs)) // post-run exposition per source
		for i, s := range srcs {
			posts[i], _ = s.exposition(cctx)
		}
		report.CrossCheck = crossCheck(cctx, srcs, pres, posts, &report.Ledger, retries.Load())
		reconcileLatency(pres, posts, report)
		if opts.ExpectAudit {
			reconcileAudit(pres, posts, report)
		}
	}
	return report, nil
}

// statsSource is one reconciliation target: a way to read a server's
// stats snapshot and /metrics exposition.
type statsSource struct {
	name       string
	stats      func(context.Context) (collect.Stats, error)
	exposition func(context.Context) (string, error)
}

// sourcePre holds a source's pre-run counters.
type sourcePre struct {
	stats    collect.Stats
	statsErr error
	hist     map[string][]uint64
	audit    [2]float64 // records, dropped
}

func buildSources(opts Options, client *http.Client) []statsSource {
	if opts.Fleet != nil {
		members := opts.Fleet.Members()
		fc := opts.Fleet.Client()
		out := make([]statsSource, 0, len(members))
		for _, m := range members {
			m := m
			out = append(out, statsSource{
				name: m.Name,
				stats: func(ctx context.Context) (collect.Stats, error) {
					return m.FetchStats(ctx, fc)
				},
				exposition: func(ctx context.Context) (string, error) {
					return m.FetchMetrics(ctx, fc)
				},
			})
		}
		return out
	}
	return []statsSource{{
		name: "server",
		stats: func(ctx context.Context) (collect.Stats, error) {
			return fetchStats(ctx, client, opts.BaseURL)
		},
		exposition: func(ctx context.Context) (string, error) {
			return fetchExposition(ctx, client, opts.BaseURL)
		},
	}}
}

// Audit-ledger counter families exported by internal/collect; the
// harness reconciles their deltas against the ingest delta.
const (
	auditRecordsFamily = "polygraph_audit_records_total"
	auditDroppedFamily = "polygraph_audit_dropped_total"
)

// reconcileAudit enforces the audit accounting invariant on targets
// whose ledgers this harness enabled: recorded + dropped must equal the
// number of decisions the servers scored — no decision silently escapes
// a ledger. Against a fleet the deltas are summed over every replica.
// The deltas also land in the run ledger (run-level totals stay
// deterministic for a fixed seed; see Ledger.AuditRecords).
func reconcileAudit(pres []sourcePre, posts []string, report *Report) {
	cc := report.CrossCheck
	if cc == nil {
		return
	}
	var records, dropped float64
	for i := range pres {
		postRecords, err := obs.ParseMetric(posts[i], auditRecordsFamily)
		if err != nil {
			cc.Details = append(cc.Details, fmt.Sprintf("scrape %s: %v", auditRecordsFamily, err))
			cc.OK = false
			return
		}
		postDropped, err := obs.ParseMetric(posts[i], auditDroppedFamily)
		if err != nil {
			cc.Details = append(cc.Details, fmt.Sprintf("scrape %s: %v", auditDroppedFamily, err))
			cc.OK = false
			return
		}
		records += postRecords - pres[i].audit[0]
		dropped += postDropped - pres[i].audit[1]
	}
	cc.AuditRecordsDelta = int64(records)
	cc.AuditDroppedDelta = int64(dropped)
	report.Ledger.AuditRecords = cc.AuditRecordsDelta
	report.Ledger.AuditDropped = cc.AuditDroppedDelta
	if sum := cc.AuditRecordsDelta + cc.AuditDroppedDelta; sum != cc.ServerReceivedDelta {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"audit ledger accounted for %d decisions (%d recorded + %d dropped) but server scored %d",
			sum, cc.AuditRecordsDelta, cc.AuditDroppedDelta, cc.ServerReceivedDelta))
		cc.OK = false
	}
	if cc.AuditRecordsDelta == 0 && cc.ServerReceivedDelta > 0 {
		cc.Details = append(cc.Details,
			"audit expected but polygraph_audit_records_total did not move")
		cc.OK = false
	}
}

func sumElapsed(phases []PhaseResult) time.Duration {
	var d time.Duration
	for _, p := range phases {
		d += p.Elapsed
	}
	return d
}

func peakConcurrency(sc *Scenario) int {
	peak := 1
	for _, p := range sc.Phases {
		if p.Concurrency > peak {
			peak = p.Concurrency
		}
	}
	return peak
}

func newClient(concurrency int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
		IdleConnTimeout:     30 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: 10 * time.Second}
}

// runPhase executes one phase's workers. Workers draw global sequence
// indices from a shared atomic counter, so the body sent for index i is
// deterministic regardless of which worker sends it or when. Returns
// whether the phase was truncated by the context (budget).
func runPhase(ctx context.Context, phase Phase, pool *Pool, client *http.Client, opts *Options, seq *int64, ps *phaseState, overall map[string]*Hist, retries *atomic.Int64) bool {
	workers := phase.Concurrency
	if workers <= 0 {
		workers = 1
	}
	phaseStartSeq := atomic.LoadInt64(seq)
	phaseStart := time.Now()
	var truncated atomic.Bool
	var midpointFired atomic.Bool

	// stop decides, per drawn index, whether the phase is over.
	stop := func(i int64) bool {
		if ctx.Err() != nil {
			truncated.Store(true)
			return true
		}
		if phase.Requests > 0 {
			return i-phaseStartSeq >= int64(phase.Requests)
		}
		return time.Since(phaseStart) >= time.Duration(phase.Duration)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(seq, 1) - 1
				if stop(i) {
					// Return the unused index so the ledger's sent count
					// equals the number of requests actually issued.
					atomic.AddInt64(seq, -1)
					return
				}
				// The midpoint hook fires on the worker that draws the
				// halfway index, so the injected event (the fleet drill's
				// replica kill) lands at the same request index every run.
				if opts.Hook != nil && opts.Hook.Midpoint != nil && phase.Requests > 0 &&
					i-phaseStartSeq == int64(phase.Requests/2) &&
					midpointFired.CompareAndSwap(false, true) {
					opts.Hook.Midpoint(phase.Name)
				}
				if phase.RPS > 0 {
					due := phaseStart.Add(time.Duration(float64(i-phaseStartSeq) / phase.RPS * float64(time.Second)))
					if wait := time.Until(due); wait > 0 {
						select {
						case <-time.After(wait):
						case <-ctx.Done():
							truncated.Store(true)
							atomic.AddInt64(seq, -1)
							return
						}
					}
				}
				sendOne(ctx, client, opts, pool.At(i), ps, overall, retries)
			}
		}()
	}
	wg.Wait()
	return truncated.Load()
}

// decisionFrame decodes only what the harness needs from a Decision.
type decisionFrame struct {
	Flagged bool `json:"flagged"`
}

// sendOne issues one pool request. Against a fleet, it routes through
// the balancer and transparently retries on another replica when the
// picked one was unreachable — the failure is reported (ejecting the
// dead replica) and the retry counted, but the ledger records only the
// final outcome, which is what keeps a kill drill at zero
// client-visible errors. Timeouts are never retried: a timed-out
// request may have been scored by the slow replica, and re-sending it
// would double-count it on another, breaking the
// client-vs-sum-of-replicas reconciliation.
func sendOne(ctx context.Context, client *http.Client, opts *Options, r *Request, ps *phaseState, overall map[string]*Hist, retries *atomic.Int64) {
	ps.sent.Add(1)
	attempts := 1
	if opts.Fleet != nil {
		attempts = len(opts.Fleet.Members()) + 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		baseURL := opts.BaseURL
		var picked fleet.Picked
		havePick := false
		if opts.Fleet != nil {
			p, err := opts.Fleet.Pick()
			if err != nil {
				lastErr = err
				break
			}
			picked, havePick = p, true
			baseURL = p.BaseURL()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+r.Path, bytes.NewReader(r.Body))
		if err != nil {
			if havePick {
				opts.Fleet.Finish(picked, nil)
			}
			ps.connErr.Add(1)
			return
		}
		req.Header.Set("Content-Type", r.ContentType)
		start := time.Now()
		resp, err := client.Do(req)
		elapsed := time.Since(start)
		if err != nil {
			lastErr = err
			isTimeout := false
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				isTimeout = true
			}
			if havePick {
				opts.Fleet.Finish(picked, &collect.ClientError{Kind: collect.FailDown, Op: "submit", Err: err})
				if !isTimeout && attempt+1 < attempts {
					opts.Fleet.CountRetry()
					retries.Add(1)
					continue
				}
			}
			break
		}
		if havePick {
			opts.Fleet.Finish(picked, nil)
		}
		defer resp.Body.Close()
		ps.hists[r.Path].Record(elapsed)
		overall[r.Path].Record(elapsed)
		ps.countStatus(resp.StatusCode)
		if resp.StatusCode/100 == 2 {
			ps.ok.Add(1)
			var d decisionFrame
			if err := json.NewDecoder(resp.Body).Decode(&d); err == nil && d.Flagged {
				ps.flagged.Add(1)
			}
		}
		return
	}
	if ne, ok := lastErr.(net.Error); ok && ne.Timeout() {
		ps.timeout.Add(1)
	} else {
		ps.connErr.Add(1)
	}
}

func fetchStats(ctx context.Context, client *http.Client, baseURL string) (collect.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		return collect.Stats{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return collect.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return collect.Stats{}, fmt.Errorf("loadgen: /v1/stats returned %d", resp.StatusCode)
	}
	var st collect.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return collect.Stats{}, err
	}
	return st, nil
}

// fetchExposition fetches a target's full /metrics exposition as text.
// Each source is scraped once per checkpoint and the text shared by
// every reconciliation pass, so a fleet of N replicas costs N scrapes,
// not N×passes.
func fetchExposition(ctx context.Context, client *http.Client, baseURL string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("loadgen: /metrics returned %d", resp.StatusCode)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		return "", err
	}
	return b.String(), nil
}

// scoreHistFamily is the serving-path latency histogram exported by
// internal/collect; the harness reconciles its own per-endpoint client
// histograms against it at bucket granularity. Parsing lives in
// internal/obs (obs.ParseMetric / obs.ParseHistogram / obs.QuantileBucket),
// shared with the support-bundle analyzers.
const scoreHistFamily = "polygraph_score_duration_microseconds"

// reconcileLatency compares the run's client-observed p99 per endpoint
// against the servers' own duration histograms (delta of cumulative
// buckets over the run, summed across every source — for a fleet, the
// merged histogram is exact because buckets are counters). Only the
// impossible direction fails the cross-check: the server-side handler
// latency exceeding what any client observed by more than one
// power-of-two bucket means the two histograms cannot be describing the
// same requests. The common benign skew — client p99 far above server
// p99 because of client-side queuing under burst concurrency — is
// recorded as a note.
func reconcileLatency(pres []sourcePre, posts []string, report *Report) {
	cc := report.CrossCheck
	if cc == nil {
		return
	}
	// Per-endpoint delta buckets summed over all sources.
	sum := map[string][]uint64{}
	exported := false
	for i := range pres {
		postHist := obs.ParseHistogram(posts[i], scoreHistFamily, "endpoint")
		if len(postHist) == 0 {
			continue
		}
		exported = true
		for ep, post := range postHist {
			if len(post) != obs.NumBuckets {
				continue
			}
			acc := sum[ep]
			if acc == nil {
				acc = make([]uint64, len(post))
				sum[ep] = acc
			}
			pre := pres[i].hist[ep]
			for j, c := range post {
				d := c
				if j < len(pre) && pre[j] <= c {
					d = c - pre[j]
				}
				acc[j] += d
			}
		}
	}
	if !exported {
		cc.LatencyNotes = append(cc.LatencyNotes,
			"server does not export "+scoreHistFamily+"; latency reconciliation skipped")
		return
	}
	endpoints := make([]string, 0, len(report.Overall))
	for ep := range report.Overall {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		clientQ := report.Overall[ep]
		delta, ok := sum[ep]
		if !ok {
			cc.LatencyNotes = append(cc.LatencyNotes, fmt.Sprintf(
				"endpoint %s: no comparable server histogram series", ep))
			continue
		}
		serverIdx, total := obs.QuantileBucket(delta, 0.99)
		if serverIdx < 0 {
			cc.LatencyNotes = append(cc.LatencyNotes, fmt.Sprintf(
				"endpoint %s: server histogram did not move during the run", ep))
			continue
		}
		serverP99 := obs.BucketUpperMicros(serverIdx)
		if math.IsInf(serverP99, 1) {
			// Keep the JSON report marshalable: report the last finite
			// boundary instead of +Inf.
			serverP99 = obs.BucketUpperMicros(serverIdx - 1)
		}
		if cc.ServerP99Us == nil {
			cc.ServerP99Us = map[string]float64{}
		}
		cc.ServerP99Us[ep] = serverP99
		clientIdx := obs.BucketIndex(float64(clientQ.P99) / float64(time.Microsecond))
		switch {
		case serverIdx > clientIdx+1:
			cc.Details = append(cc.Details, fmt.Sprintf(
				"endpoint %s: server p99 bucket %d (≤%gµs over %d requests) exceeds client p99 bucket %d (%v) by more than one bucket",
				ep, serverIdx, serverP99, total, clientIdx, clientQ.P99))
			cc.OK = false
		case clientIdx > serverIdx+1:
			cc.LatencyNotes = append(cc.LatencyNotes, fmt.Sprintf(
				"endpoint %s: client p99 %v (bucket %d) above server p99 ≤%gµs (bucket %d) — client-side queuing",
				ep, clientQ.P99, clientIdx, serverP99, serverIdx))
		default:
			cc.LatencyNotes = append(cc.LatencyNotes, fmt.Sprintf(
				"endpoint %s: client p99 %v and server p99 ≤%gµs agree within one bucket",
				ep, clientQ.P99, serverP99))
		}
	}
}

// crossCheck reconciles the client ledger against the server-side
// counters. It compares deltas (post − pre), so a live daemon with
// prior traffic still reconciles as long as nothing else hits it during
// the run. With multiple sources (a fleet), each replica's delta is
// computed individually, itemized in Replicas, and the reconciliation
// runs against the sums — the client-vs-sum-of-replicas audit: no
// request may be double-scored (a retry landing twice) or lost (a
// "2xx" the fleet never counted).
func crossCheck(ctx context.Context, srcs []statsSource, pres []sourcePre, posts []string, ledger *Ledger, retries int64) *CrossCheck {
	cc := &CrossCheck{Retries: retries}
	var post collect.Stats // summed post-run stats
	var pre collect.Stats  // summed pre-run stats
	var metricsReceived float64
	for i, s := range srcs {
		if pres[i].statsErr != nil {
			cc.Details = append(cc.Details, fmt.Sprintf("%s: pre-run stats: %v", s.name, pres[i].statsErr))
			return cc
		}
		st, err := s.stats(ctx)
		if err != nil {
			cc.Details = append(cc.Details, fmt.Sprintf("%s: post-run stats: %v", s.name, err))
			return cc
		}
		if len(srcs) > 1 {
			cc.Replicas = append(cc.Replicas, ReplicaDelta{
				Name:          s.name,
				ReceivedDelta: st.Received - pres[i].stats.Received,
				FlaggedDelta:  st.Flagged - pres[i].stats.Flagged,
				RejectedDelta: st.Rejected - pres[i].stats.Rejected,
			})
		}
		post.Received += st.Received
		post.Flagged += st.Flagged
		post.Rejected += st.Rejected
		pre.Received += pres[i].stats.Received
		pre.Flagged += pres[i].stats.Flagged
		pre.Rejected += pres[i].stats.Rejected
		if mv, err := obs.ParseMetric(posts[i], "polygraph_collections_total"); err != nil {
			cc.Details = append(cc.Details, fmt.Sprintf("%s: scrape /metrics: %v", s.name, err))
		} else {
			metricsReceived += mv
		}
	}

	cc.ClientOK = ledger.ByStatus["200"]
	cc.ServerReceivedDelta = post.Received - pre.Received
	cc.ClientFlagged = ledger.Flagged
	cc.ServerFlaggedDelta = post.Flagged - pre.Flagged
	cc.ServerRejectedDelta = post.Rejected - pre.Rejected
	for code, c := range ledger.ByStatus {
		if !strings.HasPrefix(code, "2") {
			cc.ClientErrors += c
		}
	}

	if cc.ClientOK != cc.ServerReceivedDelta {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"client saw %d 2xx but server ingest counter moved by %d", cc.ClientOK, cc.ServerReceivedDelta))
	}
	if cc.ClientFlagged != cc.ServerFlaggedDelta {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"client decoded %d flagged decisions but server flagged counter moved by %d", cc.ClientFlagged, cc.ServerFlaggedDelta))
	}
	// Rejected reconciles only when every client-side error was a
	// server-side reject (429s from a rate limiter and transport errors
	// are not counted by the server).
	if ledger.Timeouts == 0 && ledger.ConnErrors == 0 && ledger.ByStatus["429"] == 0 &&
		cc.ClientErrors != cc.ServerRejectedDelta {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"client saw %d error responses but server rejected counter moved by %d", cc.ClientErrors, cc.ServerRejectedDelta))
	}
	cc.MetricsReceived = metricsReceived
	if int64(metricsReceived) != post.Received {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"/metrics polygraph_collections_total %v disagrees with /v1/stats received %d", metricsReceived, post.Received))
	}
	cc.OK = len(cc.Details) == 0
	return cc
}

// FormatReport renders the human-readable per-phase table.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d): %d requests in %v",
		r.Scenario, r.Seed, r.Ledger.Sent, r.Elapsed.Round(time.Millisecond))
	if r.BudgetExceeded {
		b.WriteString("  [BUDGET EXCEEDED]")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %9s  %-16s %9s %9s %9s %9s\n",
		"phase", "sent", "ok", "flagged", "rps", "endpoint", "p50", "p95", "p99", "max")
	for _, p := range r.Phases {
		first := true
		paths := make([]string, 0, len(p.Latency))
		for path := range p.Latency {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			q := p.Latency[path]
			name, sent, ok, flagged, rps := "", "", "", "", ""
			if first {
				name = p.Name
				sent = strconv.FormatInt(p.Sent, 10)
				ok = strconv.FormatInt(p.OK, 10)
				flagged = strconv.FormatInt(p.Flagged, 10)
				rps = strconv.FormatFloat(p.AchievedRPS, 'f', 0, 64)
				first = false
			}
			fmt.Fprintf(&b, "%-10s %8s %8s %8s %9s  %-16s %9s %9s %9s %9s\n",
				name, sent, ok, flagged, rps, path,
				fmtDur(q.P50), fmtDur(q.P95), fmtDur(q.P99), fmtDur(q.Max))
		}
		if first { // phase recorded no latency (all transport errors)
			fmt.Fprintf(&b, "%-10s %8d %8d %8d %9.0f  (no responses)\n",
				p.Name, p.Sent, p.OK, p.Flagged, p.AchievedRPS)
		}
	}
	fmt.Fprintf(&b, "errors: %d (timeouts %d, conn %d)  stream digest: %s\n",
		r.Ledger.Errors(), r.Ledger.Timeouts, r.Ledger.ConnErrors, r.Ledger.StreamDigest)
	if cc := r.CrossCheck; cc != nil {
		if cc.OK {
			fmt.Fprintf(&b, "cross-check: OK (server ingest delta %d == client 2xx %d, flagged %d)\n",
				cc.ServerReceivedDelta, cc.ClientOK, cc.ServerFlaggedDelta)
		} else {
			b.WriteString("cross-check: FAILED\n")
			for _, d := range cc.Details {
				fmt.Fprintf(&b, "  - %s\n", d)
			}
		}
		if len(cc.Replicas) > 0 {
			for _, rd := range cc.Replicas {
				fmt.Fprintf(&b, "  replica %-8s received %6d  flagged %6d  rejected %6d\n",
					rd.Name, rd.ReceivedDelta, rd.FlaggedDelta, rd.RejectedDelta)
			}
			fmt.Fprintf(&b, "  fleet retries: %d (rerouted after transport failure; not client-visible)\n", cc.Retries)
		}
		for _, n := range cc.LatencyNotes {
			fmt.Fprintf(&b, "  latency: %s\n", n)
		}
		if cc.AuditRecordsDelta+cc.AuditDroppedDelta > 0 {
			fmt.Fprintf(&b, "  audit: %d decision(s) recorded, %d sampled out (ledger accounts for every scored decision)\n",
				cc.AuditRecordsDelta, cc.AuditDroppedDelta)
		}
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
