package loadgen

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"polygraph/internal/browser"
	"polygraph/internal/fingerprint"
	"polygraph/internal/fraud"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// Endpoint paths the generator exercises.
const (
	EndpointBinary = "/v1/collect"
	EndpointJSON   = "/v1/collect-json"
)

// Request is one pre-encoded wire request. The pool is generated up
// front so that the body sent for global sequence index i is a pure
// function of (scenario, i) — workers never race on the generator.
type Request struct {
	// Path is the ingest endpoint ("/v1/collect" or "/v1/collect-json").
	Path string
	// ContentType matches the endpoint's encoding.
	ContentType string
	// Body is the encoded payload.
	Body []byte
	// Fraud marks sessions synthesized through a fraud tool's Spoof.
	Fraud bool
	// Invalid marks deliberately malformed payloads (expected non-2xx).
	Invalid bool
	// Payload is the decoded form of Body for binary, non-corrupted
	// entries (nil otherwise). TCP mode submits it through
	// TCPClient.SubmitBatch, which re-encodes the identical wire bytes.
	Payload *fingerprint.Payload
}

// Pool is the pre-generated session population a run cycles through.
type Pool struct {
	Requests []Request
	// Dim is the feature width the payloads carry.
	Dim int
}

// At returns the request for global sequence index i (the stream cycles
// through the pool).
func (p *Pool) At(i int64) *Request {
	return &p.Requests[int(i%int64(len(p.Requests)))]
}

// StreamDigest hashes the first n request bodies of the stream (pool
// entries in cycled index order) with FNV-1a 64. Two runs that sent the
// same number of requests from byte-identical pools share a digest, which
// is the "byte-identical request stream" check made cheap.
func (p *Pool) StreamDigest(n int64) string {
	h := fnv.New64a()
	for i := int64(0); i < n; i++ {
		h.Write(p.At(i).Body)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// jsonFrame mirrors the sendBeacon JSON frame collect.Server accepts.
type jsonFrame struct {
	SessionID string  `json:"sid"`
	UserAgent string  `json:"ua"`
	Values    []int64 `json:"v"`
}

// BuildPool synthesizes the session population for a scenario against a
// feature set (use the deployed model's Features so widths always match
// the server's expectation). The same scenario and features yield a
// byte-identical pool.
func BuildPool(sc *Scenario, features []fingerprint.Feature) (*Pool, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("loadgen: BuildPool with empty feature set")
	}
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, features)
	universe := ua.Universe(sc.maxVersion())
	tools := fraud.DetectableTools()
	gen := rng.New(sc.Seed)

	pool := &Pool{Requests: make([]Request, 0, sc.Pool), Dim: len(features)}
	for i := 0; i < sc.Pool; i++ {
		req, err := buildRequest(sc, gen, ext, universe, tools)
		if err != nil {
			return nil, fmt.Errorf("loadgen: pool entry %d: %w", i, err)
		}
		pool.Requests = append(pool.Requests, req)
	}
	return pool, nil
}

func buildRequest(sc *Scenario, gen *rng.PCG, ext *fingerprint.Extractor, universe []ua.Release, tools []fraud.Tool) (Request, error) {
	payload := &fingerprint.Payload{}
	fillID(payload, gen)
	isFraud := gen.Bool(sc.FraudMix)
	os := sampleOS(gen)
	if isFraud {
		tool := tools[gen.Intn(len(tools))]
		victim := universe[gen.Intn(len(universe))]
		spoof := tool.Spoof(victim, os, gen)
		payload.UserAgent = ua.UserAgent(spoof.Claimed, os)
		payload.Values = fingerprint.VectorToValues(ext.Extract(spoof.Profile))
	} else {
		rel := universe[gen.Intn(len(universe))]
		payload.UserAgent = ua.UserAgent(rel, os)
		payload.Values = fingerprint.VectorToValues(ext.Extract(browser.Profile{Release: rel, OS: os}))
	}

	req := Request{Fraud: isFraud}
	asJSON := gen.Bool(sc.JSONMix)
	invalid := gen.Bool(sc.InvalidMix)
	if asJSON {
		req.Path = EndpointJSON
		req.ContentType = "application/json"
		frame := jsonFrame{
			SessionID: hex.EncodeToString(payload.SessionID[:]),
			UserAgent: payload.UserAgent,
			Values:    payload.Values,
		}
		body, err := json.Marshal(frame)
		if err != nil {
			return Request{}, err
		}
		req.Body = body
	} else {
		req.Path = EndpointBinary
		req.ContentType = "application/octet-stream"
		body, err := payload.MarshalBinary()
		if err != nil {
			return Request{}, err
		}
		req.Body = body
		req.Payload = payload
	}
	if invalid {
		req.Invalid = true
		req.Body = corrupt(req.Body, asJSON, gen)
		req.Payload = nil
	}
	return req, nil
}

// corrupt produces a deterministically malformed variant of a valid body,
// covering the server's rejection taxonomy (bad framing, truncation,
// wrong feature width).
func corrupt(body []byte, isJSON bool, gen *rng.PCG) []byte {
	out := append([]byte(nil), body...)
	switch gen.Intn(3) {
	case 0:
		if isJSON {
			// Unbalanced JSON.
			return out[:len(out)/2]
		}
		// Bad magic.
		out[0], out[1] = 'x', 'x'
		return out
	case 1:
		// Truncated mid-payload.
		return out[:len(out)*3/4]
	default:
		if isJSON {
			// Wrong feature width, still valid JSON.
			return []byte(`{"sid":"00112233445566778899aabbccddeeff","ua":"x","v":[1,2,3]}`)
		}
		// Unsupported version byte.
		out[2] = 0xFF
		return out
	}
}

func fillID(p *fingerprint.Payload, gen *rng.PCG) {
	for i := 0; i < len(p.SessionID); i += 8 {
		v := gen.Uint64()
		for j := 0; j < 8 && i+j < len(p.SessionID); j++ {
			p.SessionID[i+j] = byte(v >> (8 * j))
		}
	}
}

// sampleOS draws the same OS distribution the dataset generator uses.
func sampleOS(gen *rng.PCG) ua.OS {
	switch {
	case gen.Bool(0.62):
		return ua.Windows10
	case gen.Bool(0.55):
		return ua.Windows11
	case gen.Bool(0.5):
		return ua.MacOSSonoma
	default:
		return ua.MacOSSequoia
	}
}
