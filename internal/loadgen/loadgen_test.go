package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/ua"
)

// The package shares one trained model: training dominates test time and
// every test only needs a deterministic scoring target.
var (
	modelOnce sync.Once
	model     *core.Model
	modelErr  error
)

func sharedModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Sessions = 8000
		d, err := dataset.Generate(cfg)
		if err != nil {
			modelErr = err
			return
		}
		tc := core.DefaultTrainConfig()
		tc.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
		model, _, modelErr = core.Train(d.Samples(), tc)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

// freshServer builds a server with zeroed counters around the shared
// model, so per-test cross-check deltas start clean.
func freshServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv, err := collect.NewServer(collect.Config{Model: sharedModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// smallScenario is the CI short scenario scaled down for unit tests.
func smallScenario(seed uint64) *Scenario {
	return &Scenario{
		Name:     "test",
		Seed:     seed,
		Pool:     128,
		FraudMix: 0.05,
		JSONMix:  0.3,
		Budget:   Duration(time.Minute),
		Phases: []Phase{
			{Name: "ramp", Requests: 60, Concurrency: 2, RPS: 600},
			{Name: "steady", Requests: 200, Concurrency: 4},
			{Name: "burst", Requests: 100, Concurrency: 8},
		},
	}
}

func TestBuildPoolDeterministic(t *testing.T) {
	m := sharedModel(t)
	sc := smallScenario(42)
	p1, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Requests) != sc.Pool || len(p2.Requests) != sc.Pool {
		t.Fatalf("pool sizes %d/%d, want %d", len(p1.Requests), len(p2.Requests), sc.Pool)
	}
	for i := range p1.Requests {
		a, b := p1.Requests[i], p2.Requests[i]
		if !bytes.Equal(a.Body, b.Body) || a.Path != b.Path || a.Fraud != b.Fraud || a.Invalid != b.Invalid {
			t.Fatalf("pool entry %d differs between identical builds", i)
		}
	}
	// A different seed must move the stream.
	p3, err := BuildPool(smallScenario(43), m.Features)
	if err != nil {
		t.Fatal(err)
	}
	if p1.StreamDigest(int64(sc.Pool)) == p3.StreamDigest(int64(sc.Pool)) {
		t.Fatal("different seeds produced identical streams")
	}
	// The mix must actually contain both endpoints and some fraud.
	var json, fraud int
	for _, r := range p1.Requests {
		if r.Path == EndpointJSON {
			json++
		}
		if r.Fraud {
			fraud++
		}
	}
	if json == 0 || json == len(p1.Requests) {
		t.Fatalf("json mix degenerate: %d/%d", json, len(p1.Requests))
	}
	if fraud == 0 {
		t.Fatal("no fraud sessions in pool")
	}
}

func TestStreamDigestCycles(t *testing.T) {
	m := sharedModel(t)
	pool, err := BuildPool(smallScenario(1), m.Features)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(pool.Requests))
	if pool.StreamDigest(n) == pool.StreamDigest(n+1) {
		t.Fatal("digest ignores stream length")
	}
	if pool.StreamDigest(5) != pool.StreamDigest(5) {
		t.Fatal("digest not a pure function")
	}
}

// TestRunDeterministicLedger is the acceptance-criteria pin: two runs of
// the same seeded, count-bounded scenario against fresh deterministic
// servers produce byte-identical request streams and identical ledgers,
// and each run's ledger reconciles exactly with its server's counters.
func TestRunDeterministicLedger(t *testing.T) {
	m := sharedModel(t)
	sc := smallScenario(7)
	pool, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *Report {
		ts := freshServer(t)
		rep, err := Run(context.Background(), Options{Scenario: sc, Pool: pool, BaseURL: ts.URL})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1 := runOnce()
	r2 := runOnce()
	if !reflect.DeepEqual(r1.Ledger, r2.Ledger) {
		t.Fatalf("ledgers differ:\n%+v\n%+v", r1.Ledger, r2.Ledger)
	}
	if r1.Ledger.StreamDigest != r2.Ledger.StreamDigest {
		t.Fatal("stream digests differ")
	}
	if r1.Ledger.Sent != 360 {
		t.Fatalf("sent %d, want 360", r1.Ledger.Sent)
	}
	if r1.Ledger.Errors() != 0 {
		t.Fatalf("errors %d, want 0", r1.Ledger.Errors())
	}
	for _, r := range []*Report{r1, r2} {
		cc := r.CrossCheck
		if cc == nil || !cc.OK {
			t.Fatalf("cross-check failed: %+v", cc)
		}
		if cc.ClientOK != cc.ServerReceivedDelta || cc.ClientOK != r.Ledger.Sent {
			t.Fatalf("ingest counters disagree: %+v", cc)
		}
		if cc.ClientFlagged != cc.ServerFlaggedDelta {
			t.Fatalf("flagged counters disagree: %+v", cc)
		}
	}
	// Latency was recorded for every request on some endpoint.
	var n uint64
	for _, q := range r1.Overall {
		n += q.Count
	}
	if n != uint64(r1.Ledger.Sent) {
		t.Fatalf("recorded %d latencies for %d requests", n, r1.Ledger.Sent)
	}
	if r1.P99() <= 0 {
		t.Fatal("no p99 recorded")
	}
}

// TestRunErrorTaxonomy feeds deliberately malformed payloads and checks
// they surface as counted 4xx rejections that still reconcile with the
// server's rejected counter.
func TestRunErrorTaxonomy(t *testing.T) {
	m := sharedModel(t)
	sc := smallScenario(21)
	sc.InvalidMix = 0.3
	pool, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	var invalid int64
	for _, r := range pool.Requests {
		if r.Invalid {
			invalid++
		}
	}
	if invalid == 0 {
		t.Fatal("no invalid requests generated at 30% mix")
	}
	ts := freshServer(t)
	rep, err := Run(context.Background(), Options{Scenario: sc, Pool: pool, BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ledger.Errors() == 0 {
		t.Fatal("invalid payloads produced no errors")
	}
	if rep.Ledger.ByStatus["400"] == 0 {
		t.Fatalf("no 400s in taxonomy: %+v", rep.Ledger.ByStatus)
	}
	var total int64
	for _, c := range rep.Ledger.ByStatus {
		total += c
	}
	total += rep.Ledger.Timeouts + rep.Ledger.ConnErrors
	if total != rep.Ledger.Sent {
		t.Fatalf("taxonomy accounts for %d of %d requests", total, rep.Ledger.Sent)
	}
	if cc := rep.CrossCheck; cc == nil || !cc.OK {
		t.Fatalf("cross-check failed with invalid traffic: %+v", cc)
	}
}

func TestRunDurationPhase(t *testing.T) {
	m := sharedModel(t)
	sc := &Scenario{
		Name: "soak", Seed: 3, Pool: 64, JSONMix: 0.2,
		Phases: []Phase{
			{Name: "steady", Duration: Duration(300 * time.Millisecond), Concurrency: 2, RPS: 400},
		},
	}
	pool, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	ts := freshServer(t)
	rep, err := Run(context.Background(), Options{Scenario: sc, Pool: pool, BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ledger.Sent == 0 {
		t.Fatal("duration phase sent nothing")
	}
	if rep.Ledger.Errors() != 0 {
		t.Fatalf("errors: %+v", rep.Ledger.ByStatus)
	}
	// 400 RPS for 300 ms is ~120 requests; pacing should keep the total
	// in the right order of magnitude (generous bounds for CI boxes).
	if rep.Ledger.Sent > 400 {
		t.Fatalf("pacing did not bound throughput: %d requests", rep.Ledger.Sent)
	}
}

func TestRunBudgetTruncates(t *testing.T) {
	m := sharedModel(t)
	sc := &Scenario{
		Name: "over-budget", Seed: 5, Pool: 32,
		Budget: Duration(150 * time.Millisecond),
		Phases: []Phase{
			{Name: "long", Duration: Duration(5 * time.Second), Concurrency: 1, RPS: 50},
		},
	}
	pool, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	ts := freshServer(t)
	start := time.Now()
	rep, err := Run(context.Background(), Options{Scenario: sc, Pool: pool, BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BudgetExceeded {
		t.Fatal("budget exceeded flag not set")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("budget did not bound the run: %v", elapsed)
	}
	// The cross-check still audits what did complete.
	if cc := rep.CrossCheck; cc == nil || !cc.OK {
		t.Fatalf("cross-check failed after budget stop: %+v", cc)
	}
}

func TestRunOptionValidation(t *testing.T) {
	m := sharedModel(t)
	sc := smallScenario(1)
	pool, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{Pool: pool, BaseURL: "http://x"},                 // no scenario
		{Scenario: sc, BaseURL: "http://x"},               // no pool
		{Scenario: sc, Pool: pool},                        // no base URL
		{Scenario: &Scenario{}, Pool: pool, BaseURL: "x"}, // invalid scenario
	}
	for i, opts := range cases {
		if _, err := Run(context.Background(), opts); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := BuildPool(sc, nil); err == nil {
		t.Error("BuildPool accepted empty features")
	}
}

func TestFormatReportShape(t *testing.T) {
	m := sharedModel(t)
	sc := smallScenario(9)
	pool, err := BuildPool(sc, m.Features)
	if err != nil {
		t.Fatal(err)
	}
	ts := freshServer(t)
	rep, err := Run(context.Background(), Options{Scenario: sc, Pool: pool, BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatReport(rep)
	for _, needle := range []string{"scenario test", "ramp", "steady", "burst", "/v1/collect", "stream digest", "cross-check: OK"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("report missing %q:\n%s", needle, out)
		}
	}
}
