package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
)

// TCP mode drives the framed batch listener through the same
// deterministic machinery as the HTTP mode: workers claim global
// sequence indices in blocks of Options.TCPBatch and pipeline each
// block through one TCPClient.SubmitBatch call, so the server-side
// coalescer sees genuinely batched wire traffic. The ledger keeps its
// byte-identity contract — ok replies count as status "200", error
// replies as "400", and the stream digest hashes the identical binary
// bodies the HTTP mode would have posted.

// EndpointTCPLabel keys TCP-mode latency histograms in reports. The
// recorded unit is one SubmitBatch round trip (a whole pipelined
// block), not one frame.
const EndpointTCPLabel = "tcp"

// TCP listener counter families exported by internal/collect when a
// listener is attached to the HTTP server; the TCP cross-check
// reconciles their deltas against the client ledger.
const (
	tcpScoredFamily    = "polygraph_tcp_scored_total"
	tcpFlaggedFamily   = "polygraph_tcp_flagged_total"
	tcpBadFramesFamily = "polygraph_tcp_bad_frames_total"
)

// defaultTCPBatch is the frames-per-SubmitBatch block when
// Options.TCPBatch is zero.
const defaultTCPBatch = 64

// tcpPre holds the pre-run TCP counter values scraped from /metrics.
type tcpPre struct {
	scored    float64
	flagged   float64
	badFrames float64
	audit     [2]float64 // records, dropped
}

func newTCPPhaseState() *phaseState {
	return &phaseState{
		byStatus: map[int]int64{},
		hists:    map[string]*Hist{EndpointTCPLabel: new(Hist)},
	}
}

// runTCP is the TCP-mode twin of Run; Run dispatches here when
// Options.TCPAddr is set.
func runTCP(ctx context.Context, opts Options) (*Report, error) {
	sc := opts.Scenario
	if opts.Fleet != nil {
		return nil, fmt.Errorf("loadgen: TCP mode does not route through a fleet")
	}
	for i, r := range opts.Pool.Requests {
		if r.Payload == nil {
			return nil, fmt.Errorf(
				"loadgen: TCP mode needs an all-binary pool but entry %d has no payload (set json_mix and invalid_mix to 0)", i)
		}
	}
	if opts.BaseURL == "" && !opts.SkipCrossCheck {
		return nil, fmt.Errorf("loadgen: TCP mode needs Options.BaseURL for the /metrics cross-check (or SkipCrossCheck)")
	}
	batch := opts.TCPBatch
	if batch <= 0 {
		batch = defaultTCPBatch
	}

	if sc.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(sc.Budget))
		defer cancel()
	}

	client := opts.Client
	if client == nil {
		client = newClient(1) // scrapes only; frames ride raw TCP
	}
	var pre tcpPre
	if !opts.SkipCrossCheck {
		text, err := fetchExposition(ctx, client, opts.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: pre-run /metrics scrape: %w", err)
		}
		if pre, err = parseTCPCounters(text, opts.ExpectAudit); err != nil {
			return nil, fmt.Errorf("loadgen: pre-run /metrics: %w (is the TCP listener attached to this server?)", err)
		}
	}

	report := &Report{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Ledger: Ledger{
			Scenario: sc.Name,
			Seed:     sc.Seed,
			ByStatus: map[string]int64{},
		},
	}
	overall := map[string]*Hist{EndpointTCPLabel: new(Hist)}

	start := time.Now()
	var seq int64
	for _, phase := range sc.Phases {
		if ctx.Err() != nil {
			report.BudgetExceeded = true
			break
		}
		if opts.Hook != nil && opts.Hook.Start != nil {
			opts.Hook.Start(phase.Name)
		}
		ps := newTCPPhaseState()
		truncated := runTCPPhase(ctx, phase, opts.Pool, opts.TCPAddr, batch, &seq, ps, overall)

		pr := PhaseResult{
			Name:       phase.Name,
			Sent:       ps.sent.Load(),
			OK:         ps.ok.Load(),
			Flagged:    ps.flagged.Load(),
			Timeouts:   ps.timeout.Load(),
			ConnErrors: ps.connErr.Load(),
			ByStatus:   map[string]int64{},
			Latency:    map[string]Quantiles{},
			Truncated:  truncated,
		}
		elapsed := time.Since(start)
		for code, c := range ps.byStatus {
			key := strconv.Itoa(code)
			pr.ByStatus[key] = c
			report.Ledger.ByStatus[key] += c
		}
		for path, h := range ps.hists {
			if h.Count() > 0 {
				pr.Latency[path] = h.Summary()
			}
		}
		pr.Elapsed = elapsed - sumElapsed(report.Phases)
		if pr.Elapsed > 0 {
			pr.AchievedRPS = float64(pr.Sent) / pr.Elapsed.Seconds()
		}
		report.Phases = append(report.Phases, pr)
		report.Ledger.Sent += pr.Sent
		report.Ledger.Flagged += pr.Flagged
		report.Ledger.Timeouts += pr.Timeouts
		report.Ledger.ConnErrors += pr.ConnErrors
		report.Ledger.Phases = append(report.Ledger.Phases, PhaseLedger{
			Name:    phase.Name,
			Sent:    pr.Sent,
			OK:      pr.OK,
			Flagged: pr.Flagged,
		})
		if truncated {
			report.BudgetExceeded = true
		}
	}
	report.Elapsed = time.Since(start)
	report.Ledger.StreamDigest = opts.Pool.StreamDigest(report.Ledger.Sent)
	report.Overall = map[string]Quantiles{}
	for path, h := range overall {
		if h.Count() > 0 {
			report.Overall[path] = h.Summary()
		}
	}

	if !opts.SkipCrossCheck {
		cctx := ctx
		if ctx.Err() != nil {
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
		}
		post, err := fetchExposition(cctx, client, opts.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: post-run /metrics scrape: %w", err)
		}
		report.CrossCheck = crossCheckTCP(post, pre, &report.Ledger, opts.ExpectAudit)
	}
	return report, nil
}

// runTCPPhase executes one phase's TCP workers. Workers claim the
// shared sequence counter in blocks of batch, so block membership —
// and therefore every reply — is a pure function of (scenario, seed)
// regardless of which worker sends which block. Each worker keeps one
// connection and redials after a transport failure; a failed block is
// counted (sent + per-frame transport errors) but never resent, which
// keeps client and server frame counts reconcilable.
func runTCPPhase(ctx context.Context, phase Phase, pool *Pool, addr string, batch int, seq *int64, ps *phaseState, overall map[string]*Hist) bool {
	workers := phase.Concurrency
	if workers <= 0 {
		workers = 1
	}
	phaseStartSeq := atomic.LoadInt64(seq)
	phaseStart := time.Now()
	var truncated atomic.Bool

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var client *collect.TCPClient
			defer func() {
				if client != nil {
					client.Close()
				}
			}()
			for {
				// Claim a block, shrinking or returning the claim at
				// the phase boundary. The arithmetic is all atomic adds,
				// so concurrent over-claims at the boundary cancel out.
				claimEnd := atomic.AddInt64(seq, int64(batch))
				blockStart := claimEnd - int64(batch)
				size := int64(batch)
				if ctx.Err() != nil {
					truncated.Store(true)
					atomic.AddInt64(seq, -size)
					return
				}
				if phase.Requests > 0 {
					remain := int64(phase.Requests) - (blockStart - phaseStartSeq)
					if remain <= 0 {
						atomic.AddInt64(seq, -size)
						return
					}
					if remain < size {
						atomic.AddInt64(seq, remain-size)
						size = remain
					}
				} else if time.Since(phaseStart) >= time.Duration(phase.Duration) {
					atomic.AddInt64(seq, -size)
					return
				}
				if phase.RPS > 0 {
					due := phaseStart.Add(time.Duration(float64(blockStart-phaseStartSeq) / phase.RPS * float64(time.Second)))
					if wait := time.Until(due); wait > 0 {
						select {
						case <-time.After(wait):
						case <-ctx.Done():
							truncated.Store(true)
							atomic.AddInt64(seq, -size)
							return
						}
					}
				}
				if client == nil {
					c, err := collect.DialTCP(addr, 0)
					if err != nil {
						ps.sent.Add(size)
						ps.connErr.Add(size)
						continue
					}
					client = c
				}
				if !sendTCPBlock(client, pool, blockStart, size, ps, overall) {
					client.Close()
					client = nil
				}
			}
		}()
	}
	wg.Wait()
	return truncated.Load()
}

// sendTCPBlock pipelines one claimed block through SubmitBatch and
// tallies the replies. It reports false when the connection failed and
// should be redialed.
func sendTCPBlock(client *collect.TCPClient, pool *Pool, start, size int64, ps *phaseState, overall map[string]*Hist) bool {
	payloads := make([]*fingerprint.Payload, size)
	for k := int64(0); k < size; k++ {
		payloads[k] = pool.At(start + k).Payload
	}
	ps.sent.Add(size)
	t0 := time.Now()
	decs, err := client.SubmitBatch(payloads)
	elapsed := time.Since(t0)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			ps.timeout.Add(size)
		} else {
			ps.connErr.Add(size)
		}
		return false
	}
	// One histogram sample per pipelined block: the unit of latency in
	// TCP mode is the batch round trip.
	ps.hists[EndpointTCPLabel].Record(elapsed)
	overall[EndpointTCPLabel].Record(elapsed)
	for _, d := range decs {
		if d.Err {
			ps.countStatus(400)
			continue
		}
		ps.ok.Add(1)
		ps.countStatus(200)
		if d.Flagged {
			ps.flagged.Add(1)
		}
	}
	return true
}

// parseTCPCounters reads the TCP listener families (and optionally the
// audit families) from an exposition text.
func parseTCPCounters(text string, withAudit bool) (tcpPre, error) {
	var p tcpPre
	var err error
	if p.scored, err = obs.ParseMetric(text, tcpScoredFamily); err != nil {
		return p, err
	}
	if p.flagged, err = obs.ParseMetric(text, tcpFlaggedFamily); err != nil {
		return p, err
	}
	if p.badFrames, err = obs.ParseMetric(text, tcpBadFramesFamily); err != nil {
		return p, err
	}
	if withAudit {
		if p.audit[0], err = obs.ParseMetric(text, auditRecordsFamily); err != nil {
			return p, err
		}
		if p.audit[1], err = obs.ParseMetric(text, auditDroppedFamily); err != nil {
			return p, err
		}
	}
	return p, nil
}

// crossCheckTCP reconciles the client ledger against the TCP listener's
// own counters: every ok reply must be a server-scored frame, every
// flagged reply a server-flagged one, and every error reply a
// server-rejected frame. With audit enabled, the ledger accounting
// invariant (recorded + dropped == scored) holds exactly as in HTTP
// mode because the listener shares the HTTP server's audit ledger.
func crossCheckTCP(post string, pre tcpPre, ledger *Ledger, expectAudit bool) *CrossCheck {
	cc := &CrossCheck{}
	postC, err := parseTCPCounters(post, expectAudit)
	if err != nil {
		cc.Details = append(cc.Details, fmt.Sprintf("post-run /metrics: %v", err))
		return cc
	}
	cc.ClientOK = ledger.ByStatus["200"]
	cc.ServerReceivedDelta = int64(postC.scored - pre.scored)
	cc.ClientFlagged = ledger.Flagged
	cc.ServerFlaggedDelta = int64(postC.flagged - pre.flagged)
	cc.ServerRejectedDelta = int64(postC.badFrames - pre.badFrames)
	cc.ClientErrors = ledger.ByStatus["400"]
	cc.MetricsReceived = postC.scored

	if cc.ClientOK != cc.ServerReceivedDelta {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"client saw %d ok replies but server tcp scored counter moved by %d", cc.ClientOK, cc.ServerReceivedDelta))
	}
	if cc.ClientFlagged != cc.ServerFlaggedDelta {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"client decoded %d flagged replies but server tcp flagged counter moved by %d", cc.ClientFlagged, cc.ServerFlaggedDelta))
	}
	if ledger.Timeouts == 0 && ledger.ConnErrors == 0 && cc.ClientErrors != cc.ServerRejectedDelta {
		cc.Details = append(cc.Details, fmt.Sprintf(
			"client saw %d error replies but server tcp bad-frame counter moved by %d", cc.ClientErrors, cc.ServerRejectedDelta))
	}
	if expectAudit {
		cc.AuditRecordsDelta = int64(postC.audit[0] - pre.audit[0])
		cc.AuditDroppedDelta = int64(postC.audit[1] - pre.audit[1])
		ledger.AuditRecords = cc.AuditRecordsDelta
		ledger.AuditDropped = cc.AuditDroppedDelta
		if sum := cc.AuditRecordsDelta + cc.AuditDroppedDelta; sum != cc.ServerReceivedDelta {
			cc.Details = append(cc.Details, fmt.Sprintf(
				"audit ledger accounted for %d decisions (%d recorded + %d dropped) but server scored %d",
				sum, cc.AuditRecordsDelta, cc.AuditDroppedDelta, cc.ServerReceivedDelta))
		}
		if cc.AuditRecordsDelta == 0 && cc.ServerReceivedDelta > 0 {
			cc.Details = append(cc.Details,
				"audit expected but polygraph_audit_records_total did not move")
		}
	}
	cc.OK = len(cc.Details) == 0
	return cc
}
