package slo

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"polygraph/internal/obs"
)

// fixtureExposition is a handcrafted scrape carrying every family the
// SLI derivation reads: 100 /v1/collect requests (90 under 1024µs, 95
// under 4096µs), 5 server-fault rejects, 7 client-fault rejects, and a
// TCP listener at 50 scored / 5 bad frames.
const fixtureExposition = `# HELP polygraph_score_duration_microseconds h
# TYPE polygraph_score_duration_microseconds histogram
polygraph_score_duration_microseconds_bucket{endpoint="/v1/collect",le="1024"} 90
polygraph_score_duration_microseconds_bucket{endpoint="/v1/collect",le="4096"} 95
polygraph_score_duration_microseconds_bucket{endpoint="/v1/collect",le="+Inf"} 100
polygraph_score_duration_microseconds_sum{endpoint="/v1/collect"} 12345
polygraph_score_duration_microseconds_count{endpoint="/v1/collect"} 100
# HELP polygraph_collections_total c
# TYPE polygraph_collections_total counter
polygraph_collections_total 100
# HELP polygraph_rejected_total c
# TYPE polygraph_rejected_total counter
polygraph_rejected_total{reason="score"} 3
polygraph_rejected_total{reason="rate_limit"} 2
polygraph_rejected_total{reason="bad_json"} 7
# HELP polygraph_tcp_scored_total c
# TYPE polygraph_tcp_scored_total counter
polygraph_tcp_scored_total 50
# HELP polygraph_tcp_bad_frames_total c
# TYPE polygraph_tcp_bad_frames_total counter
polygraph_tcp_bad_frames_total 5
`

func fixtureSpec() *Spec {
	return &Spec{
		Name: "fixture",
		Objectives: []Objective{
			{Name: "lat", Kind: KindLatency, Endpoint: "/v1/collect", Target: 0.95, ThresholdUs: 2048, WindowS: 60},
			{Name: "avail", Kind: KindAvailability, Target: 0.99, WindowS: 60},
			{Name: "tcp-avail", Kind: KindAvailability, Endpoint: EndpointTCP, Target: 0.9, WindowS: 60},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Objectives: []Objective{{Name: "", Kind: KindLatency}}},
		{Name: "x", Objectives: []Objective{{Name: "a", Kind: "bogus", Target: 0.9, WindowS: 60}}},
		{Name: "x", Objectives: []Objective{{Name: "a", Kind: KindLatency, Target: 0.9, WindowS: 60}}},                                                                     // no endpoint/threshold
		{Name: "x", Objectives: []Objective{{Name: "a", Kind: KindAvailability, Target: 1.5, WindowS: 60}}},                                                                // target out of range
		{Name: "x", Objectives: []Objective{{Name: "a", Kind: KindAvailability, Target: 0.9, WindowS: 0}}},                                                                 // no window
		{Name: "x", Objectives: []Objective{{Name: "a", Kind: KindAvailability, Target: 0.9, WindowS: 60, ThresholdUs: 5}}},                                                // threshold on availability
		{Name: "x", Objectives: []Objective{{Name: "a", Kind: KindAvailability, Target: 0.9, WindowS: 60}, {Name: "a", Kind: KindAvailability, Target: 0.9, WindowS: 60}}}, // dup name
		{Name: "x", Windows: Windows{FastShortS: 600, FastLongS: 300}, Objectives: []Objective{{Name: "a", Kind: KindAvailability, Target: 0.9, WindowS: 60}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated clean", i)
		}
	}
}

func TestExtractCounters(t *testing.T) {
	ex := obs.ParseExpositionString(fixtureExposition)
	c := fixtureSpec().Extract(ex)
	want := []Counters{
		{Good: 90, Total: 100},  // largest le <= 2048 is 1024
		{Good: 100, Total: 105}, // 100 collections + 5 server-fault rejects
		{Good: 50, Total: 55},
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("Extract = %+v, want %+v", c, want)
	}

	// A threshold sitting exactly on a bucket bound counts that bucket.
	s := fixtureSpec()
	s.Objectives[0].ThresholdUs = 4096
	if c := s.Extract(ex); c[0].Good != 95 {
		t.Fatalf("threshold on bound: good = %v, want 95", c[0].Good)
	}

	// Absent families extract as zero counters.
	empty := obs.ParseExpositionString("")
	for i, c := range fixtureSpec().Extract(empty) {
		if c.Good != 0 || c.Total != 0 {
			t.Fatalf("objective %d: empty exposition extracted %+v", i, c)
		}
	}
}

func TestOfflineEvaluate(t *testing.T) {
	ex := obs.ParseExpositionString(fixtureExposition)
	res := Evaluate(fixtureSpec(), ex)
	// lat: 90/100 = 0.90 < 0.95 target → violated.
	if res[0].Met || res[0].SLI != 0.9 {
		t.Fatalf("lat result = %+v, want violated at SLI 0.9", res[0])
	}
	// avail: 100/105 ≈ 0.952 < 0.99 → violated.
	if res[1].Met {
		t.Fatalf("avail result = %+v, want violated", res[1])
	}
	// tcp-avail: 50/55 ≈ 0.909 ≥ 0.9 → met.
	if !res[2].Met {
		t.Fatalf("tcp-avail result = %+v, want met", res[2])
	}
	// Vacuous objectives are met.
	for _, r := range Evaluate(fixtureSpec(), obs.ParseExpositionString("")) {
		if !r.Met || !r.Vacuous || r.SLI != 1 {
			t.Fatalf("vacuous objective evaluated as %+v", r)
		}
	}
}

func TestSumCounters(t *testing.T) {
	a := []Counters{{Good: 1, Total: 2}, {Good: 3, Total: 4}}
	b := []Counters{{Good: 10, Total: 20}, {Good: 30, Total: 40}}
	want := []Counters{{Good: 11, Total: 22}, {Good: 33, Total: 44}}
	if got := SumCounters(a, b); !reflect.DeepEqual(got, want) {
		t.Fatalf("SumCounters = %+v, want %+v", got, want)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	data := []byte(`{
  "name": "t",
  "windows": {"fast_short_s": 1, "fast_long_s": 2, "fast_burn": 5, "slow_short_s": 2, "slow_long_s": 4, "slow_burn": 2},
  "objectives": [
    {"name": "a", "kind": "availability", "target": 0.99, "window_s": 60}
  ]
}`)
	s, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Windows.FastBurn != 5 || s.Objectives[0].Target != 0.99 {
		t.Fatalf("parsed spec = %+v", s)
	}
	if _, err := ParseSpec([]byte("{")); err == nil {
		t.Fatal("malformed JSON parsed clean")
	}
	if _, err := ParseSpec([]byte(`{"name":"x","objectives":[]}`)); err == nil {
		t.Fatal("empty objectives validated clean")
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(`{"name":"f","objectives":[{"name":"a","kind":"availability","target":0.9,"window_s":60}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing spec loaded clean")
	}
}

// TestCommittedSmokeSpecMatchesDefault pins scripts/slo-smoke.json — the
// spec CI's slocheck steps evaluate — to DefaultSpec, so the committed
// file and the built-in default cannot drift apart.
func TestCommittedSmokeSpecMatchesDefault(t *testing.T) {
	s, err := LoadSpec(filepath.Join("..", "..", "scripts", "slo-smoke.json"))
	if err != nil {
		t.Fatalf("committed smoke spec: %v", err)
	}
	if !reflect.DeepEqual(s, DefaultSpec()) {
		t.Fatalf("scripts/slo-smoke.json = %+v\ndiffers from DefaultSpec = %+v", s, DefaultSpec())
	}
}

func TestEvaluateCountersShortSlice(t *testing.T) {
	// A counter slice shorter than the spec (shape mismatch from a
	// stale caller) evaluates the missing tail as vacuous, not a panic.
	res := EvaluateCounters(fixtureSpec(), []Counters{{Good: 9, Total: 10}})
	if len(res) != 3 || !res[1].Vacuous || !res[2].Vacuous {
		t.Fatalf("short-slice evaluation = %+v", res)
	}
}

func TestBadReasonsOverride(t *testing.T) {
	ex := obs.ParseExpositionString(fixtureExposition)
	s := fixtureSpec()
	s.Objectives[1].BadReasons = []string{"bad_json"}
	c := s.Extract(ex)
	if c[1].Good != 100 || c[1].Total != 107 {
		t.Fatalf("override reasons: %+v, want 100/107", c[1])
	}
}

func TestDefaultSpecEndpointsExist(t *testing.T) {
	// Guard against typos: every latency objective in the default spec
	// names an endpoint label the serving stack actually exports.
	known := map[string]bool{"/v1/collect": true, "/v1/collect-json": true, "batch": true, EndpointTCP: true}
	for _, o := range DefaultSpec().Objectives {
		if o.Kind == KindLatency && !known[o.Endpoint] {
			t.Errorf("default spec latency objective %q targets unknown endpoint %q", o.Name, o.Endpoint)
		}
	}
	if !strings.HasPrefix(DefaultSpec().Name, "polygraph") {
		t.Error("default spec name should be polygraph-scoped")
	}
}
