// Package slo is the service-level-objective engine: a declarative spec
// of per-endpoint availability and latency-threshold objectives (e.g.
// "99% of /v1/collect under 262ms over 1h"), service-level indicators
// derived purely from the metric families the servers already export,
// and multi-window multi-burn-rate evaluation in the SRE-workbook style
// (fast 5m/1h and slow 30m/6h window pairs).
//
// SLIs are good/total event counts computed as deltas over the
// polygraph_score_duration_microseconds histogram buckets (latency
// objectives) and the polygraph_rejected_total / polygraph_tcp_*
// counters (availability objectives), snapshotted on a deterministic
// tick into fixed-size ring windows. Nothing in the evaluation reads a
// wall clock: the same sequence of snapshots always yields the same
// burn rates, the same alert transitions, and byte-identical
// /debug/slo JSON — the repo-wide determinism contract, extended to
// alerting.
//
// The package sits directly above internal/obs (the exposition parser
// and writers) and below collect/serving/fleet, so a replica can
// evaluate its own scrape, the balancer can aggregate per-replica
// deltas into a fleet-level rollup, and cmd/slocheck can replay a spec
// offline against a metrics dump or a support bundle.
package slo

import (
	"encoding/json"
	"fmt"
	"os"

	"polygraph/internal/obs"
)

// Objective kinds.
const (
	// KindLatency counts an event good when it lands at or under the
	// objective's latency threshold (rounded down to the exported
	// histogram's nearest bucket bound).
	KindLatency = "latency"
	// KindAvailability counts an event good when the server produced a
	// verdict for it; the bad set is the configured server-fault subset
	// of the reject taxonomy (client-caused rejects never burn budget).
	KindAvailability = "availability"
)

// Metric family names the SLI derivation reads.
const (
	famScoreDuration = "polygraph_score_duration_microseconds"
	famCollections   = "polygraph_collections_total"
	famRejected      = "polygraph_rejected_total"
	famTCPScored     = "polygraph_tcp_scored_total"
	famTCPBadFrames  = "polygraph_tcp_bad_frames_total"
)

// EndpointTCP selects the framed-TCP listener's counters for an
// availability objective (and its histogram label for latency).
const EndpointTCP = "tcp"

// DefaultBadReasons is the server-fault subset of the reject taxonomy
// an HTTP availability objective counts against the error budget when
// the spec lists none: internal scoring failures and load shedding.
// Client-caused rejects (malformed payloads, bad versions) are the
// service working as intended.
var DefaultBadReasons = []string{"score", "rate_limit"}

// Windows configures the burn-rate window pairs. Zero values take the
// SRE-workbook defaults (fast 5m/1h at 14.4x, slow 30m/6h at 6x);
// tests and short-lived harness runs shrink them to fit their horizon.
type Windows struct {
	FastShortS int     `json:"fast_short_s,omitempty"`
	FastLongS  int     `json:"fast_long_s,omitempty"`
	FastBurn   float64 `json:"fast_burn,omitempty"`
	SlowShortS int     `json:"slow_short_s,omitempty"`
	SlowLongS  int     `json:"slow_long_s,omitempty"`
	SlowBurn   float64 `json:"slow_burn,omitempty"`
}

// withDefaults fills zero fields with the SRE-workbook values.
func (w Windows) withDefaults() Windows {
	if w.FastShortS == 0 {
		w.FastShortS = 300
	}
	if w.FastLongS == 0 {
		w.FastLongS = 3600
	}
	if w.FastBurn == 0 {
		w.FastBurn = 14.4
	}
	if w.SlowShortS == 0 {
		w.SlowShortS = 1800
	}
	if w.SlowLongS == 0 {
		w.SlowLongS = 21600
	}
	if w.SlowBurn == 0 {
		w.SlowBurn = 6
	}
	return w
}

// Objective is one declarative objective over a rolling compliance
// window.
type Objective struct {
	Name string `json:"name"`
	// Kind is KindLatency or KindAvailability.
	Kind string `json:"kind"`
	// Endpoint selects the histogram series for latency objectives
	// ("/v1/collect", "/v1/collect-json", "batch", "tcp") and the
	// counter set for availability ones ("" = HTTP ingest, "tcp" = the
	// framed listener).
	Endpoint string `json:"endpoint,omitempty"`
	// Target is the objective ratio, e.g. 0.999 for three nines.
	Target float64 `json:"target"`
	// ThresholdUs is the latency threshold in microseconds (latency
	// objectives only). Counting rounds it down to the histogram's
	// nearest power-of-two bucket bound, so thresholds on a bound
	// (4096, 262144, ...) are exact.
	ThresholdUs float64 `json:"threshold_us,omitempty"`
	// WindowS is the rolling compliance window in seconds.
	WindowS int `json:"window_s"`
	// BadReasons overrides the reject reasons an HTTP availability
	// objective counts as budget burn (default DefaultBadReasons).
	BadReasons []string `json:"bad_reasons,omitempty"`
}

// Spec is a full declarative SLO specification.
type Spec struct {
	Name       string      `json:"name"`
	Windows    Windows     `json:"windows,omitempty"`
	Objectives []Objective `json:"objectives"`
}

// Validate rejects impossible specs before any evaluation.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("slo: spec has no name")
	}
	if len(s.Objectives) == 0 {
		return fmt.Errorf("slo: spec %q has no objectives", s.Name)
	}
	w := s.Windows.withDefaults()
	if w.FastShortS > w.FastLongS || w.SlowShortS > w.SlowLongS {
		return fmt.Errorf("slo: spec %q: burn windows must pair short<=long", s.Name)
	}
	if w.FastBurn <= 0 || w.SlowBurn <= 0 {
		return fmt.Errorf("slo: spec %q: burn thresholds must be positive", s.Name)
	}
	names := map[string]bool{}
	for i, o := range s.Objectives {
		if o.Name == "" {
			return fmt.Errorf("slo: objective %d has no name", i)
		}
		if names[o.Name] {
			return fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		names[o.Name] = true
		if o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("slo: objective %q: target %v outside (0,1)", o.Name, o.Target)
		}
		if o.WindowS <= 0 {
			return fmt.Errorf("slo: objective %q: window_s must be positive", o.Name)
		}
		switch o.Kind {
		case KindLatency:
			if o.Endpoint == "" {
				return fmt.Errorf("slo: latency objective %q needs an endpoint", o.Name)
			}
			if o.ThresholdUs <= 0 {
				return fmt.Errorf("slo: latency objective %q needs threshold_us > 0", o.Name)
			}
		case KindAvailability:
			if o.ThresholdUs != 0 {
				return fmt.Errorf("slo: availability objective %q cannot set threshold_us", o.Name)
			}
		default:
			return fmt.Errorf("slo: objective %q: unknown kind %q", o.Name, o.Kind)
		}
	}
	return nil
}

// ParseSpec parses and validates a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("slo: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: read spec: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("slo: %s: %w", path, err)
	}
	return s, nil
}

// DefaultSpec is the built-in production spec polygraphd and the CI
// smoke harness evaluate when no spec file is given. Thresholds sit on
// histogram bucket bounds (2^18 µs ≈ 262 ms, one bucket above the CI
// 250 ms p99 ceiling) so a healthy smoke run passes with margin and a
// genuine breach fails crisply. scripts/slo-smoke.json is this spec's
// committed twin; a test pins the two together.
func DefaultSpec() *Spec {
	return &Spec{
		Name: "polygraph-default",
		Objectives: []Objective{
			{Name: "ingest-availability", Kind: KindAvailability, Target: 0.999, WindowS: 3600},
			{Name: "collect-latency", Kind: KindLatency, Endpoint: "/v1/collect", Target: 0.99, ThresholdUs: 262144, WindowS: 3600},
			{Name: "collect-json-latency", Kind: KindLatency, Endpoint: "/v1/collect-json", Target: 0.99, ThresholdUs: 262144, WindowS: 3600},
			{Name: "tcp-latency", Kind: KindLatency, Endpoint: EndpointTCP, Target: 0.99, ThresholdUs: 262144, WindowS: 3600},
			{Name: "tcp-availability", Kind: KindAvailability, Endpoint: EndpointTCP, Target: 0.999, WindowS: 3600},
		},
	}
}

// Counters is one objective's cumulative good/total event counts at a
// snapshot instant. Counts are cumulative since process start (the
// shape of every exported counter), so deltas between snapshots are
// exact event counts.
type Counters struct {
	Good  float64 `json:"good"`
	Total float64 `json:"total"`
}

// Extract derives every objective's cumulative counters from one parsed
// exposition. Absent families yield zero counters (a replica that has
// not served the endpoint yet), never an error — vacuous objectives
// evaluate as meeting their target.
func (s *Spec) Extract(ex *obs.Exposition) []Counters {
	out := make([]Counters, len(s.Objectives))
	for i := range s.Objectives {
		out[i] = s.Objectives[i].extract(ex)
	}
	return out
}

func (o *Objective) extract(ex *obs.Exposition) Counters {
	switch o.Kind {
	case KindLatency:
		series := ex.Histogram(famScoreDuration, "endpoint")[o.Endpoint]
		if len(series) == 0 {
			return Counters{}
		}
		var c Counters
		c.Total = series[len(series)-1].Cum
		for _, b := range series {
			if b.Le <= o.ThresholdUs {
				c.Good = b.Cum
			}
		}
		return c
	case KindAvailability:
		if o.Endpoint == EndpointTCP {
			good := valueOrZero(ex, famTCPScored)
			bad := valueOrZero(ex, famTCPBadFrames)
			return Counters{Good: good, Total: good + bad}
		}
		good := valueOrZero(ex, famCollections)
		reasons := o.BadReasons
		if len(reasons) == 0 {
			reasons = DefaultBadReasons
		}
		var bad float64
		for _, s := range ex.Samples(famRejected) {
			for _, r := range reasons {
				if s.Label("reason") == r {
					bad += s.Value
				}
			}
		}
		return Counters{Good: good, Total: good + bad}
	}
	return Counters{}
}

// valueOrZero reads an unlabeled counter, 0 when absent.
func valueOrZero(ex *obs.Exposition, name string) float64 {
	v, err := ex.Value(name)
	if err != nil {
		return 0
	}
	return v
}

// SumCounters adds b into a element-wise (fleet rollup: the sum of
// per-replica cumulative counters is the fleet's cumulative counters).
// The slices must be the same spec's shape.
func SumCounters(a, b []Counters) []Counters {
	out := make([]Counters, len(a))
	for i := range a {
		out[i] = Counters{Good: a[i].Good + b[i].Good, Total: a[i].Total + b[i].Total}
	}
	return out
}

// Result is one objective's offline evaluation over a whole lifetime
// window (cumulative counters treated as a single delta from zero).
type Result struct {
	Objective string  `json:"objective"`
	Kind      string  `json:"kind"`
	Endpoint  string  `json:"endpoint,omitempty"`
	Target    float64 `json:"target"`
	Good      float64 `json:"good"`
	Total     float64 `json:"total"`
	SLI       float64 `json:"sli"`
	// Vacuous marks an objective with no observed events (absent
	// family or idle endpoint); vacuous objectives are met.
	Vacuous bool `json:"vacuous,omitempty"`
	Met     bool `json:"met"`
}

// EvaluateCounters applies the spec's targets to one cumulative counter
// snapshot — the offline (slocheck / bundle-analyzer) evaluation, where
// a metrics dump's lifetime counters are the only window there is.
func EvaluateCounters(spec *Spec, c []Counters) []Result {
	out := make([]Result, len(spec.Objectives))
	for i, o := range spec.Objectives {
		r := Result{Objective: o.Name, Kind: o.Kind, Endpoint: o.Endpoint, Target: o.Target}
		if i < len(c) {
			r.Good, r.Total = c[i].Good, c[i].Total
		}
		r.SLI, r.Vacuous = sli(r.Good, r.Total)
		r.Met = r.Vacuous || r.SLI >= o.Target
		out[i] = r
	}
	return out
}

// Evaluate is the one-shot offline form: extract counters from an
// exposition and apply the targets.
func Evaluate(spec *Spec, ex *obs.Exposition) []Result {
	return EvaluateCounters(spec, spec.Extract(ex))
}

// sli computes good/total, reporting a vacuous (no events) window as a
// perfect 1.
func sli(good, total float64) (v float64, vacuous bool) {
	if total <= 0 {
		return 1, true
	}
	return good / total, false
}
