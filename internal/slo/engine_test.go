package slo

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"polygraph/internal/obs"
)

// tightSpec is a 1-second-tick spec small enough to exercise every
// window within a handful of ticks: fast pair 1s/2s at 5x, slow pair
// 2s/4s at 2x, one availability objective at 99% over 4s.
func tightSpec() *Spec {
	return &Spec{
		Name:    "tight",
		Windows: Windows{FastShortS: 1, FastLongS: 2, FastBurn: 5, SlowShortS: 2, SlowLongS: 4, SlowBurn: 2},
		Objectives: []Objective{
			{Name: "avail", Kind: KindAvailability, Target: 0.99, WindowS: 4},
		},
	}
}

func tightEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Config{Spec: tightSpec(), IntervalS: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestEngineVacuousBaseline(t *testing.T) {
	e := tightEngine(t)
	st := e.Status()
	if st.Tick != 0 || st.Alerting {
		t.Fatalf("baseline page = %+v", st)
	}
	o := st.Objectives[0]
	if o.SLI != 1 || o.BudgetRemaining != 1 || o.Total != 0 {
		t.Fatalf("baseline objective = %+v, want vacuous green", o)
	}
	// Families are present before any tick so promlint's required list
	// holds even on a replica that has not completed its first interval.
	var b strings.Builder
	e.WriteMetrics(&b)
	for _, fam := range []string{"polygraph_slo_target", "polygraph_slo_sli",
		"polygraph_slo_error_budget_remaining", "polygraph_slo_burn_rate", "polygraph_slo_alert"} {
		if !strings.Contains(b.String(), fam) {
			t.Fatalf("baseline metrics missing %s:\n%s", fam, b.String())
		}
	}
}

// TestEngineBurnRateMath pins the burn-rate arithmetic: 10% bad traffic
// against a 99% objective burns at (0.10)/(0.01) = 10x.
func TestEngineBurnRateMath(t *testing.T) {
	e := tightEngine(t)
	e.TickCounters([]Counters{{Good: 900, Total: 1000}})
	st := e.Status()
	o := st.Objectives[0]
	if o.SLI != 0.9 {
		t.Fatalf("SLI = %v, want 0.9", o.SLI)
	}
	// Budget remaining: 1 - 0.1/0.01 = -9 (overspent 9 budgets).
	if got := o.BudgetRemaining; got < -9.0001 || got > -8.9999 {
		t.Fatalf("budget remaining = %v, want -9", got)
	}
	for _, bw := range o.Burn {
		if bw.Rate < 9.9999 || bw.Rate > 10.0001 {
			t.Fatalf("window %s rate = %v, want 10", bw.Window, bw.Rate)
		}
	}
	// 10x exceeds the fast threshold (5) and the slow one (2): both
	// pairs over in both windows → alert fires.
	if !o.FastBurn || !o.SlowBurn || !o.Alerting || !st.Alerting || !e.Alerting() {
		t.Fatalf("objective not alerting: %+v", o)
	}
}

func TestEngineAlertClearsAfterCleanTraffic(t *testing.T) {
	e := tightEngine(t)
	e.TickCounters([]Counters{{Good: 900, Total: 1000}})
	if !e.Alerting() {
		t.Fatal("breach did not trip the alert")
	}
	// Clean traffic: each tick adds 1000 good events. The fast pair
	// clears as soon as its short window holds only clean deltas; the
	// slow pair keeps firing until the 4s slow-long window rolls the
	// bad tick out entirely.
	cum := Counters{Good: 900, Total: 1000}
	for i := 0; i < 3; i++ {
		cum.Good += 1000
		cum.Total += 1000
		e.TickCounters([]Counters{cum})
		st := e.Status().Objectives[0]
		if st.FastBurn {
			t.Fatalf("tick %d: fast pair still firing: %+v", i, st)
		}
	}
	if e.Alerting() {
		t.Fatalf("alert still firing after bad tick rolled out: %+v", e.Status().Objectives[0])
	}
}

// TestEngineDeterministicJSON is the acceptance pin: the same snapshot
// sequence yields byte-identical /debug/slo JSON across independent
// engines, including while concurrent readers hammer the page.
func TestEngineDeterministicJSON(t *testing.T) {
	seq := [][]Counters{
		{{Good: 500, Total: 500}},
		{{Good: 900, Total: 1000}},
		{{Good: 1850, Total: 2000}},
		{{Good: 2850, Total: 3000}},
	}
	render := func(concurrent bool) string {
		e := tightEngine(t)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if concurrent {
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						var b bytes.Buffer
						e.WriteJSON(&b)
						e.WriteMetrics(&b)
						e.Status()
						e.Alerting()
					}
				}()
			}
		}
		for _, c := range seq {
			e.TickCounters(c)
		}
		close(stop)
		wg.Wait()
		var b bytes.Buffer
		if err := e.WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.String()
	}
	solo := render(false)
	for i := 0; i < 3; i++ {
		if got := render(true); got != solo {
			t.Fatalf("run %d JSON differs:\n%s\nvs\n%s", i, got, solo)
		}
	}
	if !strings.Contains(solo, `"tick": 4`) {
		t.Fatalf("page missing tick count:\n%s", solo)
	}
}

func TestEngineMetricsLintClean(t *testing.T) {
	e := tightEngine(t)
	e.TickCounters([]Counters{{Good: 900, Total: 1000}})
	var b strings.Builder
	e.WriteMetrics(&b)
	problems, err := obs.Lint(strings.NewReader(b.String()),
		"polygraph_slo_target", "polygraph_slo_sli",
		"polygraph_slo_error_budget_remaining", "polygraph_slo_burn_rate", "polygraph_slo_alert")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, p := range problems {
		t.Errorf("slo metrics lint dirty: %s", p)
	}
	if !strings.Contains(b.String(), `polygraph_slo_alert{objective="avail"} 1`) {
		t.Fatalf("alert gauge not 1 after breach:\n%s", b.String())
	}

	// The fleet prefix renders the same families under fleet names.
	var fb strings.Builder
	e.WriteMetricsAs(&fb, "polygraph_fleet_slo")
	if !strings.Contains(fb.String(), "polygraph_fleet_slo_burn_rate") {
		t.Fatalf("fleet prefix missing:\n%s", fb.String())
	}
}

func TestEngineTickExpositionAndSource(t *testing.T) {
	spec := &Spec{
		Name:    "src",
		Windows: Windows{FastShortS: 1, FastLongS: 2, FastBurn: 5, SlowShortS: 2, SlowLongS: 4, SlowBurn: 2},
		Objectives: []Objective{
			{Name: "lat", Kind: KindLatency, Endpoint: "/v1/collect", Target: 0.95, ThresholdUs: 2048, WindowS: 4},
		},
	}
	e, err := NewEngine(Config{Spec: spec, IntervalS: 1, Source: func() *obs.Exposition {
		return obs.ParseExpositionString(fixtureExposition)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.TickNow(); err != nil {
		t.Fatalf("TickNow: %v", err)
	}
	o := e.Status().Objectives[0]
	if o.Good != 90 || o.Total != 100 {
		t.Fatalf("objective after source tick = %+v, want 90/100", o)
	}

	noSrc := tightEngine(t)
	if err := noSrc.TickNow(); err == nil {
		t.Fatal("TickNow without a source succeeded")
	}
}

func TestEngineServeHTTP(t *testing.T) {
	e := tightEngine(t)
	e.TickCounters([]Counters{{Good: 10, Total: 10}})
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"spec": "tight"`) {
		t.Fatalf("body missing spec name:\n%s", rec.Body.String())
	}
}

func TestEngineRingBounded(t *testing.T) {
	e := tightEngine(t)
	cum := Counters{}
	for i := 0; i < 100; i++ {
		cum.Good += 10
		cum.Total += 10
		e.TickCounters([]Counters{cum})
	}
	e.mu.Lock()
	n := len(e.ring)
	e.mu.Unlock()
	// Longest window is 4s at 1s ticks → 4 ticks + 1 baseline slot.
	if n > 5 {
		t.Fatalf("ring grew to %d entries, want <= 5", n)
	}
	if got := e.Status().Tick; got != 100 {
		t.Fatalf("tick = %d, want 100", got)
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("engine without spec built clean")
	}
	if _, err := NewEngine(Config{Spec: &Spec{}}); err == nil {
		t.Fatal("engine with invalid spec built clean")
	}
	huge := tightSpec()
	huge.Objectives[0].WindowS = 1 << 22
	if _, err := NewEngine(Config{Spec: huge, IntervalS: 1}); err == nil {
		t.Fatal("engine with oversized ring built clean")
	}
}

func TestEngineScopeInPage(t *testing.T) {
	e, err := NewEngine(Config{Spec: tightSpec(), IntervalS: 1, Scope: "replica r0"})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	e.WriteJSON(&b)
	if !strings.Contains(b.String(), `"scope": "replica r0"`) {
		t.Fatalf("scope missing:\n%s", b.String())
	}
}

func TestEnginePartialWindowWarmup(t *testing.T) {
	// With only one tick of history, every window falls back to the
	// zero baseline — the delta is the lifetime total, not zero.
	e := tightEngine(t)
	e.TickCounters([]Counters{{Good: 100, Total: 100}})
	for _, bw := range e.Status().Objectives[0].Burn {
		if bw.Total != 100 {
			t.Fatalf("window %s total = %v, want 100 (partial-window fallback)", bw.Window, bw.Total)
		}
	}
}

func ExampleEngine_WriteJSON() {
	e, _ := NewEngine(Config{Spec: &Spec{
		Name:    "example",
		Windows: Windows{FastShortS: 1, FastLongS: 1, FastBurn: 5, SlowShortS: 1, SlowLongS: 1, SlowBurn: 2},
		Objectives: []Objective{
			{Name: "avail", Kind: KindAvailability, Target: 0.99, WindowS: 1},
		},
	}, IntervalS: 1})
	e.TickCounters([]Counters{{Good: 99, Total: 100}})
	st := e.Status().Objectives[0]
	fmt.Printf("sli=%.2f burn(fast_short)=%.0f alerting=%v\n", st.SLI, st.Burn[0].Rate, st.Alerting)
	// Output: sli=0.99 burn(fast_short)=1 alerting=false
}
