package slo

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"polygraph/internal/obs"
)

// Burn-window roles: the four windows of the two SRE-workbook pairs.
// Roles (not durations) label the exported burn-rate series so alert
// routing stays stable when a spec tunes its window lengths.
const (
	WindowFastShort = "fast_short"
	WindowFastLong  = "fast_long"
	WindowSlowShort = "slow_short"
	WindowSlowLong  = "slow_long"
)

// Config configures an Engine.
type Config struct {
	Spec *Spec
	// IntervalS is the logical tick period in seconds the ring windows
	// are denominated in (default 10). The engine itself never reads a
	// clock — callers tick it, on a wall timer (Run) or deterministically
	// (tests, the loadgen harness).
	IntervalS int
	// Source produces the exposition each TickNow snapshots. Optional:
	// a rollup that sums counters itself drives TickCounters directly.
	Source func() *obs.Exposition
	// Logger receives structured alert transitions (nil = silent).
	Logger *slog.Logger
	// Scope names this engine in alert logs and the JSON page
	// ("replica r0", "fleet").
	Scope string
}

// snapshot is one tick's cumulative counters for every objective.
type snapshot struct {
	tick int64
	c    []Counters
}

// Engine evaluates a spec over a ring of deterministic snapshots.
type Engine struct {
	spec      *Spec
	win       Windows
	intervalS int
	source    func() *obs.Exposition
	logger    *slog.Logger
	scope     string
	maxTicks  int

	mu   sync.Mutex
	tick int64
	ring []snapshot
	page Page
}

// NewEngine builds an engine and evaluates the implicit zero baseline
// (tick 0, all counters zero — exact, because exported counters are
// cumulative since process start), so the polygraph_slo_* families are
// present and vacuously green before the first tick fires.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("slo: engine needs a spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.IntervalS == 0 {
		cfg.IntervalS = 10
	}
	if cfg.IntervalS < 0 {
		return nil, fmt.Errorf("slo: interval %ds must be positive", cfg.IntervalS)
	}
	e := &Engine{
		spec:      cfg.Spec,
		win:       cfg.Spec.Windows.withDefaults(),
		intervalS: cfg.IntervalS,
		source:    cfg.Source,
		logger:    cfg.Logger,
		scope:     cfg.Scope,
	}
	longest := e.win.SlowLongS
	if e.win.FastLongS > longest {
		longest = e.win.FastLongS
	}
	for _, o := range cfg.Spec.Objectives {
		if o.WindowS > longest {
			longest = o.WindowS
		}
	}
	e.maxTicks = e.windowTicks(longest)
	if e.maxTicks > 1<<20 {
		return nil, fmt.Errorf("slo: window %ds at interval %ds needs %d ring slots (cap %d); raise the interval",
			longest, e.intervalS, e.maxTicks, 1<<20)
	}
	e.mu.Lock()
	e.ring = []snapshot{{tick: 0, c: make([]Counters, len(cfg.Spec.Objectives))}}
	e.evaluateLocked()
	e.mu.Unlock()
	return e, nil
}

// Spec returns the engine's spec.
func (e *Engine) Spec() *Spec { return e.spec }

// windowTicks converts a window length to whole ticks (minimum 1).
func (e *Engine) windowTicks(ws int) int {
	t := (ws + e.intervalS - 1) / e.intervalS
	if t < 1 {
		t = 1
	}
	return t
}

// TickNow scrapes the configured source and advances one tick.
func (e *Engine) TickNow() error {
	if e.source == nil {
		return fmt.Errorf("slo: engine has no source")
	}
	ex := e.source()
	if ex == nil {
		return fmt.Errorf("slo: source returned no exposition")
	}
	e.TickExposition(ex)
	return nil
}

// TickExposition extracts the spec's counters from ex and advances one
// tick.
func (e *Engine) TickExposition(ex *obs.Exposition) {
	e.TickCounters(e.spec.Extract(ex))
}

// TickCounters appends one cumulative counter snapshot and re-evaluates
// every objective. This is the engine's only mutation path; everything
// downstream (JSON page, metric families, alert transitions) is a pure
// function of the snapshot sequence.
func (e *Engine) TickCounters(c []Counters) {
	e.mu.Lock()
	e.tick++
	e.ring = append(e.ring, snapshot{tick: e.tick, c: c})
	if len(e.ring) > e.maxTicks+1 {
		e.ring = e.ring[len(e.ring)-(e.maxTicks+1):]
	}
	prev := make([]bool, len(e.page.Objectives))
	for i, o := range e.page.Objectives {
		prev[i] = o.Alerting
	}
	e.evaluateLocked()
	page := e.page
	e.mu.Unlock()

	if e.logger == nil {
		return
	}
	for i, o := range page.Objectives {
		if o.Alerting == prev[i] {
			continue
		}
		attrs := []any{
			"scope", e.scope, "objective", o.Name, "tick", page.Tick,
			"sli", o.SLI, "budget_remaining", o.BudgetRemaining,
			"fast_burn", o.FastBurn, "slow_burn", o.SlowBurn,
		}
		if o.Alerting {
			e.logger.Warn("slo: burn-rate alert firing", attrs...)
		} else {
			e.logger.Info("slo: burn-rate alert cleared", attrs...)
		}
	}
}

// Run ticks the engine from its source every interval until ctx ends —
// the live loop a serving replica runs. Wall time only schedules the
// ticks; the evaluation itself stays a function of the snapshots.
func (e *Engine) Run(ctx context.Context, interval time.Duration) {
	if e.source == nil || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := e.TickNow(); err != nil && e.logger != nil {
				e.logger.Warn("slo: tick failed", "scope", e.scope, "err", err)
			}
		}
	}
}

// BurnWindow is one evaluated burn-rate window.
type BurnWindow struct {
	// Window is the role (fast_short, fast_long, slow_short, slow_long).
	Window  string  `json:"window"`
	WindowS int     `json:"window_s"`
	Good    float64 `json:"good"`
	Total   float64 `json:"total"`
	// Rate is the burn rate: (bad fraction in the window) / (1-target).
	// 1.0 burns the budget exactly at the sustainable pace; the pair
	// thresholds (14.4 fast, 6 slow) page well before exhaustion.
	Rate float64 `json:"rate"`
}

// ObjectiveStatus is one objective's current evaluation.
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Endpoint    string  `json:"endpoint,omitempty"`
	Target      float64 `json:"target"`
	ThresholdUs float64 `json:"threshold_us,omitempty"`
	WindowS     int     `json:"window_s"`
	// Good/Total/SLI cover the rolling compliance window.
	Good            float64      `json:"good"`
	Total           float64      `json:"total"`
	SLI             float64      `json:"sli"`
	BudgetRemaining float64      `json:"budget_remaining"`
	Burn            []BurnWindow `json:"burn"`
	FastBurn        bool         `json:"fast_burn"`
	SlowBurn        bool         `json:"slow_burn"`
	Alerting        bool         `json:"alerting"`
}

// Page is the full /debug/slo document. For a fixed snapshot sequence
// its JSON rendering is byte-identical across runs and worker counts.
type Page struct {
	Spec       string            `json:"spec"`
	Scope      string            `json:"scope,omitempty"`
	Tick       int64             `json:"tick"`
	IntervalS  int               `json:"interval_s"`
	Windows    Windows           `json:"windows"`
	Alerting   bool              `json:"alerting"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// evaluateLocked recomputes the page from the ring. Callers hold e.mu.
func (e *Engine) evaluateLocked() {
	page := Page{
		Spec:      e.spec.Name,
		Scope:     e.scope,
		Tick:      e.tick,
		IntervalS: e.intervalS,
		Windows:   e.win,
	}
	roles := []struct {
		name    string
		windowS int
		burn    float64
		fast    bool
	}{
		{WindowFastShort, e.win.FastShortS, e.win.FastBurn, true},
		{WindowFastLong, e.win.FastLongS, e.win.FastBurn, true},
		{WindowSlowShort, e.win.SlowShortS, e.win.SlowBurn, false},
		{WindowSlowLong, e.win.SlowLongS, e.win.SlowBurn, false},
	}
	for i, o := range e.spec.Objectives {
		st := ObjectiveStatus{
			Name: o.Name, Kind: o.Kind, Endpoint: o.Endpoint,
			Target: o.Target, ThresholdUs: o.ThresholdUs, WindowS: o.WindowS,
		}
		st.Good, st.Total = e.deltaLocked(i, e.windowTicks(o.WindowS))
		sliV, _ := sli(st.Good, st.Total)
		st.SLI = sliV
		st.BudgetRemaining = 1 - (1-sliV)/(1-o.Target)

		fastOver, slowOver := 0, 0
		for _, role := range roles {
			g, t := e.deltaLocked(i, e.windowTicks(role.windowS))
			bw := BurnWindow{Window: role.name, WindowS: role.windowS, Good: g, Total: t}
			if t > 0 {
				bw.Rate = (1 - g/t) / (1 - o.Target)
			}
			if bw.Rate >= role.burn {
				if role.fast {
					fastOver++
				} else {
					slowOver++
				}
			}
			st.Burn = append(st.Burn, bw)
		}
		// A pair alerts only when BOTH its windows burn over threshold:
		// the short window proves the problem is current, the long one
		// proves it is material.
		st.FastBurn = fastOver == 2
		st.SlowBurn = slowOver == 2
		st.Alerting = st.FastBurn || st.SlowBurn
		if st.Alerting {
			page.Alerting = true
		}
		page.Objectives = append(page.Objectives, st)
	}
	e.page = page
}

// deltaLocked returns objective idx's good/total event deltas over the
// last windowTicks ticks: newest snapshot minus the newest snapshot at
// or before (now - window). Histories shorter than the window fall back
// to the oldest snapshot — a partial window, the standard rolling-SLI
// warm-up behavior.
func (e *Engine) deltaLocked(idx, windowTicks int) (good, total float64) {
	cur := e.ring[len(e.ring)-1]
	base := e.ring[0]
	cutoff := cur.tick - int64(windowTicks)
	for i := len(e.ring) - 1; i >= 0; i-- {
		if e.ring[i].tick <= cutoff {
			base = e.ring[i]
			break
		}
	}
	good = cur.c[idx].Good - base.c[idx].Good
	total = cur.c[idx].Total - base.c[idx].Total
	if good < 0 {
		good = 0
	}
	if total < 0 {
		total = 0
	}
	return good, total
}

// Status returns a copy of the current page.
func (e *Engine) Status() Page {
	e.mu.Lock()
	defer e.mu.Unlock()
	page := e.page
	page.Objectives = append([]ObjectiveStatus(nil), e.page.Objectives...)
	return page
}

// Alerting reports whether any objective's burn-rate alert is firing.
func (e *Engine) Alerting() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.page.Alerting
}

// WriteJSON renders the /debug/slo page. Deterministic: same snapshot
// sequence, same bytes.
func (e *Engine) WriteJSON(w io.Writer) error {
	page := e.Status()
	data, err := json.MarshalIndent(&page, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ServeHTTP serves the JSON page (mounted at GET /debug/slo).
func (e *Engine) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	e.WriteJSON(w)
}

// WriteMetrics emits the polygraph_slo_* families.
func (e *Engine) WriteMetrics(w io.Writer) { e.WriteMetricsAs(w, "polygraph_slo") }

// WriteMetricsAs emits the engine's families under an alternate prefix
// (the fleet rollup uses polygraph_fleet_slo so its families can share
// an exposition with a replica's own).
func (e *Engine) WriteMetricsAs(w io.Writer, prefix string) {
	page := e.Status()
	n := len(page.Objectives)
	target := make([]obs.LabeledValue, 0, n)
	sliS := make([]obs.LabeledValue, 0, n)
	budget := make([]obs.LabeledValue, 0, n)
	alert := make([]obs.LabeledValue, 0, n)
	var burn []obs.MultiSeries
	for _, o := range page.Objectives {
		target = append(target, obs.LabeledValue{Label: o.Name, Value: o.Target})
		sliS = append(sliS, obs.LabeledValue{Label: o.Name, Value: o.SLI})
		budget = append(budget, obs.LabeledValue{Label: o.Name, Value: o.BudgetRemaining})
		av := 0.0
		if o.Alerting {
			av = 1
		}
		alert = append(alert, obs.LabeledValue{Label: o.Name, Value: av})
		for _, b := range o.Burn {
			burn = append(burn, obs.MultiSeries{
				Labels: []obs.Label{{Name: "objective", Value: o.Name}, {Name: "window", Value: b.Window}},
				Value:  b.Rate,
			})
		}
	}
	obs.WriteLabeledFamily(w, prefix+"_target",
		"Declared objective target ratio.", "gauge", "objective", target)
	obs.WriteLabeledFamily(w, prefix+"_sli",
		"Measured service-level indicator over the rolling compliance window.",
		"gauge", "objective", sliS)
	obs.WriteLabeledFamily(w, prefix+"_error_budget_remaining",
		"Fraction of the compliance window's error budget left (negative = overspent).",
		"gauge", "objective", budget)
	obs.WriteMultiFamily(w, prefix+"_burn_rate",
		"Error-budget burn rate per evaluation window (1 = sustainable pace).",
		"gauge", burn)
	obs.WriteLabeledFamily(w, prefix+"_alert",
		"1 while a multi-window burn-rate alert is firing for the objective.",
		"gauge", "objective", alert)
}
