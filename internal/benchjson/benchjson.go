// Package benchjson emits the repository's benchmark-trajectory files:
// machine-readable BENCH_<date>.json snapshots of ns/op, sessions/sec,
// and headline metrics (accuracy, flag counts) captured by bench_test.go
// and cmd/reproduce. Committing one snapshot per perf-relevant PR turns
// the file list into the performance curve of the project — the paper's
// web-scale pitch (§6.4, 205k sessions) made checkable over time.
//
// Two entry points produce reports:
//
//   - bench_test.go sets POLYGRAPH_BENCH_JSON=1 (default path) or
//     POLYGRAPH_BENCH_JSON=path and flushes from TestMain.
//   - cmd/reproduce -benchjson <path> times a train+score pass directly.
package benchjson

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"polygraph/internal/pipeline"
)

// EnvVar names the environment variable that arms emission from test
// binaries: empty/unset disables, "1"/"true" selects DefaultPath, and
// anything else is used as the output path.
const EnvVar = "POLYGRAPH_BENCH_JSON"

// Entry is one benchmark's snapshot.
type Entry struct {
	// Name is the benchmark or phase name (e.g. "BenchmarkScoreBatch",
	// "train").
	Name string `json:"name"`
	// NsPerOp is the wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Metrics carries headline values keyed by unit-style names
	// ("sessions-per-sec", "accuracy-%", "flagged-sessions").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full trajectory snapshot written to BENCH_<date>.json.
type Report struct {
	// Date is the run date (YYYY-MM-DD).
	Date string `json:"date"`
	// GoVersion, NumCPU, and GoMaxProcs describe the machine, so
	// cross-snapshot comparisons know what hardware produced the numbers.
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Sessions is the traffic volume the run used (0 when mixed).
	Sessions int     `json:"sessions,omitempty"`
	Entries  []Entry `json:"entries"`

	mu sync.Mutex
}

// New builds a report stamped with the current date and machine shape.
func New(sessions int) *Report {
	return &Report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Sessions:   sessions,
	}
}

// FromEnv builds a report if EnvVar arms emission, returning the report
// and its output path; a nil report means emission is off. Nil reports
// are safe receivers for Add and WriteFile, so call sites need no guards.
func FromEnv(sessions int) (*Report, string) {
	v := os.Getenv(EnvVar)
	switch v {
	case "":
		return nil, ""
	case "1", "true":
		return New(sessions), DefaultPath(time.Now())
	default:
		return New(sessions), v
	}
}

// DefaultPath renders the conventional snapshot name for a date.
func DefaultPath(t time.Time) string {
	return fmt.Sprintf("BENCH_%s.json", t.Format("2006-01-02"))
}

// Add records one entry, replacing any existing entry with the same
// name (the bench framework re-invokes each benchmark while calibrating
// b.N, so the last — largest-N, best-measured — run wins). Safe for
// concurrent use and a no-op on a nil receiver.
func (r *Report) Add(name string, nsPerOp float64, metrics map[string]float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			r.Entries[i] = Entry{Name: name, NsPerOp: nsPerOp, Metrics: metrics}
			return
		}
	}
	r.Entries = append(r.Entries, Entry{Name: name, NsPerOp: nsPerOp, Metrics: metrics})
}

// AddStages records one entry per pipeline stage under "<prefix>/<stage>"
// with the stage wall time as ns/op and rows in/out as metrics, so the
// trajectory snapshots break the headline train number down by stage.
// Safe for concurrent use and a no-op on a nil receiver.
func (r *Report) AddStages(prefix string, stages []pipeline.Timing) {
	if r == nil {
		return
	}
	for _, st := range stages {
		r.Add(prefix+"/"+st.Name, float64(st.Duration.Nanoseconds()), map[string]float64{
			"rows-in":  float64(st.RowsIn),
			"rows-out": float64(st.RowsOut),
		})
	}
}

// ReadFile loads an existing snapshot so a tool can merge new entries
// into it (cmd/loadgen refreshes the serve/* families of the day's
// snapshot without clobbering the training entries). The loaded report
// keeps the file's date and machine shape.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("benchjson: parse %s: %w", path, err)
	}
	return r, nil
}

// DropPrefix removes every entry whose name starts with prefix, so a
// family can be regenerated in place. Safe for concurrent use and a
// no-op on a nil receiver.
func (r *Report) DropPrefix(prefix string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.Entries[:0]
	for _, e := range r.Entries {
		if len(e.Name) < len(prefix) || e.Name[:len(prefix)] != prefix {
			kept = append(kept, e)
		}
	}
	r.Entries = kept
}

// Merge folds other's entries into r: entries whose name already exists
// in r are replaced in place (last write wins), new names are appended.
// scripts/benchgate.sh uses this to refresh the scoring families of the
// day's snapshot without clobbering entries from a full bench run. A nil
// receiver or nil other is a no-op.
func (r *Report) Merge(other *Report) {
	if r == nil || other == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	byName := make(map[string]int, len(r.Entries))
	for i, e := range r.Entries {
		byName[e.Name] = i
	}
	for _, e := range other.Entries {
		if i, ok := byName[e.Name]; ok {
			r.Entries[i] = e
			continue
		}
		byName[e.Name] = len(r.Entries)
		r.Entries = append(r.Entries, e)
	}
}

// Validate checks the structural invariants a committed trajectory
// snapshot must hold: a parseable date, a recorded Go version, at least
// one entry, unique non-empty entry names, and finite, non-negative
// timings with finite metric values under non-empty keys. CI runs it
// (via benchmerge -check) over every committed BENCH_*.json so a bad
// hand-edit cannot land silently.
func (r *Report) Validate() error {
	if r == nil {
		return fmt.Errorf("benchjson: nil report")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := time.Parse("2006-01-02", r.Date); err != nil {
		return fmt.Errorf("benchjson: date %q is not YYYY-MM-DD", r.Date)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("benchjson: go_version is empty")
	}
	if len(r.Entries) == 0 {
		return fmt.Errorf("benchjson: no entries")
	}
	seen := make(map[string]bool, len(r.Entries))
	for i, e := range r.Entries {
		if e.Name == "" {
			return fmt.Errorf("benchjson: entry %d has an empty name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("benchjson: duplicate entry %q", e.Name)
		}
		seen[e.Name] = true
		if math.IsNaN(e.NsPerOp) || math.IsInf(e.NsPerOp, 0) || e.NsPerOp < 0 {
			return fmt.Errorf("benchjson: entry %q: ns_per_op %v is not a finite non-negative number", e.Name, e.NsPerOp)
		}
		for k, v := range e.Metrics {
			if k == "" {
				return fmt.Errorf("benchjson: entry %q has a metric with an empty key", e.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("benchjson: entry %q: metric %s value %v is not finite", e.Name, k, v)
			}
		}
	}
	return nil
}

// WriteFile sorts entries by name (stable across run orders) and writes
// the snapshot as indented JSON. A nil receiver or empty report writes
// nothing and returns nil.
func (r *Report) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Entries) == 0 {
		return nil
	}
	sort.SliceStable(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
