package benchjson

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNilReportIsSafe(t *testing.T) {
	var r *Report
	r.Add("x", 1, nil) // must not panic
	if err := r.WriteFile("/nonexistent/dir/never-written.json"); err != nil {
		t.Fatalf("nil WriteFile: %v", err)
	}
}

func TestEmptyReportWritesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := New(0).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("empty report created a file")
	}
}

func TestRoundTripAndSortedEntries(t *testing.T) {
	r := New(40000)
	r.Add("BBB", 200, map[string]float64{"flagged-sessions": 170})
	r.Add("AAA", 100, map[string]float64{"accuracy-%": 99.6})
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Sessions != 40000 || got.NumCPU < 1 || got.GoVersion == "" || got.Date == "" {
		t.Fatalf("header fields missing: sessions=%d cpu=%d go=%q date=%q",
			got.Sessions, got.NumCPU, got.GoVersion, got.Date)
	}
	if len(got.Entries) != 2 || got.Entries[0].Name != "AAA" || got.Entries[1].Name != "BBB" {
		t.Fatalf("entries not sorted by name: %+v", got.Entries)
	}
	if got.Entries[0].Metrics["accuracy-%"] != 99.6 {
		t.Fatalf("metrics lost: %+v", got.Entries[0])
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if r, _ := FromEnv(0); r != nil {
		t.Fatal("unset env should disable emission")
	}
	t.Setenv(EnvVar, "1")
	r, path := FromEnv(10)
	if r == nil || path != DefaultPath(time.Now()) {
		t.Fatalf("env=1: report %v path %q", r, path)
	}
	t.Setenv(EnvVar, "custom/out.json")
	if _, path := FromEnv(10); path != "custom/out.json" {
		t.Fatalf("explicit path ignored: %q", path)
	}
}

func TestReadFileMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := New(1000)
	r.Add("train/scale", 5000, nil)
	r.Add("serve/run", 0, map[string]float64{"requests": 100})
	r.Add("serve/steady /v1/collect", 0, map[string]float64{"p99-us": 400})
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// The cmd/loadgen merge path: load, drop the stale serve/* family,
	// add fresh entries, write back.
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sessions != 1000 || len(got.Entries) != 3 {
		t.Fatalf("loaded report wrong shape: sessions=%d entries=%d", got.Sessions, len(got.Entries))
	}
	got.DropPrefix("serve/")
	if len(got.Entries) != 1 || got.Entries[0].Name != "train/scale" {
		t.Fatalf("DropPrefix kept wrong entries: %+v", got.Entries)
	}
	got.Add("serve/run", 0, map[string]float64{"requests": 250})
	if err := got.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	final, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Entries) != 2 || final.Entries[0].Metrics["requests"] != 250 {
		t.Fatalf("merged snapshot wrong: %+v", final.Entries)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestDropPrefixNilSafe(t *testing.T) {
	var r *Report
	r.DropPrefix("serve/") // must not panic
}

func TestMergeReplacesAndAppends(t *testing.T) {
	base := New(100)
	base.Add("BenchmarkOnlineScore", 500, map[string]float64{"allocs-per-op": 2})
	base.Add("BenchmarkTable3Train", 1e9, nil)

	fresh := New(100)
	fresh.Add("BenchmarkOnlineScore", 150, map[string]float64{"allocs-per-op": 0})
	fresh.Add("BenchmarkOnlineScoreScratch", 140, nil)

	base.Merge(fresh)
	if len(base.Entries) != 3 {
		t.Fatalf("merged to %d entries, want 3", len(base.Entries))
	}
	byName := map[string]Entry{}
	for _, e := range base.Entries {
		byName[e.Name] = e
	}
	if e := byName["BenchmarkOnlineScore"]; e.NsPerOp != 150 || e.Metrics["allocs-per-op"] != 0 {
		t.Fatalf("same-name entry not replaced: %+v", e)
	}
	if byName["BenchmarkTable3Train"].NsPerOp != 1e9 {
		t.Fatal("untouched entry lost")
	}
	if _, ok := byName["BenchmarkOnlineScoreScratch"]; !ok {
		t.Fatal("new entry not appended")
	}

	// Nil receivers and nil arguments stay safe no-ops.
	var nilR *Report
	nilR.Merge(fresh)
	base.Merge(nil)
	if len(base.Entries) != 3 {
		t.Fatal("nil merge mutated the report")
	}
}

func TestValidate(t *testing.T) {
	good := func() *Report {
		r := New(100)
		r.Add("serve/run", 0, map[string]float64{"requests": 100})
		r.Add("train/scale", 5000, nil)
		return r
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	var nilR *Report
	if err := nilR.Validate(); err == nil {
		t.Fatal("nil report accepted")
	}

	cases := []struct {
		name    string
		corrupt func(*Report)
	}{
		{"bad date", func(r *Report) { r.Date = "08/08/2026" }},
		{"empty go version", func(r *Report) { r.GoVersion = "" }},
		{"no entries", func(r *Report) { r.Entries = nil }},
		{"empty entry name", func(r *Report) { r.Entries[0].Name = "" }},
		{"duplicate names", func(r *Report) { r.Entries[1].Name = r.Entries[0].Name }},
		{"NaN ns_per_op", func(r *Report) { r.Entries[1].NsPerOp = math.NaN() }},
		{"Inf ns_per_op", func(r *Report) { r.Entries[1].NsPerOp = math.Inf(1) }},
		{"negative ns_per_op", func(r *Report) { r.Entries[1].NsPerOp = -1 }},
		{"empty metric key", func(r *Report) { r.Entries[0].Metrics[""] = 1 }},
		{"NaN metric value", func(r *Report) { r.Entries[0].Metrics["requests"] = math.NaN() }},
	}
	for _, tc := range cases {
		r := good()
		tc.corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestAddReplacesSameName(t *testing.T) {
	r := New(0)
	r.Add("BenchmarkOnlineScore", 900, nil) // calibration run
	r.Add("BenchmarkOnlineScore", 300, map[string]float64{"allocs-per-op": 0})
	if len(r.Entries) != 1 {
		t.Fatalf("%d entries, want 1 (same-name Add must replace)", len(r.Entries))
	}
	if e := r.Entries[0]; e.NsPerOp != 300 || e.Metrics["allocs-per-op"] != 0 {
		t.Fatalf("kept the calibration run: %+v", e)
	}
}
