package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 64} {
		if got := Workers(w); got != w {
			t.Fatalf("Workers(%d) = %d", w, got)
		}
	}
}

func TestPlanForSerialDecisions(t *testing.T) {
	// workers=1 must always dispatch serially, whatever the batch —
	// this is the GOMAXPROCS=1 regression guard: the batch path must
	// never pay pool overhead a plain loop would not.
	for _, n := range []int{1, 100, 1_000_000} {
		if p := PlanFor(1, n, 1000); !p.Serial() {
			t.Fatalf("PlanFor(1, %d) = %+v, want serial", n, p)
		}
	}
	// Small or cheap batches fall below the crossover even with a wide
	// pool: 100 items × 100 ns = 10 µs of work, far under minParallelNs.
	if p := PlanFor(8, 100, 100); !p.Serial() {
		t.Fatalf("small batch plan %+v, want serial", p)
	}
	// perItemNs <= 0 assumes cheap items and biases serial.
	if p := PlanFor(8, 100, 0); !p.Serial() {
		t.Fatalf("unknown-cost small batch plan %+v, want serial", p)
	}
	// Empty input degenerates safely.
	if p := PlanFor(8, 0, 100); !p.Serial() || p.Chunk < 1 {
		t.Fatalf("empty plan %+v", p)
	}
}

func TestPlanForParallelDispatch(t *testing.T) {
	// A big, expensive batch with an explicit wide pool goes parallel
	// with chunks that clear the per-chunk work floor.
	p := PlanFor(8, 100_000, 1000)
	if p.Serial() {
		t.Fatalf("large batch plan %+v, want parallel", p)
	}
	if p.Workers > 8 {
		t.Fatalf("plan exceeded requested pool: %+v", p)
	}
	if float64(p.Chunk)*1000 < minChunkNs {
		t.Fatalf("chunk %d below work floor", p.Chunk)
	}
	// The serial fallback's chunk matches the worker-free default, so
	// cancellation granularity is unchanged.
	if s := PlanFor(1, 100_000, 1000); s.Chunk != resolveChunk(100_000, 0) {
		t.Fatalf("serial chunk %d, want default %d", s.Chunk, resolveChunk(100_000, 0))
	}
	// The decision is a pure function of its inputs.
	if q := PlanFor(8, 100_000, 1000); q != p {
		t.Fatalf("PlanFor not deterministic: %+v vs %+v", q, p)
	}
}

func TestPlanForBoundaries(t *testing.T) {
	// n=0 and negative n degenerate to a usable serial plan: Chunk must
	// stay >= 1 because For divides by it.
	for _, n := range []int{0, -5} {
		if p := PlanFor(8, n, 1000); !p.Serial() || p.Chunk < 1 {
			t.Fatalf("PlanFor(8, %d) = %+v, want serial with chunk >= 1", n, p)
		}
	}
	// n=1 is serial no matter how expensive the item — one chunk cannot
	// fan out.
	for _, cost := range []float64{0, 100, 1e9} {
		if p := PlanFor(8, 1, cost); !p.Serial() || p.Chunk < 1 {
			t.Fatalf("PlanFor(8, 1, %g) = %+v, want serial", cost, p)
		}
	}
	// workers far beyond n: the pool must shrink to the chunk count, so
	// no goroutine ever starts with nothing to pull.
	p := PlanFor(64, 8, 1e6) // 8 expensive items, 64 requested workers
	if p.Serial() {
		t.Fatalf("expensive 8-item batch plan %+v, want parallel", p)
	}
	nChunks := (8 + p.Chunk - 1) / p.Chunk
	if p.Workers > nChunks {
		t.Fatalf("plan %+v starts more workers than its %d chunks", p, nChunks)
	}
	// perItemNs=0 assumes 100 ns items: a batch big enough to clear the
	// work floor at that rate still parallelizes, and its chunks clear
	// the per-chunk floor at the assumed rate.
	p = PlanFor(8, 1_000_000, 0)
	if p.Serial() {
		t.Fatalf("huge unknown-cost batch plan %+v, want parallel", p)
	}
	if float64(p.Chunk)*100 < minChunkNs {
		t.Fatalf("chunk %d below work floor at the assumed 100 ns/item", p.Chunk)
	}
}

func TestPlanForNeverSplitsBelowTwoChunks(t *testing.T) {
	// A single expensive item clears the total-work bar but cannot be
	// split — the plan must collapse to serial rather than start a pool
	// for one chunk.
	if p := PlanFor(8, 1, 500_000); !p.Serial() {
		t.Fatalf("one-chunk batch plan %+v, want serial", p)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n, chunk int }{
		{1, 100, 7},
		{4, 100, 7},
		{8, 100, 0}, // chunk=0 fallback
		{4, 3, 10},  // n < workers and n < chunk
		{16, 1, 1},
		{0, 257, 13}, // workers=0 → GOMAXPROCS
	} {
		hits := make([]int32, tc.n)
		For(tc.workers, tc.n, tc.chunk, func(start, end int) {
			if start < 0 || end > tc.n || start >= end {
				t.Errorf("bad range [%d,%d) for n=%d", start, end, tc.n)
			}
			for i := start; i < end; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d n=%d chunk=%d: index %d visited %d times",
					tc.workers, tc.n, tc.chunk, i, h)
			}
		}
	}
}

func TestForEmptyInput(t *testing.T) {
	called := false
	For(4, 0, 8, func(start, end int) { called = true })
	For(4, -5, 8, func(start, end int) { called = true })
	if called {
		t.Fatal("fn called for empty input")
	}
}

func TestForChunkRanges(t *testing.T) {
	// chunk=10 over n=25 must produce exactly [0,10) [10,20) [20,25).
	var mu [3]int32
	For(4, 25, 10, func(start, end int) {
		switch {
		case start == 0 && end == 10:
			atomic.AddInt32(&mu[0], 1)
		case start == 10 && end == 20:
			atomic.AddInt32(&mu[1], 1)
		case start == 20 && end == 25:
			atomic.AddInt32(&mu[2], 1)
		default:
			t.Errorf("unexpected range [%d,%d)", start, end)
		}
	})
	for i, c := range mu {
		if c != 1 {
			t.Fatalf("chunk %d ran %d times", i, c)
		}
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			For(workers, 100, 5, func(start, end int) {
				if start == 50 {
					panic("boom")
				}
			})
		}()
	}
}

// sumSerial is the plain reference reduction.
func sumSerial(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestMapReduceDeterministicAcrossWorkerCounts(t *testing.T) {
	// Floating-point data with enough spread that association order
	// matters; every worker count must produce the exact same bits
	// because chunk boundaries and merge order are fixed.
	xs := make([]float64, 10007)
	v := 1.0
	for i := range xs {
		v = v*1.0000001 + float64(i%97)*1e-7
		xs[i] = v
	}
	reduce := func(workers, chunk int) float64 {
		return MapReduce(workers, len(xs), chunk,
			func() float64 { return 0 },
			func(acc float64, start, end int) float64 {
				return acc + sumSerial(xs[start:end])
			},
			func(into, from float64) float64 { return into + from },
		)
	}
	ref := reduce(1, 64)
	for _, w := range []int{2, 3, 8, 0} {
		if got := reduce(w, 64); got != ref {
			t.Fatalf("workers=%d: %v != workers=1 result %v", w, got, ref)
		}
	}
	// Default chunk (0) depends only on n, so it too must be stable
	// across worker counts.
	refDefault := reduce(1, 0)
	for _, w := range []int{2, 8, 0} {
		if got := reduce(w, 0); got != refDefault {
			t.Fatalf("default chunk, workers=%d: %v != %v", w, got, refDefault)
		}
	}
}

func TestMapReduceEmptyAndTiny(t *testing.T) {
	got := MapReduce(4, 0, 8,
		func() int { return 42 },
		func(acc, start, end int) int { return acc + end - start },
		func(a, b int) int { return a + b },
	)
	if got != 42 {
		t.Fatalf("empty MapReduce = %d, want fresh accumulator 42", got)
	}
	got = MapReduce(8, 3, 100,
		func() int { return 0 },
		func(acc, start, end int) int { return acc + end - start },
		func(a, b int) int { return a + b },
	)
	if got != 3 {
		t.Fatalf("tiny MapReduce = %d, want 3", got)
	}
}

func TestForContextFullCoverageWithoutCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		hits := make([]int32, 257)
		err := ForContext(context.Background(), workers, len(hits), 13, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForContextRefusesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForContext(ctx, 4, 100, 5, func(start, end int) { called = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("fn ran under a cancelled context")
	}
}

func TestForContextStopsAtChunkBoundary(t *testing.T) {
	// Serial pool, cancel inside the first chunk: the chunk in flight
	// finishes, no further chunk starts.
	ctx, cancel := context.WithCancel(context.Background())
	var chunks int32
	err := ForContext(ctx, 1, 100, 10, func(start, end int) {
		atomic.AddInt32(&chunks, 1)
		if start == 0 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&chunks); got != 1 {
		t.Fatalf("chunks after cancel = %d, want exactly 1", got)
	}
}

func TestForContextParallelCancel(t *testing.T) {
	// Wide pool: after cancel, workers stop pulling; some chunks never
	// run, and those that ran completed fully.
	ctx, cancel := context.WithCancel(context.Background())
	var chunks int32
	err := ForContext(ctx, 8, 10000, 10, func(start, end int) {
		if atomic.AddInt32(&chunks, 1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&chunks); got >= 1000 {
		t.Fatalf("all %d chunks ran despite cancellation", got)
	}
}

func TestMapReduceContextMatchesMapReduce(t *testing.T) {
	xs := make([]float64, 5003)
	for i := range xs {
		xs[i] = float64(i) * 1.0000001
	}
	want := MapReduce(4, len(xs), 64,
		func() float64 { return 0 },
		func(acc float64, start, end int) float64 { return acc + sumSerial(xs[start:end]) },
		func(into, from float64) float64 { return into + from },
	)
	got, err := MapReduceContext(context.Background(), 4, len(xs), 64,
		func() float64 { return 0 },
		func(acc float64, start, end int) float64 { return acc + sumSerial(xs[start:end]) },
		func(into, from float64) float64 { return into + from },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("MapReduceContext = %v, MapReduce = %v", got, want)
	}
}

func TestMapReduceContextCancelDiscardsPartials(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := MapReduceContext(ctx, 4, 1000, 10,
		func() int { return -7 },
		func(acc, start, end int) int { return acc + end - start },
		func(a, b int) int { return a + b },
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got != -7 {
		t.Fatalf("cancelled MapReduceContext = %d, want fresh accumulator -7", got)
	}
}

func TestMapReducePointerAccumulators(t *testing.T) {
	// Accumulators that are mutated in place (the k-means sums shape).
	type acc struct{ counts [4]int }
	n := 1000
	out := MapReduce(4, n, 37,
		func() *acc { return &acc{} },
		func(a *acc, start, end int) *acc {
			for i := start; i < end; i++ {
				a.counts[i%4]++
			}
			return a
		},
		func(into, from *acc) *acc {
			for i := range into.counts {
				into.counts[i] += from.counts[i]
			}
			return into
		},
	)
	for i, c := range out.counts {
		if c != n/4 {
			t.Fatalf("bucket %d = %d, want %d", i, c, n/4)
		}
	}
}
