// Package parallel is the shared worker-pool layer under every numeric
// hot path of the reproduction: k-means assignment and centroid updates,
// isolation-forest construction and scoring, covariance products, PCA
// projection, and batched session scoring all fan out through For and
// MapReduce.
//
// Determinism contract. The paper's pipeline must stay bit-reproducible
// (see internal/rng), so this package guarantees that results never
// depend on the worker count or on goroutine scheduling:
//
//   - Chunk boundaries are a pure function of (n, chunk). The worker
//     count only decides how many goroutines pull chunks, never how the
//     index space is cut.
//   - MapReduce gives every chunk its own accumulator and merges them in
//     ascending chunk order after all workers finish. Floating-point
//     reductions therefore see one fixed association order, and
//     Workers=1 is bit-identical to Workers=N.
//
// The zero worker count means runtime.GOMAXPROCS; tests pin Workers=1 to
// reach the serial path through the same code.
//
// Cancellation. ForContext and MapReduceContext are the cooperative
// variants: workers check the context at every chunk boundary and stop
// pulling chunks once it is done. Cancellation can only skip work, never
// reorder or resplit it — chunk geometry stays a pure function of
// (n, chunk) — so a run that completes under a context is bit-identical
// to one without, and the determinism contract above is untouched.
package parallel

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values >= 1 are honored,
// anything else (0 or negative) selects runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested >= 1 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// resolveChunk resolves the chunk parameter: chunk >= 1 is honored, and
// anything else falls back to a default that depends only on n — about
// 64 chunks, floored at 1 and capped so huge inputs keep per-chunk work
// cache-sized. Keeping the default free of the worker count is what lets
// MapReduce reductions stay bit-identical across pool sizes.
func resolveChunk(n, chunk int) int {
	if chunk >= 1 {
		return chunk
	}
	c := (n + 63) / 64
	if c < 1 {
		c = 1
	}
	if c > 16384 {
		c = 16384
	}
	return c
}

// Plan is a dispatch decision for fanning n independent items over the
// pool: how many workers to start and how to chunk the index space.
// Build one with PlanFor and pass its fields to For/ForContext.
//
// Plans are only for pure per-item maps (each index writes its own
// result): their chunk geometry depends on the worker count, so feeding
// a Plan's chunk into MapReduce would break the fixed-association-order
// guarantee. MapReduce keeps using resolveChunk's worker-free default.
type Plan struct {
	// Workers is the effective pool size; 1 selects the serial path.
	Workers int
	// Chunk is the chunk size to pass alongside Workers.
	Chunk int
}

// Serial reports whether the plan runs entirely on the caller's
// goroutine.
func (p Plan) Serial() bool { return p.Workers <= 1 }

// Dispatch thresholds. Goroutine handoff costs single-digit microseconds
// per chunk; a fan-out only wins when every chunk carries orders of
// magnitude more work than that, and the whole batch carries enough to
// amortize starting the pool at all.
const (
	// minParallelNs is the total-work floor below which a batch always
	// runs serially — pool startup would dominate.
	minParallelNs = 200_000
	// minChunkNs is the per-chunk work floor when a batch does go
	// parallel.
	minChunkNs = 50_000
)

// PlanFor sizes a fan-out over n items that each cost roughly perItemNs
// nanoseconds: explicit workers >= 1 bound the pool (1 forces serial),
// 0 adapts to GOMAXPROCS. Small batches, cheap items, and single-proc
// machines all collapse to the serial path — the crossover where a pool
// stops losing to a plain loop is decided here, once, instead of being
// re-discovered by every caller. perItemNs <= 0 assumes items are cheap
// (100 ns), which biases toward serial.
//
// The decision is a pure function of (workers, n, perItemNs,
// GOMAXPROCS): scheduling never affects it, so batch results stay
// reproducible run to run.
func PlanFor(workers, n int, perItemNs float64) Plan {
	if n <= 0 {
		return Plan{Workers: 1, Chunk: 1}
	}
	serial := Plan{Workers: 1, Chunk: resolveChunk(n, 0)}
	w := Workers(workers)
	if w <= 1 {
		return serial
	}
	if perItemNs <= 0 {
		perItemNs = 100
	}
	if perItemNs*float64(n) < minParallelNs {
		return serial
	}
	// Chunks must each clear the work floor, but stay small enough that
	// the pool load-balances (~4 chunks per worker when work allows).
	minItems := int(math.Ceil(minChunkNs / perItemNs))
	if minItems < 1 {
		minItems = 1
	}
	chunk := (n + 4*w - 1) / (4 * w)
	if chunk < minItems {
		chunk = minItems
	}
	if chunk > n {
		chunk = n
	}
	nChunks := (n + chunk - 1) / chunk
	if nChunks < 2 {
		return serial
	}
	if w > nChunks {
		w = nChunks
	}
	return Plan{Workers: w, Chunk: chunk}
}

// For splits the index range [0, n) into contiguous chunks of at most
// chunk indices (chunk <= 0 selects the deterministic default) and calls
// fn(start, end) once per chunk from a pool of workers goroutines
// (workers <= 0 selects GOMAXPROCS). fn must be safe to call
// concurrently for disjoint ranges. A panic in fn is re-raised on the
// caller's goroutine after the pool drains.
func For(workers, n, chunk int, fn func(start, end int)) {
	forCtx(context.Background(), workers, n, chunk, fn)
}

// ForContext is For with cooperative cancellation: every worker checks
// ctx at each chunk boundary (before pulling the next chunk) and stops
// once the context is done. Chunks already started run to completion, so
// cancellation aborts within one chunk of work. A nil error guarantees
// the full index space was covered; otherwise ForContext returns
// ctx.Err() and an unspecified subset of chunks ran. A nil ctx means
// context.Background().
func ForContext(ctx context.Context, workers, n, chunk int, fn func(start, end int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	forCtx(ctx, workers, n, chunk, fn)
	return ctx.Err()
}

func forCtx(ctx context.Context, workers, n, chunk int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	c := resolveChunk(n, chunk)
	nChunks := (n + c - 1) / c
	w := Workers(workers)
	if w > nChunks {
		w = nChunks
	}
	if w == 1 {
		for start := 0; start < n; start += c {
			if ctx.Err() != nil {
				return
			}
			end := start + c
			if end > n {
				end = n
			}
			fn(start, end)
		}
		return
	}

	var next atomic.Int64
	var panicMu sync.Mutex
	var panicked any // first recovered panic value
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				if ctx.Err() != nil {
					return
				}
				k := int(next.Add(1)) - 1
				if k >= nChunks {
					return
				}
				start := k * c
				end := start + c
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// MapReduce folds [0, n) into a single accumulator through per-chunk
// partials: newAcc builds a fresh accumulator, body folds the half-open
// range [start, end) into acc and returns it, and merge folds from into
// into and returns the result. Chunk accumulators are merged in
// ascending chunk order regardless of scheduling, so reductions — ints
// and floats alike — are deterministic and identical for every worker
// count. n <= 0 returns a fresh accumulator untouched.
func MapReduce[A any](workers, n, chunk int, newAcc func() A, body func(acc A, start, end int) A, merge func(into, from A) A) A {
	acc, _ := MapReduceContext(context.Background(), workers, n, chunk, newAcc, body, merge)
	return acc
}

// MapReduceContext is MapReduce with cooperative cancellation at chunk
// boundaries (see ForContext). On cancellation it returns a fresh
// accumulator and the context's error; partial chunk results are
// discarded, never merged, so callers observing a nil error always see
// the full deterministic reduction.
func MapReduceContext[A any](ctx context.Context, workers, n, chunk int, newAcc func() A, body func(acc A, start, end int) A, merge func(into, from A) A) (A, error) {
	if n <= 0 {
		return newAcc(), nil
	}
	c := resolveChunk(n, chunk)
	nChunks := (n + c - 1) / c
	accs := make([]A, nChunks)
	if err := ForContext(ctx, workers, n, c, func(start, end int) {
		accs[start/c] = body(newAcc(), start, end)
	}); err != nil {
		return newAcc(), err
	}
	out := accs[0]
	for k := 1; k < nChunks; k++ {
		out = merge(out, accs[k])
	}
	return out, nil
}
