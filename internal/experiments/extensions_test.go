package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"polygraph/internal/fingerprint"
)

func TestRetrainAfterDrift(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.RetrainAfterDrift()
	if err != nil {
		t.Fatal(err)
	}
	if res.RetrainDate != "10/31" {
		t.Fatalf("retrain date %q", res.RetrainDate)
	}
	if res.NewAccuracy < 0.985 {
		t.Fatalf("retrained accuracy %.4f", res.NewAccuracy)
	}
	if !res.Firefox119Recovered {
		t.Fatal("retraining did not accommodate Firefox 119")
	}
	if res.OldAccuracy <= 0 || res.OldAccuracy > 1 {
		t.Fatalf("old accuracy %v", res.OldAccuracy)
	}
}

func TestStratifiedSamplingPreservesStructure(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.StratifiedSampling(500)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledRows >= res.FullRows {
		t.Fatalf("sampling did not shrink: %d vs %d", res.SampledRows, res.FullRows)
	}
	if res.SampledAccuracy < 0.98 {
		t.Fatalf("sampled accuracy %.4f", res.SampledAccuracy)
	}
	if res.TableAgreement < 0.95 {
		t.Fatalf("cluster-table agreement %.4f", res.TableAgreement)
	}
}

func TestUARandomizationRaisesFalsePositives(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.UARandomization(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions == 0 {
		t.Fatal("no honest sessions evaluated")
	}
	// Randomizing the UA should flag the vast majority of honest
	// sessions — that is §8's argument against the strategy.
	plainRate := float64(res.FlaggedPlain) / float64(res.Sessions)
	randRate := float64(res.FlaggedRand) / float64(res.Sessions)
	if randRate < 10*plainRate || randRate < 0.5 {
		t.Fatalf("randomized flag rate %.3f vs plain %.3f", randRate, plainRate)
	}
}

func TestRenderExtensions(t *testing.T) {
	var buf bytes.Buffer
	RenderExtensions(&buf,
		&RetrainResult{RetrainDate: "10/31", OldAccuracy: 0.97, NewAccuracy: 0.99, Firefox119Recovered: true},
		&StratifiedResult{FullRows: 1000, SampledRows: 100, FullAccuracy: 0.99, SampledAccuracy: 0.99, TableAgreement: 1},
		&UARandomizationResult{Sessions: 100, FlaggedPlain: 1, FlaggedRand: 90},
	)
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}
}

func TestSilhouetteCheckSupportsK11Region(t *testing.T) {
	e := sharedEnv(t)
	curve, err := e.SilhouetteCheck(8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 6 {
		t.Fatalf("%d points", len(curve))
	}
	for _, p := range curve {
		// The engine-era structure is strongly separated; every k in
		// the region should score a healthy silhouette.
		if p.WCSS < 0.5 {
			t.Fatalf("silhouette at k=%d is %.3f", p.K, p.WCSS)
		}
	}
}

func TestWindowPSIFlagsDriftFeatures(t *testing.T) {
	e := sharedEnv(t)
	results, err := e.WindowPSI()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 28 {
		t.Fatalf("%d results", len(results))
	}
	// The drift window's new releases shift the big deviation features'
	// distributions; at minimum the monitor must not report a fully
	// stable world, and results must be sorted descending.
	for i := 1; i < len(results); i++ {
		if results[i].PSI > results[i-1].PSI {
			t.Fatal("PSI results not sorted")
		}
	}
	if results[0].PSI < 0.05 {
		t.Fatalf("top PSI %.4f — drift window looks identical to training", results[0].PSI)
	}
}

func TestNoveltyGuardExperiment(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.NoveltyGuard()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Severities) != 4 {
		t.Fatalf("%d severity rows", len(res.Severities))
	}
	control := res.Severities[0]
	if control.Severity != 0 || control.CaughtWithGuard != 0 || control.CaughtWithoutGuard != 0 {
		t.Fatalf("honest control flagged: %+v", control)
	}
	wild := res.Severities[len(res.Severities)-1]
	if wild.Attempts == 0 {
		t.Skip("all wild probes landed in noise clusters")
	}
	if wild.CaughtWithGuard != wild.Attempts {
		t.Fatalf("guard caught %d of %d wild cluster-consistent probes", wild.CaughtWithGuard, wild.Attempts)
	}
	// Across all severities, the guard never loses a detection and
	// strictly gains some (otherwise it is dead weight).
	gained := 0
	for _, row := range res.Severities {
		if row.CaughtWithGuard < row.CaughtWithoutGuard {
			t.Fatalf("guard lost detections at severity %d", row.Severity)
		}
		gained += row.CaughtWithGuard - row.CaughtWithoutGuard
	}
	if gained == 0 {
		t.Fatal("guard added no detections at any severity")
	}
	if res.HonestFlagsAdded > len(e.Traffic.Sessions)/500 {
		t.Fatalf("guard added %d honest flags", res.HonestFlagsAdded)
	}
}

func TestCandidateGeneration(t *testing.T) {
	res, err := CandidateGeneration(114, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 200 {
		t.Fatalf("%d candidates", len(res.Top))
	}
	// Ranking sorted descending; std range in a positive band like the
	// paper's 0.0012-1.3853.
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].NormStd > res.Top[i-1].NormStd {
			t.Fatal("ranking not sorted")
		}
	}
	if res.MinStd <= 0 || res.MaxStd <= res.MinStd {
		t.Fatalf("std range %.4f-%.4f", res.MinStd, res.MaxStd)
	}
	// The algorithm should largely rediscover the published list: the
	// Appendix-3 protos were themselves chosen by this criterion.
	if res.Appendix3Overlap < 120 {
		t.Fatalf("only %d/200 overlap with Appendix-3", res.Appendix3Overlap)
	}
	// Every Table 8 deviation prototype must rank in the top 200.
	topSet := map[string]bool{}
	for _, r := range res.Top {
		topSet[r.Proto] = true
	}
	for _, f := range fingerprintTable8Deviation() {
		if !topSet[f] {
			t.Fatalf("final feature %s not in top-200 candidates", f)
		}
	}
}

// fingerprintTable8Deviation lists the 22 deviation prototypes of the
// final set for the candidate test.
func fingerprintTable8Deviation() []string {
	var out []string
	for _, f := range fingerprint.Table8() {
		if f.Kind == fingerprint.DeviationBased {
			out = append(out, f.Proto)
		}
	}
	return out
}

func TestPreprocessingAnalysis(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.PreprocessingAnalysis(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 186 of 513 single-valued on a day sample. Regime: a large
	// minority, not zero, not a majority of everything.
	if res.SingleValued < 80 || res.SingleValued > 400 {
		t.Fatalf("single-valued = %d of 513", res.SingleValued)
	}
	if res.SingleValuedTimeBased == 0 {
		t.Fatal("no time-based candidate single-valued")
	}
	// All 28 final features must survive the filter.
	if res.Table8Recovered != 28 {
		t.Fatalf("only %d/28 final features survive the single-value filter", res.Table8Recovered)
	}
	if _, err := e.PreprocessingAnalysis(99999, 100); err == nil {
		t.Fatal("empty day accepted")
	}
}

func TestWriteHTMLReport(t *testing.T) {
	e := sharedEnv(t)
	var buf bytes.Buffer
	if err := e.WriteHTMLReport(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{
		"<!DOCTYPE html>", "Table 3", "Table 4", "Table 5", "Table 6",
		"Figure 2", "Figure 5", "<svg", "BROWSER POLYGRAPH",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("report missing %q", needle)
		}
	}
	if strings.Count(out, "<svg") < 4 {
		t.Fatal("fewer than 4 figures rendered")
	}
}

func TestDBSCANAblation(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.DBSCANAblation()
	if err != nil {
		t.Fatal(err)
	}
	// Density-based clustering must rediscover the engine-era structure:
	// a cluster count in the same regime as the paper's 9-11, low noise,
	// and accuracy comparable to k-means.
	if res.K < 6 || res.K > 20 {
		t.Fatalf("DBSCAN found %d clusters", res.K)
	}
	if res.NoisePct > 5 {
		t.Fatalf("DBSCAN noise %.2f%%", res.NoisePct)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("DBSCAN accuracy %.4f", res.Accuracy)
	}
	var buf bytes.Buffer
	RenderDBSCAN(&buf, res)
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}
}

func TestScorecardAllClaimsHold(t *testing.T) {
	e := sharedEnv(t)
	claims, err := e.Scorecard()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 10 {
		t.Fatalf("only %d claims", len(claims))
	}
	var buf bytes.Buffer
	if !RenderScorecard(&buf, claims) {
		t.Fatalf("scorecard failures:\n%s", buf.String())
	}
}
