package experiments

import (
	"fmt"
	"io"
	"time"

	"polygraph/internal/report"
)

// WriteHTMLReport renders the headline experiments as a self-contained
// HTML document with SVG figures — the shareable artifact of a
// reproduction run. It covers the tables and figures that do not require
// retraining sweeps (those remain in the text output of -all).
func (e *Env) WriteHTMLReport(w io.Writer, generated time.Time) error {
	b := report.New("Browser Polygraph — reproduction report")
	b.AddProse(fmt.Sprintf(
		"Model trained on %d synthetic sessions: clustering accuracy %.2f%% (paper: 99.6%%).",
		e.Report.InputRows, 100*e.Model.Accuracy))

	// Table 2.
	b.AddHeading("Table 2 — time and storage requirements", "")
	var t2rows [][]string
	for _, r := range Table2() {
		t2rows = append(t2rows, []string{
			r.Tool, r.MeasuredCollect.String(), fmt.Sprintf("%d B", r.StorageBytes),
			r.PaperServiceTime, r.PaperStorage,
		})
	}
	b.AddTable("measured vs paper", []string{"tool", "measured/collect", "measured storage", "paper time", "paper storage"}, t2rows)

	// Table 3.
	b.AddHeading("Table 3 — user-agents per cluster (k=11)", "")
	var t3rows [][]string
	for _, r := range e.Table3() {
		t3rows = append(t3rows, []string{fmt.Sprintf("%d", r.Cluster), r.UserAgents})
	}
	b.AddTable("", []string{"cluster", "user-agents"}, t3rows)

	// Table 4.
	rows4, err := e.Table4()
	if err != nil {
		return err
	}
	b.AddHeading("Table 4 — tag rates per category", "")
	var t4rows [][]string
	for _, r := range rows4 {
		t4rows = append(t4rows, []string{
			r.Category, fmt.Sprintf("%d", r.Sessions),
			fmt.Sprintf("%.1f", r.IPPct), fmt.Sprintf("%.1f", r.CookiePct), fmt.Sprintf("%.2f", r.ATOPct),
		})
	}
	b.AddTable("", []string{"category", "sessions", "Untrusted_IP %", "Untrusted_Cookie %", "ATO %"}, t4rows)

	// Table 5.
	rows5, err := e.Table5()
	if err != nil {
		return err
	}
	b.AddHeading("Table 5 — fraud browsers' detection", "")
	var t5rows [][]string
	for _, r := range rows5 {
		t5rows = append(t5rows, []string{
			r.Browser, fmt.Sprintf("%d", r.Flagged), fmt.Sprintf("%d", r.NotFlagged),
			fmt.Sprintf("%.2f", r.AvgRisk), fmt.Sprintf("%.0f%%", 100*r.Recall),
		})
	}
	b.AddTable("", []string{"browser", "flagged", "not flagged", "avg risk", "recall"}, t5rows)

	// Table 6.
	res6, err := e.Table6()
	if err != nil {
		return err
	}
	b.AddHeading("Table 6 — drift analysis", "")
	var t6rows [][]string
	for _, ev := range res6.Evaluations {
		t6rows = append(t6rows, []string{
			ev.Release.String(), ev.Date, fmt.Sprintf("%d", ev.Cluster),
			fmt.Sprintf("%.2f%%", 100*ev.Accuracy), fmt.Sprintf("%v", ev.Retrain),
		})
	}
	b.AddTable("retraining signaled on "+res6.RetrainDate,
		[]string{"browser", "date", "cluster", "accuracy", "retrain"}, t6rows)

	// Figure 2.
	var f2 []report.Point
	for _, p := range e.Figure2() {
		f2 = append(f2, report.Point{X: float64(p.X), Y: p.Y})
	}
	b.AddHeading("Figures", "")
	b.AddFigure("Figure 2 — cumulative variance vs PCA components (paper: 7 components ≥ 98.5%)",
		report.LineChart("Cumulative explained variance", "components", "cumulative variance",
			[]report.Series{{Name: "cumvar", Points: f2}}, false))

	// Figures 3 and 4.
	f3pts, err := e.Figure3(16)
	if err != nil {
		return err
	}
	var f3 []report.Point
	for _, p := range f3pts {
		f3 = append(f3, report.Point{X: float64(p.X), Y: p.Y})
	}
	b.AddFigure("Figure 3 — elbow method (log-scale WCSS vs k)",
		report.LineChart("Within-cluster sum of squares", "clusters k", "WCSS",
			[]report.Series{{Name: "WCSS", Points: f3}}, true))

	f4pts, err := e.Figure4(16)
	if err != nil {
		return err
	}
	var f4labels []string
	var f4vals []float64
	for _, p := range f4pts {
		f4labels = append(f4labels, fmt.Sprintf("%d", p.X))
		f4vals = append(f4vals, p.Y)
	}
	b.AddFigure("Figure 4 — relative WCSS drop per k (the paper's k=11 criterion)",
		report.BarChart("Relative WCSS drop", "clusters k", "fractional drop", f4labels, f4vals))

	// Figure 5.
	f5 := e.Figure5()
	var f5labels []string
	var f5vals []float64
	for _, bkt := range f5.Buckets {
		f5labels = append(f5labels, bkt.Label)
		f5vals = append(f5vals, bkt.Percent)
	}
	b.AddFigure(fmt.Sprintf("Figure 5 — anonymity sets (unique: %.2f%%, paper: 0.3%%)", 100*f5.UniqueRate),
		report.BarChart("Fingerprints per anonymity-set size", "set size", "% of fingerprints", f5labels, f5vals))

	// Table 7.
	b.AddHeading("Table 7 — entropy of collected attributes", "")
	var t7rows [][]string
	for _, r := range e.Table7(8) {
		t7rows = append(t7rows, []string{r.Feature, fmt.Sprintf("%.2f", r.Entropy), fmt.Sprintf("%.3f", r.Normalized)})
	}
	b.AddTable("", []string{"feature", "entropy (bits)", "normalized"}, t7rows)

	// Scorecard.
	claims, err := e.Scorecard()
	if err != nil {
		return err
	}
	b.AddHeading("Scorecard", "Machine-checked headline claims of the reproduction.")
	var scRows [][]string
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		scRows = append(scRows, []string{status, c.Name, c.Detail})
	}
	b.AddTable("", []string{"status", "claim", "measured"}, scRows)

	return b.Render(w, generated)
}
