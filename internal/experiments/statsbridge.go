package experiments

import (
	"polygraph/internal/matrix"
	"polygraph/internal/stats"
)

// Thin instantiations of the generic stats helpers, so the experiment
// files read at the domain level.

func entropyOf[T comparable](vals []T) float64 { return stats.Entropy(vals) }

func normalizedEntropyOf[T comparable](vals []T) float64 { return stats.NormalizedEntropy(vals) }

func anonymitySets(keys []string) []stats.AnonymityBucket { return stats.AnonymitySets(keys) }

func uniqueRate(keys []string) float64 { return stats.UniqueRate(keys) }

func largeSetRate(keys []string, threshold int) float64 {
	return stats.LargeSetRate(keys, threshold)
}

// matrixFromRows bridges row slices into the dense matrix type.
func matrixFromRows(rows [][]float64) *matrix.Dense { return matrix.FromRows(rows) }
