package experiments

import (
	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/matrix"
	"polygraph/internal/ua"
)

// ---------------------------------------------------------------------
// Appendix-4 sensitivity analyses (Tables 10, 11, 12) and the ablations
// DESIGN.md calls out.
// ---------------------------------------------------------------------

// SweepPoint is one (parameter value, accuracy) sample.
type SweepPoint struct {
	Param    int
	Accuracy float64
	// K and PCA record the effective choices when they vary per step
	// (Table 12).
	K, PCA int
}

// Table10 varies the cluster count with 28 features and 7 PCA components
// (paper values: k ∈ {5,7,9,11,13,15,17,19}).
func (e *Env) Table10() ([]SweepPoint, error) {
	ks := []int{5, 7, 9, 11, 13, 15, 17, 19}
	out := make([]SweepPoint, 0, len(ks))
	for _, k := range ks {
		cfg := core.DefaultTrainConfig()
		cfg.K = k
		cfg.Reference = core.ExtractorReference{Extractor: e.Traffic.Extractor, OS: ua.Windows10}
		m, _, err := core.Train(e.Traffic.Samples(), cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: k, Accuracy: m.Accuracy, K: k, PCA: cfg.PCAComponents})
	}
	return out, nil
}

// Table11 varies the PCA component count with 28 features (paper:
// components ∈ {6,7,8,9,10}, optimal k stays 11).
func (e *Env) Table11() ([]SweepPoint, error) {
	comps := []int{6, 7, 8, 9, 10}
	out := make([]SweepPoint, 0, len(comps))
	for _, c := range comps {
		cfg := core.DefaultTrainConfig()
		cfg.PCAComponents = c
		cfg.Reference = core.ExtractorReference{Extractor: e.Traffic.Extractor, OS: ua.Windows10}
		m, _, err := core.Train(e.Traffic.Samples(), cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Param: c, Accuracy: m.Accuracy, K: cfg.K, PCA: c})
	}
	return out, nil
}

// Table12Row reports one feature-count step of Appendix-4 Table 12.
type Table12Row struct {
	Features int
	Added    []string
	PCA      int
	K        int
	Accuracy float64
}

// Table12 grows the feature set along the published steps (28 → 32 → 36
// → 42), re-extracting the traffic under each set, choosing PCA and k as
// §6.4 does, and reporting accuracy.
func (e *Env) Table12() ([]Table12Row, error) {
	steps := []int{28, 32, 36, 42}
	out := make([]Table12Row, 0, len(steps))
	var prev []fingerprint.Feature
	for _, total := range steps {
		feats, err := fingerprint.Table12FeatureSet(total)
		if err != nil {
			return nil, err
		}
		// Re-extract every session's profile under the wider set. The
		// dataset retains only the 28-feature vectors, so rebuild from
		// claimed releases: sufficient for a sensitivity trend, since
		// modifier noise is tiny at cluster scale.
		ext := fingerprint.NewExtractor(e.Traffic.Oracle, feats)
		sessions := e.Traffic.Sessions
		m := matrix.NewDense(len(sessions), len(feats))
		labels := make([]ua.Release, len(sessions))
		for i, s := range sessions {
			ext.ExtractInto(browser.Profile{Release: s.ActualRelease, OS: s.OS}, m.RawRow(i))
			labels[i] = s.Claimed
		}
		res, err := clusterBench(m, labels, clusterBenchConfig{
			ForcePCA:  7, // paper: PCA stays 7 across Table 12
			KMin:      2,
			KMax:      16,
			Seed:      1,
			SkipScale: fingerprint.SkipScaleMask(feats),
		})
		if err != nil {
			return nil, err
		}
		row := Table12Row{
			Features: total,
			PCA:      res.PCA,
			K:        res.K,
			Accuracy: res.Accuracy,
		}
		for _, f := range feats[len(prev):] {
			row.Added = append(row.Added, f.Proto)
		}
		prev = feats
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §4).
// ---------------------------------------------------------------------

// AblationRow compares a variant configuration against the default.
type AblationRow struct {
	Name     string
	Accuracy float64
	Flagged  int
	Note     string
}

// Ablations trains variants: no PCA, no outlier filter, naive k-means
// init, and risk-divisor sweeps (divisor affects flag thresholds, not
// accuracy).
func (e *Env) Ablations() ([]AblationRow, error) {
	samples := e.Traffic.Samples()
	ref := core.ExtractorReference{Extractor: e.Traffic.Extractor, OS: ua.Windows10}

	variants := []struct {
		name string
		mut  func(*core.TrainConfig)
		note string
	}{
		{"default", func(*core.TrainConfig) {}, "28 features, PCA 7, k=11"},
		{"no-pca", func(c *core.TrainConfig) { c.DisablePCA = true }, "cluster on 28 scaled features"},
		{"no-outlier-filter", func(c *core.TrainConfig) { c.DisableOutlierFilter = true }, "keep Isolation Forest outliers"},
		{"no-rare-ua-alignment", func(c *core.TrainConfig) { c.Reference = nil }, "trust sparse majorities"},
	}

	out := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		cfg := core.DefaultTrainConfig()
		cfg.Reference = ref
		v.mut(&cfg)
		m, _, err := core.Train(samples, cfg)
		if err != nil {
			return nil, err
		}
		flagged := 0
		for _, s := range e.Traffic.Sessions {
			res, err := m.Score(s.Vector, s.Claimed)
			if err != nil {
				return nil, err
			}
			if res.Flagged() {
				flagged++
			}
		}
		out = append(out, AblationRow{Name: v.name, Accuracy: m.Accuracy, Flagged: flagged, Note: v.note})
	}
	return out, nil
}

// DivisorSweepRow reports Algorithm 1 behaviour under alternative
// version-distance divisors (the paper picked 4 empirically).
type DivisorSweepRow struct {
	Divisor  int
	RF1, RF4 int // flagged sessions above risk thresholds
	AvgRisk  float64
}

// DivisorSweep rescoring-only ablation: risk factors under divisors
// {1,2,4,8}.
func (e *Env) DivisorSweep() ([]DivisorSweepRow, error) {
	out := make([]DivisorSweepRow, 0, 4)
	m := e.Model
	// Models must not be copied (they carry an atomic plan cache), and
	// the scoring path reads VersionDivisor live, so sweep by mutating
	// the shared model and restoring it afterwards.
	origDiv := m.VersionDivisor
	defer func() { m.VersionDivisor = origDiv }()
	for _, div := range []int{1, 2, 4, 8} {
		m.VersionDivisor = div
		var rf1, rf4, flagged, riskSum int
		for _, s := range e.Traffic.Sessions {
			res, err := m.Score(s.Vector, s.Claimed)
			if err != nil {
				return nil, err
			}
			if !res.Flagged() {
				continue
			}
			flagged++
			riskSum += res.RiskFactor
			if res.RiskFactor > 1 {
				rf1++
			}
			if res.RiskFactor > 4 {
				rf4++
			}
		}
		row := DivisorSweepRow{Divisor: div, RF1: rf1, RF4: rf4}
		if flagged > 0 {
			row.AvgRisk = float64(riskSum) / float64(flagged)
		}
		out = append(out, row)
	}
	return out, nil
}
