package experiments

import (
	"polygraph/internal/kmeans"
	"polygraph/internal/matrix"
)

// elbowOn wraps the kmeans elbow sweep with the experiment defaults.
func elbowOn(m *matrix.Dense, kMin, kMax int) ([]kmeans.ElbowPoint, error) {
	return kmeans.ElbowCurve(m, kMin, kMax, kmeans.Config{
		Seed:     1,
		PlusPlus: true,
		Restarts: 3,
		MaxIter:  100,
	})
}
