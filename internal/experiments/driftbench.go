package experiments

import (
	"polygraph/internal/dataset"
	"polygraph/internal/drift"
	"polygraph/internal/ua"
)

// ---------------------------------------------------------------------
// Table 6 — drift analysis over late-July–October traffic (§7.3).
// ---------------------------------------------------------------------

// driftSource adapts a drift-window dataset to drift.SessionSource.
type driftSource struct {
	data *dataset.Dataset
}

// VectorsFor implements drift.SessionSource: the live sessions of a
// release observed up to the evaluation day.
func (s driftSource) VectorsFor(r ua.Release, upToDay int) [][]float64 {
	var out [][]float64
	for _, sess := range s.data.Sessions {
		if sess.Claimed == r && sess.Day <= upToDay {
			out = append(out, sess.Vector)
		}
	}
	return out
}

// Table6Result bundles the drift evaluations with the retrain signal.
type Table6Result struct {
	Evaluations []drift.Evaluation
	RetrainDate string
}

// Table6 runs the 2023 evaluation calendar against drift-window traffic.
func (e *Env) Table6() (*Table6Result, error) {
	driftData, err := DriftTraffic(0)
	if err != nil {
		return nil, err
	}
	det := &drift.Detector{Model: e.Model}
	rep, err := det.RunCalendar(drift.Calendar2023(), driftSource{data: driftData})
	if err != nil {
		return nil, err
	}
	return &Table6Result{Evaluations: rep.Evaluations, RetrainDate: rep.RetrainDate}, nil
}
