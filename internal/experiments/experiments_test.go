package experiments

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"polygraph/internal/ua"
)

// sharedEnv trains one moderate-scale environment for the whole test
// package; individual experiments are cheap once it exists.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() {
		sessions := 60000
		if testing.Short() {
			sessions = 20000
		}
		envVal, envErr = NewEnv(sessions, 0)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestEnvTrainsAccurately(t *testing.T) {
	e := sharedEnv(t)
	if e.Model.Accuracy < 0.985 {
		t.Fatalf("training accuracy %.4f, paper reports 99.6%%", e.Model.Accuracy)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byTool := map[string]Table2Row{}
	for _, r := range rows {
		byTool[r.Tool] = r
	}
	bp := byTool["BROWSER POLYGRAPH"]
	ami := byTool["AmIUnique"]
	fpjs := byTool["FingerprintJS"]
	cjs := byTool["ClientJS"]
	// Storage: BP ≤ 1KB and at least 10× under FingerprintJS; ordering
	// AmIUnique > FingerprintJS > ClientJS > BP.
	if bp.StorageBytes > 1024 {
		t.Fatalf("BP payload %dB over budget", bp.StorageBytes)
	}
	if !(ami.StorageBytes > fpjs.StorageBytes && fpjs.StorageBytes > cjs.StorageBytes && cjs.StorageBytes > bp.StorageBytes) {
		t.Fatalf("storage ordering broken: %d %d %d %d",
			ami.StorageBytes, fpjs.StorageBytes, cjs.StorageBytes, bp.StorageBytes)
	}
	if fpjs.StorageBytes < 10*bp.StorageBytes {
		t.Fatalf("BP not ≥10x smaller: %d vs %d", bp.StorageBytes, fpjs.StorageBytes)
	}
	// Collection cost: AmIUnique slowest, BP fastest.
	if !(ami.MeasuredCollect > bp.MeasuredCollect) {
		t.Fatalf("collection cost ordering broken: ami %v vs bp %v",
			ami.MeasuredCollect, bp.MeasuredCollect)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "BROWSER POLYGRAPH") {
		t.Fatal("render missing BP row")
	}
}

// rel is a test shorthand.
func rel(v ua.Vendor, ver int) ua.Release { return ua.Release{Vendor: v, Version: ver} }

func TestTable3MatchesPaperStructure(t *testing.T) {
	e := sharedEnv(t)
	m := e.Model
	has := func(r ua.Release) bool { _, ok := m.UACluster[r]; return ok }
	sameCluster := func(a, b ua.Release) bool { return m.UACluster[a] == m.UACluster[b] }
	diffCluster := func(a, b ua.Release) bool { return m.UACluster[a] != m.UACluster[b] }

	// The pairings Table 3 asserts.
	pairs := []struct {
		a, b ua.Release
		same bool
		why  string
	}{
		{rel(ua.Chrome, 110), rel(ua.Edge, 113), true, "cluster 0: Chrome 110-113 + Edge 110-113"},
		{rel(ua.Firefox, 101), rel(ua.Firefox, 114), true, "cluster 1: Firefox 101-114"},
		{rel(ua.Chrome, 60), rel(ua.Firefox, 80), true, "cluster 2: old Chrome with Firefox 51-91"},
		{rel(ua.Chrome, 114), rel(ua.Edge, 114), true, "cluster 3"},
		{rel(ua.Chrome, 70), rel(ua.Edge, 85), true, "cluster 4: Chrome 69-89 + Edge 79-89"},
		{rel(ua.Chrome, 105), rel(ua.Edge, 105), true, "cluster 5"},
		{rel(ua.Edge, 18), rel(ua.Firefox, 48), true, "cluster 6: legacy Edge + ancient Firefox"},
		{rel(ua.Chrome, 95), rel(ua.Edge, 95), true, "cluster 10"},
		{rel(ua.Chrome, 114), rel(ua.Chrome, 113), false, "114 split from 110-113"},
		{rel(ua.Firefox, 95), rel(ua.Chrome, 95), false, "Firefox 92-100 separate from Chrome 90-101"},
		{rel(ua.Firefox, 100), rel(ua.Firefox, 101), false, "Firefox mid vs modern split"},
		{rel(ua.Chrome, 109), rel(ua.Chrome, 110), false, "Chromium era boundary at 110"},
		{rel(ua.Firefox, 110), rel(ua.Chrome, 110), false, "modern Firefox separate from modern Chrome"},
	}
	evaluated := 0
	for _, p := range pairs {
		if !has(p.a) || !has(p.b) {
			// Rare releases can draw zero sessions; the pair is then
			// unobservable, exactly like the paper's missing versions.
			t.Logf("skipping %s vs %s: no traffic", p.a, p.b)
			continue
		}
		evaluated++
		if p.same && !sameCluster(p.a, p.b) {
			t.Errorf("%s and %s should share a cluster (%s)", p.a, p.b, p.why)
		}
		if !p.same && !diffCluster(p.a, p.b) {
			t.Errorf("%s and %s should be in different clusters (%s)", p.a, p.b, p.why)
		}
	}
	if evaluated < 10 {
		t.Fatalf("only %d of %d pairs observable", evaluated, len(pairs))
	}
	rows := e.Table3()
	if len(rows) < 8 || len(rows) > 11 {
		t.Fatalf("cluster table has %d rows", len(rows))
	}
}

func TestTable9CoarserThanTable3(t *testing.T) {
	e := sharedEnv(t)
	rows9, err := e.Table9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows9) > 6 {
		t.Fatalf("k=6 table has %d rows", len(rows9))
	}
	if len(rows9) < 4 {
		t.Fatalf("k=6 table collapsed to %d rows", len(rows9))
	}
	// k=6 merges more than k=11 does.
	if len(rows9) >= len(e.Table3()) {
		t.Fatal("k=6 not coarser than k=11")
	}
}

func TestTable4Enrichment(t *testing.T) {
	e := sharedEnv(t)
	rows, err := e.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	all, flagged, rf1, rf4, random := rows[0], rows[1], rows[2], rows[3], rows[4]

	// Monotone enrichment, the paper's central Table 4 claim.
	if !(flagged.IPPct > all.IPPct+10) {
		t.Fatalf("flagged IP %.1f not ≫ base %.1f", flagged.IPPct, all.IPPct)
	}
	if !(flagged.CookiePct > all.CookiePct+10) {
		t.Fatalf("flagged cookie %.1f not ≫ base %.1f", flagged.CookiePct, all.CookiePct)
	}
	if rf1.IPPct < flagged.IPPct-3 {
		t.Fatalf("rf>1 IP %.1f well below flagged %.1f", rf1.IPPct, flagged.IPPct)
	}
	// ATO ladder: base ≈0.4%; flagged ≈ 2%; rf>4 highest (paper 5.83%).
	if all.ATOPct > 1 {
		t.Fatalf("base ATO %.2f%% too high", all.ATOPct)
	}
	if flagged.ATOPct < 2*all.ATOPct {
		t.Fatalf("flagged ATO %.2f%% not enriched over base %.2f%%", flagged.ATOPct, all.ATOPct)
	}
	if rf4.ATOPct < flagged.ATOPct {
		t.Fatalf("rf>4 ATO %.2f%% below flagged %.2f%%", rf4.ATOPct, flagged.ATOPct)
	}
	// Random control ≈ base rates.
	if random.Sessions != flagged.Sessions {
		t.Fatalf("random control size %d != flagged %d", random.Sessions, flagged.Sessions)
	}
	if random.IPPct > all.IPPct+8 || random.IPPct < all.IPPct-8 {
		t.Fatalf("random IP %.1f far from base %.1f", random.IPPct, all.IPPct)
	}
	// Flagged rate in the paper's regime (897/205k ≈ 0.44%).
	rate := float64(flagged.Sessions) / float64(all.Sessions)
	if rate < 0.002 || rate > 0.009 {
		t.Fatalf("flagged rate %.4f outside regime", rate)
	}
}

func TestTable5FraudDetection(t *testing.T) {
	e := sharedEnv(t)
	rows, err := e.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		total := r.Flagged + r.NotFlagged
		if total < 8 {
			t.Fatalf("%s evaluated only %d profiles", r.Browser, total)
		}
		// Paper regime: recall 67-84%, some misses for every tool.
		if r.Recall < 0.5 || r.Recall > 0.98 {
			t.Fatalf("%s recall %.2f outside paper regime", r.Browser, r.Recall)
		}
		if r.Flagged > 0 && r.AvgRisk < 4 {
			t.Fatalf("%s avg risk %.2f too low (paper: 8.85-11.66)", r.Browser, r.AvgRisk)
		}
	}
}

func TestTable6Drift(t *testing.T) {
	e := sharedEnv(t)
	res, err := e.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) < 12 {
		t.Fatalf("only %d evaluations", len(res.Evaluations))
	}
	ffModernCluster := e.Model.UACluster[rel(ua.Firefox, 114)]
	for _, ev := range res.Evaluations {
		switch {
		case ev.Release.Version <= 118:
			if ev.Retrain {
				t.Fatalf("%s %s retrained early: %s", ev.Date, ev.Release, ev.Reason)
			}
			if ev.Accuracy < 0.97 {
				t.Fatalf("%s accuracy %.3f in stable window", ev.Release, ev.Accuracy)
			}
		case ev.Release == rel(ua.Firefox, 119):
			if !ev.Retrain {
				t.Fatal("Firefox 119 did not signal retrain")
			}
			if ev.Cluster == ffModernCluster {
				t.Fatal("Firefox 119 still in Firefox-modern cluster")
			}
		}
	}
	if res.RetrainDate != "10/31" {
		t.Fatalf("retrain date %s, want 10/31", res.RetrainDate)
	}
}

func TestTable7UAHighestEntropy(t *testing.T) {
	e := sharedEnv(t)
	rows := e.Table7(8)
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Feature != "user-agent" {
		t.Fatalf("highest normalized entropy is %s, paper says user-agent", rows[0].Feature)
	}
	for _, r := range rows {
		if r.Normalized < 0 || r.Normalized > 1 {
			t.Fatalf("%s normalized entropy %v", r.Feature, r.Normalized)
		}
		if r.Entropy < 0 {
			t.Fatalf("%s entropy %v", r.Feature, r.Entropy)
		}
	}
	// Element should be the top-entropy deviation feature (Table 7 row 2).
	if !strings.Contains(rows[1].Feature, "Element") {
		t.Logf("note: second row is %s (paper: Element)", rows[1].Feature)
	}
}

func TestFigure2SevenComponentsSuffice(t *testing.T) {
	e := sharedEnv(t)
	pts := e.Figure2()
	if len(pts) != 28 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[6].Y < 0.985 {
		t.Fatalf("7 components capture %.4f, paper: >98.5%%", pts[6].Y)
	}
	prev := 0.0
	for _, p := range pts {
		if p.Y < prev-1e-12 {
			t.Fatal("cumulative variance not monotone")
		}
		prev = p.Y
	}
}

func TestFigures3And4ElbowAt11(t *testing.T) {
	e := sharedEnv(t)
	f3, err := e.Figure3(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(f3); i++ {
		if f3[i].Y > f3[i-1].Y*1.05 {
			t.Fatalf("WCSS rose sharply at k=%d", f3[i].X)
		}
	}
	f4, err := e.Figure4(16)
	if err != nil {
		t.Fatal(err)
	}
	// The relative-WCSS spike should appear in the high-k region near
	// the paper's 11 (the exact peak depends on the noise draw).
	bestK, bestY := 0, -1.0
	for _, p := range f4 {
		if p.X >= 7 && p.Y > bestY {
			bestY = p.Y
			bestK = p.X
		}
	}
	if bestK < 8 || bestK > 13 {
		t.Fatalf("relative-WCSS peak at k=%d, paper: 11", bestK)
	}
}

func TestFigure5PrivacyShape(t *testing.T) {
	e := sharedEnv(t)
	res := e.Figure5()
	if res.UniqueRate > 0.02 {
		t.Fatalf("unique fingerprints %.3f%%, paper: 0.3%%", 100*res.UniqueRate)
	}
	if res.LargeSetRate < 0.85 {
		t.Fatalf("large-set rate %.3f, paper: 95.6%%", res.LargeSetRate)
	}
	total := 0.0
	for _, b := range res.Buckets {
		total += b.Percent
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("bucket percents sum to %v", total)
	}
}

func TestTable10KSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("k sweep retrains 8 models")
	}
	e := sharedEnv(t)
	rows, err := e.Table10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0.97 {
			t.Fatalf("k=%d accuracy %.4f", r.Param, r.Accuracy)
		}
	}
}

func TestTable11PCASweep(t *testing.T) {
	if testing.Short() {
		t.Skip("pca sweep retrains 5 models")
	}
	e := sharedEnv(t)
	rows, err := e.Table11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0.97 {
			t.Fatalf("pca=%d accuracy %.4f", r.Param, r.Accuracy)
		}
	}
}

func TestTable12FeatureSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("feature sweep re-extracts the traffic 4 times")
	}
	e := sharedEnv(t)
	rows, err := e.Table12()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Features != 28 || rows[3].Features != 42 {
		t.Fatal("wrong feature steps")
	}
	if rows[1].Added[0] != "HTMLIFrameElement" {
		t.Fatalf("first Table 12 addition = %s, paper: HTMLIFrameElement", rows[1].Added[0])
	}
	for _, r := range rows {
		if r.Accuracy < 0.95 {
			t.Fatalf("features=%d accuracy %.4f", r.Features, r.Accuracy)
		}
	}
}

func TestAppendixFive(t *testing.T) {
	for _, windows := range []bool{true, false} {
		rows, err := AppendixFive(windows)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("%d rows", len(rows))
		}
		byTech := map[string]Table13Row{}
		for _, r := range rows {
			byTech[r.Technique] = r
		}
		bp := byTech["BROWSER POLYGRAPH"]
		fpjs := byTech["FingerprintJS"]
		cjs := byTech["ClientJS"]
		// Paper shape: BP ≥ FingerprintJS > ClientJS in accuracy; BP
		// uses 28 features, FingerprintJS hundreds, ClientJS a handful.
		if bp.Accuracy < fpjs.Accuracy-1e-9 {
			t.Fatalf("BP %.4f below FingerprintJS %.4f (windows=%v)", bp.Accuracy, fpjs.Accuracy, windows)
		}
		if cjs.Accuracy > fpjs.Accuracy {
			t.Fatalf("ClientJS %.4f above FingerprintJS %.4f (windows=%v)", cjs.Accuracy, fpjs.Accuracy, windows)
		}
		if bp.Features != 28 {
			t.Fatalf("BP features = %d", bp.Features)
		}
		if fpjs.Features < 5*cjs.Features {
			t.Fatalf("FingerprintJS features %d not ≫ ClientJS %d", fpjs.Features, cjs.Features)
		}
		if bp.Accuracy < 0.95 {
			t.Fatalf("BP accuracy %.4f too low", bp.Accuracy)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations retrain 4 models")
	}
	e := sharedEnv(t)
	rows, err := e.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Name != "default" {
		t.Fatal("first row not default")
	}
	for _, r := range rows {
		if r.Accuracy < 0.9 {
			t.Fatalf("%s accuracy %.4f", r.Name, r.Accuracy)
		}
	}
}

func TestDivisorSweepMonotone(t *testing.T) {
	e := sharedEnv(t)
	rows, err := e.DivisorSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Larger divisors shrink same-vendor risk factors: rf>4 counts are
	// non-increasing in the divisor.
	for i := 1; i < len(rows); i++ {
		if rows[i].RF4 > rows[i-1].RF4 {
			t.Fatalf("rf>4 rose from divisor %d to %d", rows[i-1].Divisor, rows[i].Divisor)
		}
	}
}

func TestRenderersDoNotPanic(t *testing.T) {
	e := sharedEnv(t)
	var buf bytes.Buffer
	RenderClusterTable(&buf, "Table 3", e.Table3())
	rows4, err := e.Table4()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable4(&buf, rows4)
	rows5, err := e.Table5()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable5(&buf, rows5)
	RenderTable7(&buf, e.Table7(8))
	RenderFigure(&buf, "Figure 2", "components", "cumvar", e.Figure2(), 1)
	RenderFigure5(&buf, e.Figure5())
	sweep, err := e.DivisorSweep()
	if err != nil {
		t.Fatal(err)
	}
	RenderDivisorSweep(&buf, sweep)
	RenderTable1(&buf)
	RenderTable8(&buf)
	RenderSweep(&buf, "sweep", "param", []SweepPoint{{Param: 5, Accuracy: 0.99}})
	RenderTable12(&buf, []Table12Row{{Features: 28, PCA: 7, K: 11, Accuracy: 0.99}})
	RenderTable13(&buf, "t13", []Table13Row{{Technique: "BP", Rows: 1, Features: 28, PCA: 7, K: 11, Accuracy: 1}})
	res6, err := e.Table6()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable6(&buf, res6)
	RenderValidation(&buf, []SilhouettePoint{{K: 11, WCSS: 0.9}}, nil, 0)
	RenderCandidateGeneration(&buf, &CandidateGenerationResult{}, &PreprocessingResult{})
	RenderDBSCAN(&buf, &DBSCANResult{Eps: 0.2, MinPts: 8, K: 17, Accuracy: 0.98, KMeansK: 11, KMeansAcc: 0.99})
	RenderDriftEvaluations(&buf, res6.Evaluations)
	if buf.Len() == 0 {
		t.Fatal("renderers produced nothing")
	}
	if testing.Verbose() {
		buf.WriteTo(os.Stdout)
	}
}
