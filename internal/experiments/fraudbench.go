package experiments

import (
	"fmt"

	"polygraph/internal/fraud"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// ---------------------------------------------------------------------
// Table 5 — fraud browsers' detection capability (§7.2).
// ---------------------------------------------------------------------

// Table5Row is one product line of Table 5.
type Table5Row struct {
	Browser    string
	Flagged    int
	NotFlagged int
	AvgRisk    float64
	Recall     float64
}

// table5Tools are the products the paper evaluates on its private test
// site, with the profile budget each product's customization UI allowed
// (§7.2: "two profiles per cluster ... where a fraud browser limited
// this capability" fewer). engineClusterProfiles reconstructs how many
// of each product's profiles claimed user-agents from the tool's own
// engine cluster — the paper's not-flagged attempts ("this latter reason
// also accounted for the non-flagged attempts"): operators naturally
// include the profiles the product ships, which match its engine.
var table5Tools = []struct {
	name                  string
	budget                int
	perCluster            int
	engineClusterProfiles int
}{
	{"GoLogin-3.3.23", 16, 2, 4},
	{"Incogniton-3.2.7.7", 9, 1, 2},
	{"Octo Browser-1.10", 19, 2, 3},
	{"Sphere-1.3", 9, 2, 3},
}

// Table5 recreates the private-website experiment: for each product,
// build profiles claiming user-agents spread across the trained clusters
// (respecting the product's limits), visit the detector, and report
// flagged counts, average risk factor, and recall.
func (e *Env) Table5() ([]Table5Row, error) {
	rows := make([]Table5Row, 0, len(table5Tools))
	clusterRows := e.Model.ClusterTable()
	for _, tt := range table5Tools {
		tool, ok := fraud.ToolByName(tt.name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown tool %s", tt.name)
		}
		gen := rng.NewString("table5:" + tt.name)
		engineCluster, engineKnown := e.Model.UACluster[tool.Engine]
		var victims []ua.Release
		// The product's own shipped profiles: user-agents from its
		// engine's cluster.
		if engineKnown {
			members := e.Model.ClusterUAs[engineCluster]
			for i := 0; i < tt.engineClusterProfiles && len(members) > 0; i++ {
				victims = append(victims, members[i%len(members)])
			}
		}
		// Custom profiles spread across the other clusters. For tools
		// that can only claim certain vendors, pick members of those
		// vendors so the clamp does not silently move the claim into
		// the engine's own cluster.
		claimable := func(r ua.Release) bool {
			if len(tool.UAVendors) == 0 {
				return true
			}
			for _, v := range tool.UAVendors {
				if r.Vendor == v {
					return true
				}
			}
			return false
		}
		for _, cr := range clusterRows {
			if engineKnown && cr.Cluster == engineCluster {
				continue
			}
			members := e.Model.ClusterUAs[cr.Cluster]
			var eligible []ua.Release
			for _, m := range members {
				if claimable(m) {
					eligible = append(eligible, m)
				}
			}
			if len(eligible) == 0 {
				continue
			}
			picks := []ua.Release{eligible[0]}
			if tt.perCluster > 1 && len(eligible) > 1 {
				picks = append(picks, eligible[len(eligible)-1])
			}
			victims = append(victims, picks...)
		}
		if len(victims) > tt.budget {
			victims = victims[:tt.budget]
		}

		row := Table5Row{Browser: tt.name}
		riskSum := 0
		for _, victim := range victims {
			spoof := tool.Spoof(victim, ua.Windows10, gen)
			vec := e.Traffic.Extractor.Extract(spoof.Profile)
			res, err := e.Model.Score(vec, spoof.Claimed)
			if err != nil {
				return nil, err
			}
			if res.Flagged() {
				row.Flagged++
				riskSum += res.RiskFactor
			} else {
				row.NotFlagged++
			}
		}
		if row.Flagged > 0 {
			row.AvgRisk = float64(riskSum) / float64(row.Flagged)
		}
		total := row.Flagged + row.NotFlagged
		if total > 0 {
			row.Recall = float64(row.Flagged) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
