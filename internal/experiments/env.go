// Package experiments regenerates every table and figure of the paper's
// evaluation (§7, Appendices 2, 4, 5) against the synthetic substrates.
// Each experiment returns structured rows plus a text renderer;
// cmd/reproduce prints them and bench_test.go wraps them as benchmarks.
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"

	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/ua"
)

// Env bundles the shared state most experiments need: the synthetic
// FinOrg training traffic and the production-configured model trained on
// it.
type Env struct {
	Traffic *dataset.Dataset
	Model   *core.Model
	Report  *core.TrainReport
}

// DefaultSessions is the paper's training volume (§6.2: 205k rows).
const DefaultSessions = 205000

// NewEnv generates traffic and trains the default model. sessions <= 0
// selects DefaultSessions.
func NewEnv(sessions int, seed uint64) (*Env, error) {
	cfg := dataset.DefaultConfig()
	if sessions > 0 {
		cfg.Sessions = sessions
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	traffic, err := dataset.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: traffic: %w", err)
	}
	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	model, report, err := core.Train(traffic.Samples(), tc)
	if err != nil {
		return nil, fmt.Errorf("experiments: train: %w", err)
	}
	return &Env{Traffic: traffic, Model: model, Report: report}, nil
}

// scoreAll scores every session once and caches the results.
type scoredSession struct {
	dataset.Session
	Result core.Result
}

func (e *Env) scoreAll() ([]scoredSession, error) {
	sessions := e.Traffic.Sessions
	vectors := make([][]float64, len(sessions))
	claims := make([]ua.Release, len(sessions))
	for i, s := range sessions {
		vectors[i] = s.Vector
		claims[i] = s.Claimed
	}
	results, err := e.Model.ScoreBatch(vectors, claims)
	if err != nil {
		return nil, err
	}
	out := make([]scoredSession, len(sessions))
	for i, s := range sessions {
		out[i] = scoredSession{Session: s, Result: results[i]}
	}
	return out, nil
}
