package experiments

import (
	"fmt"
	"sort"

	"polygraph/internal/kmeans"
	"polygraph/internal/matrix"
	"polygraph/internal/pca"
	"polygraph/internal/scaler"
	"polygraph/internal/ua"
)

// clusterBench runs the Appendix-5 clustering pipeline on an arbitrary
// numeric design matrix with user-agent labels: scale → PCA (components
// chosen for ≥98.5% cumulative variance) → k-means (k chosen by the
// largest relative-WCSS drop) → Formula 1 accuracy. The same helper
// powers Tables 13/14 and the Appendix-4 sensitivity analyses that vary
// feature sets.
type clusterBenchResult struct {
	Rows      int
	Features  int
	PCA       int
	K         int
	Accuracy  float64
	WCSS      float64
	PerUA     map[ua.Release]int // UA -> majority cluster
	Assign    []int
	ElbowData []kmeans.ElbowPoint
}

type clusterBenchConfig struct {
	VarianceTarget float64 // 0 => 0.985
	KMin, KMax     int     // 0 => [2, 16]
	ForceK         int     // >0 pins k
	ForcePCA       int     // >0 pins components
	Seed           uint64
	SkipScale      []bool
}

func clusterBench(m *matrix.Dense, labels []ua.Release, cfg clusterBenchConfig) (*clusterBenchResult, error) {
	rows, cols := m.Dims()
	if rows != len(labels) {
		return nil, fmt.Errorf("experiments: %d rows vs %d labels", rows, len(labels))
	}
	if rows < 4 || cols < 1 {
		return nil, fmt.Errorf("experiments: degenerate design matrix %dx%d", rows, cols)
	}
	if cfg.VarianceTarget == 0 {
		cfg.VarianceTarget = 0.985
	}
	if cfg.KMin == 0 {
		cfg.KMin = 2
	}
	if cfg.KMax == 0 {
		cfg.KMax = 16
	}
	if cfg.KMax >= rows {
		cfg.KMax = rows - 1
	}

	sc, err := scaler.Fit(m, scaler.Config{Skip: cfg.SkipScale})
	if err != nil {
		return nil, err
	}
	scaled, err := sc.Transform(m)
	if err != nil {
		return nil, err
	}

	comps := cfg.ForcePCA
	var projected *matrix.Dense
	if comps == 0 {
		full, err := pca.Fit(scaled, min(cols, rows-1))
		if err != nil {
			return nil, err
		}
		comps = full.ComponentsForVariance(cfg.VarianceTarget)
	}
	p, err := pca.Fit(scaled, comps)
	if err != nil {
		return nil, err
	}
	projected, err = p.Transform(scaled)
	if err != nil {
		return nil, err
	}

	k := cfg.ForceK
	var elbow []kmeans.ElbowPoint
	if k == 0 {
		elbow, err = kmeans.ElbowCurve(projected, cfg.KMin, cfg.KMax,
			kmeans.Config{Seed: cfg.Seed, PlusPlus: true, Restarts: 3})
		if err != nil {
			return nil, err
		}
		k = kmeans.BestRelativeK(elbow, cfg.KMin+1)
		if k == 0 {
			k = cfg.KMin
		}
	}
	km, err := kmeans.Fit(projected, kmeans.Config{K: k, Seed: cfg.Seed, PlusPlus: true, Restarts: 4})
	if err != nil {
		return nil, err
	}
	assign, err := km.PredictAll(projected)
	if err != nil {
		return nil, err
	}

	// Formula 1 accuracy.
	majority := map[ua.Release]map[int]int{}
	for i, lbl := range labels {
		if majority[lbl] == nil {
			majority[lbl] = map[int]int{}
		}
		majority[lbl][assign[i]]++
	}
	perUA := map[ua.Release]int{}
	for lbl, counts := range majority {
		clusters := make([]int, 0, len(counts))
		for c := range counts {
			clusters = append(clusters, c)
		}
		sort.Ints(clusters)
		best, bestN := 0, -1
		for _, c := range clusters {
			if counts[c] > bestN {
				bestN = counts[c]
				best = c
			}
		}
		perUA[lbl] = best
	}
	correct := 0
	for i, lbl := range labels {
		if assign[i] == perUA[lbl] {
			correct++
		}
	}

	return &clusterBenchResult{
		Rows:      rows,
		Features:  cols,
		PCA:       comps,
		K:         k,
		Accuracy:  float64(correct) / float64(rows),
		WCSS:      km.WCSS,
		PerUA:     perUA,
		Assign:    assign,
		ElbowData: elbow,
	}, nil
}
