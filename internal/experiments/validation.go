package experiments

import (
	"fmt"
	"io"

	"polygraph/internal/dataset"
	"polygraph/internal/drift"
	"polygraph/internal/fingerprint"
	"polygraph/internal/kmeans"
)

// Cross-checks of the paper's modeling choices using machinery the paper
// did not use: silhouette analysis of the k choice, and feature-level
// PSI between the training and drift windows.

// SilhouettePoint pairs k with its mean silhouette coefficient.
type SilhouettePoint = kmeans.ElbowPoint

// SilhouetteCheck evaluates cluster cohesion/separation for k around the
// paper's 11, on the PCA-projected training data.
func (e *Env) SilhouetteCheck(kMin, kMax int) ([]SilhouettePoint, error) {
	if kMin < 2 {
		kMin = 2
	}
	if kMax < kMin {
		kMax = kMin + 10
	}
	projected, err := e.projectedTrainingData()
	if err != nil {
		return nil, err
	}
	return kmeans.SilhouetteCurve(projected, kMin, kMax,
		kmeans.Config{Seed: 1, PlusPlus: true, Restarts: 3, MaxIter: 100}, 1500)
}

// WindowPSI compares the per-feature distributions of the training
// window against the drift window — the feature-level early-warning
// complement to the release-level drift detector (§6.6 "shifts in data
// patterns").
func (e *Env) WindowPSI() ([]drift.PSIResult, error) {
	driftData, err := DriftTraffic(0)
	if err != nil {
		return nil, err
	}
	baseline := vectorsOf(e.Traffic)
	current := vectorsOf(driftData)
	names := fingerprint.Names(e.Model.Features)
	return drift.FeaturePSI(names, baseline, current)
}

func vectorsOf(d *dataset.Dataset) [][]float64 {
	// Cap for PSI purposes; distributions stabilize long before 20k.
	n := len(d.Sessions)
	if n > 20000 {
		n = 20000
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = d.Sessions[i].Vector
	}
	return out
}

// RenderValidation prints the cross-checks.
func RenderValidation(w io.Writer, sil []SilhouettePoint, psi []drift.PSIResult, topN int) {
	header(w, "Model validation cross-checks")
	if len(sil) > 0 {
		fmt.Fprintf(w, "silhouette by k:")
		for _, p := range sil {
			fmt.Fprintf(w, " k=%d:%.3f", p.K, p.WCSS)
		}
		fmt.Fprintln(w)
	}
	if len(psi) > 0 {
		if topN <= 0 || topN > len(psi) {
			topN = len(psi)
		}
		fmt.Fprintf(w, "top feature PSI (training window vs drift window):\n")
		for _, r := range psi[:topN] {
			fmt.Fprintf(w, "  %-70s %.4f (%s)\n", r.Feature, r.PSI, r.Status)
		}
	}
}
