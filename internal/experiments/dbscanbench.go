package experiments

import (
	"fmt"
	"io"
	"sort"

	"polygraph/internal/dbscan"
	"polygraph/internal/ua"
)

// DBSCAN ablation: the paper picked k-means (§6.4.3); density-based
// clustering is the counterfactual that discovers the cluster count and
// isolates noise natively. This experiment runs DBSCAN on the same
// PCA-projected training data and scores it with the same Formula 1
// accuracy.

// DBSCANResult compares the density-based run to the deployed k-means.
type DBSCANResult struct {
	Eps        float64
	MinPts     int
	K          int
	NoisePct   float64
	Accuracy   float64 // Formula 1, noise treated as its own label
	KMeansK    int
	KMeansAcc  float64
	SampleRows int
}

// DBSCANAblation collapses duplicate fingerprints into weighted points,
// sweeps Eps over the k-distance quantiles, keeps the radius that best
// resolves the era structure, and evaluates the result with Formula 1.
func (e *Env) DBSCANAblation() (*DBSCANResult, error) {
	projected, err := e.projectedTrainingData()
	if err != nil {
		return nil, err
	}
	rows, dims := projected.Dims()

	// Collapse exact duplicates (the dominant mass of fingerprint
	// traffic) into weighted unique points.
	type agg struct {
		idx    int
		weight float64
	}
	uniq := map[string]*agg{}
	keyOf := func(row []float64) string {
		b := make([]byte, 0, dims*8)
		for _, v := range row {
			b = append(b, fmt.Sprintf("%.6f,", v)...)
		}
		return string(b)
	}
	var uniqueRows [][]float64
	rowToUnique := make([]int, rows)
	for i := 0; i < rows; i++ {
		row := projected.Row(i)
		k := keyOf(row)
		a, ok := uniq[k]
		if !ok {
			a = &agg{idx: len(uniqueRows)}
			uniq[k] = a
			uniqueRows = append(uniqueRows, row)
		}
		a.weight++
		rowToUnique[i] = a.idx
	}
	uniqueM := matrixFromRows(uniqueRows)
	weights := make([]float64, len(uniqueRows))
	for _, a := range uniq {
		weights[a.idx] = a.weight
	}

	const minPts = 8
	kd, err := dbscan.KDistance(uniqueM, min(minPts, len(uniqueRows)-1))
	if err != nil {
		return nil, err
	}
	// Sweep Eps over the upper k-distance quantiles; keep the radius
	// producing the most clusters with little noise mass — the knee, by
	// search instead of eyeball.
	bestEps, bestK := kd[len(kd)-1], -1
	var best *dbscan.Result
	for _, q := range []int{50, 60, 70, 80, 85, 90, 95} {
		eps := kd[len(kd)*q/100]
		if eps <= 0 {
			continue
		}
		r, err := dbscan.Run(uniqueM, dbscan.Config{Eps: eps, MinPts: minPts, Weights: weights})
		if err != nil {
			return nil, err
		}
		noiseMass := 0.0
		for i, lbl := range r.Labels {
			if lbl == dbscan.Noise {
				noiseMass += weights[i]
			}
		}
		if noiseMass/float64(rows) > 0.05 {
			continue
		}
		if r.K > bestK {
			bestK, bestEps, best = r.K, eps, r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no viable DBSCAN eps found")
	}
	eps := bestEps
	// Expand unique-point labels back to sessions.
	expanded := make([]int, rows)
	noiseCount := 0
	for i := 0; i < rows; i++ {
		expanded[i] = best.Labels[rowToUnique[i]]
		if expanded[i] == dbscan.Noise {
			noiseCount++
		}
	}
	res := &dbscan.Result{Labels: expanded, K: best.K, NoiseCount: noiseCount}

	// Formula 1 accuracy over the projected rows. The projection was
	// built from a strided sample of sessions; recover the same stride.
	sessions := e.Traffic.Sessions
	sessStride := 1
	if len(sessions) > 20000 {
		sessStride = len(sessions) / 20000
	}
	labels := make([]ua.Release, 0, rows)
	for i := 0; i < len(sessions); i += sessStride {
		labels = append(labels, sessions[i].Claimed)
	}
	if len(labels) != rows {
		return nil, fmt.Errorf("experiments: dbscan label mismatch %d vs %d", len(labels), rows)
	}
	majority := map[ua.Release]map[int]int{}
	for i, lbl := range labels {
		if majority[lbl] == nil {
			majority[lbl] = map[int]int{}
		}
		majority[lbl][res.Labels[i]]++
	}
	expected := map[ua.Release]int{}
	for rel, counts := range majority {
		cs := make([]int, 0, len(counts))
		for c := range counts {
			cs = append(cs, c)
		}
		sort.Ints(cs)
		best, bestN := 0, -1
		for _, c := range cs {
			if counts[c] > bestN {
				bestN = counts[c]
				best = c
			}
		}
		expected[rel] = best
	}
	correct := 0
	for i, lbl := range labels {
		if res.Labels[i] == expected[lbl] {
			correct++
		}
	}

	return &DBSCANResult{
		Eps:        eps,
		MinPts:     minPts,
		K:          res.K,
		NoisePct:   100 * float64(res.NoiseCount) / float64(rows),
		Accuracy:   float64(correct) / float64(rows),
		KMeansK:    e.Model.KMeans.K,
		KMeansAcc:  e.Model.Accuracy,
		SampleRows: rows,
	}, nil
}

// RenderDBSCAN prints the ablation.
func RenderDBSCAN(w io.Writer, r *DBSCANResult) {
	if r == nil {
		return
	}
	fmt.Fprintf(w, "DBSCAN ablation (eps=%.3f from k-distance knee, minPts=%d, %d rows):\n",
		r.Eps, r.MinPts, r.SampleRows)
	fmt.Fprintf(w, "  clusters found %d (k-means uses %d), noise %.2f%%, accuracy %.2f%% (k-means %.2f%%)\n",
		r.K, r.KMeansK, r.NoisePct, 100*r.Accuracy, 100*r.KMeansAcc)
}
