package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/drift"
	"polygraph/internal/pipeline"
)

// The renderers print each experiment in a layout matching the paper's
// tables, for cmd/reproduce and EXPERIMENTS.md.

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// RenderStageTimings prints the per-stage wall times and row counts of a
// training run (TrainReport.Stages).
func RenderStageTimings(w io.Writer, stages []pipeline.Timing) {
	if len(stages) == 0 {
		return
	}
	var total time.Duration
	for _, st := range stages {
		total += st.Duration
	}
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "train stage", "time", "rows in", "rows out")
	for _, st := range stages {
		fmt.Fprintf(w, "%-16s %10v %10d %10d\n",
			st.Name, st.Duration.Round(time.Millisecond/10), st.RowsIn, st.RowsOut)
	}
	fmt.Fprintf(w, "%-16s %10v\n", "total", total.Round(time.Millisecond/10))
}

// RenderTable2 prints the performance comparison.
func RenderTable2(w io.Writer, rows []Table2Row) {
	header(w, "Table 2: time and storage requirements")
	fmt.Fprintf(w, "%-20s %16s %14s %12s %10s\n", "Tool", "measured/collect", "storage", "paper time", "paper size")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %16v %13dB %12s %10s\n",
			r.Tool, r.MeasuredCollect, r.StorageBytes, r.PaperServiceTime, r.PaperStorage)
	}
}

// RenderClusterTable prints Table 3 / Table 9 style cluster tables.
func RenderClusterTable(w io.Writer, title string, rows []core.ClusterRow) {
	header(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%2d | %s\n", r.Cluster, r.UserAgents)
	}
}

// RenderTable4 prints the tag-enrichment table.
func RenderTable4(w io.Writer, rows []Table4Row) {
	header(w, "Table 4: tag rates per category")
	fmt.Fprintf(w, "%-48s %9s %8s %8s %7s\n", "Category", "sessions", "IP%", "Cookie%", "ATO%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-48s %9d %8.1f %8.1f %7.2f\n",
			r.Category, r.Sessions, r.IPPct, r.CookiePct, r.ATOPct)
	}
}

// RenderTable5 prints the fraud-browser detection table.
func RenderTable5(w io.Writer, rows []Table5Row) {
	header(w, "Table 5: fraud browsers' detection")
	fmt.Fprintf(w, "%-22s %8s %12s %10s %7s\n", "Browser", "flagged", "not-flagged", "avg risk", "recall")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8d %12d %10.2f %6.0f%%\n",
			r.Browser, r.Flagged, r.NotFlagged, r.AvgRisk, 100*r.Recall)
	}
}

// RenderTable6 prints the drift analysis.
func RenderTable6(w io.Writer, res *Table6Result) {
	header(w, "Table 6: drift analysis (late-July to October)")
	fmt.Fprintf(w, "%-14s %7s %8s %9s %8s\n", "Browser", "date", "cluster", "accuracy", "retrain")
	for _, ev := range res.Evaluations {
		fmt.Fprintf(w, "%-14s %7s %8d %8.2f%% %8v\n",
			ev.Release, ev.Date, ev.Cluster, 100*ev.Accuracy, ev.Retrain)
	}
	if res.RetrainDate != "" {
		fmt.Fprintf(w, "retraining signaled on %s\n", res.RetrainDate)
	} else {
		fmt.Fprintln(w, "no retraining signaled in the window")
	}
}

// RenderTable7 prints the entropy table.
func RenderTable7(w io.Writer, rows []EntropyRow) {
	header(w, "Table 7: entropy of selected features")
	fmt.Fprintf(w, "%-74s %8s %11s\n", "Feature", "entropy", "normalized")
	for _, r := range rows {
		fmt.Fprintf(w, "%-74s %8.2f %11.3f\n", r.Feature, r.Entropy, r.Normalized)
	}
}

// RenderSweep prints Table 10/11 style parameter sweeps.
func RenderSweep(w io.Writer, title, param string, rows []SweepPoint) {
	header(w, title)
	fmt.Fprintf(w, "%-12s %10s\n", param, "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %9.2f%%\n", r.Param, 100*r.Accuracy)
	}
}

// RenderTable12 prints the feature-count sensitivity table.
func RenderTable12(w io.Writer, rows []Table12Row) {
	header(w, "Table 12: sensitivity to feature count")
	fmt.Fprintf(w, "%-9s %5s %4s %9s  %s\n", "features", "PCA", "k", "accuracy", "added")
	for _, r := range rows {
		added := strings.Join(r.Added, ", ")
		if added == "" {
			added = "(Table 8 base set)"
		}
		fmt.Fprintf(w, "%-9d %5d %4d %8.2f%%  %s\n", r.Features, r.PCA, r.K, 100*r.Accuracy, added)
	}
}

// RenderTable13 prints an Appendix-5 comparison (Table 13 or 14).
func RenderTable13(w io.Writer, title string, rows []Table13Row) {
	header(w, title)
	fmt.Fprintf(w, "%-20s %6s %9s %5s %4s %9s\n", "Technique", "rows", "features", "PCA", "k", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %6d %9d %5d %4d %8.2f%%\n",
			r.Technique, r.Rows, r.Features, r.PCA, r.K, 100*r.Accuracy)
	}
}

// RenderFigure prints a figure series as an ASCII table plus bar sketch.
func RenderFigure(w io.Writer, title, xLabel, yLabel string, points []FigurePoint, yScale float64) {
	header(w, title)
	fmt.Fprintf(w, "%-8s %-12s\n", xLabel, yLabel)
	maxY := 0.0
	for _, p := range points {
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	for _, p := range points {
		barLen := 0
		if maxY > 0 {
			barLen = int(40 * p.Y / maxY)
		}
		fmt.Fprintf(w, "%-8d %-12.4f %s\n", p.X, p.Y*yScale, strings.Repeat("#", barLen))
	}
}

// RenderFigure5 prints the anonymity-set distribution.
func RenderFigure5(w io.Writer, res Figure5Result) {
	header(w, "Figure 5: fingerprints per anonymity-set size")
	for _, b := range res.Buckets {
		fmt.Fprintf(w, "%-12s %7.2f%% (%d fingerprints)\n", b.Label, b.Percent, b.Count)
	}
	fmt.Fprintf(w, "unique fingerprints: %.2f%% (paper: 0.3%%)\n", 100*res.UniqueRate)
	fmt.Fprintf(w, "in sets >50:         %.2f%% (paper: 95.6%%)\n", 100*res.LargeSetRate)
}

// RenderDriftEvaluations prints raw drift rows (used by the CLI).
func RenderDriftEvaluations(w io.Writer, evs []drift.Evaluation) {
	for _, ev := range evs {
		status := "ok"
		if ev.Retrain {
			status = "RETRAIN: " + ev.Reason
		}
		fmt.Fprintf(w, "%-14s cluster=%d accuracy=%.2f%% sessions=%d %s\n",
			ev.Release, ev.Cluster, 100*ev.Accuracy, ev.Sessions, status)
	}
}

// RenderAblations prints the ablation comparison.
func RenderAblations(w io.Writer, rows []AblationRow) {
	header(w, "Ablations")
	fmt.Fprintf(w, "%-24s %9s %8s  %s\n", "Variant", "accuracy", "flagged", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8.2f%% %8d  %s\n", r.Name, 100*r.Accuracy, r.Flagged, r.Note)
	}
}

// RenderDivisorSweep prints the Algorithm 1 divisor ablation.
func RenderDivisorSweep(w io.Writer, rows []DivisorSweepRow) {
	header(w, "Algorithm 1 divisor sweep")
	fmt.Fprintf(w, "%-8s %6s %6s %9s\n", "divisor", "rf>1", "rf>4", "avg risk")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %6d %6d %9.2f\n", r.Divisor, r.RF1, r.RF4, r.AvgRisk)
	}
}
