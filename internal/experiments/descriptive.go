package experiments

import (
	"fmt"
	"io"

	"polygraph/internal/fingerprint"
	"polygraph/internal/fraud"
)

// The paper's descriptive tables: Table 1 (the fraud-browser catalog and
// its behaviour categories) and Table 8 (the final feature set). They are
// artifacts of the implementation rather than measurements, rendered here
// so `reproduce -all` covers every numbered table.

// RenderTable1 prints the modeled fraud-browser catalog.
func RenderTable1(w io.Writer) {
	header(w, "Table 1: fraud browsers and behaviour categories")
	fmt.Fprintf(w, "%-22s %-12s %-12s\n", "Browser", "category", "engine")
	for _, t := range fraud.KnownTools() {
		engine := "-"
		if t.Category == fraud.Category1 || t.Category == fraud.Category2 {
			engine = t.Engine.String()
		}
		fmt.Fprintf(w, "%-22s %-12s %-12s\n", t.FullName(), t.Category, engine)
	}
}

// RenderTable8 prints the production feature set.
func RenderTable8(w io.Writer) {
	header(w, "Table 8: features used for training")
	fmt.Fprintf(w, "%3s  %-74s %s\n", "num", "feature", "type")
	for i, f := range fingerprint.Table8() {
		fmt.Fprintf(w, "%3d  %-74s %s\n", i+1, f.Name(), f.Kind)
	}
}
