package experiments

import (
	"fmt"
	"io"
	"sort"

	"polygraph/internal/browser"
	"polygraph/internal/fingerprint"
	"polygraph/internal/stats"
	"polygraph/internal/ua"
)

// The Candidate Fingerprint Generation stage (§6.1) and the Data
// Pre-Processing stage (§6.3), as algorithms rather than published
// artifacts: rank every registry prototype by output deviation across
// legitimate browsers, and analyze a day's real traffic to shrink the
// 513 candidates to the final feature set.

// CandidateRank is one ranked deviation candidate.
type CandidateRank struct {
	Proto string
	// NormStd is the normalized standard deviation of the property
	// count across the tested browsers (the paper's ranking key; its
	// selected features span 0.0012–1.3853).
	NormStd float64
}

// CandidateGenerationResult reports the §6.1 stage.
type CandidateGenerationResult struct {
	TestedBrowsers int
	TestedProtos   int
	// Top are the ranked top-N candidates.
	Top []CandidateRank
	// Appendix3Overlap counts how many of the published 200 appear in
	// the top-200 of this ranking.
	Appendix3Overlap int
	// MinStd/MaxStd bound the selected candidates' normalized std.
	MinStd, MaxStd float64
}

// CandidateGeneration replays §6.1: extract every registry prototype's
// property count across the legitimate release grid (Chrome 59+, Firefox
// 46+, Edge 17-19/79+ up to maxVersion), rank by normalized standard
// deviation, and keep the top `keep` (paper: 200).
func CandidateGeneration(maxVersion, keep int) (*CandidateGenerationResult, error) {
	if maxVersion < 60 {
		maxVersion = 114
	}
	if keep <= 0 {
		keep = 200
	}
	oracle := browser.NewOracle()
	releases := ua.Universe(maxVersion)
	protos := browser.Registry()

	ranks := make([]CandidateRank, 0, len(protos))
	values := make([]float64, len(releases))
	for _, proto := range protos {
		for i, r := range releases {
			values[i] = float64(oracle.PropertyCount(r, proto))
		}
		ranks = append(ranks, CandidateRank{Proto: proto, NormStd: stats.NormalizedStd(values)})
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].NormStd != ranks[j].NormStd {
			return ranks[i].NormStd > ranks[j].NormStd
		}
		return ranks[i].Proto < ranks[j].Proto
	})
	if keep > len(ranks) {
		keep = len(ranks)
	}
	top := ranks[:keep]

	published := map[string]bool{}
	for _, p := range browser.Appendix3Protos() {
		published[p] = true
	}
	res := &CandidateGenerationResult{
		TestedBrowsers: len(releases),
		TestedProtos:   len(protos),
		Top:            top,
	}
	for _, r := range top {
		if published[r.Proto] {
			res.Appendix3Overlap++
		}
	}
	if len(top) > 0 {
		res.MaxStd = top[0].NormStd
		res.MinStd = top[len(top)-1].NormStd
	}
	return res, nil
}

// PreprocessingResult reports the §6.3 stage on a day's traffic.
type PreprocessingResult struct {
	SampleSessions int
	// SingleValued counts candidates showing one value across the whole
	// sample (paper: 186 of 513 on a March day).
	SingleValued int
	// SingleValuedDeviation / SingleValuedTimeBased split that count by
	// family (paper: ~30% of deviation, ~40% of time-based).
	SingleValuedDeviation int
	SingleValuedTimeBased int
	// Table8Recovered counts how many of the paper's final 28 features
	// survive the single-value filter (all should).
	Table8Recovered int
}

// PreprocessingAnalysis replays §6.3's first filter: collect the full
// 513-candidate vector for a traffic sample starting at the given day
// (FinOrg's daily volume; maxSessions caps the sample) and find the
// features that carry no information.
func (e *Env) PreprocessingAnalysis(day int, maxSessions int) (*PreprocessingResult, error) {
	if maxSessions <= 0 {
		maxSessions = 3000
	}
	cands := fingerprint.Candidates513()
	ext := fingerprint.NewExtractor(e.Traffic.Oracle, cands)

	// Rebuild the day's profiles from session ground truth; the stored
	// vectors only carry the final 28 features.
	var vectors [][]float64
	for _, s := range e.Traffic.Sessions {
		if s.Day < day {
			continue
		}
		vectors = append(vectors, ext.Extract(browser.Profile{Release: s.ActualRelease, OS: s.OS}))
		if len(vectors) >= maxSessions {
			break
		}
	}
	if len(vectors) < 50 {
		return nil, fmt.Errorf("experiments: only %d sessions on day %d", len(vectors), day)
	}

	res := &PreprocessingResult{SampleSessions: len(vectors)}
	varying := map[string]bool{}
	for j, cand := range cands {
		first := vectors[0][j]
		single := true
		for _, v := range vectors[1:] {
			if v[j] != first {
				single = false
				break
			}
		}
		if single {
			res.SingleValued++
			switch cand.Kind {
			case fingerprint.DeviationBased:
				res.SingleValuedDeviation++
			case fingerprint.TimeBased:
				res.SingleValuedTimeBased++
			}
		} else {
			varying[cand.Name()] = true
		}
	}
	for _, f := range fingerprint.Table8() {
		if varying[f.Name()] {
			res.Table8Recovered++
		}
	}
	return res, nil
}

// RenderCandidateGeneration prints the §6.1/§6.3 stage reports.
func RenderCandidateGeneration(w io.Writer, cg *CandidateGenerationResult, pp *PreprocessingResult) {
	header(w, "Candidate generation and pre-processing (paper §6.1, §6.3)")
	if cg != nil {
		fmt.Fprintf(w, "ranked %d prototypes over %d browsers; top-%d normalized std range %.4f-%.4f\n",
			cg.TestedProtos, cg.TestedBrowsers, len(cg.Top), cg.MinStd, cg.MaxStd)
		fmt.Fprintf(w, "overlap with the published Appendix-3 list: %d of %d\n",
			cg.Appendix3Overlap, len(cg.Top))
	}
	if pp != nil {
		fmt.Fprintf(w, "one-day sample (%d sessions): %d of 513 candidates single-valued "+
			"(%d deviation-based, %d time-based); %d/28 final features survive\n",
			pp.SampleSessions, pp.SingleValued, pp.SingleValuedDeviation,
			pp.SingleValuedTimeBased, pp.Table8Recovered)
	}
}
