package experiments

import (
	"sort"
	"time"

	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/finegrained"
	"polygraph/internal/fingerprint"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// ---------------------------------------------------------------------
// Table 2 — time and storage requirements of fingerprinting tools (§3).
// ---------------------------------------------------------------------

// Table2Row compares one tool.
type Table2Row struct {
	Tool string
	// MeasuredCollect is the wall-clock cost of one collection against
	// the oracle in this reproduction — the relative ordering is the
	// reproducible claim; the paper's absolute times include network
	// and real-browser costs we cannot measure.
	MeasuredCollect time.Duration
	// StorageBytes is the serialized size of the underlying data
	// structure (the paper's storage column).
	StorageBytes int
	// PaperServiceTime / PaperStorage quote Table 2 for side-by-side
	// reporting.
	PaperServiceTime string
	PaperStorage     string
}

// Table2 measures collection cost and payload size for the three
// fine-grained tools and Browser Polygraph.
func Table2() []Table2Row {
	oracle := browser.NewOracle()
	profile := browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10}

	measure := func(f func()) time.Duration {
		const reps = 64
		f() // warm caches once, as a browser warms its JIT
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		return time.Since(start) / reps
	}

	rows := []Table2Row{}
	fg := []struct {
		c            finegrained.Collector
		serviceTime  string
		paperStorage string
	}{
		{finegrained.AmIUnique{}, "~1.5s", "~60KB"},
		{finegrained.FingerprintJS{}, "51ms", "~23KB"},
		{finegrained.ClientJS{}, "37ms", "~10KB"},
	}
	for _, t := range fg {
		var size int
		dur := measure(func() { size = finegrained.SizeBytes(t.c.Collect(oracle, profile)) })
		rows = append(rows, Table2Row{
			Tool:             t.c.Name(),
			MeasuredCollect:  dur,
			StorageBytes:     size,
			PaperServiceTime: t.serviceTime,
			PaperStorage:     t.paperStorage,
		})
	}

	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	var bpSize int
	dur := measure(func() {
		// A fresh extractor each repetition: Browser Polygraph's cost
		// is the 28 probes, not a cache hit.
		e := fingerprint.NewExtractor(oracle, ext.Features())
		v := e.Extract(profile)
		p := &fingerprint.Payload{
			UserAgent: ua.UserAgent(profile.Release, profile.OS),
			Values:    fingerprint.VectorToValues(v),
		}
		enc, err := p.MarshalBinary()
		if err != nil {
			panic(err)
		}
		bpSize = len(enc)
	})
	rows = append(rows, Table2Row{
		Tool:             "BROWSER POLYGRAPH",
		MeasuredCollect:  dur,
		StorageBytes:     bpSize,
		PaperServiceTime: "6ms",
		PaperStorage:     "1KB",
	})
	return rows
}

// ---------------------------------------------------------------------
// Table 3 / Table 9 — user-agents per cluster at k=11 and k=6.
// ---------------------------------------------------------------------

// Table3 returns the trained model's cluster table (the paper's Table 3).
func (e *Env) Table3() []core.ClusterRow { return e.Model.ClusterTable() }

// Table9 retrains at k=6 (Appendix-2's "less optimal choice") and returns
// its cluster table.
func (e *Env) Table9() ([]core.ClusterRow, error) {
	cfg := core.DefaultTrainConfig()
	cfg.K = 6
	cfg.Reference = core.ExtractorReference{Extractor: e.Traffic.Extractor, OS: ua.Windows10}
	m, _, err := core.Train(e.Traffic.Samples(), cfg)
	if err != nil {
		return nil, err
	}
	return m.ClusterTable(), nil
}

// ---------------------------------------------------------------------
// Table 4 — tag enrichment among flagged sessions (§7.1).
// ---------------------------------------------------------------------

// Table4Row is one category line of Table 4.
type Table4Row struct {
	Category  string
	Sessions  int
	IPPct     float64
	CookiePct float64
	ATOPct    float64
}

// Table4 computes the tag rates for all users, Browser Polygraph's
// flagged batches at increasing risk thresholds, and a random control of
// the same size as the flagged set.
func (e *Env) Table4() ([]Table4Row, error) {
	scored, err := e.scoreAll()
	if err != nil {
		return nil, err
	}
	rates := func(pred func(scoredSession) bool, name string) Table4Row {
		row := Table4Row{Category: name}
		var ip, cookie, ato int
		for _, s := range scored {
			if !pred(s) {
				continue
			}
			row.Sessions++
			if s.Tags.UntrustedIP {
				ip++
			}
			if s.Tags.UntrustedCookie {
				cookie++
			}
			if s.Tags.ATO {
				ato++
			}
		}
		if row.Sessions > 0 {
			row.IPPct = 100 * float64(ip) / float64(row.Sessions)
			row.CookiePct = 100 * float64(cookie) / float64(row.Sessions)
			row.ATOPct = 100 * float64(ato) / float64(row.Sessions)
		}
		return row
	}

	all := rates(func(scoredSession) bool { return true }, "All users")
	flagged := rates(func(s scoredSession) bool { return s.Result.Flagged() }, "Flagged by BROWSER POLYGRAPH (all)")
	rf1 := rates(func(s scoredSession) bool { return s.Result.Flagged() && s.Result.RiskFactor > 1 },
		"Flagged by BROWSER POLYGRAPH (risk factor > 1)")
	rf4 := rates(func(s scoredSession) bool { return s.Result.Flagged() && s.Result.RiskFactor > 4 },
		"Flagged by BROWSER POLYGRAPH (risk factor > 4)")

	// Random control of the same size as the flagged batch (§7.1's
	// "randomly selected 897 sessions").
	pick := map[int]bool{}
	gen := rng.New(e.Traffic.Config.Seed).Split("table4-random")
	for len(pick) < flagged.Sessions && len(pick) < len(scored) {
		pick[gen.Intn(len(scored))] = true
	}
	idx := 0
	random := rates(func(scoredSession) bool { idx++; return pick[idx-1] }, "Randomly-chosen")

	return []Table4Row{all, flagged, rf1, rf4, random}, nil
}

// FlaggedCount returns how many sessions the model flags across the full
// traffic — the paper's headline "897 suspicious sessions".
func (e *Env) FlaggedCount() (int, error) {
	scored, err := e.scoreAll()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, s := range scored {
		if s.Result.Flagged() {
			n++
		}
	}
	return n, nil
}

// ---------------------------------------------------------------------
// Table 7 — entropy of collected attributes (§7.4).
// ---------------------------------------------------------------------

// EntropyRow mirrors Table 7.
type EntropyRow struct {
	Feature    string
	Entropy    float64
	Normalized float64
}

// fingerprintKey renders a session vector as a comparable anonymity key.
func fingerprintKey(vec []float64) string {
	out := make([]byte, 0, len(vec)*3)
	for _, v := range vec {
		out = append(out, byte(int(v)>>8), byte(int(v)), ',')
	}
	return string(out)
}

// Table7 computes Shannon and normalized entropy for the user-agent and
// every model feature over the traffic, returning rows sorted by
// normalized entropy (descending), topN rows (0 = all).
func (e *Env) Table7(topN int) []EntropyRow {
	sessions := e.Traffic.Sessions
	feats := e.Model.Features

	rows := make([]EntropyRow, 0, len(feats)+1)
	uas := make([]string, len(sessions))
	for i, s := range sessions {
		uas[i] = s.UAString
	}
	rows = append(rows, EntropyRow{
		Feature:    "user-agent",
		Entropy:    entropyOf(uas),
		Normalized: normalizedEntropyOf(uas),
	})
	col := make([]int, len(sessions))
	for j, f := range feats {
		for i, s := range sessions {
			col[i] = int(s.Vector[j])
		}
		rows = append(rows, EntropyRow{
			Feature:    f.Name(),
			Entropy:    entropyOf(col),
			Normalized: normalizedEntropyOf(col),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Normalized != rows[j].Normalized {
			return rows[i].Normalized > rows[j].Normalized
		}
		return rows[i].Feature < rows[j].Feature
	})
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	return rows
}

// Figure5 returns the anonymity-set buckets of the full fingerprints.
type Figure5Result struct {
	Buckets      []AnonymityBucket
	UniqueRate   float64 // fraction of unique fingerprints (paper: 0.3%)
	LargeSetRate float64 // fraction in sets >50 (paper: 95.6%)
}

// AnonymityBucket re-exports the stats bucket for rendering.
type AnonymityBucket struct {
	Label   string
	Percent float64
	Count   int
}

// Figure5 computes the anonymity-set distribution of §7.4.
func (e *Env) Figure5() Figure5Result {
	keys := make([]string, len(e.Traffic.Sessions))
	for i, s := range e.Traffic.Sessions {
		keys[i] = fingerprintKey(s.Vector)
	}
	var res Figure5Result
	for _, b := range anonymitySets(keys) {
		res.Buckets = append(res.Buckets, AnonymityBucket{Label: b.Label, Percent: b.Percent, Count: b.Count})
	}
	res.UniqueRate = uniqueRate(keys)
	res.LargeSetRate = largeSetRate(keys, 50)
	return res
}

// ---------------------------------------------------------------------
// Drift dataset shared by Table 6.
// ---------------------------------------------------------------------

// DriftTraffic generates the late-July–October collection (§7.3).
func DriftTraffic(seed uint64) (*dataset.Dataset, error) {
	cfg := dataset.DefaultConfig()
	cfg.Window = dataset.DriftWindow
	cfg.MaxVersion = 119
	cfg.Sessions = 60000
	if seed != 0 {
		cfg.Seed = seed
	} else {
		cfg.Seed = 20231025
	}
	return dataset.Generate(cfg)
}
