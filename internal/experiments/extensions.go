package experiments

import (
	"fmt"

	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/drift"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// This file implements the paper's §8 discussion items as runnable
// experiments: the retraining loop the drift detector feeds, the
// stratified-sampling scaling strategy, and the user-agent-randomization
// false-positive analysis.

// RetrainResult records a full drift→retrain cycle.
type RetrainResult struct {
	// RetrainDate is when the calendar signaled drift.
	RetrainDate string
	// OldAccuracy is the deployed model's Formula 1 accuracy on the
	// drift-window traffic (including the new releases).
	OldAccuracy float64
	// NewAccuracy is the retrained model's training accuracy on the
	// combined corpus.
	NewAccuracy float64
	// Firefox119Recovered reports whether the retrained model assigns
	// Firefox 119 a stable cluster of its own table (i.e. its sessions
	// agree with its table entry again).
	Firefox119Recovered bool
}

// RetrainAfterDrift closes the loop §6.6 describes: when the calendar
// signals drift, retrain on the recent window and verify the new model
// accommodates the shifted release.
func (e *Env) RetrainAfterDrift() (*RetrainResult, error) {
	driftData, err := DriftTraffic(0)
	if err != nil {
		return nil, err
	}
	det := &drift.Detector{Model: e.Model}
	rep, err := det.RunCalendar(drift.Calendar2023(), driftSource{data: driftData})
	if err != nil {
		return nil, err
	}
	res := &RetrainResult{RetrainDate: rep.RetrainDate}
	if rep.RetrainDate == "" {
		return res, nil
	}

	// Old model's health on the drift window.
	res.OldAccuracy, err = e.Model.EvaluateAccuracy(driftData.Samples())
	if err != nil {
		return nil, err
	}

	// Retrain on the recent window (production would mix windows; the
	// drift window alone is the minimal demonstration).
	cfg := core.DefaultTrainConfig()
	cfg.Reference = core.ExtractorReference{Extractor: driftData.Extractor, OS: ua.Windows10}
	newModel, _, err := core.Train(driftData.Samples(), cfg)
	if err != nil {
		return nil, err
	}
	res.NewAccuracy = newModel.Accuracy

	// Firefox 119 must be consistent under the new model: its sessions
	// land in the cluster its table entry names.
	ff119 := ua.Release{Vendor: ua.Firefox, Version: 119}
	want, ok := newModel.UACluster[ff119]
	if ok {
		good, total := 0, 0
		for _, s := range driftData.SessionsForRelease(ff119) {
			c, err := newModel.PredictCluster(s.Vector)
			if err != nil {
				return nil, err
			}
			total++
			if c == want {
				good++
			}
		}
		res.Firefox119Recovered = total > 0 && float64(good)/float64(total) >= 0.98
	}
	return res, nil
}

// StratifiedResult compares full-corpus training with stratified-sample
// training (§8, "Scale of the database").
type StratifiedResult struct {
	FullRows, SampledRows         int
	FullAccuracy, SampledAccuracy float64
	// TableAgreement is the fraction of user-agents whose cluster
	// assignment matches between the two models, up to cluster
	// relabeling (measured by co-assignment agreement over UA pairs).
	TableAgreement float64
}

// StratifiedSampling trains on a per-UA-capped sample and checks the
// cluster structure survives.
func (e *Env) StratifiedSampling(perUACap int) (*StratifiedResult, error) {
	full := e.Traffic.Samples()
	sampled := dataset.StratifiedSample(full, perUACap, 99)
	cfg := core.DefaultTrainConfig()
	cfg.Reference = core.ExtractorReference{Extractor: e.Traffic.Extractor, OS: ua.Windows10}
	// The Isolation Forest contamination is a fraction; it transfers.
	m, _, err := core.Train(sampled, cfg)
	if err != nil {
		return nil, err
	}
	res := &StratifiedResult{
		FullRows:        len(full),
		SampledRows:     len(sampled),
		FullAccuracy:    e.Model.Accuracy,
		SampledAccuracy: m.Accuracy,
	}

	// Co-assignment agreement: for user-agent pairs known to both
	// models, do they agree on same-cluster vs different-cluster?
	shared := make([]ua.Release, 0, len(e.Model.UACluster))
	for rel := range e.Model.UACluster {
		if _, ok := m.UACluster[rel]; ok {
			shared = append(shared, rel)
		}
	}
	agree, total := 0, 0
	for i := 0; i < len(shared); i++ {
		for j := i + 1; j < len(shared); j++ {
			a, b := shared[i], shared[j]
			sameFull := e.Model.UACluster[a] == e.Model.UACluster[b]
			sameSampled := m.UACluster[a] == m.UACluster[b]
			total++
			if sameFull == sameSampled {
				agree++
			}
		}
	}
	if total > 0 {
		res.TableAgreement = float64(agree) / float64(total)
	}
	return res, nil
}

// UARandomizationResult measures §8's warning about user-agent
// randomization: honest browsers that randomize their user-agent light
// up as false positives.
type UARandomizationResult struct {
	Sessions     int
	FlaggedPlain int // flagged among unmodified honest sessions
	FlaggedRand  int // flagged after randomizing their claimed UA
}

// UARandomization rescoring experiment: take honest sessions, replace
// the claimed user-agent with a random release, and count flags.
func (e *Env) UARandomization(n int) (*UARandomizationResult, error) {
	if n <= 0 || n > len(e.Traffic.Sessions) {
		n = len(e.Traffic.Sessions)
	}
	gen := rng.New(4242)
	universe := ua.Universe(114)
	res := &UARandomizationResult{}
	for _, s := range e.Traffic.Sessions[:n] {
		if s.Fraud {
			continue
		}
		res.Sessions++
		plain, err := e.Model.Score(s.Vector, s.Claimed)
		if err != nil {
			return nil, err
		}
		if plain.Flagged() {
			res.FlaggedPlain++
		}
		randomUA := universe[gen.Intn(len(universe))]
		randomized, err := e.Model.Score(s.Vector, randomUA)
		if err != nil {
			return nil, err
		}
		if randomized.Flagged() {
			res.FlaggedRand++
		}
	}
	return res, nil
}

// RenderExtensions prints the §8 experiment results.
func RenderExtensions(wr interface{ Write(p []byte) (int, error) }, rr *RetrainResult, sr *StratifiedResult, ur *UARandomizationResult) {
	fmt.Fprintf(wr, "\nExtensions (paper §8)\n---------------------\n")
	if rr != nil {
		fmt.Fprintf(wr, "retrain-after-drift: signal %s, old acc %.2f%%, retrained acc %.2f%%, Firefox 119 recovered: %v\n",
			rr.RetrainDate, 100*rr.OldAccuracy, 100*rr.NewAccuracy, rr.Firefox119Recovered)
	}
	if sr != nil {
		fmt.Fprintf(wr, "stratified sampling: %d → %d rows, acc %.2f%% → %.2f%%, table agreement %.2f%%\n",
			sr.FullRows, sr.SampledRows, 100*sr.FullAccuracy, 100*sr.SampledAccuracy, 100*sr.TableAgreement)
	}
	if ur != nil {
		fmt.Fprintf(wr, "UA randomization: %d honest sessions, %d flagged plain vs %d flagged randomized\n",
			ur.Sessions, ur.FlaggedPlain, ur.FlaggedRand)
	}
}

// RenderNoveltyGuard prints the guard analysis.
func RenderNoveltyGuard(wr interface{ Write(p []byte) (int, error) }, ng *NoveltyGuardResult) {
	if ng == nil {
		return
	}
	fmt.Fprintf(wr, "novelty guard (cluster-consistent alien surfaces, by perturbation severity):\n")
	for _, row := range ng.Severities {
		fmt.Fprintf(wr, "  severity %-3d attempts %-3d caught without guard %-3d with guard %-3d\n",
			row.Severity, row.Attempts, row.CaughtWithoutGuard, row.CaughtWithGuard)
	}
	fmt.Fprintf(wr, "  honest flags added by guard: %d\n", ng.HonestFlagsAdded)
}

// NoveltyGuardResult measures this reproduction's novelty-guard
// extension against graded alien surfaces: spoofing engines whose
// fingerprints deviate from a genuine release by increasing amounts, each
// probe claiming a user-agent from its own landing cluster — the pure
// cluster check's blind spot. Severity 0 is an honest control.
type NoveltyGuardResult struct {
	Severities []NoveltySeverityRow
	// HonestFlagsAdded counts additional honest-session flags the guard
	// introduces over the whole traffic (should be ~0).
	HonestFlagsAdded int
}

// NoveltySeverityRow reports one perturbation grade.
type NoveltySeverityRow struct {
	// Severity is the per-prototype perturbation magnitude (raw counts).
	Severity int
	Attempts int
	// CaughtWithoutGuard / CaughtWithGuard count flags under each model.
	CaughtWithoutGuard int
	CaughtWithGuard    int
}

// gradedQuirk perturbs every deviation-feature prototype by ±severity,
// deterministically per probe index — a synthetic spoofing engine whose
// distance from any genuine surface is controlled.
type gradedQuirk struct {
	severity int
	seed     string
}

func (q *gradedQuirk) Name() string { return "graded-quirk" }

func (q *gradedQuirk) AdjustCount(proto string, count int) int {
	if q.severity == 0 {
		return count
	}
	g := rng.NewString(q.seed + ":" + proto)
	delta := g.IntRange(-q.severity, q.severity)
	count += delta
	if count < 0 {
		count = 0
	}
	return count
}

func (q *gradedQuirk) AdjustBool(proto, prop string, val bool) bool { return val }

// NoveltyGuard trains a guard-enabled twin of the environment's model and
// probes it with graded alien surfaces claiming their own landing
// cluster's user-agents.
func (e *Env) NoveltyGuard() (*NoveltyGuardResult, error) {
	cfg := core.DefaultTrainConfig()
	cfg.NoveltyGuard = true
	cfg.Reference = core.ExtractorReference{Extractor: e.Traffic.Extractor, OS: ua.Windows10}
	guarded, _, err := core.Train(e.Traffic.Samples(), cfg)
	if err != nil {
		return nil, err
	}

	bases := []ua.Release{
		{Vendor: ua.Chrome, Version: 112}, {Vendor: ua.Chrome, Version: 95},
		{Vendor: ua.Firefox, Version: 110}, {Vendor: ua.Edge, Version: 105},
	}
	res := &NoveltyGuardResult{}
	gen := rng.New(31337)
	for _, severity := range []int{0, 8, 20, 40} {
		row := NoveltySeverityRow{Severity: severity}
		for pi := 0; pi < 24; pi++ {
			base := bases[pi%len(bases)]
			profile := browser.Profile{Release: base, OS: ua.Windows10}
			if severity > 0 {
				profile.Mods = []browser.Modifier{
					&gradedQuirk{severity: severity, seed: fmt.Sprintf("ng:%d:%d", severity, pi)},
				}
			}
			vec := e.Traffic.Extractor.Extract(profile)
			cluster, err := e.Model.PredictCluster(vec)
			if err != nil {
				return nil, err
			}
			members := e.Model.ClusterUAs[cluster]
			if len(members) == 0 {
				continue // landed in a noise cluster: caught either way
			}
			claim := members[gen.Intn(len(members))]
			row.Attempts++
			plain, err := e.Model.Score(vec, claim)
			if err != nil {
				return nil, err
			}
			if plain.Flagged() {
				row.CaughtWithoutGuard++
			}
			withGuard, err := guarded.Score(vec, claim)
			if err != nil {
				return nil, err
			}
			if withGuard.Flagged() {
				row.CaughtWithGuard++
			}
		}
		res.Severities = append(res.Severities, row)
	}

	// Honest-traffic cost of the guard.
	for _, s := range e.Traffic.Sessions {
		if s.Fraud {
			continue
		}
		a, err := e.Model.Score(s.Vector, s.Claimed)
		if err != nil {
			return nil, err
		}
		b, err := guarded.Score(s.Vector, s.Claimed)
		if err != nil {
			return nil, err
		}
		if b.Flagged() && !a.Flagged() {
			res.HonestFlagsAdded++
		}
	}
	return res, nil
}
