package experiments

import (
	"fmt"

	"polygraph/internal/browser"
	"polygraph/internal/finegrained"
	"polygraph/internal/fingerprint"
	"polygraph/internal/matrix"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// ---------------------------------------------------------------------
// Appendix-5 — clustering comparison on synthetic BrowserStack data
// (Tables 13 and 14).
// ---------------------------------------------------------------------

// Table13Row compares one technique's clustering performance.
type Table13Row struct {
	Technique string
	Rows      int
	Features  int
	PCA       int
	K         int
	Accuracy  float64
}

// browserStackSet emulates a BrowserStack sweep: Chrome/Edge/Firefox
// releases across the given OSes, several instances per combination
// (separate launches share a release's surface, mirroring the ~400-row
// datasets of Appendix-5).
func browserStackSet(oses []ua.OS, seed uint64, target int) []browser.Profile {
	gen := rng.New(seed)
	var releases []ua.Release
	for v := 90; v <= 119; v++ {
		releases = append(releases,
			ua.Release{Vendor: ua.Chrome, Version: v},
			ua.Release{Vendor: ua.Edge, Version: v},
			ua.Release{Vendor: ua.Firefox, Version: v})
	}
	var out []browser.Profile
	for len(out) < target {
		r := releases[gen.Intn(len(releases))]
		os := oses[gen.Intn(len(oses))]
		out = append(out, browser.Profile{Release: r, OS: os})
	}
	return out
}

// AppendixFive runs the full comparison on one OS family. windows=true
// reproduces Table 13 (Windows 10/11), false Table 14 (macOS
// Sequoia/Sonoma).
func AppendixFive(windows bool) ([]Table13Row, error) {
	// The OS mix mirrors a realistic BrowserStack sweep: the newest OS
	// image is a small minority. The minority share bounds how much the
	// feature-poor ClientJS loses to its OS-keyed columns (paper: 93.60%
	// on Windows, 85.93% on macOS).
	var oses []ua.OS
	var seed uint64
	if windows {
		for i := 0; i < 15; i++ {
			oses = append(oses, ua.Windows10)
		}
		oses = append(oses, ua.Windows11)
		seed = 13
	} else {
		for i := 0; i < 6; i++ {
			oses = append(oses, ua.MacOSSonoma)
		}
		oses = append(oses, ua.MacOSSequoia)
		seed = 14
	}
	oracle := browser.NewOracle()

	var rows []Table13Row

	// Browser Polygraph: the 28 coarse-grained features.
	bpProfiles := browserStackSet(oses, seed, 430)
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	bpMatrix := ext.Matrix(bpProfiles)
	bpLabels := labelsOf(bpProfiles)
	bpRes, err := clusterBench(bpMatrix, bpLabels, clusterBenchConfig{
		Seed: seed, SkipScale: fingerprint.SkipScaleMask(fingerprint.Table8()),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: appendix-5 BP: %w", err)
	}
	rows = append(rows, Table13Row{
		Technique: "BROWSER POLYGRAPH", Rows: bpRes.Rows, Features: bpRes.Features,
		PCA: bpRes.PCA, K: bpRes.K, Accuracy: bpRes.Accuracy,
	})

	// Fine-grained tools: collect → flatten → encode → cluster.
	for _, tool := range []struct {
		collector finegrained.Collector
		target    int
		dropUA    bool
	}{
		{finegrained.FingerprintJS{}, 382, true},
		{finegrained.ClientJS{}, 391, true},
	} {
		profiles := browserStackSet(oses, seed+uint64(tool.target), tool.target)
		flat := make([]map[string]any, len(profiles))
		for i, p := range profiles {
			flat[i] = finegrained.Flatten(tool.collector.Collect(oracle, p))
		}
		enc, err := finegrained.Encode(flat, finegrained.EncodeOptions{
			DropConstant:  true,
			DropUAColumns: tool.dropUA,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: appendix-5 %s: %w", tool.collector.Name(), err)
		}
		res, err := clusterBench(enc.Matrix, labelsOf(profiles), clusterBenchConfig{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: appendix-5 %s cluster: %w", tool.collector.Name(), err)
		}
		rows = append(rows, Table13Row{
			Technique: tool.collector.Name(), Rows: res.Rows, Features: res.Features,
			PCA: res.PCA, K: res.K, Accuracy: res.Accuracy,
		})
	}
	return rows, nil
}

func labelsOf(profiles []browser.Profile) []ua.Release {
	out := make([]ua.Release, len(profiles))
	for i, p := range profiles {
		out[i] = p.Release
	}
	return out
}

// ---------------------------------------------------------------------
// Figures 2–4 — PCA variance, elbow, relative WCSS.
// ---------------------------------------------------------------------

// FigurePoint is one (x, y) sample of a figure series.
type FigurePoint struct {
	X int
	Y float64
}

// Figure2 returns the cumulative explained variance per PCA component
// count over the training data (the paper keeps 7 at ≥98.5%).
func (e *Env) Figure2() []FigurePoint {
	cum := e.Report.CumulativeVariance
	out := make([]FigurePoint, len(cum))
	for i, c := range cum {
		out[i] = FigurePoint{X: i + 1, Y: c}
	}
	return out
}

// Figure3 computes the elbow curve (WCSS vs k) over the PCA-projected
// training data, k ∈ [1, kMax].
func (e *Env) Figure3(kMax int) ([]FigurePoint, error) {
	if kMax < 2 {
		kMax = 20
	}
	projected, err := e.projectedTrainingData()
	if err != nil {
		return nil, err
	}
	curve, err := elbowOn(projected, 1, kMax)
	if err != nil {
		return nil, err
	}
	out := make([]FigurePoint, len(curve))
	for i, p := range curve {
		out[i] = FigurePoint{X: p.K, Y: p.WCSS}
	}
	return out, nil
}

// Figure4 computes the relative WCSS drop per k (the series whose spike
// selects k=11 in the paper).
func (e *Env) Figure4(kMax int) ([]FigurePoint, error) {
	curve, err := e.Figure3(kMax)
	if err != nil {
		return nil, err
	}
	out := make([]FigurePoint, 0, len(curve)-1)
	for i := 1; i < len(curve); i++ {
		drop := 0.0
		if curve[i-1].Y > 0 {
			drop = (curve[i-1].Y - curve[i].Y) / curve[i-1].Y
		}
		out = append(out, FigurePoint{X: curve[i].X, Y: drop})
	}
	return out, nil
}

// projectedTrainingData rebuilds the scaled+projected design matrix the
// model clusters in (sub-sampled for the elbow sweep, which refits
// k-means ~20 times).
func (e *Env) projectedTrainingData() (*matrix.Dense, error) {
	sessions := e.Traffic.Sessions
	stride := 1
	const maxRows = 20000
	if len(sessions) > maxRows {
		stride = len(sessions) / maxRows
	}
	var rows [][]float64
	for i := 0; i < len(sessions); i += stride {
		scaled, err := e.Model.Scaler.TransformVec(sessions[i].Vector)
		if err != nil {
			return nil, err
		}
		if e.Model.PCA != nil {
			proj, err := e.Model.PCA.TransformVec(scaled)
			if err != nil {
				return nil, err
			}
			rows = append(rows, proj)
		} else {
			rows = append(rows, scaled)
		}
	}
	return matrix.FromRows(rows), nil
}
