package experiments

import (
	"fmt"
	"io"
	"math"

	"polygraph/internal/ua"
)

// The scorecard turns DESIGN.md's headline-shape expectations into
// machine-checked claims: `reproduce -scorecard` passes only when every
// qualitative result of the paper reproduces on this run's data.

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Claim is one checked expectation.
type Claim struct {
	Name   string
	Pass   bool
	Detail string
}

// Scorecard evaluates every headline claim against the environment.
func (e *Env) Scorecard() ([]Claim, error) {
	var claims []Claim
	add := func(name string, pass bool, format string, args ...any) {
		claims = append(claims, Claim{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	// Training headline.
	add("training accuracy ≈ 99.6%", e.Model.Accuracy >= 0.985,
		"measured %.2f%%", 100*e.Model.Accuracy)

	// Table 2 shapes.
	t2 := Table2()
	byTool := map[string]Table2Row{}
	for _, r := range t2 {
		byTool[r.Tool] = r
	}
	bp, fpjs, cjs, ami := byTool["BROWSER POLYGRAPH"], byTool["FingerprintJS"], byTool["ClientJS"], byTool["AmIUnique"]
	add("payload ≤ 1KB and ≥10x under FingerprintJS",
		bp.StorageBytes <= 1024 && fpjs.StorageBytes >= 10*bp.StorageBytes,
		"BP %dB vs FPJS %dB", bp.StorageBytes, fpjs.StorageBytes)
	// The paper's §3 claim is "rapid response times akin to
	// FingerprintJS and ClientJS" with AmIUnique far behind: BP must be
	// in the fast tier (within 2× of the fastest fine-grained tool) and
	// the heavyweight ordering must hold. Strict BP-beats-ClientJS
	// ordering is a wall-clock race below 20µs and would flake under
	// load.
	fastest := cjs.MeasuredCollect
	if fpjs.MeasuredCollect < fastest {
		fastest = fpjs.MeasuredCollect
	}
	add("collection cost: AmIUnique ≫ FPJS > {ClientJS, BP fast tier}",
		ami.MeasuredCollect > fpjs.MeasuredCollect &&
			fpjs.MeasuredCollect > cjs.MeasuredCollect &&
			fpjs.MeasuredCollect > bp.MeasuredCollect &&
			bp.MeasuredCollect <= 2*fastest,
		"%v > %v > %v; BP %v", ami.MeasuredCollect, fpjs.MeasuredCollect, cjs.MeasuredCollect, bp.MeasuredCollect)

	// Table 3 pairings.
	rel := func(v ua.Vendor, ver int) ua.Release { return ua.Release{Vendor: v, Version: ver} }
	type pair struct {
		a, b ua.Release
		same bool
	}
	pairs := []pair{
		{rel(ua.Chrome, 110), rel(ua.Edge, 113), true},
		{rel(ua.Firefox, 101), rel(ua.Firefox, 114), true},
		{rel(ua.Chrome, 60), rel(ua.Firefox, 80), true},
		{rel(ua.Chrome, 114), rel(ua.Edge, 114), true},
		{rel(ua.Chrome, 105), rel(ua.Edge, 105), true},
		{rel(ua.Chrome, 95), rel(ua.Edge, 95), true},
		{rel(ua.Chrome, 114), rel(ua.Chrome, 113), false},
		{rel(ua.Firefox, 95), rel(ua.Chrome, 95), false},
		{rel(ua.Firefox, 110), rel(ua.Chrome, 110), false},
		{rel(ua.Chrome, 109), rel(ua.Chrome, 110), false},
	}
	good, checked := 0, 0
	for _, p := range pairs {
		ca, okA := e.Model.UACluster[p.a]
		cb, okB := e.Model.UACluster[p.b]
		if !okA || !okB {
			continue
		}
		checked++
		if (ca == cb) == p.same {
			good++
		}
	}
	add("Table 3 cluster pairings", checked >= 8 && good == checked,
		"%d/%d observable pairings correct", good, checked)

	// Table 4 gradient.
	t4, err := e.Table4()
	if err != nil {
		return nil, err
	}
	all, flagged, rf1, rf4, random := t4[0], t4[1], t4[2], t4[3], t4[4]
	add("Table 4 tag enrichment gradient",
		flagged.IPPct > all.IPPct+10 && rf1.IPPct >= flagged.IPPct-3 &&
			flagged.ATOPct >= 2*all.ATOPct && rf4.ATOPct >= flagged.ATOPct,
		"IP %.1f→%.1f→%.1f, ATO %.2f→%.2f→%.2f",
		all.IPPct, flagged.IPPct, rf4.IPPct, all.ATOPct, flagged.ATOPct, rf4.ATOPct)
	// Tolerance scales with the control's size: 4 binomial standard
	// errors, floored at ±8 points.
	tol := 8.0
	if random.Sessions > 0 {
		p := all.IPPct / 100
		if se := 400 * sqrt(p*(1-p)/float64(random.Sessions)); se > tol {
			tol = se
		}
	}
	add("random control ≈ base rates",
		random.IPPct > all.IPPct-tol && random.IPPct < all.IPPct+tol,
		"random IP %.1f vs base %.1f (±%.1f)", random.IPPct, all.IPPct, tol)
	rate := float64(flagged.Sessions) / float64(all.Sessions)
	add("flagged volume ≈ paper's 0.44%", rate > 0.002 && rate < 0.009,
		"%.3f%% (%d sessions)", 100*rate, flagged.Sessions)

	// Table 5 recall regime.
	t5, err := e.Table5()
	if err != nil {
		return nil, err
	}
	t5ok := len(t5) == 4
	detail := ""
	for _, r := range t5 {
		// Paper band: recall 67-84%, avg risk 8.9-11.7. The avg-risk
		// floor of 6 keeps the claim seed-robust while staying far
		// above benign flagged sessions' risk (0-2).
		if r.Recall < 0.6 || r.Recall > 0.9 || (r.Flagged > 0 && r.AvgRisk < 6) {
			t5ok = false
		}
		detail += fmt.Sprintf("%s %.0f%%/%.1f ", r.Browser, 100*r.Recall, r.AvgRisk)
	}
	add("Table 5 recall 60-90% with high risk factors", t5ok, "%s", detail)

	// Table 6 drift timing.
	t6, err := e.Table6()
	if err != nil {
		return nil, err
	}
	stableOK := true
	ff119Moved := false
	for _, ev := range t6.Evaluations {
		if ev.Release.Version <= 118 && ev.Retrain {
			stableOK = false
		}
		if ev.Release == rel(ua.Firefox, 119) && ev.Retrain {
			ff119Moved = true
		}
	}
	add("drift: stable through release 118, retrain on 10/31 via Firefox 119",
		stableOK && ff119Moved && t6.RetrainDate == "10/31",
		"retrain date %s", t6.RetrainDate)

	// Table 7 / privacy.
	t7 := e.Table7(0)
	add("user-agent is the most identifying attribute",
		t7[0].Feature == "user-agent",
		"top: %s (%.3f)", t7[0].Feature, t7[0].Normalized)
	f5 := e.Figure5()
	add("≪1% unique fingerprints, most in sets >50",
		f5.UniqueRate < 0.01 && f5.LargeSetRate > 0.85,
		"unique %.2f%%, >50 %.2f%%", 100*f5.UniqueRate, 100*f5.LargeSetRate)

	// Figure 2.
	f2 := e.Figure2()
	add("7 PCA components capture ≥98.5% variance", f2[6].Y >= 0.985,
		"measured %.2f%%", 100*f2[6].Y)

	// Figure 4.
	f4, err := e.Figure4(16)
	if err != nil {
		return nil, err
	}
	bestK, bestY := 0, -1.0
	for _, p := range f4 {
		if p.X >= 7 && p.Y > bestY {
			bestY = p.Y
			bestK = p.X
		}
	}
	add("relative-WCSS spike in the k≈11 region", bestK >= 8 && bestK <= 13,
		"peak at k=%d", bestK)

	return claims, nil
}

// RenderScorecard prints the claims; it returns false if any failed.
func RenderScorecard(w io.Writer, claims []Claim) bool {
	header(w, "Reproduction scorecard")
	allPass := true
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			allPass = false
		}
		fmt.Fprintf(w, "[%s] %-55s %s\n", status, c.Name, c.Detail)
	}
	if allPass {
		fmt.Fprintf(w, "all %d claims hold\n", len(claims))
	}
	return allPass
}
