package browser

import (
	"fmt"
	"strings"

	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// TimeBasedFeature is a presence/absence probe on a prototype, the
// feature family BrowserPrint introduced and the paper reused as
// "time-based" candidates (§6.1).
type TimeBasedFeature struct {
	Proto string
	Prop  string
}

// Name renders the probe as the paper writes it, e.g.
// "Navigator.prototype.hasOwnProperty('deviceMemory')".
func (f TimeBasedFeature) Name() string {
	return fmt.Sprintf("%s.prototype.hasOwnProperty('%s')", f.Proto, f.Prop)
}

// curatedTimeBased models the six time-based features that survived the
// paper's pre-processing (Table 8 Num 23–28). Their timelines are the
// reproduction's stand-ins for the real platform history: each one flips
// inside the modeled version range or differs across engines, giving the
// clustering genuine signal.
var curatedTimeBased = map[string]func(ua.Release) bool{
	// Chromium-only device memory API, added in Chrome 63.
	"Navigator.deviceMemory": func(r ua.Release) bool {
		return EngineOf(r) == Blink && chromiumVersion(r) >= 63
	},
	// BaseAudioContext refactor: Blink ≥ 66, Gecko ≥ 53.
	"BaseAudioContext.currentTime": func(r ua.Release) bool {
		switch EngineOf(r) {
		case Blink:
			return chromiumVersion(r) >= 66
		case Gecko:
			return r.Version >= 53
		default:
			return false
		}
	},
	// WebKit legacy fullscreen getter, Chromium lineage only.
	"HTMLVideoElement.webkitDisplayingFullscreen": func(r ua.Release) bool {
		return EngineOf(r) == Blink
	},
	// Screen orientation landed at different times per engine.
	"Screen.orientation": func(r ua.Release) bool {
		switch EngineOf(r) {
		case Blink:
			return chromiumVersion(r) >= 69
		case Gecko:
			return r.Version >= 48
		default:
			return false
		}
	},
	// speechSynthesis as a Window prototype property: Blink ≥ 66 and
	// EdgeHTML; Gecko exposes it as an own property instead.
	"Window.speechSynthesis": func(r ua.Release) bool {
		switch EngineOf(r) {
		case Blink:
			return chromiumVersion(r) >= 66
		case EdgeHTML:
			return true
		default:
			return false
		}
	},
	// getPropertyValue has always been on the prototype in Blink/Gecko;
	// EdgeHTML hoisted it onto instances.
	"CSSStyleDeclaration.getPropertyValue": func(r ua.Release) bool {
		return EngineOf(r) != EdgeHTML
	},
}

// chromiumVersion maps a Blink release to its Chromium major version
// (Edge ≥ 79 tracks Chrome's version number).
func chromiumVersion(r ua.Release) int { return r.Version }

// CuratedTimeBased returns the six Table 8 time-based features in
// publication order.
func CuratedTimeBased() []TimeBasedFeature {
	return []TimeBasedFeature{
		{"Navigator", "deviceMemory"},
		{"BaseAudioContext", "currentTime"},
		{"HTMLVideoElement", "webkitDisplayingFullscreen"},
		{"Screen", "orientation"},
		{"Window", "speechSynthesis"},
		{"CSSStyleDeclaration", "getPropertyValue"},
	}
}

// syntheticTimePropPrefix marks generated BrowserPrint-style candidate
// properties.
const syntheticTimePropPrefix = "bpFeature"

func isSyntheticTimeProp(prop string) bool {
	return strings.HasPrefix(prop, syntheticTimePropPrefix)
}

// syntheticTimeHas evaluates a generated candidate. The distribution
// mirrors what the paper found when it revisited BrowserPrint's 313
// features against mid-2022+ browsers (§6.3): most had stopped changing
// (always present or never present in the modeled window), and a small
// tail flips at an era boundary, adding no information beyond the
// deviation features.
func syntheticTimeHas(r ua.Release, proto, prop string) bool {
	gen := rng.NewString("tb:" + proto + "." + prop)
	class := gen.Float64()
	era, ok := EraOf(r)
	if !ok {
		return false
	}
	switch {
	case class < 0.50: // long-established property: always present
		return true
	case class < 0.90: // removed or never-shipped: always absent
		return false
	default: // flips at a hash-derived level threshold
		threshold := 1 + gen.Float64()*8
		if gen.Bool(0.3) && EngineOf(r) == Gecko {
			return false // Chromium-only stragglers
		}
		return era.Level >= threshold
	}
}

// BrowserPrintCandidates generates the 313 time-based candidate features
// carried into Real-World Data Collection: the six curated Table 8 probes
// plus 307 synthetic probes spread across the registry.
func BrowserPrintCandidates() []TimeBasedFeature {
	out := make([]TimeBasedFeature, 0, 313)
	out = append(out, CuratedTimeBased()...)
	protos := Registry()
	for i := 0; len(out) < 313; i++ {
		out = append(out, TimeBasedFeature{
			Proto: protos[i%len(protos)],
			Prop:  fmt.Sprintf("%s%03d", syntheticTimePropPrefix, i),
		})
	}
	return out
}
