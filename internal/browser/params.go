package browser

// Tunable constants of the oracle's fingerprint geometry. They are
// collected here because the reproduction calibrates them empirically
// until the trained model reproduces the paper's Table 3 cluster
// structure; see EXPERIMENTS.md for the calibration notes.
const (
	// flatChance is the probability (per non-hand-tuned Appendix-3
	// prototype) that the interface's property count never changes
	// across releases. Near zero by construction: the published list was
	// the top-200 by deviation over the full browser grid (§6.1). The
	// ~30% single-valued deviation candidates the paper saw in traffic
	// (§6.3) arise differently: production traffic concentrates on a few
	// modern eras, where slow-growing features don't move.
	flatChance = 0.05

	// growthMin/growthMax bound the per-level property growth of
	// non-flat hash-derived Appendix-3 prototypes; extra* apply to the
	// rest of the registry, which evolves less (the published list was
	// selected for deviation, §6.1).
	growthMin = 0.4
	growthMax = 4.0

	// Non-Appendix-3 interfaces grow proportionally to their size, and
	// slowly: their relative deviation stays below every published
	// candidate's (the paper's selected features bottom out at a
	// normalized std of 0.0012, i.e. the top-200 cut was permissive).
	extraFlatChance   = 0.55
	extraGrowthRelMin = 0.002
	extraGrowthRelMax = 0.012

	// baseMin/baseMax bound the era-zero property count of hash-derived
	// prototypes.
	baseMin = 6
	baseMax = 46

	// engineJitterAmp is the amplitude (in level units) of the fixed
	// per-(prototype, engine) offset that differentiates engines at
	// similar platform levels. Old engines were genuinely similar, so
	// the offset is scaled down below lowLevelCutoff.
	engineJitterAmp     = 0.70
	lowLevelCutoff      = 2.5
	lowLevelJitterScale = 0.12

	// eraJitterLevelAmp is the amplitude (in level units) of the
	// per-(prototype, engine, era) signature offset. It gives each era a
	// distinctive direction in feature space on top of its scalar level,
	// which is what keeps low-population eras (e.g. Firefox 92-100) from
	// being absorbed by a nearby high-population era of another engine.
	// Like the engine jitter it shrinks at low platform levels so the
	// paper's merged old-browser clusters stay merged.
	eraJitterLevelAmp = 0.22

	// versionBumpChance is the probability that a specific (prototype,
	// vendor, version) carries a one-property bump relative to its era
	// baseline — adjacent versions differ slightly but stay clustered.
	versionBumpChance = 0.03

	// geckoAbsentChance is the probability a hash-derived prototype is
	// Chromium-only (count 0 under Gecko) — mirrors the real platform's
	// vendor-specific APIs (Presentation, Sensor, ...).
	geckoAbsentChance = 0.18

	// introLevelMax bounds hash-derived interface introduction levels:
	// interfaces appear somewhere on the evolution axis and count 0
	// before it.
	introLevelMax = 4.0
)

// firefox119ElementShift models the paper's observed driver of drift
// (§7.3): "Firefox 119 confirmed substantial changes in the Element
// prototype's implementation compared to its predecessor". The shifted
// prototypes adopt values near the Blink mid-era surface, which is why
// the drift analysis sees Firefox 119 land in the Chrome 90–101 cluster
// (cluster 10 in Table 3/6).
// The rework touches the whole Element/DOM family — enough of the
// 22-feature surface that the release's nearest centroid flips from the
// Firefox-modern cluster to the Blink mid-era cluster, as Table 6 records
// (Firefox 119 → cluster 10).
var firefox119ElementShift = map[string]bool{
	"Element":                  true,
	"Document":                 true,
	"HTMLElement":              true,
	"SVGElement":               true,
	"SVGFEBlendElement":        true,
	"Range":                    true,
	"StaticRange":              true,
	"TextMetrics":              true,
	"HTMLVideoElement":         true,
	"ShadowRoot":               true,
	"PointerEvent":             true,
	"CanvasRenderingContext2D": true,
	"CSSStyleSheet":            true,
	"HTMLLinkElement":          true,
	"HTMLMediaElement":         true,
	"CSSRule":                  true,
}
