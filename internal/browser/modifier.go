package browser

import (
	"strings"

	"polygraph/internal/ua"
)

// Modifier perturbs the API surface a profile reports, modeling the
// real-world effects the paper had to account for during pre-processing
// (§6.3): Firefox about:config toggles, Chrome extensions, derivative
// browsers (Brave, Tor), and staged feature rollouts.
//
// Modifiers adjust values *after* the oracle computes the engine's
// truth; they never change which engine answers.
type Modifier interface {
	// Name identifies the modifier in logs and dataset metadata.
	Name() string
	// AdjustCount maps a prototype's reported property count.
	AdjustCount(proto string, count int) int
	// AdjustBool maps a reported hasOwnProperty result.
	AdjustBool(proto, prop string, val bool) bool
}

// deltaModifier implements Modifier via a per-prototype count delta
// table. Missing prototypes pass through. Results floor at zero.
type deltaModifier struct {
	name   string
	deltas map[string]int
	// zeroPrefixes zero any prototype whose name starts with one of
	// these (the ServiceWorker-family wipe).
	zeroPrefixes []string
	boolOverride map[string]bool // "Proto.prop" -> forced value
}

func (m *deltaModifier) Name() string { return m.name }

func (m *deltaModifier) AdjustCount(proto string, count int) int {
	for _, p := range m.zeroPrefixes {
		if strings.HasPrefix(proto, p) {
			return 0
		}
	}
	if d, ok := m.deltas[proto]; ok {
		count += d
		if count < 0 {
			count = 0
		}
	}
	return count
}

func (m *deltaModifier) AdjustBool(proto, prop string, val bool) bool {
	if v, ok := m.boolOverride[proto+"."+prop]; ok {
		return v
	}
	return val
}

// FirefoxServiceWorkersDisabled models dom.serviceWorkers.enabled=false:
// all ServiceWorker-interface values zero out (§6.3).
func FirefoxServiceWorkersDisabled() Modifier {
	return &deltaModifier{
		name:         "firefox-serviceworkers-disabled",
		zeroPrefixes: []string{"ServiceWorker"},
	}
}

// FirefoxTransformGetters models dom.element.transform-getters.enabled:
// extra getters surface on Element (§6.3).
func FirefoxTransformGetters() Modifier {
	return &deltaModifier{
		name:   "firefox-transform-getters",
		deltas: map[string]int{"Element": 3},
	}
}

// ChromeExtensionDuckDuckGo models the DuckDuckGo extension, which "adds
// two custom properties to the Element interface" (§6.3).
func ChromeExtensionDuckDuckGo() Modifier {
	return &deltaModifier{
		name:   "chrome-ext-duckduckgo",
		deltas: map[string]int{"Element": 2},
	}
}

// ChromeExtensionGeneric models an arbitrary content-script extension
// that decorates Element/Document with n helper properties.
func ChromeExtensionGeneric(n int) Modifier {
	if n < 1 {
		n = 1
	}
	return &deltaModifier{
		name:   "chrome-ext-generic",
		deltas: map[string]int{"Element": n, "Document": 1},
	}
}

// BraveShift models Brave's shielded surface: a Chrome user-agent with
// "discernible discrepancies in attribute values across certain
// interfaces, such as Element, compared to the genuine Chrome" (§6.3).
func BraveShift() Modifier {
	return &deltaModifier{
		name: "brave",
		deltas: map[string]int{
			"Element":                  -7,
			"Document":                 -3,
			"Navigator":                -2,
			"AudioContext":             -2,
			"CanvasRenderingContext2D": -2,
			"WebGLRenderingContext":    -4,
		},
		boolOverride: map[string]bool{
			"Navigator.deviceMemory": false, // Brave blinds hardware hints
		},
	}
}

// TorShift models the Tor Browser: a Firefox ESR user-agent whose
// "attribute values significantly deviated from those of the original
// Firefox" (§6.3). Tor disables many surfaces outright.
func TorShift() Modifier {
	return &deltaModifier{
		name: "tor",
		deltas: map[string]int{
			"Element":                  -12,
			"Navigator":                -5,
			"WebGLRenderingContext":    -40,
			"WebGL2RenderingContext":   -60,
			"CanvasRenderingContext2D": -9,
			"AudioContext":             -4,
			"Document":                 -6,
		},
		zeroPrefixes: []string{"ServiceWorker", "Presentation", "Sensor"},
	}
}

// Profile is a concrete browser instance: the engine release actually
// running, the host OS, and any surface modifiers. The user-agent a
// session *claims* is a property of the session (see internal/dataset and
// internal/fraud), not of the profile — that separation is the whole
// point of the paper.
type Profile struct {
	Release ua.Release
	OS      ua.OS
	Mods    []Modifier
}

// PropertyCount returns the profile's reported count for a prototype:
// oracle truth, plus OS-specific surface differences, filtered through
// the modifiers in order.
func (p Profile) PropertyCount(o *Oracle, proto string) int {
	c := o.PropertyCount(p.Release, proto)
	c += osDelta(p.OS, proto)
	if c < 0 {
		c = 0
	}
	for _, m := range p.Mods {
		c = m.AdjustCount(proto, c)
	}
	return c
}

// HasProperty returns the profile's reported hasOwnProperty result.
func (p Profile) HasProperty(o *Oracle, proto, prop string) bool {
	v := o.HasProperty(p.Release, proto, prop)
	for _, m := range p.Mods {
		v = m.AdjustBool(proto, prop, v)
	}
	return v
}

// osDelta models the few interfaces whose surface differs by OS (touch
// input on Windows exposes extra members). Kept deliberately small: the
// JS prototype surface is largely OS-independent, which is why the
// paper's Appendix-5 clustering works per-OS without re-tuning.
func osDelta(os ua.OS, proto string) int {
	switch proto {
	case "Touch", "TouchEvent", "TouchList":
		if os == ua.Windows10 || os == ua.Windows11 {
			return 1
		}
	case "GamepadButton":
		if os == ua.MacOSSonoma || os == ua.MacOSSequoia {
			return -1
		}
	}
	return 0
}
