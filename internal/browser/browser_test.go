package browser

import (
	"testing"

	"polygraph/internal/ua"
)

func TestEngineOf(t *testing.T) {
	cases := []struct {
		r    ua.Release
		want Engine
	}{
		{ua.Release{Vendor: ua.Chrome, Version: 100}, Blink},
		{ua.Release{Vendor: ua.Edge, Version: 100}, Blink},
		{ua.Release{Vendor: ua.Edge, Version: 18}, EdgeHTML},
		{ua.Release{Vendor: ua.Firefox, Version: 100}, Gecko},
		{ua.Release{Vendor: ua.Chrome, Version: 1}, EngineUnknown},
	}
	for _, c := range cases {
		if got := EngineOf(c.r); got != c.want {
			t.Fatalf("EngineOf(%s) = %s want %s", c.r, got, c.want)
		}
	}
}

func TestEraCoverage(t *testing.T) {
	// Every valid release must fall in exactly one era.
	for _, r := range ua.Universe(125) {
		era, ok := EraOf(r)
		if !ok {
			t.Fatalf("no era for %s", r)
		}
		if r.Version < era.Lo || r.Version > era.Hi {
			t.Fatalf("era %q does not contain %s", era.Name, r)
		}
		if era.Engine != EngineOf(r) {
			t.Fatalf("era engine mismatch for %s", r)
		}
	}
}

func TestEraTablesNonOverlapping(t *testing.T) {
	for _, table := range [][]Era{blinkEras, geckoEras, edgeHTMLEras} {
		for i := 1; i < len(table); i++ {
			if table[i].Lo <= table[i-1].Hi {
				t.Fatalf("eras %q and %q overlap", table[i-1].Name, table[i].Name)
			}
			if table[i].Level <= table[i-1].Level {
				t.Fatalf("era levels not increasing: %q", table[i].Name)
			}
		}
	}
}

func TestChromeEdgeShareSurface(t *testing.T) {
	// Chromium-based Edge mirrors Chrome's surface at the same version
	// up to the per-version bump noise: counts must be within 1 on
	// every prototype, and identical on the vast majority.
	o := NewOracle()
	for _, v := range []int{80, 95, 105, 112, 114} {
		chrome := ua.Release{Vendor: ua.Chrome, Version: v}
		edge := ua.Release{Vendor: ua.Edge, Version: v}
		diffs := 0
		for _, proto := range Registry() {
			c, e := o.PropertyCount(chrome, proto), o.PropertyCount(edge, proto)
			d := c - e
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("v%d %s: chrome=%d edge=%d", v, proto, c, e)
			}
			if d != 0 {
				diffs++
			}
		}
		if frac := float64(diffs) / float64(len(Registry())); frac > 0.25 {
			t.Fatalf("v%d: %.0f%% of prototypes differ between Chrome and Edge", v, frac*100)
		}
	}
}

func TestCountsDeterministic(t *testing.T) {
	a, b := NewOracle(), NewOracle()
	r := ua.Release{Vendor: ua.Firefox, Version: 102}
	for _, proto := range Registry() {
		if a.PropertyCount(r, proto) != b.PropertyCount(r, proto) {
			t.Fatalf("non-deterministic count for %s", proto)
		}
	}
}

func TestCountsStableWithinEra(t *testing.T) {
	// Counts of hand-tuned features differ by at most 1 between
	// versions of the same era (version bumps only).
	o := NewOracle()
	era, _ := EraOf(ua.Release{Vendor: ua.Chrome, Version: 102})
	for proto := range handTuned {
		base := o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: era.Lo}, proto)
		for v := era.Lo; v <= era.Hi; v++ {
			c := o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: v}, proto)
			d := c - base
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("%s at Chrome %d: count %d vs era base %d", proto, v, c, base)
			}
		}
	}
}

func TestCountsJumpBetweenEras(t *testing.T) {
	// Element's count must move substantially between consecutive
	// Blink eras: that jump is the clustering signal.
	o := NewOracle()
	prev := -1
	for _, era := range blinkEras {
		c := o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: era.Lo}, "Element")
		if prev >= 0 && c-prev < 5 {
			t.Fatalf("Element count barely moved into era %q: %d -> %d", era.Name, prev, c)
		}
		prev = c
	}
}

func TestOldEnginesConverge(t *testing.T) {
	// The geometry behind merged clusters: EdgeHTML 18 must be far
	// closer to Firefox 46 than to Chrome 114 on the big features.
	o := NewOracle()
	edge := ua.Release{Vendor: ua.Edge, Version: 18}
	ffOld := ua.Release{Vendor: ua.Firefox, Version: 46}
	chModern := ua.Release{Vendor: ua.Chrome, Version: 114}
	for _, proto := range []string{"Element", "Document", "HTMLElement"} {
		e := o.PropertyCount(edge, proto)
		f := o.PropertyCount(ffOld, proto)
		c := o.PropertyCount(chModern, proto)
		dOld := abs(e - f)
		dNew := abs(e - c)
		if dOld*3 >= dNew {
			t.Fatalf("%s: |edge-ffOld|=%d not ≪ |edge-chrome114|=%d", proto, dOld, dNew)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestUnknownInputsReturnZero(t *testing.T) {
	o := NewOracle()
	if o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: 100}, "NoSuchProto") != 0 {
		t.Fatal("unknown proto should count 0")
	}
	if o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: 1}, "Element") != 0 {
		t.Fatal("invalid release should count 0")
	}
	if o.HasProperty(ua.Release{Vendor: ua.Chrome, Version: 1}, "Navigator", "deviceMemory") {
		t.Fatal("invalid release should report false")
	}
}

func TestIntroducedInterfacesAbsentEarly(t *testing.T) {
	o := NewOracle()
	// ResizeObserverEntry intro level 3.2 > blink-ancient (2.0).
	if c := o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: 60}, "ResizeObserverEntry"); c != 0 {
		t.Fatalf("ResizeObserverEntry on Chrome 60 = %d, want 0", c)
	}
	if c := o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: 114}, "ResizeObserverEntry"); c == 0 {
		t.Fatal("ResizeObserverEntry missing on modern Chrome")
	}
}

func TestGeckoAbsentInterfaces(t *testing.T) {
	o := NewOracle()
	// RemotePlayback is modeled Chromium-only.
	if c := o.PropertyCount(ua.Release{Vendor: ua.Firefox, Version: 110}, "RemotePlayback"); c != 0 {
		t.Fatalf("RemotePlayback on Firefox = %d, want 0", c)
	}
	if c := o.PropertyCount(ua.Release{Vendor: ua.Chrome, Version: 110}, "RemotePlayback"); c == 0 {
		t.Fatal("RemotePlayback missing on Chrome")
	}
}

func TestCuratedTimeBasedTimelines(t *testing.T) {
	o := NewOracle()
	ch62 := ua.Release{Vendor: ua.Chrome, Version: 62}
	ch63 := ua.Release{Vendor: ua.Chrome, Version: 63}
	ff110 := ua.Release{Vendor: ua.Firefox, Version: 110}
	edge18 := ua.Release{Vendor: ua.Edge, Version: 18}

	if o.HasProperty(ch62, "Navigator", "deviceMemory") {
		t.Fatal("deviceMemory on Chrome 62")
	}
	if !o.HasProperty(ch63, "Navigator", "deviceMemory") {
		t.Fatal("deviceMemory missing on Chrome 63")
	}
	if o.HasProperty(ff110, "Navigator", "deviceMemory") {
		t.Fatal("deviceMemory on Firefox")
	}
	if !o.HasProperty(ch63, "HTMLVideoElement", "webkitDisplayingFullscreen") {
		t.Fatal("webkit fullscreen missing on Blink")
	}
	if o.HasProperty(ff110, "HTMLVideoElement", "webkitDisplayingFullscreen") {
		t.Fatal("webkit fullscreen on Gecko")
	}
	if o.HasProperty(edge18, "CSSStyleDeclaration", "getPropertyValue") {
		t.Fatal("getPropertyValue on EdgeHTML prototype")
	}
	if !o.HasProperty(ff110, "CSSStyleDeclaration", "getPropertyValue") {
		t.Fatal("getPropertyValue missing on Gecko")
	}
	if !o.HasProperty(ff110, "Screen", "orientation") {
		t.Fatal("Screen.orientation missing on modern Firefox")
	}
	if o.HasProperty(ua.Release{Vendor: ua.Firefox, Version: 46}, "Screen", "orientation") {
		t.Fatal("Screen.orientation on Firefox 46")
	}
}

func TestBrowserPrintCandidates(t *testing.T) {
	cands := BrowserPrintCandidates()
	if len(cands) != 313 {
		t.Fatalf("got %d candidates, want 313", len(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if !KnownProto(c.Proto) {
			t.Fatalf("candidate on unknown proto %s", c.Proto)
		}
		if seen[c.Name()] {
			t.Fatalf("duplicate candidate %s", c.Name())
		}
		seen[c.Name()] = true
	}
	// The curated six lead the list.
	if cands[0].Name() != "Navigator.prototype.hasOwnProperty('deviceMemory')" {
		t.Fatalf("first candidate = %s", cands[0].Name())
	}
}

func TestSyntheticTimeFeaturesMostlyConstant(t *testing.T) {
	o := NewOracle()
	universe := ua.Universe(114)
	constant := 0
	cands := BrowserPrintCandidates()[6:]
	for _, c := range cands {
		first := o.HasProperty(universe[0], c.Proto, c.Prop)
		same := true
		for _, r := range universe[1:] {
			if o.HasProperty(r, c.Proto, c.Prop) != first {
				same = false
				break
			}
		}
		if same {
			constant++
		}
	}
	frac := float64(constant) / float64(len(cands))
	if frac < 0.75 {
		t.Fatalf("only %.0f%% of synthetic time-based candidates constant, want most", frac*100)
	}
	if frac == 1 {
		t.Fatal("no synthetic candidate varies at all")
	}
}

func TestPropertyNames(t *testing.T) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Chrome, Version: 110}
	names := o.PropertyNames(r, "Element")
	if len(names) != o.PropertyCount(r, "Element") {
		t.Fatal("name count mismatch")
	}
	// Stable across calls.
	again := o.PropertyNames(r, "Element")
	for i := range names {
		if names[i] != again[i] {
			t.Fatal("property names not stable")
		}
	}
	// Prefix property: an older release's list is a prefix of a newer
	// one's (properties accrete).
	old := o.PropertyNames(ua.Release{Vendor: ua.Chrome, Version: 60}, "Element")
	for i := range old {
		if old[i] != names[i] {
			t.Fatal("older release's property list is not a prefix")
		}
	}
	if o.PropertyNames(r, "NoSuchProto") != nil {
		t.Fatal("unknown proto should return nil names")
	}
}

func TestHasPropertyFallbackMembership(t *testing.T) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Chrome, Version: 110}
	names := o.PropertyNames(r, "Range")
	if len(names) == 0 {
		t.Fatal("Range has no properties")
	}
	if !o.HasProperty(r, "Range", names[0]) {
		t.Fatal("membership fallback failed for existing prop")
	}
	if o.HasProperty(r, "Range", "definitelyNotAProp") {
		t.Fatal("membership fallback accepted junk")
	}
}

func TestFirefox119ElementShift(t *testing.T) {
	o := NewOracle()
	ff118 := ua.Release{Vendor: ua.Firefox, Version: 118}
	ff119 := ua.Release{Vendor: ua.Firefox, Version: 119}
	ch95 := ua.Release{Vendor: ua.Chrome, Version: 95}
	// Shifted prototypes adopt the Blink mid-era surface.
	if got, want := o.PropertyCount(ff119, "Element"), o.PropertyCount(ch95, "Element"); got != want {
		t.Fatalf("Firefox 119 Element = %d, want Chrome 95's %d", got, want)
	}
	if o.PropertyCount(ff119, "Element") == o.PropertyCount(ff118, "Element") {
		t.Fatal("Firefox 119 Element did not change from 118")
	}
	// Non-shifted prototypes stay on the Gecko timeline (within the
	// one-property version bump).
	d := o.PropertyCount(ff119, "WebGLRenderingContext") - o.PropertyCount(ff118, "WebGLRenderingContext")
	if d < -1 || d > 1 {
		t.Fatalf("WebGLRenderingContext moved too much at Firefox 119: %d", d)
	}
}

func TestModifiers(t *testing.T) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Firefox, Version: 110}
	plain := Profile{Release: r, OS: ua.Windows10}
	noSW := Profile{Release: r, OS: ua.Windows10, Mods: []Modifier{FirefoxServiceWorkersDisabled()}}
	if noSW.PropertyCount(o, "ServiceWorkerRegistration") != 0 {
		t.Fatal("ServiceWorkerRegistration not zeroed")
	}
	if noSW.PropertyCount(o, "Element") != plain.PropertyCount(o, "Element") {
		t.Fatal("unrelated proto changed")
	}

	tg := Profile{Release: r, OS: ua.Windows10, Mods: []Modifier{FirefoxTransformGetters()}}
	if tg.PropertyCount(o, "Element") != plain.PropertyCount(o, "Element")+3 {
		t.Fatal("transform getters delta wrong")
	}

	ch := ua.Release{Vendor: ua.Chrome, Version: 111}
	brave := Profile{Release: ch, OS: ua.Windows10, Mods: []Modifier{BraveShift()}}
	vanilla := Profile{Release: ch, OS: ua.Windows10}
	if brave.PropertyCount(o, "Element") >= vanilla.PropertyCount(o, "Element") {
		t.Fatal("Brave Element not reduced")
	}
	if brave.HasProperty(o, "Navigator", "deviceMemory") {
		t.Fatal("Brave should hide deviceMemory")
	}
	if !vanilla.HasProperty(o, "Navigator", "deviceMemory") {
		t.Fatal("vanilla Chrome 111 should expose deviceMemory")
	}

	ddg := Profile{Release: ch, OS: ua.Windows10, Mods: []Modifier{ChromeExtensionDuckDuckGo()}}
	if ddg.PropertyCount(o, "Element") != vanilla.PropertyCount(o, "Element")+2 {
		t.Fatal("DuckDuckGo delta wrong")
	}
}

func TestModifierNeverNegative(t *testing.T) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Firefox, Version: 102}
	tor := Profile{Release: r, OS: ua.Windows10, Mods: []Modifier{TorShift()}}
	for _, proto := range Registry() {
		if c := tor.PropertyCount(o, proto); c < 0 {
			t.Fatalf("negative count for %s", proto)
		}
	}
}

func TestModifiersCompose(t *testing.T) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Chrome, Version: 110}
	p := Profile{Release: r, OS: ua.Windows10, Mods: []Modifier{
		ChromeExtensionDuckDuckGo(), ChromeExtensionGeneric(3),
	}}
	base := Profile{Release: r, OS: ua.Windows10}.PropertyCount(o, "Element")
	if p.PropertyCount(o, "Element") != base+5 {
		t.Fatalf("composed delta = %d want %d", p.PropertyCount(o, "Element"), base+5)
	}
}

func TestChromeExtensionGenericFloor(t *testing.T) {
	m := ChromeExtensionGeneric(0)
	if m.AdjustCount("Element", 10) != 11 {
		t.Fatal("n<1 should clamp to 1")
	}
}

func TestOSDelta(t *testing.T) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Chrome, Version: 110}
	win := Profile{Release: r, OS: ua.Windows10}
	mac := Profile{Release: r, OS: ua.MacOSSonoma}
	if win.PropertyCount(o, "TouchEvent") != mac.PropertyCount(o, "TouchEvent")+1 {
		t.Fatal("TouchEvent OS delta missing")
	}
	if win.PropertyCount(o, "Element") != mac.PropertyCount(o, "Element") {
		t.Fatal("Element should be OS-independent")
	}
}

func TestRegistryIntegrity(t *testing.T) {
	if len(Appendix3Protos()) != 200 {
		t.Fatalf("appendix-3 list has %d entries, want 200", len(Appendix3Protos()))
	}
	for _, p := range Appendix3Protos() {
		if !KnownProto(p) {
			t.Fatalf("appendix-3 proto %q not in registry", p)
		}
	}
	if len(Registry()) < 300 {
		t.Fatalf("registry too small: %d", len(Registry()))
	}
	// Table 8 prototypes all modeled.
	for proto := range handTuned {
		if !KnownProto(proto) {
			t.Fatalf("hand-tuned proto %q not in registry", proto)
		}
	}
}

func TestEngineString(t *testing.T) {
	for _, e := range []Engine{Blink, Gecko, EdgeHTML, EngineUnknown} {
		if e.String() == "" {
			t.Fatal("empty engine string")
		}
	}
}

func TestErasAccessor(t *testing.T) {
	if len(Eras()) != len(blinkEras)+len(geckoEras)+len(edgeHTMLEras) {
		t.Fatal("Eras() incomplete")
	}
}

func BenchmarkPropertyCountCached(b *testing.B) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Chrome, Version: 112}
	o.PropertyCount(r, "Element") // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.PropertyCount(r, "Element")
	}
}

func BenchmarkProfileExtraction28(b *testing.B) {
	o := NewOracle()
	p := Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10}
	protos := Appendix3Protos()[:22]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, proto := range protos {
			_ = p.PropertyCount(o, proto)
		}
	}
}

func TestEraOfInvalid(t *testing.T) {
	if _, ok := EraOf(ua.Release{Vendor: ua.Chrome, Version: 1}); ok {
		t.Fatal("invalid release got an era")
	}
	if _, ok := EraOf(ua.Release{}); ok {
		t.Fatal("zero release got an era")
	}
}

func TestModifierNamesNonEmpty(t *testing.T) {
	mods := []Modifier{
		FirefoxServiceWorkersDisabled(), FirefoxTransformGetters(),
		ChromeExtensionDuckDuckGo(), ChromeExtensionGeneric(2),
		BraveShift(), TorShift(),
	}
	for _, m := range mods {
		if m.Name() == "" {
			t.Fatal("modifier with empty name")
		}
		// AdjustBool without an override passes through.
		if !m.AdjustBool("Screen", "orientation", true) && m.Name() != "brave" {
			t.Fatalf("%s flipped an unrelated boolean", m.Name())
		}
	}
}

func TestOSDeltaMac(t *testing.T) {
	o := NewOracle()
	r := ua.Release{Vendor: ua.Chrome, Version: 110}
	mac := Profile{Release: r, OS: ua.MacOSSonoma}
	win := Profile{Release: r, OS: ua.Windows10}
	if mac.PropertyCount(o, "GamepadButton") >= win.PropertyCount(o, "GamepadButton") {
		t.Fatal("mac GamepadButton delta missing")
	}
}

func TestSyntheticTimeFlipsAtEraBoundary(t *testing.T) {
	// At least one synthetic candidate must genuinely flip within the
	// modeled range (the non-constant tail).
	o := NewOracle()
	universe := ua.Universe(114)
	flips := 0
	for _, c := range BrowserPrintCandidates()[6:] {
		first := o.HasProperty(universe[0], c.Proto, c.Prop)
		for _, r := range universe[1:] {
			if o.HasProperty(r, c.Proto, c.Prop) != first {
				flips++
				break
			}
		}
	}
	if flips == 0 {
		t.Fatal("no synthetic time-based candidate varies")
	}
}
