package browser

import (
	"fmt"
	"math"
	"sync"

	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// Oracle answers API-surface questions for any modeled release. It is
// immutable after construction and safe for concurrent use; results are
// memoized because the traffic generator asks the same (release, proto)
// questions hundreds of thousands of times.
type Oracle struct {
	mu     sync.RWMutex
	counts map[countKey]int
}

type countKey struct {
	rel   ua.Release
	proto string
}

// NewOracle constructs the shared oracle.
func NewOracle() *Oracle {
	return &Oracle{counts: make(map[countKey]int, 4096)}
}

// hash01 maps a label to a deterministic float in [0, 1).
func hash01(label string) float64 {
	return rng.NewString(label).Float64()
}

// hashPM maps a label to a deterministic float in [-1, 1).
func hashPM(label string) float64 { return 2*hash01(label) - 1 }

// PropertyCount returns Object.getOwnPropertyNames(proto.prototype).length
// as the modeled release would report it. Unknown prototypes and invalid
// releases return 0 — exactly what the collection script reports when an
// interface is missing (the paper's features zero out the same way, e.g.
// ServiceWorker under a disabling config, §6.3).
func (o *Oracle) PropertyCount(r ua.Release, proto string) int {
	if !KnownProto(proto) || !r.Valid() {
		return 0
	}
	key := countKey{rel: r, proto: proto}
	o.mu.RLock()
	v, ok := o.counts[key]
	o.mu.RUnlock()
	if ok {
		return v
	}
	v = computeCount(r, proto)
	o.mu.Lock()
	o.counts[key] = v
	o.mu.Unlock()
	return v
}

func computeCount(r ua.Release, proto string) int {
	// The Firefox 119 Element-family rework (paper §7.3) replaced the
	// shifted prototypes' surface with one resembling the Blink
	// mid-era; model it by answering as Chrome 95 would.
	if r.Vendor == ua.Firefox && r.Version >= 119 && firefox119ElementShift[proto] {
		return computeCount(ua.Release{Vendor: ua.Chrome, Version: 95}, proto)
	}

	era, ok := EraOf(r)
	if !ok {
		return 0
	}
	spec := specFor(proto)
	engine := EngineOf(r)
	if spec.geckoAbsent && engine != Blink {
		return 0
	}
	if era.Level < spec.intro {
		return 0
	}

	level := era.Level + engineJitterLevel(proto, engine, era.Level)
	eraJ := eraJitterLevelAmp * hashPM(fmt.Sprintf("eraj:%s:%s:%s", proto, engine, era.Name))
	if era.Level < lowLevelCutoff {
		eraJ *= lowLevelJitterScale
	}
	count := spec.base + spec.growth*(level+eraJ)
	if hash01(fmt.Sprintf("vb:%s:%s", proto, r)) < versionBumpChance {
		count++
	}
	if count < 0 {
		return 0
	}
	return int(math.Round(count))
}

// engineJitterLevel is the fixed per-(prototype, engine) offset in level
// units. It shrinks at low platform levels: early engines genuinely
// resembled each other, which is what lets the paper's clusters 2 and 6
// merge vendors.
func engineJitterLevel(proto string, engine Engine, level float64) float64 {
	j := hashPM(fmt.Sprintf("ej:%s:%s", proto, engine)) * engineJitterAmp
	if level < lowLevelCutoff {
		j *= lowLevelJitterScale
	}
	return j
}

// PropertyNames returns the modeled property-name list of the prototype
// for the release, of length PropertyCount. Names are deterministic per
// prototype so that releases sharing a count report identical lists —
// fine-grained collectors (internal/finegrained) hash these.
func (o *Oracle) PropertyNames(r ua.Release, proto string) []string {
	n := o.PropertyCount(r, proto)
	if n == 0 {
		return nil
	}
	return propSequence(proto, n)
}

var propSeqCache sync.Map // proto -> []string

// propSequence returns the first n names of the prototype's stable
// property sequence, growing the cached sequence as needed.
func propSequence(proto string, n int) []string {
	if v, ok := propSeqCache.Load(proto); ok {
		seq := v.([]string)
		if len(seq) >= n {
			return seq[:n:n]
		}
	}
	seq := make([]string, n)
	for i := range seq {
		seq[i] = propName(proto, i)
	}
	propSeqCache.Store(proto, seq)
	return seq[:n:n]
}

var propPrefixes = [...]string{
	"get", "set", "on", "has", "is", "to", "query", "observe", "create",
	"remove", "append", "replace", "request", "release", "dispatch",
}

var propStems = [...]string{
	"Value", "State", "Node", "Item", "Child", "Attribute", "Style",
	"Rect", "Frame", "Stream", "Track", "Buffer", "Context", "Handler",
	"Listener", "Timing", "Range", "Point", "Key", "Entry",
}

// propName generates the i-th deterministic property name of a prototype.
func propName(proto string, i int) string {
	h := rng.NewString(fmt.Sprintf("prop:%s:%d", proto, i))
	p := propPrefixes[h.Intn(len(propPrefixes))]
	s := propStems[h.Intn(len(propStems))]
	return fmt.Sprintf("%s%s%d", p, s, i)
}

// HasProperty reports whether proto.prototype.hasOwnProperty(prop) for
// the release. Curated time-based properties (Table 8 Num 23–28) follow
// their modeled timelines; synthetic BrowserPrint-style candidates follow
// hash-derived timelines; any other name falls back to membership in the
// modeled property list.
func (o *Oracle) HasProperty(r ua.Release, proto, prop string) bool {
	if !r.Valid() {
		return false
	}
	if rule, ok := curatedTimeBased[proto+"."+prop]; ok {
		return rule(r)
	}
	if isSyntheticTimeProp(prop) {
		return syntheticTimeHas(r, proto, prop)
	}
	for _, name := range o.PropertyNames(r, proto) {
		if name == prop {
			return true
		}
	}
	return false
}
