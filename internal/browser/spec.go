package browser

import (
	"sync"

	"polygraph/internal/rng"
)

// protoSpec describes how one prototype's property count evolves along
// the platform-level axis.
type protoSpec struct {
	base   float64 // count at level 0
	growth float64 // properties gained per level unit
	intro  float64 // level before which the interface does not exist
	// geckoAbsent marks Chromium-only interfaces (count 0 under Gecko
	// and EdgeHTML).
	geckoAbsent bool
}

// handTuned pins the evolution of the prototypes that matter most to the
// reproduction: the paper's 22 final deviation-based features (Table 8)
// get strong, distinctive growth so candidate ranking selects them, and
// the twelve Appendix-4 Table 12 additions rank immediately below.
var handTuned = map[string]protoSpec{
	// --- Table 8 deviation-based features (Num 1–22) ---
	"Element":                          {base: 150, growth: 18.0},
	"Document":                         {base: 180, growth: 14.0},
	"HTMLElement":                      {base: 62, growth: 7.0},
	"SVGElement":                       {base: 28, growth: 8.0},
	"SVGFEBlendElement":                {base: 8, growth: 1.9},
	"TextMetrics":                      {base: 4, growth: 1.7},
	"Range":                            {base: 30, growth: 2.6},
	"StaticRange":                      {base: 2, growth: 1.2, intro: 2.6},
	"AuthenticatorAttestationResponse": {base: 3, growth: 1.5, intro: 3.0, geckoAbsent: false},
	"HTMLVideoElement":                 {base: 12, growth: 2.4},
	"ResizeObserverEntry":              {base: 3, growth: 1.6, intro: 3.2},
	"ShadowRoot":                       {base: 8, growth: 2.2, intro: 2.2},
	"PointerEvent":                     {base: 10, growth: 2.0},
	"IntersectionObserver":             {base: 5, growth: 1.8, intro: 2.1},
	"CanvasRenderingContext2D":         {base: 60, growth: 4.4},
	"CSSStyleSheet":                    {base: 10, growth: 2.1},
	"AudioContext":                     {base: 8, growth: 1.9},
	"HTMLLinkElement":                  {base: 15, growth: 1.8},
	"HTMLMediaElement":                 {base: 40, growth: 3.2},
	"WebGL2RenderingContext":           {base: 300, growth: 5.2, intro: 1.6},
	"WebGLRenderingContext":            {base: 290, growth: 5.0},
	"CSSRule":                          {base: 10, growth: 1.5},

	// --- Appendix-4 Table 12 additions, in ranking order ---
	"HTMLIFrameElement":        {base: 22, growth: 1.45},
	"SVGAElement":              {base: 14, growth: 1.42},
	"RemotePlayback":           {base: 4, growth: 1.40, intro: 2.4, geckoAbsent: true},
	"StylePropertyMapReadOnly": {base: 5, growth: 1.38, intro: 2.8, geckoAbsent: true},
	"Screen":                   {base: 9, growth: 1.36},
	"Request":                  {base: 12, growth: 1.34, intro: 1.4},
	"TouchEvent":               {base: 10, growth: 1.32},
	"TaskAttributionTiming":    {base: 3, growth: 1.30, intro: 2.9, geckoAbsent: true},
	"PictureInPictureWindow":   {base: 3, growth: 1.28, intro: 3.1, geckoAbsent: true},
	"ReportingObserver":        {base: 3, growth: 1.26, intro: 3.0, geckoAbsent: true},
	"HTMLTemplateElement":      {base: 4, growth: 1.24},
	"MediaSession":             {base: 4, growth: 1.22, intro: 2.7},

	// Navigator backs a time-based feature and Brave/Tor perturbations;
	// moderate growth keeps it out of the top ranks (the paper's final
	// set does not include it) while still evolving.
	"Navigator":           {base: 30, growth: 0.9},
	"CSSStyleDeclaration": {base: 8, growth: 0.7},
	"BaseAudioContext":    {base: 12, growth: 0.8},
	"Window":              {base: 240, growth: 1.0},

	// ServiceWorker family: zeroed by the Firefox
	// dom.serviceWorkers.enabled config (paper §6.3), so they must not
	// be flat.
	"ServiceWorker":             {base: 6, growth: 0.9, intro: 1.8},
	"ServiceWorkerContainer":    {base: 7, growth: 0.8, intro: 1.8},
	"ServiceWorkerRegistration": {base: 9, growth: 0.9, intro: 1.8},
}

// specCache memoizes derived specs (proto → protoSpec). Specs are pure
// functions of the name, but deriving one walks a PCG stream; the traffic
// generator and candidate ranking resolve the same prototypes for every
// (release, proto) cache miss, so the memo keeps that off the hot path.
var specCache sync.Map

// specFor derives the spec for any registry prototype. Hash-derived specs
// are deterministic functions of the name. Prototypes on the paper's
// Appendix-3 list evolve more (that deviation is why the paper selected
// them); the rest of the registry is flatter, so the §6.1 ranking
// rediscovers the published list.
func specFor(proto string) protoSpec {
	if s, ok := handTuned[proto]; ok {
		return s
	}
	if s, ok := specCache.Load(proto); ok {
		return s.(protoSpec)
	}
	s := deriveSpec(proto)
	specCache.Store(proto, s)
	return s
}

func deriveSpec(proto string) protoSpec {
	gen := rng.NewString("proto-spec:" + proto)
	spec := protoSpec{}
	spec.base = baseMin + gen.Float64()*(baseMax-baseMin)
	if !IsAppendix3(proto) {
		// The rest of the registry models the MDN interfaces that did
		// NOT make the paper's top-200: present everywhere and slow
		// moving, so the §6.1 ranking puts them below the published
		// list by construction.
		if gen.Bool(extraFlatChance) {
			spec.growth = 0
		} else {
			spec.growth = spec.base * (extraGrowthRelMin + gen.Float64()*(extraGrowthRelMax-extraGrowthRelMin))
		}
		return spec
	}
	if gen.Bool(flatChance) {
		spec.growth = 0
	} else {
		spec.growth = growthMin + gen.Float64()*(growthMax-growthMin)
	}
	// A minority of interfaces appeared mid-timeline.
	if gen.Bool(0.3) {
		spec.intro = gen.Float64() * introLevelMax
	}
	spec.geckoAbsent = gen.Bool(geckoAbsentChance)
	return spec
}
