// Package browser is the reproduction's substitute for real browser
// builds: a deterministic oracle of the JavaScript API surface (prototype
// property counts and property presence) for every release in the modeled
// universe (Chrome 59–125, Firefox 46–125, Edge 17–19 and 79–125).
//
// The paper extracted these values from live browsers on BrowserStack
// (§6.1); we cannot run those, so the oracle encodes the *structure* the
// paper's detector exploits instead of the exact counts:
//
//   - engines evolve in eras — property counts are stable within an era
//     and jump between eras (this is what makes the Table 3 clusters);
//   - Chromium-based Edge (≥79) shares Blink's surface with its Chrome
//     version peer;
//   - legacy EdgeHTML and very old Firefox/Chrome have similar, sparse
//     surfaces (the paper's clusters 2 and 6 merge across vendors);
//   - user configuration (Firefox about:config, Chrome extensions) and
//     derivative browsers (Brave, Tor) perturb individual values (§6.3).
//
// Every value is a pure deterministic function of (release, prototype),
// so the whole pipeline is reproducible.
package browser

import "polygraph/internal/ua"

// Engine identifies a browser engine lineage.
type Engine uint8

const (
	EngineUnknown Engine = iota
	Blink                // Chrome, Edge ≥ 79, Brave
	Gecko                // Firefox, Tor Browser
	EdgeHTML             // Edge 17–19
)

// String returns the engine name.
func (e Engine) String() string {
	switch e {
	case Blink:
		return "Blink"
	case Gecko:
		return "Gecko"
	case EdgeHTML:
		return "EdgeHTML"
	default:
		return "Unknown"
	}
}

// EngineOf maps a release to its engine. Invalid releases map to
// EngineUnknown.
func EngineOf(r ua.Release) Engine {
	if !r.Valid() {
		return EngineUnknown
	}
	switch r.Vendor {
	case ua.Chrome:
		return Blink
	case ua.Firefox:
		return Gecko
	case ua.Edge:
		if r.IsLegacyEdge() {
			return EdgeHTML
		}
		return Blink
	default:
		return EngineUnknown
	}
}

// Era is a contiguous version range of an engine over which the API
// surface is essentially stable. Level is the era's position on the
// shared "web platform evolution" axis; property counts grow with Level,
// so eras with close Levels produce similar fingerprints even across
// engines (that cross-engine closeness is exactly why the paper's
// clusters 2 and 6 merge old Chrome with old Firefox, and legacy Edge
// with ancient Firefox).
type Era struct {
	Engine Engine
	Lo, Hi int // inclusive engine-version range
	Level  float64
	Name   string
}

// The era tables drive the whole fingerprint geometry; see params.go for
// the jitter amplitudes layered on top.
var blinkEras = []Era{
	{Blink, 59, 68, 2.00, "blink-ancient"},
	{Blink, 69, 89, 3.60, "blink-old"},
	{Blink, 90, 101, 6.40, "blink-mid"},
	{Blink, 102, 109, 7.80, "blink-recent"},
	{Blink, 110, 113, 10.60, "blink-modern"},
	{Blink, 114, 125, 11.80, "blink-current"},
}

var geckoEras = []Era{
	{Gecko, 46, 50, 1.15, "gecko-ancient"},
	{Gecko, 51, 91, 2.15, "gecko-old"},
	{Gecko, 92, 100, 5.00, "gecko-mid"},
	{Gecko, 101, 125, 9.20, "gecko-modern"},
}

var edgeHTMLEras = []Era{
	{EdgeHTML, 17, 19, 1.00, "edgehtml"},
}

// EraOf returns the era containing the release's engine version.
func EraOf(r ua.Release) (Era, bool) {
	var table []Era
	switch EngineOf(r) {
	case Blink:
		table = blinkEras
	case Gecko:
		table = geckoEras
	case EdgeHTML:
		table = edgeHTMLEras
	default:
		return Era{}, false
	}
	for _, e := range table {
		if r.Version >= e.Lo && r.Version <= e.Hi {
			return e, true
		}
	}
	return Era{}, false
}

// Eras returns all modeled eras, primarily for documentation and tests.
func Eras() []Era {
	out := make([]Era, 0, len(blinkEras)+len(geckoEras)+len(edgeHTMLEras))
	out = append(out, blinkEras...)
	out = append(out, geckoEras...)
	out = append(out, edgeHTMLEras...)
	return out
}
