package browser

import "sort"

// appendix3Protos is the verbatim list of 200 prototype names whose
// property counts formed the paper's deviation-based candidate
// fingerprints during Real-World Data Collection (paper Appendix-3).
// Two entries keep the paper's own spelling (BytelengthQueuingStrategy,
// SVGAnimatedlengthList) so feature names match the published table.
var appendix3Protos = []string{
	"Element", "Document", "HTMLElement", "SVGElement", "Navigator",
	"RTCIceCandidate", "SVGFEBlendElement", "TextMetrics", "Range",
	"StaticRange", "RTCRtpReceiver", "RTCPeerConnection",
	"AuthenticatorAttestationResponse", "FontFace", "HTMLVideoElement",
	"ResizeObserverEntry", "ShadowRoot", "RTCRtpSender", "PointerEvent",
	"Blob", "ServiceWorkerRegistration", "MediaSession", "PaymentResponse",
	"HTMLSourceElement", "Clipboard", "IDBTransaction", "Performance",
	"ServiceWorkerContainer", "HTMLIFrameElement", "PaymentRequest",
	"RTCRtpTransceiver", "IntersectionObserver", "CanvasRenderingContext2D",
	"CSSStyleSheet", "BaseAudioContext", "AudioContext", "HTMLLinkElement",
	"RTCDataChannel", "WritableStream", "DataTransferItem",
	"DocumentFragment", "HTMLMediaElement",
	"StorageManager", "HTMLSlotElement", "Text", "WebGL2RenderingContext",
	"HTMLInputElement", "WebGLRenderingContext", "HTMLButtonElement",
	"HTMLTextAreaElement", "HTMLSelectElement", "MediaRecorder",
	"CountQueuingStrategy", "BytelengthQueuingStrategy", "PerformanceMark",
	"PerformanceMeasure", "HTMLImageElement", "SpeechSynthesisEvent",
	"HTMLFormElement", "IDBCursor", "HTMLTemplateElement", "CSSRule",
	"Location", "PaymentAddress", "IntersectionObserverEntry",
	"TextEncoder", "ImageData", "HTMLMetaElement", "Crypto",
	"GamepadButton", "DOMMatrixReadOnly", "MediaKeys", "MessageEvent",
	"IDBFactory", "MediaDevices", "OfflineAudioContext", "URL",
	"ScriptProcessorNode", "SVGAnimatedNumberList", "ServiceWorker",
	"SensorErrorEvent", "SVGAnimatedPreserveAspectRatio", "Sensor",
	"SVGAnimatedRect", "SVGAnimatedString", "Selection",
	"SecurityPolicyViolationEvent", "XPathExpression", "SVGAnimatedNumber",
	"SVGAnimatedTransformList", "Screen", "RTCTrackEvent",
	"SVGAnimateElement", "SVGAnimateMotionElement", "RTCStatsReport",
	"RTCSessionDescription", "SVGAnimateTransformElement",
	"ScreenOrientation", "SVGAnimatedlengthList", "XPathResult",
	"SVGAngle", "SVGAElement", "SubtleCrypto", "SVGAnimatedAngle",
	"StyleSheetList", "StyleSheet", "StylePropertyMapReadOnly",
	"StylePropertyMap", "XPathEvaluator", "SVGAnimatedBoolean",
	"SharedWorker", "StorageEvent", "Storage", "StereoPannerNode",
	"SVGAnimatedEnumeration", "SpeechSynthesisUtterance",
	"SVGAnimatedInteger", "SVGAnimatedLength", "SpeechSynthesisErrorEvent",
	"SourceBufferList", "SourceBuffer", "WebGLFramebuffer",
	"PresentationConnection", "Plugin", "PluginArray", "PopStateEvent",
	"Presentation", "PresentationAvailability",
	"PresentationConnectionAvailableEvent",
	"PresentationConnectionCloseEvent", "PresentationConnectionList",
	"PresentationReceiver", "PresentationRequest", "ProcessingInstruction",
	"PictureInPictureWindow", "PermissionStatus", "PromiseRejectionEvent",
	"PerformanceNavigationTiming", "PerformanceObserver",
	"PerformanceObserverEntryList", "PerformancePaintTiming", "Permissions",
	"PerformanceResourceTiming", "PerformanceServerTiming",
	"PerformanceTiming", "PeriodicWave", "ProgressEvent",
	"PublicKeyCredential", "RTCDTMFToneChangeEvent", "RTCCertificate",
	"RTCDataChannelEvent", "RTCDTMFSender", "RTCPeerConnectionIceEvent",
	"Response", "PushManager", "PushSubscription", "PushSubscriptionOptions",
	"RadioNodeList", "ReadableStream", "ResizeObserver",
	"RelativeOrientationSensor", "RemotePlayback", "ReportingObserver",
	"Request", "SVGAnimationElement", "XMLHttpRequestEventTarget",
	"SVGCircleElement", "TreeWalker", "WebGLTexture", "TextDecoderStream",
	"TextEncoderStream", "WebGLSync", "TextTrack", "TextTrackCue",
	"TextTrackCueList", "WebGLShaderPrecisionFormat", "TextTrackList",
	"TimeRanges", "Touch", "TouchEvent", "TouchList", "TrackEvent",
	"TransformStream", "WebGLTransformFeedback", "TextDecoder",
	"WebGLUniformLocation", "SVGTitleElement", "WebGLVertexArrayObject",
	"SVGSymbolElement", "SVGTextContentElement", "SVGTextElement",
	"SVGTextPathElement", "SVGTextPositioningElement", "SVGTransform",
	"TaskAttributionTiming", "SVGTransformList", "SVGTSpanElement",
	"SVGUnitTypes", "SVGUseElement", "SVGViewElement",
}

// extraProtos extends the registry toward the paper's full MDN sweep
// (1006 interfaces in §6.1). We carry the common interfaces the candidate
// generation stage ranks against; the substitution is documented in
// DESIGN.md — the stage's behaviour depends on having a wide pool of
// mostly low-variance interfaces, not on the exact count.
var extraProtos = []string{
	"AbortController", "AbortSignal", "AnalyserNode", "Animation",
	"AnimationEvent", "Attr", "AudioBuffer", "AudioBufferSourceNode",
	"AudioDestinationNode", "AudioListener", "AudioNode", "AudioParam",
	"AudioWorkletNode", "BarProp", "BeforeUnloadEvent", "BiquadFilterNode",
	"BroadcastChannel", "CDATASection", "CSSConditionRule",
	"CSSFontFaceRule", "CSSGroupingRule", "CSSImportRule",
	"CSSKeyframeRule", "CSSKeyframesRule", "CSSMediaRule",
	"CSSNamespaceRule", "CSSPageRule", "CSSRuleList", "CSSStyleDeclaration",
	"CSSStyleRule", "CSSSupportsRule", "CacheStorage", "ChannelMergerNode",
	"ChannelSplitterNode", "CharacterData", "ClipboardEvent",
	"ClipboardItem", "CloseEvent", "Comment", "CompositionEvent",
	"ConstantSourceNode", "ConvolverNode", "CryptoKey", "CustomElementRegistry",
	"CustomEvent", "DOMException", "DOMImplementation", "DOMMatrix",
	"DOMParser", "DOMPoint", "DOMPointReadOnly", "DOMQuad", "DOMRect",
	"DOMRectList", "DOMRectReadOnly", "DOMStringList", "DOMStringMap",
	"DOMTokenList", "DataTransfer", "DataTransferItemList", "DelayNode",
	"DeviceMotionEvent", "DeviceOrientationEvent", "DragEvent",
	"DynamicsCompressorNode", "ErrorEvent", "Event", "EventSource",
	"EventTarget", "File", "FileList", "FileReader", "FocusEvent",
	"FontFaceSet", "FormData", "GainNode", "Gamepad", "GamepadEvent",
	"HTMLAnchorElement", "HTMLAreaElement", "HTMLAudioElement",
	"HTMLBRElement", "HTMLBaseElement", "HTMLBodyElement",
	"HTMLCanvasElement", "HTMLCollection", "HTMLDListElement",
	"HTMLDataElement", "HTMLDataListElement", "HTMLDetailsElement",
	"HTMLDialogElement", "HTMLDivElement", "HTMLDocument",
	"HTMLEmbedElement", "HTMLFieldSetElement", "HTMLFontElement",
	"HTMLFrameElement", "HTMLFrameSetElement", "HTMLHRElement",
	"HTMLHeadElement", "HTMLHeadingElement", "HTMLHtmlElement",
	"HTMLLIElement", "HTMLLabelElement", "HTMLLegendElement",
	"HTMLMapElement", "HTMLMarqueeElement", "HTMLMenuElement",
	"HTMLModElement", "HTMLOListElement", "HTMLObjectElement",
	"HTMLOptGroupElement", "HTMLOptionElement", "HTMLOutputElement",
	"HTMLParagraphElement", "HTMLParamElement", "HTMLPictureElement",
	"HTMLPreElement", "HTMLProgressElement", "HTMLQuoteElement",
	"HTMLScriptElement", "HTMLSpanElement", "HTMLStyleElement",
	"HTMLTableCaptionElement", "HTMLTableCellElement", "HTMLTableColElement",
	"HTMLTableElement", "HTMLTableRowElement", "HTMLTableSectionElement",
	"HTMLTimeElement", "HTMLTitleElement", "HTMLTrackElement",
	"HTMLUListElement", "HTMLUnknownElement", "HashChangeEvent",
	"Headers", "History", "IDBDatabase", "IDBIndex", "IDBKeyRange",
	"IDBObjectStore", "IDBOpenDBRequest", "IDBRequest", "IIRFilterNode",
	"ImageBitmap", "ImageBitmapRenderingContext", "ImageCapture",
	"InputEvent", "KeyboardEvent", "MediaElementAudioSourceNode",
	"MediaEncryptedEvent", "MediaError", "MediaKeyMessageEvent",
	"MediaKeySession", "MediaKeyStatusMap", "MediaKeySystemAccess",
	"MediaList", "MediaMetadata", "MediaQueryList", "MediaQueryListEvent",
	"MediaSource", "MediaStream", "MediaStreamAudioDestinationNode",
	"MediaStreamAudioSourceNode", "MediaStreamEvent", "MediaStreamTrack",
	"MediaStreamTrackEvent", "MessageChannel", "MessagePort", "MimeType",
	"MimeTypeArray", "MouseEvent", "MutationEvent", "MutationObserver",
	"MutationRecord", "NamedNodeMap", "NavigationPreloadManager", "Node",
	"NodeFilter", "NodeIterator", "NodeList", "Notification",
	"OfflineAudioCompletionEvent", "OffscreenCanvas",
	"OffscreenCanvasRenderingContext2D", "Option", "OscillatorNode",
	"PageTransitionEvent", "PannerNode", "Path2D", "PaymentMethodChangeEvent",
	"PerformanceEntry", "PerformanceEventTiming", "PointerEventInit",
	"PositionSensorVRDevice", "ReadableStreamDefaultController",
	"ReadableStreamDefaultReader", "SVGAnimatedLengthList",
	"SVGClipPathElement", "SVGComponentTransferFunctionElement",
	"SVGDefsElement", "SVGDescElement", "SVGEllipseElement",
	"SVGFECompositeElement", "SVGFEFloodElement", "SVGFEGaussianBlurElement",
	"SVGFEImageElement", "SVGFEMergeElement", "SVGFEMorphologyElement",
	"SVGFEOffsetElement", "SVGFETileElement", "SVGFETurbulenceElement",
	"SVGFilterElement", "SVGForeignObjectElement", "SVGGElement",
	"SVGGeometryElement", "SVGGradientElement", "SVGGraphicsElement",
	"SVGImageElement", "SVGLength", "SVGLengthList", "SVGLineElement",
	"SVGLinearGradientElement", "SVGMarkerElement", "SVGMaskElement",
	"SVGMetadataElement", "SVGNumber", "SVGNumberList", "SVGPathElement",
	"SVGPatternElement", "SVGPoint", "SVGPointList", "SVGPolygonElement",
	"SVGPolylineElement", "SVGPreserveAspectRatio", "SVGRadialGradientElement",
	"SVGRect", "SVGRectElement", "SVGSVGElement", "SVGScriptElement",
	"SVGSetElement", "SVGStopElement", "SVGStringList", "SVGStyleElement",
	"SVGSwitchElement", "TextEvent", "TransitionEvent", "UIEvent",
	"URLSearchParams", "VTTCue", "ValidityState", "VisualViewport",
	"WaveShaperNode", "WebGLActiveInfo", "WebGLBuffer",
	"WebGLContextEvent", "WebGLProgram", "WebGLQuery", "WebGLRenderbuffer",
	"WebGLSampler", "WebGLShader", "WebSocket", "WheelEvent", "Window",
	"Worker", "XMLDocument", "XMLHttpRequest", "XMLHttpRequestUpload",
	"XMLSerializer", "XSLTProcessor",
}

var (
	registry     []string
	registrySet  map[string]bool
	appendix3Set map[string]bool
)

func init() {
	seen := make(map[string]bool, len(appendix3Protos)+len(extraProtos))
	for _, lists := range [][]string{appendix3Protos, extraProtos} {
		for _, p := range lists {
			if seen[p] {
				panic("browser: duplicate prototype in registry: " + p)
			}
			seen[p] = true
			registry = append(registry, p)
		}
	}
	sort.Strings(registry)
	registrySet = seen
	appendix3Set = make(map[string]bool, len(appendix3Protos))
	for _, p := range appendix3Protos {
		appendix3Set[p] = true
	}
}

// Registry returns all modeled prototype names, sorted. The slice is
// shared; callers must not mutate it.
func Registry() []string { return registry }

// Appendix3Protos returns the paper's 200 deviation-candidate prototypes
// in publication order. The slice is shared; callers must not mutate it.
func Appendix3Protos() []string { return appendix3Protos }

// KnownProto reports whether the registry models the prototype.
func KnownProto(name string) bool { return registrySet[name] }

// IsAppendix3 reports whether the prototype is in the paper's published
// deviation-candidate list.
func IsAppendix3(name string) bool { return appendix3Set[name] }
