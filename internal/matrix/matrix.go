// Package matrix implements the small dense linear-algebra kernel the
// Browser Polygraph training pipeline needs: row-major float64 matrices,
// products, column statistics, covariance, and a cyclic Jacobi
// eigendecomposition for symmetric matrices (used by PCA).
//
// The package favors clarity and predictable allocation over absolute
// throughput; training in this system runs offline (paper §6.5) and the
// matrices involved are modest (≲ 205k × 28).
package matrix

import (
	"fmt"
	"math"

	"polygraph/internal/parallel"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix;
// construct with NewDense or FromRows.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix. It panics if r or c is negative,
// or if both are zero while the other is not (a degenerate shape).
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equally long rows. The data is
// copied. It panics on ragged input.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: len %d want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Dims returns the matrix shape.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i backed by the matrix storage. Mutating the result
// mutates the matrix; callers that need isolation must use Row.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns m · b. It panics on shape mismatch.
func (m *Dense) Mul(b *Dense) *Dense { return m.MulWorkers(b, 0) }

// MulWorkers is Mul fanned out over the worker pool (workers <= 0 means
// GOMAXPROCS). Each output row is produced by exactly the serial loop, so
// the product is bit-identical for every worker count.
func (m *Dense) MulWorkers(b *Dense, workers int) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	parallel.For(workers, m.rows, 0, func(start, end int) {
		for i := start; i < end; i++ {
			arow := m.data[i*m.cols : (i+1)*m.cols]
			orow := out.data[i*b.cols : (i+1)*b.cols]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.data[k*b.cols : (k+1)*b.cols]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MulVec returns m · v as a new vector. It panics on shape mismatch.
func (m *Dense) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("matrix: mulvec shape mismatch %dx%d · %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// ColMeans returns the per-column mean. An empty matrix yields all zeros.
func (m *Dense) ColMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// ColStds returns the per-column population standard deviation.
func (m *Dense) ColStds() []float64 {
	stds := make([]float64, m.cols)
	if m.rows == 0 {
		return stds
	}
	means := m.ColMeans()
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	inv := 1 / float64(m.rows)
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] * inv)
	}
	return stds
}

// Covariance returns the c×c sample covariance matrix of the rows
// (dividing by n-1). A matrix with fewer than two rows yields zeros.
func (m *Dense) Covariance() *Dense { return m.CovarianceWorkers(0) }

// CovarianceWorkers is Covariance fanned out over the worker pool
// (workers <= 0 means GOMAXPROCS). Work splits over output rows, so each
// cov[a][b] cell still accumulates input rows in ascending order — the
// result is bit-identical for every worker count, including the serial
// row-buffered loop this replaced.
func (m *Dense) CovarianceWorkers(workers int) *Dense {
	cov := NewDense(m.cols, m.cols)
	if m.rows < 2 {
		return cov
	}
	means := m.ColMeans()
	parallel.For(workers, m.cols, 1, func(aStart, aEnd int) {
		for a := aStart; a < aEnd; a++ {
			crow := cov.data[a*m.cols : (a+1)*m.cols]
			meanA := means[a]
			for i := 0; i < m.rows; i++ {
				row := m.data[i*m.cols : (i+1)*m.cols]
				ca := row[a] - meanA
				if ca == 0 {
					continue
				}
				for b := a; b < m.cols; b++ {
					crow[b] += ca * (row[b] - means[b])
				}
			}
		}
	})
	inv := 1 / float64(m.rows-1)
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			v := cov.data[a*m.cols+b] * inv
			cov.data[a*m.cols+b] = v
			cov.data[b*m.cols+a] = v
		}
	}
	return cov
}

// IsSymmetric reports whether the matrix is square and symmetric within
// tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Eigen holds the result of a symmetric eigendecomposition. Values are
// sorted in descending order; Vectors column j is the unit eigenvector for
// Values[j].
type Eigen struct {
	Values  []float64
	Vectors *Dense
}

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns an error if the input is not square or
// not symmetric (tolerance 1e-9 relative to the largest entry), or if the
// iteration fails to converge.
func SymEigen(a *Dense) (*Eigen, error) {
	n := a.rows
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: SymEigen on non-square %dx%d", a.rows, a.cols)
	}
	maxAbs := 0.0
	for _, v := range a.data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if !a.IsSymmetric(1e-9*maxAbs + 1e-300) {
		return nil, fmt.Errorf("matrix: SymEigen on non-symmetric matrix")
	}
	if n == 0 {
		return &Eigen{Values: nil, Vectors: NewDense(0, 0)}, nil
	}

	w := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.data[i*n+i] = 1
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.data[i*n+j] * w.data[i*n+j]
			}
		}
		if off <= 1e-22*(maxAbs*maxAbs+1e-300)*float64(n*n) {
			return sortedEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s, n)
			}
		}
	}
	return nil, fmt.Errorf("matrix: Jacobi did not converge in %d sweeps", maxSweeps)
}

// rotate applies the Jacobi rotation J(p,q,θ) to w (two-sided) and
// accumulates it into v (one-sided).
func rotate(w, v *Dense, p, q int, c, s float64, n int) {
	for k := 0; k < n; k++ {
		wkp := w.data[k*n+p]
		wkq := w.data[k*n+q]
		w.data[k*n+p] = c*wkp - s*wkq
		w.data[k*n+q] = s*wkp + c*wkq
	}
	for k := 0; k < n; k++ {
		wpk := w.data[p*n+k]
		wqk := w.data[q*n+k]
		w.data[p*n+k] = c*wpk - s*wqk
		w.data[q*n+k] = s*wpk + c*wqk
	}
	for k := 0; k < n; k++ {
		vkp := v.data[k*n+p]
		vkq := v.data[k*n+q]
		v.data[k*n+p] = c*vkp - s*vkq
		v.data[k*n+q] = s*vkp + c*vkq
	}
}

// sortedEigen extracts diagonal eigenvalues and reorders eigenvector
// columns in descending eigenvalue order.
func sortedEigen(w, v *Dense) *Eigen {
	n := w.rows
	idx := make([]int, n)
	vals := make([]float64, n)
	for i := range idx {
		idx[i] = i
		vals[i] = w.data[i*n+i]
	}
	// Insertion sort by descending eigenvalue: n is small.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[idx[j]] > vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	vecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			vecs.data[r*n+newCol] = v.data[r*n+oldCol]
		}
	}
	return &Eigen{Values: sortedVals, Vectors: vecs}
}
