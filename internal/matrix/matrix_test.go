package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"polygraph/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("dims = %dx%d", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative dims")
		}
	}()
	NewDense(-1, 2)
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsCopies(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	m := FromRows(src)
	src[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows did not copy input")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if r, c := m.Dims(); r != 0 || c != 0 {
		t.Fatalf("empty FromRows dims = %dx%d", r, c)
	}
}

func TestAtSetBounds(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range At")
		}
	}()
	m.At(2, 0)
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	row[0] = 99
	if m.At(1, 0) != 4 {
		t.Fatal("Row returned aliased storage")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col = %v", col)
	}
	col[0] = 99
	if m.At(0, 2) != 3 {
		t.Fatal("Col returned aliased storage")
	}
}

func TestRawRowAliases(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.RawRow(0)[1] = 42
	if m.At(0, 1) != 42 {
		t.Fatal("RawRow should alias storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("transpose dims %dx%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("mul mismatch at (%d,%d): %v", i, j, got.At(i, j))
			}
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := m.MulVec([]float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulAssociatesWithIdentity(t *testing.T) {
	p := rng.New(5)
	f := func(n uint8) bool {
		size := int(n%6) + 1
		m := NewDense(size, size)
		id := NewDense(size, size)
		for i := 0; i < size; i++ {
			id.Set(i, i, 1)
			for j := 0; j < size; j++ {
				m.Set(i, j, p.NormFloat64())
			}
		}
		prod := m.Mul(id)
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if prod.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColMeansStds(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 10}, {5, 10}})
	means := m.ColMeans()
	if means[0] != 3 || means[1] != 10 {
		t.Fatalf("means = %v", means)
	}
	stds := m.ColStds()
	if !almostEqual(stds[0], math.Sqrt(8.0/3.0), 1e-12) {
		t.Fatalf("std[0] = %v", stds[0])
	}
	if stds[1] != 0 {
		t.Fatalf("constant column std = %v", stds[1])
	}
}

func TestColMeansEmpty(t *testing.T) {
	m := NewDense(0, 3)
	means := m.ColMeans()
	if len(means) != 3 || means[0] != 0 {
		t.Fatalf("empty means = %v", means)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated columns: cov = var.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := m.Covariance()
	if !almostEqual(cov.At(0, 0), 1, 1e-12) {
		t.Fatalf("var x = %v", cov.At(0, 0))
	}
	if !almostEqual(cov.At(1, 1), 4, 1e-12) {
		t.Fatalf("var y = %v", cov.At(1, 1))
	}
	if !almostEqual(cov.At(0, 1), 2, 1e-12) || !almostEqual(cov.At(1, 0), 2, 1e-12) {
		t.Fatalf("cov xy = %v", cov.At(0, 1))
	}
}

func TestCovarianceSymmetricProperty(t *testing.T) {
	p := rng.New(11)
	f := func(rows, cols uint8) bool {
		r := int(rows%20) + 2
		c := int(cols%8) + 1
		m := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, p.NormFloat64()*10)
			}
		}
		cov := m.Covariance()
		if !cov.IsSymmetric(1e-9) {
			return false
		}
		// Diagonal entries are variances: non-negative.
		for j := 0; j < c; j++ {
			if cov.At(j, j) < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 1}})
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Fatalf("values = %v", e.Values)
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Fatalf("values = %v", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v0 := []float64{e.Vectors.At(0, 0), e.Vectors.At(1, 0)}
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-8) || !almostEqual(math.Abs(v0[1]), 1/math.Sqrt2, 1e-8) {
		t.Fatalf("vector = %v", v0)
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, err := SymEigen(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
}

func TestSymEigenNonSymmetric(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymEigen(m); err == nil {
		t.Fatal("expected error for non-symmetric")
	}
}

func TestSymEigenEmpty(t *testing.T) {
	e, err := SymEigen(NewDense(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Values) != 0 {
		t.Fatalf("values = %v", e.Values)
	}
}

// TestSymEigenReconstruction checks A·v = λ·v and orthonormality of the
// eigenvector basis for random symmetric matrices.
func TestSymEigenReconstruction(t *testing.T) {
	p := rng.New(21)
	for trial := 0; trial < 25; trial++ {
		n := p.IntRange(1, 12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := p.NormFloat64() * 5
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := SymEigen(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Sorted descending.
		for k := 1; k < n; k++ {
			if e.Values[k] > e.Values[k-1]+1e-9 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, e.Values)
			}
		}
		for k := 0; k < n; k++ {
			vec := e.Vectors.Col(k)
			av := a.MulVec(vec)
			for i := 0; i < n; i++ {
				if !almostEqual(av[i], e.Values[k]*vec[i], 1e-6*(1+math.Abs(e.Values[k]))) {
					t.Fatalf("trial %d: A·v != λ·v at eig %d row %d: %v vs %v",
						trial, k, i, av[i], e.Values[k]*vec[i])
				}
			}
		}
		// Orthonormality: Vᵀ·V = I.
		vtv := e.Vectors.T().Mul(e.Vectors)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(vtv.At(i, j), want, 1e-8) {
					t.Fatalf("trial %d: VᵀV not identity at (%d,%d): %v", trial, i, j, vtv.At(i, j))
				}
			}
		}
		// Trace preservation: sum λ = trace A.
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
		}
		if !almostEqual(trace, sum, 1e-7*(1+math.Abs(trace))) {
			t.Fatalf("trial %d: trace %v != eigsum %v", trial, trace, sum)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliased storage")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !FromRows([][]float64{{1, 2}, {2, 1}}).IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	if FromRows([][]float64{{1, 2}, {2.1, 1}}).IsSymmetric(0.01) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Fatal("non-square matrix reported symmetric")
	}
}

func BenchmarkCovariance205kx28(b *testing.B) {
	p := rng.New(1)
	m := NewDense(4096, 28) // scaled-down proxy; see bench_test.go for full size
	r, c := m.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, p.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Covariance()
	}
}

func BenchmarkSymEigen28(b *testing.B) {
	p := rng.New(2)
	n := 28
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := p.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}
