package fraud

import (
	"fmt"
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/fingerprint"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

func TestCatalogIntegrity(t *testing.T) {
	tools := KnownTools()
	if len(tools) != 12 {
		t.Fatalf("catalog has %d tools, want 12 (Table 1 rows + GoLogin 3.3.23)", len(tools))
	}
	seen := map[string]bool{}
	for _, tool := range tools {
		if seen[tool.FullName()] {
			t.Fatalf("duplicate tool %s", tool.FullName())
		}
		seen[tool.FullName()] = true
		if tool.Category < Category1 || tool.Category > Category4 {
			t.Fatalf("%s has invalid category", tool.FullName())
		}
		if (tool.Category == Category1 || tool.Category == Category2) && !tool.Engine.Valid() {
			t.Fatalf("%s (cat %d) has invalid engine %v", tool.FullName(), tool.Category, tool.Engine)
		}
	}
}

func TestToolByName(t *testing.T) {
	if _, ok := ToolByName("GoLogin-3.3.23"); !ok {
		t.Fatal("GoLogin-3.3.23 not found by full name")
	}
	if tool, ok := ToolByName("Sphere"); !ok || tool.Version != "1.3" {
		t.Fatal("Sphere not found by bare name")
	}
	if _, ok := ToolByName("NotATool"); ok {
		t.Fatal("bogus name found")
	}
}

func TestDetectableTools(t *testing.T) {
	for _, tool := range DetectableTools() {
		if tool.Category != Category1 && tool.Category != Category2 {
			t.Fatalf("%s is category %d", tool.FullName(), tool.Category)
		}
	}
}

func TestCategory2FingerprintIgnoresClaim(t *testing.T) {
	tool, _ := ToolByName("GoLogin-3.3.23")
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	gen := rng.New(1)
	a := tool.Spoof(ua.Release{Vendor: ua.Chrome, Version: 114}, ua.Windows10, gen)
	b := tool.Spoof(ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Windows10, gen)
	va, vb := ext.Extract(a.Profile), ext.Extract(b.Profile)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("category-2 fingerprint changed with the claim at feature %d", i)
		}
	}
	if a.Claimed == b.Claimed {
		t.Fatal("claims should differ")
	}
	// And the fingerprint equals the embedded engine's genuine surface.
	engine := ext.Extract(browser.Profile{Release: tool.Engine, OS: ua.Windows10})
	for i := range va {
		if va[i] != engine[i] {
			t.Fatalf("category-2 fingerprint differs from engine at %d", i)
		}
	}
}

func TestCategory1FingerprintMatchesNoLegitBrowser(t *testing.T) {
	tool, _ := ToolByName("Linken Sphere-8.93")
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	spoof := tool.Spoof(ua.Release{Vendor: ua.Chrome, Version: 110}, ua.Windows10, rng.New(2))
	v := ext.Extract(spoof.Profile)
	for _, r := range ua.Universe(125) {
		legit := ext.Extract(browser.Profile{Release: r, OS: ua.Windows10})
		same := true
		for i := range v {
			if v[i] != legit[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("category-1 fingerprint identical to %s", r)
		}
	}
}

func TestCategory3FollowsClaim(t *testing.T) {
	tool, _ := ToolByName("AdsPower-5.4.20")
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	victim := ua.Release{Vendor: ua.Firefox, Version: 110}
	spoof := tool.Spoof(victim, ua.Windows10, rng.New(3))
	if spoof.Claimed != victim {
		t.Fatal("category-3 claim altered")
	}
	got := ext.Extract(spoof.Profile)
	want := ext.Extract(browser.Profile{Release: victim, OS: ua.Windows10})
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("category-3 fingerprint differs from genuine engine")
		}
	}
}

func TestSphereClampsToChromeOnly(t *testing.T) {
	tool, _ := ToolByName("Sphere-1.3")
	gen := rng.New(4)
	spoof := tool.Spoof(ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Windows10, gen)
	if spoof.Claimed.Vendor != ua.Chrome {
		t.Fatalf("Sphere claimed %s", spoof.Claimed)
	}
	if !spoof.Claimed.Valid() {
		t.Fatalf("invalid claim %v", spoof.Claimed)
	}
}

func TestClampRepairsInvalidVersions(t *testing.T) {
	tool, _ := ToolByName("CheBrowser-0.3.38")
	gen := rng.New(5)
	// Edge 40 is invalid; after vendor clamp to Chrome, version 40 is
	// below Chrome's floor and must be repaired.
	spoof := tool.Spoof(ua.Release{Vendor: ua.Edge, Version: 40}, ua.Windows10, gen)
	if !spoof.Claimed.Valid() {
		t.Fatalf("unrepaired claim %v", spoof.Claimed)
	}
	if spoof.Claimed.Vendor != ua.Chrome {
		t.Fatalf("vendor clamp failed: %v", spoof.Claimed)
	}
}

func TestAntBrowserNamespaceMarker(t *testing.T) {
	tool, _ := ToolByName("AntBrowser")
	oracle := browser.NewOracle()
	gen := rng.New(6)
	spoof := tool.Spoof(ua.Release{Vendor: ua.Firefox, Version: 102}, ua.Windows10, gen)
	plain := browser.Profile{Release: tool.Engine, OS: ua.Windows10}
	if spoof.Profile.PropertyCount(oracle, "Window") != plain.PropertyCount(oracle, "Window")+2 {
		t.Fatal("ANTBROWSER namespace marker missing from Window")
	}
}

func TestQuirkDeterministic(t *testing.T) {
	tool, _ := ToolByName("ClonBrowser-4.6.6")
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	a := tool.Spoof(ua.Release{Vendor: ua.Chrome, Version: 110}, ua.Windows10, rng.New(7))
	b := tool.Spoof(ua.Release{Vendor: ua.Chrome, Version: 110}, ua.Windows10, rng.New(8))
	va, vb := ext.Extract(a.Profile), ext.Extract(b.Profile)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("category-1 quirk not deterministic per tool")
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Category1.String() != "Category 1" || Category4.String() != "Category 4" {
		t.Fatal("category strings wrong")
	}
}

func TestFullName(t *testing.T) {
	if (Tool{Name: "X", Version: "1"}).FullName() != "X-1" {
		t.Fatal("FullName with version")
	}
	if (Tool{Name: "X"}).FullName() != "X" {
		t.Fatal("FullName without version")
	}
}

func TestModifierNames(t *testing.T) {
	q := engineQuirk("TestTool")
	if q.Name() == "" {
		t.Fatal("quirk name empty")
	}
	m := namespaceMarker("TestTool")
	if m.Name() == "" {
		t.Fatal("marker name empty")
	}
	// Marker leaves non-Window counts and booleans alone.
	if m.AdjustCount("Element", 5) != 5 {
		t.Fatal("marker touched Element")
	}
	if !m.AdjustBool("Navigator", "deviceMemory", true) {
		t.Fatal("marker flipped a boolean")
	}
}

func TestQuirkBooleanFlips(t *testing.T) {
	// The category-1 quirk flips a deterministic subset of presence
	// probes.
	q := engineQuirk("Linken Sphere-8.93")
	flipped, kept := 0, 0
	for i := 0; i < 100; i++ {
		prop := fmt.Sprintf("probe%02d", i)
		if q.AdjustBool("Element", prop, true) {
			kept++
		} else {
			flipped++
		}
	}
	if flipped == 0 || kept == 0 {
		t.Fatalf("flip distribution degenerate: %d/%d", flipped, kept)
	}
	// Deterministic.
	if q.AdjustBool("Element", "probe00", true) != engineQuirk("Linken Sphere-8.93").AdjustBool("Element", "probe00", true) {
		t.Fatal("boolean quirk not deterministic")
	}
}

func TestCategory4Spoof(t *testing.T) {
	tool := Tool{Name: "LegitInSpoofedEnv", Category: Category4}
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	victim := ua.Release{Vendor: ua.Chrome, Version: 110}
	spoof := tool.Spoof(victim, ua.Windows10, rng.New(1))
	if spoof.Claimed != victim {
		t.Fatal("category-4 claim altered")
	}
	got := ext.Extract(spoof.Profile)
	want := ext.Extract(browser.Profile{Release: victim, OS: ua.Windows10})
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("category-4 fingerprint not genuine")
		}
	}
}

func TestUnknownCategoryBehavesLikeCategory2(t *testing.T) {
	tool := Tool{Name: "Weird", Category: Category(9), Engine: chrome(105)}
	spoof := tool.Spoof(ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Windows10, rng.New(2))
	if spoof.Profile.Release != tool.Engine {
		t.Fatal("unknown category did not fall back to the engine surface")
	}
}

func TestClampVersionBounds(t *testing.T) {
	tool := Tool{Name: "Bounded", Category: Category2, Engine: chrome(100),
		UAVersionLo: 100, UAVersionHi: 110}
	gen := rng.New(3)
	low := tool.Spoof(ua.Release{Vendor: ua.Chrome, Version: 60}, ua.Windows10, gen)
	if low.Claimed.Version != 100 {
		t.Fatalf("low clamp gave %v", low.Claimed)
	}
	high := tool.Spoof(ua.Release{Vendor: ua.Chrome, Version: 120}, ua.Windows10, gen)
	if high.Claimed.Version != 110 {
		t.Fatalf("high clamp gave %v", high.Claimed)
	}
}
