package fraud

import "polygraph/internal/ua"

// chrome and firefox shorten catalog literals.
func chrome(v int) ua.Release  { return ua.Release{Vendor: ua.Chrome, Version: v} }
func firefox(v int) ua.Release { return ua.Release{Vendor: ua.Firefox, Version: v} }

// catalog models Table 1's product list. Engine choices reflect each
// product's embedded browser generation at the studied version: tools
// ship Chromium (or Firefox, for AntBrowser) builds that lag the current
// release by weeks to years, which is exactly the inconsistency Browser
// Polygraph detects.
var catalog = []Tool{
	{
		Name: "Linken Sphere", Version: "8.93", Category: Category1,
		Engine: chrome(99), // Apr 2022 build, heavily reworked engine
	},
	{
		Name: "ClonBrowser", Version: "4.6.6", Category: Category1,
		Engine: chrome(112),
	},
	{
		Name: "Incogniton", Version: "3.2.7.7", Category: Category2,
		Engine: chrome(112),
	},
	{
		Name: "GoLogin", Version: "3.2.19", Category: Category2,
		Engine: chrome(105), // Orbita engine, one era behind
	},
	{
		Name: "GoLogin", Version: "3.3.23", Category: Category2,
		Engine: chrome(105),
	},
	{
		Name: "CheBrowser", Version: "0.3.38", Category: Category2,
		Engine: chrome(108),
		// Che sells per-version Chrome profiles; only Chrome claims.
		UAVendors: []ua.Vendor{ua.Chrome},
	},
	{
		Name: "VMLogin", Version: "1.3.8.5", Category: Category2,
		Engine: chrome(106),
	},
	{
		Name: "Octo Browser", Version: "1.10", Category: Category2,
		Engine: chrome(114),
	},
	{
		Name: "Sphere", Version: "1.3", Category: Category2,
		// The free Sphere build emulates a Chrome 61-like fingerprint
		// and ships only old-Chrome user profiles (§7.2).
		Engine:    chrome(61),
		UAVendors: []ua.Vendor{ua.Chrome},
	},
	{
		Name: "AntBrowser", Version: "", Category: Category2,
		Engine:              firefox(95), // Firefox-based product
		UAVendors:           []ua.Vendor{ua.Firefox},
		AddsNamespaceMarker: true,
	},
	{
		Name: "AdsPower", Version: "4.12.27", Category: Category3,
	},
	{
		Name: "AdsPower", Version: "5.4.20", Category: Category3,
	},
}

// KnownTools returns the modeled Table 1 catalog. The slice is a copy.
func KnownTools() []Tool { return append([]Tool(nil), catalog...) }

// ToolByName finds a tool by FullName ("GoLogin-3.3.23") or bare name
// (first match).
func ToolByName(name string) (Tool, bool) {
	for _, t := range catalog {
		if t.FullName() == name || t.Name == name {
			return t, true
		}
	}
	return Tool{}, false
}

// DetectableTools returns the Category 1 and 2 products — Browser
// Polygraph's target population (§7.2).
func DetectableTools() []Tool {
	var out []Tool
	for _, t := range catalog {
		if t.Category == Category1 || t.Category == Category2 {
			out = append(out, t)
		}
	}
	return out
}
