// Package fraud simulates the anti-detect ("fraud") browsers of paper
// §2.2–2.3 and Table 1. Each tool is modeled by the behavioural category
// the paper assigns it:
//
//	Category 1 — the tool's JavaScript engine produces a fingerprint
//	             matching no legitimate browser (Linken Sphere,
//	             ClonBrowser);
//	Category 2 — the fingerprint is a fixed legitimate engine's, and does
//	             not change when the operator changes the user-agent
//	             (GoLogin, Incogniton, Octo Browser, Sphere, ...);
//	Category 3 — the tool swaps engines to match the chosen user-agent
//	             (AdsPower);
//	Category 4 — a genuine browser run in a spoofed environment.
//
// Browser Polygraph detects Categories 1 and 2 (§7.2); Categories 3 and 4
// produce engine-consistent fingerprints and are out of the coarse-grained
// technique's reach (§8, "Deployment scope") — the simulators model that
// faithfully, which is how the reproduction's recall numbers stay honest.
package fraud

import (
	"fmt"

	"polygraph/internal/browser"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// Category is a fraud-browser behaviour class (§2.3).
type Category int

const (
	// Category1 tools show fingerprints matching no legitimate browser.
	Category1 Category = iota + 1
	// Category2 tools keep one legitimate fingerprint regardless of the
	// configured user-agent.
	Category2
	// Category3 tools adopt the engine (and fingerprint) matching each
	// user-agent selection.
	Category3
	// Category4 is a legitimate browser in a spoofed environment.
	Category4
)

// String renders the category as the paper numbers it.
func (c Category) String() string { return fmt.Sprintf("Category %d", int(c)) }

// Tool models one anti-detect product.
type Tool struct {
	// Name and Version follow Table 1 ("GoLogin-3.3.23").
	Name    string
	Version string
	// Category is the Table 1 classification.
	Category Category
	// Engine is the real browser engine the tool embeds; meaningful for
	// Categories 1 and 2 (Category 1 perturbs it, Category 2 reports it
	// verbatim).
	Engine ua.Release
	// UAVendors constrains which vendors the tool can claim; nil means
	// any. UAVersionLo/Hi bound claimable versions (0 = unbounded).
	// These model per-product customization limits (§7.2: the free
	// Sphere build "limits users' ability to customize ... profiles").
	UAVendors                []ua.Vendor
	UAVersionLo, UAVersionHi int
	// AddsNamespaceMarker models products that pollute the global
	// namespace (§8: AntBrowser's ANTBROWSER object), surfacing as an
	// inflated Window property count.
	AddsNamespaceMarker bool
}

// FullName is "Name-Version".
func (t Tool) FullName() string {
	if t.Version == "" {
		return t.Name
	}
	return t.Name + "-" + t.Version
}

// Spoof is a configured fraud-browser profile: what it claims and what
// its JavaScript surface actually reports.
type Spoof struct {
	Tool    string
	Claimed ua.Release
	Profile browser.Profile
}

// Spoof configures a profile that impersonates the victim release. The
// claimed user-agent is clamped to the tool's customization limits; the
// reported surface follows the tool's category. gen drives any randomized
// choices and must not be nil.
func (t Tool) Spoof(victim ua.Release, os ua.OS, gen *rng.PCG) Spoof {
	claimed := t.clampClaim(victim, gen)
	s := Spoof{Tool: t.FullName(), Claimed: claimed}
	var mods []browser.Modifier
	if t.AddsNamespaceMarker {
		mods = append(mods, namespaceMarker(t.Name))
	}
	switch t.Category {
	case Category1:
		mods = append(mods, engineQuirk(t.FullName()))
		s.Profile = browser.Profile{Release: t.Engine, OS: os, Mods: mods}
	case Category2:
		s.Profile = browser.Profile{Release: t.Engine, OS: os, Mods: mods}
	case Category3:
		// Engine follows the claim: the fingerprint is authentic for
		// the claimed release.
		s.Profile = browser.Profile{Release: claimed, OS: os, Mods: mods}
	case Category4:
		s.Profile = browser.Profile{Release: claimed, OS: os, Mods: mods}
	default:
		// Unknown category behaves like Category 2, the common case.
		s.Profile = browser.Profile{Release: t.Engine, OS: os, Mods: mods}
	}
	return s
}

// clampClaim forces the victim user-agent into the tool's configurable
// range; when the victim is unreachable the tool substitutes the nearest
// claimable release (real operators pick the closest available profile).
func (t Tool) clampClaim(victim ua.Release, gen *rng.PCG) ua.Release {
	claimed := victim
	if len(t.UAVendors) > 0 && !containsVendor(t.UAVendors, claimed.Vendor) {
		claimed.Vendor = t.UAVendors[gen.Intn(len(t.UAVendors))]
	}
	if t.UAVersionLo != 0 && claimed.Version < t.UAVersionLo {
		claimed.Version = t.UAVersionLo
	}
	if t.UAVersionHi != 0 && claimed.Version > t.UAVersionHi {
		claimed.Version = t.UAVersionHi
	}
	// Repair invalid combinations (e.g. Edge 40) by walking to the
	// nearest valid version for the vendor.
	for !claimed.Valid() && claimed.Version < 125 {
		claimed.Version++
	}
	for !claimed.Valid() && claimed.Version > 17 {
		claimed.Version--
	}
	if !claimed.Valid() {
		claimed = t.Engine
	}
	return claimed
}

func containsVendor(vs []ua.Vendor, v ua.Vendor) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// engineQuirk builds the Category 1 signature: a fixed, tool-specific
// perturbation across many prototypes that matches no legitimate
// release's surface.
func engineQuirk(toolName string) browser.Modifier {
	return &quirkModifier{name: "quirk:" + toolName, seed: "cat1:" + toolName}
}

// quirkModifier implements browser.Modifier with hash-derived deltas: a
// deterministic function of (tool, prototype), large enough to land the
// fingerprint outside every legitimate cluster region.
type quirkModifier struct {
	name string
	seed string
}

func (q *quirkModifier) Name() string { return q.name }

func (q *quirkModifier) AdjustCount(proto string, count int) int {
	gen := rng.NewString(q.seed + ":" + proto)
	if gen.Float64() < 0.5 {
		return count // half the prototypes untouched
	}
	delta := gen.IntRange(-30, 45)
	count += delta
	if count < 0 {
		count = 0
	}
	return count
}

func (q *quirkModifier) AdjustBool(proto, prop string, val bool) bool {
	gen := rng.NewString(q.seed + ":bool:" + proto + "." + prop)
	if gen.Float64() < 0.2 {
		return !val // spoofing engines get presence probes wrong too
	}
	return val
}

// namespaceMarker inflates the Window surface the way AntBrowser's
// injected ANTBROWSER object does (§8).
func namespaceMarker(toolName string) browser.Modifier {
	return &markerModifier{tool: toolName}
}

type markerModifier struct{ tool string }

func (m *markerModifier) Name() string { return "namespace-marker:" + m.tool }

func (m *markerModifier) AdjustCount(proto string, count int) int {
	if proto == "Window" {
		return count + 2
	}
	return count
}

func (m *markerModifier) AdjustBool(proto, prop string, val bool) bool { return val }
