package serving

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/fleet"
	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

var (
	trainOnce sync.Once
	trained   *core.Model
)

func trainedModel(t testing.TB) *core.Model {
	t.Helper()
	trainOnce.Do(func() {
		logger := obs.NewLogger(nil, false)
		m, _, _, err := ObtainModel(context.Background(), true, "", 10000, false, logger)
		if err != nil {
			panic(err)
		}
		trained = m
	})
	return trained
}

func TestObtainModelTrainsInProcess(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	m, rep, baseline, err := ObtainModel(context.Background(), true, "", 10000, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 28 {
		t.Fatalf("model dim %d", m.Dim())
	}
	if m.Accuracy < 0.97 {
		t.Fatalf("accuracy %.4f", m.Accuracy)
	}
	if rep == nil || len(rep.Stages) == 0 {
		t.Fatal("in-process training returned no stage timings")
	}
	if len(baseline) == 0 || len(baseline[0]) != m.Dim() {
		t.Fatalf("training should return baseline vectors for drift, got %d", len(baseline))
	}
}

func TestObtainModelLoadsFromDisk(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	m := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, rep, baseline, err := ObtainModel(context.Background(), false, path, 0, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != m.Dim() || loaded.Accuracy != m.Accuracy {
		t.Fatal("loaded model differs")
	}
	if rep != nil {
		t.Fatal("file load should not fabricate a train report")
	}
	if baseline != nil {
		t.Fatal("file load should not fabricate a drift baseline")
	}
}

func TestObtainModelNoveltyGuard(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	m, _, _, err := ObtainModel(context.Background(), true, "", 10000, true, logger)
	if err != nil {
		t.Fatal(err)
	}
	if m.NoveltyThreshold <= 0 {
		t.Fatal("novelty guard not armed")
	}
}

func TestObtainModelMissingFile(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	if _, _, _, err := ObtainModel(context.Background(), false, filepath.Join(t.TempDir(), "no.json"), 0, false, logger); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestObtainModelCancelledTraining(t *testing.T) {
	logger := obs.NewLogger(os.Stderr, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := ObtainModel(ctx, true, "", 10000, false, logger)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestReplicaWarmsUpThroughAdminPush(t *testing.T) {
	m := trainedModel(t)
	wantHash, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}

	r, err := New(context.Background(), Config{Name: "warm-0", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}

	// Warming: scoring surface and health fail closed.
	resp, err := http.Get(r.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming healthz returned %d, want 503", resp.StatusCode)
	}
	if r.ModelHash() != "" {
		t.Fatalf("warming replica reports hash %q", r.ModelHash())
	}

	// Distribution through the real controller path.
	b, err := fleet.NewBalancer(fleet.Config{Seed: 1, ExpectHash: wantHash},
		fleet.Member{Name: "warm-0", BaseURL: r.BaseURL()})
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&fleet.Controller{}).Distribute(context.Background(), b, m)
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if !results[0].Admitted || results[0].Hash != wantHash {
		t.Fatalf("push result %+v, want admitted with hash %s", results[0], wantHash)
	}
	if r.ModelHash() != wantHash {
		t.Fatalf("deployed hash %s, want %s", r.ModelHash(), wantHash)
	}

	// Deployed: health opens up and the admin view matches.
	resp, err = http.Get(r.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deployed healthz returned %d", resp.StatusCode)
	}
	info, err := fleet.FetchModelInfo(context.Background(), http.DefaultClient, r.BaseURL())
	if err != nil {
		t.Fatal(err)
	}
	if info.Hash != wantHash || info.Features != m.Dim() {
		t.Fatalf("admin info %+v", info)
	}
}

func TestReplicaKillStopsListenerKeepsCounters(t *testing.T) {
	r, err := New(context.Background(), Config{Name: "kill-0", Addr: "127.0.0.1:0", Model: trainedModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if r.ModelHash() == "" {
		t.Fatal("Config.Model was not deployed at startup")
	}
	resp, err := http.Get(r.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	r.Kill()
	if _, err := http.Get(r.BaseURL() + "/healthz"); err == nil {
		t.Fatal("killed replica still answers HTTP")
	}
	// In-process surfaces survive the kill.
	if got := r.Stats(); got.Received < 0 {
		t.Fatalf("stats unreadable after kill: %+v", got)
	}
	if exp := r.MetricsExposition(); !strings.Contains(exp, "polygraph_build_info") {
		t.Fatal("metrics exposition unreadable after kill")
	}
	member := r.Member()
	if _, err := member.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop did not exit after kill")
	}
	if !r.Killed() {
		t.Fatal("Killed() not reported")
	}
}

func TestReplicaReloadRetrainsAndKeepsServing(t *testing.T) {
	if testing.Short() {
		t.Skip("retrain reload is slow")
	}
	r, err := New(context.Background(), Config{
		Name: "reload-0", Addr: "127.0.0.1:0",
		Train: true, Sessions: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	before := r.ModelHash()
	if !r.TriggerReload() {
		t.Fatal("reload not started")
	}
	if r.TriggerReload() {
		t.Fatal("second trigger during reload should be dropped")
	}
	select {
	case err := <-r.ReloadDone():
		if err != nil {
			t.Fatalf("reload: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("reload did not finish")
	}
	// Deterministic pipeline: same sessions, same model, same hash.
	if after := r.ModelHash(); after != before {
		t.Fatalf("retrain changed hash %s -> %s", before, after)
	}
}

func TestReplicaFleetManagedHasNoReloadSource(t *testing.T) {
	r, err := New(context.Background(), Config{Name: "managed", Model: trainedModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.TriggerReload() {
		t.Fatal("fleet-managed replica accepted a reload trigger")
	}
}

// TestReplicaSLOEngine pins the serving wiring: Config.SLOSpec arms a
// burn-rate engine on first deployment, the replica mux serves GET
// /debug/slo, and the replica's own exposition carries the
// polygraph_slo_* families.
func TestReplicaSLOEngine(t *testing.T) {
	r, err := New(context.Background(), Config{
		Name: "slo-0", Addr: "127.0.0.1:0", Model: trainedModel(t),
		SLOSpec: slo.DefaultSpec(),
		// A long interval keeps the background loop quiet; the test
		// ticks the engine explicitly.
		SLOInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	eng := r.SLO()
	if eng == nil {
		t.Fatal("no SLO engine after deployment with Config.SLOSpec")
	}

	resp, err := http.Get(r.BaseURL() + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo returned %d", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), `"spec": "polygraph-default"`) {
		t.Fatalf("/debug/slo page missing spec name:\n%s", body[:n])
	}

	// One explicit tick self-scrapes the replica's exposition.
	if err := eng.TickNow(); err != nil {
		t.Fatalf("tick: %v", err)
	}
	if eng.Status().Tick != 1 {
		t.Fatalf("tick %d, want 1", eng.Status().Tick)
	}
	if !strings.Contains(r.MetricsExposition(), "polygraph_slo_alert") {
		t.Fatal("replica exposition missing polygraph_slo_* families")
	}

	// No spec, no engine: the default configuration stays unchanged.
	r2, err := New(context.Background(), Config{Name: "slo-off", Model: trainedModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.SLO() != nil {
		t.Fatal("engine attached without Config.SLOSpec")
	}
}
