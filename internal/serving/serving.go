// Package serving is the reusable replica runtime extracted from
// cmd/polygraphd: everything a scoring replica needs — model
// obtain/deploy, the collect server, drift telemetry, decision journal,
// audit ledger, hot reload — behind one Replica type, so a process can
// run one replica (the daemon) or a test harness can run N in-process
// (the fleet smoke drill).
//
// A Replica can boot in two modes:
//
//   - Deployed: Config carries a model source (Model, Train, or
//     ModelPath) and the replica serves from startup — the standalone
//     polygraphd path.
//   - Warming: no model source. Every scoring endpoint (and /healthz)
//     answers 503 until a model arrives through the admin endpoint —
//     the fleet path, where the control plane trains once, pushes the
//     model to every replica, and hash-verifies the deployment before
//     admitting the replica to rotation (internal/fleet). A warming
//     replica that never receives a model never serves a request, which
//     is exactly the fail-closed behavior a fraud scorer wants.
//
// The admin surface (fleet.AdminModelPath) is mounted on the same
// listener as the collect endpoints: GET returns the deployed model's
// identity (hash, dims, accuracy), POST deserializes a model from the
// body, hot-swaps it in, and echoes the deployed hash back so the
// pusher can verify byte-exact distribution.
package serving

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/audit"
	"polygraph/internal/bundle"
	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/fleet"
	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

// Config assembles one replica. The zero value is not servable: set a
// Name and either a model source or expect a fleet push.
type Config struct {
	// Name identifies the replica in logs and fleet membership.
	Name string
	// Addr is the listen address (":0" for an ephemeral port).
	Addr string

	// Model deploys this in-memory model at startup (takes precedence
	// over Train/ModelPath).
	Model *core.Model
	// Train trains a fresh model in-process at startup and on reload.
	Train bool
	// ModelPath loads the model from this file when Train is unset.
	ModelPath string
	// Sessions is the training-set size when Train is set.
	Sessions int
	// Novelty arms the novelty guard when training.
	Novelty bool

	// RateLimitPerSec is the per-client-IP ingest rate limit (0 = off).
	RateLimitPerSec float64
	// ReloadTimeout bounds a TriggerReload retrain (default 5m).
	ReloadTimeout time.Duration

	// JournalDir enables the durable flagged-decision journal.
	JournalDir string
	// AuditDir enables the checksummed decision audit ledger.
	AuditDir string
	// AuditSample records every Nth benign decision (default 1).
	AuditSample int
	// AuditMaxBytes rotates audit segments beyond this size (0 = default).
	AuditMaxBytes int64

	// DriftInterval drives the live PSI evaluation loop (0 = off).
	DriftInterval time.Duration
	// DriftReservoir is the live-traffic sample size for drift PSI.
	DriftReservoir int

	// TraceRingSize, TraceSeed, SlowRequest configure request tracing.
	TraceRingSize int
	TraceSeed     uint64
	SlowRequest   time.Duration

	// Debug mounts pprof and expvar on the serving mux, which makes
	// the replica fully self-snapshotting: GET /debug/bundle can then
	// include profiles without a separate -debug-addr listener. Fleet
	// rigs and tests enable it; polygraphd keeps its dedicated debug
	// listener instead.
	Debug bool

	// SLOSpec arms the burn-rate engine on first model deployment: the
	// replica self-scrapes its own exposition on every SLOInterval tick,
	// exports the polygraph_slo_* families at /metrics, and serves
	// GET /debug/slo. Nil disables the engine.
	SLOSpec *slo.Spec
	// SLOInterval is the engine's tick cadence (0 = 10s). Tests and
	// loadgen rigs usually skip Run and tick explicitly instead.
	SLOInterval time.Duration

	// Logger receives replica events; nil discards.
	Logger *slog.Logger
}

// Replica is one serving instance: listener, collect server, admin
// surface, and the operational subsystems polygraphd used to wire
// inline. Create with New, serve with Start, stop with Close (graceful)
// or Kill (abrupt — the fleet drill's failure injection).
type Replica struct {
	cfg    Config
	logger *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc

	mux     *http.ServeMux
	httpSrv *http.Server
	ln      net.Listener
	done    chan error

	journal *collect.Journal
	ledger  *audit.Ledger

	// srv and model are nil until the first deployment (warming state).
	srv   atomic.Pointer[collect.Server]
	model atomic.Pointer[core.Model]

	// sloEng is built on first deployment when cfg.SLOSpec is set.
	sloEng atomic.Pointer[slo.Engine]

	deployMu sync.Mutex // serializes create-vs-swap on first deployment
	driftMon *obs.DriftMonitor

	reloading atomic.Bool
	// ReloadDone receives one nil/error per finished TriggerReload;
	// buffered so nobody has to listen. Tests and the daemon's log line
	// both hang off it.
	reloadDone chan error

	killed atomic.Bool
}

// New builds the replica and, when cfg names a model source, obtains
// and deploys the initial model under ctx (a canceled ctx aborts a slow
// in-process training run promptly — same contract obtainModel had in
// polygraphd's main).
func New(ctx context.Context, cfg Config) (*Replica, error) {
	if cfg.Name == "" {
		cfg.Name = "replica"
	}
	if cfg.ReloadTimeout <= 0 {
		cfg.ReloadTimeout = 5 * time.Minute
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(nil, false)
	}
	logger = logger.With("replica", cfg.Name)

	rctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	r := &Replica{
		cfg:        cfg,
		logger:     logger,
		ctx:        rctx,
		cancel:     cancel,
		done:       make(chan error, 1),
		reloadDone: make(chan error, 4),
	}

	if cfg.JournalDir != "" {
		journal, err := collect.OpenJournal(cfg.JournalDir, "decisions", 0)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("serving: journal: %w", err)
		}
		r.journal = journal
		logger.Info("journaling flagged decisions", "dir", cfg.JournalDir)
	}
	if cfg.AuditDir != "" {
		sample := cfg.AuditSample
		if sample <= 0 {
			sample = 1
		}
		ledger, err := audit.Open(audit.Config{
			Dir:          cfg.AuditDir,
			MaxBytes:     cfg.AuditMaxBytes,
			SampleBenign: sample,
		})
		if err != nil {
			r.closeStores()
			cancel()
			return nil, fmt.Errorf("serving: audit: %w", err)
		}
		r.ledger = ledger
		logger.Info("auditing decisions", "dir", cfg.AuditDir, "benign_sample", sample)
	}

	mux := http.NewServeMux()
	mux.HandleFunc(fleet.AdminModelPath, r.handleAdminModel)
	// Read-only alias: the support-bundle capture path. GET /admin/model
	// answers the same, but the alias keeps provenance reads apart from
	// the push surface in access logs.
	mux.HandleFunc("GET "+bundle.AdminModelInfoPath, r.handleAdminModelInfo)
	// The self-snapshot endpoint is mounted above the warming catchall
	// on purpose: a replica stuck warming is exactly the one an operator
	// wants a bundle from.
	mux.HandleFunc("GET /debug/bundle", r.handleBundle)
	if cfg.Debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.Handle("GET /debug/vars", expvar.Handler())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		srv := r.srv.Load()
		if srv == nil {
			// Warming: fail closed until a model is deployed and verified.
			http.Error(w, "no model deployed", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, req)
	})
	r.mux = mux

	if cfg.Model != nil {
		if _, err := r.DeployModel(cfg.Model); err != nil {
			r.closeStores()
			cancel()
			return nil, err
		}
		r.srv.Load().SetModelTrainedAt(time.Now())
	} else if cfg.Train || cfg.ModelPath != "" {
		model, report, baseline, err := ObtainModel(ctx, cfg.Train, cfg.ModelPath, cfg.Sessions, cfg.Novelty, logger)
		if err != nil {
			r.closeStores()
			cancel()
			return nil, err
		}
		if _, err := r.DeployModel(model); err != nil {
			r.closeStores()
			cancel()
			return nil, err
		}
		r.applyProvenance(report, baseline)
		logger.Info("model ready",
			"features", model.Dim(), "clusters", model.KMeans.K,
			"accuracy_pct", fmt.Sprintf("%.2f", 100*model.Accuracy))
		if report != nil {
			for _, st := range report.Stages {
				logger.Info("train stage", "stage", st.Name,
					"ms", fmt.Sprintf("%.1f", float64(st.Duration.Microseconds())/1000),
					"rows_in", st.RowsIn, "rows_out", st.RowsOut)
			}
		}
	}
	return r, nil
}

func (r *Replica) closeStores() {
	if r.journal != nil {
		r.journal.Close()
	}
	if r.ledger != nil {
		r.ledger.Close()
	}
}

// applyProvenance records where the deployed model came from: training
// stage timings and a drift baseline for in-process trains, the model
// file's mtime as the staleness proxy for file loads.
func (r *Replica) applyProvenance(report *core.TrainReport, baseline [][]float64) {
	srv := r.srv.Load()
	if srv == nil {
		return
	}
	if report != nil {
		srv.SetTrainStages(report.Stages)
		srv.SetModelTrainedAt(time.Now())
	} else if fi, err := os.Stat(r.cfg.ModelPath); err == nil {
		srv.SetModelTrainedAt(fi.ModTime())
	}
	if r.driftMon != nil && baseline != nil {
		if err := r.driftMon.SetBaseline(baseline, 0); err != nil {
			r.logger.Warn("drift baseline rejected", "err", err.Error())
		}
	}
}

// DeployModel hot-swaps m into the replica (building the collect server
// and drift monitor on first deployment) and returns the deployed
// model's hash — the value the fleet controller verifies against its
// own before admission.
func (r *Replica) DeployModel(m *core.Model) (string, error) {
	r.deployMu.Lock()
	defer r.deployMu.Unlock()
	if srv := r.srv.Load(); srv != nil {
		if err := srv.SwapModel(m); err != nil {
			return "", fmt.Errorf("serving: swap model: %w", err)
		}
		r.model.Store(m)
		return srv.ModelHash(), nil
	}
	// First deployment: the drift monitor needs the model's feature
	// names and the collect server needs the model, so both wait here
	// rather than in New.
	if r.cfg.DriftInterval > 0 {
		mon, err := obs.NewDriftMonitor(obs.DriftConfig{
			Features:  fingerprint.Names(m.Features),
			Reservoir: r.cfg.DriftReservoir,
			Seed:      r.cfg.TraceSeed,
			Logger:    r.logger,
		})
		if err != nil {
			return "", fmt.Errorf("serving: drift: %w", err)
		}
		r.driftMon = mon
		go mon.Run(r.ctx, r.cfg.DriftInterval)
	}
	srv, err := collect.NewServer(collect.Config{
		Model:           m,
		Logger:          r.logger,
		RateLimitPerSec: r.cfg.RateLimitPerSec,
		TraceRingSize:   r.cfg.TraceRingSize,
		TraceSeed:       r.cfg.TraceSeed,
		SlowRequest:     r.cfg.SlowRequest,
		Drift:           r.driftMon,
		Journal:         r.journal,
		Audit:           r.ledger,
	})
	if err != nil {
		return "", fmt.Errorf("serving: server: %w", err)
	}
	if r.cfg.SLOSpec != nil {
		interval := r.cfg.SLOInterval
		if interval <= 0 {
			interval = 10 * time.Second
		}
		eng, err := slo.NewEngine(slo.Config{
			Spec:      r.cfg.SLOSpec,
			IntervalS: int(interval / time.Second),
			Scope:     "replica " + r.cfg.Name,
			Logger:    r.logger,
			Source: func() *obs.Exposition {
				return obs.ParseExpositionString(srv.MetricsText())
			},
		})
		if err != nil {
			return "", fmt.Errorf("serving: slo engine: %w", err)
		}
		srv.SetSLO(eng)
		r.sloEng.Store(eng)
		go eng.Run(r.ctx, interval)
	}
	r.model.Store(m)
	r.srv.Store(srv)
	return srv.ModelHash(), nil
}

// SLO returns the replica's burn-rate engine (nil until a model is
// deployed with Config.SLOSpec set).
func (r *Replica) SLO() *slo.Engine { return r.sloEng.Load() }

// handleAdminModel is the distribution endpoint: POST deploys the model
// serialized in the body and echoes the deployed identity, GET reports
// the current one. The POST response hash is computed by the replica
// from what it actually deserialized — a corrupted upload therefore
// reports a different hash and the controller refuses the replica.
// handleAdminModelInfo is the read-only provenance view
// (GET /admin/model/info) — same body as GET /admin/model.
func (r *Replica) handleAdminModelInfo(w http.ResponseWriter, req *http.Request) {
	m := r.model.Load()
	if m == nil {
		http.Error(w, "no model deployed", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.modelInfo(m))
}

// handleBundle streams a self-snapshot support bundle of this replica:
// GET /debug/bundle?pprof_seconds=2&no-redact=1. Collection goes
// through the replica's own mux in-process, so the snapshot works even
// while the replica is warming (the scoring endpoints just record 503
// collector errors — itself a diagnosis).
func (r *Replica) handleBundle(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	seconds := 0
	if v := q.Get("pprof_seconds"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 || parsed > 30 {
			http.Error(w, fmt.Sprintf("bad pprof_seconds %q (want 0..30)", v), http.StatusBadRequest)
			return
		}
		seconds = parsed
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", "polygraph-bundle-"+bundle.SanitizeName(r.cfg.Name)+".tgz"))
	if _, err := bundle.Capture(req.Context(), w, bundle.Options{
		Targets:      []bundle.Target{r.BundleTarget()},
		NoRedact:     q.Get("no-redact") == "1",
		PprofSeconds: seconds,
		SkipPprof:    !r.cfg.Debug,
		Tool:         obs.Version("serving").String(),
	}); err != nil {
		// Headers are gone; all we can do is log and cut the stream.
		r.logger.Warn("bundle capture failed", "err", err.Error())
	}
}

// BundleTarget adapts the replica for in-process bundle capture: every
// fetch is served straight off the replica's mux, no listener needed.
// Fleet rigs hand these to bundle.Capture to snapshot killed or
// quiesced replicas that no longer accept connections.
func (r *Replica) BundleTarget() bundle.Target {
	return bundle.Target{
		Name:    r.cfg.Name,
		BaseURL: r.BaseURL(),
		Fetch: func(ctx context.Context, path string) ([]byte, error) {
			rec := httptest.NewRecorder()
			r.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx))
			if rec.Code != http.StatusOK {
				msg := strings.TrimSpace(rec.Body.String())
				if len(msg) > 120 {
					msg = msg[:120]
				}
				return nil, fmt.Errorf("%s: %d %s", path, rec.Code, msg)
			}
			return rec.Body.Bytes(), nil
		},
	}
}

func (r *Replica) handleAdminModel(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		m := r.model.Load()
		if m == nil {
			http.Error(w, "no model deployed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.modelInfo(m))
	case http.MethodPost:
		m, err := core.Load(io.LimitReader(req.Body, 64<<20))
		if err != nil {
			http.Error(w, fmt.Sprintf("decode model: %v", err), http.StatusBadRequest)
			return
		}
		if _, err := r.DeployModel(m); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		r.srv.Load().SetModelTrainedAt(time.Now())
		r.logger.Info("model deployed via admin push", "model_hash", r.ModelHash())
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.modelInfo(m))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (r *Replica) modelInfo(m *core.Model) fleet.ModelInfo {
	hash := ""
	if srv := r.srv.Load(); srv != nil {
		hash = srv.ModelHash()
	}
	return fleet.ModelInfo{
		Hash:     hash,
		Features: m.Dim(),
		Clusters: m.KMeans.K,
		Accuracy: m.Accuracy,
	}
}

// Start binds the listener and serves until Close/Kill. It returns once
// the listener is bound, so Addr/BaseURL are valid immediately after.
func (r *Replica) Start() error {
	if r.ln != nil {
		return errors.New("serving: already started")
	}
	addr := r.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serving: listen: %w", err)
	}
	r.ln = ln
	r.httpSrv = &http.Server{
		Handler:           r.mux,
		ReadHeaderTimeout: 5 * time.Second,
		// Ingest bodies are ≤1 KB and scoring takes microseconds, so
		// these bounds are generous for legitimate clients while keeping
		// slow-loris connections from pinning goroutines.
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  120 * time.Second,
	}
	go func() {
		err := r.httpSrv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		r.done <- err
	}()
	r.logger.Info("listening", "addr", ln.Addr().String())
	return nil
}

// Done delivers the serve loop's terminal error (nil on clean close).
func (r *Replica) Done() <-chan error { return r.done }

// Addr returns the bound listen address ("" before Start).
func (r *Replica) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// BaseURL returns the replica's serving root ("" before Start).
func (r *Replica) BaseURL() string {
	a := r.Addr()
	if a == "" {
		return ""
	}
	return "http://" + a
}

// Name returns the replica's configured name.
func (r *Replica) Name() string { return r.cfg.Name }

// Server exposes the collect server (nil while warming) for surfaces
// the daemon mounts elsewhere, like the pprof listener's trace ring.
func (r *Replica) Server() *collect.Server { return r.srv.Load() }

// ModelHash returns the deployed model's hash ("" while warming).
func (r *Replica) ModelHash() string {
	if srv := r.srv.Load(); srv != nil {
		return srv.ModelHash()
	}
	return ""
}

// Stats snapshots the replica's counters in-process — readable even
// after Kill, which is what lets the fleet harness reconcile a drill
// where one replica died mid-run.
func (r *Replica) Stats() collect.Stats {
	if srv := r.srv.Load(); srv != nil {
		return srv.Snapshot()
	}
	return collect.Stats{}
}

// MetricsExposition renders the replica's /metrics page in-process
// (same handler, no network), surviving a killed listener.
func (r *Replica) MetricsExposition() string {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	r.mux.ServeHTTP(rec, req)
	return rec.Body.String()
}

// Member adapts the replica for fleet membership. Liveness probes go
// over HTTP (a killed replica must probe dead), while stats and metrics
// resolve in-process (a killed replica's counters must stay readable
// for client-vs-sum-of-replicas reconciliation).
func (r *Replica) Member() fleet.Member {
	return fleet.Member{
		Name:    r.cfg.Name,
		BaseURL: r.BaseURL(),
		Stats: func(context.Context) (collect.Stats, error) {
			return r.Stats(), nil
		},
		Metrics: func(context.Context) (string, error) {
			return r.MetricsExposition(), nil
		},
	}
}

// RotateAudit seals the active audit segment (no-op without a ledger) —
// polygraphd calls this on SIGHUP so operators can archive sealed
// segments on the same signal that reloads the model.
func (r *Replica) RotateAudit() error {
	if r.ledger == nil {
		return nil
	}
	return r.ledger.Rotate()
}

// TriggerReload re-obtains the model from the configured source (file
// reread, or in-process retrain under ReloadTimeout) and hot-swaps it
// in, asynchronously and single-flight: a trigger during a running
// reload is dropped (returns false). The outcome is logged and also
// delivered on ReloadDone. A failed or canceled reload keeps the
// current model serving.
func (r *Replica) TriggerReload() bool {
	if !r.cfg.Train && r.cfg.ModelPath == "" {
		return false // fleet-managed replica: the controller owns the model
	}
	if !r.reloading.CompareAndSwap(false, true) {
		r.logger.Info("reload already in progress, ignoring trigger")
		return false
	}
	go func() {
		defer r.reloading.Store(false)
		rctx, cancel := context.WithTimeout(r.ctx, r.cfg.ReloadTimeout)
		defer cancel()
		model, report, baseline, err := ObtainModel(rctx, r.cfg.Train, r.cfg.ModelPath, r.cfg.Sessions, r.cfg.Novelty, r.logger)
		if err == nil {
			_, err = r.DeployModel(model)
		}
		if err != nil {
			if errors.Is(err, core.ErrCanceled) {
				r.logger.Warn("reload canceled, keeping current model", "err", err.Error())
			} else {
				r.logger.Warn("reload failed, keeping current model", "err", err.Error())
			}
		} else {
			r.applyProvenance(report, baseline)
			r.logger.Info("reloaded model",
				"accuracy_pct", fmt.Sprintf("%.2f", 100*model.Accuracy),
				"model_hash", r.ModelHash())
		}
		select {
		case r.reloadDone <- err:
		default:
		}
	}()
	return true
}

// ReloadDone delivers one value per finished TriggerReload.
func (r *Replica) ReloadDone() <-chan error { return r.reloadDone }

// Kill abruptly closes the listener and all in-flight connections —
// the fleet drill's failure injection. Counters and the audit ledger
// stay readable in-process; Close must still be called to flush them.
func (r *Replica) Kill() {
	if !r.killed.CompareAndSwap(false, true) {
		return
	}
	if r.httpSrv != nil {
		r.httpSrv.Close()
	}
	r.logger.Warn("replica killed")
}

// Drain takes the replica out of service gracefully: in-flight requests
// complete with responses, then the listener closes; new connections are
// refused. This is the failure mode the fleet kill drill injects when
// the reconciliation must stay exact — a hard Kill can sever a
// connection after the server scored the request but before the client
// read the response, so the client's retry would score the same request
// twice on another replica. Counters stay readable in-process, and Close
// must still be called to flush the journal and ledger.
func (r *Replica) Drain() {
	if !r.killed.CompareAndSwap(false, true) {
		return
	}
	if r.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		r.httpSrv.Shutdown(ctx)
		cancel()
	}
	r.logger.Warn("replica drained out of service")
}

// Killed reports whether Kill was called.
func (r *Replica) Killed() bool { return r.killed.Load() }

// Close shuts the replica down gracefully: drain the listener, stop the
// drift loop, close the journal and seal the audit ledger.
func (r *Replica) Close() error {
	var firstErr error
	if r.httpSrv != nil && !r.killed.Load() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := r.httpSrv.Shutdown(ctx); err != nil {
			firstErr = err
		}
		cancel()
	}
	r.cancel()
	if r.journal != nil {
		if err := r.journal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if r.ledger != nil {
		if err := r.ledger.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
