package serving

import (
	"context"
	"fmt"
	"log/slog"
	"os"

	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/ua"
)

// ObtainModel produces a serving model under ctx: either by loading the
// file at path or, when train is set, by generating traffic and
// training in-process (cancellable mid-stage — see core.TrainContext).
// The report and baseline (the training feature vectors, for the drift
// monitor) are nil when the model came from a file.
func ObtainModel(ctx context.Context, train bool, path string, sessions int, novelty bool, logger *slog.Logger) (*core.Model, *core.TrainReport, [][]float64, error) {
	if !train {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("open %s (use -train to train in-process): %w", path, err)
		}
		defer f.Close()
		m, err := core.Load(f)
		return m, nil, nil, err
	}
	logger.Info("training in-process", "sessions", sessions)
	cfg := dataset.DefaultConfig()
	cfg.Sessions = sessions
	traffic, err := dataset.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	samples := traffic.Samples()
	tc := core.DefaultTrainConfig()
	tc.NoveltyGuard = novelty
	tc.Reference = core.ExtractorReference{Extractor: traffic.Extractor, OS: ua.Windows10}
	m, rep, err := core.TrainContext(ctx, samples, tc)
	if err != nil {
		return nil, nil, nil, err
	}
	baseline := make([][]float64, len(samples))
	for i := range samples {
		baseline[i] = samples[i].Vector
	}
	return m, rep, baseline, nil
}
