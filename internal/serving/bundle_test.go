package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"polygraph/internal/bundle"
	"polygraph/internal/fleet"
)

// startReplica builds and starts a deployed, self-snapshotting replica.
func startReplica(t *testing.T, name string) *Replica {
	t.Helper()
	r, err := New(context.Background(), Config{
		Name:        name,
		Addr:        "127.0.0.1:0",
		Model:       trainedModel(t),
		Debug:       true,
		AuditDir:    t.TempDir(),
		AuditSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestReplicaDebugBundleEndpoint(t *testing.T) {
	r := startReplica(t, "bundle-0")

	resp, err := http.Get(r.BaseURL() + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/bundle = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "polygraph-bundle-bundle-0.tgz") {
		t.Fatalf("Content-Disposition = %q", cd)
	}

	bb, err := bundle.Read(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bb.Manifest.Redacted {
		t.Fatal("bundle not marked redacted by default")
	}
	tm := bb.Manifest.Target("bundle-0")
	if tm == nil {
		t.Fatalf("target bundle-0 missing; manifest %+v", bb.Manifest)
	}
	for _, want := range []string{
		bundle.ArtifactHealth, bundle.ArtifactMetrics, bundle.ArtifactStats,
		bundle.ArtifactTraces, bundle.ArtifactDecisions, bundle.ArtifactModelInfo,
		bundle.ArtifactExpvar, bundle.ArtifactPprofHeap,
	} {
		found := false
		for _, a := range tm.Artifacts {
			if a.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("bundle missing %s; artifacts %+v, errors %+v", want, tm.Artifacts, tm.Errors)
		}
	}
	var info fleet.ModelInfo
	if err := json.Unmarshal(bb.TargetFile("bundle-0", bundle.ArtifactModelInfo), &info); err != nil {
		t.Fatal(err)
	}
	if info.Hash != r.ModelHash() {
		t.Fatalf("bundled model hash %q != deployed %q", info.Hash, r.ModelHash())
	}

	// The captured bundle analyzes clean.
	if findings := bundle.Analyze(bb, bundle.AnalyzeOptions{}); bundle.HasFailure(findings) {
		t.Fatalf("healthy replica bundle fails analysis: %v", findings)
	}
}

func TestReplicaDebugBundleRejectsBadPprofSeconds(t *testing.T) {
	r := startReplica(t, "bundle-bad")
	for _, q := range []string{"pprof_seconds=99", "pprof_seconds=-1", "pprof_seconds=x"} {
		resp, err := http.Get(r.BaseURL() + "/debug/bundle?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /debug/bundle?%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestAdminModelInfoGetAlias(t *testing.T) {
	r := startReplica(t, "info-0")
	resp, err := http.Get(r.BaseURL() + bundle.AdminModelInfoPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", bundle.AdminModelInfoPath, resp.StatusCode)
	}
	var info fleet.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Hash != r.ModelHash() || info.Features == 0 {
		t.Fatalf("model info %+v", info)
	}
}

// A drained replica has no listener, but its BundleTarget still
// snapshots everything through the mux in-process.
func TestBundleTargetWorksAfterDrain(t *testing.T) {
	r := startReplica(t, "drain-0")
	r.Drain()

	var buf bytes.Buffer
	ctx := context.Background()
	manifest, err := bundle.Capture(ctx, &buf, bundle.Options{
		Targets:   []bundle.Target{r.BundleTarget()},
		SkipPprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := manifest.Target("drain-0")
	if tm == nil {
		t.Fatal("drained target missing")
	}
	names := map[string]bool{}
	for _, a := range tm.Artifacts {
		names[a.Name] = true
	}
	if !names[bundle.ArtifactMetrics] || !names[bundle.ArtifactModelInfo] {
		t.Fatalf("drained capture lost core artifacts: %+v (errors %+v)", tm.Artifacts, tm.Errors)
	}
}

// The acceptance scenario: a 3-replica fleet with one killed replica.
// The capture must list every live replica's artifact set and turn the
// dead replica into recorded collector errors — never a failed bundle.
func TestFleetWideBundleCaptureWithDeadReplica(t *testing.T) {
	m := trainedModel(t)
	wantHash, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}

	var reps []*Replica
	var members []fleet.Member
	for i := 0; i < 3; i++ {
		r := startReplica(t, fmt.Sprintf("fr%d", i))
		reps = append(reps, r)
		members = append(members, r.Member())
	}
	b, err := fleet.NewBalancer(fleet.Config{Seed: 1, ExpectHash: wantHash}, members...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&fleet.Controller{}).Distribute(context.Background(), b, m); err != nil {
		t.Fatal(err)
	}

	// Kill one replica: listener gone, in-memory counters remain.
	reps[2].Kill()

	var buf bytes.Buffer
	manifest, err := bundle.Capture(context.Background(), &buf, bundle.Options{
		Targets:      b.BundleTargets(),
		FleetMetrics: b.WriteMetrics,
		SkipPprof:    true,
		Config:       map[string]any{"fleet": 3},
	})
	if err != nil {
		t.Fatalf("fleet capture must succeed with a dead replica: %v", err)
	}
	if len(manifest.Targets) != 3 {
		t.Fatalf("captured %d targets, want 3", len(manifest.Targets))
	}

	for i := 0; i < 2; i++ {
		tm := manifest.Target(fmt.Sprintf("fr%d", i))
		if tm == nil {
			t.Fatalf("live replica fr%d missing", i)
		}
		names := map[string]bool{}
		for _, a := range tm.Artifacts {
			names[a.Name] = true
		}
		for _, want := range []string{bundle.ArtifactMetrics, bundle.ArtifactStats,
			bundle.ArtifactTraces, bundle.ArtifactDecisions, bundle.ArtifactModelInfo} {
			if !names[want] {
				t.Errorf("live fr%d missing %s (errors %+v)", i, want, tm.Errors)
			}
		}
	}

	// Dead replica: the member overrides still snapshot metrics and
	// stats in-process; everything HTTP becomes a recorded error.
	dead := manifest.Target("fr2")
	if dead == nil {
		t.Fatal("dead replica missing from manifest")
	}
	deadNames := map[string]bool{}
	for _, a := range dead.Artifacts {
		deadNames[a.Name] = true
	}
	if !deadNames[bundle.ArtifactMetrics] || !deadNames[bundle.ArtifactStats] {
		t.Fatalf("dead replica lost in-process artifacts: %+v", dead.Artifacts)
	}
	if len(dead.Errors) == 0 {
		t.Fatal("dead replica recorded no collector errors")
	}

	// Read-back + analysis: a healthy-but-degraded fleet must not fail
	// (dead-replica capture gaps are warnings), and the fleet exposition
	// must agree on one hash.
	bb, err := bundle.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if bb.Files["files/"+bundle.FleetMetricsFile] == nil {
		t.Fatal("fleet metrics file missing")
	}
	findings := bundle.Analyze(bb, bundle.AnalyzeOptions{})
	if bundle.HasFailure(findings) {
		t.Fatalf("degraded-but-consistent fleet failed analysis: %v", findings)
	}
	sawWarn := false
	for _, f := range findings {
		if f.Rule == bundle.RuleCollectErrors && f.Severity == bundle.SeverityWarn && f.Target == "fr2" {
			sawWarn = true
		}
	}
	if !sawWarn {
		t.Fatalf("dead replica's capture gaps not surfaced as warnings: %v", findings)
	}
}
