package kmeans

import (
	"math"
	"testing"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(centers [][]float64, n int, spread float64, seed uint64) (*matrix.Dense, []int) {
	p := rng.New(seed)
	rows := make([][]float64, 0, len(centers)*n)
	labels := make([]int, 0, len(centers)*n)
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			row := make([]float64, len(c))
			for j := range row {
				row[j] = c[j] + p.NormFloat64()*spread
			}
			rows = append(rows, row)
			labels = append(labels, ci)
		}
	}
	return matrix.FromRows(rows), labels
}

var testCenters = [][]float64{
	{0, 0}, {10, 10}, {-10, 10},
}

func TestFitErrors(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := Fit(m, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Fit(m, Config{K: 3}); err == nil {
		t.Fatal("expected error for rows < K")
	}
	if _, err := Fit(matrix.NewDense(0, 2), Config{K: 1}); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

func TestRecoverWellSeparatedBlobs(t *testing.T) {
	m, labels := blobs(testCenters, 200, 0.5, 1)
	model, err := Fit(m, Config{K: 3, Seed: 7, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := model.PredictAll(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every true blob must map to a single cluster (purity 100% on
	// well-separated data).
	blobToCluster := map[int]int{}
	for i, lbl := range labels {
		c := assign[i]
		if prev, ok := blobToCluster[lbl]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters %d and %d", lbl, prev, c)
			}
		} else {
			blobToCluster[lbl] = c
		}
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("blobs mapped to %d clusters", len(blobToCluster))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	m, _ := blobs(testCenters, 100, 1.0, 2)
	cfg := Config{K: 3, Seed: 42, PlusPlus: true}
	a, err := Fit(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.WCSS != b.WCSS {
		t.Fatalf("same seed, different WCSS: %v vs %v", a.WCSS, b.WCSS)
	}
	for c := 0; c < 3; c++ {
		ra, rb := a.Centroids.Row(c), b.Centroids.Row(c)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("same seed, centroid %d differs", c)
			}
		}
	}
}

func TestRestartsNeverWorse(t *testing.T) {
	m, _ := blobs(testCenters, 80, 2.0, 3)
	single, err := Fit(m, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Fit(m, Config{K: 3, Seed: 5, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if multi.WCSS > single.WCSS+1e-9 {
		t.Fatalf("restarts made WCSS worse: %v vs %v", multi.WCSS, single.WCSS)
	}
}

func TestPredictNearest(t *testing.T) {
	m, _ := blobs(testCenters, 50, 0.3, 4)
	model, err := Fit(m, Config{K: 3, Seed: 1, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	// A point exactly at a centroid predicts that centroid.
	for c := 0; c < 3; c++ {
		if got := model.Predict(model.Centroids.Row(c)); got != c {
			t.Fatalf("centroid %d predicted as %d", c, got)
		}
	}
}

func TestPredictPanicsOnBadDim(t *testing.T) {
	m, _ := blobs(testCenters, 20, 0.3, 5)
	model, _ := Fit(m, Config{K: 3, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong-width predict")
		}
	}()
	model.Predict([]float64{1})
}

func TestPredictAllDimError(t *testing.T) {
	m, _ := blobs(testCenters, 20, 0.3, 6)
	model, _ := Fit(m, Config{K: 3, Seed: 1})
	if _, err := model.PredictAll(matrix.NewDense(4, 5)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestDistanceNonNegative(t *testing.T) {
	m, _ := blobs(testCenters, 30, 0.5, 7)
	model, _ := Fit(m, Config{K: 3, Seed: 1})
	for i := 0; i < 30; i++ {
		row := m.Row(i)
		for c := 0; c < 3; c++ {
			if model.Distance(row, c) < 0 {
				t.Fatal("negative distance")
			}
		}
	}
}

func TestDistancePanicsOnBadCluster(t *testing.T) {
	m, _ := blobs(testCenters, 20, 0.5, 8)
	model, _ := Fit(m, Config{K: 3, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range centroid")
		}
	}()
	model.Distance(m.Row(0), 3)
}

// TestWCSSDecreasesWithK is the invariant behind the elbow method.
func TestWCSSDecreasesWithK(t *testing.T) {
	m, _ := blobs(testCenters, 150, 1.5, 9)
	curve, err := ElbowCurve(m, 1, 8, Config{Seed: 3, PlusPlus: true, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		// Allow tiny non-monotonicity from local optima, but the
		// trend must hold strongly.
		if curve[i].WCSS > curve[i-1].WCSS*1.05 {
			t.Fatalf("WCSS rose sharply from k=%d (%v) to k=%d (%v)",
				curve[i-1].K, curve[i-1].WCSS, curve[i].K, curve[i].WCSS)
		}
	}
	if curve[0].WCSS <= curve[len(curve)-1].WCSS {
		t.Fatal("WCSS did not decrease overall")
	}
}

func TestElbowDetectsTrueK(t *testing.T) {
	m, _ := blobs(testCenters, 200, 0.4, 10)
	curve, err := ElbowCurve(m, 1, 7, Config{Seed: 11, PlusPlus: true, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := BestRelativeK(curve, 2); got != 3 {
		t.Fatalf("relative WCSS picked k=%d, want 3", got)
	}
}

func TestElbowCurveBadRange(t *testing.T) {
	m, _ := blobs(testCenters, 10, 0.5, 12)
	if _, err := ElbowCurve(m, 0, 3, Config{}); err == nil {
		t.Fatal("expected error for kMin=0")
	}
	if _, err := ElbowCurve(m, 3, 2, Config{}); err == nil {
		t.Fatal("expected error for kMax<kMin")
	}
}

func TestRelativeWCSS(t *testing.T) {
	curve := []ElbowPoint{{K: 1, WCSS: 100}, {K: 2, WCSS: 50}, {K: 3, WCSS: 45}}
	rel := RelativeWCSS(curve)
	if len(rel) != 2 {
		t.Fatalf("rel len = %d", len(rel))
	}
	if math.Abs(rel[0].WCSS-0.5) > 1e-12 {
		t.Fatalf("drop at k=2 = %v", rel[0].WCSS)
	}
	if math.Abs(rel[1].WCSS-0.1) > 1e-12 {
		t.Fatalf("drop at k=3 = %v", rel[1].WCSS)
	}
	if RelativeWCSS(curve[:1]) != nil {
		t.Fatal("short curve should return nil")
	}
}

func TestEmptyClusterReseeded(t *testing.T) {
	// Duplicate points force potential empty clusters; the model must
	// still produce K centroids and converge.
	rows := make([][]float64, 0, 40)
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{0, 0})
		rows = append(rows, []float64{100, 100})
	}
	m := matrix.FromRows(rows)
	model, err := Fit(m, Config{K: 4, Seed: 1, PlusPlus: true, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if model.K != 4 {
		t.Fatalf("K = %d", model.K)
	}
	if math.IsNaN(model.WCSS) || math.IsInf(model.WCSS, 0) {
		t.Fatalf("WCSS = %v", model.WCSS)
	}
}

func TestInertiaMatchesFitWCSS(t *testing.T) {
	m, _ := blobs(testCenters, 100, 1.0, 13)
	model, err := Fit(m, Config{K: 3, Seed: 2, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := model.Inertia(m); math.Abs(got-model.WCSS) > 1e-9*(1+model.WCSS) {
		t.Fatalf("Inertia %v != fit WCSS %v", got, model.WCSS)
	}
}

func TestUniformSeedingWorksToo(t *testing.T) {
	m, _ := blobs(testCenters, 100, 0.5, 14)
	model, err := Fit(m, Config{K: 3, Seed: 2, PlusPlus: false, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if model.WCSS <= 0 {
		t.Fatalf("WCSS = %v", model.WCSS)
	}
}

func TestKEqualsN(t *testing.T) {
	m := matrix.FromRows([][]float64{{0, 0}, {5, 5}, {10, 0}})
	model, err := Fit(m, Config{K: 3, Seed: 1, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	if model.WCSS > 1e-12 {
		t.Fatalf("K=N should give zero WCSS, got %v", model.WCSS)
	}
}

func BenchmarkFitK11(b *testing.B) {
	p := rng.New(15)
	rows := make([][]float64, 4096)
	for i := range rows {
		row := make([]float64, 7)
		base := float64(i % 11 * 10)
		for j := range row {
			row[j] = base + p.NormFloat64()
		}
		rows[i] = row
	}
	m := matrix.FromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(m, Config{K: 11, Seed: 1, PlusPlus: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	m, _ := blobs(testCenters, 500, 1.0, 16)
	model, err := Fit(m, Config{K: 3, Seed: 1, PlusPlus: true})
	if err != nil {
		b.Fatal(err)
	}
	x := m.Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.Predict(x)
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	m, _ := blobs(testCenters, 150, 0.4, 21)
	model, err := Fit(m, Config{K: 3, Seed: 1, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	assign, _ := model.PredictAll(m)
	s, err := Silhouette(m, assign, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 {
		t.Fatalf("silhouette %v on well-separated blobs, want > 0.8", s)
	}
}

func TestSilhouetteOversplitLower(t *testing.T) {
	m, _ := blobs(testCenters, 150, 0.6, 22)
	score := func(k int) float64 {
		model, err := Fit(m, Config{K: k, Seed: 1, PlusPlus: true, Restarts: 4})
		if err != nil {
			t.Fatal(err)
		}
		assign, _ := model.PredictAll(m)
		s, err := Silhouette(m, assign, k, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if score(3) <= score(9) {
		t.Fatalf("silhouette at true k=3 (%v) not above oversplit k=9 (%v)", score(3), score(9))
	}
}

func TestSilhouetteErrors(t *testing.T) {
	m, _ := blobs(testCenters, 20, 0.5, 23)
	if _, err := Silhouette(m, []int{0}, 3, 0, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	assign := make([]int, 60)
	if _, err := Silhouette(m, assign, 1, 0, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	assign[0] = 99
	if _, err := Silhouette(m, assign, 3, 0, 1); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

func TestSilhouetteSampled(t *testing.T) {
	m, _ := blobs(testCenters, 400, 0.5, 24)
	model, _ := Fit(m, Config{K: 3, Seed: 1, PlusPlus: true})
	assign, _ := model.PredictAll(m)
	full, err := Silhouette(m, assign, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Silhouette(m, assign, 3, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-sampled) > 0.1 {
		t.Fatalf("sampled silhouette %v far from full %v", sampled, full)
	}
	// Deterministic under the same seed.
	again, _ := Silhouette(m, assign, 3, 200, 1)
	if again != sampled {
		t.Fatal("sampled silhouette not deterministic")
	}
}

func TestSilhouetteCurvePeaksAtTrueK(t *testing.T) {
	m, _ := blobs(testCenters, 200, 0.4, 25)
	curve, err := SilhouetteCurve(m, 2, 6, Config{Seed: 3, PlusPlus: true, Restarts: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bestK, bestS := 0, -2.0
	for _, p := range curve {
		if p.WCSS > bestS {
			bestS = p.WCSS
			bestK = p.K
		}
	}
	if bestK != 3 {
		t.Fatalf("silhouette curve peaks at k=%d, want 3", bestK)
	}
	if _, err := SilhouetteCurve(m, 1, 3, Config{}, 0); err == nil {
		t.Fatal("kMin=1 accepted")
	}
}

func TestAssignDistanceMatchesPredictPlusDistance(t *testing.T) {
	m, _ := blobs(testCenters, 150, 2.0, 11)
	model, err := Fit(m, Config{K: 3, Seed: 5, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	p := rng.New(42)
	for i := 0; i < 500; i++ {
		x := []float64{p.NormFloat64() * 12, p.NormFloat64() * 12}
		cluster, dist := model.AssignDistance(x)
		if want := model.Predict(x); cluster != want {
			t.Fatalf("vector %d: AssignDistance cluster %d, Predict %d", i, cluster, want)
		}
		// Bit-identical, not approximately equal: the fused pass must do
		// the same sqrt over the same minimum squared distance.
		if want := model.Distance(x, cluster); dist != want {
			t.Fatalf("vector %d: AssignDistance dist %v, Distance %v", i, dist, want)
		}
	}
}

func TestAssignDistancePanicsOnWidthMismatch(t *testing.T) {
	m, _ := blobs(testCenters, 50, 0.5, 3)
	model, err := Fit(m, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	model.AssignDistance([]float64{1, 2, 3})
}
