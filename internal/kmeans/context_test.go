package kmeans

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

// countingCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err calls. Because FitContext checks the context at
// chunk boundaries — a pure function of the input, not of time — this
// cancels at a deterministic point inside the Lloyd iterations on every
// run and every machine.
type countingCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountingCtx(n int64) *countingCtx {
	c := &countingCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countingCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	if c.remaining.Load() < 0 {
		close(ch)
	}
	return ch
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestFitContextCancelsMidLloyd(t *testing.T) {
	p := rng.New(3)
	data := blobsMatrix(2000, 5, p)

	// Count how many ctx checks a full run performs, then cancel partway
	// through that budget — deep enough to be past seeding, shallow
	// enough to land inside the Lloyd iterations.
	probe := newCountingCtx(1 << 40)
	if _, err := FitContext(probe, data, Config{K: 8, Seed: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	total := (1 << 40) - probe.remaining.Load()
	if total < 10 {
		t.Fatalf("fit performed only %d ctx checks; counting cancel cannot land mid-run", total)
	}

	ctx := newCountingCtx(total / 2)
	_, err := FitContext(ctx, data, Config{K: 8, Seed: 1, Workers: 1})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
}

func TestFitContextCompletedRunMatchesFit(t *testing.T) {
	p := rng.New(4)
	data := blobsMatrix(500, 4, p)
	cfg := Config{K: 6, Seed: 9, Restarts: 2, PlusPlus: true, Workers: 1}

	plain, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	underCtx, err := FitContext(context.Background(), data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.WCSS != underCtx.WCSS {
		t.Fatalf("WCSS differs: %v vs %v", plain.WCSS, underCtx.WCSS)
	}
	for c := 0; c < cfg.K; c++ {
		a, b := plain.Centroids.RawRow(c), underCtx.Centroids.RawRow(c)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("centroid %d[%d] differs: %v vs %v", c, j, a[j], b[j])
			}
		}
	}
}

// blobsMatrix builds an n×d matrix of mild Gaussian noise — enough rows
// to make chunked fan-out and multiple Lloyd iterations happen.
func blobsMatrix(n, d int, p *rng.PCG) *matrix.Dense {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = p.NormFloat64() + float64((i%8))*3
		}
		rows[i] = row
	}
	return matrix.FromRows(rows)
}
