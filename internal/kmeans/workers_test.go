package kmeans

import (
	"testing"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

// TestFitWorkerCountInvariance pins the internal/parallel contract at the
// kmeans layer: pool size changes wall-clock time, never the model.
func TestFitWorkerCountInvariance(t *testing.T) {
	gen := rng.NewString("kmeans-workers-test")
	const n, d = 600, 7
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, gen.NormFloat64()+float64(i%5)*3)
		}
	}
	base := Config{K: 5, Seed: 11, Restarts: 3, PlusPlus: true}

	serialCfg := base
	serialCfg.Workers = 1
	serial, err := Fit(m, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		cfg := base
		cfg.Workers = workers
		got, err := Fit(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.WCSS != serial.WCSS || got.Iterations != serial.Iterations {
			t.Fatalf("Workers=%d: WCSS/iters %v/%d, serial %v/%d",
				workers, got.WCSS, got.Iterations, serial.WCSS, serial.Iterations)
		}
		for i := 0; i < got.K; i++ {
			for j := 0; j < got.Dim; j++ {
				if got.Centroids.At(i, j) != serial.Centroids.At(i, j) {
					t.Fatalf("Workers=%d: centroid[%d][%d] %v != serial %v",
						workers, i, j, got.Centroids.At(i, j), serial.Centroids.At(i, j))
				}
			}
		}
		ga, err := got.PredictAllWorkers(m, workers)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := serial.PredictAllWorkers(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ga {
			if ga[i] != sa[i] {
				t.Fatalf("Workers=%d: assignment[%d] %d != serial %d", workers, i, ga[i], sa[i])
			}
		}
	}
}
