// Package kmeans implements the clustering algorithm at the heart of
// Browser Polygraph (paper §6.4.3): Lloyd's k-means with k-means++
// initialization, plus the Within-Cluster Sum of Squares (WCSS) tooling
// used to choose k via the elbow method (Figure 3) and the relative-WCSS
// curve (Figure 4) that pinpoints k = 11 in the paper.
package kmeans

import (
	"context"
	"fmt"
	"math"

	"polygraph/internal/matrix"
	"polygraph/internal/parallel"
	"polygraph/internal/rng"
)

// Config controls training.
type Config struct {
	// K is the number of clusters; required, ≥ 1.
	K int
	// MaxIter bounds Lloyd iterations; 0 means the default (300).
	MaxIter int
	// Tol stops iteration when total centroid movement (squared) falls
	// below it; 0 means the default (1e-8).
	Tol float64
	// Seed drives the deterministic k-means++ initialization.
	Seed uint64
	// Restarts runs the whole fit multiple times with derived seeds and
	// keeps the lowest-WCSS model; 0 means 1 run.
	Restarts int
	// PlusPlus selects k-means++ seeding (true) or uniform random
	// centroid choice (false). The paper does not name its init; we use
	// ++ by default and ablate the difference in EXPERIMENTS.md.
	PlusPlus bool
	// Workers sizes the worker pool for the assignment and update steps;
	// 0 means GOMAXPROCS, 1 forces the serial path. Results are
	// bit-identical for every value (see internal/parallel).
	Workers int
}

// Model is a fitted k-means clustering.
type Model struct {
	// Centroids is a K×d matrix of cluster centers.
	Centroids *matrix.Dense
	// WCSS is the within-cluster sum of squared distances at
	// convergence.
	WCSS float64
	// Iterations is the number of Lloyd steps the winning restart used.
	Iterations int
	// K and Dim record the model shape.
	K, Dim int
}

// Fit clusters the rows of m. It returns an error for degenerate input
// (fewer rows than clusters, K < 1, empty matrix).
func Fit(m *matrix.Dense, cfg Config) (*Model, error) {
	return FitContext(context.Background(), m, cfg)
}

// FitContext is Fit with cooperative cancellation: the seeding fan-outs,
// every Lloyd assignment/update step, and the restart loop all check ctx
// at chunk boundaries, so cancellation mid-iteration aborts within one
// chunk of work. A fit that runs to completion is bit-identical to
// Fit's — cancellation checks never change chunk geometry or reduction
// order.
func FitContext(ctx context.Context, m *matrix.Dense, cfg Config) (*Model, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r, d := m.Dims()
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K=%d < 1", cfg.K)
	}
	if r == 0 || d == 0 {
		return nil, fmt.Errorf("kmeans: empty input %dx%d", r, d)
	}
	if r < cfg.K {
		return nil, fmt.Errorf("kmeans: %d rows < K=%d", r, cfg.K)
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 300
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-8
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}

	var best *Model
	for attempt := 0; attempt < restarts; attempt++ {
		gen := rng.New(cfg.Seed).Split(fmt.Sprintf("restart-%d", attempt))
		model, err := fitOnce(ctx, m, cfg.K, maxIter, tol, cfg.PlusPlus, cfg.Workers, gen)
		if err != nil {
			return nil, err
		}
		if best == nil || model.WCSS < best.WCSS {
			best = model
		}
	}
	return best, nil
}

// partial is one chunk's contribution to the centroid update: per-cluster
// row counts and feature sums. Chunks cover fixed index ranges and merge
// in ascending chunk order, so the reduced sums are bit-identical for
// every worker count.
type partial struct {
	counts []int
	sums   *matrix.Dense
}

func fitOnce(ctx context.Context, m *matrix.Dense, k, maxIter int, tol float64, plusPlus bool, workers int, gen *rng.PCG) (*Model, error) {
	r, d := m.Dims()
	cents := matrix.NewDense(k, d)
	if plusPlus {
		if err := seedPlusPlus(ctx, m, cents, workers, gen); err != nil {
			return nil, err
		}
	} else {
		seedUniform(m, cents, gen)
	}

	assign := make([]int, r)
	iter := 0
	for ; iter < maxIter; iter++ {
		// Assignment step: each row is independent, so the fan-out is a
		// pure map.
		if err := parallel.ForContext(ctx, workers, r, 0, func(start, end int) {
			for i := start; i < end; i++ {
				assign[i] = nearestCentroid(m.RawRow(i), cents)
			}
		}); err != nil {
			return nil, err
		}
		// Update step: per-chunk partial sums, merged in fixed chunk
		// order.
		acc, err := parallel.MapReduceContext(ctx, workers, r, 0,
			func() *partial { return &partial{counts: make([]int, k), sums: matrix.NewDense(k, d)} },
			func(p *partial, start, end int) *partial {
				for i := start; i < end; i++ {
					c := assign[i]
					p.counts[c]++
					srow := p.sums.RawRow(c)
					for j, v := range m.RawRow(i) {
						srow[j] += v
					}
				}
				return p
			},
			func(into, from *partial) *partial {
				for c := 0; c < k; c++ {
					into.counts[c] += from.counts[c]
					irow := into.sums.RawRow(c)
					for j, v := range from.sums.RawRow(c) {
						irow[j] += v
					}
				}
				return into
			},
		)
		if err != nil {
			return nil, err
		}
		counts, sums := acc.counts, acc.sums
		moved := 0.0
		for c := 0; c < k; c++ {
			crow := cents.RawRow(c)
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest
				// from its centroid, the standard fix that
				// keeps K stable.
				far := farthestPoint(m, cents)
				copy(crow, m.RawRow(far))
				moved += math.Inf(1)
				continue
			}
			inv := 1 / float64(counts[c])
			srow := sums.RawRow(c)
			for j := range crow {
				nv := srow[j] * inv
				dv := nv - crow[j]
				moved += dv * dv
				crow[j] = nv
			}
		}
		if moved <= tol {
			iter++
			break
		}
	}

	model := &Model{Centroids: cents, K: k, Dim: d, Iterations: iter}
	wcss, err := model.inertiaContext(ctx, m, workers)
	if err != nil {
		return nil, err
	}
	model.WCSS = wcss
	return model, nil
}

// seedUniform picks K distinct random rows as initial centroids.
func seedUniform(m *matrix.Dense, cents *matrix.Dense, gen *rng.PCG) {
	r, _ := m.Dims()
	k, _ := cents.Dims()
	perm := gen.Perm(r)
	for c := 0; c < k; c++ {
		copy(cents.RawRow(c), m.RawRow(perm[c]))
	}
}

// seedPlusPlus implements k-means++ (Arthur & Vassilvitskii 2007):
// subsequent centroids are sampled proportional to squared distance from
// the nearest already-chosen centroid. The distance refresh after each
// pick is a pure per-row map and fans out over the pool; the cumulative
// sampling scan stays serial because it is inherently ordered.
func seedPlusPlus(ctx context.Context, m *matrix.Dense, cents *matrix.Dense, workers int, gen *rng.PCG) error {
	r, _ := m.Dims()
	k, _ := cents.Dims()
	copy(cents.RawRow(0), m.RawRow(gen.Intn(r)))
	d2 := make([]float64, r)
	if err := parallel.ForContext(ctx, workers, r, 0, func(start, end int) {
		for i := start; i < end; i++ {
			d2[i] = sqDist(m.RawRow(i), cents.RawRow(0))
		}
	}); err != nil {
		return err
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, v := range d2 {
			total += v
		}
		var idx int
		if total <= 0 {
			// All points coincide with chosen centroids; any row
			// works.
			idx = gen.Intn(r)
		} else {
			target := gen.Float64() * total
			acc := 0.0
			idx = r - 1
			for i, v := range d2 {
				acc += v
				if acc >= target {
					idx = i
					break
				}
			}
		}
		copy(cents.RawRow(c), m.RawRow(idx))
		crow := cents.RawRow(c)
		if err := parallel.ForContext(ctx, workers, r, 0, func(start, end int) {
			for i := start; i < end; i++ {
				if nd := sqDist(m.RawRow(i), crow); nd < d2[i] {
					d2[i] = nd
				}
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

func farthestPoint(m *matrix.Dense, cents *matrix.Dense) int {
	r, _ := m.Dims()
	worstIdx, worstD := 0, -1.0
	for i := 0; i < r; i++ {
		c := nearestCentroid(m.RawRow(i), cents)
		d := sqDist(m.RawRow(i), cents.RawRow(c))
		if d > worstD {
			worstD = d
			worstIdx = i
		}
	}
	return worstIdx
}

func nearestCentroid(x []float64, cents *matrix.Dense) int {
	k, _ := cents.Dims()
	best, bestD := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		if d := sqDist(x, cents.RawRow(c)); d < bestD {
			bestD = d
			best = c
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Predict returns the nearest-centroid cluster for x. It panics if the
// vector width differs from the fitted dimension (programming error on the
// hot path; validated input should be checked by callers).
func (m *Model) Predict(x []float64) int {
	if len(x) != m.Dim {
		panic(fmt.Sprintf("kmeans: predict on %d-dim vector, model is %d-dim", len(x), m.Dim))
	}
	return nearestCentroid(x, m.Centroids)
}

// AssignDistance returns the nearest-centroid cluster for x and the
// Euclidean distance to that centroid, in a single pass over the
// centroids. It is the in-place (allocation-free) equivalent of calling
// Predict followed by Distance, with bit-identical results — the
// distance to the argmin centroid is the same squared sum either way —
// at half the arithmetic. Like Predict, it panics on a width mismatch.
func (m *Model) AssignDistance(x []float64) (int, float64) {
	if len(x) != m.Dim {
		panic(fmt.Sprintf("kmeans: predict on %d-dim vector, model is %d-dim", len(x), m.Dim))
	}
	best, bestD := 0, math.Inf(1)
	for c := 0; c < m.K; c++ {
		if d := sqDist(x, m.Centroids.RawRow(c)); d < bestD {
			bestD = d
			best = c
		}
	}
	return best, math.Sqrt(bestD)
}

// predictCostNs estimates one nearest-centroid assignment's cost for
// adaptive dispatch (~2 ns per centroid coordinate, plus loop overhead).
func (m *Model) predictCostNs() float64 {
	return 40 + 2*float64(m.K*m.Dim)
}

// PredictAll returns cluster assignments for every row of data, fanning
// the rows out over the worker pool (each row is independent, so the
// result is identical for every pool size).
func (m *Model) PredictAll(data *matrix.Dense) ([]int, error) {
	return m.PredictAllWorkers(data, 0)
}

// PredictAllWorkers is PredictAll with an explicit pool size (0 =
// GOMAXPROCS, 1 = serial).
func (m *Model) PredictAllWorkers(data *matrix.Dense, workers int) ([]int, error) {
	return m.PredictAllContext(context.Background(), data, workers)
}

// PredictAllContext is PredictAllWorkers with cooperative cancellation
// at chunk boundaries.
func (m *Model) PredictAllContext(ctx context.Context, data *matrix.Dense, workers int) ([]int, error) {
	r, d := data.Dims()
	if d != m.Dim {
		return nil, fmt.Errorf("kmeans: predict on %d-dim rows, model is %d-dim", d, m.Dim)
	}
	out := make([]int, r)
	plan := parallel.PlanFor(workers, r, m.predictCostNs())
	if err := parallel.ForContext(ctx, plan.Workers, r, plan.Chunk, func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = nearestCentroid(data.RawRow(i), m.Centroids)
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Distance returns the Euclidean distance from x to centroid c.
func (m *Model) Distance(x []float64, c int) float64 {
	if c < 0 || c >= m.K {
		panic(fmt.Sprintf("kmeans: centroid %d out of %d", c, m.K))
	}
	return math.Sqrt(sqDist(x, m.Centroids.RawRow(c)))
}

// Inertia computes the WCSS of data under the model's centroids.
func (m *Model) Inertia(data *matrix.Dense) float64 {
	wcss, _ := m.inertiaContext(context.Background(), data, 0)
	return wcss
}

// inertiaContext reduces per-chunk WCSS partials in fixed chunk order, so
// the value is bit-identical for every worker count; ctx cancels at chunk
// boundaries.
func (m *Model) inertiaContext(ctx context.Context, data *matrix.Dense, workers int) (float64, error) {
	r, _ := data.Dims()
	return parallel.MapReduceContext(ctx, workers, r, 0,
		func() float64 { return 0 },
		func(total float64, start, end int) float64 {
			for i := start; i < end; i++ {
				row := data.RawRow(i)
				c := nearestCentroid(row, m.Centroids)
				total += sqDist(row, m.Centroids.RawRow(c))
			}
			return total
		},
		func(into, from float64) float64 { return into + from },
	)
}

// ElbowPoint is one (k, WCSS) sample of the elbow curve.
type ElbowPoint struct {
	K    int
	WCSS float64
}

// ElbowCurve fits a model for every k in [kMin, kMax] and returns the
// WCSS curve of the paper's Figure 3. Fits reuse cfg except for K.
func ElbowCurve(m *matrix.Dense, kMin, kMax int, cfg Config) ([]ElbowPoint, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("kmeans: bad elbow range [%d,%d]", kMin, kMax)
	}
	out := make([]ElbowPoint, 0, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		c := cfg
		c.K = k
		model, err := Fit(m, c)
		if err != nil {
			return nil, fmt.Errorf("kmeans: elbow at k=%d: %w", k, err)
		}
		out = append(out, ElbowPoint{K: k, WCSS: model.WCSS})
	}
	return out, nil
}

// RelativeWCSS transforms an elbow curve into the paper's Figure 4 series:
// for each k > kMin, the fractional WCSS drop achieved by moving from k-1
// to k clusters, (WCSS(k-1) − WCSS(k)) / WCSS(k-1). A pronounced spike
// marks a k that buys an outsized improvement — k = 11 in the paper.
func RelativeWCSS(curve []ElbowPoint) []ElbowPoint {
	if len(curve) < 2 {
		return nil
	}
	out := make([]ElbowPoint, 0, len(curve)-1)
	for i := 1; i < len(curve); i++ {
		prev := curve[i-1].WCSS
		drop := 0.0
		if prev > 0 {
			drop = (prev - curve[i].WCSS) / prev
		}
		out = append(out, ElbowPoint{K: curve[i].K, WCSS: drop})
	}
	return out
}

// BestRelativeK returns the k with the largest relative WCSS drop,
// ignoring candidates below kFloor (tiny k always has huge drops).
func BestRelativeK(curve []ElbowPoint, kFloor int) int {
	rel := RelativeWCSS(curve)
	bestK, bestV := 0, -1.0
	for _, p := range rel {
		if p.K < kFloor {
			continue
		}
		if p.WCSS > bestV {
			bestV = p.WCSS
			bestK = p.K
		}
	}
	return bestK
}
