package kmeans

import (
	"fmt"
	"math"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

// Silhouette computes the mean silhouette coefficient of the assignment:
// for each point, (b−a)/max(a,b) where a is the mean distance to its own
// cluster and b the smallest mean distance to another cluster. It is the
// standard alternative to the paper's elbow/relative-WCSS criterion for
// choosing k, and the repository's ablations use it to cross-check the
// k = 11 choice.
//
// Exact silhouette is O(n²); sampleCap bounds the points evaluated
// (uniform deterministic subsample, 0 = 2048). Distances to non-sampled
// points are still exact within the sample.
func Silhouette(data *matrix.Dense, assign []int, k int, sampleCap int, seed uint64) (float64, error) {
	n, _ := data.Dims()
	if n != len(assign) {
		return 0, fmt.Errorf("kmeans: %d rows vs %d assignments", n, len(assign))
	}
	if k < 2 {
		return 0, fmt.Errorf("kmeans: silhouette needs k ≥ 2, have %d", k)
	}
	for i, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("kmeans: assignment %d out of range at row %d", a, i)
		}
	}
	if sampleCap <= 0 {
		sampleCap = 2048
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if n > sampleCap {
		gen := rng.New(seed).Split("silhouette")
		gen.Shuffle(n, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		idx = idx[:sampleCap]
	}

	// Group sampled points by cluster.
	byCluster := make([][]int, k)
	for _, i := range idx {
		c := assign[i]
		byCluster[c] = append(byCluster[c], i)
	}

	total, counted := 0.0, 0
	for _, i := range idx {
		own := assign[i]
		if len(byCluster[own]) < 2 {
			// Singleton within the sample: silhouette undefined,
			// conventionally 0 — skip rather than bias.
			continue
		}
		a := meanDist(data, i, byCluster[own], true)
		b := -1.0
		for c := 0; c < k; c++ {
			if c == own || len(byCluster[c]) == 0 {
				continue
			}
			d := meanDist(data, i, byCluster[c], false)
			if b < 0 || d < b {
				b = d
			}
		}
		if b < 0 {
			continue // no other populated cluster in sample
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0, fmt.Errorf("kmeans: no silhouette-evaluable points in sample")
	}
	return total / float64(counted), nil
}

// meanDist returns the mean Euclidean distance from row i to the rows in
// members; excludeSelf skips i itself (own-cluster case).
func meanDist(data *matrix.Dense, i int, members []int, excludeSelf bool) float64 {
	xi := data.RawRow(i)
	sum, n := 0.0, 0
	for _, j := range members {
		if excludeSelf && j == i {
			continue
		}
		sum += dist(xi, data.RawRow(j))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func dist(a, b []float64) float64 {
	return math.Sqrt(sqDist(a, b))
}

// SilhouetteCurve evaluates the mean silhouette for each k in
// [kMin, kMax] by fitting models with cfg, returning (k, score) points.
func SilhouetteCurve(data *matrix.Dense, kMin, kMax int, cfg Config, sampleCap int) ([]ElbowPoint, error) {
	if kMin < 2 || kMax < kMin {
		return nil, fmt.Errorf("kmeans: bad silhouette range [%d,%d]", kMin, kMax)
	}
	out := make([]ElbowPoint, 0, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		c := cfg
		c.K = k
		model, err := Fit(data, c)
		if err != nil {
			return nil, err
		}
		assign, err := model.PredictAll(data)
		if err != nil {
			return nil, err
		}
		s, err := Silhouette(data, assign, k, sampleCap, cfg.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ElbowPoint{K: k, WCSS: s})
	}
	return out, nil
}
