package audit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"polygraph/internal/core"
)

// These tests pin the redaction contract the support bundle relies on:
// what leaves the host by default is hashes, never raw fingerprints.

func TestRedactUAFormat(t *testing.T) {
	ua := "Mozilla/5.0 (X11; Linux x86_64) TestBrowser/1.0"
	got := RedactUA(ua)
	sum := sha256.Sum256([]byte(ua))
	want := fmt.Sprintf("sha256:%x#%d", sum[:8], len(ua))
	if got != want {
		t.Fatalf("RedactUA = %q, want %q", got, want)
	}
	if strings.Contains(got, "Mozilla") {
		t.Fatal("redacted UA leaks original content")
	}
	if RedactUA("") != "" {
		t.Fatal("empty UA must stay empty")
	}
	// Equal UAs redact identically (matchable), different ones differ.
	if RedactUA(ua) != got {
		t.Fatal("RedactUA not deterministic")
	}
	if RedactUA(ua+"x") == got {
		t.Fatal("distinct UAs collide")
	}
}

func TestVectorDigest(t *testing.T) {
	a := []float64{1, 2.5, -3}
	if VectorDigest(a) != VectorDigest([]float64{1, 2.5, -3}) {
		t.Fatal("identical vectors digest differently")
	}
	if VectorDigest(a) == VectorDigest([]float64{1, 2.5, -3.0001}) {
		t.Fatal("distinct vectors collide")
	}
	if VectorDigest(nil) != "" || VectorDigest([]float64{}) != "" {
		t.Fatal("empty vector must digest to empty string")
	}
	if len(VectorDigest(a)) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(VectorDigest(a)))
	}
}

func TestRedactRecord(t *testing.T) {
	rec := Record{
		TimeNs:      123,
		ModelHash:   "abc",
		SessionID:   "s1",
		UserAgent:   "EvilBot/2.0",
		Endpoint:    "/v1/collect",
		Vector:      []float64{4, 5, 6},
		Verdict:     core.Verdict{Flagged: true, RiskFactor: 9},
		Explanation: &core.Explanation{Claim: "EvilBot/2.0"},
	}
	red := RedactRecord(rec)
	if !red.Redacted {
		t.Fatal("Redacted flag not set")
	}
	if red.UserAgent == rec.UserAgent || !strings.HasPrefix(red.UserAgent, "sha256:") {
		t.Fatalf("UserAgent not hashed: %q", red.UserAgent)
	}
	if red.Vector != nil {
		t.Fatal("Vector survived redaction")
	}
	if red.VectorSHA256 != VectorDigest(rec.Vector) || red.VectorDim != 3 {
		t.Fatalf("vector digest/dim = %q/%d", red.VectorSHA256, red.VectorDim)
	}
	if red.Explanation != nil {
		t.Fatal("Explanation survived redaction (it reconstructs feature values)")
	}
	// Fields that carry no fingerprint survive untouched.
	if red.TimeNs != 123 || red.ModelHash != "abc" || red.SessionID != "s1" ||
		red.Endpoint != "/v1/collect" || !red.Verdict.Flagged {
		t.Fatalf("non-sensitive fields mangled: %+v", red)
	}
	// Idempotent: re-redacting changes nothing (the UA is not re-hashed).
	if again := RedactRecord(red); again.UserAgent != red.UserAgent || !again.Redacted {
		t.Fatalf("redaction not idempotent: %+v", again)
	}
	// Original untouched (value semantics).
	if rec.Vector == nil || rec.Explanation == nil {
		t.Fatal("RedactRecord mutated its input")
	}
}

func TestRedactRecordsJSONHasNoRawFingerprint(t *testing.T) {
	recs := []Record{
		{UserAgent: "SecretAgent/1.0", Vector: []float64{7, 8}},
		{UserAgent: "", Vector: nil},
	}
	out, err := json.Marshal(RedactRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if strings.Contains(s, "SecretAgent") {
		t.Fatalf("serialized redacted records leak the UA: %s", s)
	}
	if strings.Contains(s, `"vector"`) {
		t.Fatalf("serialized redacted records carry a raw vector: %s", s)
	}
	if !strings.Contains(s, `"redacted":true`) {
		t.Fatalf("redacted flag missing from JSON: %s", s)
	}
}
