package audit

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"polygraph/internal/core"
)

func testRecord(flagged bool, trace string) Record {
	return Record{
		TraceID:   trace,
		ModelHash: "deadbeef",
		UserAgent: "Chrome 91.0.4472",
		Vector:    []float64{1, 2, 3},
		Verdict:   core.Verdict{Cluster: 4, Matched: !flagged, RiskFactor: 7, Flagged: flagged},
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Record(testRecord(i%2 == 0, fmt.Sprintf("trace-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	stats, err := Scan(dir, "", func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean() {
		t.Fatalf("scan not clean: %+v", stats)
	}
	if stats.Records != n || len(got) != n {
		t.Fatalf("got %d records, want %d", stats.Records, n)
	}
	for i, r := range got {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.TraceID != fmt.Sprintf("trace-%d", i) {
			t.Fatalf("record %d trace %q", i, r.TraceID)
		}
		if r.Verdict.Flagged != (i%2 == 0) {
			t.Fatalf("record %d flagged=%v", i, r.Verdict.Flagged)
		}
	}
	c := l.Counters()
	if c.Records != n || c.Dropped != 0 || c.Bytes <= 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestLedgerSampling(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SampleBenign: 5})
	if err != nil {
		t.Fatal(err)
	}
	const flagged, benign = 13, 100
	for i := 0; i < flagged; i++ {
		if err := l.Record(testRecord(true, "")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < benign; i++ {
		if err := l.Record(testRecord(false, "")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// All flagged recorded; exactly floor-style every-5th benign.
	wantBenign := benign / 5
	var gotFlagged, gotBenign int
	if _, err := Scan(dir, "", func(r Record) error {
		if r.Verdict.Flagged {
			gotFlagged++
		} else {
			gotBenign++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if gotFlagged != flagged {
		t.Fatalf("flagged recorded %d, want %d (all)", gotFlagged, flagged)
	}
	if gotBenign != wantBenign {
		t.Fatalf("benign recorded %d, want %d", gotBenign, wantBenign)
	}
	c := l.Counters()
	if c.Records != int64(flagged+wantBenign) || c.Dropped != int64(benign-wantBenign) {
		t.Fatalf("counters %+v", c)
	}
	// Invariant the loadgen cross-check relies on: every decision is
	// either recorded or counted dropped.
	if c.Records+c.Dropped != int64(flagged+benign) {
		t.Fatalf("records+dropped=%d, want %d", c.Records+c.Dropped, flagged+benign)
	}
}

func TestLedgerRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, MaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := l.Record(testRecord(true, "")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segments, err := Segments(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) < 2 {
		t.Fatalf("expected rotation to create multiple segments, got %v", segments)
	}
	stats, err := Scan(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean() || stats.Records != n {
		t.Fatalf("scan %+v, want %d clean records", stats, n)
	}
}

func TestLedgerExplicitRotate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err) // empty segment: no-op, no error
	}
	if err := l.Record(testRecord(true, "")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(testRecord(true, "")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segments, err := Segments(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) != 2 {
		t.Fatalf("segments after one rotate: %v", segments)
	}
	stats, err := Scan(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean() || stats.Records != 2 {
		t.Fatalf("scan %+v", stats)
	}
}

// TestLedgerCrashRecovery truncates the active segment mid-record,
// reopens the ledger, and asserts the torn tail is dropped while every
// earlier record still verifies and sequence numbers continue without
// reuse of durable ones.
func TestLedgerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const before = 10
	for i := 0; i < before; i++ {
		if err := l.Record(testRecord(true, fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segments, err := Segments(dir, "")
	if err != nil || len(segments) != 1 {
		t.Fatalf("segments %v err %v", segments, err)
	}
	path := segments[0]
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: cut 3 bytes off the file, simulating a
	// crash mid-append.
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	stats, err := Scan(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clean() || !stats.Acceptable() {
		t.Fatalf("torn final segment should be acceptable but not clean: %+v", stats)
	}
	if stats.Records != before-1 {
		t.Fatalf("scan after tear saw %d records, want %d", stats.Records, before-1)
	}

	// Reopen: recovery must truncate the torn tail and resume.
	l, err = Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Record(testRecord(false, "post-crash")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	stats, err = Scan(dir, "", func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean() {
		t.Fatalf("post-recovery scan must be fully clean: %+v", stats)
	}
	if len(got) != before {
		t.Fatalf("post-recovery records %d, want %d", len(got), before)
	}
	for i := 0; i < before-1; i++ {
		if got[i].Seq != uint64(i) || got[i].TraceID != fmt.Sprintf("t%d", i) {
			t.Fatalf("prior record %d damaged: %+v", i, got[i])
		}
	}
	last := got[before-1]
	if last.TraceID != "post-crash" {
		t.Fatalf("resumed record = %+v", last)
	}
	if last.Seq != uint64(before-1) {
		// Seq before-1 was torn away, so it is free for reuse; what
		// matters is no durable seq is duplicated.
		t.Fatalf("resumed seq %d, want %d", last.Seq, before-1)
	}
}

// TestLedgerCorruptMiddleSegment flips a byte inside a sealed segment:
// Scan must report it torn and Acceptable must be false, because only
// the final segment may legitimately end short.
func TestLedgerCorruptMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, MaxBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Record(testRecord(true, "")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segments, err := Segments(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) < 2 {
		t.Fatalf("need ≥2 segments, got %v", segments)
	}
	data, err := os.ReadFile(segments[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segments[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := Scan(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Acceptable() {
		t.Fatalf("corrupt sealed segment must not be acceptable: %+v", stats)
	}
}

func TestLedgerRecentFilters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 12; i++ {
		if err := l.Record(testRecord(i%3 == 0, fmt.Sprintf("tr-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Ring holds the last 8 (i = 4..11), newest first.
	all := l.Recent(100, "", "")
	if len(all) != 8 {
		t.Fatalf("recent len %d, want 8", len(all))
	}
	if all[0].TraceID != "tr-11" || all[7].TraceID != "tr-4" {
		t.Fatalf("recent order wrong: first %q last %q", all[0].TraceID, all[7].TraceID)
	}
	flagged := l.Recent(100, "flagged", "")
	for _, r := range flagged {
		if !r.Verdict.Flagged {
			t.Fatalf("flagged filter returned benign record %+v", r)
		}
	}
	if len(flagged) != 2 { // i=6, 9 within the ring window
		t.Fatalf("flagged count %d, want 2", len(flagged))
	}
	benign := l.Recent(3, "benign", "")
	if len(benign) != 3 {
		t.Fatalf("benign cap %d, want 3", len(benign))
	}
	one := l.Recent(100, "", "tr-7")
	if len(one) != 1 || one[0].TraceID != "tr-7" {
		t.Fatalf("trace filter got %+v", one)
	}
}

// TestLedgerConcurrencyHammer races writers against rotation and ring
// reads; run with -race. Afterwards the ledger must scan clean and
// account for every record.
func TestLedgerConcurrencyHammer(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, MaxBytes: 4096, SampleBenign: 3, RingSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := testRecord(i%2 == 0, fmt.Sprintf("w%d-%d", w, i))
				if err := l.Record(rec); err != nil {
					t.Errorf("record: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := l.Rotate(); err != nil {
				t.Errorf("rotate: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = l.Recent(10, "flagged", "")
			_ = l.Counters()
		}
	}()
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	total := int64(writers * perWriter)
	c := l.Counters()
	if c.Records+c.Dropped != total {
		t.Fatalf("records %d + dropped %d != submitted %d", c.Records, c.Dropped, total)
	}
	stats, err := Scan(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean() {
		t.Fatalf("hammer ledger not clean: %+v", stats)
	}
	if int64(stats.Records) != c.Records {
		t.Fatalf("on-disk records %d, counter %d", stats.Records, c.Records)
	}
	seen := make(map[uint64]bool)
	if _, err := Scan(dir, "", func(r Record) error {
		if seen[r.Seq] {
			return fmt.Errorf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with empty Dir should fail")
	}
}

func TestSegmentsOrder(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []int{2, 0, 1} {
		if err := os.WriteFile(segmentPath(dir, "decisions", seq), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segments, err := Segments(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "decisions.000000.audit"),
		filepath.Join(dir, "decisions.000001.audit"),
		filepath.Join(dir, "decisions.000002.audit"),
	}
	if len(segments) != len(want) {
		t.Fatalf("segments %v", segments)
	}
	for i := range want {
		if segments[i] != want[i] {
			t.Fatalf("segment %d = %q, want %q", i, segments[i], want[i])
		}
	}
}
