// Package audit implements the decision audit ledger: an append-only,
// checksummed, size-rotated record of scoring verdicts and the
// explanations behind them (paper §6.4/§7: a coarse-grained flag is
// only actionable when the risk team can see the evidence; this package
// makes every verdict durably explainable and re-derivable).
//
// On-disk format — segments named <prefix>.<seq>.audit, each a stream
// of length-prefixed records:
//
//	uint32 length (big-endian) | uint32 CRC32-IEEE of body | body (JSON Record)
//
// The framing makes two properties machine-checkable: a checksum
// mismatch pins silent corruption to a record, and a truncated tail
// (crash mid-write) is recognized and dropped on reopen without losing
// any earlier record. `cmd/auditq verify` walks the frames; `auditq
// replay` feeds each record's vector back through a model file and
// demands the recorded verdict — the model/ledger consistency invariant
// CI enforces on every smoke-load run.
//
// Recording policy: flagged sessions are always recorded; benign
// sessions are sampled 1-in-N by a deterministic counter, so the
// recorded-benign count for a given traffic volume is a pure function
// of N (which one the counter picks depends on arrival order, the
// count does not).
package audit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"encoding/json"

	"polygraph/internal/core"
)

// MaxRecordBytes bounds one framed record body; a length prefix beyond
// it marks the frame (and the rest of the segment) unreadable.
const MaxRecordBytes = 1 << 20

// DefaultMaxBytes is the per-segment rotation threshold.
const DefaultMaxBytes = 16 << 20

// DefaultRingSize is how many recent records /debug/decisions can page
// through without touching disk.
const DefaultRingSize = 256

// Record is one audited decision. Everything needed to re-derive the
// verdict travels with it: the raw feature vector, the claimed
// user-agent, and the hash of the model that decided. TimeNs and
// TraceID are provenance only — replay ignores them.
type Record struct {
	Seq       uint64    `json:"seq"`
	TimeNs    int64     `json:"time_ns,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
	ModelHash string    `json:"model_hash,omitempty"`
	SessionID string    `json:"session_id,omitempty"`
	UserAgent string    `json:"ua"`
	Endpoint  string    `json:"endpoint,omitempty"`
	Vector    []float64 `json:"vector,omitempty"`

	Verdict     core.Verdict      `json:"verdict"`
	Explanation *core.Explanation `json:"explanation,omitempty"`

	// Redacted marks a record whose privacy-bearing fields were reduced
	// by RedactRecord before leaving the host: UserAgent replaced by a
	// hash token, Vector dropped (its digest and width kept below), and
	// the per-feature Explanation removed. Redacted records cannot be
	// replayed through auditq; they exist so support bundles can ship
	// decision context without shipping fingerprints.
	Redacted bool `json:"redacted,omitempty"`
	// VectorSHA256 is the hex SHA-256 of the dropped Vector's big-endian
	// IEEE-754 encoding — enough to match identical fingerprints across
	// records without revealing one.
	VectorSHA256 string `json:"vector_sha256,omitempty"`
	// VectorDim is the dropped Vector's width.
	VectorDim int `json:"vector_dim,omitempty"`
}

// Config parameterizes a ledger.
type Config struct {
	// Dir holds the segments; created if missing. Required.
	Dir string
	// Prefix names the segments (default "decisions").
	Prefix string
	// MaxBytes rotates the active segment once it would exceed this
	// (≤ 0 = DefaultMaxBytes).
	MaxBytes int64
	// SampleBenign records every Nth benign verdict (≤ 1 = all; flagged
	// verdicts are always recorded).
	SampleBenign int
	// RingSize bounds the in-memory recent-record ring serving
	// /debug/decisions (0 = DefaultRingSize, < 0 disables).
	RingSize int
}

// Counters is a snapshot of the ledger's exported metrics.
type Counters struct {
	// Records counts records durably framed (the
	// polygraph_audit_records_total counter).
	Records int64
	// Dropped counts benign verdicts skipped by sampling plus records
	// lost to append errors (polygraph_audit_dropped_total).
	Dropped int64
	// Bytes counts framed bytes written (polygraph_audit_bytes_total).
	Bytes int64
}

// Ledger is the concurrency-safe ledger writer. Open one with Open;
// Record is safe for concurrent use.
type Ledger struct {
	dir      string
	prefix   string
	maxBytes int64
	sampleN  int

	records atomic.Int64
	dropped atomic.Int64
	bytes   atomic.Int64
	benign  atomic.Uint64 // benign verdicts seen, drives sampling

	mu     sync.Mutex
	file   *os.File
	writer *bufio.Writer
	size   int64
	segSeq int
	seq    uint64 // next record sequence number
	closed bool

	ringMu sync.Mutex
	ring   []Record
	next   int
	full   bool
}

// Open creates or resumes a ledger in cfg.Dir. Resuming scans the
// newest segment, drops a torn tail (crash mid-append) by truncating
// the file at the last intact frame, and continues appending to it —
// record sequence numbers carry on from the last durable record.
func Open(cfg Config) (*Ledger, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("audit: Config.Dir is required")
	}
	prefix := cfg.Prefix
	if prefix == "" {
		prefix = "decisions"
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: ledger dir: %w", err)
	}
	l := &Ledger{
		dir:      cfg.Dir,
		prefix:   prefix,
		maxBytes: maxBytes,
		sampleN:  cfg.SampleBenign,
	}
	ringSize := cfg.RingSize
	if ringSize == 0 {
		ringSize = DefaultRingSize
	}
	if ringSize > 0 {
		l.ring = make([]Record, ringSize)
	}
	segments, err := Segments(cfg.Dir, prefix)
	if err != nil {
		return nil, err
	}
	if n := len(segments); n > 0 {
		var last int
		fmt.Sscanf(filepath.Base(segments[n-1]), prefix+".%06d.audit", &last)
		l.segSeq = last
		if err := l.recoverSegment(segments[n-1]); err != nil {
			return nil, err
		}
		return l, nil
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

func segmentPath(dir, prefix string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%06d.audit", prefix, seq))
}

// Segments lists a ledger directory's segment files in sequence order.
func Segments(dir, prefix string) ([]string, error) {
	if prefix == "" {
		prefix = "decisions"
	}
	matches, err := filepath.Glob(filepath.Join(dir, prefix+".*.audit"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

func (l *Ledger) openSegment() error {
	f, err := os.OpenFile(segmentPath(l.dir, l.prefix, l.segSeq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("audit: segment: %w", err)
	}
	l.file = f
	l.writer = bufio.NewWriterSize(f, 32<<10)
	l.size = 0
	return nil
}

// recoverSegment reopens an existing segment for append after dropping
// any torn tail: the file is truncated at the end of the last frame
// whose length and checksum verify.
func (l *Ledger) recoverSegment(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("audit: recover %s: %w", path, err)
	}
	good, lastSeq, _, err := scanFrames(f, nil)
	if err != nil {
		f.Close()
		return fmt.Errorf("audit: recover %s: %w", path, err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("audit: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("audit: recover %s: %w", path, err)
	}
	l.file = f
	l.writer = bufio.NewWriterSize(f, 32<<10)
	l.size = good
	l.seq = lastSeq + 1
	if good == 0 {
		l.seq = lastSeq // lastSeq is 0 when the segment held no record
	}
	return nil
}

// scanFrames walks framed records from r, calling fn (when non-nil) for
// each intact one, and returns the byte offset just past the last
// intact frame, the last record's Seq (0 if none), and how many intact
// records were seen. A length or checksum violation stops the walk
// without error — the offset marks where the torn/corrupt tail begins.
func scanFrames(r io.Reader, fn func(Record) error) (good int64, lastSeq uint64, count int, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var head [8]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			return good, lastSeq, count, nil // clean EOF or torn header
		}
		n := binary.BigEndian.Uint32(head[:4])
		sum := binary.BigEndian.Uint32(head[4:])
		if n == 0 || n > MaxRecordBytes {
			return good, lastSeq, count, nil
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return good, lastSeq, count, nil
		}
		if crc32.ChecksumIEEE(body) != sum {
			return good, lastSeq, count, nil
		}
		var rec Record
		if err := json.Unmarshal(body, &rec); err != nil {
			// Framed and checksummed but not a Record: corrupt producer,
			// treat as the end of the readable stream.
			return good, lastSeq, count, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return good, lastSeq, count, err
			}
		}
		good += int64(8 + n)
		lastSeq = rec.Seq
		count++
	}
}

// Admit applies the sampling policy to one decision: flagged verdicts
// are always admitted; benign ones every Nth. A false return means the
// decision was counted as dropped and should not be appended — callers
// use it to skip building the (comparatively expensive) explanation for
// records that would be sampled out anyway.
func (l *Ledger) Admit(flagged bool) bool {
	if flagged {
		return true
	}
	c := l.benign.Add(1)
	if l.sampleN > 1 && c%uint64(l.sampleN) != 0 {
		l.dropped.Add(1)
		return false
	}
	return true
}

// Record applies the sampling policy and appends the decision when
// admitted. The ledger assigns rec.Seq. Sampled-out verdicts count as
// dropped and return nil.
func (l *Ledger) Record(rec Record) error {
	if !l.Admit(rec.Verdict.Flagged) {
		return nil
	}
	return l.Append(rec)
}

// Append writes one admitted record unconditionally — pair it with
// Admit, or use Record for the combined path.
func (l *Ledger) Append(rec Record) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.dropped.Add(1)
		return fmt.Errorf("audit: ledger closed")
	}
	rec.Seq = l.seq
	body, err := json.Marshal(&rec)
	if err != nil {
		l.mu.Unlock()
		l.dropped.Add(1)
		return fmt.Errorf("audit: marshal record: %w", err)
	}
	frame := int64(8 + len(body))
	if l.size+frame > l.maxBytes && l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			l.dropped.Add(1)
			return err
		}
	}
	var head [8]byte
	binary.BigEndian.PutUint32(head[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(head[4:], crc32.ChecksumIEEE(body))
	if _, err := l.writer.Write(head[:]); err != nil {
		l.mu.Unlock()
		l.dropped.Add(1)
		return fmt.Errorf("audit: write frame: %w", err)
	}
	if _, err := l.writer.Write(body); err != nil {
		l.mu.Unlock()
		l.dropped.Add(1)
		return fmt.Errorf("audit: write frame: %w", err)
	}
	l.size += frame
	l.seq++
	l.mu.Unlock()

	l.records.Add(1)
	l.bytes.Add(frame)
	l.remember(rec)
	return nil
}

// remember keeps the record in the recent ring for /debug/decisions.
func (l *Ledger) remember(rec Record) {
	if l.ring == nil {
		return
	}
	l.ringMu.Lock()
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
	if l.next == 0 {
		l.full = true
	}
	l.ringMu.Unlock()
}

// Recent returns up to n recorded decisions, newest first, optionally
// filtered: verdict is "", "flagged", or "benign"; traceID filters on
// an exact trace-ID match.
func (l *Ledger) Recent(n int, verdict, traceID string) []Record {
	if l.ring == nil || n <= 0 {
		return nil
	}
	l.ringMu.Lock()
	defer l.ringMu.Unlock()
	size := l.next
	if l.full {
		size = len(l.ring)
	}
	out := make([]Record, 0, n)
	for i := 0; i < size && len(out) < n; i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		rec := l.ring[idx]
		switch verdict {
		case "flagged":
			if !rec.Verdict.Flagged {
				continue
			}
		case "benign":
			if rec.Verdict.Flagged {
				continue
			}
		}
		if traceID != "" && rec.TraceID != traceID {
			continue
		}
		out = append(out, rec)
	}
	return out
}

func (l *Ledger) rotateLocked() error {
	if err := l.writer.Flush(); err != nil {
		return err
	}
	if err := l.file.Close(); err != nil {
		return err
	}
	l.segSeq++
	return l.openSegment()
}

// Rotate closes the active segment and starts a fresh one — the SIGHUP
// hook, so operators can archive sealed segments while the daemon runs.
func (l *Ledger) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("audit: ledger closed")
	}
	if l.size == 0 {
		return nil // active segment is empty; nothing to seal
	}
	return l.rotateLocked()
}

// Sync flushes buffered frames to the OS.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.writer.Flush(); err != nil {
		return err
	}
	return l.file.Sync()
}

// Close flushes and closes the active segment; further Records fail.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.writer.Flush(); err != nil {
		l.file.Close()
		return err
	}
	return l.file.Close()
}

// Counters snapshots the exported metrics.
func (l *Ledger) Counters() Counters {
	return Counters{
		Records: l.records.Load(),
		Dropped: l.dropped.Load(),
		Bytes:   l.bytes.Load(),
	}
}

// Dir returns the ledger directory (for log lines and tooling).
func (l *Ledger) Dir() string { return l.dir }
