package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Redaction turns an audit record into something that can leave the
// host inside a support bundle: user agents carry device and browser
// identity, and the feature vector IS the fingerprint the paper is
// about, so both are reduced to hashes by default. The -no-redact
// escape hatch exists for operators debugging inside their own trust
// boundary; everything else ships redacted.

// RedactUA replaces a user-agent string with an unlinkable-but-matchable
// token: "sha256:<first 8 bytes hex>#<original length>". Empty strings
// stay empty.
func RedactUA(ua string) string {
	if ua == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(ua))
	return fmt.Sprintf("sha256:%x#%d", sum[:8], len(ua))
}

// VectorDigest returns the hex SHA-256 of a feature vector's big-endian
// IEEE-754 encoding ("" for an empty vector). Identical vectors digest
// identically, so redacted records still cluster by fingerprint.
func VectorDigest(vec []float64) string {
	if len(vec) == 0 {
		return ""
	}
	h := sha256.New()
	var buf [8]byte
	for _, v := range vec {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// RedactRecord returns a copy of rec safe for export: UserAgent hashed,
// Vector replaced by its digest and width, Explanation dropped (its
// per-feature contributions reconstruct feature values). Already
// redacted records pass through unchanged, so redaction is idempotent.
func RedactRecord(rec Record) Record {
	if rec.Redacted {
		return rec
	}
	out := rec
	out.Redacted = true
	out.UserAgent = RedactUA(rec.UserAgent)
	out.VectorSHA256 = VectorDigest(rec.Vector)
	out.VectorDim = len(rec.Vector)
	out.Vector = nil
	out.Explanation = nil
	return out
}

// RedactRecords maps RedactRecord over a slice, returning a new slice.
func RedactRecords(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = RedactRecord(r)
	}
	return out
}
