package audit

import (
	"fmt"
	"os"
)

// ScanStats summarizes a ledger walk.
type ScanStats struct {
	// Segments is how many segment files were scanned.
	Segments int
	// Records is how many intact records were decoded.
	Records int
	// TornSegments lists segment paths whose tail did not verify
	// (short frame or checksum mismatch). A torn tail on the final
	// segment is the expected signature of a crash mid-append; a torn
	// tail on any earlier segment means corruption, since sealed
	// segments are never written again.
	TornSegments []string
	// TornFinal reports whether the only torn segment is the final
	// one.
	TornFinal bool
}

// Clean reports whether the walk saw no torn or corrupt data at all.
func (s ScanStats) Clean() bool { return len(s.TornSegments) == 0 }

// Acceptable reports whether the ledger verifies: every frame intact,
// except possibly a torn tail on the final segment (a crash artifact
// the writer would truncate on reopen).
func (s ScanStats) Acceptable() bool {
	if len(s.TornSegments) == 0 {
		return true
	}
	return len(s.TornSegments) == 1 && s.TornFinal
}

// Scan walks every record in the ledger at dir in segment order,
// calling fn for each intact record. A non-nil error from fn aborts the
// walk and is returned. Framing damage does not abort the walk — it
// seals the damaged segment early and is reported in ScanStats.
func Scan(dir, prefix string, fn func(Record) error) (ScanStats, error) {
	var stats ScanStats
	segments, err := Segments(dir, prefix)
	if err != nil {
		return stats, err
	}
	for i, path := range segments {
		f, err := os.Open(path)
		if err != nil {
			return stats, fmt.Errorf("audit: open %s: %w", path, err)
		}
		info, statErr := f.Stat()
		good, _, count, err := scanFrames(f, fn)
		f.Close()
		stats.Segments++
		stats.Records += count
		if err != nil {
			return stats, err
		}
		if statErr != nil {
			return stats, fmt.Errorf("audit: stat %s: %w", path, statErr)
		}
		if good != info.Size() {
			stats.TornSegments = append(stats.TornSegments, path)
			stats.TornFinal = i == len(segments)-1
		}
	}
	return stats, nil
}
