// Package ua models browser identities: vendor + major version releases,
// user-agent string synthesis and parsing, and the vendor/version distance
// that Browser Polygraph's risk-factor computation (paper Algorithm 1)
// is built on.
//
// The reproduction covers the release universe of the paper (§6.1):
// Chrome 59–119, Firefox 46–119, Edge 17–19 (EdgeHTML) and Edge 79–119
// (Chromium), with headroom beyond 119 for drift experiments.
package ua

import (
	"fmt"
	"strconv"
	"strings"
)

// Vendor identifies a browser family.
type Vendor uint8

const (
	VendorUnknown Vendor = iota
	Chrome
	Firefox
	Edge
)

// String returns the canonical vendor name.
func (v Vendor) String() string {
	switch v {
	case Chrome:
		return "Chrome"
	case Firefox:
		return "Firefox"
	case Edge:
		return "Edge"
	default:
		return "Unknown"
	}
}

// OS identifies the host operating system a profile claims.
type OS uint8

const (
	OSUnknown OS = iota
	Windows10
	Windows11
	MacOSSonoma
	MacOSSequoia
)

// String returns a human-readable OS name.
func (o OS) String() string {
	switch o {
	case Windows10:
		return "Windows 10"
	case Windows11:
		return "Windows 11"
	case MacOSSonoma:
		return "macOS Sonoma"
	case MacOSSequoia:
		return "macOS Sequoia"
	default:
		return "Unknown OS"
	}
}

// uaPlatform returns the platform fragment of a user-agent string.
// Windows 11 intentionally reports the same token as Windows 10 — real
// user-agents froze the platform version, which is why the paper treats
// the OS as unreliable and fingerprints the JS surface instead.
func (o OS) uaPlatform() string {
	switch o {
	case Windows10, Windows11:
		return "Windows NT 10.0; Win64; x64"
	case MacOSSonoma:
		return "Macintosh; Intel Mac OS X 10_15_7"
	case MacOSSequoia:
		return "Macintosh; Intel Mac OS X 10_15_7"
	default:
		return "X11; Linux x86_64"
	}
}

// Release is a browser vendor plus major version ("Chrome 112").
type Release struct {
	Vendor  Vendor
	Version int
}

// String implements fmt.Stringer: "Chrome 112".
func (r Release) String() string {
	return fmt.Sprintf("%s %d", r.Vendor, r.Version)
}

// IsZero reports whether the release is unset.
func (r Release) IsZero() bool { return r.Vendor == VendorUnknown && r.Version == 0 }

// Valid reports whether the release lies in the modeled universe.
func (r Release) Valid() bool {
	switch r.Vendor {
	case Chrome:
		return r.Version >= 59 && r.Version <= 125
	case Firefox:
		return r.Version >= 46 && r.Version <= 125
	case Edge:
		return (r.Version >= 17 && r.Version <= 19) || (r.Version >= 79 && r.Version <= 125)
	default:
		return false
	}
}

// IsLegacyEdge reports whether the release is EdgeHTML-based Edge (17–19).
func (r Release) IsLegacyEdge() bool {
	return r.Vendor == Edge && r.Version >= 17 && r.Version <= 19
}

// MaxDistance is the vendor-mismatch distance of Algorithm 1.
const MaxDistance = 20

// DefaultVersionDivisor is the empirical divisor of Algorithm 1 ("divide
// this difference by 4", paper §6.5).
const DefaultVersionDivisor = 4

// Distance implements the paper's Algorithm 1 distance between two
// releases: MaxDistance across vendors, floor(|Δversion| / divisor)
// within a vendor.
func Distance(a, b Release, divisor int) int {
	if divisor <= 0 {
		divisor = DefaultVersionDivisor
	}
	if a.Vendor != b.Vendor {
		return MaxDistance
	}
	d := a.Version - b.Version
	if d < 0 {
		d = -d
	}
	return d / divisor
}

// UserAgent renders a realistic user-agent string for the release on the
// given OS. The formats follow the shapes real browsers shipped in the
// covered era.
func UserAgent(r Release, os OS) string {
	plat := os.uaPlatform()
	switch {
	case r.Vendor == Firefox:
		// Gecko UAs cap rv at 109 for versions ≥ 110 era quirks are
		// irrelevant here; keep rv == version for parse simplicity.
		return fmt.Sprintf("Mozilla/5.0 (%s; rv:%d.0) Gecko/20100101 Firefox/%d.0",
			plat, r.Version, r.Version)
	case r.Vendor == Edge && r.IsLegacyEdge():
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) "+
			"Chrome/64.0.3282.140 Safari/537.36 Edge/%d.17763", plat, r.Version)
	case r.Vendor == Edge:
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) "+
			"Chrome/%d.0.0.0 Safari/537.36 Edg/%d.0.0.0", plat, r.Version, r.Version)
	case r.Vendor == Chrome:
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) "+
			"Chrome/%d.0.0.0 Safari/537.36", plat, r.Version)
	default:
		return "Mozilla/5.0 (compatible)"
	}
}

// Parse extracts the release from a user-agent string. Recognition order
// matters: Chromium-Edge UAs contain both "Chrome/" and "Edg/", legacy
// Edge contains "Chrome/" and "Edge/". Unrecognized strings return an
// error rather than a zero release so callers must handle junk input.
func Parse(userAgent string) (Release, error) {
	if v, ok := versionAfter(userAgent, "Edg/"); ok {
		return checked(Release{Vendor: Edge, Version: v})
	}
	if v, ok := versionAfter(userAgent, "Edge/"); ok {
		return checked(Release{Vendor: Edge, Version: v})
	}
	if v, ok := versionAfter(userAgent, "Firefox/"); ok {
		return checked(Release{Vendor: Firefox, Version: v})
	}
	if v, ok := versionAfter(userAgent, "Chrome/"); ok {
		return checked(Release{Vendor: Chrome, Version: v})
	}
	return Release{}, fmt.Errorf("ua: unrecognized user-agent %q", truncate(userAgent, 64))
}

func checked(r Release) (Release, error) {
	if !r.Valid() {
		return Release{}, fmt.Errorf("ua: release %s outside modeled universe", r)
	}
	return r, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// versionAfter finds marker in s and parses the integer that follows up
// to the next '.' or non-digit.
func versionAfter(s, marker string) (int, bool) {
	i := strings.Index(s, marker)
	if i < 0 {
		return 0, false
	}
	rest := s[i+len(marker):]
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	if end == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(rest[:end])
	if err != nil {
		return 0, false
	}
	return v, true
}

// ParseName parses the compact "Chrome 112" notation used in tables,
// logs, and the CLI.
func ParseName(name string) (Release, error) {
	fields := strings.Fields(name)
	if len(fields) != 2 {
		return Release{}, fmt.Errorf("ua: bad release name %q", name)
	}
	var vendor Vendor
	switch strings.ToLower(fields[0]) {
	case "chrome":
		vendor = Chrome
	case "firefox":
		vendor = Firefox
	case "edge":
		vendor = Edge
	default:
		return Release{}, fmt.Errorf("ua: unknown vendor %q", fields[0])
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil {
		return Release{}, fmt.Errorf("ua: bad version in %q: %w", name, err)
	}
	return checked(Release{Vendor: vendor, Version: v})
}

// Universe returns every valid release in the modeled ranges, in a stable
// order (Chrome ascending, Firefox ascending, Edge ascending). maxVersion
// caps modern-vendor versions, letting callers model a point in time
// (e.g. 114 for the paper's training window, 119 for the drift window).
func Universe(maxVersion int) []Release {
	var out []Release
	for v := 59; v <= maxVersion && v <= 125; v++ {
		out = append(out, Release{Vendor: Chrome, Version: v})
	}
	for v := 46; v <= maxVersion && v <= 125; v++ {
		out = append(out, Release{Vendor: Firefox, Version: v})
	}
	for v := 17; v <= 19; v++ {
		out = append(out, Release{Vendor: Edge, Version: v})
	}
	for v := 79; v <= maxVersion && v <= 125; v++ {
		out = append(out, Release{Vendor: Edge, Version: v})
	}
	return out
}
