package ua

import (
	"testing"
	"testing/quick"
)

func TestVendorString(t *testing.T) {
	cases := map[Vendor]string{
		Chrome: "Chrome", Firefox: "Firefox", Edge: "Edge", VendorUnknown: "Unknown",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("%d.String() = %q", v, v.String())
		}
	}
}

func TestReleaseString(t *testing.T) {
	r := Release{Vendor: Chrome, Version: 112}
	if r.String() != "Chrome 112" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestValid(t *testing.T) {
	valid := []Release{
		{Chrome, 59}, {Chrome, 119}, {Chrome, 125},
		{Firefox, 46}, {Firefox, 119},
		{Edge, 17}, {Edge, 19}, {Edge, 79}, {Edge, 119},
	}
	for _, r := range valid {
		if !r.Valid() {
			t.Fatalf("%s should be valid", r)
		}
	}
	invalid := []Release{
		{Chrome, 58}, {Chrome, 126},
		{Firefox, 45},
		{Edge, 16}, {Edge, 20}, {Edge, 78},
		{VendorUnknown, 100},
	}
	for _, r := range invalid {
		if r.Valid() {
			t.Fatalf("%s should be invalid", r)
		}
	}
}

func TestIsLegacyEdge(t *testing.T) {
	if !(Release{Edge, 18}).IsLegacyEdge() {
		t.Fatal("Edge 18 is legacy")
	}
	if (Release{Edge, 79}).IsLegacyEdge() {
		t.Fatal("Edge 79 is not legacy")
	}
	if (Release{Chrome, 18}).IsLegacyEdge() {
		t.Fatal("Chrome 18 is not Edge")
	}
}

func TestDistanceAlgorithm1(t *testing.T) {
	cases := []struct {
		a, b Release
		want int
	}{
		// Cross-vendor: max distance.
		{Release{Chrome, 110}, Release{Firefox, 110}, MaxDistance},
		{Release{Edge, 18}, Release{Chrome, 64}, MaxDistance},
		// Same vendor: floor(|diff|/4).
		{Release{Chrome, 112}, Release{Chrome, 112}, 0},
		{Release{Chrome, 112}, Release{Chrome, 115}, 0},
		{Release{Chrome, 112}, Release{Chrome, 116}, 1},
		{Release{Chrome, 112}, Release{Chrome, 108}, 1},
		{Release{Firefox, 46}, Release{Firefox, 114}, 17},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b, DefaultVersionDivisor); got != c.want {
			t.Fatalf("Distance(%s,%s) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(av, bv uint8, sameVendor bool) bool {
		a := Release{Chrome, int(av%60) + 59}
		b := Release{Chrome, int(bv%60) + 59}
		if !sameVendor {
			b.Vendor = Firefox
		}
		return Distance(a, b, 4) == Distance(b, a, 4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceDivisorDefaulting(t *testing.T) {
	a, b := Release{Chrome, 100}, Release{Chrome, 108}
	if Distance(a, b, 0) != 2 {
		t.Fatal("divisor 0 should default to 4")
	}
	if Distance(a, b, -1) != 2 {
		t.Fatal("negative divisor should default to 4")
	}
	if Distance(a, b, 8) != 1 {
		t.Fatal("custom divisor ignored")
	}
}

func TestUserAgentParseRoundtrip(t *testing.T) {
	for _, r := range Universe(125) {
		for _, os := range []OS{Windows10, Windows11, MacOSSonoma, MacOSSequoia} {
			s := UserAgent(r, os)
			got, err := Parse(s)
			if err != nil {
				t.Fatalf("Parse(%q): %v", s, err)
			}
			if got != r {
				t.Fatalf("roundtrip %s via %q => %s", r, s, got)
			}
		}
	}
}

func TestParseRejectsJunk(t *testing.T) {
	junk := []string{
		"",
		"curl/8.0",
		"Mozilla/5.0 (compatible; Googlebot/2.1)",
		"Chrome/",          // marker with no digits
		"Chrome/999.0.0.0", // out of universe
	}
	for _, s := range junk {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) should fail", s)
		}
	}
}

func TestParseEdgePrecedence(t *testing.T) {
	// Chromium Edge UA contains Chrome/ too; Edg/ must win.
	s := UserAgent(Release{Edge, 112}, Windows10)
	r, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vendor != Edge || r.Version != 112 {
		t.Fatalf("parsed %s", r)
	}
	// Legacy Edge contains Chrome/64; Edge/ must win.
	s = UserAgent(Release{Edge, 18}, Windows10)
	r, err = Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vendor != Edge || r.Version != 18 {
		t.Fatalf("parsed legacy %s", r)
	}
}

func TestParseName(t *testing.T) {
	r, err := ParseName("Chrome 110")
	if err != nil || r != (Release{Chrome, 110}) {
		t.Fatalf("ParseName: %v %v", r, err)
	}
	if _, err := ParseName("Safari 17"); err == nil {
		t.Fatal("unknown vendor accepted")
	}
	if _, err := ParseName("Chrome"); err == nil {
		t.Fatal("missing version accepted")
	}
	if _, err := ParseName("Chrome x"); err == nil {
		t.Fatal("non-numeric version accepted")
	}
	if _, err := ParseName("Chrome 12"); err == nil {
		t.Fatal("out-of-universe version accepted")
	}
	if r, err := ParseName("firefox 102"); err != nil || r.Vendor != Firefox {
		t.Fatal("case-insensitive vendor failed")
	}
}

func TestUniverse(t *testing.T) {
	all := Universe(125)
	seen := map[Release]bool{}
	for _, r := range all {
		if !r.Valid() {
			t.Fatalf("universe contains invalid %s", r)
		}
		if seen[r] {
			t.Fatalf("universe contains duplicate %s", r)
		}
		seen[r] = true
	}
	// Chrome 59-125 (67) + Firefox 46-125 (80) + Edge 17-19 (3) + Edge
	// 79-125 (47) = 197.
	if len(all) != 197 {
		t.Fatalf("universe size = %d", len(all))
	}
	// Capped universe for the training window.
	trainUniverse := Universe(114)
	for _, r := range trainUniverse {
		if r.Version > 114 && !r.IsLegacyEdge() {
			t.Fatalf("capped universe contains %s", r)
		}
	}
}

func TestOSStrings(t *testing.T) {
	for _, os := range []OS{Windows10, Windows11, MacOSSonoma, MacOSSequoia, OSUnknown} {
		if os.String() == "" {
			t.Fatal("empty OS string")
		}
	}
}

func TestWindowsUAIndistinguishable(t *testing.T) {
	// Windows 10 and 11 must produce identical UA strings — the frozen
	// platform token is why UA-based OS detection fails.
	r := Release{Chrome, 110}
	if UserAgent(r, Windows10) != UserAgent(r, Windows11) {
		t.Fatal("Windows 10/11 UAs differ")
	}
}

func BenchmarkParse(b *testing.B) {
	s := UserAgent(Release{Edge, 112}, Windows10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}
