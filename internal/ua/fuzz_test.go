package ua

import "testing"

// FuzzParse hardens user-agent parsing against hostile header values: it
// must never panic, and anything it accepts must be a valid release that
// re-renders to a string Parse accepts identically.
func FuzzParse(f *testing.F) {
	f.Add("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36")
	f.Add("Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:109.0) Gecko/20100101 Firefox/109.0")
	f.Add("Chrome/")
	f.Add("Edge/18.17763 Chrome/64")
	f.Add("Edg/999999999999999999999999")
	f.Add("")
	f.Add("Chrome/112 Edg/113 Edge/18 Firefox/99")

	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		if !r.Valid() {
			t.Fatalf("Parse accepted invalid release %v from %q", r, s)
		}
		rendered := UserAgent(r, Windows10)
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered UA %q rejected: %v", rendered, err)
		}
		if again != r {
			t.Fatalf("render/parse roundtrip: %v -> %v", r, again)
		}
	})
}
