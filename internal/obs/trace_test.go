package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"polygraph/internal/pipeline"
)

func TestIDGenDeterministicSet(t *testing.T) {
	a, b := NewIDGen(7), NewIDGen(7)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %s != %s for the same seed", i, x, y)
		}
	}
	c := NewIDGen(8)
	if a0, c0 := NewIDGen(7).Next(), c.Next(); a0 == c0 {
		t.Fatal("different seeds produced the same first ID")
	}
}

func TestIDGenConcurrentUnique(t *testing.T) {
	g := NewIDGen(1)
	const workers, perWorker = 8, 500
	ids := make(chan TraceID, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ids <- g.Next()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[TraceID]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d unique IDs, want %d", len(seen), workers*perWorker)
	}
}

func TestTraceIDString(t *testing.T) {
	if got := TraceID(0xab).String(); got != "00000000000000ab" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTraceRingLastAndSlowest(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		r.Put(&Trace{ID: TraceID(i), DurUs: int64(i * 10)})
	}
	if r.Len() != 6 {
		t.Fatalf("Len() = %d", r.Len())
	}
	last := r.Last(3)
	if len(last) != 3 || last[0].ID != 6 || last[1].ID != 5 || last[2].ID != 4 {
		t.Fatalf("Last(3) = %v", ids(last))
	}
	// Ring size 4: traces 3..6 retained; slowest first.
	slow := r.Slowest(2)
	if len(slow) != 2 || slow[0].ID != 6 || slow[1].ID != 5 {
		t.Fatalf("Slowest(2) = %v", ids(slow))
	}
	if got := r.Last(100); len(got) != 4 {
		t.Fatalf("Last(100) returned %d traces from a 4-slot ring", len(got))
	}
}

func ids(trs []*Trace) []string {
	out := make([]string, len(trs))
	for i, tr := range trs {
		out[i] = fmt.Sprintf("%d", uint64(tr.ID))
	}
	return out
}

func TestTracerSpansAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	tracer := NewTracer(TracerConfig{
		Seed:          3,
		SlowThreshold: time.Nanosecond, // everything is slow
		Logger:        slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	ctx, tr := tracer.Start(context.Background(), "/v1/collect")
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not on context")
	}
	end := pipeline.StartSpan(ctx, "score")
	time.Sleep(time.Millisecond)
	end()
	tracer.Finish(tr, "ok")

	if len(tr.Spans) != 1 || tr.Spans[0].Name != "score" {
		t.Fatalf("spans = %+v", tr.Spans)
	}
	if tr.Spans[0].DurUs <= 0 {
		t.Fatalf("span duration %dµs not positive", tr.Spans[0].DurUs)
	}
	if tr.DurUs < tr.Spans[0].DurUs {
		t.Fatalf("trace %dµs shorter than its span %dµs", tr.DurUs, tr.Spans[0].DurUs)
	}

	var rec struct {
		Msg     string `json:"msg"`
		TraceID string `json:"trace_id"`
		Span    int64  `json:"span_score_us"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow log not JSON: %v (%q)", err, buf.String())
	}
	if rec.Msg != "slow request" || rec.TraceID != tr.ID.String() || rec.Span != tr.Spans[0].DurUs {
		t.Fatalf("slow log %+v does not match trace %s", rec, tr.ID)
	}
}

func TestTracerFastRequestNotLogged(t *testing.T) {
	var buf bytes.Buffer
	tracer := NewTracer(TracerConfig{
		Seed:          3,
		SlowThreshold: time.Hour,
		Logger:        slog.New(slog.NewTextHandler(&buf, nil)),
	})
	_, tr := tracer.Start(context.Background(), "tcp")
	tracer.Finish(tr, "ok")
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %q", buf.String())
	}
	if tracer.Ring().Len() != 1 {
		t.Fatal("finished trace not retained")
	}
}

func TestServeTraces(t *testing.T) {
	tracer := NewTracer(TracerConfig{Seed: 5, RingSize: 8})
	for i := 0; i < 3; i++ {
		_, tr := tracer.Start(context.Background(), "/v1/collect")
		tracer.Finish(tr, "ok")
	}
	req := httptest.NewRequest("GET", "/debug/traces?n=2", nil)
	w := httptest.NewRecorder()
	tracer.ServeTraces(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var page struct {
		Count   uint64 `json:"count"`
		Last    []json.RawMessage
		Slowest []json.RawMessage
	}
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Count != 3 || len(page.Last) != 2 || len(page.Slowest) != 2 {
		t.Fatalf("page count=%d last=%d slowest=%d", page.Count, len(page.Last), len(page.Slowest))
	}

	w = httptest.NewRecorder()
	tracer.ServeTraces(w, httptest.NewRequest("GET", "/debug/traces?n=bogus", nil))
	if w.Code != 400 {
		t.Fatalf("bad n accepted: %d", w.Code)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, true).Info("hello", "k", "v")
	if !strings.HasPrefix(buf.String(), "{") {
		t.Fatalf("json logger emitted %q", buf.String())
	}
	buf.Reset()
	NewLogger(&buf, false).Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("text logger emitted %q", buf.String())
	}
	// nil writer must discard without panicking.
	NewLogger(nil, false).With("a", 1).WithGroup("g").Info("dropped")
}
