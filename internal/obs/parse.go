package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A reusable reader for the Prometheus text exposition (0.0.4) format
// this package's writers emit. It started life as loadgen's private
// per-checkpoint parser; it is promoted here so the loadgen
// reconciliation checks and the support-bundle analyzers share one
// implementation. Like the linter it is deliberately lenient: lines it
// cannot parse are skipped, because an analyzer reading a bundle from a
// sick replica must extract what it can rather than give up at the
// first malformed line (promlint reports the malformation separately).

// Sample is one parsed sample line: name{labels} value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label, "" when absent.
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Exposition is a parsed text exposition. Samples keep file order,
// which for histogram buckets means increasing le terminated by +Inf —
// the order the writers emit and the cumulative-series helpers assume.
type Exposition struct {
	samples []Sample
	byName  map[string][]int
	types   map[string]string
}

// ParseExposition parses a text exposition from r. It returns an error
// only for I/O failure; malformed lines are skipped.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{byName: map[string][]int{}, types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) == 4 && fields[1] == "TYPE" {
				e.types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, rest, ok := splitSample(line)
		if !ok {
			continue
		}
		value, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			continue
		}
		e.byName[name] = append(e.byName[name], len(e.samples))
		e.samples = append(e.samples, Sample{Name: name, Labels: parseLabels(labels), Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseExpositionString parses an in-memory exposition.
func ParseExpositionString(text string) *Exposition {
	e, _ := ParseExposition(strings.NewReader(text)) // string reader cannot fail
	return e
}

// Families returns the sorted family names that have samples (histogram
// component samples collapse to their family name).
func (e *Exposition) Families() []string {
	set := map[string]bool{}
	for name := range e.byName {
		set[histFamily(name)] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Type returns the declared TYPE of a family, "" when undeclared.
func (e *Exposition) Type(family string) string { return e.types[family] }

// Has reports whether the named family has at least one sample (for a
// histogram, any of its _bucket/_sum/_count samples).
func (e *Exposition) Has(family string) bool {
	if len(e.byName[family]) > 0 {
		return true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if len(e.byName[family+suf]) > 0 {
			return true
		}
	}
	return false
}

// Samples returns the samples with the exact given name in file order.
func (e *Exposition) Samples(name string) []Sample {
	idx := e.byName[name]
	out := make([]Sample, len(idx))
	for i, j := range idx {
		out[i] = e.samples[j]
	}
	return out
}

// Value returns the value of the named unlabeled sample — the shape of
// every plain counter and gauge this repo exports.
func (e *Exposition) Value(name string) (float64, error) {
	for _, j := range e.byName[name] {
		if len(e.samples[j].Labels) == 0 {
			return e.samples[j].Value, nil
		}
	}
	return 0, fmt.Errorf("obs: metric %s not found", name)
}

// Sum returns the sum over every sample of the named family — the total
// of a labeled counter family like polygraph_rejected_total. Absent
// families sum to 0.
func (e *Exposition) Sum(name string) float64 {
	var total float64
	for _, j := range e.byName[name] {
		total += e.samples[j].Value
	}
	return total
}

// HistogramBuckets returns, per value of the given label, the
// cumulative _bucket counts of the named histogram family in exposition
// order (increasing le, terminated by +Inf). Series without the label
// are skipped; expositions without the family return an empty map.
func (e *Exposition) HistogramBuckets(family, label string) map[string][]uint64 {
	out := map[string][]uint64{}
	for _, j := range e.byName[family+"_bucket"] {
		s := e.samples[j]
		lv := s.Label(label)
		if lv == "" {
			continue
		}
		out[lv] = append(out[lv], uint64(s.Value))
	}
	return out
}

// Bucket is one cumulative histogram bucket with its upper bound.
type Bucket struct {
	// Le is the bucket's inclusive upper bound (math.Inf(1) for +Inf).
	Le float64
	// Cum is the cumulative count of observations ≤ Le.
	Cum float64
}

// Histogram returns, per value of the given label, the cumulative
// _bucket series of the named histogram family with parsed le upper
// bounds, in exposition order (increasing le, terminated by +Inf).
// Unlike HistogramBuckets this keeps the bounds, which is what SLI
// derivation needs to count events under a latency threshold. Series
// without the label are skipped; absent families return an empty map.
func (e *Exposition) Histogram(family, label string) map[string][]Bucket {
	out := map[string][]Bucket{}
	for _, j := range e.byName[family+"_bucket"] {
		s := e.samples[j]
		lv := s.Label(label)
		if lv == "" {
			continue
		}
		leStr := s.Label("le")
		var le float64
		if leStr == "+Inf" {
			le = math.Inf(1)
		} else {
			var err error
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
		}
		out[lv] = append(out[lv], Bucket{Le: le, Cum: s.Value})
	}
	return out
}

// ParseMetric returns the value of the named unlabeled family in an
// exposition text — the one-shot form of Exposition.Value.
func ParseMetric(text, name string) (float64, error) {
	return ParseExpositionString(text).Value(name)
}

// ParseHistogram is the one-shot form of Exposition.HistogramBuckets.
func ParseHistogram(text, family, label string) map[string][]uint64 {
	return ParseExpositionString(text).HistogramBuckets(family, label)
}

// QuantileBucket returns the index of the bucket holding quantile q of
// a cumulative bucket series, and the total count. A zero total returns
// index -1.
func QuantileBucket(cum []uint64, q float64) (int, uint64) {
	if len(cum) == 0 {
		return -1, 0
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return -1, 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	for i, c := range cum {
		if c >= rank {
			return i, total
		}
	}
	return len(cum) - 1, total
}

// parseLabels splits a label body into pairs, unescaping values (the
// inverse of EscapeLabel).
func parseLabels(labels string) []Label {
	var out []Label
	for _, kv := range splitLabels(labels) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		name := strings.TrimSpace(kv[:eq])
		val := strings.TrimSpace(kv[eq+1:])
		if len(val) >= 2 && val[0] == '"' && val[len(val)-1] == '"' {
			val = val[1 : len(val)-1]
		}
		out = append(out, Label{Name: name, Value: unescapeLabel(val)})
	}
	return out
}

// unescapeLabel reverses EscapeLabel: \\ → \, \n → newline, \" → ".
func unescapeLabel(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case '"':
				b.WriteByte('"')
			default:
				b.WriteByte(v[i])
				b.WriteByte(v[i+1])
			}
			i++
			continue
		}
		b.WriteByte(v[i])
	}
	return b.String()
}
