// Package obs is the stdlib-only observability layer for the serving
// and training stack: request-scoped traces with deterministic IDs and
// a lock-free ring buffer (trace.go, ring.go), power-of-two-bucket
// latency histograms shared with the loadgen harness (hist.go),
// Prometheus text-exposition writers and a format linter (prom.go,
// lint.go), live feature-drift telemetry over internal/drift's PSI
// (drift.go), and a structured-logging constructor (below).
//
// The paper's deployment argument (§7) is that coarse-grained
// fingerprints are cheap enough to score inline on every login — which
// makes the per-request latency distribution, rejection causes, and
// model staleness the operational signals that decide whether the
// system is deployable at all. This package turns the daemon from a
// black box into something you can operate: the collect server threads
// a Tracer and per-endpoint Hists through its handlers, polygraphd
// runs a DriftMonitor against accepted traffic, and everything exports
// through /metrics in a form the linter can gate in CI.
//
// Determinism contract: nothing here perturbs scores or ledgers. Trace
// IDs are PCG-seeded and sequence-derived (fixed seed → fixed IDs),
// histograms observe latencies without touching the request path's
// data, and the drift reservoir samples with its own PCG stream.
package obs

import (
	"context"
	"io"
	"log/slog"
)

// TraceIDKey is the attribute key under which every slog record emitted
// by this package carries the request's trace ID.
const TraceIDKey = "trace_id"

// NewLogger builds the daemon's structured logger: text handler by
// default (human-readable operator output), JSON when jsonFormat is set
// (log shippers). A nil writer discards.
func NewLogger(w io.Writer, jsonFormat bool) *slog.Logger {
	if w == nil {
		return slog.New(discardHandler{})
	}
	opts := &slog.HandlerOptions{Level: slog.LevelInfo}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// discardHandler drops every record (slog.DiscardHandler arrives only
// in Go 1.24; the module supports 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
