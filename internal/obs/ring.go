package obs

import (
	"sort"
	"sync/atomic"
)

// TraceRing is a fixed-size lock-free ring of finished traces. Writers
// claim a slot with one atomic sequence increment and store a pointer;
// readers load pointers and walk the immutable traces behind them. Only
// quiescent traces enter the ring (Tracer.Finish stores a trace after
// its last span is recorded), so a loaded pointer is always safe to
// read without synchronization. A slot can be overwritten between a
// reader's sequence load and its slot load — the reader then sees a
// newer trace than expected, never a torn one.
type TraceRing struct {
	slots []atomic.Pointer[Trace]
	seq   atomic.Uint64
}

// NewTraceRing builds a ring with the given capacity (minimum 1).
func NewTraceRing(size int) *TraceRing {
	if size < 1 {
		size = 1
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], size)}
}

// Put stores a finished trace, evicting the oldest when full.
func (r *TraceRing) Put(tr *Trace) {
	i := r.seq.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(tr)
}

// Len reports how many traces have ever been put (not capped at the
// ring size).
func (r *TraceRing) Len() uint64 { return r.seq.Load() }

// Last returns up to n most-recent traces, newest first.
func (r *TraceRing) Last(n int) []*Trace {
	size := uint64(len(r.slots))
	seq := r.seq.Load()
	if n < 0 {
		n = 0
	}
	out := make([]*Trace, 0, n)
	for back := uint64(0); back < size && uint64(len(out)) < uint64(n) && back < seq; back++ {
		tr := r.slots[(seq-1-back)%size].Load()
		if tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Slowest returns up to n retained traces sorted by descending
// duration (ties broken by trace ID for stable output).
func (r *TraceRing) Slowest(n int) []*Trace {
	var all []*Trace
	for i := range r.slots {
		if tr := r.slots[i].Load(); tr != nil {
			all = append(all, tr)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].DurUs != all[j].DurUs {
			return all[i].DurUs > all[j].DurUs
		}
		return all[i].ID < all[j].ID
	})
	if n >= 0 && len(all) > n {
		all = all[:n]
	}
	return all
}
