package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition (0.0.4) linter. It does not aim
// for parser completeness — it catches the malformations that actually
// break scrapers: samples without HELP/TYPE, invalid metric names,
// unknown types, histograms whose cumulative buckets decrease, and
// bucket series missing the terminal le="+Inf" or disagreeing with
// their _count. CI runs it over /metrics (cmd/promlint) so a bad
// exposition fails the build instead of failing a scraper at 3am.

// LintProblem is one finding.
type LintProblem struct {
	Line int
	Msg  string
}

func (p LintProblem) String() string { return fmt.Sprintf("line %d: %s", p.Line, p.Msg) }

var (
	lintNameRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	lintTypes  = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
)

// lintSeries tracks one histogram bucket series while its lines stream
// by ("family" + fixed non-le labels identify a series).
type lintSeries struct {
	lastLe   float64
	lastCum  uint64
	sawInf   bool
	infCount uint64
	line     int
}

// Lint checks the exposition read from r. require lists metric families
// that must be present (a histogram family counts as present when its
// _bucket/_count samples appear). It returns the problems found —
// empty means clean — and an error only for I/O failure.
func Lint(r io.Reader, require ...string) ([]LintProblem, error) {
	var problems []LintProblem
	addf := func(line int, format string, args ...any) {
		problems = append(problems, LintProblem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	helped := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{}
	buckets := map[string]*lintSeries{}
	// declared tracks families whose HELP/TYPE headers actually appeared
	// (helped/typed double as "already reported" bookkeeping, so they
	// cannot detect a family emitted twice — the classic bug when two
	// writers are concatenated into one exposition).
	helpDeclared := map[string]bool{}
	typeDeclared := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !lintNameRe.MatchString(name) {
				addf(lineNo, "invalid metric name %q in %s", name, fields[1])
				continue
			}
			switch fields[1] {
			case "HELP":
				if helpDeclared[name] {
					addf(lineNo, "duplicate HELP for %s (family emitted more than once?)", name)
				}
				helpDeclared[name] = true
				helped[name] = true
			case "TYPE":
				if typeDeclared[name] {
					addf(lineNo, "duplicate TYPE for %s (family emitted more than once?)", name)
				}
				typeDeclared[name] = true
				if seen[name] {
					addf(lineNo, "TYPE for %s appears after its samples", name)
				}
				typ := ""
				if len(fields) == 4 {
					typ = fields[3]
				}
				if !lintTypes[typ] {
					addf(lineNo, "unknown TYPE %q for %s", typ, name)
				}
				typed[name] = typ
			}
			continue
		}

		// A sample line: name{labels} value [timestamp]
		name, labels, rest, ok := splitSample(line)
		if !ok {
			addf(lineNo, "unparseable sample %q", line)
			continue
		}
		if !lintNameRe.MatchString(name) {
			addf(lineNo, "invalid metric name %q", name)
		}
		value, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			addf(lineNo, "unparseable value in %q", line)
			continue
		}

		family := histFamily(name)
		if !helped[name] && !helped[family] {
			addf(lineNo, "sample %s without # HELP", name)
			helped[name] = true // report once per family
		}
		if _, ok := typed[name]; !ok {
			if _, ok := typed[family]; !ok {
				addf(lineNo, "sample %s without # TYPE", name)
				typed[name] = "untyped"
			}
		}
		seen[name] = true
		seen[family] = true

		if strings.HasSuffix(name, "_bucket") {
			key, le, found := bucketKey(family, labels)
			if !found {
				addf(lineNo, "%s sample without le label", name)
				continue
			}
			s := buckets[key]
			if s == nil {
				s = &lintSeries{lastLe: math.Inf(-1)}
				buckets[key] = s
			}
			s.line = lineNo
			leV, err := strconv.ParseFloat(le, 64)
			if le == "+Inf" {
				leV = math.Inf(1)
				err = nil
			}
			if err != nil {
				addf(lineNo, "unparseable le=%q in %s", le, key)
				continue
			}
			if leV <= s.lastLe {
				addf(lineNo, "bucket series %s: le=%q not increasing", key, le)
			}
			cum := uint64(value)
			if s.lastLe != math.Inf(-1) && cum < s.lastCum {
				addf(lineNo, "bucket series %s: cumulative count decreases at le=%q (%d < %d)",
					key, le, cum, s.lastCum)
			}
			s.lastLe = leV
			s.lastCum = cum
			if math.IsInf(leV, 1) {
				s.sawInf = true
				s.infCount = cum
			} else if s.sawInf {
				addf(lineNo, "bucket series %s: le=%q after le=\"+Inf\"", key, le)
			}
			continue
		}
		if strings.HasSuffix(name, "_count") && typed[family] == "histogram" {
			key, _, _ := bucketKey(family, labels)
			if s, ok := buckets[key]; ok && s.sawInf && uint64(value) != s.infCount {
				addf(lineNo, "histogram %s: _count %d != +Inf bucket %d", key, uint64(value), s.infCount)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for key, s := range buckets {
		if !s.sawInf {
			addf(s.line, "bucket series %s missing terminal le=\"+Inf\"", key)
		}
	}
	for _, name := range require {
		if !seen[name] {
			addf(0, "required family %s absent", name)
		}
	}
	return problems, nil
}

// splitSample separates "name{labels} value" into parts; labels is ""
// for unlabeled samples.
func splitSample(line string) (name, labels, rest string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", false
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		i := strings.IndexAny(line, " \t")
		if i < 0 {
			return "", "", "", false
		}
		name, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	if name == "" || rest == "" {
		return "", "", "", false
	}
	return name, labels, rest, true
}

// histFamily strips a histogram/summary component suffix so _bucket,
// _sum, and _count samples resolve to the family their TYPE names.
func histFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// bucketKey identifies one bucket series: the family plus its non-le
// labels (order preserved — our writers emit labels in a fixed order).
// It also extracts the le value.
func bucketKey(family, labels string) (key, le string, found bool) {
	var keep []string
	for _, kv := range splitLabels(labels) {
		if strings.HasPrefix(kv, "le=") {
			le = strings.Trim(kv[len("le="):], `"`)
			found = true
			continue
		}
		keep = append(keep, kv)
	}
	key = family
	if len(keep) > 0 {
		key += "{" + strings.Join(keep, ",") + "}"
	}
	return key, le, found
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, labels[start:])
	return out
}
