package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/pipeline"
	"polygraph/internal/rng"
)

// TraceID identifies one request trace.
type TraceID uint64

// String renders the ID as fixed-width hex, the form logs and
// /debug/traces use.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON emits the hex form.
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// IDGen produces trace IDs that are deterministic for a fixed seed yet
// safe for concurrent use: two PCG-drawn keys whiten an atomic sequence
// through a splitmix64 finalizer, so the ID *set* for N requests is a
// pure function of the seed while concurrent callers never contend on
// generator state. (A shared *rng.PCG would need a lock; a per-call
// finalizer needs none.)
type IDGen struct {
	k0, k1 uint64
	seq    atomic.Uint64
}

// NewIDGen seeds a generator. Seed 0 is valid (it is still whitened
// through PCG).
func NewIDGen(seed uint64) *IDGen {
	r := rng.New(seed)
	return &IDGen{k0: r.Uint64(), k1: r.Uint64()}
}

// Next returns the next trace ID.
func (g *IDGen) Next() TraceID {
	n := g.seq.Add(1)
	return TraceID(mix64(n^g.k0) ^ g.k1)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Span is one named, timed section of a trace. Offsets and durations
// are microseconds relative to the trace start.
type Span struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// Trace is one request's record: identity, endpoint, outcome, total
// duration, and the spans recorded along the way. It implements
// pipeline.SpanRecorder, so attaching it to a request context (which
// Tracer.Start does) makes every pipeline stage and StartSpan section
// report into it. A Trace is mutable until Tracer.Finish and immutable
// after — the ring and /debug/traces only ever see finished traces.
type Trace struct {
	ID       TraceID `json:"id"`
	Endpoint string  `json:"endpoint"`
	Status   string  `json:"status"`
	DurUs    int64   `json:"dur_us"`
	Spans    []Span  `json:"spans"`

	start time.Time
	mu    sync.Mutex
}

// RecordSpan implements pipeline.SpanRecorder.
func (t *Trace) RecordSpan(name string, start time.Time, d time.Duration) {
	sp := Span{Name: name, StartUs: start.Sub(t.start).Microseconds(), DurUs: d.Microseconds()}
	t.mu.Lock()
	t.Spans = append(t.Spans, sp)
	t.mu.Unlock()
}

// traceKey carries the active *Trace on a request context.
type traceKey struct{}

// TraceFrom returns the trace on ctx (nil when untraced).
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// RingSize bounds retained finished traces; 0 uses 256.
	RingSize int
	// Seed drives the deterministic ID stream.
	Seed uint64
	// SlowThreshold marks traces worth a structured log line; 0 uses
	// the paper's 100 ms inline-scoring budget.
	SlowThreshold time.Duration
	// Logger receives slow-request records; nil discards.
	Logger *slog.Logger
}

// Tracer mints request traces at ingress, retains finished ones in a
// ring, and logs the slow outliers.
type Tracer struct {
	ids  *IDGen
	ring *TraceRing
	slow time.Duration
	log  *slog.Logger
}

// NewTracer builds a Tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	size := cfg.RingSize
	if size == 0 {
		size = 256
	}
	slow := cfg.SlowThreshold
	if slow == 0 {
		slow = 100 * time.Millisecond
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	return &Tracer{
		ids:  NewIDGen(cfg.Seed),
		ring: NewTraceRing(size),
		slow: slow,
		log:  logger,
	}
}

// Ring exposes the finished-trace ring (for /debug/traces handlers and
// tests).
func (t *Tracer) Ring() *TraceRing { return t.ring }

// Start opens a trace for one request on endpoint, returning a derived
// context that carries the trace both under its own key and as the
// pipeline span recorder. Callers must call Finish exactly once.
func (t *Tracer) Start(ctx context.Context, endpoint string) (context.Context, *Trace) {
	tr := &Trace{ID: t.ids.Next(), Endpoint: endpoint, start: time.Now()}
	ctx = context.WithValue(ctx, traceKey{}, tr)
	ctx = pipeline.WithSpanRecorder(ctx, tr)
	return ctx, tr
}

// Finish seals the trace with its outcome, retains it in the ring, and
// emits a structured slow-request record when the total duration
// crosses the threshold. After Finish the trace is immutable.
func (t *Tracer) Finish(tr *Trace, status string) {
	d := time.Since(tr.start)
	tr.Status = status
	tr.DurUs = d.Microseconds()
	t.ring.Put(tr)
	if d >= t.slow {
		attrs := []any{
			slog.String(TraceIDKey, tr.ID.String()),
			slog.String("endpoint", tr.Endpoint),
			slog.String("status", tr.Status),
			slog.Int64("dur_us", tr.DurUs),
		}
		for _, sp := range tr.Spans {
			attrs = append(attrs, slog.Int64("span_"+sp.Name+"_us", sp.DurUs))
		}
		t.log.Warn("slow request", attrs...)
	}
}

// tracePage is the /debug/traces JSON document.
type tracePage struct {
	Count   uint64   `json:"count"`
	Last    []*Trace `json:"last"`
	Slowest []*Trace `json:"slowest"`
}

// ServeTraces answers GET /debug/traces: the most recent n finished
// traces (newest first) and the n slowest retained ones (?n=, default
// 32, capped at the ring size).
func (t *Tracer) ServeTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	page := tracePage{
		Count:   t.ring.Len(),
		Last:    t.ring.Last(n),
		Slowest: t.ring.Slowest(n),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(page)
}
