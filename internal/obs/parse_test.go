package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// The parser is the read half of the writers in prom.go; these tests
// pin the round trip the support-bundle analyzers and loadgen both
// depend on.

func TestParseExpositionBasics(t *testing.T) {
	var b strings.Builder
	WriteMetric(&b, "polygraph_collections_total", "Sessions scored.", "counter", 42)
	WriteLabeledFamily(&b, "polygraph_rejected_total", "Rejected requests.", "counter",
		"reason", []LabeledValue{{Label: "decode", Value: 3}, {Label: "too_large", Value: 5}})

	ex := ParseExpositionString(b.String())
	if v, err := ex.Value("polygraph_collections_total"); err != nil || v != 42 {
		t.Fatalf("Value = %v, %v; want 42, nil", v, err)
	}
	if got := ex.Sum("polygraph_rejected_total"); got != 8 {
		t.Fatalf("Sum(rejected) = %v, want 8", got)
	}
	samples := ex.Samples("polygraph_rejected_total")
	if len(samples) != 2 || samples[0].Label("reason") != "decode" || samples[1].Value != 5 {
		t.Fatalf("Samples(rejected) = %+v", samples)
	}
	if ex.Type("polygraph_rejected_total") != "counter" {
		t.Fatalf("Type = %q, want counter", ex.Type("polygraph_rejected_total"))
	}
	if !ex.Has("polygraph_collections_total") || ex.Has("polygraph_missing") {
		t.Fatal("Has() misreports family presence")
	}
	families := ex.Families()
	want := []string{"polygraph_collections_total", "polygraph_rejected_total"}
	if len(families) != 2 || families[0] != want[0] || families[1] != want[1] {
		t.Fatalf("Families = %v, want %v", families, want)
	}
}

func TestValueMissingMetric(t *testing.T) {
	ex := ParseExpositionString("polygraph_x{a=\"b\"} 1\n")
	if _, err := ex.Value("polygraph_x"); err == nil {
		t.Fatal("Value on a labeled-only family should error (no unlabeled sample)")
	}
	if _, err := ex.Value("polygraph_absent"); err == nil {
		t.Fatal("Value on an absent family should error")
	}
}

func TestParseExpositionSkipsMalformedLines(t *testing.T) {
	text := "garbage line\npolygraph_ok 7\npolygraph_bad notanumber\n# weird comment\n"
	ex := ParseExpositionString(text)
	if v, err := ex.Value("polygraph_ok"); err != nil || v != 7 {
		t.Fatalf("Value(polygraph_ok) = %v, %v; want 7", v, err)
	}
	if ex.Has("polygraph_bad") {
		t.Fatal("unparseable value line should be skipped")
	}
}

func TestParseHistogramRoundTrip(t *testing.T) {
	var h Hist
	for _, d := range []time.Duration{50 * time.Microsecond, 900 * time.Microsecond,
		900 * time.Microsecond, 15 * time.Millisecond} {
		h.Record(d)
	}
	var b strings.Builder
	WriteHistogramFamily(&b, "polygraph_score_duration_microseconds", "Latency.",
		"endpoint", []HistogramSeries{HistogramSnapshot("/v1/collect", &h)})

	hist := ParseHistogram(b.String(), "polygraph_score_duration_microseconds", "endpoint")
	cum, ok := hist["/v1/collect"]
	if !ok {
		t.Fatalf("series /v1/collect missing; got %v", hist)
	}
	if len(cum) != NumBuckets {
		t.Fatalf("bucket count = %d, want %d", len(cum), NumBuckets)
	}
	if cum[len(cum)-1] != 4 {
		t.Fatalf("+Inf cumulative = %d, want 4", cum[len(cum)-1])
	}
	// Cumulative monotonicity.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative series decreases at %d: %v", i, cum)
		}
	}
	idx, total := QuantileBucket(cum, 0.99)
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
	// p99 of 4 samples is the max (15ms); its bucket bound must cover it.
	if BucketUpperMicros(idx) < 15_000 {
		t.Fatalf("p99 bucket bound %v < 15000us", BucketUpperMicros(idx))
	}
}

// Satellite: a zero-count histogram must still emit a parseable,
// lint-clean family whose quantile is undefined rather than garbage.
func TestWriteHistogramFamilyZeroCount(t *testing.T) {
	var h Hist
	var b strings.Builder
	WriteHistogramFamily(&b, "polygraph_score_duration_microseconds", "Latency.",
		"endpoint", []HistogramSeries{HistogramSnapshot("/v1/collect", &h)})

	if problems, err := Lint(strings.NewReader(b.String())); err != nil || len(problems) != 0 {
		t.Fatalf("zero-count histogram lints dirty: %v %v", problems, err)
	}
	cum := ParseHistogram(b.String(), "polygraph_score_duration_microseconds", "endpoint")["/v1/collect"]
	if len(cum) != NumBuckets {
		t.Fatalf("bucket count = %d, want %d", len(cum), NumBuckets)
	}
	for i, c := range cum {
		if c != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, c)
		}
	}
	if idx, total := QuantileBucket(cum, 0.99); idx != -1 || total != 0 {
		t.Fatalf("QuantileBucket(zero) = %d, %d; want -1, 0", idx, total)
	}
	ex := ParseExpositionString(b.String())
	if v, err := ex.Value("polygraph_score_duration_microseconds_count"); err == nil && v != 0 {
		t.Fatalf("_count = %v, want 0", v)
	}
}

// Satellite: occupancy only in the terminal +Inf bucket (every sample
// past the finite ladder) must round-trip — the quantile lands on the
// last index and its bound is +Inf, never a fake finite number.
func TestWriteHistogramFamilyInfOnlyBucket(t *testing.T) {
	s := HistogramSeries{Label: "slow", SumUs: 1e9}
	s.Buckets[NumBuckets-1] = 5
	var b strings.Builder
	WriteHistogramFamily(&b, "polygraph_score_duration_microseconds", "Latency.",
		"endpoint", []HistogramSeries{s})

	if problems, err := Lint(strings.NewReader(b.String())); err != nil || len(problems) != 0 {
		t.Fatalf("+Inf-only histogram lints dirty: %v %v", problems, err)
	}
	cum := ParseHistogram(b.String(), "polygraph_score_duration_microseconds", "endpoint")["slow"]
	if len(cum) != NumBuckets {
		t.Fatalf("bucket count = %d, want %d", len(cum), NumBuckets)
	}
	for i := 0; i < NumBuckets-1; i++ {
		if cum[i] != 0 {
			t.Fatalf("finite bucket %d = %d, want 0", i, cum[i])
		}
	}
	idx, total := QuantileBucket(cum, 0.99)
	if idx != NumBuckets-1 || total != 5 {
		t.Fatalf("QuantileBucket = %d, %d; want %d, 5", idx, total, NumBuckets-1)
	}
	if !math.IsInf(BucketUpperMicros(idx), 1) {
		t.Fatalf("BucketUpperMicros(%d) = %v, want +Inf", idx, BucketUpperMicros(idx))
	}
}

// Satellite: label values with the full escape alphabet must survive
// writer → parser unchanged, through both the single-label and
// multi-label writers.
func TestLabelEscapingRoundTrip(t *testing.T) {
	gnarly := []string{
		`plain`,
		`has "quotes" inside`,
		`back\slash`,
		"new\nline",
		`all three: \ " ` + "\n" + ` done`,
	}
	var b strings.Builder
	series := make([]LabeledValue, len(gnarly))
	for i, v := range gnarly {
		series[i] = LabeledValue{Label: v, Value: float64(i + 1)}
	}
	WriteLabeledFamily(&b, "polygraph_ua_total", "UA counts.", "counter", "ua", series)

	multi := make([]MultiSeries, len(gnarly))
	for i, v := range gnarly {
		multi[i] = MultiSeries{Labels: []Label{{Name: "replica", Value: v}, {Name: "idx", Value: "x"}}, Value: 1}
	}
	WriteMultiFamily(&b, "polygraph_replica_info", "Replica info.", "gauge", multi)

	if problems, err := Lint(strings.NewReader(b.String())); err != nil || len(problems) != 0 {
		t.Fatalf("escaped labels lint dirty: %v %v", problems, err)
	}
	ex := ParseExpositionString(b.String())
	got := ex.Samples("polygraph_ua_total")
	if len(got) != len(gnarly) {
		t.Fatalf("parsed %d ua samples, want %d", len(got), len(gnarly))
	}
	for i, s := range got {
		if s.Label("ua") != gnarly[i] {
			t.Errorf("ua[%d] round-trip = %q, want %q", i, s.Label("ua"), gnarly[i])
		}
	}
	gotMulti := ex.Samples("polygraph_replica_info")
	if len(gotMulti) != len(gnarly) {
		t.Fatalf("parsed %d replica samples, want %d", len(gotMulti), len(gnarly))
	}
	for i, s := range gotMulti {
		if s.Label("replica") != gnarly[i] || s.Label("idx") != "x" {
			t.Errorf("replica[%d] round-trip = %q, want %q", i, s.Label("replica"), gnarly[i])
		}
	}
}

func TestUnescapeLabelUnknownEscape(t *testing.T) {
	// An escape the writer never produces passes through verbatim: the
	// parser is lenient, not lossy.
	if got := unescapeLabel(`a\tb`); got != `a\tb` {
		t.Fatalf("unescapeLabel(a\\tb) = %q", got)
	}
	if got := unescapeLabel(`trailing\`); got != `trailing\` {
		t.Fatalf("unescapeLabel(trailing\\) = %q", got)
	}
}

// Satellite: WriteBuildInfo must emit a family the parser and linter
// both accept, with the labels fleet dashboards key on.
func TestWriteBuildInfoRoundTrip(t *testing.T) {
	var b strings.Builder
	WriteBuildInfo(&b)
	if problems, err := Lint(strings.NewReader(b.String())); err != nil || len(problems) != 0 {
		t.Fatalf("build info lints dirty: %v %v", problems, err)
	}
	ex := ParseExpositionString(b.String())
	samples := ex.Samples("polygraph_build_info")
	if len(samples) != 1 {
		t.Fatalf("parsed %d build_info samples, want 1", len(samples))
	}
	if samples[0].Value != 1 {
		t.Fatalf("build_info value = %v, want 1", samples[0].Value)
	}
	if samples[0].Label("go_version") == "" {
		t.Fatal("build_info missing go_version label")
	}
	if samples[0].Label("revision") != Version("polygraph").Revision {
		t.Fatalf("build_info revision = %q, want %q",
			samples[0].Label("revision"), Version("polygraph").Revision)
	}
}

func TestQuantileBucketEdgeCases(t *testing.T) {
	if idx, total := QuantileBucket(nil, 0.5); idx != -1 || total != 0 {
		t.Fatalf("QuantileBucket(nil) = %d, %d; want -1, 0", idx, total)
	}
	// q so small the rank rounds to zero still selects the first
	// occupied bucket.
	if idx, total := QuantileBucket([]uint64{0, 3, 3}, 0.0001); idx != 1 || total != 3 {
		t.Fatalf("QuantileBucket(tiny q) = %d, %d; want 1, 3", idx, total)
	}
	// q=1 selects the last occupied bucket.
	if idx, _ := QuantileBucket([]uint64{1, 1, 2}, 1); idx != 2 {
		t.Fatalf("QuantileBucket(q=1) = %d, want 2", idx)
	}
}

// Satellite: the linter flags a family emitted twice (duplicate
// HELP/TYPE headers) — the symptom of composing a /metrics page from
// two writers that both own the same family.
func TestLintDuplicateFamilyEmission(t *testing.T) {
	var b strings.Builder
	WriteMetric(&b, "polygraph_collections_total", "Sessions scored.", "counter", 1)
	WriteMetric(&b, "polygraph_collections_total", "Sessions scored.", "counter", 2)
	problems, err := Lint(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var sawHelp, sawType bool
	for _, p := range problems {
		if strings.Contains(p.String(), "duplicate HELP for polygraph_collections_total") {
			sawHelp = true
		}
		if strings.Contains(p.String(), "duplicate TYPE for polygraph_collections_total") {
			sawType = true
		}
	}
	if !sawHelp || !sawType {
		t.Fatalf("duplicate family not flagged; problems = %v", problems)
	}
}
