package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLintCleanExposition(t *testing.T) {
	var b bytes.Buffer
	WriteBuildInfo(&b)
	WriteMetric(&b, "polygraph_collections_total", "Payloads scored.", "counter", 42)
	WriteLabeledFamily(&b, "polygraph_rejected_total", "Rejects by cause.", "counter", "reason",
		[]LabeledValue{{Label: "decode", Value: 1}, {Label: "score", Value: 0}})
	var h Hist
	h.Record(3 * time.Microsecond)
	h.Record(900 * time.Microsecond)
	WriteHistogramFamily(&b, "polygraph_score_duration_microseconds", "Latency.",
		"endpoint", []HistogramSeries{HistogramSnapshot("/v1/collect", &h)})

	problems, err := Lint(bytes.NewReader(b.Bytes()),
		"polygraph_build_info", "polygraph_collections_total",
		"polygraph_rejected_total", "polygraph_score_duration_microseconds")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean exposition flagged: %v", problems)
	}
}

func TestLintCatchesMalformations(t *testing.T) {
	cases := []struct {
		name, expo, want string
	}{
		{"no help", "orphan 1\n", "without # HELP"},
		{"bad type", "# HELP m x\n# TYPE m wat\nm 1\n", "unknown TYPE"},
		{"bad name", "# HELP m x\n# TYPE m counter\n9bad{} 1\n", "invalid metric name"},
		{"type after sample", "# HELP m x\nm 1\n# TYPE m counter\n", "after its samples"},
		{"bad value", "# HELP m x\n# TYPE m gauge\nm nope-1x\n", "unparseable value"},
		{
			"decreasing buckets",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\n",
			"cumulative count decreases",
		},
		{
			"missing inf",
			"# HELP h x\n# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n",
			`missing terminal le="+Inf"`,
		},
		{
			"count disagrees",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_sum 9\nh_count 4\n",
			"_count 4 != +Inf bucket 5",
		},
		{
			"le not increasing",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 1` + "\n",
			"not increasing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems, err := Lint(strings.NewReader(tc.expo))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				if strings.Contains(p.Msg, tc.want) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got %v", tc.want, problems)
		})
	}
}

func TestLintRequiredFamilies(t *testing.T) {
	expo := "# HELP a x\n# TYPE a counter\na 1\n"
	problems, err := Lint(strings.NewReader(expo), "a", "missing_family")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Msg, "missing_family") {
		t.Fatalf("problems = %v", problems)
	}
	// A histogram family counts as present via its component samples.
	var b bytes.Buffer
	var h Hist
	h.Record(time.Millisecond)
	WriteHistogramFamily(&b, "hist_fam", "x", "endpoint",
		[]HistogramSeries{HistogramSnapshot("e", &h)})
	problems, err = Lint(&b, "hist_fam")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("histogram family not counted as present: %v", problems)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("EscapeLabel = %q", got)
	}
}

func TestHistogramFamilyCountMatchesBuckets(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	snap := HistogramSnapshot("e", &h)
	var total uint64
	for _, c := range snap.Buckets {
		total += c
	}
	if total != 100 {
		t.Fatalf("snapshot holds %d observations, want 100", total)
	}
	var b bytes.Buffer
	WriteHistogramFamily(&b, "f", "x", "endpoint", []HistogramSeries{snap})
	out := b.String()
	if !strings.Contains(out, `f_bucket{endpoint="e",le="+Inf"} 100`) {
		t.Fatalf("terminal bucket missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, `f_count{endpoint="e"} 100`) {
		t.Fatalf("_count not derived from the same snapshot:\n%s", out)
	}
}
