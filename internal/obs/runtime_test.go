package obs

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

// runtimeFamilies is the self-telemetry contract: every exposition that
// calls WriteRuntimeMetrics must carry all of these.
var runtimeFamilies = []string{
	"polygraph_go_goroutines",
	"polygraph_go_heap_live_bytes",
	"polygraph_go_heap_goal_bytes",
	"polygraph_go_gc_cycles_total",
	"polygraph_go_gc_pause_seconds",
	"polygraph_go_sched_latency_seconds",
}

func TestWriteRuntimeMetricsLintsClean(t *testing.T) {
	runtime.GC() // at least one cycle so the pause histogram is populated
	var b strings.Builder
	WriteRuntimeMetrics(&b)
	problems, err := Lint(strings.NewReader(b.String()), runtimeFamilies...)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, p := range problems {
		t.Errorf("runtime telemetry lints dirty: %s", p)
	}
}

func TestWriteRuntimeMetricsValues(t *testing.T) {
	runtime.GC()
	var b strings.Builder
	WriteRuntimeMetrics(&b)
	ex := ParseExpositionString(b.String())

	if g, err := ex.Value("polygraph_go_goroutines"); err != nil || g < 1 {
		t.Fatalf("goroutines = %v, %v; want >= 1", g, err)
	}
	if v, err := ex.Value("polygraph_go_heap_live_bytes"); err != nil || v <= 0 {
		t.Fatalf("heap live = %v, %v; want > 0", v, err)
	}
	if v, err := ex.Value("polygraph_go_gc_cycles_total"); err != nil || v < 1 {
		t.Fatalf("gc cycles = %v, %v; want >= 1 after runtime.GC", v, err)
	}

	// The coalesced histograms must stay scrape-sized: at most
	// maxRuntimeBuckets boundaries plus the +Inf terminal.
	for _, fam := range []string{"polygraph_go_gc_pause_seconds", "polygraph_go_sched_latency_seconds"} {
		bkts := ex.Samples(fam + "_bucket")
		if len(bkts) == 0 {
			t.Fatalf("%s: no bucket samples", fam)
		}
		if len(bkts) > maxRuntimeBuckets+1 {
			t.Fatalf("%s: %d buckets exported, cap is %d+1", fam, len(bkts), maxRuntimeBuckets)
		}
		if bkts[len(bkts)-1].Label("le") != "+Inf" {
			t.Fatalf("%s: terminal bucket le=%q, want +Inf", fam, bkts[len(bkts)-1].Label("le"))
		}
	}
}

func TestWriteBuildInfoUptime(t *testing.T) {
	var b strings.Builder
	WriteBuildInfo(&b)
	ex := ParseExpositionString(b.String())
	up, err := ex.Value("polygraph_uptime_seconds")
	if err != nil || up < 0 {
		t.Fatalf("uptime = %v, %v; want >= 0", up, err)
	}
	start, err := ex.Value("polygraph_process_start_timestamp_seconds")
	if err != nil {
		t.Fatalf("start timestamp: %v", err)
	}
	now := float64(time.Now().UnixNano()) / 1e9
	if start <= 0 || start > now {
		t.Fatalf("process start %v outside (0, now=%v]", start, now)
	}
	if !ProcessStart().Before(time.Now().Add(time.Second)) {
		t.Fatal("ProcessStart in the future")
	}
}

func TestExpositionHistogramBounds(t *testing.T) {
	var b strings.Builder
	series := []HistogramSeries{{Label: "/v1/collect", SumUs: 10}}
	series[0].Buckets[3] = 2 // [4,8) µs
	series[0].Buckets[12] = 1
	WriteHistogramFamily(&b, "polygraph_score_duration_microseconds", "h", "endpoint", series)
	ex := ParseExpositionString(b.String())

	got := ex.Histogram("polygraph_score_duration_microseconds", "endpoint")["/v1/collect"]
	if len(got) != NumBuckets {
		t.Fatalf("parsed %d buckets, want %d", len(got), NumBuckets)
	}
	if !math.IsInf(got[len(got)-1].Le, 1) {
		t.Fatalf("terminal le = %v, want +Inf", got[len(got)-1].Le)
	}
	if got[len(got)-1].Cum != 3 {
		t.Fatalf("terminal cum = %v, want 3", got[len(got)-1].Cum)
	}
	// Bucket index 3 has upper bound 2^3 = 8µs; cumulative count there
	// must already include both sub-8µs observations.
	var at8 float64
	for _, bk := range got {
		if bk.Le == 8 {
			at8 = bk.Cum
		}
	}
	if at8 != 2 {
		t.Fatalf("cum at le=8 = %v, want 2", at8)
	}
	// Absent label or family returns empty.
	if m := ex.Histogram("polygraph_score_duration_microseconds", "nope"); len(m) != 0 {
		t.Fatalf("unexpected series for bogus label: %v", m)
	}
	if m := ex.Histogram("polygraph_nope", "endpoint"); len(m) != 0 {
		t.Fatalf("unexpected series for bogus family: %v", m)
	}
}
