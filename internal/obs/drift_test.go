package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"polygraph/internal/drift"
	"polygraph/internal/rng"
)

// driftRows synthesizes n two-feature vectors around the given centers.
func driftRows(seed uint64, n int, c0, c1 float64) [][]float64 {
	r := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{c0 + r.Float64(), c1 + r.Float64()}
	}
	return rows
}

func TestDriftMonitorStablePopulation(t *testing.T) {
	m, err := NewDriftMonitor(DriftConfig{
		Features: []string{"f0", "f1"},
		Baseline: driftRows(1, 400, 0, 10),
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range driftRows(3, 400, 0, 10) {
		m.Observe(v)
	}
	results, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if drift.AnyAlert(results) {
		t.Fatalf("stable population alerted: %+v", results)
	}
	if _, alerted := m.Latest(); alerted {
		t.Fatal("Latest reports alert for stable population")
	}
}

func TestDriftMonitorAlertsOnShift(t *testing.T) {
	var buf bytes.Buffer
	m, err := NewDriftMonitor(DriftConfig{
		Features: []string{"f0", "f1"},
		Baseline: driftRows(1, 400, 0, 10),
		Seed:     2,
		Logger:   slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// f0 shifted far out of the baseline range; f1 unchanged.
	for _, v := range driftRows(3, 400, 50, 10) {
		m.Observe(v)
	}
	results, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !drift.AnyAlert(results) {
		t.Fatalf("shifted population did not alert: %+v", results)
	}
	var rec struct {
		Msg     string `json:"msg"`
		Feature string `json:"feature"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("alert log not JSON: %v (%q)", err, buf.String())
	}
	if rec.Msg != "feature drift alert" || rec.Feature != "f0" {
		t.Fatalf("alert record %+v", rec)
	}

	var metrics bytes.Buffer
	m.WriteMetrics(&metrics)
	out := metrics.String()
	for _, want := range []string{
		"polygraph_drift_alert 1",
		`polygraph_feature_psi{feature="f0"}`,
		"polygraph_drift_evaluations_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	if problems, err := Lint(strings.NewReader(out)); err != nil || len(problems) != 0 {
		t.Fatalf("drift exposition fails lint: %v %v", problems, err)
	}
}

func TestDriftMonitorNotReady(t *testing.T) {
	m, err := NewDriftMonitor(DriftConfig{Features: []string{"f0"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(); !errors.Is(err, ErrDriftNotReady) {
		t.Fatalf("empty reservoir evaluated: %v", err)
	}
}

func TestDriftMonitorSelfBaseline(t *testing.T) {
	m, err := NewDriftMonitor(DriftConfig{Features: []string{"f0", "f1"}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range driftRows(5, 100, 0, 0) {
		m.Observe(v)
	}
	// First warm evaluation adopts the reservoir as baseline.
	if _, err := m.Evaluate(); !errors.Is(err, ErrDriftNotReady) {
		t.Fatalf("self-baseline capture should report not-ready, got %v", err)
	}
	for _, v := range driftRows(6, 100, 0, 0) {
		m.Observe(v)
	}
	results, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d PSI results, want 2", len(results))
	}
}

func TestDriftMonitorDeterministicReservoir(t *testing.T) {
	build := func() *DriftMonitor {
		m, err := NewDriftMonitor(DriftConfig{
			Features:  []string{"f0", "f1"},
			Baseline:  driftRows(1, 64, 0, 0),
			Reservoir: 32,
			Seed:      9,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range driftRows(2, 500, 0.2, 0.1) {
			m.Observe(v)
		}
		return m
	}
	a, b := build(), build()
	ra, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i].PSI != rb[i].PSI {
			t.Fatalf("feature %s: PSI %v != %v across identical runs", ra[i].Feature, ra[i].PSI, rb[i].PSI)
		}
	}
}

func TestDriftMonitorRejectsBadDims(t *testing.T) {
	if _, err := NewDriftMonitor(DriftConfig{}); err == nil {
		t.Fatal("empty feature list accepted")
	}
	m, err := NewDriftMonitor(DriftConfig{Features: []string{"f0"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetBaseline([][]float64{{1, 2}}, 0); err == nil {
		t.Fatal("baseline with wrong width accepted")
	}
	m.Observe([]float64{1, 2}) // wrong width: dropped
	if m.Seen() != 0 {
		t.Fatal("wrong-width vector counted")
	}
}

// The baseline-timestamp gauge feeds the support-bundle analyzer's
// drift-stale-model rule: 0 while no baseline is installed, a real Unix
// time once one is (explicitly or via self-baseline adoption).
func TestDriftMonitorBaselineTimestampGauge(t *testing.T) {
	m, err := NewDriftMonitor(DriftConfig{Features: []string{"f0", "f1"}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	m.WriteMetrics(&before)
	if v, err := ParseMetric(before.String(), "polygraph_drift_baseline_timestamp_seconds"); err != nil || v != 0 {
		t.Fatalf("baseline timestamp before SetBaseline = %v, %v; want 0", v, err)
	}

	if err := m.SetBaseline(driftRows(1, 400, 0, 10), 0); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	m.WriteMetrics(&after)
	v, err := ParseMetric(after.String(), "polygraph_drift_baseline_timestamp_seconds")
	if err != nil || v <= 0 {
		t.Fatalf("baseline timestamp after SetBaseline = %v, %v; want > 0", v, err)
	}
	if problems, err := Lint(strings.NewReader(after.String())); err != nil || len(problems) != 0 {
		t.Fatalf("drift exposition fails lint: %v %v", problems, err)
	}
}
