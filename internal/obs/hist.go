package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// NumBuckets is the histogram bucket count: bucket 0 holds
// sub-microsecond samples, bucket i (i ≥ 1) holds [2^(i-1), 2^i)
// microseconds, and the last bucket is open-ended. 40 buckets reach
// ~2^39 µs ≈ 6.4 days — effectively unbounded for request latencies.
const NumBuckets = 40

// Hist is a fixed-bucket exponential latency histogram, safe for
// concurrent Record calls from every worker. The exponential layout
// bounds relative quantile error at 2× (one octave), which is plenty
// for a p99 gate whose ceiling sits orders of magnitude above the
// signal. It began life in the loadgen harness; the serving tier now
// records into the same type and exposes it as a Prometheus histogram
// family (see prom.go).
type Hist struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// Record adds one latency observation. The latency sum is published
// before the observation count so a concurrent reader never divides a
// sum by more observations than contributed to it (the mean/avg-gauge
// torn-read guard).
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

func bucketFor(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	// bits.Len64 semantics without the import: position of highest set
	// bit + 1; 0 → bucket 0.
	idx := 0
	for us != 0 {
		idx++
		us >>= 1
	}
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// BucketIndex returns the bucket a latency of us microseconds lands in
// — the exposition-side counterpart of Record's internal bucketing,
// used by loadgen to compare a client-side quantile against the
// server's exported histogram at bucket granularity.
func BucketIndex(us float64) int {
	if us <= 0 {
		return 0
	}
	return bucketFor(time.Duration(math.Ceil(us)) * time.Microsecond)
}

// bucketBounds returns the [lo, hi) microsecond range of a bucket.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// BucketUpperMicros returns the exclusive upper bound of bucket i in
// microseconds; the last bucket reports +Inf (the Prometheus
// exposition's terminal le value).
func BucketUpperMicros(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	_, hi := bucketBounds(i)
	return hi
}

// Buckets snapshots the per-bucket counts (non-cumulative). The copy is
// internally consistent enough for exposition: each counter is read
// once, and WriteHistogramFamily derives _count from the same snapshot
// so _bucket/_count never disagree.
func (h *Hist) Buckets() [NumBuckets]uint64 {
	var out [NumBuckets]uint64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the exact sum of recorded latencies.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Max returns the exact maximum recorded latency.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the exact arithmetic mean latency (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sumNs.Load()) / n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly inside it. The
// estimate for the top bucket is clamped to the exact recorded maximum,
// so Quantile(1) == Max. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation (1-based, nearest-rank with a
	// ceiling so Quantile(1) lands on the last observation).
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := bucketBounds(i)
		// Clamp the open-ended (or max-holding) top of the estimate to
		// the exact recorded maximum.
		maxUs := float64(h.maxNs.Load()) / float64(time.Microsecond)
		if hi > maxUs {
			hi = maxUs
		}
		if hi < lo {
			hi = lo
		}
		frac := float64(rank-cum) / float64(c)
		us := lo + (hi-lo)*frac
		return time.Duration(us * float64(time.Microsecond))
	}
	return h.Max()
}

// Quantiles is the summary the reports carry.
type Quantiles struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary snapshots the histogram's headline quantiles.
func (h *Hist) Summary() Quantiles {
	return Quantiles{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
