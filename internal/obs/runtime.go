package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// Runtime self-telemetry: a collector over the runtime/metrics package
// exported as linted Prometheus families on the same scrape as the
// serving metrics. The point is that "the daemon is melting" — GC pause
// spikes, a heap racing its goal, a goroutine leak, scheduler
// starvation — is observable from the exposition the operator already
// reads, instead of requiring a pprof session on a sick box.

// runtimeSampleNames are the runtime/metrics keys the collector reads,
// in the order writeRuntimeMetrics consumes them.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// maxRuntimeBuckets caps the exported bucket count of a runtime
// histogram. The runtime's native histograms carry hundreds of fine
// buckets; coalescing adjacent ones keeps the exposition scrape-sized
// while preserving the distribution's shape.
const maxRuntimeBuckets = 32

// WriteRuntimeMetrics emits the Go runtime self-telemetry families:
// goroutine count, live heap vs GC goal, GC cycle counter, and the GC
// pause and scheduler latency histograms. Metrics the running toolchain
// does not support are skipped rather than emitted as zeros.
func WriteRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)

	writeRuntimeValue(w, samples[0], "polygraph_go_goroutines",
		"Live goroutine count.", "gauge")
	writeRuntimeValue(w, samples[1], "polygraph_go_heap_live_bytes",
		"Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects).", "gauge")
	writeRuntimeValue(w, samples[2], "polygraph_go_heap_goal_bytes",
		"Heap size the GC is pacing toward (runtime/metrics /gc/heap/goal).", "gauge")
	writeRuntimeValue(w, samples[3], "polygraph_go_gc_cycles_total",
		"Completed GC cycles since process start.", "counter")
	writeRuntimeHistogram(w, samples[4], "polygraph_go_gc_pause_seconds",
		"Distribution of stop-the-world GC pause latencies; sum approximated from bucket midpoints.")
	writeRuntimeHistogram(w, samples[5], "polygraph_go_sched_latency_seconds",
		"Distribution of goroutine scheduling latencies; sum approximated from bucket midpoints.")
}

// writeRuntimeValue emits one scalar runtime sample, skipping values the
// toolchain reports as unsupported.
func writeRuntimeValue(w io.Writer, s metrics.Sample, name, help, typ string) {
	var v float64
	switch s.Value.Kind() {
	case metrics.KindUint64:
		v = float64(s.Value.Uint64())
	case metrics.KindFloat64:
		v = s.Value.Float64()
	default:
		return
	}
	WriteMetric(w, name, help, typ, v)
}

// writeRuntimeHistogram converts a runtime Float64Histogram into a
// Prometheus histogram family. Buckets are coalesced down to at most
// maxRuntimeBuckets strictly increasing upper bounds, terminated by
// +Inf. The runtime does not track an exact sum, so _sum is
// approximated from bucket midpoints (using the finite edge for
// unbounded buckets), which is the usual trade for re-exporting
// pre-bucketed data.
func writeRuntimeHistogram(w io.Writer, s metrics.Sample, name, help string) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := s.Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return
	}
	stride := (len(h.Counts) + maxRuntimeBuckets - 1) / maxRuntimeBuckets
	if stride < 1 {
		stride = 1
	}

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	var sum float64
	sawInf := false
	for i, c := range h.Counts {
		cum += c
		if c > 0 {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			mid := (lo + hi) / 2
			if math.IsInf(lo, -1) {
				mid = hi
			} else if math.IsInf(hi, 1) {
				mid = lo
			}
			sum += float64(c) * mid
		}
		// Emit every stride-th boundary, plus always the final one.
		if (i+1)%stride != 0 && i != len(h.Counts)-1 {
			continue
		}
		le := h.Buckets[i+1]
		if math.IsInf(le, 1) {
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			sawInf = true
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
		}
	}
	if !sawInf {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}
