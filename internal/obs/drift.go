package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"polygraph/internal/drift"
	"polygraph/internal/rng"
)

// DriftMonitor closes the gap between the offline internal/drift PSI
// machinery and live traffic: the serving tier feeds every accepted
// feature vector into a deterministic reservoir sample, and a
// background loop (or an explicit Evaluate call) periodically compares
// the reservoir against the training baseline with drift.FeaturePSI,
// exporting polygraph_feature_psi{feature=...} and
// polygraph_drift_alert gauges and logging a structured alert when any
// feature crosses drift.PSIAlert. §6.6's "actively identifies shifts in
// data patterns" thus becomes an operational signal instead of an
// offline experiment.

// ErrDriftNotReady reports an Evaluate before the reservoir holds
// enough samples for a meaningful PSI.
var ErrDriftNotReady = errors.New("obs: drift reservoir not ready")

// DriftConfig parameterizes a DriftMonitor.
type DriftConfig struct {
	// Features names the vector columns; required.
	Features []string
	// Baseline is the training-time sample the live reservoir is
	// compared against. Nil arms self-baseline mode: the first
	// Evaluate with a warm reservoir adopts the reservoir as baseline
	// (useful against a loaded model file whose training vectors are
	// gone).
	Baseline [][]float64
	// BaselineSize caps the retained baseline rows (deterministically
	// subsampled); 0 keeps 512.
	BaselineSize int
	// Reservoir is the live sample size; 0 uses 512.
	Reservoir int
	// MinSamples gates evaluation; 0 uses 32 (PSI itself needs ≥10).
	MinSamples int
	// Seed drives the deterministic reservoir-replacement stream.
	Seed uint64
	// Logger receives drift alerts; nil discards.
	Logger *slog.Logger
}

// DriftMonitor is safe for concurrent Observe/Evaluate/WriteMetrics.
// Observe takes one short mutex section per accepted request — noise
// next to a score, and the reservoir copy is a few hundred floats.
type DriftMonitor struct {
	mu       sync.Mutex
	features []string
	baseline [][]float64
	// baselineAt is when the current baseline was installed (SetBaseline
	// or self-baseline adoption); zero while unset. Exported as
	// polygraph_drift_baseline_timestamp_seconds so the support-bundle
	// analyzers can tell "drift alert against a baseline newer than the
	// deployed model" (stale model) apart from ordinary drift.
	baselineAt time.Time
	res        [][]float64
	seen       uint64
	rng        *rng.PCG
	resSize    int
	minEval    int
	log        *slog.Logger

	evals   uint64
	latest  []drift.PSIResult
	alerted bool
}

// NewDriftMonitor validates the config and builds the monitor.
func NewDriftMonitor(cfg DriftConfig) (*DriftMonitor, error) {
	if len(cfg.Features) == 0 {
		return nil, errors.New("obs: DriftConfig.Features is required")
	}
	resSize := cfg.Reservoir
	if resSize <= 0 {
		resSize = 512
	}
	minEval := cfg.MinSamples
	if minEval <= 0 {
		minEval = 32
	}
	if minEval < 10 {
		minEval = 10 // drift.PSI's own floor
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	m := &DriftMonitor{
		features: append([]string(nil), cfg.Features...),
		res:      make([][]float64, 0, resSize),
		rng:      rng.New(cfg.Seed),
		resSize:  resSize,
		minEval:  minEval,
		log:      logger,
	}
	if cfg.Baseline != nil {
		if err := m.SetBaseline(cfg.Baseline, cfg.BaselineSize); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SetBaseline replaces the comparison baseline, deterministically
// subsampling to maxRows (0 keeps 512). polygraphd calls this after a
// successful SIGHUP retrain so drift is always measured against the
// deployed model's training distribution.
func (m *DriftMonitor) SetBaseline(rows [][]float64, maxRows int) error {
	dim := len(m.features)
	for i, r := range rows {
		if len(r) != dim {
			return fmt.Errorf("obs: baseline row %d has %d features, want %d", i, len(r), dim)
		}
	}
	if maxRows <= 0 {
		maxRows = 512
	}
	copied := make([][]float64, 0, min(len(rows), maxRows))
	if len(rows) <= maxRows {
		for _, r := range rows {
			copied = append(copied, append([]float64(nil), r...))
		}
	} else {
		// Every ⌈n/max⌉-th row: deterministic, order-independent of any
		// RNG state, and spread across the input.
		stride := (len(rows) + maxRows - 1) / maxRows
		for i := 0; i < len(rows) && len(copied) < maxRows; i += stride {
			copied = append(copied, append([]float64(nil), rows[i]...))
		}
	}
	m.mu.Lock()
	m.baseline = copied
	m.baselineAt = time.Now()
	m.mu.Unlock()
	return nil
}

// Observe feeds one accepted feature vector into the reservoir
// (algorithm R with the monitor's own PCG stream; the vector is copied,
// so callers may reuse their buffer). Vectors of the wrong width are
// dropped — the scoring path already rejected them upstream.
func (m *DriftMonitor) Observe(v []float64) {
	if len(v) != len(m.features) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seen++
	if len(m.res) < m.resSize {
		m.res = append(m.res, append([]float64(nil), v...))
		return
	}
	if j := m.rng.Uint64n(m.seen); j < uint64(m.resSize) {
		copy(m.res[j], v)
	}
}

// Seen returns how many vectors Observe has accepted.
func (m *DriftMonitor) Seen() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen
}

// Evaluate computes per-feature PSI of the current reservoir against
// the baseline, retaining the results for WriteMetrics and logging a
// structured alert when any feature crosses drift.PSIAlert. In
// self-baseline mode the first warm evaluation adopts the reservoir as
// baseline and reports ErrDriftNotReady (there is nothing to compare
// yet).
func (m *DriftMonitor) Evaluate() ([]drift.PSIResult, error) {
	m.mu.Lock()
	if len(m.res) < m.minEval {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %d/%d samples", ErrDriftNotReady, len(m.res), m.minEval)
	}
	current := make([][]float64, len(m.res))
	for i, r := range m.res {
		current[i] = append([]float64(nil), r...)
	}
	if m.baseline == nil {
		m.baseline = current
		m.baselineAt = time.Now()
		m.mu.Unlock()
		m.log.Info("drift baseline captured from live traffic", "rows", len(current))
		return nil, fmt.Errorf("%w: baseline captured, comparison starts next cycle", ErrDriftNotReady)
	}
	baseline := m.baseline
	features := m.features
	m.mu.Unlock()

	results, err := drift.FeaturePSI(features, baseline, current)
	if err != nil {
		return nil, err
	}
	alert := drift.AnyAlert(results)

	m.mu.Lock()
	m.evals++
	m.latest = results
	m.alerted = alert
	m.mu.Unlock()

	if alert {
		for _, r := range results {
			if r.Status != "alert" {
				continue
			}
			m.log.Warn("feature drift alert",
				"feature", r.Feature, "psi", r.PSI, "threshold", drift.PSIAlert)
		}
	}
	return results, nil
}

// Run evaluates every interval until ctx is done — polygraphd's
// background drift loop. Not-ready cycles are silent; other evaluation
// errors are logged.
func (m *DriftMonitor) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := m.Evaluate(); err != nil && !errors.Is(err, ErrDriftNotReady) {
				m.log.Warn("drift evaluation failed", "err", err.Error())
			}
		}
	}
}

// Latest returns the most recent evaluation's results (nil before the
// first successful one) and whether it alerted.
func (m *DriftMonitor) Latest() ([]drift.PSIResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest, m.alerted
}

// WriteMetrics appends the drift families to a /metrics exposition.
func (m *DriftMonitor) WriteMetrics(w io.Writer) {
	m.mu.Lock()
	latest := m.latest
	alerted := m.alerted
	evals := m.evals
	resLen := len(m.res)
	seen := m.seen
	baselineAt := m.baselineAt
	m.mu.Unlock()

	WriteMetric(w, "polygraph_drift_evaluations_total",
		"Completed PSI evaluations of live traffic vs the training baseline.", "counter", float64(evals))
	WriteMetric(w, "polygraph_drift_reservoir_size",
		"Feature vectors currently held in the drift reservoir.", "gauge", float64(resLen))
	WriteMetric(w, "polygraph_drift_observed_total",
		"Accepted feature vectors offered to the drift reservoir.", "counter", float64(seen))
	alertVal := 0.0
	if alerted {
		alertVal = 1
	}
	WriteMetric(w, "polygraph_drift_alert",
		"1 when the last evaluation found a feature above the PSI alert threshold.", "gauge", alertVal)
	baselineTs := 0.0
	if !baselineAt.IsZero() {
		baselineTs = float64(baselineAt.Unix())
	}
	WriteMetric(w, "polygraph_drift_baseline_timestamp_seconds",
		"Unix time the current drift baseline was installed (0 while unset).", "gauge", baselineTs)
	if len(latest) == 0 {
		return
	}
	series := make([]LabeledValue, len(latest))
	for i, r := range latest {
		series[i] = LabeledValue{Label: r.Feature, Value: r.PSI}
	}
	WriteLabeledFamily(w, "polygraph_feature_psi",
		"Population Stability Index of each feature, live traffic vs training baseline.",
		"gauge", "feature", series)
}
