package obs

import (
	"math"
	"testing"
	"time"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty hist not all-zero: %+v", h.Summary())
	}
}

func TestHistExactMoments(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Record(5 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 5*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Mean() != 5*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Every quantile of a one-point distribution must land in the value's
	// bucket, clamped above by the exact max.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < 4096*time.Microsecond || got > 5*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v outside [4.096ms, 5ms]", q, got)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %v, Max = %v", h.Quantile(1), h.Max())
	}
}

// TestHistQuantilesKnownDistributions drives the quantile math against
// distributions whose true quantiles are known, asserting the estimate
// stays within the histogram's error budget (well under one octave for
// dense data thanks to in-bucket interpolation).
func TestHistQuantilesKnownDistributions(t *testing.T) {
	cases := []struct {
		name   string
		feed   func(h *Hist)
		q      float64
		wantUs float64
		relTol float64
	}{
		{
			name: "uniform-1..1000us-p50",
			feed: func(h *Hist) {
				for i := 1; i <= 1000; i++ {
					h.Record(time.Duration(i) * time.Microsecond)
				}
			},
			q: 0.50, wantUs: 500, relTol: 0.15,
		},
		{
			name: "uniform-1..1000us-p99",
			feed: func(h *Hist) {
				for i := 1; i <= 1000; i++ {
					h.Record(time.Duration(i) * time.Microsecond)
				}
			},
			q: 0.99, wantUs: 990, relTol: 0.15,
		},
		{
			name: "bimodal-p95",
			feed: func(h *Hist) {
				// 90% fast (100µs), 10% slow (10ms): p95 sits in the
				// slow mode.
				for i := 0; i < 900; i++ {
					h.Record(100 * time.Microsecond)
				}
				for i := 0; i < 100; i++ {
					h.Record(10 * time.Millisecond)
				}
			},
			q: 0.95, wantUs: 10000, relTol: 0.5, // within the slow mode's octave
		},
		{
			name: "two-point-p50-low",
			feed: func(h *Hist) {
				for i := 0; i < 60; i++ {
					h.Record(50 * time.Microsecond)
				}
				for i := 0; i < 40; i++ {
					h.Record(800 * time.Microsecond)
				}
			},
			q: 0.50, wantUs: 50, relTol: 1.0, // within the fast bucket's octave
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Hist
			tc.feed(&h)
			got := float64(h.Quantile(tc.q)) / float64(time.Microsecond)
			if math.Abs(got-tc.wantUs) > tc.relTol*tc.wantUs {
				t.Fatalf("Quantile(%v) = %vµs, want %vµs ±%.0f%%", tc.q, got, tc.wantUs, 100*tc.relTol)
			}
		})
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	var h Hist
	for i := 1; i <= 500; i++ {
		h.Record(time.Duration(i*i) * time.Microsecond)
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, got, prev)
		}
		prev = got
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %v != Max %v", h.Quantile(1), h.Max())
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10}, // 1000µs in [512, 1024)
		{time.Second, 20},      // 1e6µs in [2^19, 2^20)
		{time.Hour, 32},        // 3.6e9µs in [2^31, 2^32)
		{time.Duration(1<<39) * time.Microsecond, NumBuckets - 1}, // first clamped value
		{time.Duration(1<<42) * time.Microsecond, NumBuckets - 1}, // deep into the open top
	}
	for _, tc := range cases {
		if got := bucketFor(tc.d); got != tc.want {
			t.Errorf("bucketFor(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	for i := 1; i < NumBuckets; i++ {
		lo, hi := bucketBounds(i)
		plo, phi := bucketBounds(i - 1)
		if lo != phi || hi <= lo || plo >= phi {
			t.Fatalf("bucket %d bounds [%v,%v) do not chain from [%v,%v)", i, lo, hi, plo, phi)
		}
	}
}
