package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Prometheus text-exposition (version 0.0.4) writers. Stdlib only: the
// format is plain text, and every value already lives on an atomic
// counter somewhere. The collect server composes its /metrics page from
// these; Lint (lint.go) checks the result in CI.

// WriteMetric emits one unlabeled metric with HELP/TYPE headers.
func WriteMetric(w io.Writer, name, help, typ string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
}

// LabeledValue is one series of a single-label family.
type LabeledValue struct {
	Label string
	Value float64
}

// WriteLabeledFamily emits one metric family whose series differ only
// in one label value. Label values are escaped per the text exposition
// format.
func WriteLabeledFamily(w io.Writer, name, help, typ, label string, series []LabeledValue) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range series {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %g\n", name, label, EscapeLabel(s.Label), s.Value)
	}
}

// EscapeLabel escapes a label value per the exposition format.
func EscapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// HistogramSeries is one labeled series of a histogram family: a
// snapshot of per-bucket (non-cumulative) counts plus the exact latency
// sum, both in the family's microsecond unit.
type HistogramSeries struct {
	Label   string
	Buckets [NumBuckets]uint64
	SumUs   float64
}

// HistogramSnapshot captures h for exposition. The _count emitted later
// derives from this same bucket snapshot, so _bucket and _count stay
// mutually consistent even while Record calls race the scrape.
func HistogramSnapshot(label string, h *Hist) HistogramSeries {
	return HistogramSeries{
		Label:   label,
		Buckets: h.Buckets(),
		SumUs:   float64(h.Sum().Nanoseconds()) / 1e3,
	}
}

// WriteHistogramFamily emits a full Prometheus histogram family —
// cumulative _bucket series with a terminal le="+Inf", then _sum and
// _count — one series set per label value. Bucket upper bounds are the
// histogram's power-of-two microsecond boundaries.
func WriteHistogramFamily(w io.Writer, name, help, label string, series []HistogramSeries) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, s := range series {
		lv := EscapeLabel(s.Label)
		var cum uint64
		for i := 0; i < NumBuckets; i++ {
			cum += s.Buckets[i]
			le := "+Inf"
			if i < NumBuckets-1 {
				le = fmt.Sprintf("%g", BucketUpperMicros(i))
			}
			fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"%s\"} %d\n", name, label, lv, le, cum)
		}
		fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %g\n", name, label, lv, s.SumUs)
		fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", name, label, lv, cum)
	}
}

// Label is one name/value pair of a multi-label series.
type Label struct {
	Name  string
	Value string
}

// MultiSeries is one series of a multi-label family.
type MultiSeries struct {
	Labels []Label
	Value  float64
}

// WriteMultiFamily emits one metric family whose series carry an
// arbitrary (per-series) label set — the shape of info gauges like the
// fleet's per-replica model-hash series. Label values are escaped per
// the text exposition format.
func WriteMultiFamily(w io.Writer, name, help, typ string, series []MultiSeries) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range series {
		var b strings.Builder
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=\"%s\"", l.Name, EscapeLabel(l.Value))
		}
		fmt.Fprintf(w, "%s{%s} %g\n", name, b.String(), s.Value)
	}
}

// VersionInfo is the build metadata behind WriteBuildInfo and the
// -version flag every cmd/* binary carries.
type VersionInfo struct {
	App       string
	GoVersion string
	// Revision is the VCS commit the binary was built from ("" when the
	// build carried no VCS stamp, e.g. `go run` from a dirty tree).
	Revision string
	// Modified marks a build from a locally modified tree.
	Modified bool
}

// Version resolves the running binary's build metadata.
func Version(app string) VersionInfo {
	v := VersionInfo{App: app, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				v.Revision = s.Value
			case "vcs.modified":
				v.Modified = s.Value == "true"
			}
		}
	}
	return v
}

// String renders the one-line -version output.
func (v VersionInfo) String() string {
	rev := v.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	s := fmt.Sprintf("%s %s rev %s", v.App, v.GoVersion, rev)
	if v.Modified {
		s += " (modified)"
	}
	return s
}

// processStart pins one start instant for the whole process, so every
// exposition (and every replica sharing the process in tests or fleet
// mode) reports uptime against the same epoch.
var processStart = time.Now()

// ProcessStart returns the instant the process (package) initialized.
func ProcessStart() time.Time { return processStart }

// WriteBuildInfo emits polygraph_build_info{go_version="...",
// revision="..."} 1 so dashboards can detect mixed builds across a
// fleet, plus the process start timestamp and an uptime gauge so
// `polygraphctl status` and the SLO engine can tell a freshly restarted
// replica from a long-lived one.
func WriteBuildInfo(w io.Writer) {
	v := Version("polygraph")
	WriteMultiFamily(w, "polygraph_build_info",
		"Build metadata; value is always 1.", "gauge",
		[]MultiSeries{{
			Labels: []Label{
				{Name: "go_version", Value: v.GoVersion},
				{Name: "revision", Value: v.Revision},
			},
			Value: 1,
		}})
	WriteMetric(w, "polygraph_process_start_timestamp_seconds",
		"Unix time the process started.", "gauge",
		float64(processStart.UnixNano())/1e9)
	WriteMetric(w, "polygraph_uptime_seconds",
		"Seconds since the process started.", "gauge",
		time.Since(processStart).Seconds())
}
