package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Fatal("std of singleton != 0")
	}
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(got, 2, 1e-12) {
		t.Fatalf("std = %v, want 2", got)
	}
}

func TestNormalizedStd(t *testing.T) {
	xs := []float64{10, 20, 30}
	want := Std(xs) / 20
	if got := NormalizedStd(xs); !approx(got, want, 1e-12) {
		t.Fatalf("normalized std = %v want %v", got, want)
	}
	// Zero mean falls back to raw std.
	zs := []float64{-1, 1}
	if got := NormalizedStd(zs); !approx(got, Std(zs), 1e-12) {
		t.Fatalf("zero-mean normalized std = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Fatalf("q=%v: got %v want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("singleton quantile = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty quantile")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantileBadQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q>1")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestEntropyUniform(t *testing.T) {
	// Four equally likely values: entropy = 2 bits.
	vals := []string{"a", "b", "c", "d", "a", "b", "c", "d"}
	if got := Entropy(vals); !approx(got, 2, 1e-12) {
		t.Fatalf("entropy = %v, want 2", got)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if Entropy([]int{}) != 0 {
		t.Fatal("entropy of empty != 0")
	}
	if Entropy([]int{1}) != 0 {
		t.Fatal("entropy of singleton != 0")
	}
	if Entropy([]int{3, 3, 3, 3}) != 0 {
		t.Fatal("entropy of constant != 0")
	}
}

func TestNormalizedEntropyBounds(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) < 2 {
			return true
		}
		ne := NormalizedEntropy(vals)
		return ne >= 0 && ne <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedEntropyAllDistinct(t *testing.T) {
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if got := NormalizedEntropy(vals); !approx(got, 1, 1e-12) {
		t.Fatalf("normalized entropy of distinct values = %v, want 1", got)
	}
}

func TestEntropyInvariantUnderRelabeling(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	b := []string{"x", "x", "y", "y", "z"}
	if !approx(Entropy(a), Entropy(b), 1e-12) {
		t.Fatal("entropy not invariant under relabeling")
	}
}

func TestAnonymitySets(t *testing.T) {
	// 1 unique key, one set of 3, one set of 60.
	keys := make([]string, 0, 64)
	keys = append(keys, "solo")
	for i := 0; i < 3; i++ {
		keys = append(keys, "trio")
	}
	for i := 0; i < 60; i++ {
		keys = append(keys, "crowd")
	}
	buckets := AnonymitySets(keys)
	if buckets[0].Count != 1 || buckets[0].NumSets != 1 {
		t.Fatalf("unique bucket = %+v", buckets[0])
	}
	if buckets[1].Count != 3 {
		t.Fatalf("2-10 bucket = %+v", buckets[1])
	}
	if buckets[3].Count != 60 {
		t.Fatalf(">50 bucket = %+v", buckets[3])
	}
	total := 0.0
	for _, b := range buckets {
		total += b.Percent
	}
	if !approx(total, 100, 1e-9) {
		t.Fatalf("bucket percents sum to %v", total)
	}
}

func TestAnonymitySetsEmpty(t *testing.T) {
	buckets := AnonymitySets[string](nil)
	for _, b := range buckets {
		if b.Count != 0 || b.Percent != 0 {
			t.Fatalf("empty input produced non-zero bucket %+v", b)
		}
	}
}

func TestUniqueRate(t *testing.T) {
	keys := []int{1, 2, 2, 3, 3, 3}
	// Only "1" is unique: 1 of 6 observations.
	if got := UniqueRate(keys); !approx(got, 1.0/6, 1e-12) {
		t.Fatalf("unique rate = %v", got)
	}
	if UniqueRate([]int{}) != 0 {
		t.Fatal("unique rate of empty != 0")
	}
}

func TestLargeSetRate(t *testing.T) {
	keys := make([]int, 0, 100)
	for i := 0; i < 95; i++ {
		keys = append(keys, 0) // one set of 95
	}
	for i := 0; i < 5; i++ {
		keys = append(keys, i+1) // five unique
	}
	if got := LargeSetRate(keys, 50); !approx(got, 0.95, 1e-12) {
		t.Fatalf("large set rate = %v", got)
	}
	if got := LargeSetRate(keys, 100); got != 0 {
		t.Fatalf("threshold above all sets: %v", got)
	}
}

func TestRatesConsistentWithBuckets(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]int, len(raw))
		for i, v := range raw {
			keys[i] = int(v % 16)
		}
		buckets := AnonymitySets(keys)
		// Bucket "1" percent/100 must equal UniqueRate.
		return approx(buckets[0].Percent/100, UniqueRate(keys), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortByNormalizedEntropy(t *testing.T) {
	rows := []FeatureEntropy{
		{Name: "b", Normalized: 0.3},
		{Name: "a", Normalized: 0.9},
		{Name: "c", Normalized: 0.3},
	}
	SortByNormalizedEntropy(rows)
	if rows[0].Name != "a" || rows[1].Name != "b" || rows[2].Name != "c" {
		t.Fatalf("sorted order = %v %v %v", rows[0].Name, rows[1].Name, rows[2].Name)
	}
}

func BenchmarkEntropy205k(b *testing.B) {
	vals := make([]int, 205000)
	for i := range vals {
		vals[i] = i % 113
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Entropy(vals)
	}
}

func BenchmarkAnonymitySets205k(b *testing.B) {
	keys := make([]uint64, 205000)
	for i := range keys {
		keys[i] = uint64(i % 900)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AnonymitySets(keys)
	}
}
