// Package stats provides the descriptive statistics used by the paper's
// privacy analysis (§7.4): Shannon entropy and normalized entropy of
// collected attributes (Table 7), anonymity-set analysis of full
// fingerprints (Figure 5), plus the summary helpers (mean, std, quantiles)
// other packages share.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation; 0 for fewer than two
// values.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// NormalizedStd returns Std/|Mean|, the coefficient of variation the paper
// uses to rank deviation-based candidate features ("the normalized
// standard deviation of the selected features ranges from 0.0012 to
// 1.3853", §6.1). A zero mean yields the raw Std.
func NormalizedStd(xs []float64) float64 {
	m := math.Abs(Mean(xs))
	sd := Std(xs)
	if m == 0 {
		return sd
	}
	return sd / m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// on the sorted copy of xs. It panics on empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile with q=%v", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Entropy returns the Shannon entropy (bits) of the empirical distribution
// of values. Entropy of an empty or single-valued sample is 0.
func Entropy[T comparable](values []T) float64 {
	if len(values) < 2 {
		return 0
	}
	counts := make(map[T]int, 64)
	for _, v := range values {
		counts[v]++
	}
	n := float64(len(values))
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns Entropy / log2(N) where N is the sample size,
// following Laperdrix et al.'s convention used by the paper's Table 7: it
// expresses how close an attribute comes to uniquely identifying each of
// the N observed sessions (1.0 = every session distinct).
func NormalizedEntropy[T comparable](values []T) float64 {
	if len(values) < 2 {
		return 0
	}
	return Entropy(values) / math.Log2(float64(len(values)))
}

// AnonymityBucket is a histogram bucket over anonymity-set sizes.
type AnonymityBucket struct {
	Label    string  // e.g. "1", "2-10", ">50"
	MinSize  int     // inclusive
	MaxSize  int     // inclusive; math.MaxInt for open-ended
	Percent  float64 // percentage of *fingerprints* (not sets) in the bucket
	Count    int     // number of fingerprints in the bucket
	NumSets  int     // number of distinct fingerprint values in the bucket
	uniqueID int     // reserved; keeps struct comparable-extensible
}

// AnonymitySets groups identical keys and reports, for the paper's
// Figure 5 buckets, what share of observations belong to anonymity sets of
// each size. The default buckets mirror the figure: 1, 2–10, 11–50, >50.
func AnonymitySets[T comparable](keys []T) []AnonymityBucket {
	return AnonymitySetsWithBuckets(keys, []AnonymityBucket{
		{Label: "1 (unique)", MinSize: 1, MaxSize: 1},
		{Label: "2-10", MinSize: 2, MaxSize: 10},
		{Label: "11-50", MinSize: 11, MaxSize: 50},
		{Label: ">50", MinSize: 51, MaxSize: math.MaxInt},
	})
}

// AnonymitySetsWithBuckets is AnonymitySets with caller-provided buckets.
// Buckets must be disjoint; observations whose set size matches no bucket
// are dropped from the report.
func AnonymitySetsWithBuckets[T comparable](keys []T, buckets []AnonymityBucket) []AnonymityBucket {
	out := append([]AnonymityBucket(nil), buckets...)
	if len(keys) == 0 {
		return out
	}
	counts := make(map[T]int, len(keys)/4+1)
	for _, k := range keys {
		counts[k]++
	}
	total := float64(len(keys))
	for _, setSize := range counts {
		for i := range out {
			if setSize >= out[i].MinSize && setSize <= out[i].MaxSize {
				out[i].Count += setSize
				out[i].NumSets++
				break
			}
		}
	}
	for i := range out {
		out[i].Percent = 100 * float64(out[i].Count) / total
	}
	return out
}

// UniqueRate returns the fraction (0–1) of observations whose key appears
// exactly once — the paper's "0.3% of our fingerprints are unique" metric.
func UniqueRate[T comparable](keys []T) float64 {
	if len(keys) == 0 {
		return 0
	}
	counts := make(map[T]int, len(keys)/4+1)
	for _, k := range keys {
		counts[k]++
	}
	unique := 0
	for _, c := range counts {
		if c == 1 {
			unique++
		}
	}
	return float64(unique) / float64(len(keys))
}

// LargeSetRate returns the fraction (0–1) of observations in anonymity
// sets strictly larger than threshold — the paper's "95.6% in sets larger
// than 50".
func LargeSetRate[T comparable](keys []T, threshold int) float64 {
	if len(keys) == 0 {
		return 0
	}
	counts := make(map[T]int, len(keys)/4+1)
	for _, k := range keys {
		counts[k]++
	}
	inLarge := 0
	for _, c := range counts {
		if c > threshold {
			inLarge += c
		}
	}
	return float64(inLarge) / float64(len(keys))
}

// FeatureEntropy pairs an attribute name with its entropy measurements,
// for Table 7 style reports.
type FeatureEntropy struct {
	Name       string
	Entropy    float64
	Normalized float64
}

// SortByNormalizedEntropy sorts a Table 7 report descending by normalized
// entropy, breaking ties by name for determinism.
func SortByNormalizedEntropy(rows []FeatureEntropy) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Normalized != rows[j].Normalized {
			return rows[i].Normalized > rows[j].Normalized
		}
		return rows[i].Name < rows[j].Name
	})
}
