// Package riskauth is the risk-based authentication layer Browser
// Polygraph plugs into (paper §1, §4): it combines the polygraph's
// risk factor with the session signals a real risk system holds
// (unfamiliar IP, fresh cookie) into an access decision. The paper's
// deployment "persistently monitor[s] and restrict[s] access of fraud
// browsing sessions"; this package is that restriction point.
package riskauth

import (
	"fmt"
	"strings"

	"polygraph/internal/core"
)

// Action is the access decision.
type Action int

const (
	// Allow admits the session.
	Allow Action = iota
	// StepUp requires additional verification (MFA, email challenge).
	StepUp
	// Deny blocks the session pending manual review.
	Deny
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case StepUp:
		return "step-up"
	case Deny:
		return "deny"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Signals are the per-session inputs available at decision time.
type Signals struct {
	// Polygraph is Browser Polygraph's scoring result.
	Polygraph core.Result
	// UntrustedIP marks a connection from an IP the account has not
	// used before.
	UntrustedIP bool
	// UntrustedCookie marks a freshly established cookie.
	UntrustedCookie bool
}

// Policy weights the signals into a composite score and maps score bands
// to actions. The zero value is unusable; start from DefaultPolicy.
type Policy struct {
	// MismatchWeight is the base cost of any polygraph cluster
	// mismatch, independent of the risk factor: even a low-risk lie is
	// a lie.
	MismatchWeight float64
	// RiskFactorWeight multiplies the polygraph risk factor (0–20).
	RiskFactorWeight float64
	// NoveltyWeight is added when the novelty guard fires.
	NoveltyWeight float64
	// UntrustedIPWeight / UntrustedCookieWeight are added per tag.
	UntrustedIPWeight     float64
	UntrustedCookieWeight float64
	// StepUpAt / DenyAt are the score thresholds (StepUpAt < DenyAt).
	StepUpAt, DenyAt float64
}

// DefaultPolicy: a cross-vendor polygraph hit (risk 20) or a novelty
// guard hit alone denies; a moderate version mismatch steps up; tags
// alone never block (half the legitimate traffic carries one, per
// Table 4's base rates) but they tip borderline polygraph hits over.
func DefaultPolicy() Policy {
	return Policy{
		MismatchWeight:        10,
		RiskFactorWeight:      3,
		NoveltyWeight:         50,
		UntrustedIPWeight:     8,
		UntrustedCookieWeight: 8,
		StepUpAt:              20,
		DenyAt:                50,
	}
}

// Validate checks the policy is coherent.
func (p Policy) Validate() error {
	if p.StepUpAt <= 0 || p.DenyAt <= p.StepUpAt {
		return fmt.Errorf("riskauth: thresholds must satisfy 0 < StepUpAt < DenyAt (%v, %v)",
			p.StepUpAt, p.DenyAt)
	}
	if p.MismatchWeight < 0 || p.RiskFactorWeight < 0 || p.NoveltyWeight < 0 ||
		p.UntrustedIPWeight < 0 || p.UntrustedCookieWeight < 0 {
		return fmt.Errorf("riskauth: negative weights")
	}
	return nil
}

// Decision is the engine's output.
type Decision struct {
	Action  Action
	Score   float64
	Reasons []string
}

// Evaluate combines the signals under the policy.
func (p Policy) Evaluate(s Signals) Decision {
	var score float64
	var reasons []string
	if !s.Polygraph.Matched {
		score += p.MismatchWeight
		reasons = append(reasons, "polygraph cluster mismatch")
		if rf := s.Polygraph.RiskFactor; rf > 0 {
			score += p.RiskFactorWeight * float64(rf)
			reasons = append(reasons, fmt.Sprintf("polygraph risk factor %d", rf))
		}
	}
	if s.Polygraph.Novel {
		score += p.NoveltyWeight
		reasons = append(reasons, "novelty guard: alien fingerprint surface")
	}
	if s.UntrustedIP {
		score += p.UntrustedIPWeight
		reasons = append(reasons, "unfamiliar IP")
	}
	if s.UntrustedCookie {
		score += p.UntrustedCookieWeight
		reasons = append(reasons, "fresh cookie")
	}

	action := Allow
	switch {
	case score >= p.DenyAt:
		action = Deny
	case score >= p.StepUpAt:
		action = StepUp
	}
	return Decision{Action: action, Score: score, Reasons: reasons}
}

// Explain renders the decision for audit logs.
func (d Decision) Explain() string {
	if len(d.Reasons) == 0 {
		return fmt.Sprintf("%s (score %.0f)", d.Action, d.Score)
	}
	return fmt.Sprintf("%s (score %.0f): %s", d.Action, d.Score, strings.Join(d.Reasons, "; "))
}
