package riskauth

import (
	"strings"
	"testing"
	"testing/quick"

	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/ua"
)

func TestDefaultPolicyValid(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPolicies(t *testing.T) {
	bad := []Policy{
		{StepUpAt: 0, DenyAt: 10},
		{StepUpAt: 10, DenyAt: 10},
		{StepUpAt: 10, DenyAt: 5},
		{StepUpAt: 10, DenyAt: 20, RiskFactorWeight: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("policy %d accepted", i)
		}
	}
}

func TestDecisionBands(t *testing.T) {
	p := DefaultPolicy()
	cases := []struct {
		name string
		sig  Signals
		want Action
	}{
		{"clean", Signals{Polygraph: core.Result{Matched: true}}, Allow},
		{"tags only", Signals{Polygraph: core.Result{Matched: true}, UntrustedIP: true, UntrustedCookie: true}, Allow},
		{"low-risk mismatch alone", Signals{Polygraph: core.Result{Matched: false, RiskFactor: 1}}, Allow},
		{"moderate mismatch", Signals{Polygraph: core.Result{Matched: false, RiskFactor: 8}}, StepUp},
		{"moderate mismatch + tags", Signals{
			Polygraph:   core.Result{Matched: false, RiskFactor: 13},
			UntrustedIP: true, UntrustedCookie: true}, Deny},
		{"cross-vendor lie", Signals{Polygraph: core.Result{Matched: false, RiskFactor: 20}}, Deny},
		{"novel surface", Signals{Polygraph: core.Result{Matched: true, Novel: true, RiskFactor: 20}}, Deny},
	}
	for _, c := range cases {
		got := p.Evaluate(c.sig)
		if got.Action != c.want {
			t.Fatalf("%s: got %s (score %.0f), want %s", c.name, got.Action, got.Score, c.want)
		}
	}
}

func TestExplainMentionsReasons(t *testing.T) {
	p := DefaultPolicy()
	d := p.Evaluate(Signals{
		Polygraph:   core.Result{Matched: false, RiskFactor: 20},
		UntrustedIP: true,
	})
	text := d.Explain()
	for _, needle := range []string{"deny", "risk factor 20", "unfamiliar IP"} {
		if !strings.Contains(text, needle) {
			t.Fatalf("explanation missing %q: %s", needle, text)
		}
	}
	clean := p.Evaluate(Signals{Polygraph: core.Result{Matched: true}})
	if !strings.Contains(clean.Explain(), "allow") {
		t.Fatalf("clean explanation: %s", clean.Explain())
	}
}

// TestMonotonicity: adding a signal never decreases the action severity.
func TestMonotonicity(t *testing.T) {
	p := DefaultPolicy()
	f := func(rf uint8, novel, ip, cookie bool) bool {
		base := Signals{
			Polygraph: core.Result{Matched: false, RiskFactor: int(rf % 21)},
		}
		baseAction := p.Evaluate(base).Action
		more := base
		more.Polygraph.Novel = novel
		more.UntrustedIP = ip
		more.UntrustedCookie = cookie
		return p.Evaluate(more).Action >= baseAction
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOnTraffic runs the full decision stack on generated traffic: fraud
// sessions get stepped-up/denied at far higher rates than honest ones,
// and honest friction stays low.
func TestOnTraffic(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.Sessions = 30000
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
	model, _, err := core.Train(d.Samples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultPolicy()

	var honest, honestBlocked, fraud, fraudBlocked int
	for _, s := range d.Sessions {
		res, err := model.Score(s.Vector, s.Claimed)
		if err != nil {
			t.Fatal(err)
		}
		dec := policy.Evaluate(Signals{
			Polygraph:       res,
			UntrustedIP:     s.Tags.UntrustedIP,
			UntrustedCookie: s.Tags.UntrustedCookie,
		})
		blocked := dec.Action != Allow
		if s.Fraud {
			fraud++
			if blocked {
				fraudBlocked++
			}
		} else {
			honest++
			if blocked {
				honestBlocked++
			}
		}
	}
	if fraud == 0 {
		t.Fatal("no fraud in traffic")
	}
	fraudRate := float64(fraudBlocked) / float64(fraud)
	honestRate := float64(honestBlocked) / float64(honest)
	if fraudRate < 0.6 {
		t.Fatalf("only %.0f%% of fraud challenged", 100*fraudRate)
	}
	if honestRate > 0.01 {
		t.Fatalf("%.2f%% of honest sessions challenged — too much friction", 100*honestRate)
	}
	if fraudRate < 50*honestRate {
		t.Fatalf("separation too weak: fraud %.3f vs honest %.5f", fraudRate, honestRate)
	}
}
