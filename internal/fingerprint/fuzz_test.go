package fingerprint

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary hardens the codec against hostile network input:
// it must never panic, never over-allocate, and anything it accepts must
// re-encode to a payload it accepts again.
func FuzzUnmarshalBinary(f *testing.F) {
	// Seed corpus: a valid payload, truncations, mutations.
	valid := &Payload{UserAgent: "Mozilla/5.0 Chrome/112.0.0.0", Values: []int64{1, 2, 3, -4, 1 << 40}}
	enc, err := valid.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add(enc[:len(enc)-3])
	f.Add([]byte{})
	f.Add([]byte("bP"))
	f.Add(append([]byte{'b', 'P', 1}, bytes.Repeat([]byte{0xFF}, 40)...))
	mut := append([]byte(nil), enc...)
	mut[5] ^= 0x80
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		// Accepted payloads must roundtrip.
		re, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted payload fails to re-encode: %v", err)
		}
		p2, err := UnmarshalBinary(re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		if p2.UserAgent != p.UserAgent || p2.SessionID != p.SessionID || len(p2.Values) != len(p.Values) {
			t.Fatal("roundtrip mismatch")
		}
		for i := range p.Values {
			if p.Values[i] != p2.Values[i] {
				t.Fatal("value mismatch after roundtrip")
			}
		}
	})
}
