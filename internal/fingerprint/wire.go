package fingerprint

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MaxPayloadSize is FinOrg's hard per-user data budget: "data extracted
// per-user should be minimal, under the threshold of one kilobyte" (§3).
// MarshalBinary enforces it.
const MaxPayloadSize = 1024

// The magic bytes ("bP" — browser Polygraph) and version frame the wire
// format so servers can reject junk cheaply before parsing.
const (
	magicByte0     = 'b'
	magicByte1     = 'P'
	payloadVersion = 1
)

// SessionIDSize is the size of the opaque anonymized session identifier
// FinOrg attaches to each collection (appendix A: "completely opaque and
// randomized").
const SessionIDSize = 16

// Payload is one client collection: the opaque session ID, the claimed
// user-agent string, and the integer outputs of the candidate features —
// the only data the paper's script ships (§6.2).
type Payload struct {
	SessionID [SessionIDSize]byte
	UserAgent string
	Values    []int64
}

// Errors returned by the codec.
var (
	ErrPayloadTooLarge = errors.New("fingerprint: payload exceeds 1 KB budget")
	ErrBadPayload      = errors.New("fingerprint: malformed payload")
	// ErrBadVersion is a refinement of ErrBadPayload (errors.Is matches
	// both) so the serving tier can count version-skew rejects — a fleet
	// rollout signal — separately from garbage payloads.
	ErrBadVersion = errors.New("fingerprint: unsupported payload version")
)

// MarshalBinary encodes the payload in the compact wire format:
//
//	magic[2] version[1] sessionID[16]
//	uaLen:uvarint ua[uaLen]
//	nValues:uvarint value*:varint (zig-zag)
//
// It fails with ErrPayloadTooLarge when the encoding exceeds
// MaxPayloadSize — by construction a 28-feature payload is ~150 bytes,
// and even the full 513-candidate collection fits.
func (p *Payload) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 256)
	buf = append(buf, magicByte0, magicByte1, payloadVersion)
	buf = append(buf, p.SessionID[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(p.UserAgent)))
	buf = append(buf, p.UserAgent...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Values)))
	for _, v := range p.Values {
		buf = binary.AppendVarint(buf, v)
	}
	if len(buf) > MaxPayloadSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(buf))
	}
	return buf, nil
}

// UnmarshalBinary decodes a payload produced by MarshalBinary. It
// validates framing, bounds every length against the remaining input,
// and rejects oversized payloads, so it is safe on untrusted network
// input.
func UnmarshalBinary(data []byte) (*Payload, error) {
	if len(data) > MaxPayloadSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(data))
	}
	if len(data) < 3+SessionIDSize {
		return nil, fmt.Errorf("%w: truncated header", ErrBadPayload)
	}
	if data[0] != magicByte0 || data[1] != magicByte1 {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPayload)
	}
	if data[2] != payloadVersion {
		return nil, fmt.Errorf("%w: %w %d", ErrBadPayload, ErrBadVersion, data[2])
	}
	p := &Payload{}
	copy(p.SessionID[:], data[3:3+SessionIDSize])
	rest := data[3+SessionIDSize:]

	uaLen, n := binary.Uvarint(rest)
	if n <= 0 || uaLen > uint64(len(rest)-n) {
		return nil, fmt.Errorf("%w: bad user-agent length", ErrBadPayload)
	}
	rest = rest[n:]
	p.UserAgent = string(rest[:uaLen])
	rest = rest[uaLen:]

	nVals, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad value count", ErrBadPayload)
	}
	rest = rest[n:]
	// Each varint takes ≥ 1 byte; cheap upper-bound check prevents
	// attacker-controlled huge allocations.
	if nVals > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: value count %d exceeds payload", ErrBadPayload, nVals)
	}
	p.Values = make([]int64, nVals)
	for i := range p.Values {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated value %d", ErrBadPayload, i)
		}
		p.Values[i] = v
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return p, nil
}

// VectorToValues converts an extracted float vector (whose entries are
// integral by construction) into wire values.
func VectorToValues(v []float64) []int64 {
	out := make([]int64, len(v))
	for i, f := range v {
		out[i] = int64(f)
	}
	return out
}

// ValuesToVector converts wire values back into a float vector for the
// model.
func ValuesToVector(v []int64) []float64 {
	return ValuesToVectorInto(nil, v)
}

// ValuesToVectorInto converts into dst, reusing its capacity when it
// fits and allocating only when it does not — the per-request fast path
// of the serving tier. It returns the (possibly regrown) destination.
func ValuesToVectorInto(dst []float64, v []int64) []float64 {
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	}
	dst = dst[:len(v)]
	for i, x := range v {
		dst[i] = float64(x)
	}
	return dst
}
