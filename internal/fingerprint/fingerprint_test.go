package fingerprint

import (
	"bytes"
	"testing"
	"testing/quick"

	"polygraph/internal/browser"
	"polygraph/internal/ua"
)

func TestTable8Shape(t *testing.T) {
	feats := Table8()
	if len(feats) != 28 {
		t.Fatalf("Table 8 has %d features, want 28", len(feats))
	}
	dev, tb := 0, 0
	for _, f := range feats {
		switch f.Kind {
		case DeviationBased:
			dev++
		case TimeBased:
			tb++
		}
		if !browser.KnownProto(f.Proto) {
			t.Fatalf("feature on unknown proto %s", f.Proto)
		}
	}
	if dev != 22 || tb != 6 {
		t.Fatalf("dev=%d tb=%d, want 22/6", dev, tb)
	}
	if feats[0].Name() != "Object.getOwnPropertyNames(Element.prototype).length" {
		t.Fatalf("first feature name = %s", feats[0].Name())
	}
	if feats[22].Name() != "Navigator.prototype.hasOwnProperty('deviceMemory')" {
		t.Fatalf("first time-based name = %s", feats[22].Name())
	}
}

func TestTable12FeatureSets(t *testing.T) {
	for _, total := range []int{28, 32, 36, 42} {
		feats, err := Table12FeatureSet(total)
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) != total {
			t.Fatalf("Table12FeatureSet(%d) has %d features", total, len(feats))
		}
		seen := map[string]bool{}
		for _, f := range feats {
			if seen[f.Name()] {
				t.Fatalf("duplicate feature %s in set %d", f.Name(), total)
			}
			seen[f.Name()] = true
		}
	}
	if _, err := Table12FeatureSet(30); err == nil {
		t.Fatal("expected error for unsupported row")
	}
}

func TestCandidates513(t *testing.T) {
	c := Candidates513()
	if len(c) != 513 {
		t.Fatalf("candidate set size = %d", len(c))
	}
	dev := 0
	for _, f := range c {
		if f.Kind == DeviationBased {
			dev++
		}
	}
	if dev != 200 {
		t.Fatalf("deviation candidates = %d, want 200", dev)
	}
}

func TestSkipScaleMask(t *testing.T) {
	mask := SkipScaleMask(Table8())
	for i := 0; i < 22; i++ {
		if mask[i] {
			t.Fatalf("deviation feature %d marked skip", i)
		}
	}
	for i := 22; i < 28; i++ {
		if !mask[i] {
			t.Fatalf("time-based feature %d not marked skip", i)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names(Table8())
	if len(names) != 28 {
		t.Fatal("names length")
	}
	if names[27] != "CSSStyleDeclaration.prototype.hasOwnProperty('getPropertyValue')" {
		t.Fatalf("last name = %s", names[27])
	}
}

func TestKindString(t *testing.T) {
	if DeviationBased.String() != "deviation-based" || TimeBased.String() != "time-based" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func newTestExtractor() *Extractor {
	return NewExtractor(browser.NewOracle(), Table8())
}

func TestExtractDeterministicAndCached(t *testing.T) {
	e := newTestExtractor()
	p := browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10}
	a := e.Extract(p)
	b := e.Extract(p)
	if len(a) != 28 {
		t.Fatalf("vector length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("extraction not deterministic")
		}
	}
	// Cached vector must be isolated from caller mutation.
	a[0] = -999
	c := e.Extract(p)
	if c[0] == -999 {
		t.Fatal("cache aliased caller slice")
	}
}

func TestExtractTimeBasedBinary(t *testing.T) {
	e := newTestExtractor()
	p := browser.Profile{Release: ua.Release{Vendor: ua.Firefox, Version: 110}, OS: ua.Windows10}
	v := e.Extract(p)
	for i := 22; i < 28; i++ {
		if v[i] != 0 && v[i] != 1 {
			t.Fatalf("time-based feature %d = %v", i, v[i])
		}
	}
	// Firefox lacks deviceMemory (idx 22), has Screen.orientation (25).
	if v[22] != 0 {
		t.Fatal("Firefox reports deviceMemory")
	}
	if v[25] != 1 {
		t.Fatal("modern Firefox lacks Screen.orientation")
	}
}

func TestExtractModifiersBypassCache(t *testing.T) {
	e := newTestExtractor()
	rel := ua.Release{Vendor: ua.Chrome, Version: 111}
	plain := e.Extract(browser.Profile{Release: rel, OS: ua.Windows10})
	brave := e.Extract(browser.Profile{Release: rel, OS: ua.Windows10,
		Mods: []browser.Modifier{browser.BraveShift()}})
	if plain[0] == brave[0] {
		t.Fatal("Brave Element count identical to Chrome")
	}
	// And extracting plain again is unaffected.
	plain2 := e.Extract(browser.Profile{Release: rel, OS: ua.Windows10})
	if plain[0] != plain2[0] {
		t.Fatal("cache poisoned by modified profile")
	}
}

func TestExtractIntoMatchesExtract(t *testing.T) {
	e := newTestExtractor()
	p := browser.Profile{Release: ua.Release{Vendor: ua.Edge, Version: 112}, OS: ua.Windows11}
	want := e.Extract(p)
	dst := make([]float64, e.Dim())
	e.ExtractInto(p, dst)
	for i := range want {
		if want[i] != dst[i] {
			t.Fatal("ExtractInto mismatch")
		}
	}
}

func TestExtractIntoPanicsOnBadLen(t *testing.T) {
	e := newTestExtractor()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad destination")
		}
	}()
	e.ExtractInto(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 100}}, make([]float64, 3))
}

func TestMatrixExtraction(t *testing.T) {
	e := newTestExtractor()
	profiles := []browser.Profile{
		{Release: ua.Release{Vendor: ua.Chrome, Version: 100}, OS: ua.Windows10},
		{Release: ua.Release{Vendor: ua.Firefox, Version: 100}, OS: ua.Windows10},
	}
	m := e.Matrix(profiles)
	r, c := m.Dims()
	if r != 2 || c != 28 {
		t.Fatalf("matrix %dx%d", r, c)
	}
	v0 := e.Extract(profiles[0])
	for j := range v0 {
		if m.At(0, j) != v0[j] {
			t.Fatal("matrix row differs from Extract")
		}
	}
}

func TestPayloadRoundtrip(t *testing.T) {
	p := &Payload{
		UserAgent: ua.UserAgent(ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Windows10),
		Values:    []int64{150, 0, 1, 42, 310, -1},
	}
	copy(p.SessionID[:], bytes.Repeat([]byte{0xAB}, SessionIDSize))
	enc, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.UserAgent != p.UserAgent || got.SessionID != p.SessionID {
		t.Fatal("header roundtrip failed")
	}
	if len(got.Values) != len(p.Values) {
		t.Fatal("value count mismatch")
	}
	for i := range p.Values {
		if got.Values[i] != p.Values[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestPayloadUnder1KB(t *testing.T) {
	// A realistic 28-feature payload must be far below 1 KB; even the
	// full 513-candidate collection must fit the budget.
	e := NewExtractor(browser.NewOracle(), Candidates513())
	p := browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10}
	v := e.Extract(p)
	payload := &Payload{
		UserAgent: ua.UserAgent(p.Release, p.OS),
		Values:    VectorToValues(v),
	}
	enc, err := payload.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > MaxPayloadSize {
		t.Fatalf("full candidate payload = %d bytes", len(enc))
	}
	// The production 28-feature payload is tiny.
	e28 := newTestExtractor()
	payload.Values = VectorToValues(e28.Extract(p))
	enc, err = payload.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 256 {
		t.Fatalf("28-feature payload = %d bytes, want < 256", len(enc))
	}
}

func TestPayloadTooLarge(t *testing.T) {
	p := &Payload{Values: make([]int64, 2000)}
	for i := range p.Values {
		p.Values[i] = 1 << 40
	}
	if _, err := p.MarshalBinary(); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestUnmarshalRejectsJunk(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("short"),
		append([]byte{'x', 'P', 1}, make([]byte, 20)...),              // bad magic
		append([]byte{'b', 'P', 9}, make([]byte, 20)...),              // bad version
		append([]byte{'b', 'P', 1}, make([]byte, SessionIDSize)...),   // missing UA length
		bytes.Repeat([]byte{0xFF}, MaxPayloadSize+1),                  // oversized
		append([]byte{'b', 'P', 1}, append(make([]byte, 16), 200)...), // UA length beyond payload
	}
	for i, c := range cases {
		if _, err := UnmarshalBinary(c); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	p := &Payload{UserAgent: "x", Values: []int64{1}}
	enc, _ := p.MarshalBinary()
	enc = append(enc, 0x00)
	if _, err := UnmarshalBinary(enc); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalRejectsHugeValueCount(t *testing.T) {
	// Forge a header claiming many values with no bytes behind it.
	buf := []byte{'b', 'P', 1}
	buf = append(buf, make([]byte, SessionIDSize)...)
	buf = append(buf, 0)          // empty UA
	buf = append(buf, 0xFF, 0x7F) // claims 16383 values
	if _, err := UnmarshalBinary(buf); err == nil {
		t.Fatal("huge value count accepted")
	}
}

func TestPayloadQuickRoundtrip(t *testing.T) {
	f := func(sid [SessionIDSize]byte, uaStr string, raw []int32) bool {
		if len(uaStr) > 300 || len(raw) > 120 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		p := &Payload{SessionID: sid, UserAgent: uaStr, Values: vals}
		enc, err := p.MarshalBinary()
		if err != nil {
			return true // legitimately oversized
		}
		got, err := UnmarshalBinary(enc)
		if err != nil {
			return false
		}
		if got.UserAgent != uaStr || got.SessionID != sid || len(got.Values) != len(vals) {
			return false
		}
		for i := range vals {
			if got.Values[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorValueConversions(t *testing.T) {
	v := []float64{1, 0, 42, 311}
	vals := VectorToValues(v)
	back := ValuesToVector(vals)
	for i := range v {
		if back[i] != v[i] {
			t.Fatal("conversion roundtrip failed")
		}
	}
}

func BenchmarkExtractCached(b *testing.B) {
	e := newTestExtractor()
	p := browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10}
	dst := make([]float64, e.Dim())
	e.ExtractInto(p, dst) // warm cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ExtractInto(p, dst)
	}
}

func BenchmarkMarshalPayload(b *testing.B) {
	e := newTestExtractor()
	p := browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10}
	payload := &Payload{
		UserAgent: ua.UserAgent(p.Release, p.OS),
		Values:    VectorToValues(e.Extract(p)),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := payload.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}
