package fingerprint

import (
	"sync"

	"polygraph/internal/browser"
	"polygraph/internal/matrix"
	"polygraph/internal/ua"
)

// Extractor evaluates a feature list against browser profiles. Extraction
// of unmodified profiles is memoized per (release, OS): the traffic
// generator produces hundreds of thousands of sessions that share a few
// hundred base fingerprints, exactly like the production traffic the
// paper describes (96% of same-UA sessions had identical fingerprints).
type Extractor struct {
	oracle   *browser.Oracle
	features []Feature

	mu    sync.RWMutex
	cache map[cacheKey][]float64
}

type cacheKey struct {
	rel ua.Release
	os  ua.OS
}

// NewExtractor builds an extractor over the given features. The feature
// slice is copied.
func NewExtractor(o *browser.Oracle, feats []Feature) *Extractor {
	return &Extractor{
		oracle:   o,
		features: append([]Feature(nil), feats...),
		cache:    make(map[cacheKey][]float64, 256),
	}
}

// Features returns the extractor's feature list (shared slice; callers
// must not mutate).
func (e *Extractor) Features() []Feature { return e.features }

// Dim returns the number of features.
func (e *Extractor) Dim() int { return len(e.features) }

// Extract returns the feature vector of a profile. The returned slice is
// owned by the caller.
func (e *Extractor) Extract(p browser.Profile) []float64 {
	if len(p.Mods) == 0 {
		key := cacheKey{rel: p.Release, os: p.OS}
		e.mu.RLock()
		v, ok := e.cache[key]
		e.mu.RUnlock()
		if !ok {
			v = e.compute(p)
			e.mu.Lock()
			e.cache[key] = v
			e.mu.Unlock()
		}
		out := make([]float64, len(v))
		copy(out, v)
		return out
	}
	return e.compute(p)
}

// ExtractInto writes the feature vector of a profile into dst, which must
// have length Dim. It allocates nothing for cached profiles.
func (e *Extractor) ExtractInto(p browser.Profile, dst []float64) {
	if len(dst) != len(e.features) {
		panic("fingerprint: ExtractInto destination has wrong length")
	}
	if len(p.Mods) == 0 {
		key := cacheKey{rel: p.Release, os: p.OS}
		e.mu.RLock()
		v, ok := e.cache[key]
		e.mu.RUnlock()
		if ok {
			copy(dst, v)
			return
		}
		v = e.compute(p)
		e.mu.Lock()
		e.cache[key] = v
		e.mu.Unlock()
		copy(dst, v)
		return
	}
	e.computeInto(p, dst)
}

func (e *Extractor) compute(p browser.Profile) []float64 {
	out := make([]float64, len(e.features))
	e.computeInto(p, out)
	return out
}

func (e *Extractor) computeInto(p browser.Profile, dst []float64) {
	for i, f := range e.features {
		switch f.Kind {
		case DeviationBased:
			dst[i] = float64(p.PropertyCount(e.oracle, f.Proto))
		case TimeBased:
			if p.HasProperty(e.oracle, f.Proto, f.Prop) {
				dst[i] = 1
			} else {
				dst[i] = 0
			}
		}
	}
}

// Matrix extracts every profile into a rows×dim matrix.
func (e *Extractor) Matrix(profiles []browser.Profile) *matrix.Dense {
	m := matrix.NewDense(len(profiles), len(e.features))
	for i, p := range profiles {
		e.ExtractInto(p, m.RawRow(i))
	}
	return m
}
