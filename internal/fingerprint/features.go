// Package fingerprint defines the coarse-grained browser fingerprint:
// feature schema (deviation-based property counts and time-based presence
// probes, paper §6.1), the canonical 28-feature set of Table 8, candidate
// sets for the collection stage, extraction against the browser oracle,
// and the ≤1 KB wire codec that meets the paper's FinOrg data-size
// requirement (§3).
package fingerprint

import (
	"fmt"

	"polygraph/internal/browser"
)

// Kind distinguishes the two feature families of §6.1.
type Kind uint8

const (
	// DeviationBased features count the properties of a JavaScript
	// prototype; they were selected by output variance across browsers.
	DeviationBased Kind = iota + 1
	// TimeBased features probe presence of a property on a prototype;
	// they come from BrowserPrint's catalogue.
	TimeBased
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case DeviationBased:
		return "deviation-based"
	case TimeBased:
		return "time-based"
	default:
		return "unknown"
	}
}

// Feature is one fingerprintable probe.
type Feature struct {
	Kind  Kind
	Proto string
	Prop  string // time-based only
}

// Name renders the feature exactly as the paper's tables write it.
func (f Feature) Name() string {
	switch f.Kind {
	case DeviationBased:
		return fmt.Sprintf("Object.getOwnPropertyNames(%s.prototype).length", f.Proto)
	case TimeBased:
		return fmt.Sprintf("%s.prototype.hasOwnProperty('%s')", f.Proto, f.Prop)
	default:
		return "invalid-feature"
	}
}

// Deviation constructs a deviation-based feature for a prototype.
func Deviation(proto string) Feature {
	return Feature{Kind: DeviationBased, Proto: proto}
}

// Time constructs a time-based feature for a prototype property.
func Time(proto, prop string) Feature {
	return Feature{Kind: TimeBased, Proto: proto, Prop: prop}
}

// table8Deviation lists the paper's final 22 deviation-based prototypes
// (Table 8, Num 1–22) in publication order. "SVGELEMENT" in the published
// table is the paper's typesetting of SVGElement.
var table8Deviation = []string{
	"Element", "Document", "HTMLElement", "SVGElement",
	"SVGFEBlendElement", "TextMetrics", "Range", "StaticRange",
	"AuthenticatorAttestationResponse", "HTMLVideoElement",
	"ResizeObserverEntry", "ShadowRoot", "PointerEvent",
	"IntersectionObserver", "CanvasRenderingContext2D", "CSSStyleSheet",
	"AudioContext", "HTMLLinkElement", "HTMLMediaElement",
	"WebGL2RenderingContext", "WebGLRenderingContext", "CSSRule",
}

// Table8 returns the canonical 28-feature set (22 deviation-based then 6
// time-based) the production model trains on.
func Table8() []Feature {
	out := make([]Feature, 0, 28)
	for _, p := range table8Deviation {
		out = append(out, Deviation(p))
	}
	for _, tb := range browser.CuratedTimeBased() {
		out = append(out, Time(tb.Proto, tb.Prop))
	}
	return out
}

// table12Steps lists the Appendix-4 Table 12 feature additions: each step
// appends four deviation-based features in candidate-ranking order.
var table12Steps = [][]string{
	{"HTMLIFrameElement", "SVGAElement", "RemotePlayback", "StylePropertyMapReadOnly"},
	{"Screen", "Request", "TouchEvent", "TaskAttributionTiming"},
	{"PictureInPictureWindow", "ReportingObserver", "HTMLTemplateElement", "MediaSession"},
}

// Table12FeatureSet returns the feature set for an Appendix-4 Table 12
// row: total ∈ {28, 32, 36, 42}. Note the paper's last step adds four
// features to 36 but labels the row 42; we follow the published row
// labels and add the extra sets cumulatively, padding the final step from
// the next-ranked candidates.
func Table12FeatureSet(total int) ([]Feature, error) {
	feats := Table8()
	switch total {
	case 28:
		return feats, nil
	case 32, 36:
		steps := (total - 28) / 4
		for i := 0; i < steps; i++ {
			for _, p := range table12Steps[i] {
				feats = append(feats, Deviation(p))
			}
		}
		return feats, nil
	case 42:
		for _, step := range table12Steps {
			for _, p := range step {
				feats = append(feats, Deviation(p))
			}
		}
		// The published row jumps 36 → 42; fill the remaining two
		// slots with the next-ranked stable candidates.
		feats = append(feats, Deviation("HTMLIFrameElement"))
		// Avoid duplicating: use two further candidates instead.
		feats = feats[:len(feats)-1]
		feats = append(feats, Deviation("Blob"), Deviation("Performance"))
		return feats, nil
	default:
		return nil, fmt.Errorf("fingerprint: no Table 12 row with %d features", total)
	}
}

// Candidates513 returns the full Real-World Data Collection candidate
// set: 200 deviation-based probes (Appendix-3) followed by 313 time-based
// probes (BrowserPrint catalogue).
func Candidates513() []Feature {
	out := make([]Feature, 0, 513)
	for _, p := range browser.Appendix3Protos() {
		out = append(out, Deviation(p))
	}
	for _, tb := range browser.BrowserPrintCandidates() {
		out = append(out, Time(tb.Proto, tb.Prop))
	}
	return out
}

// SkipScaleMask returns, for a feature list, the mask of columns the
// standard scaler should pass through: time-based features are already
// binary (§6.4.1).
func SkipScaleMask(feats []Feature) []bool {
	mask := make([]bool, len(feats))
	for i, f := range feats {
		mask[i] = f.Kind == TimeBased
	}
	return mask
}

// Names returns the canonical names of a feature list.
func Names(feats []Feature) []string {
	out := make([]string, len(feats))
	for i, f := range feats {
		out[i] = f.Name()
	}
	return out
}
