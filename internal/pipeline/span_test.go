package pipeline

import (
	"context"
	"sync"
	"testing"
	"time"
)

// memRecorder collects spans for assertions.
type memRecorder struct {
	mu    sync.Mutex
	names []string
	durs  []time.Duration
}

func (r *memRecorder) RecordSpan(name string, start time.Time, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names = append(r.names, name)
	r.durs = append(r.durs, d)
}

func TestStartSpanRecordsThroughContext(t *testing.T) {
	rec := &memRecorder{}
	ctx := WithSpanRecorder(context.Background(), rec)
	if SpanRecorderFrom(ctx) == nil {
		t.Fatal("recorder not on context")
	}
	end := StartSpan(ctx, "work")
	time.Sleep(time.Millisecond)
	end()
	if len(rec.names) != 1 || rec.names[0] != "work" {
		t.Fatalf("recorded %v", rec.names)
	}
	if rec.durs[0] <= 0 {
		t.Fatalf("duration %v not positive", rec.durs[0])
	}
}

func TestStartSpanWithoutRecorderIsNoop(t *testing.T) {
	// Must not panic and must be callable.
	end := StartSpan(context.Background(), "work")
	end()
}

func TestWithSpanRecorderNilKeepsContext(t *testing.T) {
	ctx := context.Background()
	if got := WithSpanRecorder(ctx, nil); got != ctx {
		t.Fatal("nil recorder should not derive a new context")
	}
}

func TestRunnerReportsStageSpans(t *testing.T) {
	rec := &memRecorder{}
	ctx := WithSpanRecorder(context.Background(), rec)
	r := New(ctx)
	err := r.Run("stage-a", 1, func(ctx context.Context) (int, error) {
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.names) != 1 || rec.names[0] != "stage-a" {
		t.Fatalf("runner spans %v", rec.names)
	}
	// Span duration must agree with the runner's own timing record.
	timings := r.Timings()
	if len(timings) != 1 || timings[0].Duration != rec.durs[0] {
		t.Fatalf("timing %v != span %v", timings, rec.durs)
	}
}
