package pipeline

import (
	"context"
	"time"
)

// Span plumbing. The observability layer (internal/obs) wants per-stage
// timings for request-scoped traces, but core and the numeric stages
// must not import obs (obs depends on drift, which depends on core).
// The contract therefore lives here, in the stdlib-only pipeline layer:
// obs attaches a SpanRecorder to the request context at ingress, and
// every stage — Runner stages and ad-hoc StartSpan sections alike —
// reports into whatever recorder rides the context. Without a recorder
// the hooks are no-ops, so offline training and tests pay nothing.

// SpanRecorder receives one completed span: a named section of work
// with its start time and duration. Implementations must be safe for
// concurrent use; the serving tier records spans from parallel workers.
type SpanRecorder interface {
	RecordSpan(name string, start time.Time, d time.Duration)
}

// spanKey is the context key the recorder travels under.
type spanKey struct{}

// WithSpanRecorder returns a context carrying rec; a nil rec returns
// ctx unchanged.
func WithSpanRecorder(ctx context.Context, rec SpanRecorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, rec)
}

// SpanRecorderFrom extracts the recorder from ctx (nil when absent).
func SpanRecorderFrom(ctx context.Context) SpanRecorder {
	rec, _ := ctx.Value(spanKey{}).(SpanRecorder)
	return rec
}

// StartSpan opens a named span on ctx's recorder and returns the
// closure that finishes it. With no recorder on the context it returns
// a no-op, so instrumented code does not branch:
//
//	defer pipeline.StartSpan(ctx, "score-batch")()
func StartSpan(ctx context.Context, name string) func() {
	rec := SpanRecorderFrom(ctx)
	if rec == nil {
		return func() {}
	}
	start := time.Now()
	return func() { rec.RecordSpan(name, start, time.Since(start)) }
}
