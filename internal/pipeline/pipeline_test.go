package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestRunnerRecordsTimings(t *testing.T) {
	r := New(context.Background())
	if err := r.Run("scale", 100, func(ctx context.Context) (int, error) { return 100, nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("filter", 100, func(ctx context.Context) (int, error) { return 97, nil }); err != nil {
		t.Fatal(err)
	}
	got := r.Timings()
	if len(got) != 2 {
		t.Fatalf("timings: %d, want 2", len(got))
	}
	if got[0].Name != "scale" || got[0].RowsIn != 100 || got[0].RowsOut != 100 {
		t.Errorf("stage 0: %+v", got[0])
	}
	if got[1].Name != "filter" || got[1].RowsIn != 100 || got[1].RowsOut != 97 {
		t.Errorf("stage 1: %+v", got[1])
	}
	for _, st := range got {
		if st.Duration < 0 {
			t.Errorf("stage %s: negative duration %v", st.Name, st.Duration)
		}
	}
}

func TestRunnerRefusesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := New(ctx)
	ran := false
	err := r.Run("kmeans", 10, func(ctx context.Context) (int, error) { ran = true; return 10, nil })
	if ran {
		t.Error("stage body ran under a cancelled context")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "kmeans" {
		t.Errorf("stage attribution missing: %v", err)
	}
	if len(r.Timings()) != 0 {
		t.Error("cancelled stage recorded a timing")
	}
}

func TestRunnerMapsContextErrors(t *testing.T) {
	r := New(context.Background())
	err := r.Run("pca", 5, func(ctx context.Context) (int, error) {
		return 0, fmt.Errorf("transform: %w", context.DeadlineExceeded)
	})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("deadline error not mapped to ErrCanceled: %v", err)
	}
}

func TestRunnerWrapsStageFailures(t *testing.T) {
	r := New(context.Background())
	cause := BadInput("sample %d has wrong width", 3)
	err := r.Run("scale", 5, func(ctx context.Context) (int, error) { return 0, cause })
	if !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("plain failure mis-classified as cancellation: %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "scale" {
		t.Errorf("stage attribution missing: %v", err)
	}
	if len(r.Timings()) != 0 {
		t.Error("failed stage recorded a timing")
	}
}

func TestCanceledHelperIdempotent(t *testing.T) {
	once := Canceled(context.Canceled)
	twice := Canceled(once)
	if once != twice { //nolint:errorlint // pointer identity is the point
		t.Error("Canceled re-wrapped an already-classified error")
	}
	if !errors.Is(Canceled(nil), ErrCanceled) {
		t.Error("Canceled(nil) lost the sentinel")
	}
}
