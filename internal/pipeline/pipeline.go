// Package pipeline is the stage-execution layer under the §6.4 training
// pipeline: every stage (scale → iforest filter → PCA → k-means →
// cluster-table) runs under a context.Context through a Runner that
// records wall time and rows in/out, and failures surface through a
// small typed error taxonomy instead of stringly-typed fmt.Errorf
// values. The daemon's hot-reload retrain loop depends on this layer to
// cancel a training run mid-flight, bound a slow stage with a deadline,
// and distinguish bad input from internal failure.
//
// Cancellation semantics. Stages observe the context cooperatively:
// internal/parallel checks ctx at chunk boundaries, so a cancelled
// context aborts within one chunk of work. Cancellation can only skip
// work, never reorder or resplit it — chunk geometry stays a pure
// function of the input size — which is why instrumented, cancellable
// runs remain bit-identical to the uninstrumented pipeline whenever they
// run to completion.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// The error taxonomy. Callers classify failures with errors.Is; stage
// attribution travels alongside via StageError (errors.As).
var (
	// ErrCanceled reports that the context was cancelled or its deadline
	// expired before the pipeline finished.
	ErrCanceled = errors.New("pipeline: canceled")
	// ErrBadInput reports invalid caller-supplied data or configuration —
	// the failure is the request's fault, not the system's.
	ErrBadInput = errors.New("pipeline: bad input")
	// ErrNotTrained reports use of a model that has not been trained (or
	// was loaded incompletely).
	ErrNotTrained = errors.New("pipeline: model not trained")
)

// BadInput wraps ErrBadInput with a formatted description.
func BadInput(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadInput, fmt.Sprintf(format, args...))
}

// Canceled wraps a cause (typically context.Canceled or
// context.DeadlineExceeded) so errors.Is(err, ErrCanceled) holds. A cause
// already carrying ErrCanceled passes through unchanged.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	if errors.Is(cause, ErrCanceled) {
		return cause
	}
	return fmt.Errorf("%w: %v", ErrCanceled, cause)
}

// IsContextErr reports whether err stems from context cancellation or
// deadline expiry.
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// StageError attributes a pipeline failure to the stage that produced it.
type StageError struct {
	// Stage is the stage name ("kmeans", "iforest-filter", ...).
	Stage string
	// Err is the underlying failure.
	Err error
}

func (e *StageError) Error() string { return fmt.Sprintf("stage %s: %v", e.Stage, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Timing records one executed stage: what ran, how long it took, and how
// many rows flowed in and out.
type Timing struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	RowsIn   int           `json:"rows_in"`
	RowsOut  int           `json:"rows_out"`
}

// Runner executes named stages under one shared context, accumulating a
// Timing per completed stage. The zero value is not usable; construct
// with New. Runners are single-goroutine objects (the pipeline itself
// fans out internally through internal/parallel).
type Runner struct {
	ctx     context.Context
	timings []Timing
}

// New builds a Runner over ctx; a nil ctx means context.Background().
func New(ctx context.Context) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Runner{ctx: ctx}
}

// Context returns the context stages run under.
func (r *Runner) Context() context.Context { return r.ctx }

// Run executes one stage: it refuses to start once the context is done,
// times fn, and records a Timing on success. rowsIn is the stage's input
// row count; fn reports its output row count. Errors come back wrapped
// in a StageError carrying the stage name, with context-driven failures
// additionally mapped onto ErrCanceled.
func (r *Runner) Run(name string, rowsIn int, fn func(ctx context.Context) (rowsOut int, err error)) error {
	if err := r.ctx.Err(); err != nil {
		return &StageError{Stage: name, Err: Canceled(err)}
	}
	start := time.Now()
	rowsOut, err := fn(r.ctx)
	if err != nil {
		if IsContextErr(err) || r.ctx.Err() != nil {
			err = Canceled(err)
		}
		return &StageError{Stage: name, Err: err}
	}
	elapsed := time.Since(start)
	r.timings = append(r.timings, Timing{
		Name:     name,
		Duration: elapsed,
		RowsIn:   rowsIn,
		RowsOut:  rowsOut,
	})
	// Stages double as trace spans when the context carries a recorder
	// (the serving tier's request traces; see span.go).
	if rec := SpanRecorderFrom(r.ctx); rec != nil {
		rec.RecordSpan(name, start, elapsed)
	}
	return nil
}

// Timings returns a copy of the completed-stage record, in execution
// order.
func (r *Runner) Timings() []Timing {
	return append([]Timing(nil), r.timings...)
}
