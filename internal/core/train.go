package core

import (
	"fmt"
	"math"
	"sort"

	"polygraph/internal/fingerprint"
	"polygraph/internal/iforest"
	"polygraph/internal/kmeans"
	"polygraph/internal/matrix"
	"polygraph/internal/parallel"
	"polygraph/internal/pca"
	"polygraph/internal/scaler"
	"polygraph/internal/ua"
)

// TrainConfig carries every knob of the §6.4 pipeline. The zero value is
// not usable; start from DefaultTrainConfig.
type TrainConfig struct {
	// Features describes the columns of the sample vectors.
	Features []fingerprint.Feature
	// PCAComponents is the retained dimensionality (paper: 7).
	PCAComponents int
	// K is the cluster count (paper: 11).
	K int
	// Seed drives all stochastic stages.
	Seed uint64
	// Contamination is the Isolation Forest filter fraction. The paper
	// quotes a "0.002%" threshold while reporting 172 dropped rows of
	// 205k (≈0.084%); we default to the observed drop rate.
	Contamination float64
	// IsolationTrees sizes the forest (default 100).
	IsolationTrees int
	// KMeansRestarts guards against unlucky initializations (default 4).
	KMeansRestarts int
	// DisablePCA clusters on the scaled features directly (ablation).
	DisablePCA bool
	// DisableOutlierFilter skips the Isolation Forest stage (ablation).
	DisableOutlierFilter bool
	// NoveltyGuard arms the centroid-distance novelty check: the model
	// records the largest distance any kept training row has to its
	// assigned centroid, and serving-time fingerprints beyond that
	// distance are flagged even when their claim is cluster-consistent
	// — an extension beyond the paper that catches spoofing-engine
	// surfaces the pure cluster check would excuse.
	NoveltyGuard bool
	// RareUAThreshold: user-agents with fewer training rows than this
	// get their cluster assignment from reference fingerprints instead
	// of their (unreliable) majority — the paper's §6.4.3 manual
	// alignment for sparse old versions ("in some cases less than 100
	// instances").
	RareUAThreshold int
	// Reference supplies pristine per-release fingerprints for the rare
	// user-agent alignment; nil disables the adjustment.
	Reference ReferenceProvider
	// VersionDivisor is Algorithm 1's divisor (default 4).
	VersionDivisor int
	// Workers sizes the worker pool behind every numeric stage (isolation
	// forest, PCA, k-means, batch prediction): 0 means GOMAXPROCS, 1
	// forces the serial path. The trained model is bit-identical for
	// every value — see internal/parallel's determinism contract.
	Workers int
}

// ReferenceProvider returns the legitimate fingerprint vector of a
// release, as collected during Candidate Fingerprint Generation (§6.1).
type ReferenceProvider interface {
	ReferenceVector(r ua.Release) ([]float64, bool)
}

// DefaultTrainConfig returns the paper's production configuration.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Features:        fingerprint.Table8(),
		PCAComponents:   7,
		K:               11,
		Seed:            1,
		Contamination:   172.0 / 205000.0,
		IsolationTrees:  100,
		KMeansRestarts:  4,
		RareUAThreshold: 100,
		VersionDivisor:  ua.DefaultVersionDivisor,
	}
}

// TrainReport captures training diagnostics.
type TrainReport struct {
	InputRows          int
	OutliersFiltered   int
	Accuracy           float64
	WCSS               float64
	CumulativeVariance []float64 // full PCA spectrum (Figure 2)
	// PerUAMajority maps each user-agent to the fraction of its rows in
	// its majority cluster.
	PerUAMajority map[ua.Release]float64
}

// Train fits a Browser Polygraph model on the samples.
func Train(samples []Sample, cfg TrainConfig) (*Model, *TrainReport, error) {
	if len(cfg.Features) == 0 {
		return nil, nil, fmt.Errorf("core: config has no features")
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("core: no training samples")
	}
	dim := len(cfg.Features)
	for i, s := range samples {
		if len(s.Vector) != dim {
			return nil, nil, fmt.Errorf("core: sample %d has %d features, want %d", i, len(s.Vector), dim)
		}
	}
	if cfg.K < 1 {
		return nil, nil, fmt.Errorf("core: K=%d", cfg.K)
	}
	if !cfg.DisablePCA && (cfg.PCAComponents < 1 || cfg.PCAComponents > dim) {
		return nil, nil, fmt.Errorf("core: PCA components %d out of [1,%d]", cfg.PCAComponents, dim)
	}
	if cfg.VersionDivisor == 0 {
		cfg.VersionDivisor = ua.DefaultVersionDivisor
	}

	report := &TrainReport{InputRows: len(samples)}

	// Assemble the raw matrix.
	raw := matrix.NewDense(len(samples), dim)
	for i, s := range samples {
		copy(raw.RawRow(i), s.Vector)
	}

	// Stage 1: standard scaling; binary time-based columns pass through
	// (§6.4.1).
	sc, err := scaler.Fit(raw, scaler.Config{Skip: fingerprint.SkipScaleMask(cfg.Features)})
	if err != nil {
		return nil, nil, fmt.Errorf("core: scaler: %w", err)
	}
	scaled, err := sc.Transform(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("core: scale: %w", err)
	}

	// Stage 2: Isolation Forest outlier filtering (§6.4.1).
	kept := samples
	keptScaled := scaled
	var forest *iforest.Forest
	if !cfg.DisableOutlierFilter && cfg.Contamination > 0 {
		trees := cfg.IsolationTrees
		if trees == 0 {
			trees = 100
		}
		var err error
		forest, err = iforest.Fit(scaled, iforest.Config{Trees: trees, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, nil, fmt.Errorf("core: isolation forest: %w", err)
		}
		keepIdx, dropIdx, err := forest.FilterContamination(scaled, cfg.Contamination)
		if err != nil {
			return nil, nil, fmt.Errorf("core: outlier filter: %w", err)
		}
		report.OutliersFiltered = len(dropIdx)
		kept = make([]Sample, len(keepIdx))
		keptScaled = matrix.NewDense(len(keepIdx), dim)
		for newI, oldI := range keepIdx {
			kept[newI] = samples[oldI]
			copy(keptScaled.RawRow(newI), scaled.RawRow(oldI))
		}
	}

	// Stage 3: PCA (§6.4.2).
	var p *pca.PCA
	clusterInput := keptScaled
	if !cfg.DisablePCA {
		p, err = pca.Fit(keptScaled, cfg.PCAComponents)
		if err != nil {
			return nil, nil, fmt.Errorf("core: pca: %w", err)
		}
		report.CumulativeVariance = p.CumulativeVariance()
		clusterInput, err = p.TransformWorkers(keptScaled, cfg.Workers)
		if err != nil {
			return nil, nil, fmt.Errorf("core: pca transform: %w", err)
		}
	}

	// Stage 4: k-means (§6.4.3).
	restarts := cfg.KMeansRestarts
	if restarts == 0 {
		restarts = 4
	}
	km, err := kmeans.Fit(clusterInput, kmeans.Config{
		K:        cfg.K,
		Seed:     cfg.Seed,
		Restarts: restarts,
		PlusPlus: true,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: kmeans: %w", err)
	}
	report.WCSS = km.WCSS

	model := &Model{
		Features:       append([]fingerprint.Feature(nil), cfg.Features...),
		Scaler:         sc,
		PCA:            p,
		KMeans:         km,
		VersionDivisor: cfg.VersionDivisor,
		TrainedRows:    len(kept),
	}

	// Optional novelty guard: the threshold clears every *kept* training
	// row's centroid distance with a margin, so legitimate traffic never
	// trips it and surfaces beyond the training population's territory
	// do.
	if cfg.NoveltyGuard {
		nKept, _ := clusterInput.Dims()
		maxDist := parallel.MapReduce(cfg.Workers, nKept, 0,
			func() float64 { return 0 },
			func(acc float64, start, end int) float64 {
				for i := start; i < end; i++ {
					row := clusterInput.RawRow(i)
					if d := km.Distance(row, km.Predict(row)); d > acc {
						acc = d
					}
				}
				return acc
			},
			func(into, from float64) float64 { return math.Max(into, from) },
		)
		model.NoveltyThreshold = maxDist * 1.15
	}

	// Stage 5: label clusters by user-agent majority and align rare
	// user-agents with reference fingerprints (§6.4.3).
	assign, err := km.PredictAllWorkers(clusterInput, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	model.buildClusterTable(kept, assign, cfg, report)

	return model, report, nil
}

// buildClusterTable computes the UA→cluster majority assignment, applies
// the rare-UA reference alignment, and evaluates Formula 1 accuracy.
func (m *Model) buildClusterTable(samples []Sample, assign []int, cfg TrainConfig, report *TrainReport) {
	type uaStat struct {
		total     int
		byCluster map[int]int
	}
	stats := map[ua.Release]*uaStat{}
	for i, s := range samples {
		st := stats[s.UA]
		if st == nil {
			st = &uaStat{byCluster: map[int]int{}}
			stats[s.UA] = st
		}
		st.total++
		st.byCluster[assign[i]]++
	}

	m.UACluster = make(map[ua.Release]int, len(stats))
	report.PerUAMajority = make(map[ua.Release]float64, len(stats))
	for rel, st := range stats {
		bestCluster, bestCount := 0, -1
		// Deterministic tie-break: lowest cluster wins.
		clusters := make([]int, 0, len(st.byCluster))
		for c := range st.byCluster {
			clusters = append(clusters, c)
		}
		sort.Ints(clusters)
		for _, c := range clusters {
			if st.byCluster[c] > bestCount {
				bestCount = st.byCluster[c]
				bestCluster = c
			}
		}
		cluster := bestCluster
		// Rare-UA alignment: too few rows to trust the majority; use
		// the pristine reference fingerprint instead.
		if cfg.Reference != nil && st.total < cfg.RareUAThreshold {
			if vec, ok := cfg.Reference.ReferenceVector(rel); ok && len(vec) == m.Dim() {
				if c, err := m.predictCluster(vec); err == nil {
					cluster = c
				}
			}
		}
		m.UACluster[rel] = cluster
		report.PerUAMajority[rel] = float64(bestCount) / float64(st.total)
	}

	m.ClusterUAs = make(map[int][]ua.Release)
	for rel, c := range m.UACluster {
		m.ClusterUAs[c] = append(m.ClusterUAs[c], rel)
	}
	for c := range m.ClusterUAs {
		rels := m.ClusterUAs[c]
		sort.Slice(rels, func(i, j int) bool {
			if rels[i].Vendor != rels[j].Vendor {
				return rels[i].Vendor < rels[j].Vendor
			}
			return rels[i].Version < rels[j].Version
		})
	}

	// Formula 1 accuracy over the training rows.
	correct := 0
	for i, s := range samples {
		if assign[i] == m.UACluster[s.UA] {
			correct++
		}
	}
	m.Accuracy = float64(correct) / float64(len(samples))
	report.Accuracy = m.Accuracy
}

// EvaluateAccuracy computes Formula 1 accuracy of the model on held-out
// samples: the fraction assigned to their user-agent's corresponding
// cluster. User-agents absent from the training table are scored against
// the majority cluster *within the evaluation set* (the drift detector's
// convention for brand-new releases).
func (m *Model) EvaluateAccuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("core: no evaluation samples")
	}
	// First pass: cluster everything, find majorities for unseen UAs.
	assign := make([]int, len(samples))
	majority := map[ua.Release]map[int]int{}
	for i, s := range samples {
		c, err := m.predictCluster(s.Vector)
		if err != nil {
			return 0, err
		}
		assign[i] = c
		if _, known := m.UACluster[s.UA]; !known {
			if majority[s.UA] == nil {
				majority[s.UA] = map[int]int{}
			}
			majority[s.UA][c]++
		}
	}
	expected := map[ua.Release]int{}
	for rel, counts := range majority {
		best, bestN := 0, -1
		clusters := make([]int, 0, len(counts))
		for c := range counts {
			clusters = append(clusters, c)
		}
		sort.Ints(clusters)
		for _, c := range clusters {
			if counts[c] > bestN {
				bestN = counts[c]
				best = c
			}
		}
		expected[rel] = best
	}
	correct := 0
	for i, s := range samples {
		want, known := m.UACluster[s.UA]
		if !known {
			want = expected[s.UA]
		}
		if assign[i] == want {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}
