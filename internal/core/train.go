package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"polygraph/internal/fingerprint"
	"polygraph/internal/iforest"
	"polygraph/internal/kmeans"
	"polygraph/internal/matrix"
	"polygraph/internal/parallel"
	"polygraph/internal/pca"
	"polygraph/internal/pipeline"
	"polygraph/internal/scaler"
	"polygraph/internal/ua"
)

// The error taxonomy of the train/score stack, re-exported from
// internal/pipeline so callers classify failures with errors.Is without
// importing the pipeline layer. Stage attribution travels alongside via
// pipeline.StageError (errors.As).
var (
	// ErrCanceled: the context was cancelled or timed out mid-pipeline.
	ErrCanceled = pipeline.ErrCanceled
	// ErrBadInput: the caller's samples or configuration are invalid.
	ErrBadInput = pipeline.ErrBadInput
	// ErrNotTrained: the model is missing its trained components.
	ErrNotTrained = pipeline.ErrNotTrained
)

// Stage names of the §6.4 training pipeline, in execution order. They key
// TrainReport.Stages, StageError attribution, benchjson snapshots, and
// the /metrics stage-duration export.
const (
	StageScale        = "scale"
	StageFilter       = "iforest-filter"
	StagePCA          = "pca"
	StageKMeans       = "kmeans"
	StageNovelty      = "novelty-guard" // only with TrainConfig.NoveltyGuard
	StageClusterTable = "cluster-table"
)

// TrainConfig carries every knob of the §6.4 pipeline. The zero value is
// not usable; start from DefaultTrainConfig.
type TrainConfig struct {
	// Features describes the columns of the sample vectors.
	Features []fingerprint.Feature
	// PCAComponents is the retained dimensionality (paper: 7).
	PCAComponents int
	// K is the cluster count (paper: 11).
	K int
	// Seed drives all stochastic stages.
	Seed uint64
	// Contamination is the Isolation Forest filter fraction. The paper
	// quotes a "0.002%" threshold while reporting 172 dropped rows of
	// 205k (≈0.084%); we default to the observed drop rate.
	Contamination float64
	// IsolationTrees sizes the forest (default 100).
	IsolationTrees int
	// KMeansRestarts guards against unlucky initializations (default 4).
	KMeansRestarts int
	// DisablePCA clusters on the scaled features directly (ablation).
	DisablePCA bool
	// DisableOutlierFilter skips the Isolation Forest stage (ablation).
	DisableOutlierFilter bool
	// NoveltyGuard arms the centroid-distance novelty check: the model
	// records the largest distance any kept training row has to its
	// assigned centroid, and serving-time fingerprints beyond that
	// distance are flagged even when their claim is cluster-consistent
	// — an extension beyond the paper that catches spoofing-engine
	// surfaces the pure cluster check would excuse.
	NoveltyGuard bool
	// RareUAThreshold: user-agents with fewer training rows than this
	// get their cluster assignment from reference fingerprints instead
	// of their (unreliable) majority — the paper's §6.4.3 manual
	// alignment for sparse old versions ("in some cases less than 100
	// instances").
	RareUAThreshold int
	// Reference supplies pristine per-release fingerprints for the rare
	// user-agent alignment; nil disables the adjustment.
	Reference ReferenceProvider
	// VersionDivisor is Algorithm 1's divisor (default 4).
	VersionDivisor int
	// Workers sizes the worker pool behind every numeric stage (isolation
	// forest, PCA, k-means, batch prediction): 0 means GOMAXPROCS, 1
	// forces the serial path. The trained model is bit-identical for
	// every value — see internal/parallel's determinism contract.
	Workers int
}

// ReferenceProvider returns the legitimate fingerprint vector of a
// release, as collected during Candidate Fingerprint Generation (§6.1).
type ReferenceProvider interface {
	ReferenceVector(r ua.Release) ([]float64, bool)
}

// DefaultTrainConfig returns the paper's production configuration.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Features:        fingerprint.Table8(),
		PCAComponents:   7,
		K:               11,
		Seed:            1,
		Contamination:   172.0 / 205000.0,
		IsolationTrees:  100,
		KMeansRestarts:  4,
		RareUAThreshold: 100,
		VersionDivisor:  ua.DefaultVersionDivisor,
	}
}

// TrainReport captures training diagnostics.
type TrainReport struct {
	InputRows          int
	OutliersFiltered   int
	Accuracy           float64
	WCSS               float64
	CumulativeVariance []float64 // full PCA spectrum (Figure 2)
	// PerUAMajority maps each user-agent to the fraction of its rows in
	// its majority cluster.
	PerUAMajority map[ua.Release]float64
	// Stages records the executed pipeline stages in order: name, wall
	// time, rows in/out. Instrumentation never perturbs results — stage
	// boundaries and chunk geometry are fixed by the input alone.
	Stages []pipeline.Timing
}

// WithDefaults returns a copy of cfg with every zero-valued knob that
// has a documented default filled in (IsolationTrees 100, KMeansRestarts
// 4, VersionDivisor ua.DefaultVersionDivisor). It is the single source
// of truth for those defaults — Train applies it, and cmd/reproduce and
// cmd/polygraph can call it to display the effective configuration.
func (cfg TrainConfig) WithDefaults() TrainConfig {
	if cfg.IsolationTrees == 0 {
		cfg.IsolationTrees = 100
	}
	if cfg.KMeansRestarts == 0 {
		cfg.KMeansRestarts = 4
	}
	if cfg.VersionDivisor == 0 {
		cfg.VersionDivisor = ua.DefaultVersionDivisor
	}
	return cfg
}

// Train fits a Browser Polygraph model on the samples.
func Train(samples []Sample, cfg TrainConfig) (*Model, *TrainReport, error) {
	return TrainContext(context.Background(), samples, cfg)
}

// TrainContext is Train under a context: every stage of the §6.4
// pipeline (scale → iforest filter → PCA → k-means → cluster-table) runs
// through an internal/pipeline Runner that records wall time and rows
// in/out into TrainReport.Stages and checks ctx at chunk boundaries, so
// cancelling mid-train aborts within one chunk of work and returns an
// error matching errors.Is(err, ErrCanceled) with the failing stage
// attached (pipeline.StageError). Invalid samples or configuration
// return ErrBadInput. A run that completes is bit-identical to Train's —
// cancellation checks and instrumentation never change chunk geometry or
// reduction order.
func TrainContext(ctx context.Context, samples []Sample, cfg TrainConfig) (*Model, *TrainReport, error) {
	cfg = cfg.WithDefaults()
	if len(cfg.Features) == 0 {
		return nil, nil, fmt.Errorf("core: %w: config has no features", ErrBadInput)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("core: %w: no training samples", ErrBadInput)
	}
	dim := len(cfg.Features)
	for i, s := range samples {
		if len(s.Vector) != dim {
			return nil, nil, fmt.Errorf("core: %w: sample %d has %d features, want %d", ErrBadInput, i, len(s.Vector), dim)
		}
	}
	if cfg.K < 1 {
		return nil, nil, fmt.Errorf("core: %w: K=%d", ErrBadInput, cfg.K)
	}
	if !cfg.DisablePCA && (cfg.PCAComponents < 1 || cfg.PCAComponents > dim) {
		return nil, nil, fmt.Errorf("core: %w: PCA components %d out of [1,%d]", ErrBadInput, cfg.PCAComponents, dim)
	}

	run := pipeline.New(ctx)
	report := &TrainReport{InputRows: len(samples)}

	// Assemble the raw matrix.
	raw := matrix.NewDense(len(samples), dim)
	for i, s := range samples {
		copy(raw.RawRow(i), s.Vector)
	}

	// Stage 1: standard scaling; binary time-based columns pass through
	// (§6.4.1).
	var sc *scaler.Standard
	var scaled *matrix.Dense
	err := run.Run(StageScale, len(samples), func(ctx context.Context) (int, error) {
		var err error
		sc, err = scaler.FitContext(ctx, raw, scaler.Config{Skip: fingerprint.SkipScaleMask(cfg.Features)})
		if err != nil {
			return 0, err
		}
		scaled, err = sc.TransformContext(ctx, raw)
		if err != nil {
			return 0, err
		}
		return len(samples), nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}

	// Stage 2: Isolation Forest outlier filtering (§6.4.1).
	kept := samples
	keptScaled := scaled
	if !cfg.DisableOutlierFilter && cfg.Contamination > 0 {
		err := run.Run(StageFilter, len(samples), func(ctx context.Context) (int, error) {
			forest, err := iforest.FitContext(ctx, scaled, iforest.Config{
				Trees: cfg.IsolationTrees, Seed: cfg.Seed, Workers: cfg.Workers,
			})
			if err != nil {
				return 0, err
			}
			keepIdx, dropIdx, err := forest.FilterContaminationContext(ctx, scaled, cfg.Contamination)
			if err != nil {
				return 0, err
			}
			report.OutliersFiltered = len(dropIdx)
			kept = make([]Sample, len(keepIdx))
			keptScaled = matrix.NewDense(len(keepIdx), dim)
			for newI, oldI := range keepIdx {
				kept[newI] = samples[oldI]
				copy(keptScaled.RawRow(newI), scaled.RawRow(oldI))
			}
			return len(kept), nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
	}

	// Stage 3: PCA (§6.4.2).
	var p *pca.PCA
	clusterInput := keptScaled
	if !cfg.DisablePCA {
		err := run.Run(StagePCA, len(kept), func(ctx context.Context) (int, error) {
			var err error
			p, err = pca.FitContext(ctx, keptScaled, cfg.PCAComponents)
			if err != nil {
				return 0, err
			}
			report.CumulativeVariance = p.CumulativeVariance()
			clusterInput, err = p.TransformContext(ctx, keptScaled, cfg.Workers)
			if err != nil {
				return 0, err
			}
			return len(kept), nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
	}

	// Stage 4: k-means (§6.4.3).
	var km *kmeans.Model
	err = run.Run(StageKMeans, len(kept), func(ctx context.Context) (int, error) {
		var err error
		km, err = kmeans.FitContext(ctx, clusterInput, kmeans.Config{
			K:        cfg.K,
			Seed:     cfg.Seed,
			Restarts: cfg.KMeansRestarts,
			PlusPlus: true,
			Workers:  cfg.Workers,
		})
		if err != nil {
			return 0, err
		}
		report.WCSS = km.WCSS
		return len(kept), nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}

	model := &Model{
		Features:       append([]fingerprint.Feature(nil), cfg.Features...),
		Scaler:         sc,
		PCA:            p,
		KMeans:         km,
		VersionDivisor: cfg.VersionDivisor,
		TrainedRows:    len(kept),
	}

	// Optional novelty guard: the threshold clears every *kept* training
	// row's centroid distance with a margin, so legitimate traffic never
	// trips it and surfaces beyond the training population's territory
	// do.
	if cfg.NoveltyGuard {
		err := run.Run(StageNovelty, len(kept), func(ctx context.Context) (int, error) {
			nKept, _ := clusterInput.Dims()
			maxDist, err := parallel.MapReduceContext(ctx, cfg.Workers, nKept, 0,
				func() float64 { return 0 },
				func(acc float64, start, end int) float64 {
					for i := start; i < end; i++ {
						// One-pass nearest + distance; bit-identical to
						// Distance(row, Predict(row)) at half the work.
						if _, d := km.AssignDistance(clusterInput.RawRow(i)); d > acc {
							acc = d
						}
					}
					return acc
				},
				func(into, from float64) float64 { return math.Max(into, from) },
			)
			if err != nil {
				return 0, err
			}
			model.NoveltyThreshold = maxDist * 1.15
			return len(kept), nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
	}

	// Stage 5: label clusters by user-agent majority and align rare
	// user-agents with reference fingerprints (§6.4.3). Rows out is the
	// size of the UA→cluster table the stage distills.
	err = run.Run(StageClusterTable, len(kept), func(ctx context.Context) (int, error) {
		assign, err := km.PredictAllContext(ctx, clusterInput, cfg.Workers)
		if err != nil {
			return 0, err
		}
		model.buildClusterTable(kept, assign, cfg, report)
		return len(model.UACluster), nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}

	// Flatten the finished model for the scoring fast path. The Store
	// also supersedes any plan built lazily mid-training (the rare-UA
	// alignment scores reference vectors before the UA table exists).
	model.plan.Store(buildScorePlan(model))

	report.Stages = run.Timings()
	return model, report, nil
}

// buildClusterTable computes the UA→cluster majority assignment, applies
// the rare-UA reference alignment, and evaluates Formula 1 accuracy.
func (m *Model) buildClusterTable(samples []Sample, assign []int, cfg TrainConfig, report *TrainReport) {
	type uaStat struct {
		total     int
		byCluster map[int]int
	}
	stats := map[ua.Release]*uaStat{}
	for i, s := range samples {
		st := stats[s.UA]
		if st == nil {
			st = &uaStat{byCluster: map[int]int{}}
			stats[s.UA] = st
		}
		st.total++
		st.byCluster[assign[i]]++
	}

	m.UACluster = make(map[ua.Release]int, len(stats))
	report.PerUAMajority = make(map[ua.Release]float64, len(stats))
	for rel, st := range stats {
		bestCluster, bestCount := 0, -1
		// Deterministic tie-break: lowest cluster wins.
		clusters := make([]int, 0, len(st.byCluster))
		for c := range st.byCluster {
			clusters = append(clusters, c)
		}
		sort.Ints(clusters)
		for _, c := range clusters {
			if st.byCluster[c] > bestCount {
				bestCount = st.byCluster[c]
				bestCluster = c
			}
		}
		cluster := bestCluster
		// Rare-UA alignment: too few rows to trust the majority; use
		// the pristine reference fingerprint instead.
		if cfg.Reference != nil && st.total < cfg.RareUAThreshold {
			if vec, ok := cfg.Reference.ReferenceVector(rel); ok && len(vec) == m.Dim() {
				if c, err := m.predictCluster(vec); err == nil {
					cluster = c
				}
			}
		}
		m.UACluster[rel] = cluster
		report.PerUAMajority[rel] = float64(bestCount) / float64(st.total)
	}

	m.ClusterUAs = make(map[int][]ua.Release)
	for rel, c := range m.UACluster {
		m.ClusterUAs[c] = append(m.ClusterUAs[c], rel)
	}
	for c := range m.ClusterUAs {
		rels := m.ClusterUAs[c]
		sort.Slice(rels, func(i, j int) bool {
			if rels[i].Vendor != rels[j].Vendor {
				return rels[i].Vendor < rels[j].Vendor
			}
			return rels[i].Version < rels[j].Version
		})
	}

	// Formula 1 accuracy over the training rows.
	correct := 0
	for i, s := range samples {
		if assign[i] == m.UACluster[s.UA] {
			correct++
		}
	}
	m.Accuracy = float64(correct) / float64(len(samples))
	report.Accuracy = m.Accuracy
}

// EvaluateAccuracy computes Formula 1 accuracy of the model on held-out
// samples: the fraction assigned to their user-agent's corresponding
// cluster. User-agents absent from the training table are scored against
// the majority cluster *within the evaluation set* (the drift detector's
// convention for brand-new releases).
func (m *Model) EvaluateAccuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("core: no evaluation samples")
	}
	// First pass: cluster everything, find majorities for unseen UAs.
	assign := make([]int, len(samples))
	majority := map[ua.Release]map[int]int{}
	for i, s := range samples {
		c, err := m.predictCluster(s.Vector)
		if err != nil {
			return 0, err
		}
		assign[i] = c
		if _, known := m.UACluster[s.UA]; !known {
			if majority[s.UA] == nil {
				majority[s.UA] = map[int]int{}
			}
			majority[s.UA][c]++
		}
	}
	expected := map[ua.Release]int{}
	for rel, counts := range majority {
		best, bestN := 0, -1
		clusters := make([]int, 0, len(counts))
		for c := range counts {
			clusters = append(clusters, c)
		}
		sort.Ints(clusters)
		for _, c := range clusters {
			if counts[c] > bestN {
				bestN = counts[c]
				best = c
			}
		}
		expected[rel] = best
	}
	correct := 0
	for i, s := range samples {
		want, known := m.UACluster[s.UA]
		if !known {
			want = expected[s.UA]
		}
		if assign[i] == want {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}
