package core

import (
	"sort"
	"strings"
	"testing"

	"polygraph/internal/scaler"
	"polygraph/internal/ua"
)

// planParityClaims returns claim variants that exercise every branch of
// the risk loop: the honest claim (match), a wrong-vendor claim
// (Algorithm 1 mismatch), and a far-future version nothing clusters with.
func planParityClaims(honest ua.Release) []ua.Release {
	return []ua.Release{
		honest,
		{Vendor: ua.Firefox, Version: 48},
		{Vendor: ua.Chrome, Version: 999},
	}
}

// TestPlanParityWithComponentPath pins the tentpole invariant: the
// flattened fast path returns bit-identical Results to the component
// (scaler → PCA → kmeans) path for every vector and claim combination.
func TestPlanParityWithComponentPath(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 40)
	samples, _ := trainFixture(t, 8)
	for i, s := range samples {
		for _, claim := range planParityClaims(s.UA) {
			fast, err := m.Score(s.Vector, claim)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := m.scoreSlow(s.Vector, claim)
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Fatalf("sample %d claim %v: plan %+v, component %+v", i, claim, fast, slow)
			}
		}
	}
}

// TestPlanParityWithNoveltyGuard re-runs the parity sweep with the guard
// armed at thresholds that produce both Novel and ordinary outcomes.
// NoveltyThreshold is read live from the Model, so mutating it must take
// effect without rebuilding the plan.
func TestPlanParityWithNoveltyGuard(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 40)
	samples, _ := trainFixture(t, 6)

	// Pick a threshold straddling the population so both branches fire.
	dists := make([]float64, 0, len(samples))
	origThr := m.NoveltyThreshold
	defer func() { m.NoveltyThreshold = origThr }()
	m.NoveltyThreshold = 1e308 // armed, nothing novel
	for _, s := range samples {
		slow, _ := m.scoreSlow(s.Vector, s.UA)
		dists = append(dists, slow.NoveltyScore)
	}
	sort.Float64s(dists)
	thresholds := []float64{1e-12, dists[len(dists)/2], 1e308}

	novelSeen, plainSeen := false, false
	for _, thr := range thresholds {
		m.NoveltyThreshold = thr
		for i, s := range samples {
			for _, claim := range planParityClaims(s.UA) {
				fast, err := m.Score(s.Vector, claim)
				if err != nil {
					t.Fatal(err)
				}
				slow, err := m.scoreSlow(s.Vector, claim)
				if err != nil {
					t.Fatal(err)
				}
				if fast != slow {
					t.Fatalf("thr %v sample %d claim %v: plan %+v, component %+v", thr, i, claim, fast, slow)
				}
				if fast.Novel {
					novelSeen = true
				} else {
					plainSeen = true
				}
			}
		}
	}
	if !novelSeen || !plainSeen {
		t.Fatalf("guard sweep did not cover both branches (novel %v, plain %v)", novelSeen, plainSeen)
	}
}

// TestScoreStringUnparseableUAOnPlan: the gibberish-UA path predicts a
// cluster through the plan and reports maximum risk.
func TestScoreStringUnparseableUAOnPlan(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 40)
	samples, _ := trainFixture(t, 2)
	scratch := m.NewScratch()
	for i, s := range samples {
		res, err := m.ScoreStringWith(scratch, s.Vector, "definitely not a browser")
		if err != nil {
			t.Fatal(err)
		}
		wantCluster, err := m.PredictCluster(s.Vector)
		if err != nil {
			t.Fatal(err)
		}
		want := Result{Cluster: wantCluster, Matched: false, RiskFactor: ua.MaxDistance}
		if res != want {
			t.Fatalf("sample %d: got %+v, want %+v", i, res, want)
		}
	}
}

// TestHandBuiltModelBuildsPlanLazily: a Model assembled from parts (no
// Train/Load) scores through a lazily built plan, identically to the
// trained original.
func TestHandBuiltModelBuildsPlanLazily(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 40)
	hand := &Model{
		Features:         m.Features,
		Scaler:           m.Scaler,
		PCA:              m.PCA,
		KMeans:           m.KMeans,
		ClusterUAs:       m.ClusterUAs,
		UACluster:        m.UACluster,
		VersionDivisor:   m.VersionDivisor,
		NoveltyThreshold: m.NoveltyThreshold,
	}
	if hand.plan.Load() != nil {
		t.Fatal("hand-built model has a plan before first score")
	}
	samples, _ := trainFixture(t, 4)
	for i, s := range samples {
		for _, claim := range planParityClaims(s.UA) {
			got, err := hand.Score(s.Vector, claim)
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.Score(s.Vector, claim)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("sample %d claim %v: hand-built %+v, trained %+v", i, claim, got, want)
			}
		}
	}
	p := hand.plan.Load()
	if p == nil || !p.valid {
		t.Fatal("lazy plan missing or invalid after scoring")
	}
}

// TestInconsistentModelFallsBackWithComponentError: dimensional
// inconsistency (only reachable with hand-assembled models) must produce
// an invalid plan and surface the component's own error text.
func TestInconsistentModelFallsBackWithComponentError(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 40)
	narrow := &scaler.Standard{Means: make([]float64, 10), Stds: make([]float64, 10)}
	hand := &Model{
		Features:       m.Features, // claims 28 features...
		Scaler:         narrow,     // ...but the scaler was fitted on 10
		PCA:            m.PCA,
		KMeans:         m.KMeans,
		ClusterUAs:     m.ClusterUAs,
		UACluster:      m.UACluster,
		VersionDivisor: m.VersionDivisor,
	}
	samples, _ := trainFixture(t, 1)
	_, err := hand.Score(samples[0].Vector, samples[0].UA)
	if err == nil {
		t.Fatal("no error from inconsistent model")
	}
	if !strings.Contains(err.Error(), "scaler: vector has 28 entries, fitted on 10") {
		t.Fatalf("error %q lost the component message", err)
	}
	if p := hand.plan.Load(); p == nil || p.valid {
		t.Fatal("inconsistent model should cache an invalid plan")
	}
}

// TestScoreAllocationFree pins the headline acceptance criterion:
// steady-state Score is 0 allocs/op, with and without caller scratch.
func TestScoreAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items at random, distorting alloc counts")
	}
	m, _, _ := trainFixtureModel(t, 40)
	samples, _ := trainFixture(t, 1)
	vec, claim := samples[0].Vector, samples[0].UA

	// Warm the pool, then demand zero.
	if _, err := m.Score(vec, claim); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Score(vec, claim); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Score allocates %v objects/op, want 0", allocs)
	}

	scratch := m.NewScratch()
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.ScoreWith(scratch, vec, claim); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ScoreWith allocates %v objects/op, want 0", allocs)
	}
}

// TestScoreBatchAllocsSizeIndependent: batching allocates O(1) beyond the
// result slice — per-row work reuses pooled scratch.
func TestScoreBatchAllocsSizeIndependent(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items at random, distorting alloc counts")
	}
	m, _, _ := trainFixtureModel(t, 40)
	samples, _ := trainFixture(t, 1)
	vec, claim := samples[0].Vector, samples[0].UA

	const big = 4096
	vectors := make([][]float64, big)
	claims := make([]ua.Release, big)
	for i := range vectors {
		vectors[i] = vec
		claims[i] = claim
	}
	measure := func(n int) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := m.ScoreBatch(vectors[:n], claims[:n]); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(64), measure(big)
	// The result slice plus a handful of dispatch-time objects; the gap
	// between sizes must not grow with row count.
	if small > 16 {
		t.Fatalf("ScoreBatch(64) allocates %v objects/op", small)
	}
	if large > small+8 {
		t.Fatalf("ScoreBatch allocs scale with size: %v at 64 rows, %v at %d", small, large, big)
	}
}
