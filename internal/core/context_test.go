package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"polygraph/internal/pipeline"
	"polygraph/internal/ua"
)

func TestTrainContextPreCancelled(t *testing.T) {
	samples, ext := trainFixture(t, 40)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := TrainContext(ctx, samples, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	var se *pipeline.StageError
	if !errors.As(err, &se) {
		t.Fatalf("want a StageError in the chain, got %v", err)
	}
	if se.Stage != StageScale {
		t.Fatalf("pre-cancelled run should die in the first stage, got %q", se.Stage)
	}
}

// TestTrainContextCancelMidTrain measures an uncancelled baseline, then
// cancels a fresh run a fraction of the way in and requires ErrCanceled.
// The deadline adapts to the machine; boxes too fast to cancel reliably
// skip instead of flaking.
func TestTrainContextCancelMidTrain(t *testing.T) {
	samples, ext := trainFixture(t, 1200)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0
	cfg.Workers = 1
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}

	start := time.Now()
	if _, _, err := TrainContext(context.Background(), samples, cfg); err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(start)
	if baseline < 10*time.Millisecond {
		t.Skipf("baseline train %v too fast to cancel mid-flight", baseline)
	}

	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), baseline/20)
		_, _, err := TrainContext(ctx, samples, cfg)
		cancel()
		if err == nil {
			continue // timing noise let this run finish; try again
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
		return
	}
	t.Skip("train completed before the deadline on every attempt")
}

func TestTrainReportStages(t *testing.T) {
	samples, ext := trainFixture(t, 40)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0.01
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}

	model, rep, err := TrainContext(context.Background(), samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{StageScale, StageFilter, StagePCA, StageKMeans, StageClusterTable}
	if len(rep.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(rep.Stages), len(want), rep.Stages)
	}
	for i, s := range rep.Stages {
		if s.Name != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, want[i])
		}
		if s.Duration < 0 {
			t.Errorf("stage %q has negative duration", s.Name)
		}
	}
	if in := rep.Stages[0].RowsIn; in != len(samples) {
		t.Errorf("scale rows in = %d, want %d", in, len(samples))
	}
	if out := rep.Stages[1].RowsOut; out != model.TrainedRows {
		t.Errorf("filter rows out = %d, want TrainedRows %d", out, model.TrainedRows)
	}
	if out := rep.Stages[len(rep.Stages)-1].RowsOut; out != len(model.UACluster) {
		t.Errorf("cluster-table rows out = %d, want %d UA entries", out, len(model.UACluster))
	}
}

func TestTrainReportStagesNovelty(t *testing.T) {
	samples, ext := trainFixture(t, 40)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0
	cfg.NoveltyGuard = true
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}

	_, rep, err := TrainContext(context.Background(), samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(rep.Stages))
	for i, s := range rep.Stages {
		names[i] = s.Name
	}
	found := false
	for _, n := range names {
		if n == StageNovelty {
			found = true
		}
	}
	if !found {
		t.Fatalf("novelty stage missing from %v", names)
	}
}

func TestTrainBadInput(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.Features = nil
	if _, _, err := TrainContext(context.Background(), nil, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no features: want ErrBadInput, got %v", err)
	}
	cfg = DefaultTrainConfig()
	if _, _, err := TrainContext(context.Background(), nil, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no samples: want ErrBadInput, got %v", err)
	}
	cfg.K = 0
	samples, _ := trainFixture(t, 2)
	if _, _, err := TrainContext(context.Background(), samples, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatalf("K=0: want ErrBadInput, got %v", err)
	}
}

func TestScoreNotTrained(t *testing.T) {
	var m Model
	if _, err := m.Score(make([]float64, 3), ua.Release{Vendor: ua.Chrome, Version: 100}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("Score on zero model: want ErrNotTrained, got %v", err)
	}
	if _, err := m.PredictCluster(make([]float64, 3)); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("PredictCluster on zero model: want ErrNotTrained, got %v", err)
	}
	if _, err := m.ScoreBatch(nil, nil); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("ScoreBatch on zero model: want ErrNotTrained, got %v", err)
	}
}

func TestScoreBatchContextCancel(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 20)
	samples, _ := trainFixture(t, 20)
	_ = ext
	vectors := make([][]float64, len(samples))
	claims := make([]ua.Release, len(samples))
	for i, s := range samples {
		vectors[i] = s.Vector
		claims[i] = s.UA
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ScoreBatchContext(ctx, vectors, claims, 1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// The same batch completes under a live context and matches ScoreBatch.
	got, err := m.ScoreBatchContext(context.Background(), vectors, claims, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.ScoreBatch(vectors, claims)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestWithDefaults(t *testing.T) {
	var cfg TrainConfig
	d := cfg.WithDefaults()
	if d.IsolationTrees != 100 || d.KMeansRestarts != 4 || d.VersionDivisor != ua.DefaultVersionDivisor {
		t.Fatalf("defaults not filled: %+v", d)
	}
	cfg.IsolationTrees = 7
	cfg.KMeansRestarts = 2
	cfg.VersionDivisor = 9
	d = cfg.WithDefaults()
	if d.IsolationTrees != 7 || d.KMeansRestarts != 2 || d.VersionDivisor != 9 {
		t.Fatalf("explicit values overwritten: %+v", d)
	}
}
