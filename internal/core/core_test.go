package core

import (
	"bytes"
	"math"
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/fingerprint"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// trainFixture builds a small but structurally faithful training set:
// sessions for a handful of releases spanning several engine eras, with a
// sprinkle of modifier noise.
func trainFixture(t testing.TB, perUA int) ([]Sample, *fingerprint.Extractor) {
	t.Helper()
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	releases := []ua.Release{
		{Vendor: ua.Chrome, Version: 60}, {Vendor: ua.Chrome, Version: 80},
		{Vendor: ua.Chrome, Version: 95}, {Vendor: ua.Chrome, Version: 105},
		{Vendor: ua.Chrome, Version: 112}, {Vendor: ua.Chrome, Version: 114},
		{Vendor: ua.Edge, Version: 112}, {Vendor: ua.Edge, Version: 105},
		{Vendor: ua.Firefox, Version: 48}, {Vendor: ua.Firefox, Version: 78},
		{Vendor: ua.Firefox, Version: 95}, {Vendor: ua.Firefox, Version: 110},
		{Vendor: ua.Edge, Version: 18},
	}
	gen := rng.New(99)
	var samples []Sample
	for _, r := range releases {
		for i := 0; i < perUA; i++ {
			p := browser.Profile{Release: r, OS: ua.Windows10}
			if gen.Bool(0.02) && r.Vendor == ua.Chrome {
				p.Mods = []browser.Modifier{browser.ChromeExtensionDuckDuckGo()}
			}
			samples = append(samples, Sample{Vector: ext.Extract(p), UA: r})
		}
	}
	return samples, ext
}

func trainFixtureModel(t testing.TB, perUA int) (*Model, *TrainReport, *fingerprint.Extractor) {
	t.Helper()
	samples, ext := trainFixture(t, perUA)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0 // tiny fixture: keep everything
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}
	m, rep, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, rep, ext
}

func TestTrainValidation(t *testing.T) {
	cfg := DefaultTrainConfig()
	if _, _, err := Train(nil, cfg); err == nil {
		t.Fatal("no error for empty samples")
	}
	samples, _ := trainFixture(t, 3)
	bad := cfg
	bad.Features = nil
	if _, _, err := Train(samples, bad); err == nil {
		t.Fatal("no error for empty features")
	}
	bad = cfg
	bad.K = 0
	if _, _, err := Train(samples, bad); err == nil {
		t.Fatal("no error for K=0")
	}
	bad = cfg
	bad.PCAComponents = 99
	if _, _, err := Train(samples, bad); err == nil {
		t.Fatal("no error for oversized PCA")
	}
	short := []Sample{{Vector: []float64{1, 2}, UA: ua.Release{Vendor: ua.Chrome, Version: 100}}}
	if _, _, err := Train(short, cfg); err == nil {
		t.Fatal("no error for wrong-width sample")
	}
}

func TestTrainProducesCoherentModel(t *testing.T) {
	m, rep, _ := trainFixtureModel(t, 60)
	if m.Accuracy < 0.95 {
		t.Fatalf("training accuracy = %v", m.Accuracy)
	}
	if rep.InputRows != 13*60 {
		t.Fatalf("input rows = %d", rep.InputRows)
	}
	if len(rep.CumulativeVariance) != 28 {
		t.Fatalf("variance spectrum length %d", len(rep.CumulativeVariance))
	}
	// Every trained UA has a cluster.
	if len(m.UACluster) != 13 {
		t.Fatalf("UA table has %d entries", len(m.UACluster))
	}
	// Chrome 112 and Edge 112 share a Chromium surface: same cluster.
	if m.UACluster[ua.Release{Vendor: ua.Chrome, Version: 112}] !=
		m.UACluster[ua.Release{Vendor: ua.Edge, Version: 112}] {
		t.Fatal("Chrome 112 and Edge 112 in different clusters")
	}
	// Firefox 110 must not share with modern Chrome.
	if m.UACluster[ua.Release{Vendor: ua.Firefox, Version: 110}] ==
		m.UACluster[ua.Release{Vendor: ua.Chrome, Version: 112}] {
		t.Fatal("Firefox 110 clustered with Chrome 112")
	}
}

func TestScoreHonestSession(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	r := ua.Release{Vendor: ua.Chrome, Version: 112}
	vec := ext.Extract(browser.Profile{Release: r, OS: ua.Windows10})
	res, err := m.Score(vec, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched || res.Flagged() || res.RiskFactor != 0 {
		t.Fatalf("honest session flagged: %+v", res)
	}
}

func TestScoreLyingSession(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	// Fingerprint of Chrome 112, claiming Firefox 110 (category-2 fraud
	// browser behaviour).
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	res, err := m.Score(vec, ua.Release{Vendor: ua.Firefox, Version: 110})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched || !res.Flagged() {
		t.Fatal("cross-vendor lie not flagged")
	}
	if res.RiskFactor != ua.MaxDistance {
		t.Fatalf("cross-vendor risk = %d, want %d", res.RiskFactor, ua.MaxDistance)
	}
}

func TestScoreNearVersionLieLowRisk(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	// Fingerprint of Chrome 112 claiming Chrome 60: same vendor, huge
	// version gap => flagged with moderate risk (distance to nearest
	// cluster member).
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	res, err := m.Score(vec, ua.Release{Vendor: ua.Chrome, Version: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatal("version lie not flagged")
	}
	// Cluster contains Chrome 112 (and likely Edge 112): distance =
	// floor(52/4) = 13 if 112 is nearest.
	if res.RiskFactor < 10 || res.RiskFactor > ua.MaxDistance {
		t.Fatalf("risk factor = %d", res.RiskFactor)
	}
}

func TestScoreDimensionError(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 20)
	if _, err := m.Score([]float64{1, 2}, ua.Release{Vendor: ua.Chrome, Version: 112}); err == nil {
		t.Fatal("no error for wrong-width vector")
	}
}

func TestScoreStringUnparseableIsMaxRisk(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 20)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	res, err := m.ScoreString(vec, "definitely-not-a-browser")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() || res.RiskFactor != ua.MaxDistance {
		t.Fatalf("junk UA result: %+v", res)
	}
	// A real UA string goes through Parse.
	res, err = m.ScoreString(vec, ua.UserAgent(ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Windows10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched {
		t.Fatal("valid UA string not matched")
	}
}

func TestEvaluateAccuracyHeldOut(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	var heldOut []Sample
	for _, r := range []ua.Release{
		{Vendor: ua.Chrome, Version: 113}, // same era as 112
		{Vendor: ua.Firefox, Version: 109},
	} {
		for i := 0; i < 20; i++ {
			heldOut = append(heldOut, Sample{
				Vector: ext.Extract(browser.Profile{Release: r, OS: ua.Windows10}),
				UA:     r,
			})
		}
	}
	acc, err := m.EvaluateAccuracy(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Fatalf("held-out accuracy = %v", acc)
	}
	if _, err := m.EvaluateAccuracy(nil); err == nil {
		t.Fatal("no error for empty evaluation")
	}
}

func TestOutlierFilterDrops(t *testing.T) {
	samples, ext := trainFixture(t, 40)
	// Inject gross outliers.
	for i := 0; i < 3; i++ {
		vec := make([]float64, 28)
		for j := range vec {
			vec[j] = 99999
		}
		samples = append(samples, Sample{Vector: vec, UA: ua.Release{Vendor: ua.Chrome, Version: 112}})
	}
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 3.0 / float64(len(samples))
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}
	_, rep, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutliersFiltered != 3 {
		t.Fatalf("filtered %d outliers, want 3", rep.OutliersFiltered)
	}
}

func TestDisablePCA(t *testing.T) {
	samples, _ := trainFixture(t, 30)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0
	cfg.DisablePCA = true
	m, _, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.PCA != nil {
		t.Fatal("PCA present despite DisablePCA")
	}
	if m.Accuracy < 0.9 {
		t.Fatalf("no-PCA accuracy = %v", m.Accuracy)
	}
}

func TestRareUAAlignment(t *testing.T) {
	// A user-agent with very few, heavily perturbed rows would get a
	// wrong majority cluster; the reference alignment fixes it.
	samples, ext := trainFixture(t, 80)
	rare := ua.Release{Vendor: ua.Chrome, Version: 96} // same era as 95
	for i := 0; i < 3; i++ {
		// Heavily modified sessions: zeroed vector lands nowhere near
		// the blink-mid cluster.
		samples = append(samples, Sample{Vector: make([]float64, 28), UA: rare})
	}
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0
	cfg.RareUAThreshold = 10
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}
	m, _, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.UACluster[rare] != m.UACluster[ua.Release{Vendor: ua.Chrome, Version: 95}] {
		t.Fatalf("rare UA not aligned with its era peer: %d vs %d",
			m.UACluster[rare], m.UACluster[ua.Release{Vendor: ua.Chrome, Version: 95}])
	}

	// Without the reference, the zero-vector majority wins (control).
	cfg.Reference = nil
	m2, _, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.UACluster[rare] == m2.UACluster[ua.Release{Vendor: ua.Chrome, Version: 95}] {
		t.Skip("majority coincidentally matched era peer; alignment untestable here")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 40)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Accuracy != m.Accuracy || loaded.TrainedRows != m.TrainedRows ||
		loaded.VersionDivisor != m.VersionDivisor {
		t.Fatal("metadata not preserved")
	}
	if len(loaded.Features) != len(m.Features) {
		t.Fatal("features not preserved")
	}
	// Scoring parity on a spread of sessions.
	for _, r := range []ua.Release{
		{Vendor: ua.Chrome, Version: 112},
		{Vendor: ua.Firefox, Version: 110},
		{Vendor: ua.Edge, Version: 18},
	} {
		vec := ext.Extract(browser.Profile{Release: r, OS: ua.Windows10})
		a, err := m.Score(vec, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Score(vec, r)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("score mismatch after reload: %+v vs %+v", a, b)
		}
	}
}

func TestLoadRejectsJunk(t *testing.T) {
	cases := []string{
		"",
		"{}",
		`{"version": 99}`,
		`{"version":1,"features":[{"kind":"deviation-based","proto":"Element"}],"centroids":[[1]],"scaler_means":[0,0],"scaler_stds":[1,1]}`,
		`{"version":1,"features":[{"kind":"nonsense","proto":"Element"}],"centroids":[[1]],"scaler_means":[0],"scaler_stds":[1]}`,
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestCompressReleases(t *testing.T) {
	rels := []ua.Release{
		{Vendor: ua.Chrome, Version: 110}, {Vendor: ua.Chrome, Version: 111},
		{Vendor: ua.Chrome, Version: 112}, {Vendor: ua.Chrome, Version: 114},
		{Vendor: ua.Edge, Version: 110},
		{Vendor: ua.Firefox, Version: 50},
	}
	got := CompressReleases(rels)
	want := "Chrome 110-112, Chrome 114, Edge 110, Firefox 50"
	if got != want {
		t.Fatalf("CompressReleases = %q, want %q", got, want)
	}
	if CompressReleases(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	// Duplicates collapse.
	dup := []ua.Release{{Vendor: ua.Chrome, Version: 5}, {Vendor: ua.Chrome, Version: 5}}
	if CompressReleases(dup) != "Chrome 5" {
		t.Fatalf("dup compress = %q", CompressReleases(dup))
	}
}

func TestClusterTableSorted(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 30)
	rows := m.ClusterTable()
	for i := 1; i < len(rows); i++ {
		if rows[i].Cluster <= rows[i-1].Cluster {
			t.Fatal("cluster table not sorted")
		}
	}
	for _, row := range rows {
		if row.UserAgents == "" {
			t.Fatal("empty UA cell")
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	samples, ext := trainFixture(t, 30)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Contamination = 0
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}
	a, _, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy {
		t.Fatal("training not deterministic")
	}
	if math.Abs(a.KMeans.WCSS-b.KMeans.WCSS) > 0 {
		t.Fatal("WCSS not deterministic")
	}
}

func BenchmarkScore(b *testing.B) {
	m, _, ext := trainFixtureModel(b, 40)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	claimed := ua.Release{Vendor: ua.Chrome, Version: 112}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Score(vec, claimed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	samples, ext := trainFixture(b, 100)
	cfg := DefaultTrainConfig()
	cfg.K = 8
	cfg.Reference = ExtractorReference{Extractor: ext, OS: ua.Windows10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Train(samples, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
